package cachemodel_test

import (
	"strings"
	"testing"

	"cachemodel"
)

// TestFacadePipeline: the public API end to end — parse, prepare, analyse
// both ways, simulate — on a program with a call.
func TestFacadePipeline(t *testing.T) {
	src := `
      PROGRAM MAIN
      REAL*8 A(32,32)
      DO I = 1, 16
        CALL SWEEP(A)
      ENDDO
      END
      SUBROUTINE SWEEP(C)
      REAL*8 C(32,32)
      DO J = 1, 32
        DO K = 1, 32
          C(K,J) = C(K,J)
        ENDDO
      ENDDO
      END
`
	p, err := cachemodel.ParseFortran(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	np, stats, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inlined != 1 || stats.PAble != 1 {
		t.Errorf("inline stats: %+v", stats)
	}
	cfg := cachemodel.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2}
	sim := cachemodel.Simulate(np, cfg)
	if sim.Accesses != 16*32*32*2 {
		t.Fatalf("accesses = %d", sim.Accesses)
	}
	exact, err := cachemodel.FindMisses(np, cfg, cachemodel.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if exact.ExactMisses() != sim.Misses {
		t.Errorf("FindMisses %d, simulator %d", exact.ExactMisses(), sim.Misses)
	}
	est, err := cachemodel.EstimateMisses(np, cfg, cachemodel.AnalyzeOptions{}, cachemodel.Plan{C: 0.95, W: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if d := est.MissRatio() - sim.MissRatio(); d > 5 || d < -5 {
		t.Errorf("estimate %.2f%% vs sim %.2f%%", est.MissRatio(), sim.MissRatio())
	}
}

// TestFacadeBuiltins: every built-in workload must prepare cleanly.
func TestFacadeBuiltins(t *testing.T) {
	progs := []*cachemodel.Program{
		cachemodel.KernelHydro(8, 8),
		cachemodel.KernelMGRID(6),
		cachemodel.KernelMMT(8, 4, 4),
		cachemodel.ProgramTomcatv(8, 1),
		cachemodel.ProgramSwim(8, 1),
		cachemodel.ProgramApplu(6, 1),
	}
	for _, p := range progs {
		np, _, err := cachemodel.Prepare(p, cachemodel.PrepareOptions{})
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if len(np.Refs) == 0 {
			t.Errorf("%s: no references", p.Name)
		}
	}
}

// TestFacadeProbabilistic: the baseline runs through the facade.
func TestFacadeProbabilistic(t *testing.T) {
	np, _, err := cachemodel.Prepare(cachemodel.KernelMMT(8, 4, 4), cachemodel.PrepareOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := cachemodel.EstimateProbabilistic(np, cachemodel.Default32K(2), cachemodel.ProbOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MissRatio() < 0 || rep.MissRatio() > 100 {
		t.Errorf("ratio %v", rep.MissRatio())
	}
}

// TestFacadeParseError: errors must surface with line information.
func TestFacadeParseError(t *testing.T) {
	_, err := cachemodel.ParseFortran("      PROGRAM P\n      DO I = 1, 10\n      END\n", nil)
	if err == nil || !strings.Contains(err.Error(), "line") {
		t.Errorf("err = %v, want line-numbered parse error", err)
	}
}

// TestPaddingChangesPrediction: layout options must reach the analysis
// (the examples/padding workflow).
func TestPaddingChangesPrediction(t *testing.T) {
	build := func() *cachemodel.Program {
		b := cachemodel.NewSub("S")
		A := b.Real8("A", 4096)
		B := b.Real8("B", 4096)
		i := cachemodel.Var("I")
		b.Do("I", cachemodel.Con(1), cachemodel.Con(4096)).
			Assign("S1", cachemodel.R(A, i), cachemodel.R(B, i)).
			End()
		p := cachemodel.NewProgram("S")
		p.Add(b.Build())
		return p
	}
	cfg := cachemodel.Default32K(1)
	ratio := func(pad int64) float64 {
		np, _, err := cachemodel.Prepare(build(), cachemodel.PrepareOptions{
			Layout: cachemodel.LayoutOptions{PadOf: map[string]int64{"B": pad}},
		})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := cachemodel.FindMisses(np, cfg, cachemodel.AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MissRatio()
	}
	conflicted, padded := ratio(0), ratio(32)
	if conflicted < 99 {
		t.Errorf("unpadded ratio %.2f, want ~100 (full conflict)", conflicted)
	}
	if padded > 30 {
		t.Errorf("padded ratio %.2f, want ~25", padded)
	}
}
