package main

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain lets the test binary impersonate the cachette CLI: when
// re-executed with CACHETTE_BE_CLI=1 it runs main() instead of the tests,
// so the os/exec tests below exercise the real binary entry point —
// including flag parsing and signal handling — without a separate build.
func TestMain(m *testing.M) {
	if os.Getenv("CACHETTE_BE_CLI") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// cliCommand builds an exec.Cmd that re-runs this test binary as the CLI.
func cliCommand(t *testing.T, args ...string) *exec.Cmd {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	cmd := exec.Command(exe, args...)
	cmd.Env = append(os.Environ(), "CACHETTE_BE_CLI=1")
	return cmd
}

// TestServeCLISigtermDrain runs `cachette serve` as a real process, does
// one analysis over HTTP, then sends SIGTERM and verifies the graceful
// drain contract: clean exit status, the result cache flushed to disk,
// and the run report written.
func TestServeCLISigtermDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a server process")
	}
	dir := t.TempDir()
	rcPath := filepath.Join(dir, "rc.json")
	obsPath := filepath.Join(dir, "serve-report.json")

	cmd := cliCommand(t, "serve", "-addr", "127.0.0.1:0", "-drain-timeout", "10s",
		"-resultcache", rcPath, "-obs-out", obsPath)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatalf("start serve: %v", err)
	}
	defer cmd.Process.Kill()

	// Scan stderr for the resolved listen address, then keep draining the
	// pipe so the child never blocks on a full buffer.
	addrCh := make(chan string, 1)
	logCh := make(chan string, 1)
	go func() {
		var lines strings.Builder
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			lines.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "cachette serve: listening on http://"); ok {
				addrCh <- rest
			}
		}
		logCh <- lines.String()
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("server never announced its listen address")
	}

	// One end-to-end analysis through the real process.
	resp, err := http.Post(base+"/v1/analyze", "application/json",
		strings.NewReader(`{"program":"hydro","size":24}`))
	if err != nil {
		t.Fatalf("POST analyze: %v", err)
	}
	var sub struct {
		Job string `json:"job"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decode submit: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || sub.Job == "" {
		t.Fatalf("submit: status %d job %q", resp.StatusCode, sub.Job)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/jobs/" + sub.Job)
		if err != nil {
			t.Fatalf("GET job: %v", err)
		}
		var jb struct {
			Status string `json:"status"`
		}
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		json.Unmarshal(blob, &jb)
		if jb.Status == "done" {
			break
		}
		if jb.Status == "failed" || time.Now().After(deadline) {
			t.Fatalf("job %s: status %q (%s)", sub.Job, jb.Status, blob)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// SIGTERM → graceful drain → clean exit.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("serve exited dirty after SIGTERM: %v\nstderr:\n%s", err, <-logCh)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("serve did not exit within 30s of SIGTERM")
	}
	logs := <-logCh
	if !strings.Contains(logs, "drained") {
		t.Errorf("drain never logged:\n%s", logs)
	}

	// The drain flushed a valid checksummed store and wrote the report.
	blob, err := os.ReadFile(rcPath)
	if err != nil {
		t.Fatalf("result cache not flushed: %v", err)
	}
	var store struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(blob, &store); err != nil || store.Schema == "" {
		t.Fatalf("flushed store malformed: %v (schema %q)", err, store.Schema)
	}
	rep, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatalf("run report not written: %v", err)
	}
	if !strings.Contains(string(rep), `"jobs"`) || !strings.Contains(string(rep), `"completed": 1`) {
		t.Fatalf("run report missing job outcomes:\n%s", rep)
	}
}

// TestCLIListRuns sanity-checks the re-exec harness on a trivial
// subcommand.
func TestCLIListRuns(t *testing.T) {
	out, err := cliCommand(t, "list").CombinedOutput()
	if err != nil {
		t.Fatalf("list: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "hydro") {
		t.Fatalf("list output missing built-ins:\n%s", out)
	}
}

// TestCLIScalingClosedForm runs the scaling subcommand end to end on a
// small ladder and checks it reports full closed-form coverage.
func TestCLIScalingClosedForm(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a CLI process")
	}
	out, err := cliCommand(t, "scaling", "-program", "hydro",
		"-cache", "256", "-line", "32", "-assoc", "1",
		"-from", "128", "-to", "224", "-step", "32").CombinedOutput()
	if err != nil {
		t.Fatalf("scaling: %v\n%s", err, out)
	}
	s := string(out)
	if !strings.Contains(s, "closed form: period") {
		t.Fatalf("no closed-form summary:\n%s", s)
	}
	if !strings.Contains(s, "0 fall-through(s)") {
		t.Fatalf("expected the whole ladder in closed form:\n%s", s)
	}
}

// TestCLIBenchScalingCheck runs `bench -scaling -check`: the match check
// inside the process gates on bit-identity between the closed form and
// the enumerating solver, so a clean exit plus a sane JSON is the test.
func TestCLIBenchScalingCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a CLI process")
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "BENCH_scaling.json")
	out, err := cliCommand(t, "bench", "-scaling", "-program", "hydro",
		"-cache", "256", "-line", "32", "-assoc", "1",
		"-from", "128", "-to", "224", "-step", "32",
		"-check", "-out", outPath).CombinedOutput()
	if err != nil {
		t.Fatalf("bench -scaling: %v\n%s", err, out)
	}
	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("artifact not written: %v", err)
	}
	var rep struct {
		Speedup float64 `json:"speedup"`
		Rows    []struct {
			ClosedForm bool `json:"closed_form"`
			Match      bool `json:"match"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("artifact malformed: %v\n%s", err, blob)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows, want 4\n%s", len(rep.Rows), blob)
	}
	for i, r := range rep.Rows {
		if !r.ClosedForm || !r.Match {
			t.Fatalf("row %d: closed_form=%v match=%v\n%s", i, r.ClosedForm, r.Match, blob)
		}
	}
}

// TestCLIAnalyzeSigintPartial verifies that every subcommand's signal
// context now covers SIGTERM: an analyze interrupted by SIGTERM exits
// through the cancellation path (typed error, non-zero exit) instead of
// being killed by the default handler mid-write.
func TestCLIAnalyzeSigintPartial(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a CLI process")
	}
	// A long-running exact analysis so the signal lands mid-solve.
	cmd := cliCommand(t, "analyze", "-program", "tomcatv", "-size", "200", "-iters", "4", "-exact")
	var out strings.Builder
	cmd.Stdout, cmd.Stderr = &out, &out
	if err := cmd.Start(); err != nil {
		t.Fatalf("start analyze: %v", err)
	}
	defer cmd.Process.Kill()
	time.Sleep(300 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("SIGTERM: %v", err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		var ee *exec.ExitError
		if err == nil {
			// The solve finished before the signal landed; nothing to assert.
			t.Skip("analysis completed before SIGTERM")
		}
		if !errorsAs(err, &ee) {
			t.Fatalf("analyze died abnormally: %v\n%s", err, out.String())
		}
		// Exit code 1 is the typed-error path through main; being killed by
		// the signal (ExitCode -1) would mean the handler never engaged.
		if ee.ExitCode() != 1 {
			t.Fatalf("exit code %d, want 1 (typed cancellation)\n%s", ee.ExitCode(), out.String())
		}
	case <-time.After(60 * time.Second):
		t.Fatalf("analyze ignored SIGTERM")
	}
	if !strings.Contains(out.String(), "cancel") {
		t.Errorf("no cancellation diagnostic in output:\n%s", out.String())
	}
}

// errorsAs avoids importing errors just for one assertion.
func errorsAs(err error, target **exec.ExitError) bool {
	if ee, ok := err.(*exec.ExitError); ok {
		*target = ee
		return true
	}
	return false
}

// TestDistCLICoordinateAndWork drives the distributed sweep commands as
// real processes: one coordinator, two workers, one of which is
// SIGKILLed mid-run and replaced. The coordinator must exit clean with
// its -check bit-identity gate on, write the merged report, and record
// dist outcomes in the run report.
func TestDistCLICoordinateAndWork(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns coordinator and worker processes")
	}
	dir := t.TempDir()
	outPath := filepath.Join(dir, "report.json")
	obsPath := filepath.Join(dir, "run.json")

	coord := cliCommand(t, "dist", "coordinate", "-addr", "127.0.0.1:0",
		"-program", "hydro", "-size", "12", "-sizes", "1024,2048,4096,8192",
		"-assocs", "1,2", "-exact", "-check", "-lease-ttl", "1s",
		"-linger", "10s", "-out", outPath, "-obs-out", obsPath)
	stderr, err := coord.StderrPipe()
	if err != nil {
		t.Fatalf("stderr pipe: %v", err)
	}
	if err := coord.Start(); err != nil {
		t.Fatalf("start coordinate: %v", err)
	}
	defer coord.Process.Kill()

	addrCh := make(chan string, 1)
	logCh := make(chan string, 1)
	go func() {
		var lines strings.Builder
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			lines.WriteString(line + "\n")
			if rest, ok := strings.CutPrefix(line, "cachette dist: coordinating on "); ok {
				addrCh <- rest
			}
		}
		logCh <- lines.String()
	}()
	var base string
	select {
	case base = <-addrCh:
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator never announced its address")
	}

	worker := func(id string) *exec.Cmd {
		w := cliCommand(t, "dist", "work", "-coordinator", base, "-id", id,
			"-poll", "50ms", "-resultcache", filepath.Join(dir, id+".rc.json"))
		w.Stderr = os.Stderr
		if err := w.Start(); err != nil {
			t.Fatalf("start worker %s: %v", id, err)
		}
		return w
	}
	victim := worker("victim")
	survivor := worker("survivor")

	// SIGKILL the victim shortly into the run — whatever it holds leased
	// expires and is stolen; the survivor and the replacement finish the
	// sweep either way.
	time.Sleep(300 * time.Millisecond)
	victim.Process.Kill()
	victim.Wait()
	replacement := worker("replacement")

	waitClean := func(name string, cmd *exec.Cmd) {
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("%s exited dirty: %v", name, err)
			}
		case <-time.After(90 * time.Second):
			t.Fatalf("%s did not exit", name)
		}
	}
	waitClean("survivor", survivor)
	waitClean("replacement", replacement)
	waitClean("coordinator", coord)
	logs := <-logCh
	if !strings.Contains(logs, "-check ok") {
		t.Errorf("bit-identity check never logged:\n%s", logs)
	}

	blob, err := os.ReadFile(outPath)
	if err != nil {
		t.Fatalf("merged report not written: %v", err)
	}
	var rep struct {
		Rows  []struct{ Error string } `json:"rows"`
		Stats struct {
			UnitsDone int `json:"units_done"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(blob, &rep); err != nil {
		t.Fatalf("merged report malformed: %v", err)
	}
	// The exact 4-size × 2-assoc grid packs into 2 geometry-column units
	// (one cache-size column per associativity; see dist column units).
	if len(rep.Rows) != 8 || rep.Stats.UnitsDone != 2 {
		t.Fatalf("report has %d rows, %d units done; want 8 rows / 2 column units\n%s", len(rep.Rows), rep.Stats.UnitsDone, blob)
	}
	rr, err := os.ReadFile(obsPath)
	if err != nil {
		t.Fatalf("run report not written: %v", err)
	}
	if !strings.Contains(string(rr), `"dist"`) {
		t.Fatalf("run report missing dist outcomes:\n%s", rr)
	}
}
