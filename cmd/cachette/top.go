package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"cachemodel/internal/dist"
)

// cmdTop is the fleet flight-recorder view: it polls the coordinator's
// /v1/dist/status and redraws a live summary — sweeps, queue depth,
// in-flight leases, per-worker throughput and lease age, and the
// straggler list (units that outlived a full lease TTL). `top` for a
// sweep fleet.
func cmdTop(args []string) error {
	fs := flag.NewFlagSet("top", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL (http://host:port), required")
	interval := fs.Duration("interval", time.Second, "refresh interval")
	frames := fs.Int("n", 0, "exit after this many frames (0 = until interrupted or coordinator exits)")
	plain := fs.Bool("plain", false, "no ANSI clear between frames (append frames; for logs and pipes)")
	fs.Parse(args)

	if *coord == "" {
		return fmt.Errorf("top: -coordinator is required")
	}
	cl := &dist.Client{Base: *coord}
	ctx, stop := signalContext()
	defer stop()

	tick := time.NewTicker(*interval)
	defer tick.Stop()
	for frame := 1; ; frame++ {
		st, err := cl.Status(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return nil
			}
			// The coordinator exiting when done is the normal end of a
			// watch session, not a failure worth a non-zero exit.
			fmt.Fprintf(os.Stderr, "cachette top: coordinator unreachable: %v\n", err)
			return nil
		}
		if !*plain {
			fmt.Print("\x1b[H\x1b[2J")
		}
		fmt.Print(renderTop(st, time.Now()))
		if *frames > 0 && frame >= *frames {
			return nil
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

// renderTop formats one frame of the fleet view. Pure (clock passed in),
// so tests can assert the layout without a coordinator.
func renderTop(st *dist.Status, now time.Time) string {
	var b strings.Builder
	fmt.Fprintf(&b, "cachette top — %s\n", now.Format("15:04:05"))
	fmt.Fprintf(&b, "units %d  done %d  queue %d  in-flight %d  stolen %d  retried %d  deduped %d\n\n",
		st.Units, st.UnitsDone, st.QueueDepth, st.InFlight,
		st.UnitsStolen, st.UnitsRetried, st.UnitsDeduped)

	fmt.Fprintf(&b, "%-14s %-10s %6s %6s  %s\n", "SWEEP", "STATE", "UNITS", "DONE", "TRACE")
	for _, sw := range st.Sweeps {
		state := "running"
		if sw.Failed != "" {
			state = "failed"
		} else if sw.Done {
			state = "done"
		}
		trace := sw.TraceID
		if len(trace) > 12 {
			trace = trace[:12]
		}
		fmt.Fprintf(&b, "%-14.12s %-10s %6d %6d  %s\n",
			sw.Sweep, state, sw.Stats.Units, sw.Stats.UnitsDone, trace)
	}

	fmt.Fprintf(&b, "\n%-12s %6s %9s %9s %9s  %s\n",
		"WORKER", "DONE", "UNITS/S", "SEEN", "LEASE", "UNIT")
	names := make([]string, 0, len(st.Workers))
	for w := range st.Workers {
		names = append(names, w)
	}
	sort.Strings(names)
	for _, w := range names {
		ws := st.Workers[w]
		state := ""
		if ws.Shutdown {
			state = " (shutdown)"
		}
		lease := "-"
		if ws.CurrentUnit != "" {
			lease = (time.Duration(ws.LeaseAgeMs) * time.Millisecond).Round(time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-12s %6d %9.2f %9s %9s  %.12s%s\n",
			w, ws.UnitsCompleted, ws.UnitsPerSec,
			(time.Duration(ws.LastSeenMs) * time.Millisecond).Round(time.Millisecond),
			lease, ws.CurrentUnit, state)
	}

	if len(st.Stragglers) > 0 {
		fmt.Fprintf(&b, "\nSTRAGGLERS (lease older than one TTL)\n")
		for _, s := range st.Stragglers {
			fmt.Fprintf(&b, "  %-14.12s seq %-4d worker %-12s age %s  sweep %.12s\n",
				s.Unit, s.Seq, s.Worker,
				(time.Duration(s.AgeMs) * time.Millisecond).Round(time.Millisecond), s.Sweep)
		}
	}
	return b.String()
}
