package main

import (
	"context"
	"expvar"
	"flag"
	"fmt"
	"net"
	"net/http"
	netpprof "net/http/pprof"
	"os"
	"time"

	"cachemodel/internal/cme"
	"cachemodel/internal/obs"
)

// obsOpts holds the observability flags shared by analyze, bench and sweep.
type obsOpts struct {
	verbose *bool
	addr    *string
	wait    *time.Duration
	out     *string
}

// obsFlags registers -v, -metrics-addr, -metrics-wait and -obs-out.
func obsFlags(fs *flag.FlagSet) *obsOpts {
	return &obsOpts{
		verbose: fs.Bool("v", false, "print throttled progress lines on stderr"),
		addr:    fs.String("metrics-addr", "", "serve /metrics (Prometheus), /debug/vars and /debug/pprof on this address (e.g. :9090, :0 = any port)"),
		wait:    fs.Duration("metrics-wait", 0, "keep the -metrics-addr server alive this long after the run (Ctrl-C ends it early)"),
		out:     fs.String("obs-out", "", "write the run-report JSON (schema "+obs.SchemaV1+") to this path"),
	}
}

// enabled reports whether any observability flag was set; when none is,
// the run uses the nil collector (the uninstrumented fast path).
func (o *obsOpts) enabled() bool {
	return *o.verbose || *o.addr != "" || *o.out != ""
}

// obsRun is one observed command invocation: the collector plus the
// optional metrics HTTP server.
type obsRun struct {
	opts    *obsOpts
	command string
	col     *obs.Collector
	srv     *http.Server
}

// start builds the run's collector (nil when no obs flag is set), installs
// the stderr progress printer under -v, and starts the -metrics-addr
// server. The resolved listen address is printed, so -metrics-addr :0
// is usable from scripts.
func (o *obsOpts) start(command string) (*obsRun, error) {
	r := &obsRun{opts: o, command: command}
	if !o.enabled() {
		return r, nil
	}
	r.col = obs.New(command)
	if *o.verbose {
		r.col.OnProgress(printProgress, 0)
	}
	if *o.addr != "" {
		obs.PublishExpvar()
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(r.col.Registry()))
		mux.Handle("/debug/vars", expvar.Handler())
		mux.HandleFunc("/debug/pprof/", netpprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", netpprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", netpprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", netpprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", netpprof.Trace)
		ln, err := net.Listen("tcp", *o.addr)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(os.Stderr, "cachette: metrics on http://%s/metrics\n", ln.Addr())
		r.srv = &http.Server{Handler: mux}
		go r.srv.Serve(ln)
	}
	return r, nil
}

// Collector returns the run's collector (nil when observability is off);
// attach it with obs.NewContext before calling the *Ctx entry points.
func (r *obsRun) Collector() *obs.Collector { return r.col }

// Context attaches the run's collector to ctx.
func (r *obsRun) Context(ctx context.Context) context.Context {
	return obs.NewContext(ctx, r.col)
}

// finish closes the run: it writes the run report first (so a watcher
// polling for the file can proceed while the server is still up), then
// holds the metrics server open for -metrics-wait, then shuts it down.
// ctx cancellation (Ctrl-C) ends the wait early.
func (r *obsRun) finish(ctx context.Context, program string, rep *cme.Report, cands []obs.CandidateProvenance) error {
	return r.finishReport(ctx, program, func(rr *obs.RunReport) {
		if rep != nil {
			rr.Report = provenanceOf(rep)
		}
		rr.Candidates = cands
	})
}

// finishReport is finish with an arbitrary report mutation — commands
// whose outcome is not a single cme.Report (dist coordinate attaches
// DistOutcomes) decorate the run report themselves.
func (r *obsRun) finishReport(ctx context.Context, program string, mutate func(*obs.RunReport)) error {
	if r.col == nil {
		return nil
	}
	rr := r.col.Report()
	rr.Program = program
	rr.Command = r.command
	if mutate != nil {
		mutate(rr)
	}
	if *r.opts.out != "" {
		if err := rr.WriteFile(*r.opts.out); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cachette: wrote run report %s\n", *r.opts.out)
	}
	if r.srv != nil {
		if *r.opts.wait > 0 {
			fmt.Fprintf(os.Stderr, "cachette: serving metrics for %s (Ctrl-C to stop)\n", *r.opts.wait)
			select {
			case <-time.After(*r.opts.wait):
			case <-ctx.Done():
			}
		}
		r.srv.Close()
	}
	return nil
}

// provenanceOf converts a Report's provenance fields to the run-report form.
func provenanceOf(rep *cme.Report) *obs.Provenance {
	s := rep.BudgetSpent
	return &obs.Provenance{
		Tier:         rep.Tier.String(),
		Degraded:     rep.Degraded,
		Coverage:     rep.Coverage(),
		MissRatioPct: rep.MissRatio(),
		Accesses:     rep.TotalAccesses(),
		Refs:         len(rep.Refs),
		CompleteRefs: rep.CompleteRefs(),
		Budget: obs.BudgetSpent{Points: s.Points, Scan: s.Scan, WallNs: s.Wall.Nanoseconds(),
			Checkpoints: s.Checkpoints, Graces: s.Graces},
	}
}

// printProgress is the -v stderr line: stage, done/total with percentage,
// the unit in flight, and a naive ETA extrapolated from the rate so far.
func printProgress(e obs.Event) {
	if e.Total > 0 {
		pct := 100 * float64(e.Done) / float64(e.Total)
		eta := ""
		if e.Done > 0 && e.Done < e.Total {
			rem := time.Duration(float64(e.Elapsed) * float64(e.Total-e.Done) / float64(e.Done))
			eta = fmt.Sprintf("  eta %s", rem.Round(time.Second))
		}
		fmt.Fprintf(os.Stderr, "cachette: %-12s %d/%d (%.1f%%)  %s%s\n",
			e.Stage, e.Done, e.Total, pct, e.Current, eta)
		return
	}
	fmt.Fprintf(os.Stderr, "cachette: %-12s %d  %s\n", e.Stage, e.Done, e.Current)
}

// cmdObscheck validates a run-report file against the documented schema —
// the CI smoke step runs it against the -obs-out artifact.
func cmdObscheck(args []string) error {
	fs := flag.NewFlagSet("obscheck", flag.ExitOnError)
	traceMode := fs.Bool("trace", false, "validate a Chrome trace-event JSON (dist coordinate -trace-out) instead of a run report")
	wantEvent := fs.String("want-event", "", "-trace: additionally require an event with this name (e.g. stolen)")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: cachette obscheck [-trace [-want-event NAME]] file.json")
	}
	blob, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	if *traceMode {
		tf, err := obs.ValidateTraceFile(blob)
		if err != nil {
			return err
		}
		if *wantEvent != "" && !tf.HasEvent(*wantEvent) {
			return fmt.Errorf("obscheck: %s has no %q event", fs.Arg(0), *wantEvent)
		}
		fmt.Printf("obscheck: %s ok — %d trace events, trace_id %v\n",
			fs.Arg(0), len(tf.TraceEvents), tf.Metadata["trace_id"])
		return nil
	}
	if *wantEvent != "" {
		return fmt.Errorf("obscheck: -want-event requires -trace")
	}
	r, err := obs.ValidateRunReport(blob)
	if err != nil {
		return err
	}
	fmt.Printf("obscheck: %s ok — program %s, command %s, %d counters, %d histograms, root span %q (%s)\n",
		fs.Arg(0), r.Program, r.Command, len(r.Metrics.Counters), len(r.Metrics.Histograms),
		r.Spans.Name, time.Duration(r.Spans.DurNs).Round(time.Millisecond))
	return nil
}
