package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"cachemodel/internal/dist"
	"cachemodel/internal/serve"
)

// cmdServe runs the multi-tenant analysis server: the internal/serve
// HTTP API (analyze/sweep jobs, SSE progress, /metrics) behind a bounded
// priority queue with admission control and load shedding. SIGINT/SIGTERM
// triggers a graceful drain: admission sheds 503, queued and running jobs
// finish (or are cancelled at -drain-timeout), the result cache flushes
// atomically, and the run report lands at -obs-out.
func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8344", "listen address (host:port; :0 = any port)")
	drain := fs.Duration("drain-timeout", 30*time.Second, "graceful drain allowance after SIGINT/SIGTERM before in-flight jobs are cancelled")
	queueCap := fs.Int("queue", 64, "admission queue capacity (full queue sheds 429)")
	workers := fs.Int("workers", 2, "concurrent jobs")
	solveWorkers := fs.Int("solve-workers", 0, "solver pool size per job (0 = GOMAXPROCS)")
	maxInflight := fs.Int64("max-points-inflight", 0, "global cap on summed declared point budgets (0 = unlimited; saturation sheds 503)")
	defPoints := fs.Int64("default-max-points", 0, "point budget imposed on requests that declare none (0 = 1<<22)")
	maxDeadline := fs.Duration("max-deadline", 60*time.Second, "upper bound on any job's wall-clock budget")
	maxSize := fs.Int64("max-size", 1024, "largest accepted problem size")
	maxCands := fs.Int("max-candidates", 256, "largest accepted sweep grid")
	rcFile := fs.String("resultcache", "", "load the content-addressed result cache from this path at startup and flush it on drain")
	retain := fs.Int("retain", 1024, "how many finished jobs stay queryable")
	obsOut := fs.String("obs-out", "", "write the server's run-report JSON (job outcomes, spans, metrics) here on exit")
	distOn := fs.Bool("dist", false, "mount a distributed-sweep coordinator under /v1/dist/")
	distJournal := fs.String("dist-journal", "", "coordinator journal path (resume a sweep after a restart)")
	distTTL := fs.Duration("dist-lease-ttl", 10*time.Second, "work-unit lease duration for the mounted coordinator")
	fs.Parse(args)

	var coord *dist.Coordinator
	var distHandler http.Handler
	if *distOn || *distJournal != "" {
		var err error
		coord, err = dist.New(dist.Options{
			LeaseTTL:    *distTTL,
			JournalPath: *distJournal,
			Logf: func(format string, a ...any) {
				fmt.Fprintf(os.Stderr, "cachette "+format+"\n", a...)
			},
		})
		if err != nil {
			return err
		}
		defer coord.Close()
		distHandler = coord.Handler()
	}

	s, err := serve.New(serve.Options{
		QueueCap:          *queueCap,
		Workers:           *workers,
		SolveWorkers:      *solveWorkers,
		MaxPointsInFlight: *maxInflight,
		DefaultMaxPoints:  *defPoints,
		MaxDeadline:       *maxDeadline,
		MaxProblemSize:    *maxSize,
		MaxCandidates:     *maxCands,
		CachePath:         *rcFile,
		RetainJobs:        *retain,
		Dist:              distHandler,
		Logf: func(format string, a ...any) {
			fmt.Fprintf(os.Stderr, "cachette "+format+"\n", a...)
		},
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address makes -addr :0 scriptable (the smoke test and
	// the CLI test both parse this line).
	fmt.Fprintf(os.Stderr, "cachette serve: listening on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	ctx, stop := signalContext()
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintf(os.Stderr, "cachette serve: signal received, draining (timeout %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	derr := s.Drain(dctx)

	// The HTTP front end stays up through the drain (job status stays
	// queryable, admission sheds typed); only now does it close.
	sctx, scancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer scancel()
	hs.Shutdown(sctx)

	if *obsOut != "" {
		rr := s.RunReport()
		if coord != nil {
			rr.Dist = coord.Outcomes()
		}
		if err := rr.WriteFile(*obsOut); err != nil {
			if derr == nil {
				derr = err
			}
		} else {
			fmt.Fprintf(os.Stderr, "cachette serve: wrote run report %s\n", *obsOut)
		}
	}
	return derr
}
