// Command cachette is the front end of the whole-program analytical cache
// model: it analyses the built-in workloads (the paper's kernels and whole
// programs), validates the analysis against the exact LRU simulator, and
// regenerates every table of the paper's evaluation.
//
// Usage:
//
//	cachette analyze  -program hydro -size 64 -cache 32768 -line 32 -assoc 2 [-exact]
//	cachette simulate -program mmt   -size 48 -cache 32768 -line 32 -assoc 1
//	cachette experiments [-table N|-all] [-scale quick|medium|paper] [-shrink K]
//	cachette show     -program swim -size 16   # normalised form, reuse summary
//	cachette list
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"cachemodel/internal/advisor"
	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/experiments"
	"cachemodel/internal/fparse"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/obs"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "analyze":
		err = cmdAnalyze(os.Args[2:])
	case "simulate":
		err = cmdSimulate(os.Args[2:])
	case "experiments":
		err = cmdExperiments(os.Args[2:])
	case "show":
		err = cmdShow(os.Args[2:])
	case "diagnose":
		err = cmdDiagnose(os.Args[2:])
	case "sweep":
		err = cmdSweep(os.Args[2:])
	case "scaling":
		err = cmdScaling(os.Args[2:])
	case "trace":
		err = cmdTrace(os.Args[2:])
	case "bench":
		err = cmdBench(os.Args[2:])
	case "obscheck":
		err = cmdObscheck(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "dist":
		err = cmdDist(os.Args[2:])
	case "top":
		err = cmdTop(os.Args[2:])
	case "list":
		err = cmdList()
	case "-h", "--help", "help":
		usage()
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cachette:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `cachette — analytical whole-program cache behaviour (Vera & Xue, HPCA 2002)

subcommands:
  analyze      run EstimateMisses (or -exact FindMisses) on a built-in program or -file prog.f
  simulate     run the exact LRU cache simulator on a built-in program
  experiments  regenerate the paper's tables (2-7)
  show         print the normalised form and reuse-vector summary
  diagnose     attribute predicted misses to interfering arrays
  sweep        sweep cache size/line/assoc, analytical vs simulated
  scaling      miss ratio as a function of problem size N from one symbolic solve (O(1) per size)
  trace        emit the program's memory reference trace (R/W address lines)
  bench        time the solver variants (sequential / memoized / parallel) and emit BENCH_solvers.json
  obscheck     validate a run-report JSON written by -obs-out (or, with -trace, a trace-event JSON)
  serve        run the multi-tenant analysis server (HTTP/JSON + SSE + /metrics)
  dist         distributed sweeps: 'coordinate' shards work units to leased workers, 'work' solves them
  top          live fleet view of a dist coordinator: sweeps, queue depth, workers, stragglers
  list         list the built-in programs

observability (analyze, bench, sweep):
  -v             throttled progress lines on stderr
  -metrics-addr  live Prometheus /metrics + /debug/pprof + /debug/vars endpoint
  -obs-out       run-report JSON: per-stage spans, solver counters, provenance
`)
}

// loadProgram loads a program: from a FORTRAN source file when file is
// set (consts like "N=100,M=50" fix the compile-time sizes), otherwise a
// built-in workload at the requested size.
func loadProgram(file, consts, name string, size, iters int64) (*ir.Program, error) {
	if file == "" {
		return buildProgram(name, size, iters)
	}
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	cm := map[string]int64{}
	if consts != "" {
		for _, kv := range strings.Split(consts, ",") {
			parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
			if len(parts) != 2 {
				return nil, fmt.Errorf("bad -const entry %q (want NAME=value)", kv)
			}
			v, err := strconv.ParseInt(parts[1], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -const value in %q: %v", kv, err)
			}
			cm[strings.ToUpper(parts[0])] = v
		}
	}
	return fparse.Parse(string(src), cm)
}

// buildProgram instantiates a built-in workload at the requested size.
func buildProgram(name string, size, iters int64) (*ir.Program, error) {
	switch strings.ToLower(name) {
	case "tomcatv":
		return kernels.Tomcatv(size, iters), nil
	case "swim":
		return kernels.Swim(size, iters), nil
	case "applu":
		return kernels.Applu(size, iters), nil
	case "vcycle":
		return kernels.VCycle(size, iters), nil
	}
	for _, spec := range kernels.Suite() {
		if strings.EqualFold(spec.Name, name) {
			return spec.Build(size), nil
		}
	}
	return nil, fmt.Errorf("unknown program %q (try: cachette list)", name)
}

func cmdList() error {
	fmt.Println("whole programs (-program, -size, -iters):")
	fmt.Printf("  %-10s %s\n", "tomcatv", "SPECfp95 Tomcatv model; -size = N, -iters = time steps")
	fmt.Printf("  %-10s %s\n", "swim", "SPECfp95 Swim model (CALC1/2/3 calls); -size = N, -iters = cycles")
	fmt.Printf("  %-10s %s\n", "applu", "SPECfp95 Applu model (SSOR, 16 subroutines); -size = N, -iters = itmax")
	fmt.Printf("  %-10s %s\n", "vcycle", "3-level multigrid V-cycle (R-able + sequence-associated calls); -size = N (mult. of 4, >= 16)")
	fmt.Println("kernels (-program, -size):")
	for _, spec := range kernels.Suite() {
		exact := ""
		if spec.Uniform {
			exact = " [exactly analysable]"
		}
		fmt.Printf("  %-10s %s%s\n", spec.Name, spec.Description, exact)
	}
	return nil
}

func prepare(p *ir.Program) (*ir.NProgram, *inline.Stats, error) {
	flat, st, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		return nil, nil, err
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		return nil, nil, err
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		return nil, nil, err
	}
	np.Name = p.Name
	return np, st, nil
}

func cacheFlags(fs *flag.FlagSet) (cs, ls *int64, assoc *int) {
	cs = fs.Int64("cache", 32*1024, "cache size in bytes")
	ls = fs.Int64("line", 32, "line size in bytes")
	assoc = fs.Int("assoc", 1, "associativity (1 = direct mapped)")
	return
}

// budgetFlags registers the analysis-budget flags shared by the budgeted
// subcommands.
func budgetFlags(fs *flag.FlagSet) (timeout *time.Duration, maxPoints, maxScan *int64, fallback *bool) {
	timeout = fs.Duration("timeout", 0, "wall-clock budget, e.g. 500ms (0 = unlimited)")
	maxPoints = fs.Int64("max-points", 0, "budget: max classified iteration points (0 = unlimited)")
	maxScan = fs.Int64("max-scan", 0, "budget: max interference-scan steps (0 = unlimited)")
	fallback = fs.Bool("fallback", true, "on budget exhaustion degrade to cheaper tiers instead of failing")
	return
}

// signalContext returns a context cancelled by Ctrl-C or SIGTERM, so an
// interactive interrupt — or a supervisor's shutdown — yields the partial
// result (and, for serve, a graceful drain) instead of killing the
// process mid-write.
func signalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// printProvenance reports which tier produced the result and what the
// budget cost, whenever a budget was in play or the analysis degraded.
func printProvenance(rep *cme.Report, limited bool) {
	if !limited && !rep.Degraded {
		return
	}
	fmt.Printf("  tier: %s   degraded: %v   point coverage: %.1f%% (%d/%d refs complete)\n",
		rep.Tier, rep.Degraded, 100*rep.Coverage(), rep.CompleteRefs(), len(rep.Refs))
	if limited {
		s := rep.BudgetSpent
		fmt.Printf("  budget spent: %s wall, %d points, %d scan steps, %d checkpoints\n",
			s.Wall.Round(time.Microsecond), s.Points, s.Scan, s.Checkpoints)
	}
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	name := fs.String("program", "hydro", "built-in program name")
	file := fs.String("file", "", "FORTRAN source file to analyse instead of a built-in")
	consts := fs.String("const", "", "compile-time constants for -file, e.g. N=100,M=50")
	size := fs.Int64("size", 32, "problem size")
	iters := fs.Int64("iters", 2, "outer iterations (whole programs)")
	cs, ls, assoc := cacheFlags(fs)
	exact := fs.Bool("exact", false, "run FindMisses (every point) instead of EstimateMisses")
	conf := fs.Float64("c", 0.95, "confidence level for EstimateMisses")
	width := fs.Float64("w", 0.05, "confidence interval half-width")
	perRef := fs.Bool("refs", false, "print the per-reference breakdown")
	nonUniform := fs.Bool("nonuniform", false, "resolve non-uniformly generated reuse (§8 future work)")
	workers := fs.Int("workers", 0, "parallel classification workers (0 = GOMAXPROCS, 1 = sequential)")
	noMemo := fs.Bool("nomemo", false, "disable the interference-walk verdict memo")
	noSymbolic := fs.Bool("nosymbolic", false, "disable the symbolic region fast path (classify every point)")
	timeout, maxPoints, maxScan, fallback := budgetFlags(fs)
	pstart, pstop, prof := profileFlags(fs)
	oflags := obsFlags(fs)
	fs.Parse(args)

	or, err := oflags.start("analyze")
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	ctx = or.Context(ctx)

	_, pspan := obs.StartSpan(ctx, "parse")
	p, err := loadProgram(*file, *consts, *name, *size, *iters)
	pspan.End()
	if err != nil {
		return err
	}
	_, prspan := obs.StartSpan(ctx, "prepare")
	np, _, err := prepare(p)
	prspan.End()
	if err != nil {
		return err
	}
	cfg := cache.Config{SizeBytes: *cs, LineBytes: *ls, Assoc: *assoc}
	_, rspan := obs.StartSpan(ctx, "reuse")
	a, err := cme.New(np, cfg, cme.Options{
		Reuse:         reuse.Options{NonUniform: *nonUniform},
		Workers:       *workers,
		NoMemo:        *noMemo,
		NoSymbolic:    *noSymbolic,
		ProfileLabels: prof(),
	})
	rspan.End()
	if err != nil {
		return err
	}
	b := budget.Budget{Deadline: *timeout, MaxPoints: *maxPoints, MaxScan: *maxScan, NoFallback: !*fallback}
	if err := pstart(); err != nil {
		return err
	}
	var rep *cme.Report
	var ierr error
	if *exact {
		rep, ierr = a.FindMissesCtx(ctx, b)
	} else {
		rep, ierr = a.EstimateMissesCtx(ctx, b, sampling.Plan{C: *conf, W: *width})
	}
	if perr := pstop(); perr != nil {
		return perr
	}
	if rep == nil {
		return ierr
	}
	mode := "EstimateMisses"
	if *exact {
		mode = "FindMisses"
	}
	fmt.Printf("%s  %s  cache %s\n", p.Name, mode, cfg)
	fmt.Printf("  references: %d   accesses: %d\n", len(rep.Refs), rep.TotalAccesses())
	fmt.Printf("  miss ratio: %.2f%%   estimated misses: %.0f   time: %.3fs\n",
		rep.MissRatio(), rep.EstimatedMisses(), rep.Elapsed.Seconds())
	printProvenance(rep, !b.IsZero() || ierr != nil)
	if ierr != nil {
		fmt.Printf("  analysis interrupted: %v (figures above cover the analysed part)\n", ierr)
	}
	if *perRef {
		sort.Slice(rep.Refs, func(i, j int) bool {
			return rep.Refs[i].MissRatio() > rep.Refs[j].MissRatio()
		})
		fmt.Printf("  %-28s %10s %10s %8s %8s %8s\n", "reference", "|RIS|", "analyzed", "%miss", "cold", "repl")
		for _, rr := range rep.Refs {
			fmt.Printf("  %-28s %10d %10d %8.2f %8d %8d\n",
				rr.Ref.ID, rr.Volume, rr.Analyzed, 100*rr.MissRatio(), rr.Cold, rr.Repl)
		}
	}
	if err := or.finish(ctx, p.Name, rep, nil); err != nil {
		return err
	}
	// A partial (interrupted, non-degraded) analysis exits non-zero so
	// scripts can tell it from a completed one.
	return ierr
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ExitOnError)
	name := fs.String("program", "hydro", "built-in program name")
	file := fs.String("file", "", "FORTRAN source file to simulate instead of a built-in")
	consts := fs.String("const", "", "compile-time constants for -file")
	size := fs.Int64("size", 32, "problem size")
	iters := fs.Int64("iters", 2, "outer iterations (whole programs)")
	cs, ls, assoc := cacheFlags(fs)
	workers := fs.Int("workers", 1, "set-sharded parallel replay workers (0 = GOMAXPROCS, 1 = sequential)")
	timeout, maxPoints, maxScan, _ := budgetFlags(fs)
	pstart, pstop, _ := profileFlags(fs)
	fs.Parse(args)

	p, err := loadProgram(*file, *consts, *name, *size, *iters)
	if err != nil {
		return err
	}
	np, _, err := prepare(p)
	if err != nil {
		return err
	}
	cfg := cache.Config{SizeBytes: *cs, LineBytes: *ls, Assoc: *assoc}
	ctx, stop := signalContext()
	defer stop()
	if err := pstart(); err != nil {
		return err
	}
	b := budget.Budget{Deadline: *timeout, MaxPoints: *maxPoints, MaxScan: *maxScan}
	var res *trace.SimResult
	var ierr error
	if *workers == 1 {
		res, ierr = trace.SimulateCtx(ctx, np, cfg, b)
	} else {
		res, ierr = trace.SimulateShardedCtx(ctx, np, cfg, cache.FetchOnWrite, b, *workers)
	}
	if perr := pstop(); perr != nil {
		return perr
	}
	if res == nil {
		return ierr
	}
	fmt.Printf("%s  simulator  cache %s\n", p.Name, cfg)
	fmt.Printf("  accesses: %d   misses: %d   miss ratio: %.2f%%\n",
		res.Accesses, res.Misses, res.MissRatio())
	if res.Truncated {
		fmt.Printf("  simulation truncated: %v (counts cover the replayed prefix)\n", ierr)
		return ierr
	}
	return nil
}

func cmdExperiments(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ExitOnError)
	table := fs.Int("table", 0, "table number (2-7); 0 with -all runs everything")
	all := fs.Bool("all", false, "run every table")
	scaleName := fs.String("scale", "quick", "problem scale: quick, medium or paper")
	shrink := fs.Int64("shrink", 4, "Table 7 size divisor (1 = the paper's N of 200/400)")
	fs.Parse(args)

	sc, ok := experiments.Scales[*scaleName]
	if !ok {
		return fmt.Errorf("unknown scale %q", *scaleName)
	}
	w := os.Stdout
	if *all || *table == 0 {
		return experiments.Summary(w, sc, *shrink)
	}
	switch *table {
	case 2:
		experiments.FormatTable2(w, experiments.RunTable2())
	case 3:
		rows, err := experiments.RunTable3(sc)
		if err != nil {
			return err
		}
		experiments.FormatTable3(w, rows)
	case 4:
		rows, err := experiments.RunTable4(sc)
		if err != nil {
			return err
		}
		experiments.FormatTable4(w, rows)
	case 5:
		rows, err := experiments.RunTable5(sc)
		if err != nil {
			return err
		}
		experiments.FormatTable5(w, rows)
	case 6:
		rows, err := experiments.RunTable6(sc)
		if err != nil {
			return err
		}
		experiments.FormatTable6(w, rows)
	case 7:
		rows, err := experiments.RunTable7(*shrink, experiments.Table7Configs)
		if err != nil {
			return err
		}
		experiments.FormatTable7(w, rows)
	default:
		return fmt.Errorf("no table %d (the paper has tables 2-7)", *table)
	}
	return nil
}

func cmdShow(args []string) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	name := fs.String("program", "hydro", "built-in program name")
	file := fs.String("file", "", "FORTRAN source file to show instead of a built-in")
	consts := fs.String("const", "", "compile-time constants for -file")
	size := fs.Int64("size", 8, "problem size")
	iters := fs.Int64("iters", 1, "outer iterations")
	vectors := fs.Bool("vectors", false, "print every reuse vector")
	fs.Parse(args)

	p, err := loadProgram(*file, *consts, *name, *size, *iters)
	if err != nil {
		return err
	}
	np, st, err := prepare(p)
	if err != nil {
		return err
	}
	fmt.Printf("%s: normalised to depth %d, %d statements, %d references, %d arrays\n",
		p.Name, np.Depth, len(np.Stmts), len(np.Refs), len(np.Arrays))
	fmt.Printf("inlining: %d calls (%d inlined, %d system), actuals P/R/N = %d/%d/%d\n",
		st.Calls, st.Inlined, st.SystemCalls, st.PAble, st.RAble, st.NAble)
	for _, s := range np.Stmts {
		fmt.Printf("  %-8s %v guards=%d refs=%d\n", s.Name, s.IterationVector(), len(s.Guards), len(s.Refs))
	}
	vecs := reuse.Generate(np, cache.Default32K(1), reuse.Options{})
	total := 0
	for _, vs := range vecs {
		total += len(vs)
	}
	fmt.Printf("reuse vectors: %d total over %d references\n", total, len(np.Refs))
	if *vectors {
		for _, r := range np.Refs {
			for _, v := range vecs[r] {
				fmt.Printf("  %v\n", v)
			}
		}
	}
	return nil
}

func cmdDiagnose(args []string) error {
	fs := flag.NewFlagSet("diagnose", flag.ExitOnError)
	name := fs.String("program", "hydro", "built-in program name")
	file := fs.String("file", "", "FORTRAN source file to diagnose instead of a built-in")
	consts := fs.String("const", "", "compile-time constants for -file")
	size := fs.Int64("size", 32, "problem size")
	iters := fs.Int64("iters", 2, "outer iterations (whole programs)")
	cs, ls, assoc := cacheFlags(fs)
	top := fs.Int("top", 10, "interference pairs to print")
	fs.Parse(args)

	p, err := loadProgram(*file, *consts, *name, *size, *iters)
	if err != nil {
		return err
	}
	np, _, err := prepare(p)
	if err != nil {
		return err
	}
	cfg := cache.Config{SizeBytes: *cs, LineBytes: *ls, Assoc: *assoc}
	d, err := advisor.Diagnose(np, cfg, cme.Options{}, sampling.Plan{C: 0.95, W: 0.05})
	if err != nil {
		return err
	}
	fmt.Printf("%s  diagnosis  cache %s  (%.3fs)\n", p.Name, cfg, d.Elapsed.Seconds())
	fmt.Printf("  miss ratio %.2f%%  (cold %.0f, replacement %.0f of %.0f accesses)\n",
		d.MissRatio(), d.Cold, d.Repl, d.Accesses)
	fmt.Printf("  self-interference share of replacement misses: %.0f%%\n", 100*d.SelfInterference)
	fmt.Printf("  heaviest interference pairs (victim <- interferer):\n")
	for _, cell := range d.Top(*top) {
		fmt.Printf("    %-10s <- %-10s %12.0f contentions\n",
			cell.Victim.Name, cell.Interferer.Name, cell.Contentions)
	}
	return nil
}

func cmdTrace(args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	name := fs.String("program", "hydro", "built-in program name")
	file := fs.String("file", "", "FORTRAN source file to trace instead of a built-in")
	consts := fs.String("const", "", "compile-time constants for -file")
	size := fs.Int64("size", 16, "problem size")
	iters := fs.Int64("iters", 1, "outer iterations (whole programs)")
	out := fs.String("out", "-", "output path (default stdout)")
	limit := fs.Int64("limit", 0, "stop after this many accesses (0 = all)")
	fs.Parse(args)

	p, err := loadProgram(*file, *consts, *name, *size, *iters)
	if err != nil {
		return err
	}
	np, _, err := prepare(p)
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	bw := bufio.NewWriter(w)
	defer bw.Flush()
	var n int64
	trace.Execute(np, func(r *ir.NRef, idx []int64) bool {
		kind := byte('R')
		if r.Write {
			kind = 'W'
		}
		fmt.Fprintf(bw, "%c %d\n", kind, r.AddressAt(idx))
		n++
		return *limit == 0 || n < *limit
	})
	fmt.Fprintf(os.Stderr, "cachette: wrote %d accesses\n", n)
	return nil
}
