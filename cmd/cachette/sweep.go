package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/layout"
	"cachemodel/internal/obs"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

// sweepResult is one candidate row of BENCH_sweep.json.
type sweepResult struct {
	Label     string  `json:"label"`
	CacheSize int64   `json:"cache_bytes"`
	LineSize  int64   `json:"line_bytes"`
	Assoc     int     `json:"assoc"`
	Pad       int64   `json:"pad_elems,omitempty"`
	MissRatio float64 `json:"miss_ratio_pct"`
	Tier      string  `json:"tier,omitempty"`
	// ClosedForm marks a candidate answered entirely by the
	// geometry-parametric tier's O(1) evaluation (no enumeration).
	ClosedForm bool    `json:"closed_form,omitempty"`
	SimRatio   float64 `json:"sim_miss_ratio_pct,omitempty"`
	Error      string  `json:"error,omitempty"`
}

// geomBenchRow is the geom_closed_form entry of BENCH_sweep.json: the
// same exact grid solved with the geometry-parametric tier on and off
// (the fused batch baseline), bit-identity verified, speedup gated in CI.
type geomBenchRow struct {
	Name            string  `json:"name"`
	GeomNs          int64   `json:"geom_ns"`
	FusedNs         int64   `json:"fused_ns"`
	Speedup         float64 `json:"speedup_vs_fused"`
	ClosedCands     int     `json:"closed_candidates"`
	AnchorCands     int     `json:"anchor_candidates"`
	FallthroughRefs int     `json:"fallthrough_refs"`
	GoMaxProcs      int     `json:"gomaxprocs"`
	Gated           bool    `json:"gated"`
}

// sweepReport is the BENCH_sweep.json document: the design-space results
// plus the batch-vs-independent timing the CI perf gate checks.
type sweepReport struct {
	Program    string `json:"program"`
	Size       int64  `json:"size"`
	Iters      int64  `json:"iters"`
	Exact      bool   `json:"exact"`
	Confidence string `json:"plan,omitempty"`
	Candidates int    `json:"candidates"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Workers    int    `json:"workers"`

	BatchNs       int64   `json:"batch_ns"`
	IndependentNs int64   `json:"independent_ns,omitempty"`
	Speedup       float64 `json:"speedup_vs_independent,omitempty"`

	ResultCache    *cme.CacheStats `json:"result_cache,omitempty"`
	GeomClosedForm *geomBenchRow   `json:"geom_closed_form,omitempty"`
	Results        []sweepResult   `json:"results"`
}

// cmdSweep evaluates a cache design space — size × line × associativity,
// optionally crossed with inter-array paddings — against one program in a
// single SolveBatch run over the geometry-invariant Prepared stage, and
// emits BENCH_sweep.json. With -check every candidate is also solved by an
// independent classic pipeline run (fresh normalise + New + solve), the
// reports are verified bit-identical, and the batch-vs-independent speedup
// is recorded; the command fails if the batch is slower.
func cmdSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ExitOnError)
	name := fs.String("program", "hydro", "built-in program name")
	file := fs.String("file", "", "FORTRAN source file to sweep instead of a built-in")
	consts := fs.String("const", "", "compile-time constants for -file")
	size := fs.Int64("size", 32, "problem size")
	iters := fs.Int64("iters", 2, "outer iterations (whole programs)")
	sizes := fs.String("sizes", "4096,8192,16384,32768,65536", "cache sizes in bytes, comma separated")
	sizesFrom := fs.Int64("sizes-from", 0, "generate a cache-size ladder from this many bytes (with -sizes-to/-sizes-step; replaces -sizes)")
	sizesTo := fs.Int64("sizes-to", 0, "ladder upper bound in bytes, inclusive")
	sizesStep := fs.Int64("sizes-step", 0, "ladder step in bytes")
	lines := fs.String("lines", "32", "line sizes in bytes, comma separated")
	assocs := fs.String("assocs", "1,2,4", "associativities, comma separated")
	padArray := fs.String("pad-array", "", "array to pad: crosses the geometry grid with one layout candidate per -pads entry")
	pads := fs.String("pads", "", "paddings in elements for -pad-array, comma separated (0 = the baseline layout)")
	exact := fs.Bool("exact", false, "solve every candidate exactly (FindMisses tier) instead of sampling")
	conf := fs.Float64("c", 0.95, "confidence level for the sampled tier")
	width := fs.Float64("w", 0.05, "confidence interval half-width for the sampled tier")
	adaptive := fs.Bool("adaptive", false, "sampled tier: variance-driven early stopping (Wilson interval)")
	noSymbolic := fs.Bool("nosymbolic", false, "disable the symbolic region fast path (classify every point)")
	noGeom := fs.Bool("nogeom", false, "disable the geometry-parametric closed-form tier (solve every candidate by the fused batch path)")
	workers := fs.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
	check := fs.Bool("check", false, "re-solve every candidate independently, verify bit-identical reports, and gate on the speedup")
	geomBench := fs.Bool("geom-bench", false, "re-solve the exact grid with the geometry-parametric tier off, verify bit-identity, and record the geom_closed_form speedup row")
	geomGate := fs.Float64("geom-gate", 0, "with -geom-bench: fail unless the geom speedup reaches this factor (applied only when >= 4 CPUs)")
	sim := fs.Bool("sim", false, "add an exact-simulator column (slow; display only)")
	rcFile := fs.String("resultcache", "", "load/save the content-addressed result cache at this path")
	out := fs.String("out", "BENCH_sweep.json", "output path for the JSON report (- = stdout only)")
	pstart, pstop, prof := profileFlags(fs)
	oflags := obsFlags(fs)
	fs.Parse(args)

	or, err := oflags.start("sweep")
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	ctx = or.Context(ctx)

	_, pspan := obs.StartSpan(ctx, "parse")
	p, err := loadProgram(*file, *consts, *name, *size, *iters)
	pspan.End()
	if err != nil {
		return err
	}
	_, prspan := obs.StartSpan(ctx, "prepare")
	np, _, err := prepare(p)
	prspan.End()
	if err != nil {
		return err
	}
	css, err := parseInt64List(*sizes)
	if err != nil {
		return err
	}
	if *sizesFrom > 0 {
		// The ladder is sized arithmetically before materialisation, so a
		// huge range is an argument error rather than an allocation.
		if *sizesStep <= 0 || *sizesTo < *sizesFrom {
			return fmt.Errorf("sweep: -sizes-from needs -sizes-to >= it and -sizes-step > 0")
		}
		n := (*sizesTo-*sizesFrom)/(*sizesStep) + 1
		if n > 65536 {
			return fmt.Errorf("sweep: size ladder has %d entries (max 65536)", n)
		}
		css = css[:0]
		for i := int64(0); i < n; i++ {
			css = append(css, *sizesFrom+i*(*sizesStep))
		}
	}
	lss, err := parseInt64List(*lines)
	if err != nil {
		return err
	}
	kss, err := parseInt64List(*assocs)
	if err != nil {
		return err
	}
	var padList []int64
	if *padArray != "" {
		if padList, err = parseInt64List(*pads); err != nil {
			return err
		}
	}
	if len(padList) == 0 {
		padList = []int64{0}
	}

	// The candidate grid. Pad 0 means the baseline layout (nil Layout).
	// Invalid geometries stay in the grid: SolveBatch records them as
	// per-candidate errors, so the JSON report carries the whole grid
	// instead of silently dropping rows.
	var cands []cme.Candidate
	var padOf []int64 // parallel to cands, for reporting and -check
	for _, cs := range css {
		for _, ls := range lss {
			for _, k := range kss {
				cfg := cache.Config{SizeBytes: cs, LineBytes: ls, Assoc: int(k)}
				for _, pad := range padList {
					c := cme.Candidate{Label: cfg.String(), Config: cfg}
					if pad > 0 {
						c.Label = fmt.Sprintf("%s+pad%d", cfg.String(), pad)
						c.Layout = &layout.Options{PadOf: map[string]int64{*padArray: pad}}
					}
					cands = append(cands, c)
					padOf = append(padOf, pad)
				}
			}
		}
	}
	if len(cands) == 0 {
		return fmt.Errorf("sweep: empty candidate grid")
	}

	opt := cme.Options{Adaptive: *adaptive, NoSymbolic: *noSymbolic, ProfileLabels: prof()}
	var plan *sampling.Plan
	if !*exact {
		plan = &sampling.Plan{C: *conf, W: *width}
		if err := plan.Validate(); err != nil {
			return err
		}
	}
	var rc *cme.ResultCache
	if *rcFile != "" {
		rc = cme.NewResultCache(0)
		if err := rc.Load(*rcFile); err != nil {
			return err
		}
	}

	if err := pstart(); err != nil {
		return err
	}

	// The batch run: one Prepare, one SolveBatch over the whole grid. A
	// *cme.BatchError means some candidates failed while the rest solved:
	// the report is still written — with each failure recorded on its row —
	// and the command exits non-zero at the end.
	t0 := time.Now()
	prepd, err := cme.Prepare(np, opt)
	if err != nil {
		return err
	}
	reps, err := prepd.SolveBatch(ctx, cands, cme.BatchOptions{Plan: plan, Cache: rc, Workers: *workers, NoGeom: *noGeom})
	batchNs := time.Since(t0).Nanoseconds()
	if perr := pstop(); perr != nil {
		return perr
	}
	var berr *cme.BatchError
	if err != nil && !errors.As(err, &berr) {
		return err
	}

	rep := sweepReport{Program: p.Name, Size: *size, Iters: *iters, Exact: *exact,
		Candidates: len(cands), GoMaxProcs: runtime.GOMAXPROCS(0), Workers: *workers,
		BatchNs: batchNs}
	if plan != nil {
		rep.Confidence = fmt.Sprintf("c=%g w=%g", plan.C, plan.W)
	}
	if rc != nil {
		s := rc.Stats()
		rep.ResultCache = &s
		if err := rc.Save(*rcFile); err != nil {
			return err
		}
	}

	// -geom-bench: re-solve the same exact grid on the same Prepared stage
	// with the geometry-parametric tier on and off, verify the reports are
	// bit-identical, and record the speedup the CI gate checks. The two
	// runs are timed without the result cache so neither side is served
	// pre-solved answers.
	if *geomBench {
		if !*exact {
			return fmt.Errorf("sweep: -geom-bench requires -exact (the tier only runs for exact batches)")
		}
		if *noGeom {
			return fmt.Errorf("sweep: -geom-bench contradicts -nogeom")
		}
		tg := time.Now()
		greps, gerr := prepd.SolveBatch(ctx, cands, cme.BatchOptions{Workers: *workers})
		geomNs := time.Since(tg).Nanoseconds()
		if gerr != nil {
			return fmt.Errorf("sweep -geom-bench: geom run: %v", gerr)
		}
		tf := time.Now()
		freps, ferr := prepd.SolveBatch(ctx, cands, cme.BatchOptions{Workers: *workers, NoGeom: true})
		fusedNs := time.Since(tf).Nanoseconds()
		if ferr != nil {
			return fmt.Errorf("sweep -geom-bench: fused run: %v", ferr)
		}
		row := geomBenchRow{Name: "geom_closed_form", GeomNs: geomNs, FusedNs: fusedNs,
			GoMaxProcs: runtime.GOMAXPROCS(0)}
		if geomNs > 0 {
			row.Speedup = float64(fusedNs) / float64(geomNs)
		}
		for i := range cands {
			if err := sweepSameReport(freps[i], greps[i], cands[i].Label); err != nil {
				return fmt.Errorf("geom tier diverged from the fused baseline: %w", err)
			}
			if g := greps[i].Geom; g != nil {
				if g.Closed() {
					row.ClosedCands++
				}
				if g.Anchor {
					row.AnchorCands++
				}
				row.FallthroughRefs += g.FallthroughRefs
			}
		}
		row.Gated = *geomGate > 0 && row.GoMaxProcs >= 4
		rep.GeomClosedForm = &row
		fmt.Fprintf(os.Stderr, "cachette sweep: geom_closed_form %d/%d candidates closed (%d anchors, %d fall-through refs); geom %v vs fused %v (%.2fx)\n",
			row.ClosedCands, len(cands), row.AnchorCands, row.FallthroughRefs,
			time.Duration(geomNs), time.Duration(fusedNs), row.Speedup)
		if row.Gated && row.Speedup < *geomGate {
			return fmt.Errorf("sweep -geom-bench: speedup %.2fx below the %.1fx gate", row.Speedup, *geomGate)
		}
	}

	// -check: solve every candidate with the classic per-candidate pipeline
	// — fresh front end, fresh analyzer — verify bit-identity, and time it.
	if *check {
		t1 := time.Now()
		checked := 0
		for i, c := range cands {
			if reps[i] == nil {
				continue // failed candidate; its error is recorded on the row
			}
			want, err := soloSolve(*file, *consts, *name, *size, *iters, c, opt, plan)
			if err != nil {
				return fmt.Errorf("sweep -check: %s: %v", c.Label, err)
			}
			if err := sweepSameReport(want, reps[i], c.Label); err != nil {
				return err
			}
			checked++
		}
		indepNs := time.Since(t1).Nanoseconds()
		rep.IndependentNs = indepNs
		if batchNs > 0 {
			rep.Speedup = float64(indepNs) / float64(batchNs)
		}
		fmt.Fprintf(os.Stderr, "cachette sweep: %d candidates bit-identical; batch %v vs independent %v (%.2fx)\n",
			checked, time.Duration(batchNs), time.Duration(indepNs), rep.Speedup)
		if indepNs < batchNs {
			return fmt.Errorf("sweep -check: batch solve slower than %d independent runs (%v > %v)",
				len(cands), time.Duration(batchNs), time.Duration(indepNs))
		}
	}

	fmt.Printf("%s — cache design sweep (%d candidates, one batch)\n", p.Name, len(cands))
	fmt.Printf("%10s %6s %6s %8s %10s %6s %10s\n", "size", "line", "assoc", "pad", "est %MR", "tier", "sim %MR")
	var cprov []obs.CandidateProvenance
	for i, c := range cands {
		row := sweepResult{Label: c.Label, CacheSize: c.Config.SizeBytes, LineSize: c.Config.LineBytes,
			Assoc: c.Config.Assoc, Pad: padOf[i]}
		cp := obs.CandidateProvenance{Label: c.Label}
		r := reps[i]
		if r == nil {
			if berr != nil && berr.Errs[i] != nil {
				row.Error = berr.Errs[i].Error()
				cp.Error = row.Error
			}
			rep.Results = append(rep.Results, row)
			cprov = append(cprov, cp)
			fmt.Printf("%10d %6d %6d %8d %29s\n",
				c.Config.SizeBytes, c.Config.LineBytes, c.Config.Assoc, padOf[i], "error: "+row.Error)
			continue
		}
		row.MissRatio = r.MissRatio()
		row.Tier = r.Tier.String()
		row.ClosedForm = r.Geom.Closed()
		cp.Tier = row.Tier
		cp.Degraded = r.Degraded
		cp.MissRatioPct = row.MissRatio
		simCol := "-"
		if *sim {
			sr, err := simulateUnder(*file, *consts, *name, *size, *iters, c)
			if err != nil {
				return err
			}
			row.SimRatio = sr
			simCol = fmt.Sprintf("%10.2f", sr)
		}
		rep.Results = append(rep.Results, row)
		cprov = append(cprov, cp)
		fmt.Printf("%10d %6d %6d %8d %10.2f %6s %10s\n",
			c.Config.SizeBytes, c.Config.LineBytes, c.Config.Assoc, padOf[i], row.MissRatio, row.Tier, simCol)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cachette sweep: wrote %s\n", *out)
	}
	if err := or.finish(ctx, p.Name, nil, cprov); err != nil {
		return err
	}
	// Per-candidate failures surface after the report is on disk: scripts
	// get the full grid either way, and the exit status still says "look".
	if berr != nil {
		return berr
	}
	return nil
}

// parseInt64List parses a comma-separated integer list.
func parseInt64List(s string) ([]int64, error) {
	var out []int64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseInt(part, 10, 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// soloSolve runs the classic per-candidate pipeline from scratch — load,
// inline, normalise, lay out (with the candidate's padding), analyse — the
// baseline the batch solver is measured and verified against.
func soloSolve(file, consts, name string, size, iters int64, c cme.Candidate, opt cme.Options, plan *sampling.Plan) (*cme.Report, error) {
	p, err := loadProgram(file, consts, name, size, iters)
	if err != nil {
		return nil, err
	}
	np, _, err := prepare(p)
	if err != nil {
		return nil, err
	}
	if c.Layout != nil {
		if err := layout.AssignProgram(np, *c.Layout); err != nil {
			return nil, err
		}
	}
	a, err := cme.New(np, c.Config, opt)
	if err != nil {
		return nil, err
	}
	if plan == nil {
		return a.FindMisses(), nil
	}
	return a.EstimateMisses(*plan)
}

// sweepSameReport verifies bit-identity between a batch report and its
// independent twin. Reference identity is by position and ID (the programs
// are separate builds of the same source, so pointers differ).
func sweepSameReport(want, got *cme.Report, label string) error {
	if got == nil {
		return fmt.Errorf("sweep -check: %s: missing batch report", label)
	}
	if len(want.Refs) != len(got.Refs) {
		return fmt.Errorf("sweep -check: %s: %d refs vs %d", label, len(got.Refs), len(want.Refs))
	}
	for i, w := range want.Refs {
		g := got.Refs[i]
		if w.Ref.ID != g.Ref.ID || w.Volume != g.Volume || w.Analyzed != g.Analyzed ||
			w.Hits != g.Hits || w.Cold != g.Cold || w.Repl != g.Repl {
			return fmt.Errorf("sweep -check: %s: ref %s diverged: got {analyzed %d hits %d cold %d repl %d} want {analyzed %d hits %d cold %d repl %d}",
				label, w.Ref.ID, g.Analyzed, g.Hits, g.Cold, g.Repl, w.Analyzed, w.Hits, w.Cold, w.Repl)
		}
	}
	return nil
}

// simulateUnder replays the exact simulator for one candidate on a fresh
// build of the program (simulation is display-only and documented slow, so
// a rebuild per candidate keeps the layout handling trivially correct).
func simulateUnder(file, consts, name string, size, iters int64, c cme.Candidate) (float64, error) {
	p, err := loadProgram(file, consts, name, size, iters)
	if err != nil {
		return 0, err
	}
	np, _, err := prepare(p)
	if err != nil {
		return 0, err
	}
	if c.Layout != nil {
		if err := layout.AssignProgram(np, *c.Layout); err != nil {
			return 0, err
		}
	}
	return trace.Simulate(np, c.Config).MissRatio(), nil
}
