package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/obs"
	"cachemodel/internal/trace"
)

// profileFlags registers -cpuprofile / -memprofile and returns start/stop
// closures bracketing the measured work plus a predicate reporting whether
// CPU profiling was requested — callers use it to turn on the solvers'
// pprof labels (ref, tile, candidate) only when a profile is being taken.
func profileFlags(fs *flag.FlagSet) (start func() error, stop func() error, active func() bool) {
	cpu := fs.String("cpuprofile", "", "write a CPU profile to this file")
	mem := fs.String("memprofile", "", "write a heap profile to this file on exit")
	var cpuFile *os.File
	start = func() error {
		if *cpu == "" {
			return nil
		}
		f, err := os.Create(*cpu)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return err
		}
		cpuFile = f
		return nil
	}
	stop = func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
			cpuFile = nil
		}
		if *mem == "" {
			return nil
		}
		f, err := os.Create(*mem)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		return pprof.WriteHeapProfile(f)
	}
	active = func() bool { return *cpu != "" }
	return start, stop, active
}

// benchResult is one row of BENCH_solvers.json.
type benchResult struct {
	Name string `json:"name"`
	// Workers is the effective worker count this row ran with — 1 for the
	// sequential variants, the -workers flag for the parallel ones — so a
	// row is interpretable without reconstructing it from the row name.
	Workers     int     `json:"workers"`
	Ns          int64   `json:"ns"`
	Points      int64   `json:"points"`
	NsPerPoint  float64 `json:"ns_per_point"`
	PointsPerS  float64 `json:"points_per_sec"`
	Speedup     float64 `json:"speedup_vs_seq"`
	MissRatio   float64 `json:"miss_ratio_pct"`
	ExactMisses int64   `json:"exact_misses,omitempty"`
	// SymbolicPct is the fraction (in percent) of classified points the
	// symbolic fast path resolved without enumerating them; present only
	// on rows that ran with the fast path enabled.
	SymbolicPct float64 `json:"symbolic_pct,omitempty"`
}

// benchReport is the BENCH_solvers.json document.
type benchReport struct {
	Program    string        `json:"program"`
	Size       int64         `json:"size"`
	Iters      int64         `json:"iters"`
	Cache      string        `json:"cache"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	Repeat     int           `json:"repeat"`
	Results    []benchResult `json:"results"`
}

// cmdBench times the solver variants against each other on one program and
// emits a machine-readable BENCH_solvers.json: the sequential seed path
// (one worker, no memo), the memoized sequential solver, the tile-parallel
// solver, and the sequential vs set-sharded simulator. With -check it also
// verifies that every variant produces counts bit-identical to the
// sequential baseline and fails otherwise.
func cmdBench(args []string) error {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	name := fs.String("program", "tomcatv", "built-in program name")
	file := fs.String("file", "", "FORTRAN source file to benchmark instead of a built-in")
	consts := fs.String("const", "", "compile-time constants for -file")
	size := fs.Int64("size", 32, "problem size")
	iters := fs.Int64("iters", 1, "outer iterations (whole programs)")
	cs, ls, assoc := cacheFlags(fs)
	workers := fs.Int("workers", runtime.GOMAXPROCS(0), "parallel worker count for the parallel variants")
	repeat := fs.Int("repeat", 1, "timing repetitions (the fastest is reported)")
	out := fs.String("out", "BENCH_solvers.json", "output path for the JSON report (- = stdout only)")
	check := fs.Bool("check", false, "verify all variants produce bit-identical counts")
	noSym := fs.Bool("nosymbolic", false, "disable the symbolic region fast path in every solver row")
	noSim := fs.Bool("nosim", false, "skip the simulator rows")
	scaling := fs.Bool("scaling", false, "benchmark the closed-form scaling tier over a size ladder instead (emits BENCH_scaling.json)")
	sizeConst := fs.String("size-const", "N", "with -scaling -file: the constant carrying the problem size")
	distMode := fs.Bool("dist", false, "benchmark the distributed sweep layer over worker counts instead (emits BENCH_dist.json)")
	distWorkers := fs.String("dist-workers", "1,4", "comma-separated worker counts for -dist")
	sweepMode := fs.Bool("sweep", false, "benchmark the geometry-parametric sweep tier over a cache-size column instead (delegates to the sweep subcommand with -exact -geom-bench; emits BENCH_sweep.json)")
	sweepFrom := fs.Int64("sweep-from", 40960, "-sweep: smallest cache size of the column in bytes")
	sweepTo := fs.Int64("sweep-to", 169984, "-sweep: largest cache size of the column in bytes")
	sweepStep := fs.Int64("sweep-step", 2048, "-sweep: cache-size stride in bytes")
	ladder := ladderFlags(fs)
	pstart, pstop, _ := profileFlags(fs)
	oflags := obsFlags(fs)
	fs.Parse(args)

	if *scaling {
		ns, err := ladder()
		if err != nil {
			return err
		}
		cfg := cache.Config{SizeBytes: *cs, LineBytes: *ls, Assoc: *assoc}
		if err := cfg.Validate(); err != nil {
			return err
		}
		dst := *out
		if dst == "BENCH_solvers.json" {
			dst = "BENCH_scaling.json"
		}
		return benchScaling(context.Background(), *name, *file, *consts, *sizeConst,
			*iters, cfg, *workers, ns, dst, *check)
	}

	if *distMode {
		wcounts, err := parseInt64List(*distWorkers)
		if err != nil {
			return fmt.Errorf("bench -dist-workers: %v", err)
		}
		dst := *out
		if dst == "BENCH_solvers.json" {
			dst = "BENCH_dist.json"
		}
		return benchDist(*name, *file, *consts, *size, *iters, wcounts, dst, *check)
	}

	if *sweepMode {
		// One sweep implementation: delegate to the sweep subcommand with
		// the bench-style defaults — an exact cache-size column plus the
		// geom-vs-fused benchmark row. -check arms the CI speedup gate
		// (sweep itself only applies it on runners with >= 4 CPUs).
		dst := *out
		if dst == "BENCH_solvers.json" {
			dst = "BENCH_sweep.json"
		}
		sargs := []string{
			"-program", *name, "-size", fmt.Sprint(*size), "-iters", fmt.Sprint(*iters),
			"-sizes-from", fmt.Sprint(*sweepFrom), "-sizes-to", fmt.Sprint(*sweepTo),
			"-sizes-step", fmt.Sprint(*sweepStep),
			"-lines", fmt.Sprint(*ls), "-assocs", fmt.Sprint(*assoc),
			"-workers", fmt.Sprint(*workers),
			"-exact", "-geom-bench", "-out", dst,
		}
		if *file != "" {
			sargs = append(sargs, "-file", *file, "-const", *consts)
		}
		if *check {
			sargs = append(sargs, "-geom-gate", "3")
		}
		return cmdSweep(sargs)
	}

	// The collector rides on a Background context (not the signal context):
	// a cancellable context makes the budget meter limited, which would put
	// probe checkpoints inside the timed loops and skew the rows.
	or, err := oflags.start("bench")
	if err != nil {
		return err
	}
	ctx := or.Context(context.Background())

	p, err := loadProgram(*file, *consts, *name, *size, *iters)
	if err != nil {
		return err
	}
	np, _, err := prepare(p)
	if err != nil {
		return err
	}
	cfg := cache.Config{SizeBytes: *cs, LineBytes: *ls, Assoc: *assoc}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if *repeat < 1 {
		*repeat = 1
	}
	if err := pstart(); err != nil {
		return err
	}

	// time returns the fastest wall time of repeat runs of f, which must
	// return the report it produced (the last one is kept for checking).
	timeIt := func(f func() *cme.Report) (time.Duration, *cme.Report) {
		var best time.Duration
		var rep *cme.Report
		for i := 0; i < *repeat; i++ {
			t0 := time.Now()
			rep = f()
			if d := time.Since(t0); i == 0 || d < best {
				best = d
			}
		}
		return best, rep
	}
	newAnalyzer := func(w int, noMemo, noSymbolic bool) *cme.Analyzer {
		a, err := cme.New(np, cfg, cme.Options{Workers: w, NoMemo: noMemo, NoSymbolic: noSymbolic || *noSym})
		if err != nil {
			panic(err)
		}
		return a
	}
	// Symbolic-coverage accounting: the solver splits every classified
	// point into symbolically resolved vs enumerated; deltas of the shared
	// counters around a timed run yield the row's coverage fraction.
	symCtr := obs.Default.Counter("cme_points_symbolic_total")
	enumCtr := obs.Default.Counter("cme_points_enumerated_total")
	symPct := func(f func()) float64 {
		s0, e0 := symCtr.Value(), enumCtr.Value()
		f()
		s, e := symCtr.Value()-s0, enumCtr.Value()-e0
		if s+e == 0 {
			return 0
		}
		return 100 * float64(s) / float64(s+e)
	}

	rep := benchReport{Program: p.Name, Size: *size, Iters: *iters, Cache: cfg.String(),
		GoMaxProcs: runtime.GOMAXPROCS(0), Workers: *workers, Repeat: *repeat}

	solve := func(a *cme.Analyzer) *cme.Report {
		r, _ := a.FindMissesCtx(ctx, budget.Budget{}) // unlimited: never errors
		return r
	}
	seqDur, seqRep := timeIt(func() *cme.Report { return solve(newAnalyzer(1, true, true)) })
	points := seqRep.TotalAccesses()
	row := func(name string, d time.Duration, r *cme.Report) benchResult {
		br := benchResult{Name: name, Workers: 1, Ns: d.Nanoseconds(), Points: points}
		if points > 0 {
			br.NsPerPoint = float64(d.Nanoseconds()) / float64(points)
		}
		if d > 0 {
			br.PointsPerS = float64(points) / d.Seconds()
			br.Speedup = float64(seqDur.Nanoseconds()) / float64(d.Nanoseconds())
		}
		if r != nil {
			br.MissRatio = r.MissRatio()
			br.ExactMisses = r.ExactMisses()
		}
		return br
	}
	rep.Results = append(rep.Results, row("findmisses_seq", seqDur, seqRep))

	memoDur, memoRep := timeIt(func() *cme.Report { return solve(newAnalyzer(1, false, true)) })
	rep.Results = append(rep.Results, row("findmisses_memo", memoDur, memoRep))

	// Single-core symbolic row: memo + region fast path. Its speedup over
	// findmisses_memo isolates the fast path's contribution.
	var symDur time.Duration
	var symRep *cme.Report
	pct := symPct(func() { symDur, symRep = timeIt(func() *cme.Report { return solve(newAnalyzer(1, false, false)) }) })
	symRow := row("findmisses_symbolic", symDur, symRep)
	symRow.SymbolicPct = pct
	rep.Results = append(rep.Results, symRow)

	var parDur time.Duration
	var parRep *cme.Report
	pct = symPct(func() {
		parDur, parRep = timeIt(func() *cme.Report { return solve(newAnalyzer(*workers, false, false)) })
	})
	parRow := row(fmt.Sprintf("findmisses_parallel_w%d", *workers), parDur, parRep)
	parRow.Workers = *workers
	parRow.SymbolicPct = pct
	rep.Results = append(rep.Results, parRow)

	var simSeq, simShard *trace.SimResult
	var simSeqDur, simShardDur time.Duration
	if !*noSim {
		for i := 0; i < *repeat; i++ {
			t0 := time.Now()
			simSeq, _ = trace.SimulateCtx(ctx, np, cfg, budget.Budget{})
			if d := time.Since(t0); i == 0 || d < simSeqDur {
				simSeqDur = d
			}
		}
		sr := benchResult{Name: "simulate_seq", Workers: 1, Ns: simSeqDur.Nanoseconds(), Points: simSeq.Accesses, Speedup: 1}
		if simSeq.Accesses > 0 {
			sr.NsPerPoint = float64(simSeqDur.Nanoseconds()) / float64(simSeq.Accesses)
			sr.PointsPerS = float64(simSeq.Accesses) / simSeqDur.Seconds()
		}
		sr.MissRatio = simSeq.MissRatio()
		rep.Results = append(rep.Results, sr)

		for i := 0; i < *repeat; i++ {
			t0 := time.Now()
			simShard, _ = trace.SimulateShardedCtx(ctx, np, cfg, cache.FetchOnWrite, budget.Budget{}, *workers)
			if d := time.Since(t0); i == 0 || d < simShardDur {
				simShardDur = d
			}
		}
		ss := benchResult{Name: fmt.Sprintf("simulate_sharded_w%d", *workers), Workers: *workers, Ns: simShardDur.Nanoseconds(), Points: simShard.Accesses}
		if simShard.Accesses > 0 {
			ss.NsPerPoint = float64(simShardDur.Nanoseconds()) / float64(simShard.Accesses)
			ss.PointsPerS = float64(simShard.Accesses) / simShardDur.Seconds()
		}
		if simShardDur > 0 {
			ss.Speedup = float64(simSeqDur.Nanoseconds()) / float64(simShardDur.Nanoseconds())
		}
		ss.MissRatio = simShard.MissRatio()
		rep.Results = append(rep.Results, ss)
	}
	if err := pstop(); err != nil {
		return err
	}

	if *check {
		if err := sameReport(seqRep, memoRep, "findmisses_memo"); err != nil {
			return err
		}
		if err := sameReport(seqRep, symRep, "findmisses_symbolic"); err != nil {
			return err
		}
		if err := sameReport(seqRep, parRep, "findmisses_parallel"); err != nil {
			return err
		}
		if simSeq != nil && simShard != nil {
			if simSeq.Accesses != simShard.Accesses || simSeq.Misses != simShard.Misses {
				return fmt.Errorf("bench -check: sharded simulator diverged: %d/%d accesses, %d/%d misses",
					simShard.Accesses, simSeq.Accesses, simShard.Misses, simSeq.Misses)
			}
			// Regression gate on the single-shard bypass: with one
			// effective shard the sharded entry point dispatches straight
			// to the sequential simulator, so (best-of-repeat both sides)
			// it can only trail simulate_seq by timer jitter. A bigger
			// deficit means the bypass broke and the w1 path is paying
			// queue and merge overhead again.
			effShards := *workers
			if effShards == 0 {
				effShards = runtime.GOMAXPROCS(0)
			}
			if ns := cfg.NumSets(); int64(effShards) > ns {
				effShards = int(ns)
			}
			if effShards <= 1 && simShardDur > simSeqDur+simSeqDur/4 {
				return fmt.Errorf("bench -check: single-shard simulator bypass regressed: sharded %v vs sequential %v (tolerance 1.25x)",
					simShardDur, simSeqDur)
			}
		}
		fmt.Fprintln(os.Stderr, "cachette bench: all variants bit-identical to the sequential baseline")
		// Performance gate: on a machine with real parallelism the
		// tile-parallel solver must at least keep up with the sequential
		// seed path (best-of-repeat each). Uniprocessors are exempt —
		// there the memoization, not the worker pool, carries the win.
		if runtime.GOMAXPROCS(0) >= 4 && *workers > 1 && parDur > seqDur {
			return fmt.Errorf("bench -check: parallel solver slower than sequential (%v > %v) with %d workers on %d CPUs",
				parDur, seqDur, *workers, runtime.GOMAXPROCS(0))
		}
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "-" {
		if err := os.WriteFile(*out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cachette bench: wrote %s\n", *out)
	}
	os.Stdout.Write(blob)
	return or.finish(ctx, p.Name, seqRep, nil)
}

// sameReport verifies two exact reports carry identical per-reference
// counts (the bit-identity contract of the parallel and memoized solvers).
func sameReport(want, got *cme.Report, name string) error {
	if len(want.Refs) != len(got.Refs) {
		return fmt.Errorf("bench -check: %s: %d refs vs %d", name, len(got.Refs), len(want.Refs))
	}
	for i, w := range want.Refs {
		g := got.Refs[i]
		if w.Ref != g.Ref || w.Volume != g.Volume || w.Analyzed != g.Analyzed ||
			w.Hits != g.Hits || w.Cold != g.Cold || w.Repl != g.Repl {
			return fmt.Errorf("bench -check: %s: ref %s diverged: got {analyzed %d hits %d cold %d repl %d} want {analyzed %d hits %d cold %d repl %d}",
				name, w.Ref.ID, g.Analyzed, g.Hits, g.Cold, g.Repl, w.Analyzed, w.Hits, w.Cold, w.Repl)
		}
	}
	return nil
}
