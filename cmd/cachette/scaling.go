package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/fparse"
	"cachemodel/internal/ir"
)

// ladderFlags registers the size-ladder flags shared by `scaling` and
// `bench -scaling` and returns a closure producing the ladder.
func ladderFlags(fs *flag.FlagSet) func() ([]int64, error) {
	from := fs.Int64("from", 512, "smallest problem size of the ladder")
	to := fs.Int64("to", 1472, "largest problem size of the ladder")
	step := fs.Int64("step", 64, "ladder stride")
	ns := fs.String("ns", "", "explicit comma-separated size list (overrides -from/-to/-step)")
	return func() ([]int64, error) {
		if *ns != "" {
			var out []int64
			for _, s := range strings.Split(*ns, ",") {
				v, err := strconv.ParseInt(strings.TrimSpace(s), 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad -ns entry %q: %v", s, err)
				}
				out = append(out, v)
			}
			return out, nil
		}
		if *step <= 0 || *to < *from {
			return nil, fmt.Errorf("bad ladder: from %d to %d step %d", *from, *to, *step)
		}
		var out []int64
		for n := *from; n <= *to; n += *step {
			out = append(out, n)
		}
		return out, nil
	}
}

// scalingBuild returns the scaling tier's program family: a built-in
// workload parameterised by size, or a FORTRAN source whose size constant
// is rebound per instantiation.
func scalingBuild(file, consts, sizeConst, name string, iters int64) (cme.BuildFunc, error) {
	if file == "" {
		return func(n int64) (*ir.NProgram, error) {
			p, err := buildProgram(name, n, iters)
			if err != nil {
				return nil, err
			}
			np, _, err := prepare(p)
			return np, err
		}, nil
	}
	src, err := os.ReadFile(file)
	if err != nil {
		return nil, err
	}
	return func(n int64) (*ir.NProgram, error) {
		cm := map[string]int64{strings.ToUpper(sizeConst): n}
		if consts != "" {
			for _, kv := range strings.Split(consts, ",") {
				parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("bad -const entry %q (want NAME=value)", kv)
				}
				v, err := strconv.ParseInt(parts[1], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("bad -const value in %q: %v", kv, err)
				}
				cm[strings.ToUpper(parts[0])] = v
			}
		}
		p, err := fparse.Parse(string(src), cm)
		if err != nil {
			return nil, err
		}
		np, _, err := prepare(p)
		return np, err
	}, nil
}

// cmdScaling answers "how does the miss ratio scale with the problem
// size?" from one symbolic solve: the program family is lifted to
// piecewise quasi-polynomials in N and the ladder is answered by O(1)
// evaluation, with per-size fall-through for sizes the closed form cannot
// cover.
func cmdScaling(args []string) error {
	fs := flag.NewFlagSet("scaling", flag.ExitOnError)
	name := fs.String("program", "tomcatv", "built-in program name")
	file := fs.String("file", "", "FORTRAN source file to analyse instead of a built-in")
	consts := fs.String("const", "", "fixed compile-time constants for -file, e.g. M=50")
	sizeConst := fs.String("size-const", "N", "the -file constant that carries the problem size")
	iters := fs.Int64("iters", 1, "outer iterations (whole programs)")
	cs, ls, assoc := cacheFlags(fs)
	ladder := ladderFlags(fs)
	workers := fs.Int("workers", 0, "parallel workers for the internal fit solves (0 = GOMAXPROCS)")
	perRef := fs.Bool("refs", false, "print the per-reference closed forms")
	plot := fs.Bool("plot", true, "print the miss-ratio-vs-N bar plot")
	fs.Parse(args)

	ns, err := ladder()
	if err != nil {
		return err
	}
	build, err := scalingBuild(*file, *consts, *sizeConst, *name, *iters)
	if err != nil {
		return err
	}
	cfg := cache.Config{SizeBytes: *cs, LineBytes: *ls, Assoc: *assoc}
	ctx, stop := signalContext()
	defer stop()

	start := time.Now()
	s, err := cme.PrepareScaling(build, cfg, cme.Options{Workers: *workers}, cme.ScalingOptions{})
	if err != nil {
		return err
	}
	reps, err := s.SolveLadder(ctx, ns)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	label := *name
	if *file != "" {
		label = *file
	}
	fmt.Printf("%s  scaling  cache %s\n", label, cfg)
	if !s.ClosedFormEligible() {
		fmt.Printf("  family not liftable (%s): every size solved by fall-through\n", s.Why())
	} else {
		st := s.Stats()
		fmt.Printf("  closed form: period %d, %d residue class(es) fitted with %d sample solve(s); %d O(1) eval(s), %d fall-through(s)\n",
			s.Period(), st.ResiduesFitted, st.FitSolves, st.ClosedEvals, st.Fallbacks)
	}
	fmt.Printf("  %8s %14s %14s %8s  %s\n", "N", "accesses", "misses", "%miss", "tier")
	var maxRatio float64
	for _, rep := range reps {
		if rep != nil && rep.MissRatio() > maxRatio {
			maxRatio = rep.MissRatio()
		}
	}
	for i, rep := range reps {
		if rep == nil {
			fmt.Printf("  %8d %14s %14s %8s  unsolved\n", ns[i], "-", "-", "-")
			continue
		}
		tier := "exact (fall-through)"
		if rep.Scaling != nil && rep.Scaling.ClosedForm {
			tier = fmt.Sprintf("closed form (%d/%d refs)", rep.Scaling.ClosedFormRefs, rep.Scaling.TotalRefs)
		}
		bar := ""
		if *plot && maxRatio > 0 {
			bar = "  " + strings.Repeat("#", int(rep.MissRatio()/maxRatio*40+0.5))
		}
		fmt.Printf("  %8d %14d %14d %8.2f  %-24s%s\n",
			ns[i], rep.TotalAccesses(), rep.ExactMisses(), rep.MissRatio(), tier, bar)
	}
	fmt.Printf("  total time: %.3fs\n", elapsed.Seconds())
	if *perRef {
		printMissPolys(s)
	}
	return nil
}

// printMissPolys dumps the accumulated per-reference closed forms.
func printMissPolys(s *cme.ScalingSolver) {
	polys := s.MissPolys()
	if len(polys) == 0 {
		return
	}
	fmt.Printf("  per-reference closed forms (period %d):\n", s.Period())
	for _, mp := range polys {
		fmt.Printf("    %-28s |RIS| = %s\n", mp.RefID, mp.Volume)
		if mp.PureCold {
			fmt.Printf("    %-28s   pure cold: misses = |RIS|\n", "")
			continue
		}
		rs := make([]int64, 0, len(mp.Residues))
		for r := range mp.Residues {
			rs = append(rs, r)
		}
		sort.Slice(rs, func(i, j int) bool { return rs[i] < rs[j] })
		for _, r := range rs {
			cls := mp.Residues[r]
			fmt.Printf("    %-28s   n≡%d: cold = %s, repl = %s  (n ≥ %d)\n",
				"", r, cls.Cold, cls.Repl, cls.Base)
		}
	}
}

// scalingRow is one ladder entry of BENCH_scaling.json.
type scalingRow struct {
	N          int64   `json:"n"`
	Accesses   int64   `json:"accesses"`
	Misses     int64   `json:"misses"`
	MissRatio  float64 `json:"miss_ratio_pct"`
	ClosedNs   int64   `json:"closed_ns"`
	ExactNs    int64   `json:"exact_ns"`
	ClosedForm bool    `json:"closed_form"`
	Match      bool    `json:"match"`
}

// scalingBenchReport is the BENCH_scaling.json document.
type scalingBenchReport struct {
	Program    string       `json:"program"`
	Cache      string       `json:"cache"`
	Iters      int64        `json:"iters"`
	GoMaxProcs int          `json:"gomaxprocs"`
	Workers    int          `json:"workers"`
	Ladder     []int64      `json:"ladder"`
	Period     int64        `json:"period"`
	FitSolves  int64        `json:"fit_solves"`
	PrepNs     int64        `json:"symbolic_prep_ns"`
	ClosedNs   int64        `json:"symbolic_total_ns"` // prep + fits + all evals
	ExactNs    int64        `json:"per_size_total_ns"`
	Speedup    float64      `json:"speedup"`
	ClosedRefs int          `json:"closed_form_refs"`
	TotalRefs  int          `json:"total_refs"`
	Rows       []scalingRow `json:"rows"`
}

// benchScaling is `cachette bench -scaling`: one symbolic solve plus O(1)
// evaluations against per-size re-enumeration over the same ladder, with
// a bit-identity match check at every size.
func benchScaling(ctx context.Context, name, file, consts, sizeConst string, iters int64,
	cfg cache.Config, workers int, ns []int64, out string, check bool) error {

	build, err := scalingBuild(file, consts, sizeConst, name, iters)
	if err != nil {
		return err
	}
	opt := cme.Options{Workers: workers}

	// Symbolic lap: prepare (3 probes + volume lift), lazy fits, then one
	// O(1) evaluation per ladder size. EvalClosedCtx never enumerates a
	// ladder size — a size the closed form cannot cover stays unanswered
	// here and is flagged below rather than silently re-solved.
	t0 := time.Now()
	s, err := cme.PrepareScaling(build, cfg, opt, cme.ScalingOptions{})
	if err != nil {
		return err
	}
	prepNs := time.Since(t0).Nanoseconds()
	closed := make([]*cme.Report, len(ns))
	closedNs := make([]int64, len(ns))
	for i, n := range ns {
		e0 := time.Now()
		rep, ok, err := s.EvalClosedCtx(ctx, n)
		if err != nil {
			return err
		}
		closedNs[i] = time.Since(e0).Nanoseconds()
		if ok {
			closed[i] = rep
		}
	}
	symTotal := time.Since(t0).Nanoseconds()

	// Enumerating lap: the ordinary per-size pipeline, same worker count.
	exact := make([]*cme.Report, len(ns))
	exactNs := make([]int64, len(ns))
	x0 := time.Now()
	for i, n := range ns {
		e0 := time.Now()
		np, err := build(n)
		if err != nil {
			return err
		}
		a, err := cme.New(np, cfg, opt)
		if err != nil {
			return err
		}
		rep, err := a.FindMissesCtx(ctx, budget.Budget{})
		if err != nil {
			return err
		}
		exact[i], exactNs[i] = rep, time.Since(e0).Nanoseconds()
	}
	exactTotal := time.Since(x0).Nanoseconds()

	st := s.Stats()
	rep := scalingBenchReport{
		Program: name, Cache: cfg.String(), Iters: iters,
		GoMaxProcs: runtime.GOMAXPROCS(0), Workers: workers,
		Ladder: ns, Period: s.Period(), FitSolves: st.FitSolves,
		PrepNs: prepNs, ClosedNs: symTotal, ExactNs: exactTotal,
	}
	if file != "" {
		rep.Program = file
	}
	if symTotal > 0 {
		rep.Speedup = float64(exactTotal) / float64(symTotal)
	}
	allMatch, allClosed := true, true
	for i, n := range ns {
		row := scalingRow{N: n, ClosedNs: closedNs[i], ExactNs: exactNs[i]}
		row.Accesses = exact[i].TotalAccesses()
		row.Misses = exact[i].ExactMisses()
		row.MissRatio = exact[i].MissRatio()
		if closed[i] != nil {
			row.ClosedForm = true
			row.Match = sameReportByID(exact[i], closed[i]) == nil
			if info := closed[i].Scaling; info != nil {
				rep.ClosedRefs, rep.TotalRefs = info.ClosedFormRefs, info.TotalRefs
			}
		}
		allMatch = allMatch && (!row.ClosedForm || row.Match)
		allClosed = allClosed && row.ClosedForm
		rep.Rows = append(rep.Rows, row)
	}

	if check {
		if !allClosed {
			return fmt.Errorf("bench -scaling -check: closed form did not cover the whole ladder (%s)", s.Why())
		}
		if !allMatch {
			for i, r := range rep.Rows {
				if !r.Match {
					return sameReportByID(exact[i], closed[i])
				}
			}
		}
		fmt.Fprintf(os.Stderr, "cachette bench -scaling: closed form bit-identical to the enumerating solver at all %d sizes (speedup %.1fx)\n",
			len(ns), rep.Speedup)
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out != "-" {
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cachette bench: wrote %s\n", out)
	}
	os.Stdout.Write(blob)
	return nil
}

// sameReportByID checks two exact reports for identical per-reference
// counts, matching references by ID (the scaling report's refs belong to
// the template instantiation, not the per-size program).
func sameReportByID(want, got *cme.Report) error {
	if len(want.Refs) != len(got.Refs) {
		return fmt.Errorf("bench -scaling: %d refs vs %d", len(got.Refs), len(want.Refs))
	}
	byID := map[string]*cme.RefReport{}
	for _, rr := range want.Refs {
		byID[rr.Ref.ID] = rr
	}
	for _, g := range got.Refs {
		w := byID[g.Ref.ID]
		if w == nil {
			return fmt.Errorf("bench -scaling: ref %s missing from the exact report", g.Ref.ID)
		}
		if w.Volume != g.Volume || w.Analyzed != g.Analyzed ||
			w.Hits != g.Hits || w.Cold != g.Cold || w.Repl != g.Repl {
			return fmt.Errorf("bench -scaling: ref %s diverged: closed {vol %d analyzed %d hits %d cold %d repl %d} exact {vol %d analyzed %d hits %d cold %d repl %d}",
				g.Ref.ID, g.Volume, g.Analyzed, g.Hits, g.Cold, g.Repl,
				w.Volume, w.Analyzed, w.Hits, w.Cold, w.Repl)
		}
	}
	return nil
}
