package main

import (
	"strings"
	"testing"
	"time"

	"cachemodel/internal/dist"
)

func TestRenderTop(t *testing.T) {
	st := &dist.Status{
		Units: 6, UnitsDone: 3, QueueDepth: 2, InFlight: 1,
		UnitsStolen: 1, UnitsRetried: 0, UnitsDeduped: 4,
		Sweeps: []*dist.SweepStatus{
			{Sweep: "cfd5c1cf7374deadbeef", TraceID: "df452a48daaca62cb8027666953ecdbf",
				Stats: dist.SweepStats{Units: 6, UnitsDone: 3}},
			{Sweep: "aaaa000011112222", Done: true, Stats: dist.SweepStats{Units: 2, UnitsDone: 2}},
		},
		Workers: map[string]dist.WorkerStatus{
			"w0": {UnitsCompleted: 3, UnitsPerSec: 1.5, LastSeenMs: 120,
				CurrentUnit: "b8a1841752ef00aa", LeaseAgeMs: 12000},
			"w1": {UnitsCompleted: 0, LastSeenMs: 30000, Shutdown: true},
		},
		Stragglers: []dist.Straggler{
			{Unit: "b8a1841752ef00aa", Sweep: "cfd5c1cf7374deadbeef", Worker: "w0",
				Seq: 4, AgeMs: 12000},
		},
	}
	out := renderTop(st, time.Unix(1754000000, 0))

	for _, want := range []string{
		"units 6  done 3  queue 2  in-flight 1  stolen 1",
		"cfd5c1cf7374", // sweep id truncated to 12
		"df452a48daac", // trace id truncated to 12
		"running",
		"done",
		"w0",
		"12s", // lease age
		"(shutdown)",
		"STRAGGLERS",
		"b8a1841752ef",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("renderTop missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b") {
		t.Errorf("renderTop emits ANSI escapes (the caller owns screen control)")
	}
}
