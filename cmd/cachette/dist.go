package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strings"
	"time"

	"cachemodel/internal/dist"
	"cachemodel/internal/obs"
)

// distLogf builds the Logf seam for a dist process: the default plain
// stderr lines, or a structured slog logger (-log json|text) stamped
// with the component (and worker id) so fleet logs from many processes
// interleave greppably.
func distLogf(format, component, workerID string) (func(string, ...any), error) {
	if format == "" {
		return func(f string, a ...any) {
			fmt.Fprintf(os.Stderr, "cachette "+f+"\n", a...)
		}, nil
	}
	if format != "json" && format != "text" {
		return nil, fmt.Errorf("-log must be json or text (got %q)", format)
	}
	attrs := []slog.Attr{slog.String("component", component)}
	if workerID != "" {
		attrs = append(attrs, slog.String("worker_id", workerID))
	}
	return obs.Logf(obs.NewLogger(os.Stderr, format == "json", attrs...)), nil
}

// cmdDist dispatches the distributed-sweep subcommands: coordinate (the
// scheduling side: decompose, lease, steal, merge) and work (the solving
// side: lease, solve, checkpoint, complete).
func cmdDist(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("usage: cachette dist coordinate|work [flags]")
	}
	switch args[0] {
	case "coordinate":
		return cmdDistCoordinate(args[1:])
	case "work":
		return cmdDistWork(args[1:])
	default:
		return fmt.Errorf("unknown dist subcommand %q (want coordinate or work)", args[0])
	}
}

// cmdDistCoordinate runs the sweep coordinator: it decomposes the sweep
// into content-addressed work units, serves HTTP leases to workers
// (stealing expired ones, deduping identical units, retrying failures),
// journals state for crash recovery, and writes the deterministically
// merged report. With -check the merged rows are byte-compared against a
// single-process SolveBatch of the same spec.
func cmdDistCoordinate(args []string) error {
	fs := flag.NewFlagSet("dist coordinate", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:8355", "listen address (host:port; :0 = any port)")
	journal := fs.String("journal", "", "append-only journal path: a restarted coordinator replays it and resumes the sweep")
	leaseTTL := fs.Duration("lease-ttl", 10*time.Second, "work-unit lease duration; a lease not heartbeat within it is stolen")
	unitRetries := fs.Int("unit-retries", 3, "worker-reported failures tolerated per unit before the sweep fails")
	exitDone := fs.Bool("exit-when-done", true, "tell workers to shut down and exit once every submitted sweep is done")
	linger := fs.Duration("linger", 5*time.Second, "after completion, keep serving this long so polling workers receive their shutdown")
	out := fs.String("out", "DIST_report.json", "output path for the merged report JSON (- = stdout only)")
	check := fs.Bool("check", false, "byte-compare the merged rows against a single-process SolveBatch of the same spec")
	traceOut := fs.String("trace-out", "", "write the sweep's Chrome trace-event JSON here (load at ui.perfetto.dev); forces tracing on")
	logFmt := fs.String("log", "", "structured logs on stderr: json or text (default: plain lines)")

	name := fs.String("program", "", "built-in program name")
	file := fs.String("file", "", "FORTRAN source file to sweep instead of a built-in")
	consts := fs.String("const", "", "compile-time constants for -file (NAME=value, comma separated)")
	size := fs.Int64("size", 32, "problem size")
	iters := fs.Int64("iters", 2, "outer iterations (whole programs)")
	sizes := fs.String("sizes", "4096,8192,16384,32768,65536", "cache sizes in bytes, comma separated")
	lines := fs.String("lines", "32", "line sizes in bytes, comma separated")
	assocs := fs.String("assocs", "1,2,4", "associativities, comma separated")
	padArray := fs.String("pad-array", "", "array to pad: crosses the geometry grid with one layout candidate per -pads entry")
	pads := fs.String("pads", "", "paddings in elements for -pad-array, comma separated")
	exact := fs.Bool("exact", false, "solve every candidate exactly instead of sampling")
	conf := fs.Float64("c", 0.95, "confidence level for the sampled tier")
	width := fs.Float64("w", 0.05, "confidence interval half-width for the sampled tier")
	adaptive := fs.Bool("adaptive", false, "sampled tier: variance-driven early stopping")
	unitSize := fs.Int("unit-size", 1, "consecutive candidates per work unit (1 = maximal stealing granularity)")
	noColumnUnits := fs.Bool("no-column-units", false, "keep per-candidate units even when an exact same-line-size cache-size column could ship as one geometry-parametric unit")
	prune := fs.Bool("prune", false, "search mode: rank the grid under a cheap sampled pass and shard exact solves only for the advisor frontier")
	pruneKeep := fs.Int("prune-keep", 0, "prune: frontier floor — this many best candidates always survive (0 = default 4)")
	pruneMargin := fs.Float64("prune-margin", 0, "prune: survive within this percent of the best candidate (0 = default 10)")
	oflags := obsFlags(fs)
	fs.Parse(args)

	or, err := oflags.start("dist coordinate")
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	ctx = or.Context(ctx)

	spec, err := distSpec(*name, *file, *consts, *size, *iters, *sizes, *lines, *assocs,
		*padArray, *pads, *exact, *conf, *width, *adaptive, *unitSize, *prune, *pruneKeep, *pruneMargin)
	if err != nil {
		return err
	}
	if spec != nil {
		spec.NoColumnUnits = *noColumnUnits
	}
	if *check && spec != nil && spec.Prune {
		return fmt.Errorf("dist coordinate: -check is incompatible with -prune (pruned rows are advisor estimates, not solves)")
	}

	logf, err := distLogf(*logFmt, "coordinator", "")
	if err != nil {
		return err
	}
	c, err := dist.New(dist.Options{
		LeaseTTL:         *leaseTTL,
		UnitRetries:      *unitRetries,
		JournalPath:      *journal,
		ShutdownWhenDone: *exitDone,
		Trace:            *traceOut != "",
		Logf:             logf,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The resolved address makes -addr :0 scriptable (the CI smoke test
	// parses this line to point the workers somewhere).
	fmt.Fprintf(os.Stderr, "cachette dist: coordinating on http://%s\n", ln.Addr())
	hs := &http.Server{Handler: c.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	defer hs.Close()

	var id string
	if spec != nil {
		st, err := c.AddSweep(ctx, spec)
		if err != nil {
			return err
		}
		id = st.Sweep
		fmt.Fprintf(os.Stderr, "cachette dist: sweep %.12s — %d candidates in %d units (%d deduped, %d pruned)\n",
			id, st.Stats.Candidates, st.Stats.Units, st.Stats.Deduped, st.Stats.Pruned)
	} else if *exitDone {
		return fmt.Errorf("dist coordinate: no sweep spec (-program or -file) and -exit-when-done; nothing to do")
	}

	finishObs := func() error {
		return or.finishReport(ctx, programLabel(spec), func(rr *obs.RunReport) {
			rr.Dist = c.Outcomes()
		})
	}

	if id == "" {
		// Pure server mode: sweeps arrive over POST /v1/dist/sweep; serve
		// until a signal.
		select {
		case err := <-serveErr:
			return err
		case <-ctx.Done():
		}
		return finishObs()
	}

	if err := c.Wait(ctx, id); err != nil {
		ferr := finishObs()
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "cachette dist: interrupted; journal (if set) allows resume")
			return ferr
		}
		return err
	}
	rep, err := c.Report(id)
	if err != nil {
		return err
	}
	st, _ := c.SweepStatus(id)
	if st != nil {
		fmt.Fprintf(os.Stderr, "cachette dist: sweep %.12s done — %d units (%d stolen, %d retried, %d deduped)\n",
			id, st.Stats.Units, st.Stats.Stolen, st.Stats.Retried, st.Stats.Deduped)
	}

	if *check {
		want, err := spec.SolveLocal(ctx, 0)
		if err != nil {
			return fmt.Errorf("dist coordinate -check: baseline: %v", err)
		}
		wb, err1 := json.Marshal(want)
		gb, err2 := json.Marshal(rep.Rows)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("dist coordinate -check: marshal: %v %v", err1, err2)
		}
		if string(wb) != string(gb) {
			return fmt.Errorf("dist coordinate -check: merged rows differ from single-process baseline")
		}
		fmt.Fprintf(os.Stderr, "cachette dist: -check ok — %d merged rows bit-identical to single-process solve\n", len(rep.Rows))
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out == "-" {
		os.Stdout.Write(blob)
	} else {
		if err := obs.WriteFileAtomic(*out, blob); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cachette dist: wrote %s\n", *out)
	}

	if *traceOut != "" {
		tf, err := c.Trace(id)
		if err != nil {
			return err
		}
		if err := tf.WriteFile(*traceOut); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cachette dist: wrote trace %s (%d events; load at ui.perfetto.dev)\n",
			*traceOut, len(tf.TraceEvents))
	}

	// Stay up briefly so workers polling for their next unit receive the
	// shutdown answer instead of a connection error. The floor guards
	// against exiting before a just-started worker makes first contact —
	// the coordinator cannot count a worker it has never heard from.
	if *exitDone && *linger > 0 {
		floor := *linger
		if floor > time.Second {
			floor = time.Second
		}
		start := time.Now()
		deadline := time.After(*linger)
		tick := time.NewTicker(50 * time.Millisecond)
		defer tick.Stop()
	lingerLoop:
		for {
			select {
			case <-deadline:
				break lingerLoop
			case <-ctx.Done():
				break lingerLoop
			case <-tick.C:
				if time.Since(start) < floor {
					continue
				}
				// A worker is gone once it acknowledged shutdown or went
				// silent past its lease horizon (killed, no longer polling).
				allDown := true
				for _, w := range c.Status().Workers {
					if !w.Shutdown && w.LastSeenMs < (2**leaseTTL).Milliseconds() {
						allDown = false
						break
					}
				}
				if allDown {
					break lingerLoop
				}
			}
		}
	}
	return finishObs()
}

// cmdDistWork runs one worker process against a coordinator: lease,
// solve, checkpoint, complete, until the coordinator says shutdown.
func cmdDistWork(args []string) error {
	fs := flag.NewFlagSet("dist work", flag.ExitOnError)
	coord := fs.String("coordinator", "", "coordinator base URL (http://host:port), required")
	id := fs.String("id", "", "worker identity in leases and stats (default derived from the URL)")
	solveWorkers := fs.Int("solve-workers", 1, "per-unit solver pool size (the dist layer owns the fan-out)")
	rcFile := fs.String("resultcache", "", "persist the content-addressed result cache here after every unit (the checkpoint) and warm from it on startup")
	warm := fs.String("warm", "", "additional result-cache stores to warm from, comma separated")
	poll := fs.Duration("poll", 500*time.Millisecond, "idle re-lease interval")
	cacheCap := fs.Int("cache-cap", 0, "in-memory result cache entries (0 = default 65536)")
	metricsAddr := fs.String("metrics-addr", "", "serve /metrics (Prometheus) on this address (:0 = any port) — solve/lease latency histograms live here")
	logFmt := fs.String("log", "", "structured logs on stderr: json or text (default: plain lines)")
	fs.Parse(args)

	if *coord == "" {
		return fmt.Errorf("dist work: -coordinator is required")
	}
	if *metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", obs.Handler(obs.Default))
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cachette dist: worker metrics on http://%s/metrics\n", ln.Addr())
		ms := &http.Server{Handler: mux}
		go ms.Serve(ln)
		defer ms.Close()
	}
	var warmPaths []string
	for _, p := range strings.Split(*warm, ",") {
		if p = strings.TrimSpace(p); p != "" {
			warmPaths = append(warmPaths, p)
		}
	}
	logf, err := distLogf(*logFmt, "worker", *id)
	if err != nil {
		return err
	}
	w, err := dist.NewWorker(dist.WorkerOptions{
		Coordinator:  *coord,
		ID:           *id,
		SolveWorkers: *solveWorkers,
		CachePath:    *rcFile,
		WarmPaths:    warmPaths,
		CacheCap:     *cacheCap,
		Poll:         *poll,
		Logf:         logf,
	})
	if err != nil {
		return err
	}
	ctx, stop := signalContext()
	defer stop()
	fmt.Fprintf(os.Stderr, "cachette dist: worker %s leasing from %s\n", w.ID(), *coord)
	if err := w.Run(ctx); err != nil && ctx.Err() == nil {
		return err
	}
	return nil
}

// distSpec assembles a SweepSpec from the coordinate flags; nil when no
// program was named (pure server mode).
func distSpec(name, file, consts string, size, iters int64, sizes, lines, assocs,
	padArray, pads string, exact bool, conf, width float64, adaptive bool,
	unitSize int, prune bool, pruneKeep int, pruneMargin float64) (*dist.SweepSpec, error) {
	if name == "" && file == "" {
		return nil, nil
	}
	spec := &dist.SweepSpec{
		ProgramSpec: dist.ProgramSpec{Program: name, Size: size, Iters: iters},
		SolveSpec: dist.SolveSpec{Exact: exact, Confidence: conf, Width: width,
			Adaptive: adaptive},
		PadArray:    padArray,
		UnitSize:    unitSize,
		Prune:       prune,
		PruneKeep:   pruneKeep,
		PruneMargin: pruneMargin,
	}
	if file != "" {
		if name != "" {
			return nil, fmt.Errorf("dist coordinate: set -program or -file, not both")
		}
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		spec.Source = string(src)
		spec.Program = ""
		if consts != "" {
			spec.Consts = map[string]int64{}
			for _, kv := range strings.Split(consts, ",") {
				parts := strings.SplitN(strings.TrimSpace(kv), "=", 2)
				if len(parts) != 2 {
					return nil, fmt.Errorf("bad -const entry %q (want NAME=value)", kv)
				}
				var v int64
				if _, err := fmt.Sscanf(parts[1], "%d", &v); err != nil {
					return nil, fmt.Errorf("bad -const value in %q: %v", kv, err)
				}
				spec.Consts[strings.ToUpper(parts[0])] = v
			}
		}
	}
	var err error
	if spec.CacheSizes, err = parseInt64List(sizes); err != nil {
		return nil, err
	}
	if spec.LineSizes, err = parseInt64List(lines); err != nil {
		return nil, err
	}
	ks, err := parseInt64List(assocs)
	if err != nil {
		return nil, err
	}
	for _, k := range ks {
		spec.Assocs = append(spec.Assocs, int(k))
	}
	if padArray != "" {
		if spec.Pads, err = parseInt64List(pads); err != nil {
			return nil, err
		}
	}
	return spec, nil
}

// programLabel names the run for the report.
func programLabel(spec *dist.SweepSpec) string {
	if spec == nil {
		return "coordinator"
	}
	if spec.Program != "" {
		return spec.Program
	}
	return "source"
}
