package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"sync"
	"time"

	"cachemodel/internal/dist"
)

// distBenchRow is one worker-count measurement of BENCH_dist.json.
// GoMaxProcs records the CPU allotment the row's workers actually ran
// under (in-process workers share the benchmark process's GOMAXPROCS),
// and SpeedupVsW1 is only emitted when the worker count fits inside that
// allotment: a "4-worker speedup" measured on one CPU is time-slicing,
// not scaling, and reporting it as a speedup would be dishonest.
type distBenchRow struct {
	Workers      int     `json:"workers"`
	GoMaxProcs   int     `json:"gomaxprocs"`
	Ns           int64   `json:"ns"`
	CandsPerSec  float64 `json:"cands_per_sec"`
	SpeedupVsW1  float64 `json:"speedup_vs_w1,omitempty"`
	Stolen       int64   `json:"units_stolen"`
	Deduped      int64   `json:"units_deduped"`
	BitIdentical bool    `json:"bit_identical"`
}

// distBenchReport is the BENCH_dist.json document: the single-process
// baseline plus one row per worker count, every row byte-compared
// against the baseline.
type distBenchReport struct {
	Program    string         `json:"program"`
	Size       int64          `json:"size"`
	Iters      int64          `json:"iters"`
	Exact      bool           `json:"exact"`
	Candidates int            `json:"candidates"`
	Units      int            `json:"units"`
	GoMaxProcs int            `json:"gomaxprocs"`
	LocalNs    int64          `json:"local_ns"`
	Results    []distBenchRow `json:"results"`
}

// benchDist measures distributed sweep throughput across worker counts:
// for each count, a fresh in-process coordinator serves HTTP leases to
// that many in-process workers (SolveWorkers 1 each — the dist layer
// owns the fan-out) over a 48-geometry exact sweep, and the merged rows
// are byte-compared against a single-process SolveBatch baseline. With
// check, any bit-identity violation fails, and on a machine with real
// parallelism (>= 4 CPUs) so does a 4-worker speedup under 1.5x.
func benchDist(name, file, consts string, size, iters int64, wcounts []int64, out string, check bool) error {
	// A fixed 48-geometry exact grid: big enough that work stealing and
	// the lease protocol are exercised, small enough for a CI smoke run.
	spec, err := distSpec(name, file, consts, size, iters,
		"1024,2048,4096,8192,16384,32768,65536,131072", "16,32,64", "1,2",
		"", "", true, 0, 0, false, 0, false, 0, 0)
	if err != nil {
		return err
	}
	if spec == nil {
		return fmt.Errorf("bench -dist: no program (set -program or -file)")
	}

	ctx := context.Background()
	t0 := time.Now()
	baseline, err := spec.SolveLocal(ctx, 1)
	if err != nil {
		return fmt.Errorf("bench -dist: baseline: %v", err)
	}
	localNs := time.Since(t0).Nanoseconds()
	want, err := json.Marshal(baseline)
	if err != nil {
		return err
	}
	for _, r := range baseline {
		if r.Error != "" {
			return fmt.Errorf("bench -dist: baseline candidate %s failed: %s", r.Label, r.Error)
		}
	}

	rep := distBenchReport{Program: name, Size: size, Iters: iters, Exact: true,
		Candidates: len(baseline), GoMaxProcs: runtime.GOMAXPROCS(0), LocalNs: localNs}
	var w1Ns int64
	for _, wc := range wcounts {
		n := int(wc)
		if n < 1 {
			return fmt.Errorf("bench -dist: worker count %d", n)
		}
		row, units, err := benchDistOnce(ctx, spec, n, want)
		if err != nil {
			return err
		}
		rep.Units = units
		if n == 1 {
			w1Ns = row.Ns
		}
		// A speedup claim needs the cores to back it: rows whose worker
		// count exceeds the CPU allotment are emitted without one (the
		// wall time and throughput stand on their own).
		if w1Ns > 0 && row.Ns > 0 && n <= row.GoMaxProcs {
			row.SpeedupVsW1 = float64(w1Ns) / float64(row.Ns)
		}
		rep.Results = append(rep.Results, *row)
		if row.SpeedupVsW1 > 0 {
			fmt.Fprintf(os.Stderr, "cachette bench -dist: w%d %v (%.1f cands/s, %.2fx vs w1, identical=%v)\n",
				n, time.Duration(row.Ns), row.CandsPerSec, row.SpeedupVsW1, row.BitIdentical)
		} else {
			fmt.Fprintf(os.Stderr, "cachette bench -dist: w%d %v (%.1f cands/s, no speedup row: %d workers on %d CPUs, identical=%v)\n",
				n, time.Duration(row.Ns), row.CandsPerSec, n, row.GoMaxProcs, row.BitIdentical)
		}
	}

	if check {
		maxRow := distBenchRow{}
		for _, r := range rep.Results {
			if !r.BitIdentical {
				return fmt.Errorf("bench -dist -check: merged rows at %d workers differ from the single-process baseline", r.Workers)
			}
			// Only CPU-covered rows (those carrying a speedup) compete for
			// the throughput gate: an oversubscribed row measures the
			// scheduler, not the dist layer.
			if r.SpeedupVsW1 > 0 && r.Workers > maxRow.Workers {
				maxRow = r
			}
		}
		// The throughput gate needs real cores: a uniprocessor serialises
		// the workers and proves only correctness, not scaling.
		if runtime.GOMAXPROCS(0) >= 4 && maxRow.Workers >= 4 && maxRow.SpeedupVsW1 < 1.5 {
			return fmt.Errorf("bench -dist -check: %d workers only %.2fx vs 1 worker (want >= 1.5x on %d CPUs)",
				maxRow.Workers, maxRow.SpeedupVsW1, runtime.GOMAXPROCS(0))
		}
		fmt.Fprintln(os.Stderr, "cachette bench -dist: all worker counts bit-identical to the single-process baseline")
	}

	blob, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if out != "-" {
		if err := os.WriteFile(out, blob, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "cachette bench: wrote %s\n", out)
	}
	os.Stdout.Write(blob)
	return nil
}

// benchDistOnce runs one timed sweep: a fresh coordinator (no dedup
// carry-over between measurements) and n workers, returning the row and
// the sweep's unit count.
func benchDistOnce(ctx context.Context, spec *dist.SweepSpec, n int, want []byte) (*distBenchRow, int, error) {
	c, err := dist.New(dist.Options{ShutdownWhenDone: true})
	if err != nil {
		return nil, 0, err
	}
	defer c.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, 0, err
	}
	hs := &http.Server{Handler: c.Handler()}
	go hs.Serve(ln)
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	workers := make([]*dist.Worker, n)
	for i := range workers {
		w, err := dist.NewWorker(dist.WorkerOptions{
			Coordinator: base,
			ID:          fmt.Sprintf("bench-w%d", i),
			Poll:        20 * time.Millisecond,
		})
		if err != nil {
			return nil, 0, err
		}
		workers[i] = w
	}

	t0 := time.Now()
	st, err := c.AddSweep(ctx, spec)
	if err != nil {
		return nil, 0, err
	}
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i, w := range workers {
		wg.Add(1)
		go func(i int, w *dist.Worker) {
			defer wg.Done()
			errs[i] = w.Run(ctx)
		}(i, w)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, 0, fmt.Errorf("bench -dist: worker %d: %v", i, err)
		}
	}
	if err := c.Wait(ctx, st.Sweep); err != nil {
		return nil, 0, err
	}
	d := time.Since(t0)

	mrep, err := c.Report(st.Sweep)
	if err != nil {
		return nil, 0, err
	}
	got, err := json.Marshal(mrep.Rows)
	if err != nil {
		return nil, 0, err
	}
	status := c.Status()
	row := &distBenchRow{
		Workers:      n,
		GoMaxProcs:   runtime.GOMAXPROCS(0),
		Ns:           d.Nanoseconds(),
		Stolen:       status.UnitsStolen,
		Deduped:      status.UnitsDeduped,
		BitIdentical: string(got) == string(want),
	}
	if d > 0 {
		row.CandsPerSec = float64(len(mrep.Rows)) / d.Seconds()
	}
	return row, st.Stats.Units, nil
}
