package reuse

import (
	"fmt"
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/normalize"
)

// figure1 is the running example of §3 (Figure 1), N-parameterised.
func figure1(n int64) *ir.NProgram {
	b := ir.NewSub("foo")
	A := b.Real8("A", n)
	B := b.Real8("B", n, n)
	b.Do("I1", ir.Con(2), ir.Con(n)).
		Assign("S1", ir.R(A, ir.Var("I1").PlusConst(-1))).
		Do("I2", ir.Var("I1"), ir.Con(n)).
		Assign("S2", ir.R(B, ir.Var("I2").PlusConst(-1), ir.Var("I1")), ir.R(A, ir.Var("I2").PlusConst(-1))).
		End().
		Do("I2", ir.Con(1), ir.Con(n)).
		Assign("S3", nil, ir.R(B, ir.Var("I2"), ir.Var("I1"))).
		End().
		Assign("S4", nil, ir.R(A, ir.Var("I1"))).
		End().
		Do("I1", ir.Con(1), ir.Con(n-1)).
		Assign("S5", ir.R(A, ir.Var("I1").PlusConst(1))).
		End()
	np, err := normalize.Normalize(b.Build())
	if err != nil {
		panic(err)
	}
	return np
}

func findRef(np *ir.NProgram, stmt, array string, write bool) *ir.NRef {
	for _, r := range np.Refs {
		if r.Stmt.Name == stmt && r.Array.Name == array && r.Write == write {
			return r
		}
	}
	panic(fmt.Sprintf("no ref %s/%s write=%v", stmt, array, write))
}

// cfg32 is the paper's default: 32B lines over REAL*8 gives L_s = 4
// elements.
var cfg32 = cache.Default32K(1)

// TestUniformSets reproduces §3.4: the three uniformly generated sets of
// Figure 2: {A(I1−1), A(I1), A(I1+1)}, {A(I2−1)} and {B(I2−1,I1), B(I2,I1)}.
func TestUniformSets(t *testing.T) {
	np := figure1(10)
	sets := UniformSets(np)
	var sizes []string
	for _, s := range sets {
		sizes = append(sizes, fmt.Sprintf("%s:%d", s.Array.Name, len(s.Refs)))
	}
	want := []string{"A:3", "A:1", "B:2"}
	if len(sets) != 3 {
		t.Fatalf("uniform sets = %v, want %v", sizes, want)
	}
	for i := range want {
		if sizes[i] != want[i] {
			t.Errorf("set %d = %s, want %s", i, sizes[i], want[i])
		}
	}
}

func hasVector(vecs []*Vector, inter ...int64) bool {
	for _, v := range vecs {
		got := v.Interleaved()
		if len(got) != len(inter) {
			continue
		}
		match := true
		for k := range got {
			if got[k] != inter[k] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// TestSection35TemporalVector reproduces the worked example of §3.5: the
// unique temporal reuse vector from B(I2−1,I1) in S2 to B(I2,I1) in S3 is
// (0, 0, 1, −1).
func TestSection35TemporalVector(t *testing.T) {
	np := figure1(10)
	vecs := Generate(np, cfg32, Options{})
	rc := findRef(np, "S3", "B", false)
	var temporal []*Vector
	for _, v := range vecs[rc] {
		if !v.Spatial && !v.Self() {
			temporal = append(temporal, v)
		}
	}
	if !hasVector(temporal, 0, 0, 1, -1) {
		t.Errorf("missing temporal vector (0,0,1,-1); got %v", temporal)
	}
}

// TestSection35SpatialVectors reproduces the spatial vectors of §3.5 for
// L_s = 4: (0,0,1,−2) and (0,0,1,−3) within a column, and the
// cross-column vector (0,1,0,1−N) of Figure 3.
func TestSection35SpatialVectors(t *testing.T) {
	const n = 10
	np := figure1(n)
	vecs := Generate(np, cfg32, Options{})
	rc := findRef(np, "S3", "B", false)
	var spatial []*Vector
	for _, v := range vecs[rc] {
		if v.Spatial {
			spatial = append(spatial, v)
		}
	}
	// Within-column group spatial vectors from B(I2−1,I1) in S2.
	for _, want := range [][]int64{{0, 0, 1, -2}, {0, 0, 1, -3}} {
		if !hasVector(spatial, want...) {
			t.Errorf("missing spatial vector %v; got %v", want, spatial)
		}
	}
	// Cross-column self-spatial vector (0,1,0,1−N) of Fig. 3: B(I2,I1)
	// reuses its own line across the column boundary one outer iteration
	// later.
	if !hasVector(spatial, 0, 1, 0, 1-int64(n)) {
		t.Errorf("missing cross-column vector (0,1,0,%d); got %v", 1-n, spatial)
	}
}

// TestSelfSpatialInnerLoop: A(I2−1) in S2 must have self spatial reuse
// along the inner loop: (0,0,0,1).
func TestSelfSpatialInnerLoop(t *testing.T) {
	np := figure1(10)
	vecs := Generate(np, cfg32, Options{})
	rc := findRef(np, "S2", "A", false)
	var selfSpatial []*Vector
	for _, v := range vecs[rc] {
		if v.Spatial && v.Self() {
			selfSpatial = append(selfSpatial, v)
		}
	}
	if !hasVector(selfSpatial, 0, 0, 0, 1) {
		t.Errorf("missing self-spatial (0,0,0,1); got %v", selfSpatial)
	}
}

// TestGroupTemporalAcrossNests: A(I1) read by S4 at outer iteration I1 is
// written by S1 at iteration I1+1 as A(I1−1), so S1 (the consumer) reuses
// S4's access one outer iteration later, across nests (1,2) → (1,1):
// interleaved vector (0, 1, −1, x), which is ⪰ 0.
func TestGroupTemporalAcrossNests(t *testing.T) {
	np := figure1(10)
	vecs := Generate(np, cfg32, Options{})
	rc := findRef(np, "S1", "A", true)
	found := false
	for _, v := range vecs[rc] {
		if !v.Spatial && v.Producer.Stmt.Name == "S4" && v.IdxDiff[0] == 1 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing group temporal A(I1)->A(I1-1) across outer iterations: %v", vecs[rc])
	}
}

// TestBackwardIndexForwardNest: S5's A(I1+1) in the second top-level nest
// reuses S4's A(I1) from the first nest with a negative index component —
// legal because the leading label difference is positive.
func TestBackwardIndexForwardNest(t *testing.T) {
	np := figure1(10)
	vecs := Generate(np, cfg32, Options{})
	rc := findRef(np, "S5", "A", true)
	found := false
	for _, v := range vecs[rc] {
		if !v.Spatial && v.Producer.Stmt.Name == "S4" && v.LabelDiff[0] == 1 && v.IdxDiff[0] == -1 {
			found = true
		}
	}
	if !found {
		t.Errorf("missing cross-nest vector with negative index part: %v", vecs[rc])
	}
}

// TestVectorsNonNegative: every generated vector must satisfy r ⪰ 0 (or be
// zero with textual producer-before-consumer order).
func TestVectorsNonNegative(t *testing.T) {
	np := figure1(8)
	for rc, vs := range Generate(np, cfg32, Options{}) {
		for _, v := range vs {
			if !v.nonNegative() {
				t.Errorf("ref %s: negative vector %v", rc.ID, v)
			}
		}
	}
}

// TestVectorsSorted: vectors must be in ascending interleaved order.
func TestVectorsSorted(t *testing.T) {
	np := figure1(8)
	for rc, vs := range Generate(np, cfg32, Options{}) {
		for i := 1; i < len(vs); i++ {
			if Compare(vs[i-1], vs[i]) > 0 {
				t.Errorf("ref %s: vectors out of order at %d: %v > %v", rc.ID, i, vs[i-1], vs[i])
			}
		}
	}
}

// TestNoGroupOption: the ablation switch must drop all group vectors.
func TestNoGroupOption(t *testing.T) {
	np := figure1(8)
	for rc, vs := range Generate(np, cfg32, Options{NoGroup: true}) {
		for _, v := range vs {
			if !v.Self() {
				t.Errorf("ref %s: group vector %v with NoGroup", rc.ID, v)
			}
		}
	}
}

// TestProducerPoint: applying a vector at a consumer point must land on the
// producer's nest with the index displaced by IdxDiff.
func TestProducerPoint(t *testing.T) {
	np := figure1(10)
	vecs := Generate(np, cfg32, Options{})
	rc := findRef(np, "S3", "B", false)
	for _, v := range vecs[rc] {
		if v.Spatial || v.Self() {
			continue
		}
		label, pidx := v.ProducerPoint([]int64{5, 7})
		wantLabel := v.Producer.Stmt.Label
		for k := range label {
			if label[k] != wantLabel[k] {
				t.Fatalf("producer label = %v, want %v", label, wantLabel)
			}
		}
		if pidx[0] != 5-v.IdxDiff[0] || pidx[1] != 7-v.IdxDiff[1] {
			t.Fatalf("producer idx = %v for vector %v", pidx, v)
		}
	}
}
