package reuse

import (
	"cachemodel/internal/ir"
	"cachemodel/internal/linalg"
)

// DynamicPair captures reuse between two references that are NOT
// uniformly generated — the paper's §8 future work ("derive systematically
// the reuse vectors for non-uniformly generated references"). No constant
// reuse vector exists between such references: the producer iteration that
// touched the consumer's element depends on the consumer iteration. When
// the producer's access matrix has full column rank, that iteration is
// unique and computable per point:
//
//	M_p·q + m_p = M_c·i + m_c   ⇒   q = solve(M_p, subs_c(i) − m_p)
//
// which the analysis resolves at classification time (the cold and
// replacement equations then proceed exactly as for static vectors).
// Producers with nontrivial kernels (e.g. MMT's block-reused copy buffer)
// have many candidate iterations and are left conservative, as the paper
// does.
type DynamicPair struct {
	Producer *ir.NRef
	Consumer *ir.NRef
	mp       *linalg.Mat // producer access matrix (rank × n)
	moff     []int64     // producer offset vector m_p
}

// ProducerPoint solves for the unique producer iteration that wrote the
// element the consumer reads at idx. ok is false when the system is
// inconsistent or the solution is not integral.
func (d *DynamicPair) ProducerPoint(idx []int64) (pidx []int64, ok bool) {
	b := make(linalg.Vec, len(d.moff))
	for r, s := range d.Consumer.Subs {
		b[r] = linalg.RatInt(s.Eval(idx) - d.moff[r])
	}
	sol, consistent := linalg.Solve(d.mp, b)
	if !consistent {
		return nil, false
	}
	// Full column rank was checked at generation time: no free variables.
	out, integral := sol.Particular.Ints()
	if !integral {
		return nil, false
	}
	return out, true
}

// GenerateDynamic finds, for every reference, the non-uniform producer
// candidates with uniquely solvable producer iterations. Pairs within one
// uniformly generated set are excluded (static vectors cover them).
func GenerateDynamic(np *ir.NProgram) map[*ir.NRef][]*DynamicPair {
	n := np.Depth
	out := map[*ir.NRef][]*DynamicPair{}
	sets := UniformSets(np)
	setOf := map[*ir.NRef]*UniformSet{}
	for _, s := range sets {
		for _, r := range s.Refs {
			setOf[r] = s
		}
	}
	// Precompute per-set solvability of the producer matrix.
	type pinfo struct {
		m    *linalg.Mat
		full bool
	}
	info := map[*UniformSet]pinfo{}
	for _, s := range sets {
		rows, _ := s.Refs[0].AccessMatrix(n)
		m := linalg.IntMat(rows...)
		info[s] = pinfo{m: m, full: len(linalg.Nullspace(m)) == 0}
	}
	for _, rc := range np.Refs {
		cs := setOf[rc]
		for _, s := range sets {
			if s == cs || s.Array != rc.Array {
				continue
			}
			pi := info[s]
			if !pi.full {
				continue // many candidate producers: stay conservative
			}
			for _, rp := range s.Refs {
				_, moff := rp.AccessMatrix(n)
				out[rc] = append(out[rc], &DynamicPair{
					Producer: rp, Consumer: rc, mp: pi.m, moff: moff,
				})
			}
		}
	}
	return out
}
