// Package reuse implements the paper's central contribution (§3.4–3.5): a
// characterisation of data reuse across multiple loop nests. It groups
// references into uniformly generated sets (generalised to the whole
// normalised program), and derives temporal and spatial reuse vectors of
// the interleaved form
//
//	r = (ℓ1c−ℓ1p, x1, ℓ2c−ℓ2p, x2, ..., ℓnc−ℓnp, xn)
//
// including the second-kind spatial vectors that capture reuse across two
// adjacent array columns (Fig. 3).
//
// Reuse vectors are candidates: the miss equations (internal/cme) verify
// memory-line equality at every iteration point, so an over-generated
// candidate never causes incorrect classification, while a missing one can
// only overestimate misses (the paper's MMT case).
package reuse

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/linalg"
	"cachemodel/internal/obs"
)

// mVectorsGenerated counts reuse vectors produced by Generate (after
// dedup), flushed once per generation pass.
var mVectorsGenerated = obs.Default.Counter("reuse_vectors_generated_total")

// countVectors flushes the generated-vector total into the obs registry.
func countVectors(out map[*ir.NRef][]*Vector) {
	var n int64
	for _, vecs := range out {
		n += int64(len(vecs))
	}
	mVectorsGenerated.Add(n)
}

// Vector is a reuse vector from Producer to Consumer: the consumer at
// iteration i may reuse the memory line the producer touched at i − IdxDiff
// in the nest labelled Consumer.Stmt.Label − LabelDiff.
type Vector struct {
	Producer  *ir.NRef
	Consumer  *ir.NRef
	LabelDiff []int   // ℓc − ℓp, componentwise
	IdxDiff   []int64 // x
	Spatial   bool    // derived from equation (2) or the cross-column rule
	Cross     bool    // second-kind spatial vector spanning two columns
}

// Self reports whether the vector is self reuse (producer == consumer).
func (v *Vector) Self() bool { return v.Producer == v.Consumer }

// Interleaved returns the 2n-dimensional interleaved vector of §3.5.
func (v *Vector) Interleaved() []int64 {
	out := make([]int64, 0, 2*len(v.LabelDiff))
	for k := range v.LabelDiff {
		out = append(out, int64(v.LabelDiff[k]), v.IdxDiff[k])
	}
	return out
}

// Compare orders vectors by the interleaved lexicographic order; ascending
// order is most-recent-producer-first.
func Compare(a, b *Vector) int {
	ia, ib := a.Interleaved(), b.Interleaved()
	for k := range ia {
		if ia[k] != ib[k] {
			if ia[k] < ib[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// nonNegative reports whether the interleaved vector is ⪰ 0; for the zero
// vector the producer must precede the consumer textually.
func (v *Vector) nonNegative() bool {
	for _, x := range v.Interleaved() {
		if x != 0 {
			return x > 0
		}
	}
	return v.Producer.Seq < v.Consumer.Seq
}

// ProducerPoint maps a consumer iteration to the producer iteration the
// vector points at (label vector, index vector).
func (v *Vector) ProducerPoint(idx []int64) (label []int, pidx []int64) {
	cl := v.Consumer.Stmt.Label
	label = make([]int, len(cl))
	pidx = make([]int64, len(idx))
	for k := range cl {
		label[k] = cl[k] - v.LabelDiff[k]
		pidx[k] = idx[k] - v.IdxDiff[k]
	}
	return label, pidx
}

// ProducerPointBuf is ProducerPoint writing into caller-owned buffers
// (grown as needed through the pointers), sparing the two per-call
// allocations in solver hot loops. The returned slices alias the buffers
// and are only valid until the next call with the same buffers.
func (v *Vector) ProducerPointBuf(idx []int64, lbuf *[]int, pbuf *[]int64) (label []int, pidx []int64) {
	cl := v.Consumer.Stmt.Label
	if cap(*lbuf) < len(cl) {
		*lbuf = make([]int, len(cl))
	}
	if cap(*pbuf) < len(idx) {
		*pbuf = make([]int64, len(idx))
	}
	label = (*lbuf)[:len(cl)]
	pidx = (*pbuf)[:len(idx)]
	for k := len(cl); k < len(pidx); k++ {
		pidx[k] = 0 // ProducerPoint leaves dimensions beyond the label zeroed
	}
	for k := range cl {
		label[k] = cl[k] - v.LabelDiff[k]
		pidx[k] = idx[k] - v.IdxDiff[k]
	}
	return label, pidx
}

func (v *Vector) String() string {
	parts := make([]string, 0, 2*len(v.LabelDiff))
	for _, x := range v.Interleaved() {
		parts = append(parts, fmt.Sprintf("%d", x))
	}
	kind := "T"
	if v.Spatial {
		kind = "S"
	}
	if v.Cross {
		kind = "X"
	}
	return fmt.Sprintf("%s(%s) %s<-%s", kind, strings.Join(parts, ","), v.Consumer.ID, v.Producer.ID)
}

// Options tunes candidate generation.
type Options struct {
	// KernelSpan is the coefficient range explored along nullspace basis
	// directions when enumerating candidate solutions (default 1).
	KernelSpan int
	// MaxPerPair caps the number of vectors generated per (producer,
	// consumer) pair (default 128).
	MaxPerPair int
	// NoSpatial disables spatial vectors (ablation knob).
	NoSpatial bool
	// NoCrossColumn disables the second-kind spatial vectors (ablation).
	NoCrossColumn bool
	// NoGroup disables group reuse, keeping only self reuse (ablation).
	NoGroup bool
	// NonUniform additionally resolves reuse between non-uniformly
	// generated references with uniquely solvable producer iterations
	// (the paper's §8 future work; see GenerateDynamic). Off by default:
	// the paper's method exploits only uniformly generated reuse.
	NonUniform bool
}

func (o Options) withDefaults() Options {
	if o.KernelSpan == 0 {
		o.KernelSpan = 1
	}
	if o.MaxPerPair == 0 {
		o.MaxPerPair = 128
	}
	return o
}

// Generate derives, for every reference of the program, its sorted list of
// reuse vectors under the given cache configuration.
func Generate(np *ir.NProgram, cfg cache.Config, opt Options) map[*ir.NRef][]*Vector {
	opt = opt.withDefaults()
	sets := UniformSets(np)
	// genSet derives the sorted vector lists of one uniformly generated
	// set. Sets are independent, so they generate in parallel below; each
	// invocation owns a private generator (and displacement memo — the
	// candidate sets depend only on (M, offset difference), which repeats
	// heavily inside large sets such as Applu's 5×5 unrolled blocks).
	genSet := func(set *UniformSet) map[*ir.NRef][]*Vector {
		g := &generator{np: np, cfg: cfg, opt: opt, memo: map[string][][]int64{}}
		part := make(map[*ir.NRef][]*Vector, len(set.Refs))
		for _, rc := range set.Refs {
			var vecs []*Vector
			for _, rp := range set.Refs {
				if opt.NoGroup && rp != rc {
					continue
				}
				vecs = append(vecs, g.pair(rp, rc)...)
			}
			vecs = dedupe(vecs)
			sort.Slice(vecs, func(i, j int) bool {
				if c := Compare(vecs[i], vecs[j]); c != 0 {
					return c < 0
				}
				// Equal displacement: prefer the textually later (more
				// recent) producer.
				return vecs[i].Producer.Seq > vecs[j].Producer.Seq
			})
			part[rc] = vecs
		}
		return part
	}

	out := map[*ir.NRef][]*Vector{}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(sets) {
		workers = len(sets)
	}
	if workers <= 1 {
		for _, set := range sets {
			for r, vecs := range genSet(set) {
				out[r] = vecs
			}
		}
		countVectors(out)
		return out
	}
	var next atomic.Int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(sets) {
					return
				}
				part := genSet(sets[i])
				mu.Lock()
				for r, vecs := range part {
					out[r] = vecs
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	countVectors(out)
	return out
}

// UniformSet is a set of uniformly generated references: same array and
// same access matrix M over the normalised index space (§3.4).
type UniformSet struct {
	Array *ir.Array
	Refs  []*ir.NRef
}

// UniformSets partitions the program's references into uniformly generated
// sets, in first-occurrence order.
func UniformSets(np *ir.NProgram) []*UniformSet {
	var sets []*UniformSet
	byKey := map[string]*UniformSet{}
	for _, r := range np.Refs {
		key := uniformKey(np.Depth, r)
		s := byKey[key]
		if s == nil {
			s = &UniformSet{Array: r.Array}
			byKey[key] = s
			sets = append(sets, s)
		}
		s.Refs = append(s.Refs, r)
	}
	return sets
}

func uniformKey(n int, r *ir.NRef) string {
	m, _ := r.AccessMatrix(n)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|", r.Array.Name)
	for _, row := range m {
		for _, c := range row {
			fmt.Fprintf(&b, "%d,", c)
		}
		b.WriteByte(';')
	}
	return b.String()
}

type generator struct {
	np   *ir.NProgram
	cfg  cache.Config
	opt  Options
	memo map[string][][]int64
}

// memoised runs gen once per key and caches the produced displacement
// vectors.
func (g *generator) memoised(key string, gen func(yield func([]int64))) [][]int64 {
	if got, ok := g.memo[key]; ok {
		return got
	}
	var out [][]int64
	gen(func(r []int64) { out = append(out, append([]int64(nil), r...)) })
	g.memo[key] = out
	return out
}

func intsKey(prefix string, xs ...int64) string {
	var b strings.Builder
	b.WriteString(prefix)
	for _, x := range xs {
		fmt.Fprintf(&b, ",%d", x)
	}
	return b.String()
}

// pair generates all candidate vectors from producer rp to consumer rc.
func (g *generator) pair(rp, rc *ir.NRef) []*Vector {
	n := g.np.Depth
	mRows, mp := rp.AccessMatrix(n)
	_, mc := rc.AccessMatrix(n)
	rank := len(mRows)
	M := linalg.IntMat(mRows...)

	labelDiff := make([]int, n)
	for k := 0; k < n; k++ {
		labelDiff[k] = rc.Stmt.Label[k] - rp.Stmt.Label[k]
	}

	var out []*Vector
	add := func(idx []int64, spatial, cross bool) {
		if len(out) >= g.opt.MaxPerPair {
			return
		}
		v := &Vector{Producer: rp, Consumer: rc, LabelDiff: labelDiff, IdxDiff: idx, Spatial: spatial, Cross: cross}
		if v.nonNegative() {
			out = append(out, v)
		}
	}

	// Temporal: M·r = mp − mc   (equation (1)).
	bT := make([]int64, rank)
	for d := 0; d < rank; d++ {
		bT[d] = mp[d] - mc[d]
	}
	for _, r := range g.memoised(intsKey("T", bT...), func(yield func([]int64)) {
		if sol, ok := linalg.Solve(M, linalg.IntVec(bT...)); ok {
			if p, ok := linalg.IntegralParticular(sol); ok {
				g.enumerate(p, sol.Nullspace, yield)
			}
		}
	}) {
		add(r, false, false)
	}
	if g.opt.NoSpatial {
		return out
	}

	lineElems := g.cfg.LineElems(rp.Array.ElemSize)
	if lineElems > 1 && rank >= 1 {
		// Spatial within a column: M'·r = m'p − m'c with the first-subscript
		// displacement within a line (equation (2)).
		Mp := M
		var bS []int64
		if rank > 1 {
			Mp = M.DropRow(0)
			bS = bT[1:]
		} else {
			Mp = linalg.NewMat(0, n)
			bS = nil
		}
		for _, r := range g.memoised(intsKey("S", append(append([]int64(nil), bS...), mp[0]-mc[0])...), func(yield func([]int64)) {
			if sol, ok := linalg.Solve(Mp, linalg.IntVec(bS...)); ok {
				if p, ok := linalg.IntegralParticular(sol); ok {
					m1 := M.Row(0)
					g.enumerateSpatial(p, sol.Nullspace, m1, mp[0]-mc[0], lineElems, yield)
				}
			}
		}) {
			add(r, true, false)
		}
		// Spatial across adjacent columns (second kind, Fig. 3): the last
		// element(s) of column c and the first of column c+1 share a line.
		// Target subscript displacement (consumer − producer):
		// Δ = (1 − d1 + e, 1, 0, ..., 0) and its mirror, e ∈ 0..L_s−2.
		if !g.opt.NoCrossColumn && rank >= 2 && rp.Array.Dims[0] > 0 {
			d1 := rp.Array.Dims[0]
			for e := int64(0); e < lineElems-1; e++ {
				for _, sign := range []int64{1, -1} {
					b := make([]int64, rank)
					copy(b, bT)
					b[0] += sign * (1 - d1 + e)
					b[1] += sign
					for _, r := range g.memoised(intsKey("X", b...), func(yield func([]int64)) {
						if sol, ok := linalg.Solve(M, linalg.IntVec(b...)); ok {
							if p, ok := linalg.IntegralParticular(sol); ok {
								g.enumerate(p, sol.Nullspace, yield)
							}
						}
					}) {
						add(r, true, true)
					}
				}
			}
		}
	}
	return out
}

// enumerate yields integral points p + Σ t_i·k_i with |t_i| ≤ KernelSpan.
func (g *generator) enumerate(p linalg.Vec, kernel []linalg.Vec, yield func([]int64)) {
	span := int64(g.opt.KernelSpan)
	var rec func(cur linalg.Vec, k int)
	rec = func(cur linalg.Vec, k int) {
		if k == len(kernel) {
			if ints, ok := cur.Ints(); ok {
				yield(ints)
			}
			return
		}
		for t := -span; t <= span; t++ {
			rec(cur.Add(kernel[k].Scale(linalg.RatInt(t))), k+1)
		}
	}
	rec(p, 0)
}

// enumerateSpatial enumerates solutions of the spatial system, expanding
// the kernel directions that move the first subscript so the displacement
// sweeps the whole line, and filtering to 0 < |M1·r + off| < lineElems
// (off = mc1 − mp1; a zero displacement is temporal, not spatial).
func (g *generator) enumerateSpatial(p linalg.Vec, kernel []linalg.Vec, m1 linalg.Vec, mpMinusMc1, lineElems int64, yield func([]int64)) {
	off := -mpMinusMc1 // displacement = M1·r + mc1 − mp1
	span := int64(g.opt.KernelSpan)
	var rec func(cur linalg.Vec, k int)
	count := 0
	rec = func(cur linalg.Vec, k int) {
		if count > 4*g.opt.MaxPerPair {
			return
		}
		if k == len(kernel) {
			d := m1.Dot(cur)
			di, ok := d.Int()
			if !ok {
				return
			}
			disp := di + off
			if disp == 0 || disp <= -lineElems || disp >= lineElems {
				return
			}
			if ints, ok := cur.Ints(); ok {
				count++
				yield(ints)
			}
			return
		}
		kspan := span
		// A kernel direction that moves the first subscript must sweep the
		// whole line span.
		if !m1.Dot(kernel[k]).IsZero() {
			c := m1.Dot(kernel[k]).Abs()
			if ci, ok := c.Int(); ok && ci > 0 {
				kspan = (lineElems-1)/ci + 1
			}
		}
		for t := -kspan; t <= kspan; t++ {
			rec(cur.Add(kernel[k].Scale(linalg.RatInt(t))), k+1)
		}
	}
	rec(p, 0)
}

func dedupe(vecs []*Vector) []*Vector {
	seen := map[string]bool{}
	out := vecs[:0]
	for _, v := range vecs {
		key := fmt.Sprintf("%p|%v", v.Producer, v.Interleaved())
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, v)
	}
	return out
}
