package interp

import (
	"testing"

	"cachemodel/internal/ir"
)

func TestRunBasics(t *testing.T) {
	p := ir.NewProgram("t")
	b := ir.NewSub("MAIN")
	A := b.Real8("A", 8)
	b.Do("I", ir.Con(1), ir.Con(4)).
		IfCond(ir.Cond{LHS: ir.Var("I"), Op: ir.GE, RHS: ir.Con(3)}).
		Assign("S1", ir.R(A, ir.Var("I")), ir.R(A, ir.Var("I").PlusConst(1))).
		End().End()
	p.Add(b.Build())
	p.Main.Locals[0].Base = 100
	var accs []Access
	if err := Run(p, Options{}, func(a Access) bool { accs = append(accs, a); return true }); err != nil {
		t.Fatal(err)
	}
	// I = 3, 4 pass the guard: read A(I+1) then write A(I).
	want := []Access{
		{Addr: 100 + 8*3, Write: false}, {Addr: 100 + 8*2, Write: true},
		{Addr: 100 + 8*4, Write: false}, {Addr: 100 + 8*3, Write: true},
	}
	if len(accs) != len(want) {
		t.Fatalf("accesses = %v", accs)
	}
	for i := range want {
		if accs[i] != want[i] {
			t.Errorf("access %d = %+v, want %+v", i, accs[i], want[i])
		}
	}
}

func TestRunCallSequenceAssociation(t *testing.T) {
	p := ir.NewProgram("t")
	main := ir.NewSub("MAIN")
	A := main.Real8("A", 4, 4)
	main.Call("F", ir.ArgElem(A, ir.Con(2), ir.Con(2)))
	p.Add(main.Build())
	f := ir.NewSub("F")
	W := f.Formal("W", 8, 3)
	f.Do("I", ir.Con(1), ir.Con(3)).
		Assign("S", nil, ir.R(W, ir.Var("I"))).
		End()
	p.Add(f.Build())
	p.SetMain("MAIN")
	A.Base = 0
	addrs, err := Addresses(p)
	if err != nil {
		t.Fatal(err)
	}
	// A(2,2) is linear offset 5; W(1..3) reads elements 5, 6, 7.
	want := []int64{40, 48, 56}
	if len(addrs) != 3 {
		t.Fatalf("addrs = %v", addrs)
	}
	for i := range want {
		if addrs[i] != want[i] {
			t.Errorf("addr %d = %d, want %d", i, addrs[i], want[i])
		}
	}
}

func TestRunRecursionGuard(t *testing.T) {
	p := ir.NewProgram("t")
	main := ir.NewSub("MAIN")
	main.Call("LOOPY")
	p.Add(main.Build())
	l := ir.NewSub("LOOPY")
	l.Call("LOOPY")
	p.Add(l.Build())
	p.SetMain("MAIN")
	if err := Run(p, Options{MaxDepth: 8}, func(Access) bool { return true }); err == nil {
		t.Fatal("expected recursion-depth error")
	}
}

func TestRunEarlyStop(t *testing.T) {
	p := ir.NewProgram("t")
	b := ir.NewSub("MAIN")
	A := b.Real8("A", 100)
	b.Do("I", ir.Con(1), ir.Con(100)).
		Assign("S", ir.R(A, ir.Var("I"))).
		End()
	p.Add(b.Build())
	p.Main.Locals[0].Base = 0
	n := 0
	if err := Run(p, Options{}, func(Access) bool { n++; return n < 5 }); err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("visited %d, want 5", n)
	}
}
