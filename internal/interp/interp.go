// Package interp is a reference interpreter for the un-transformed
// program model: it executes ir.Programs directly — DO loops with
// arbitrary steps, IF guards, and CALL statements with true FORTRAN
// call-by-reference sequence association — and reports every memory
// access. It is the semantic oracle against which abstract inlining and
// loop normalisation are validated: both transformations must reproduce
// the interpreter's address stream exactly.
package interp

import (
	"fmt"

	"cachemodel/internal/ir"
)

// Access is one memory access of the interpreted execution.
type Access struct {
	Addr  int64
	Write bool
}

// Options bounds the interpretation.
type Options struct {
	// MaxDepth bounds the call stack (default 64).
	MaxDepth int
	// MaxAccesses aborts runaway executions (default 1 << 30).
	MaxAccesses int64
}

// Run interprets the program from its entry subroutine, calling visit for
// every access in execution order. Every array reachable must have a base
// address assigned. Calls to unknown subroutines are skipped (system
// calls), matching the analysis pipeline.
func Run(p *ir.Program, opt Options, visit func(Access) bool) error {
	if opt.MaxDepth == 0 {
		opt.MaxDepth = 64
	}
	if opt.MaxAccesses == 0 {
		opt.MaxAccesses = 1 << 30
	}
	in := &interp{prog: p, opt: opt, visit: visit}
	err := in.run(p.Main, map[*ir.Array]binding{}, 0)
	if err == errStop {
		return nil
	}
	return err
}

// Addresses interprets the program and returns its full address stream.
func Addresses(p *ir.Program) ([]int64, error) {
	var out []int64
	err := Run(p, Options{}, func(a Access) bool {
		out = append(out, a.Addr)
		return true
	})
	return out, err
}

// binding maps a formal array to the byte address of its first element;
// subscripts are linearised with the formal's own dimensions (FORTRAN
// sequence association).
type binding struct {
	base int64
}

type interp struct {
	prog  *ir.Program
	opt   Options
	visit func(Access) bool
	count int64
}

var errStop = fmt.Errorf("interp: stopped by visitor")

func (in *interp) run(sub *ir.Subroutine, bind map[*ir.Array]binding, depth int) error {
	if depth > in.opt.MaxDepth {
		return fmt.Errorf("interp: call depth exceeds %d (recursion?)", in.opt.MaxDepth)
	}
	return in.exec(sub.Body, map[string]int64{}, bind, depth)
}

func (in *interp) addr(r *ir.Ref, env map[string]int64, bind map[*ir.Array]binding) (int64, error) {
	subs := make([]int64, len(r.Subs))
	for d, e := range r.Subs {
		subs[d] = e.Eval(env)
	}
	if b, ok := bind[r.Array]; ok {
		return b.base + r.Array.ElemSize*r.Array.LinearOffset(subs), nil
	}
	if r.Array.Base < 0 {
		return 0, fmt.Errorf("interp: array %s has no base address", r.Array.Name)
	}
	return r.Array.Address(subs), nil
}

func (in *interp) emit(r *ir.Ref, env map[string]int64, bind map[*ir.Array]binding) error {
	a, err := in.addr(r, env, bind)
	if err != nil {
		return err
	}
	in.count++
	if in.count > in.opt.MaxAccesses {
		return fmt.Errorf("interp: more than %d accesses", in.opt.MaxAccesses)
	}
	if !in.visit(Access{Addr: a, Write: r.Write}) {
		return errStop
	}
	return nil
}

func (in *interp) exec(nodes []ir.Node, env map[string]int64, bind map[*ir.Array]binding, depth int) error {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Loop:
			step := n.Step
			if step == 0 {
				step = 1
			}
			lo, hi := n.Lo.Eval(env), n.Hi.Eval(env)
			for v := lo; (step > 0 && v <= hi) || (step < 0 && v >= hi); v += step {
				env[n.Var] = v
				if err := in.exec(n.Body, env, bind, depth); err != nil {
					return err
				}
			}
			delete(env, n.Var)
		case *ir.If:
			ok := true
			for _, c := range n.Conds {
				if !c.Holds(env) {
					ok = false
					break
				}
			}
			if ok {
				if err := in.exec(n.Body, env, bind, depth); err != nil {
					return err
				}
			}
		case *ir.Assign:
			for _, r := range n.Refs() {
				if err := in.emit(r, env, bind); err != nil {
					return err
				}
			}
		case *ir.Call:
			callee, ok := in.prog.Subs[n.Callee]
			if !ok {
				continue // system call
			}
			if len(n.Args) != len(callee.Formals) {
				return fmt.Errorf("interp: call to %s: %d args for %d formals", n.Callee, len(n.Args), len(callee.Formals))
			}
			nbind := map[*ir.Array]binding{}
			for ai, arg := range n.Args {
				subs := make([]int64, len(arg.Subs))
				for d, e := range arg.Subs {
					subs[d] = e.Eval(env)
				}
				if len(subs) == 0 {
					subs = make([]int64, arg.Array.Rank())
					for d := range subs {
						subs[d] = 1
					}
				}
				var base int64
				if b, ok := bind[arg.Array]; ok {
					base = b.base + arg.Array.ElemSize*arg.Array.LinearOffset(subs)
				} else {
					if arg.Array.Base < 0 {
						return fmt.Errorf("interp: actual %s has no base address", arg.Array.Name)
					}
					base = arg.Array.Address(subs)
				}
				nbind[callee.Formals[ai]] = binding{base: base}
			}
			if err := in.run(callee, nbind, depth+1); err != nil {
				return err
			}
		default:
			return fmt.Errorf("interp: unknown node %T", n)
		}
	}
	return nil
}
