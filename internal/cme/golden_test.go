package cme

import (
	"context"
	"errors"
	"testing"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cerr"
	"cachemodel/internal/faultinject"
	"cachemodel/internal/kernels"
	"cachemodel/internal/trace"
)

// goldenConfigs are the cache geometries the equivalence sweep runs under:
// a direct-mapped and a set-associative cache, small enough that every
// kernel produces replacement misses.
func goldenConfigs() []cache.Config {
	return []cache.Config{
		{SizeBytes: 512, LineBytes: 32, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 4},
	}
}

// sameRefReports fails the test unless the two reports agree on every
// per-reference field, including the Tier/Complete provenance.
func sameRefReports(t *testing.T, label string, want, got *Report) {
	t.Helper()
	if len(want.Refs) != len(got.Refs) {
		t.Fatalf("%s: %d refs vs %d", label, len(want.Refs), len(got.Refs))
	}
	for i, w := range want.Refs {
		g := got.Refs[i]
		if w.Ref.ID != g.Ref.ID {
			t.Fatalf("%s: ref %d is %s vs %s", label, i, w.Ref.ID, g.Ref.ID)
		}
		if w.Volume != g.Volume || w.Analyzed != g.Analyzed || w.Sampled != g.Sampled ||
			w.Hits != g.Hits || w.Cold != g.Cold || w.Repl != g.Repl ||
			w.Tier != g.Tier || w.Complete != g.Complete || w.Ratio != g.Ratio {
			t.Errorf("%s: %s diverged:\n  want %+v\n  got  %+v", label, w.Ref.ID, *w, *g)
		}
	}
	if want.Tier != got.Tier || want.Degraded != got.Degraded {
		t.Errorf("%s: provenance diverged: want tier=%v degraded=%v, got tier=%v degraded=%v",
			label, want.Tier, want.Degraded, got.Tier, got.Degraded)
	}
}

// TestGoldenEquivalence sweeps every built-in kernel under two cache
// geometries and checks that the optimised paths — memoized classification,
// tile-parallel FindMisses and the set-sharded simulator — are bit-identical
// to the sequential seed paths (single worker, memoization off).
func TestGoldenEquivalence(t *testing.T) {
	const n = 8
	for _, spec := range kernels.Suite() {
		for _, cfg := range goldenConfigs() {
			label := spec.Name + " [" + cfg.String() + "]"
			np, seq := prepKernel(t, spec.Build(n), cfg, Options{Workers: 1, NoMemo: true})
			_, memo := prepKernel(t, spec.Build(n), cfg, Options{Workers: 1})
			_, par := prepKernel(t, spec.Build(n), cfg, Options{Workers: 8})

			want := seq.FindMisses()
			sameRefReports(t, label+" memo", want, memo.FindMisses())
			sameRefReports(t, label+" parallel", want, par.FindMisses())

			// The seed simulator and the sharded simulator must agree too.
			sim := trace.Simulate(np, cfg)
			shard := trace.SimulateSharded(np, cfg, 4)
			if sim.Accesses != shard.Accesses || sim.Misses != shard.Misses {
				t.Errorf("%s: sharded simulator %d/%d != sequential %d/%d",
					label, shard.Accesses, shard.Misses, sim.Accesses, sim.Misses)
			}
		}
	}
}

// TestGoldenBudgetProvenance: under the same tight scan budget at one
// worker, memoized and unmemoized runs must produce bit-identical reports —
// including which references degraded to sampling and which stayed exact —
// because memo hits replay their stored scan counts into the budget.
func TestGoldenBudgetProvenance(t *testing.T) {
	cfg := cache.Config{SizeBytes: 512, LineBytes: 32, Assoc: 2}
	for _, spec := range []string{"hydro", "sor2d", "transpose"} {
		for _, s := range kernels.Suite() {
			if s.Name != spec {
				continue
			}
			_, nomemo := prepKernel(t, s.Build(10), cfg, Options{Workers: 1, NoMemo: true})
			_, memo := prepKernel(t, s.Build(10), cfg, Options{Workers: 1})
			// A zero budget skips scan accounting entirely, so measure the
			// full run's scan cost under a generous finite cap first.
			full, err := nomemo.FindMissesCtx(context.Background(), budget.Budget{MaxScan: 1 << 50})
			if err != nil {
				t.Fatalf("%s: measuring run failed: %v", spec, err)
			}
			b := budget.Budget{MaxScan: full.BudgetSpent.Scan / 2}
			if b.MaxScan == 0 {
				t.Fatalf("%s: full run reported no scan work", spec)
			}
			want, werr := nomemo.FindMissesCtx(context.Background(), b)
			got, gerr := memo.FindMissesCtx(context.Background(), b)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s: errors diverged: %v vs %v", spec, werr, gerr)
			}
			if !want.Degraded {
				t.Fatalf("%s: budget %d did not force degradation", spec, b.MaxScan)
			}
			sameRefReports(t, spec+" budgeted", want, got)
		}
	}
}

// TestFaultMidTileCoherence injects budget exhaustion at an arbitrary
// checkpoint of a tile-parallel run and checks the partial report stays
// coherent: every reference's counts add up, never exceed its RIS volume,
// and incomplete references are flagged as such.
func TestFaultMidTileCoherence(t *testing.T) {
	cfg := cache.Config{SizeBytes: 512, LineBytes: 32, Assoc: 2}
	for _, at := range []int64{1, 7, 50, 400} {
		_, a := prepKernel(t, kernels.Hydro(16, 16), cfg, Options{Workers: 8})
		inj := faultinject.ExhaustAt(at)
		rep, err := a.FindMissesCtx(context.Background(),
			budget.Budget{Hook: inj.Hook(), NoFallback: true})
		if !inj.Fired() {
			t.Fatalf("at=%d: injector never fired (%d checkpoints seen)", at, inj.Checkpoints())
		}
		if !errors.Is(err, cerr.ErrBudgetExceeded) {
			t.Fatalf("at=%d: err = %v, want ErrBudgetExceeded", at, err)
		}
		sawPartial := false
		for _, rr := range rep.Refs {
			if rr.Analyzed != rr.Hits+rr.Cold+rr.Repl {
				t.Errorf("at=%d: %s: analyzed %d != hits %d + cold %d + repl %d",
					at, rr.Ref.ID, rr.Analyzed, rr.Hits, rr.Cold, rr.Repl)
			}
			if rr.Analyzed > rr.Volume {
				t.Errorf("at=%d: %s: analyzed %d exceeds volume %d", at, rr.Ref.ID, rr.Analyzed, rr.Volume)
			}
			if !rr.Complete {
				sawPartial = true
				continue
			}
			if rr.Analyzed != rr.Volume {
				t.Errorf("at=%d: %s: complete but analyzed %d of %d", at, rr.Ref.ID, rr.Analyzed, rr.Volume)
			}
		}
		if !sawPartial {
			t.Errorf("at=%d: exhaustion mid-run left no incomplete reference", at)
		}
	}
}
