package cme

import (
	"context"
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/kernels"
	"cachemodel/internal/sampling"
)

// benchGrid is the 8-geometry design grid used by the batch benchmarks:
// four capacities crossed with two line sizes, direct-mapped.
func benchGrid() []cache.Config {
	var cfgs []cache.Config
	for _, cs := range []int64{4096, 8192, 16384, 32768} {
		for _, ls := range []int64{32, 64} {
			cfgs = append(cfgs, cache.Config{SizeBytes: cs, LineBytes: ls, Assoc: 1})
		}
	}
	return cfgs
}

// BenchmarkSolveBatch measures the fused exact batch solver over the
// 8-geometry grid on one Prepared program, against solving the same grid
// with independent per-candidate FindMisses runs (BenchmarkSoloGrid). The
// ratio of the two is the structural win of the geometry-invariant split;
// cmd/cachette's sweep -check reports the end-to-end equivalent.
func BenchmarkSolveBatch(b *testing.B) {
	cfgs := benchGrid()
	np, _ := prepKernel(b, kernels.Hydro(32, 32), cfgs[0], Options{})
	p, err := Prepare(np, Options{})
	if err != nil {
		b.Fatal(err)
	}
	var cands []Candidate
	for _, c := range cfgs {
		cands = append(cands, Candidate{Label: c.String(), Config: c})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveBatch(context.Background(), cands, BatchOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSoloGrid is the per-candidate baseline for BenchmarkSolveBatch.
func BenchmarkSoloGrid(b *testing.B) {
	cfgs := benchGrid()
	np, _ := prepKernel(b, kernels.Hydro(32, 32), cfgs[0], Options{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cfgs {
			a, err := New(np, c, Options{})
			if err != nil {
				b.Fatal(err)
			}
			a.FindMisses()
		}
	}
}

// BenchmarkSolveBatchSampled exercises the sampled tier of the batch
// solver, where classifiers cycle through the scratch pool once per
// (candidate, reference) work item.
func BenchmarkSolveBatchSampled(b *testing.B) {
	cfgs := benchGrid()
	np, _ := prepKernel(b, kernels.Hydro(32, 32), cfgs[0], Options{})
	p, err := Prepare(np, Options{})
	if err != nil {
		b.Fatal(err)
	}
	var cands []Candidate
	for _, c := range cfgs {
		cands = append(cands, Candidate{Label: c.String(), Config: c})
	}
	plan := sampling.Plan{C: 0.95, W: 0.05}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.SolveBatch(context.Background(), cands, BatchOptions{Plan: &plan}); err != nil {
			b.Fatal(err)
		}
	}
}
