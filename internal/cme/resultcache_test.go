package cme

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func rcVal(n int64) cachedRef {
	return cachedRef{Volume: n, Analyzed: n, Hits: n, Tier: TierExact}
}

// TestResultCacheEvictionOrder pins the LRU contract: a get promotes, so
// the entry evicted at capacity is the least recently *used*, not the
// least recently inserted.
func TestResultCacheEvictionOrder(t *testing.T) {
	c := NewResultCache(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), rcVal(int64(i)))
	}
	if _, ok := c.get("k0"); !ok { // k0 promoted; k1 is now LRU
		t.Fatal("k0 missing right after insert")
	}
	c.put("k3", rcVal(3))
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived past capacity; eviction ignored the get-promotion")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted, want only k1 gone", k)
		}
	}
	s := c.Stats()
	// gets: k0 hit, k1 miss, then k0/k2/k3 hits.
	if s.Hits != 4 || s.Misses != 1 || s.Evictions != 1 || s.Entries != 3 {
		t.Errorf("stats = %+v, want 4 hits / 1 miss / 1 eviction / 3 entries", s)
	}
}

// TestResultCachePutPromotes: re-putting an existing key updates the value
// in place and counts as a touch for eviction order.
func TestResultCachePutPromotes(t *testing.T) {
	c := NewResultCache(2)
	c.put("a", rcVal(1))
	c.put("b", rcVal(2))
	c.put("a", rcVal(3)) // update + promote; b becomes LRU
	c.put("c", rcVal(4)) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived; re-put of a did not promote")
	}
	if v, ok := c.get("a"); !ok || v.Volume != 3 {
		t.Errorf("a = %+v ok=%v, want updated value 3", v, ok)
	}
}

// TestResultCacheConcurrent hammers get/put from many goroutines (run
// under -race) and checks the counters stay coherent: every get is either
// a hit or a miss, and entries = misses − evictions when every miss is
// followed by one put of a fresh key.
func TestResultCacheConcurrent(t *testing.T) {
	const (
		goroutines = 8
		iters      = 500
		capacity   = 64
	)
	c := NewResultCache(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("k%d", (g*31+i*7)%97)
				if _, ok := c.get(k); !ok {
					c.put(k, rcVal(int64(i)))
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != goroutines*iters {
		t.Errorf("hits %d + misses %d != %d gets", s.Hits, s.Misses, goroutines*iters)
	}
	if s.Entries > capacity {
		t.Errorf("%d entries, capacity %d", s.Entries, capacity)
	}
	// Puts of the same key can race (get-miss then put twice), so puts >=
	// misses is not exact; but live entries can never exceed distinct keys
	// and evictions can never exceed puts − entries.
	if s.Evictions < 0 || s.Entries < 0 {
		t.Errorf("negative counters: %+v", s)
	}
	if s.Misses < int64(s.Entries) {
		t.Errorf("%d entries from only %d misses", s.Entries, s.Misses)
	}
}

// TestResultCacheSaveLoadRecency: Save writes least-recent-first so a Load
// into a smaller cache keeps the most recently used entries.
func TestResultCacheSaveLoadRecency(t *testing.T) {
	c := NewResultCache(0)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), rcVal(int64(i)))
	}
	if _, ok := c.get("k0"); !ok { // k0 most recent; k1 now oldest
		t.Fatal("k0 missing")
	}
	path := filepath.Join(t.TempDir(), "rc.json")
	if err := c.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	d := NewResultCache(3)
	if err := d.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, ok := d.get("k1"); ok {
		t.Error("k1 survived the capacity-3 reload; Save lost the recency order")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if v, ok := d.get(k); !ok || v.Volume != int64(k[1]-'0') {
			t.Errorf("%s lost or stale after reload (%+v, ok=%v)", k, v, ok)
		}
	}
}

// TestResultCacheSaveAtomic: Save must replace an existing store without
// ever leaving a temp file behind (the SIGINT-safety contract).
func TestResultCacheSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rc.json")
	c := NewResultCache(0)
	c.put("old", rcVal(1))
	if err := c.Save(path); err != nil {
		t.Fatalf("first save: %v", err)
	}
	c.put("new", rcVal(2))
	if err := c.Save(path); err != nil {
		t.Fatalf("second save: %v", err)
	}
	d := NewResultCache(0)
	if err := d.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, ok := d.get("new"); !ok {
		t.Error("second save did not replace the store")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}
