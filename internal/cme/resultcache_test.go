package cme

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func rcVal(n int64) cachedRef {
	return cachedRef{Volume: n, Analyzed: n, Hits: n, Tier: TierExact}
}

// TestResultCacheEvictionOrder pins the LRU contract: a get promotes, so
// the entry evicted at capacity is the least recently *used*, not the
// least recently inserted.
func TestResultCacheEvictionOrder(t *testing.T) {
	c := NewResultCache(3)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), rcVal(int64(i)))
	}
	if _, ok := c.get("k0"); !ok { // k0 promoted; k1 is now LRU
		t.Fatal("k0 missing right after insert")
	}
	c.put("k3", rcVal(3))
	if _, ok := c.get("k1"); ok {
		t.Error("k1 survived past capacity; eviction ignored the get-promotion")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted, want only k1 gone", k)
		}
	}
	s := c.Stats()
	// gets: k0 hit, k1 miss, then k0/k2/k3 hits.
	if s.Hits != 4 || s.Misses != 1 || s.Evictions != 1 || s.Entries != 3 {
		t.Errorf("stats = %+v, want 4 hits / 1 miss / 1 eviction / 3 entries", s)
	}
}

// TestResultCachePutPromotes: re-putting an existing key updates the value
// in place and counts as a touch for eviction order.
func TestResultCachePutPromotes(t *testing.T) {
	c := NewResultCache(2)
	c.put("a", rcVal(1))
	c.put("b", rcVal(2))
	c.put("a", rcVal(3)) // update + promote; b becomes LRU
	c.put("c", rcVal(4)) // evicts b
	if _, ok := c.get("b"); ok {
		t.Error("b survived; re-put of a did not promote")
	}
	if v, ok := c.get("a"); !ok || v.Volume != 3 {
		t.Errorf("a = %+v ok=%v, want updated value 3", v, ok)
	}
}

// TestResultCacheConcurrent hammers get/put from many goroutines (run
// under -race) and checks the counters stay coherent: every get is either
// a hit or a miss, and entries = misses − evictions when every miss is
// followed by one put of a fresh key.
func TestResultCacheConcurrent(t *testing.T) {
	const (
		goroutines = 8
		iters      = 500
		capacity   = 64
	)
	c := NewResultCache(capacity)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				k := fmt.Sprintf("k%d", (g*31+i*7)%97)
				if _, ok := c.get(k); !ok {
					c.put(k, rcVal(int64(i)))
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if s.Hits+s.Misses != goroutines*iters {
		t.Errorf("hits %d + misses %d != %d gets", s.Hits, s.Misses, goroutines*iters)
	}
	if s.Entries > capacity {
		t.Errorf("%d entries, capacity %d", s.Entries, capacity)
	}
	// Puts of the same key can race (get-miss then put twice), so puts >=
	// misses is not exact; but live entries can never exceed distinct keys
	// and evictions can never exceed puts − entries.
	if s.Evictions < 0 || s.Entries < 0 {
		t.Errorf("negative counters: %+v", s)
	}
	if s.Misses < int64(s.Entries) {
		t.Errorf("%d entries from only %d misses", s.Entries, s.Misses)
	}
}

// TestResultCacheSaveLoadRecency: Save writes least-recent-first so a Load
// into a smaller cache keeps the most recently used entries.
func TestResultCacheSaveLoadRecency(t *testing.T) {
	c := NewResultCache(0)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), rcVal(int64(i)))
	}
	if _, ok := c.get("k0"); !ok { // k0 most recent; k1 now oldest
		t.Fatal("k0 missing")
	}
	path := filepath.Join(t.TempDir(), "rc.json")
	if err := c.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	d := NewResultCache(3)
	if err := d.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, ok := d.get("k1"); ok {
		t.Error("k1 survived the capacity-3 reload; Save lost the recency order")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if v, ok := d.get(k); !ok || v.Volume != int64(k[1]-'0') {
			t.Errorf("%s lost or stale after reload (%+v, ok=%v)", k, v, ok)
		}
	}
}

// TestResultCacheLoadCorruptFlippedBytes is the corruption regression
// test: flip bytes at every position of a persisted store, one at a time,
// and Load each damaged copy. No flip may error, panic, or smuggle a
// damaged entry into the cache — a flip either leaves the store
// byte-identical in meaning (impossible here: any flip breaks the
// checksum or the JSON) or quarantines it to .corrupt and starts cold.
func TestResultCacheLoadCorruptFlippedBytes(t *testing.T) {
	c := NewResultCache(0)
	for i := 0; i < 4; i++ {
		c.put(fmt.Sprintf("k%d", i), rcVal(int64(i+1)))
	}
	dir := t.TempDir()
	clean := filepath.Join(dir, "rc.json")
	if err := c.Save(clean); err != nil {
		t.Fatalf("save: %v", err)
	}
	blob, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	// Every byte position is a candidate; step a few bytes at a time to
	// keep the test quick while still covering envelope, sum and entries.
	for pos := 0; pos < len(blob); pos += 3 {
		bad := append([]byte(nil), blob...)
		// xor 0x01, not a case flip: Go's JSON decoder matches field names
		// case-insensitively, so a case-flipped envelope key would decode
		// identically and (correctly) load clean.
		bad[pos] ^= 0x01
		path := filepath.Join(dir, fmt.Sprintf("bad%d.json", pos))
		if err := os.WriteFile(path, bad, 0o644); err != nil {
			t.Fatal(err)
		}
		d := NewResultCache(0)
		if err := d.Load(path); err != nil {
			t.Fatalf("flip at %d: Load errored: %v", pos, err)
		}
		if s := d.Stats(); s.Entries != 0 {
			t.Fatalf("flip at %d: %d damaged entries loaded", pos, s.Entries)
		}
		if _, err := os.Stat(path + ".corrupt"); err != nil {
			t.Fatalf("flip at %d: no quarantine file: %v", pos, err)
		}
		if _, err := os.Stat(path); !os.IsNotExist(err) {
			t.Fatalf("flip at %d: damaged store still in place", pos)
		}
	}
	// The clean store still loads in full.
	d := NewResultCache(0)
	if err := d.Load(clean); err != nil {
		t.Fatalf("clean load: %v", err)
	}
	if s := d.Stats(); s.Entries != 4 {
		t.Fatalf("clean load got %d entries, want 4", s.Entries)
	}
}

// TestResultCacheLoadTruncated: every truncation of a valid store is
// quarantined, not erred on.
func TestResultCacheLoadTruncated(t *testing.T) {
	c := NewResultCache(0)
	c.put("k", rcVal(7))
	dir := t.TempDir()
	clean := filepath.Join(dir, "rc.json")
	if err := c.Save(clean); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(clean)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n += 7 {
		path := filepath.Join(dir, fmt.Sprintf("trunc%d.json", n))
		if err := os.WriteFile(path, blob[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		d := NewResultCache(0)
		if err := d.Load(path); err != nil {
			t.Fatalf("truncation to %d bytes: Load errored: %v", n, err)
		}
		if s := d.Stats(); s.Entries != 0 {
			t.Fatalf("truncation to %d bytes loaded %d entries", n, s.Entries)
		}
		if _, err := os.Stat(path + ".corrupt"); err != nil {
			t.Fatalf("truncation to %d bytes: no quarantine: %v", n, err)
		}
	}
}

// TestResultCacheLoadRejectsImpossibleEntry: a store whose checksum is
// valid but whose entry is semantically impossible (hand-edited) is
// quarantined by the value validator.
func TestResultCacheLoadRejectsImpossibleEntry(t *testing.T) {
	for name, val := range map[string]cachedRef{
		"negative_hits":    {Volume: 4, Analyzed: 4, Hits: -1, Tier: TierExact},
		"analyzed>volume":  {Volume: 4, Analyzed: 5, Tier: TierExact},
		"outcomes>counted": {Volume: 4, Analyzed: 4, Hits: 3, Cold: 2, Tier: TierExact},
		"bad_tier":         {Volume: 4, Analyzed: 4, Tier: Tier(9)},
		"bad_ratio":        {Volume: 4, Analyzed: 0, Tier: TierProbabilistic, Ratio: 1.5},
	} {
		inner, err := json.Marshal([]diskEntry{{Key: "k", Val: val}})
		if err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(inner)
		blob, err := json.Marshal(diskStore{Schema: StoreSchemaV1, Sum: hex.EncodeToString(sum[:]), Entries: inner})
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(t.TempDir(), "rc.json")
		if err := os.WriteFile(path, blob, 0o644); err != nil {
			t.Fatal(err)
		}
		d := NewResultCache(0)
		if err := d.Load(path); err != nil {
			t.Fatalf("%s: Load errored: %v", name, err)
		}
		if s := d.Stats(); s.Entries != 0 {
			t.Errorf("%s: impossible entry loaded", name)
		}
		if _, err := os.Stat(path + ".corrupt"); err != nil {
			t.Errorf("%s: no quarantine: %v", name, err)
		}
	}
}

// TestResultCacheSaveAtomic: Save must replace an existing store without
// ever leaving a temp file behind (the SIGINT-safety contract).
func TestResultCacheSaveAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rc.json")
	c := NewResultCache(0)
	c.put("old", rcVal(1))
	if err := c.Save(path); err != nil {
		t.Fatalf("first save: %v", err)
	}
	c.put("new", rcVal(2))
	if err := c.Save(path); err != nil {
		t.Fatalf("second save: %v", err)
	}
	d := NewResultCache(0)
	if err := d.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, ok := d.get("new"); !ok {
		t.Error("second save did not replace the store")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.Contains(e.Name(), ".tmp") {
			t.Errorf("temp file %s left behind", e.Name())
		}
	}
}

// TestResultCacheLoadMergesIntoWarm pins the merge contract the dist
// worker relies on: loading a store into a non-empty cache adds the
// persisted entries without evicting or clearing the resident ones, and
// an overlapping key takes the loaded value (last write wins — harmless
// under content addressing, where equal keys carry equal payloads).
func TestResultCacheLoadMergesIntoWarm(t *testing.T) {
	saver := NewResultCache(0)
	saver.put("shared", rcVal(7))
	saver.put("disk_only", rcVal(8))
	path := filepath.Join(t.TempDir(), "rc.json")
	if err := saver.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}

	warm := NewResultCache(0)
	warm.put("resident", rcVal(1))
	warm.put("shared", rcVal(99)) // conflicting payload, same key
	if err := warm.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if v, ok := warm.get("resident"); !ok || v.Volume != 1 {
		t.Errorf("resident entry lost by merge (%+v, ok=%v)", v, ok)
	}
	if v, ok := warm.get("disk_only"); !ok || v.Volume != 8 {
		t.Errorf("persisted entry not merged in (%+v, ok=%v)", v, ok)
	}
	if v, ok := warm.get("shared"); !ok || v.Volume != 7 {
		t.Errorf("conflict kept resident value %+v, want loaded (last write wins)", v)
	}
	if s := warm.Stats(); s.Entries != 3 {
		t.Errorf("%d entries after merge, want 3", s.Entries)
	}
}

// TestResultCacheLoadLayersStores: a worker warming from its own
// checkpoint plus a shared store sees the union, later loads winning on
// overlap.
func TestResultCacheLoadLayersStores(t *testing.T) {
	dir := t.TempDir()
	first := NewResultCache(0)
	first.put("a", rcVal(1))
	first.put("both", rcVal(2))
	p1 := filepath.Join(dir, "one.json")
	if err := first.Save(p1); err != nil {
		t.Fatal(err)
	}
	second := NewResultCache(0)
	second.put("b", rcVal(3))
	second.put("both", rcVal(4))
	p2 := filepath.Join(dir, "two.json")
	if err := second.Save(p2); err != nil {
		t.Fatal(err)
	}

	c := NewResultCache(0)
	for _, p := range []string{p1, p2, filepath.Join(dir, "missing.json")} {
		if err := c.Load(p); err != nil {
			t.Fatalf("load %s: %v", p, err)
		}
	}
	want := map[string]int64{"a": 1, "b": 3, "both": 4}
	for k, n := range want {
		if v, ok := c.get(k); !ok || v.Volume != n {
			t.Errorf("%s = %+v ok=%v, want volume %d", k, v, ok, n)
		}
	}
	if s := c.Stats(); s.Entries != len(want) {
		t.Errorf("%d entries, want %d", s.Entries, len(want))
	}
}

// TestResultCacheLoadCorruptKeepsWarmEntries: quarantining a damaged
// store must not disturb what is already resident — the merge semantics
// make corruption strictly additive-or-nothing.
func TestResultCacheLoadCorruptKeepsWarmEntries(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rc.json")
	if err := os.WriteFile(path, []byte(`{"schema":"cachette/resultcache/v1","sum":"00","entries":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	c := NewResultCache(0)
	c.put("resident", rcVal(5))
	if err := c.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	if v, ok := c.get("resident"); !ok || v.Volume != 5 {
		t.Errorf("resident entry damaged by corrupt load (%+v, ok=%v)", v, ok)
	}
	if s := c.Stats(); s.Entries != 1 {
		t.Errorf("%d entries, want only the resident one", s.Entries)
	}
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Errorf("corrupt store not quarantined: %v", err)
	}
}
