package cme

import (
	"context"
	"testing"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/obs"
)

// BenchmarkObsOverhead compares an exact solve with no collector in the
// context (the nil-sink fast path) against the same solve with a live
// collector, progress sink and span tree attached. The instrumented run
// must stay within ~2% of the uninstrumented one: the hot loops accumulate
// into plain locals and publish only at tile and classifier-release
// boundaries, never per point.
//
//	go test ./internal/cme/ -run xxx -bench ObsOverhead -count 5
func BenchmarkObsOverhead(b *testing.B) {
	np, err := normalize.Normalize(stencil1D(4096))
	if err != nil {
		b.Fatal(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		b.Fatal(err)
	}
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2}
	run := func(b *testing.B, ctx context.Context) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, err := New(np, cfg, Options{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := a.FindMissesCtx(ctx, budget.Budget{})
			if err != nil || rep.Tier != TierExact {
				b.Fatalf("tier %v, err %v", rep.Tier, err)
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, context.Background()) })
	b.Run("instrumented", func(b *testing.B) {
		col := obs.New("bench")
		col.OnProgress(func(obs.Event) {}, time.Millisecond)
		run(b, obs.NewContext(context.Background(), col))
	})
}

// BenchmarkTraceOverhead is BenchmarkObsOverhead's tracing counterpart:
// the nil-sink path (no collector, so no trace ids are ever minted) must
// stay at the uninstrumented baseline, and a collector joined to a
// remote trace — ids minted, spans linked, snapshot taken per solve, the
// dist worker's per-unit shape — must stay within ~2% of a plain
// collector. Trace identity is fixed at span creation, so the hot loops
// never see it.
//
//	go test ./internal/cme/ -run xxx -bench TraceOverhead -count 5
func BenchmarkTraceOverhead(b *testing.B) {
	np, err := normalize.Normalize(stencil1D(4096))
	if err != nil {
		b.Fatal(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		b.Fatal(err)
	}
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2}
	solve := func(b *testing.B, ctx context.Context) {
		a, err := New(np, cfg, Options{Workers: 1})
		if err != nil {
			b.Fatal(err)
		}
		rep, err := a.FindMissesCtx(ctx, budget.Budget{})
		if err != nil || rep.Tier != TierExact {
			b.Fatalf("tier %v, err %v", rep.Tier, err)
		}
	}
	b.Run("nil-sink", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			solve(b, context.Background())
		}
	})
	b.Run("traced", func(b *testing.B) {
		tp := obs.FormatTraceparent(obs.NewTraceID(), obs.NewSpanID())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			col := obs.NewTraced("unit:bench", tp)
			ctx, span := obs.StartSpan(obs.NewContext(context.Background(), col), "solve")
			solve(b, ctx)
			span.End()
			col.Finish()
			if s := col.Root().Snapshot(); s.TraceID == "" {
				b.Fatal("traced snapshot lost its trace id")
			}
		}
	})
}
