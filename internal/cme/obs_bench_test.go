package cme

import (
	"context"
	"testing"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/obs"
)

// BenchmarkObsOverhead compares an exact solve with no collector in the
// context (the nil-sink fast path) against the same solve with a live
// collector, progress sink and span tree attached. The instrumented run
// must stay within ~2% of the uninstrumented one: the hot loops accumulate
// into plain locals and publish only at tile and classifier-release
// boundaries, never per point.
//
//	go test ./internal/cme/ -run xxx -bench ObsOverhead -count 5
func BenchmarkObsOverhead(b *testing.B) {
	np, err := normalize.Normalize(stencil1D(4096))
	if err != nil {
		b.Fatal(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		b.Fatal(err)
	}
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2}
	run := func(b *testing.B, ctx context.Context) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			a, err := New(np, cfg, Options{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			rep, err := a.FindMissesCtx(ctx, budget.Budget{})
			if err != nil || rep.Tier != TierExact {
				b.Fatalf("tier %v, err %v", rep.Tier, err)
			}
		}
	}
	b.Run("uninstrumented", func(b *testing.B) { run(b, context.Background()) })
	b.Run("instrumented", func(b *testing.B) {
		col := obs.New("bench")
		col.OnProgress(func(obs.Event) {}, time.Millisecond)
		run(b, obs.NewContext(context.Background(), col))
	})
}
