package cme

import (
	"context"
	"math/bits"

	"cachemodel/internal/budget"
	"cachemodel/internal/ir"
	"cachemodel/internal/obs"
	"cachemodel/internal/poly"
	"cachemodel/internal/reuse"
	"cachemodel/internal/trace"
)

// fusedClassifier classifies one access for every candidate of a fuse
// group in a single pass. Soundness of the fusion rests on two facts that
// hold within a group (same program, same layout, same line size):
//
//  1. The memory line of every access, and therefore every cold equation
//     — "the producer exists and touches the same line" — is identical
//     across candidates. Since classify resolves an access by its FIRST
//     reuse vector with a satisfied cold equation (the replacement walk
//     then decides hit vs miss, never falls through), all candidates are
//     decided by the same vector at every point.
//  2. The interval walked by that vector's replacement equation visits
//     the same access sequence for every candidate; only the per-access
//     filter (set membership, line % NumSets_c) and the eviction
//     threshold (Assoc_c) differ. One traversal can therefore maintain a
//     distinct-line scratch per candidate and record, per candidate, the
//     position at which its solo walk would have stopped — reproducing
//     verdict AND logical scan count bit-identically.
//
// Each worker owns one fusedClassifier per fuse group (no locking).
type fusedClassifier struct {
	p        *Prepared
	g        *fuseGroup
	w        *trace.Walker
	states   []*fcState // parallel to g.cands
	paperLRU bool
	pend     []*fcState    // scratch: states needing a walk at this point
	walk     []fcWalkEntry // scratch: undecided candidates inside the current walk
	act      []*fcState    // scratch: states active for the current tile
	lbuf     []int         // reusable producer-point buffers
	pbuf     []int64

	// lineShift strength-reduces addr/lineBytes to a shift for the
	// (ubiquitous) power-of-two line sizes; -1 keeps the division.
	lineShift int

	// plain handles dynamic (non-uniform) reuse, which classifyFused does
	// not model; such groups are singletons and delegate to the full
	// per-candidate classifier.
	plain *classifier

	// Local metric accumulators (flushed at release, never per point).
	hCands    *obs.LocalHistogram // candidates per fused traversal
	nWalks    int64
	nMemoHits int64
	nSteps    int64
	nMemoOff  int64
}

// fcState is one candidate's slice of the fused walk: its geometry, its
// pooled distinct-line scratch, its verdict memo, and the per-point
// transient fields of the walk in progress.
type fcState struct {
	numSets  int64
	setMask  int64 // numSets-1 when numSets is a power of two, else -1
	wayBytes int64
	assoc    int
	scratch  *walkScratch
	// memo carries each vector's arena plus its hit-rate-gate state,
	// exactly as in the sequential classifier (see vecMemo and
	// memoDisableAfter).
	memo map[*reuse.Vector]*vecMemo

	set      int64
	walkDone bool
	evicted  bool
	scanned  int64
	key      string   // memo key to store after the walk ("" = none)
	vm       *vecMemo // arena the pending key stores into
}

// fcWalkEntry is the per-access working set of one undecided candidate,
// copied out of its fcState so the hot loop of fusedWalk scans a compact
// contiguous array instead of chasing state pointers.
type fcWalkEntry struct {
	set     int64
	setMask int64
	numSets int64
	assoc   int
	scratch *walkScratch
	st      *fcState
}

func newFusedClassifier(g *fuseGroup, w *trace.Walker, p *Prepared) *fusedClassifier {
	fc := &fusedClassifier{p: p, g: g, w: w, paperLRU: p.opt.PaperLRU,
		states: make([]*fcState, len(g.cands)), lineShift: -1,
		hCands: mFusedCandidates.NewLocal()}
	if g.lineBytes&(g.lineBytes-1) == 0 {
		fc.lineShift = bits.TrailingZeros64(uint64(g.lineBytes))
	}
	if p.dyn != nil {
		// Dynamic reuse: the group is a singleton (see solveExactFused) and
		// the full classifier runs instead of the fused walk.
		fc.plain = g.cands[0].a.newClassifierW(w)
		return fc
	}
	for i, cs := range g.cands {
		a := cs.a
		st := &fcState{numSets: a.numSets, setMask: a.setMask, wayBytes: a.wayBytes,
			assoc: a.cfg.Assoc, scratch: newWalkScratch(a.cfg.Assoc)}
		if !a.opt.NoMemo {
			st.memo = map[*reuse.Vector]*vecMemo{}
		}
		fc.states[i] = st
	}
	return fc
}

// release recycles the per-candidate scratches and flushes the locally
// accumulated metrics.
func (fc *fusedClassifier) release() {
	if fc.plain != nil {
		fc.plain.release()
		fc.plain = nil
	}
	for _, s := range fc.states {
		if s != nil && s.scratch != nil {
			s.scratch.release()
			s.scratch = nil
		}
	}
	fc.hCands.Flush()
	mWalks.Add(fc.nWalks)
	mWalkMemoHits.Add(fc.nMemoHits)
	mWalkSteps.Add(fc.nSteps)
	mWalkMemoDisabled.Add(fc.nMemoOff)
	fc.nWalks, fc.nMemoHits, fc.nSteps, fc.nMemoOff = 0, 0, 0, 0
}

// runTile classifies every point of reference ri inside the tile for the
// candidates listed in active (positions into g.cands), accumulating each
// candidate's counts into the parallel parts slice. ctx is polled every
// 4096 points; an aborted tile leaves partial parts and is not marked
// done by the caller. A non-nil probe is consulted per point with the
// fused totals — len(active) classified points and the summed logical
// scan work — so a single-candidate batch spends the budget exactly as
// the solo exact solver does (Check(1, scanned) per point, cold = 0).
func (fc *fusedClassifier) runTile(ctx context.Context, ri int, t poly.Tile, active []int, parts []RefReport, p *budget.Probe) error {
	r := fc.p.np.Refs[ri]
	var perr error
	if fc.plain != nil {
		n := 0
		before := parts[0].Analyzed
		fc.p.spaces[r.Stmt].EnumerateTile(t, func(idx []int64) bool {
			out, scanned := fc.plain.classify(r, idx)
			parts[0].Analyzed++
			switch out {
			case Hit:
				parts[0].Hits++
			case ColdMiss:
				parts[0].Cold++
			case ReplacementMiss:
				parts[0].Repl++
			}
			if p != nil {
				if perr = p.Check(1, scanned); perr != nil {
					return false
				}
			}
			n++
			return n&4095 != 0 || ctx.Err() == nil
		})
		mTilesSolved.Inc()
		mPointsClassed.Add(parts[0].Analyzed - before)
		mPointsEnumerated.Add(parts[0].Analyzed - before)
		return perr
	}
	fc.act = fc.act[:0]
	for _, pos := range active {
		fc.act = append(fc.act, fc.states[pos])
	}
	// Symbolic fast path: unbudgeted solves only — budgeted batch runs
	// enumerate, which is trivially bit-identical (and rare: budgets bind
	// per point, where replay would cost as much as classification).
	if p == nil && !fc.p.opt.NoSymbolic {
		if sym := fc.g.sym[r]; sym.usable() {
			fc.runTileSym(ctx, r, sym, t, parts)
			return nil
		}
	}
	var before int64
	for k := range parts {
		before += parts[k].Analyzed
	}
	n := 0
	fc.p.spaces[r.Stmt].EnumerateTile(t, func(idx []int64) bool {
		scanned := fc.classifyFused(r, idx, parts)
		if p != nil {
			if perr = p.Check(int64(len(fc.act)), scanned); perr != nil {
				return false
			}
		}
		n++
		return n&4095 != 0 || ctx.Err() == nil
	})
	var after int64
	for k := range parts {
		after += parts[k].Analyzed
	}
	mTilesSolved.Inc()
	mPointsClassed.Add(after - before)
	mPointsEnumerated.Add(after - before)
	return perr
}

// classifyFused is classify for all active candidates at once. It returns
// the summed logical scan work of the point across the active candidates
// (memo replays included; cold misses scan nothing).
func (fc *fusedClassifier) classifyFused(r *ir.NRef, idx []int64, parts []RefReport) int64 {
	g := fc.g
	addr := r.AddressAt(idx)
	var line int64
	if fc.lineShift >= 0 {
		line = addr >> fc.lineShift
	} else {
		line = addr / g.lineBytes
	}
	consumer := trace.Time{Label: r.Stmt.Label, Idx: idx, Seq: r.Seq}

	for _, v := range g.vecs[r] {
		plabel, pidx := v.ProducerPointBuf(idx, &fc.lbuf, &fc.pbuf)
		// Cold equation — shared across the group: the producer access
		// must exist and touch the same memory line.
		if !fc.p.spaces[v.Producer.Stmt].Contains(pidx) {
			continue
		}
		paddr := v.Producer.AddressAt(pidx)
		if fc.lineShift >= 0 {
			paddr >>= fc.lineShift
		} else {
			paddr /= g.lineBytes
		}
		if paddr != line {
			continue
		}
		producer := trace.Time{Label: plabel, Idx: pidx, Seq: v.Producer.Seq}
		info := g.memo[v]
		fc.pend = fc.pend[:0]
		for _, s := range fc.act {
			s.walkDone, s.evicted, s.scanned, s.key, s.vm = false, false, 0, "", nil
			if s.setMask >= 0 {
				s.set = line & s.setMask
			} else {
				s.set = line % s.numSets
			}
			if s.memo != nil && info.invMask != 0 {
				vm := s.memo[v]
				if vm == nil {
					vm = &vecMemo{entries: map[string]memoEntry{}}
					s.memo[v] = vm
				}
				if !vm.off {
					key := s.scratch.memoKey(info, idx, addr, s.wayBytes)
					if e, ok := vm.entries[string(key)]; ok {
						s.evicted, s.scanned, s.walkDone = e.evicted, e.scanned, true
						fc.nMemoHits++
						vm.miss = 0
					} else {
						s.key = string(key)
						s.vm = vm
					}
				}
			}
			if !s.walkDone {
				fc.pend = append(fc.pend, s)
			}
		}
		if len(fc.pend) > 0 {
			fc.hCands.Observe(int64(len(fc.pend)))
			fc.fusedWalk(producer, consumer, line)
			fc.nWalks += int64(len(fc.pend))
			for _, s := range fc.pend {
				fc.nSteps += s.scanned
				if s.key != "" {
					s.vm.entries[s.key] = memoEntry{scanned: s.scanned, evicted: s.evicted}
					if s.vm.miss++; s.vm.miss >= memoDisableAfter {
						// Hit-rate gate, as in classifier.classify: free the
						// vector's arena and stop probing it.
						s.vm.entries = nil
						s.vm.off = true
						fc.nMemoOff++
					}
				}
			}
		}
		var scanned int64
		for k, s := range fc.act {
			parts[k].Analyzed++
			scanned += s.scanned
			if s.evicted {
				parts[k].Repl++
			} else {
				parts[k].Hits++
			}
		}
		return scanned
	}
	// No reuse vector solves the cold equation: a cold miss everywhere.
	// (Dynamic reuse never reaches here — NonUniform candidates are
	// solved unfused; see solveExactFused.)
	for k := range fc.act {
		parts[k].Analyzed++
		parts[k].Cold++
	}
	return 0
}

// fusedWalk runs one shared interval traversal deciding the replacement
// equation for every pending candidate. Each candidate keeps its own
// distinct-line set, eviction threshold and stopping position; the
// traversal ends as soon as every candidate is decided (or, under exact
// LRU, when the reused line itself is touched — which decides everyone at
// once, exactly as each solo walk would have stopped there).
func (fc *fusedClassifier) fusedWalk(producer, consumer trace.Time, line int64) {
	// walk is the compacted undecided set: candidates are swap-removed the
	// moment they decide, so the per-access inner loop costs Σ_c (own walk
	// length), not |group| × (longest walk) — a decided small cache stops
	// charging the walk immediately, exactly as its solo walk would have
	// stopped. Entries are values, not state pointers, so the loop scans a
	// contiguous array. (fc.pend stays intact for the caller's memo stores.)
	walk := fc.walk[:0]
	for _, s := range fc.pend {
		s.scratch.reset()
		walk = append(walk, fcWalkEntry{set: s.set, setMask: s.setMask,
			numSets: s.numSets, assoc: s.assoc, scratch: s.scratch, st: s})
	}
	var pos int64
	lineBytes := fc.g.lineBytes
	lineShift := fc.lineShift
	// When every pending candidate has a power-of-two set count, candidate
	// k's set test is (al^line)&mask_k == 0 and the masks are nested, so a
	// single test against the smallest mask rejects an access that
	// conflicts with no candidate at all — the overwhelmingly common case
	// — without touching the per-candidate loop.
	fastMask := int64(-1)
	for _, s := range fc.pend {
		if s.setMask < 0 {
			fastMask = -1
			break
		}
		if fastMask < 0 || s.setMask < fastMask {
			fastMask = s.setMask
		}
	}
	// scan applies one interval access to every undecided candidate and
	// reports whether any remain. Set membership strength-reduces the
	// modulo to a mask for power-of-two set counts.
	scan := func(al int64) bool {
		x := al ^ line
		if fastMask >= 0 && x&fastMask != 0 {
			return len(walk) > 0
		}
		for i := 0; i < len(walk); {
			w := &walk[i]
			var in bool
			if w.setMask >= 0 {
				in = x&w.setMask == 0
			} else {
				in = al%w.numSets == w.set
			}
			if in && w.scratch.add(al) >= w.assoc {
				w.st.evicted, w.st.scanned, w.st.walkDone = true, pos, true
				walk[i] = walk[len(walk)-1]
				walk = walk[:len(walk)-1]
				continue
			}
			i++
		}
		return len(walk) > 0
	}
	if fc.paperLRU {
		// The paper's equations verbatim: k distinct set contentions
		// anywhere in the interval evict; touches of the reused line are
		// counted as scanned but never stop a solo walk.
		fc.w.Between(producer, consumer, func(_ *ir.NRef, addr int64) bool {
			pos++
			var al int64
			if lineShift >= 0 {
				al = addr >> lineShift
			} else {
				al = addr / lineBytes
			}
			if al == line {
				return true
			}
			return scan(al)
		})
	} else {
		// Exact LRU: scan backwards from the consumer; the first touch of
		// the line is its most recent fetch and stops every solo walk at
		// the same position.
		fc.w.BetweenReverse(producer, consumer, func(_ *ir.NRef, addr int64) bool {
			pos++
			var al int64
			if lineShift >= 0 {
				al = addr >> lineShift
			} else {
				al = addr / lineBytes
			}
			if al == line {
				for _, w := range walk {
					w.st.scanned, w.st.walkDone = pos, true
				}
				walk = walk[:0]
				return false
			}
			return scan(al)
		})
	}
	// Interval exhausted with candidates still undecided: their solo
	// walks scanned the whole interval and found no eviction.
	for _, w := range walk {
		w.st.scanned, w.st.walkDone = pos, true
	}
	fc.walk = walk[:0]
}
