package cme

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sync"

	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/obs"
	"cachemodel/internal/sampling"
)

// CacheStats are the result cache's observability counters.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// cachedRef is one cached per-reference result: the complete RefReport of
// a reference under one fully specified candidate (content-addressed, so
// the entry is valid wherever the key matches). Stored per reference over
// the full tile — per-run tile partitions depend on the worker count, but
// their merged sums do not, which is exactly what makes the entry
// portable across runs.
type cachedRef struct {
	Volume   int64   `json:"volume"`
	Analyzed int64   `json:"analyzed"`
	Sampled  bool    `json:"sampled,omitempty"`
	Hits     int64   `json:"hits"`
	Cold     int64   `json:"cold"`
	Repl     int64   `json:"repl"`
	Tier     Tier    `json:"tier"`
	Ratio    float64 `json:"ratio,omitempty"`
}

func (v cachedRef) fill(rr *RefReport) {
	rr.Volume = v.Volume
	rr.Analyzed = v.Analyzed
	rr.Sampled = v.Sampled
	rr.Hits = v.Hits
	rr.Cold = v.Cold
	rr.Repl = v.Repl
	rr.Tier = v.Tier
	rr.Ratio = v.Ratio
	rr.Complete = true
}

func snapRef(rr *RefReport) cachedRef {
	return cachedRef{Volume: rr.Volume, Analyzed: rr.Analyzed, Sampled: rr.Sampled,
		Hits: rr.Hits, Cold: rr.Cold, Repl: rr.Repl, Tier: rr.Tier, Ratio: rr.Ratio}
}

// ResultCache is a content-addressed, LRU-bounded store of per-reference
// analysis results. Keys hash the prepared program digest, the reference,
// the tile, the cache geometry, the layout (every array base), and the
// solve mode (exact / sampled plan + seed + adaptive), so a hit can only
// ever return the bit-identical result the solver would recompute.
// Safe for concurrent use.
type ResultCache struct {
	mu      sync.Mutex
	cap     int
	lru     *list.List // most recent at front; values are *rcEntry
	idx     map[string]*list.Element
	hits    int64
	misses  int64
	evicted int64
}

type rcEntry struct {
	key string
	val cachedRef
}

// NewResultCache returns a result cache bounded to capacity entries
// (capacity <= 0 selects a generous default).
func NewResultCache(capacity int) *ResultCache {
	if capacity <= 0 {
		capacity = 1 << 16
	}
	return &ResultCache{cap: capacity, lru: list.New(), idx: map[string]*list.Element{}}
}

// get returns the cached result for key, promoting it to most recent.
func (c *ResultCache) get(key string) (cachedRef, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.idx[key]; ok {
		c.lru.MoveToFront(e)
		c.hits++
		mCacheHits.Inc()
		return e.Value.(*rcEntry).val, true
	}
	c.misses++
	mCacheMisses.Inc()
	return cachedRef{}, false
}

// put stores a result, evicting the least recently used entry at capacity.
func (c *ResultCache) put(key string, v cachedRef) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.idx[key]; ok {
		e.Value.(*rcEntry).val = v
		c.lru.MoveToFront(e)
		return
	}
	c.idx[key] = c.lru.PushFront(&rcEntry{key: key, val: v})
	for c.lru.Len() > c.cap {
		old := c.lru.Back()
		c.lru.Remove(old)
		delete(c.idx, old.Value.(*rcEntry).key)
		c.evicted++
		mCacheEvictions.Inc()
	}
}

// Stats returns the counters (and current occupancy).
func (c *ResultCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Hits: c.hits, Misses: c.misses, Evictions: c.evicted, Entries: c.lru.Len()}
}

// diskEntry is the JSON form of one persisted cache entry.
type diskEntry struct {
	Key string    `json:"key"`
	Val cachedRef `json:"val"`
}

// StoreSchemaV1 identifies the checksummed on-disk store envelope.
const StoreSchemaV1 = "cachette/resultcache/v1"

// diskStore is the on-disk envelope: the entries blob plus a SHA-256 over
// it, so Load can tell a garbled or truncated-then-patched store from a
// valid one even when the damage still parses as JSON (a flipped digit in
// a count, say).
type diskStore struct {
	Schema  string          `json:"schema"`
	Sum     string          `json:"sum"` // hex SHA-256 of Entries' JSON
	Entries json.RawMessage `json:"entries"`
}

// Save writes the cache contents (least recent first, so a Load replays
// them into the same recency order) to path as checksummed JSON. The
// write is atomic — temp file, fsync, rename — so an interrupted run (the
// SIGINT path) can never leave a truncated store behind; the previous
// store survives intact until the rename commits.
func (c *ResultCache) Save(path string) error {
	c.mu.Lock()
	entries := make([]diskEntry, 0, c.lru.Len())
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		re := e.Value.(*rcEntry)
		entries = append(entries, diskEntry{Key: re.key, Val: re.val})
	}
	c.mu.Unlock()
	inner, err := json.Marshal(entries)
	if err != nil {
		return err
	}
	sum := sha256.Sum256(inner)
	blob, err := json.Marshal(diskStore{Schema: StoreSchemaV1, Sum: hex.EncodeToString(sum[:]), Entries: inner})
	if err != nil {
		return err
	}
	return obs.WriteFileAtomic(path, blob)
}

// Load merges entries persisted by Save into the cache — it never clears
// what is already resident, so a warm cache can layer several stores (a
// resumed dist worker loads both its own checkpoint and the coordinator's
// shared store). A key present both in memory and on disk keeps the
// loaded value (last write wins), which is harmless by construction:
// content addressing means equal keys carry equal payloads, so the
// "conflict" replaces a value with its bit-identical twin. A missing file
// is not an error (a cold on-disk store is simply empty), and neither is
// a corrupt one: a store that fails to decode, fails its checksum, or
// carries an impossible entry is quarantined — renamed to path+".corrupt"
// — leaving resident entries untouched, and the load simply contributes
// nothing, recomputing instead of erroring. A content-addressed cache can
// always be rebuilt; the only unrecoverable sin would be serving a
// damaged entry as truth.
func (c *ResultCache) Load(path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	entries, err := decodeStore(blob)
	if err != nil {
		mCacheCorrupt.Inc()
		// Quarantine keeps the evidence for debugging while getting it out
		// of the load path; a failed rename is not fatal (worst case the
		// next Save overwrites the damage).
		_ = os.Rename(path, path+".corrupt")
		return nil
	}
	for _, e := range entries {
		c.put(e.Key, e.Val)
	}
	return nil
}

// decodeStore decodes and fully validates a persisted store.
func decodeStore(blob []byte) ([]diskEntry, error) {
	var ds diskStore
	if err := json.Unmarshal(blob, &ds); err != nil {
		return nil, fmt.Errorf("result cache: %v", err)
	}
	if ds.Schema != StoreSchemaV1 {
		return nil, fmt.Errorf("result cache: schema %q, want %q", ds.Schema, StoreSchemaV1)
	}
	sum := sha256.Sum256(ds.Entries)
	if hex.EncodeToString(sum[:]) != ds.Sum {
		return nil, fmt.Errorf("result cache: checksum mismatch")
	}
	var entries []diskEntry
	if err := json.Unmarshal(ds.Entries, &entries); err != nil {
		return nil, fmt.Errorf("result cache: entries: %v", err)
	}
	for i, e := range entries {
		if err := e.Val.validate(); err != nil {
			return nil, fmt.Errorf("result cache: entry %d (%s): %v", i, e.Key, err)
		}
		if e.Key == "" {
			return nil, fmt.Errorf("result cache: entry %d: empty key", i)
		}
	}
	return entries, nil
}

// validate rejects impossible per-reference results — the last line of
// defence should a damaged store still pass the checksum (it cannot via
// Save, but quarantined stores get hand-edited, and defence in depth is
// cheap at load time).
func (v cachedRef) validate() error {
	switch {
	case v.Volume < 0 || v.Analyzed < 0 || v.Hits < 0 || v.Cold < 0 || v.Repl < 0:
		return fmt.Errorf("negative count")
	case v.Analyzed > v.Volume:
		return fmt.Errorf("analyzed %d exceeds volume %d", v.Analyzed, v.Volume)
	case v.Hits+v.Cold+v.Repl > v.Analyzed:
		return fmt.Errorf("outcomes %d exceed analyzed %d", v.Hits+v.Cold+v.Repl, v.Analyzed)
	case v.Tier < TierExact || v.Tier > TierProbabilistic:
		return fmt.Errorf("unknown tier %d", v.Tier)
	case v.Ratio < 0 || v.Ratio > 1:
		return fmt.Errorf("ratio %g outside [0,1]", v.Ratio)
	}
	return nil
}

// refKey builds the content address of one reference's result under one
// candidate: prepared-program digest, reference Seq, tile (the full tile —
// see cachedRef), geometry, every array base in program order (alias
// chains resolve to concrete bases, so the bases pin the layout
// completely), and the solve mode.
func refKey(digest []byte, r *ir.NRef, np *ir.NProgram, cfg cache.Config, mode solveMode) string {
	h := sha256.New()
	h.Write(digest)
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wi(int64(r.Seq))
	wi(-1) // the full tile (Dim -1): per-ref results are tile-merged
	wi(cfg.SizeBytes)
	wi(cfg.LineBytes)
	wi(int64(cfg.Assoc))
	for _, a := range np.Arrays {
		wi(a.Base)
	}
	if mode.sampled {
		wi(1)
		wi(int64(math.Float64bits(mode.plan.C)))
		wi(int64(math.Float64bits(mode.plan.W)))
		wi(mode.seed)
		if mode.adaptive {
			wi(1)
		} else {
			wi(0)
		}
	} else {
		wi(0)
	}
	// Hex, not raw bytes: keys must survive the JSON round-trip of the
	// on-disk store, and encoding/json mangles non-UTF-8 strings.
	return hex.EncodeToString(h.Sum(nil))
}

// solveMode captures the result-affecting solve parameters beyond the
// program and the candidate.
type solveMode struct {
	sampled  bool
	plan     sampling.Plan
	seed     int64
	adaptive bool
}

// batchMode derives the solve mode one SolveBatch invocation with this
// plan would run under (mirroring SolveBatch's seed defaulting).
func (p *Prepared) batchMode(plan *sampling.Plan) solveMode {
	if plan == nil {
		return solveMode{}
	}
	seed := p.opt.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF
	}
	return solveMode{sampled: true, plan: *plan, seed: seed, adaptive: p.opt.Adaptive}
}

// SolveKey returns the SHA-256 content address of one SolveBatch
// invocation over this Prepared program: the prepared digest, every
// candidate's geometry and layout (in order), and the solve mode. Two
// invocations with equal keys produce bit-identical reports, which makes
// the key the natural singleflight handle for a serving layer: identical
// concurrent requests collapse onto one solve, and the key doubles as a
// stable job fingerprint in logs and metrics.
func (p *Prepared) SolveKey(cands []Candidate, plan *sampling.Plan) string {
	mode := p.batchMode(plan)
	h := sha256.New()
	h.Write(p.Digest())
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wi(int64(len(cands)))
	for _, c := range cands {
		wi(c.Config.SizeBytes)
		wi(c.Config.LineBytes)
		wi(int64(c.Config.Assoc))
		lk := layoutKey(c.Layout)
		wi(int64(len(lk)))
		h.Write([]byte(lk))
	}
	if mode.sampled {
		wi(1)
		wi(int64(math.Float64bits(mode.plan.C)))
		wi(int64(math.Float64bits(mode.plan.W)))
		wi(mode.seed)
		if mode.adaptive {
			wi(1)
		} else {
			wi(0)
		}
	} else {
		wi(0)
	}
	return hex.EncodeToString(h.Sum(nil))
}
