package cme

import (
	"fmt"
	"io"
	"sort"

	"cachemodel/internal/ir"
)

// Aggregate is a miss-ratio summary over a group of references (per array
// or per statement).
type Aggregate struct {
	Key      string
	Refs     int
	Accesses int64
	Misses   float64 // estimated, access-weighted
}

// MissRatio returns the group's miss ratio in percent.
func (a Aggregate) MissRatio() float64 {
	if a.Accesses == 0 {
		return 0
	}
	return 100 * a.Misses / float64(a.Accesses)
}

// ByArray groups the report per array, heaviest miss volume first.
func (rep *Report) ByArray() []Aggregate {
	return rep.groupBy(func(r *ir.NRef) string { return r.Array.Name })
}

// ByStatement groups the report per source statement, heaviest first.
func (rep *Report) ByStatement() []Aggregate {
	return rep.groupBy(func(r *ir.NRef) string { return r.Stmt.Name })
}

func (rep *Report) groupBy(key func(*ir.NRef) string) []Aggregate {
	m := map[string]*Aggregate{}
	var order []string
	for _, rr := range rep.Refs {
		k := key(rr.Ref)
		a := m[k]
		if a == nil {
			a = &Aggregate{Key: k}
			m[k] = a
			order = append(order, k)
		}
		a.Refs++
		a.Accesses += rr.Volume
		a.Misses += float64(rr.Volume) * rr.MissRatio()
	}
	out := make([]Aggregate, 0, len(order))
	for _, k := range order {
		out = append(out, *m[k])
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Misses > out[j].Misses })
	return out
}

// WriteSummary renders the report with per-array aggregation.
func (rep *Report) WriteSummary(w io.Writer) {
	kind := "FindMisses"
	if rep.Sampled {
		kind = "EstimateMisses"
	}
	fmt.Fprintf(w, "%s on %s: miss ratio %.2f%% over %d accesses (%d references, %v)\n",
		kind, rep.Config, rep.MissRatio(), rep.TotalAccesses(), len(rep.Refs), rep.Elapsed)
	fmt.Fprintf(w, "%-12s %6s %12s %14s %8s\n", "array", "refs", "accesses", "est. misses", "%miss")
	for _, a := range rep.ByArray() {
		fmt.Fprintf(w, "%-12s %6d %12d %14.0f %8.2f\n", a.Key, a.Refs, a.Accesses, a.Misses, a.MissRatio())
	}
}
