package cme

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sync"

	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/poly"
	"cachemodel/internal/reuse"
)

// Prepared is the geometry-invariant stage of the analysis pipeline: the
// normalised program together with everything that does not depend on the
// cache configuration or the inter-array layout — the per-statement
// iteration polyhedra (with volumes and bounding boxes materialised), the
// dynamic reuse pairs, and, lazily per line size, the reuse vectors and
// the memoization-eligibility table. One Prepared program serves any
// number of (cache.Config, layout) candidates: Analyzer stamps a cheap
// geometry-dependent view on top of the shared immutable state, and
// SolveBatch evaluates whole candidate sweeps against it.
//
// What is provably Config-independent (and therefore lives here):
//
//   - poly.Space per statement: built from bounds and guards only;
//   - reuse vectors: reuse.Generate consults the configuration solely
//     through LineElems, i.e. the line size — so vectors are shared per
//     LineBytes across every capacity and associativity (and across every
//     layout, since they are derived from subscripts, not addresses);
//   - the memo table: vectorMemoInfo reads loop bounds, guards and address
//     coefficients — never array bases — so it too is per-LineBytes.
//
// Array base addresses are the one piece of global mutable state
// (ir.Array.Base); Prepared captures a snapshot of the bases it was built
// under so SolveBatch can restore them after applying candidate layouts.
type Prepared struct {
	np     *ir.NProgram
	opt    Options
	spaces map[*ir.NStmt]*poly.Space
	dyn    map[*ir.NRef][]*reuse.DynamicPair
	digest [sha256.Size]byte

	mu     sync.Mutex
	byLine map[int64]*lineShared
}

// lineShared is the per-line-size slice of the geometry-invariant state.
type lineShared struct {
	vecs map[*ir.NRef][]*reuse.Vector
	memo map[*reuse.Vector]memoInfo
	sym  map[*ir.NRef]*refSym
}

// Prepare builds the geometry-invariant stage once. The program must be
// laid out (array bases assigned); the layout in effect at Prepare time is
// the batch solver's baseline, restored after every candidate sweep.
func Prepare(np *ir.NProgram, opt Options) (*Prepared, error) {
	for _, arr := range np.Arrays {
		if arr.Base < 0 {
			return nil, fmt.Errorf("cme: array %s has no base address; run layout first", arr.Name)
		}
	}
	p := &Prepared{np: np, opt: opt,
		spaces: map[*ir.NStmt]*poly.Space{},
		byLine: map[int64]*lineShared{},
	}
	for _, s := range np.Stmts {
		sp := poly.FromStmt(s)
		sp.Volume() // materialise the lazy caches so workers only read
		sp.BoundingBox()
		p.spaces[s] = sp
	}
	if opt.Reuse.NonUniform {
		p.dyn = reuse.GenerateDynamic(np)
	}
	p.digest = programDigest(np, opt)
	return p, nil
}

// lineState returns (building on first use) the reuse vectors and memo
// table for one line size.
func (p *Prepared) lineState(lineBytes int64) *lineShared {
	p.mu.Lock()
	defer p.mu.Unlock()
	if ls, ok := p.byLine[lineBytes]; ok {
		return ls
	}
	// Any valid configuration with this line size yields the same vectors;
	// reuse.Generate reads it only through LineElems. (Options.Vectors is
	// deliberately ignored here: caller-supplied vectors describe a single
	// unknown line size, while this table is keyed by line size.)
	cfg := cache.Config{SizeBytes: lineBytes, LineBytes: lineBytes, Assoc: 1}
	vecs := reuse.Generate(p.np, cfg, p.opt.Reuse)
	ls := &lineShared{vecs: vecs, memo: memoTable(p.np, vecs)}
	// Symbolic-region eligibility reads the same inputs as the memo table
	// plus the line size, so it shares the per-line cache.
	ls.sym = buildSymInfo(p.np, p.spaces, vecs, ls.memo, p.dyn, lineBytes)
	p.byLine[lineBytes] = ls
	return ls
}

// Analyzer stamps a geometry-dependent view of the Prepared program for
// one cache configuration. The returned Analyzer shares the Prepared
// spaces, vectors and memo table immutably; building it costs no
// re-normalisation, no reuse generation and no polyhedron work.
func (p *Prepared) Analyzer(cfg cache.Config) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ls := p.lineState(cfg.LineBytes)
	a := &Analyzer{np: p.np, cfg: cfg, opt: p.opt,
		vecs:     ls.vecs,
		dyn:      p.dyn,
		spaces:   p.spaces,
		memoInfo: ls.memo,
		symOf:    ls.sym,
	}
	a.memoPrecompute()
	return a, nil
}

// Program returns the underlying normalised program.
func (p *Prepared) Program() *ir.NProgram { return p.np }

// Digest returns the content digest of the prepared program: program
// structure (bounds, guards, subscripts, array shapes), reference order
// and the analysis options that shape results. Array bases are excluded —
// the layout is a per-candidate input and enters the result-cache key
// separately — so the digest is stable across re-layouts of one program.
func (p *Prepared) Digest() []byte {
	d := p.digest
	return d[:]
}

// programDigest hashes everything about (np, opt) that determines
// analysis results except cache geometry and array bases.
func programDigest(np *ir.NProgram, opt Options) [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wa := func(a ir.Affine) {
		wi(a.Const)
		wi(int64(len(a.Coeff)))
		for _, c := range a.Coeff {
			wi(c)
		}
	}
	wi(int64(np.Depth))
	wi(int64(len(np.Stmts)))
	for _, s := range np.Stmts {
		for _, l := range s.Label {
			wi(int64(l))
		}
		wi(int64(len(s.Bounds)))
		for _, b := range s.Bounds {
			wa(b.Lo)
			wa(b.Hi)
		}
		wi(int64(len(s.Guards)))
		for _, g := range s.Guards {
			wa(g.Expr)
			if g.IsEq {
				wi(1)
			} else {
				wi(0)
			}
		}
	}
	wi(int64(len(np.Arrays)))
	for _, a := range np.Arrays {
		h.Write([]byte(a.Name))
		wi(a.ElemSize)
		for _, d := range a.Dims {
			wi(d)
		}
	}
	wi(int64(len(np.Refs)))
	for _, r := range np.Refs {
		wi(int64(r.Seq))
		h.Write([]byte(r.Array.Name))
		if r.Write {
			wi(1)
		} else {
			wi(0)
		}
		wi(int64(len(r.Subs)))
		for _, s := range r.Subs {
			wa(s)
		}
	}
	// Analysis options that change classification results.
	ro := opt.Reuse
	wi(int64(ro.KernelSpan))
	wi(int64(ro.MaxPerPair))
	flag := func(b bool) {
		if b {
			wi(1)
		} else {
			wi(0)
		}
	}
	flag(ro.NoSpatial)
	flag(ro.NoCrossColumn)
	flag(ro.NoGroup)
	flag(ro.NonUniform)
	flag(opt.PaperLRU)
	var out [sha256.Size]byte
	h.Sum(out[:0])
	return out
}
