package cme

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"sync"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cerr"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/obs"
	"cachemodel/internal/poly"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

// BatchError reports the candidates a SolveBatch call could not solve
// (invalid configuration, failed layout, analyzer construction error).
// The batch continues past such candidates: their reports stay nil while
// every other candidate is solved normally, so callers can surface
// per-candidate failures instead of losing the whole sweep.
type BatchError struct {
	Errs map[int]error // candidate index → its error
}

func (e *BatchError) Error() string {
	idxs := make([]int, 0, len(e.Errs))
	for i := range e.Errs {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var b strings.Builder
	fmt.Fprintf(&b, "%d of batch candidates failed:", len(e.Errs))
	for _, i := range idxs {
		fmt.Fprintf(&b, " [%d] %v;", i, e.Errs[i])
	}
	return strings.TrimSuffix(b.String(), ";")
}

// Candidate is one point of a design-space sweep: a cache geometry plus an
// optional inter-array layout. A nil Layout keeps the layout the program
// was Prepared under.
type Candidate struct {
	Label  string
	Config cache.Config
	// Layout, when non-nil, is applied (layout.AssignProgram) before this
	// candidate is solved. Candidates with equal layouts are grouped and
	// solved under one base-address assignment; SolveBatch restores the
	// baseline layout before returning.
	Layout *layout.Options
}

// BatchOptions tunes SolveBatch.
type BatchOptions struct {
	// Plan selects the sampled solver (EstimateMisses semantics, honouring
	// the Prepared Options' Seed and Adaptive flags); nil runs the exact
	// solver (FindMisses semantics) for every candidate.
	Plan *sampling.Plan
	// Cache, when non-nil, is consulted per (candidate, reference) before
	// solving and updated afterwards, so candidates repeated across
	// SolveBatch calls (or across processes, via Save/Load) are free.
	Cache *ResultCache
	// Workers sets the solver pool size (0 = GOMAXPROCS). Results are
	// bit-identical at any worker count.
	Workers int
	// Budget caps the whole batch (shared across candidates). On
	// exhaustion each candidate's unfinished references walk the same
	// degradation ladder as the solo solvers (sampled fallback, then
	// probabilistic), with per-candidate Degraded/Tier provenance. The
	// zero value imposes no limits.
	Budget budget.Budget
	// NoGeom disables the geometry-parametric closed-form tier (see
	// geom.go), forcing every exact candidate through the fused
	// enumerating solver — the reference baseline for benchmarks and
	// equivalence tests. The tier is also off automatically for sampled
	// plans, fault-hooked budgets, NoSymbolic analyses and dynamic reuse.
	NoGeom bool
	// Geom tunes the geometry-parametric tier; nil uses the defaults.
	Geom *GeomOptions
}

// SolveBatch evaluates every candidate against the Prepared program and
// returns one Report per candidate, index-aligned with cands.
//
// The solve is organised to keep one worker pool saturated across the
// whole sweep instead of draining it per candidate:
//
//   - candidates are grouped by layout (array bases are global state, so
//     layout groups run sequentially; everything below is within a group);
//   - exact-tier candidates sharing a line size are FUSED: the cold
//     equation and the deciding reuse vector of an access depend only on
//     the line size, so one interval walk classifies the access for every
//     fused candidate at once, each with its own distinct-line scratch,
//     stopping position and verdict — bit-identical to per-candidate
//     FindMisses, including the logical scan counts;
//   - the work items of all fused groups — (candidate group, reference,
//     tile) — feed one pool, tiled exactly like findTiled, and the
//     per-tile partial counts merge deterministically in item order.
//
// Sampled candidates (Plan != nil) are not fused — each (candidate,
// reference) is one pool item — but they share the Prepared state and the
// per-reference sample points (the sampling RNG is seeded per reference,
// independent of geometry), and remain bit-identical to per-candidate
// EstimateMisses under the same seed.
//
// Duplicate candidates inside one call are solved once and copied.
// SolveBatch honours ctx cancellation (returning cerr.ErrCanceled with
// the completed candidates' reports in place) and opt.Budget (degrading
// per candidate like the solo solvers). A candidate that cannot be
// solved at all — invalid configuration, failed layout — does not abort
// the batch: its report stays nil and the call returns a *BatchError
// naming every such candidate alongside the solved reports.
func (p *Prepared) SolveBatch(ctx context.Context, cands []Candidate, opt BatchOptions) ([]*Report, error) {
	start := time.Now()
	col := obs.FromContext(ctx)
	ctx, span := obs.StartSpan(ctx, "solve.batch")
	defer span.End()
	errs := map[int]error{}
	for i := range cands {
		if err := cands[i].Config.Validate(); err != nil {
			errs[i] = fmt.Errorf("candidate %d (%s): %w", i, cands[i].Label, err)
		}
	}
	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	span.SetAttr("candidates", len(cands))
	span.SetAttr("workers", workers)
	mBatchCands.Add(int64(len(cands)))
	if opt.Plan != nil {
		if err := opt.Plan.Validate(); err != nil {
			return nil, err
		}
	}
	mode := p.batchMode(opt.Plan)

	// Snapshot the baseline layout; candidate layouts mutate global array
	// bases, so the whole batch runs under this restore guard.
	snap := p.snapshotBases()
	defer func() {
		snap.restore()
		p.warmAddresses()
	}()

	m := budget.NewMeter(ctx, opt.Budget)
	reports := make([]*Report, len(cands))
	// Layout groups over the solvable candidates, in first-appearance
	// order.
	var order []string
	members := map[string][]int{}
	for i := range cands {
		if errs[i] != nil {
			continue
		}
		key := layoutKey(cands[i].Layout)
		if _, ok := members[key]; !ok {
			order = append(order, key)
		}
		members[key] = append(members[key], i)
	}
	for _, key := range order {
		idxs := members[key]
		if err := p.applyLayout(cands[idxs[0]].Layout, snap); err != nil {
			// A failed layout sinks only its group's candidates.
			for _, ci := range idxs {
				errs[ci] = fmt.Errorf("candidate %d (%s): %w", ci, cands[ci].Label, err)
			}
			continue
		}
		if err := p.solveLayoutGroup(ctx, m, col, cands, idxs, key, mode, opt, workers, reports, errs); err != nil {
			// Cancellation / hard budget failure: abort the whole batch.
			stampBatch(reports, start)
			return reports, err
		}
	}
	stampBatch(reports, start)
	if len(errs) > 0 {
		return reports, &BatchError{Errs: errs}
	}
	return reports, nil
}

// stampBatch stamps the shared elapsed time on every solved report.
func stampBatch(reports []*Report, start time.Time) {
	for _, rep := range reports {
		if rep != nil {
			rep.Elapsed = time.Since(start)
		}
	}
}

// baseSnapshot remembers every array base so candidate layouts can be
// rolled back. Alias targets outside np.Arrays are included: layout
// resolves alias chains to concrete bases, and those concrete arrays may
// only be reachable through the chain.
type baseSnapshot struct {
	arrays []*ir.Array
	bases  []int64
}

func (p *Prepared) snapshotBases() *baseSnapshot {
	seen := map[*ir.Array]bool{}
	var arrays []*ir.Array
	add := func(a *ir.Array) {
		if !seen[a] {
			seen[a] = true
			arrays = append(arrays, a)
		}
	}
	for _, a := range p.np.Arrays {
		add(a)
		for t := a.Alias; t != nil; t = t.Alias {
			add(t)
		}
	}
	s := &baseSnapshot{arrays: arrays, bases: make([]int64, len(arrays))}
	for i, a := range arrays {
		s.bases[i] = a.Base
	}
	return s
}

func (s *baseSnapshot) restore() {
	for i, a := range s.arrays {
		a.Base = s.bases[i]
	}
}

// warmAddresses sequentially rebuilds every reference's cached linearised
// address for the bases currently in effect, so parallel workers (and
// later callers) only ever read the cache.
func (p *Prepared) warmAddresses() {
	idx := make([]int64, p.np.Depth)
	for _, r := range p.np.Refs {
		r.AddressAt(idx)
	}
}

// applyLayout applies a candidate layout (nil = the Prepared baseline) and
// re-warms addresses.
func (p *Prepared) applyLayout(lo *layout.Options, snap *baseSnapshot) error {
	if lo == nil {
		snap.restore()
	} else if err := layout.AssignProgram(p.np, *lo); err != nil {
		return err
	}
	p.warmAddresses()
	return nil
}

// layoutKey derives a grouping key for a layout candidate: equal options
// produce equal assignments, so equal keys may share one application.
func layoutKey(lo *layout.Options) string {
	if lo == nil {
		return "baseline"
	}
	names := make([]string, 0, len(lo.PadOf))
	for n := range lo.PadOf {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	fmt.Fprintf(&b, "s%d:a%d:p%d:z%d", lo.Start, lo.Align, lo.InterPad, lo.AssumedSizeElems)
	for _, n := range names {
		fmt.Fprintf(&b, ":%s=%d", n, lo.PadOf[n])
	}
	return b.String()
}

// candKey identifies duplicate candidates within one layout group.
func candKey(cfg cache.Config) string {
	return fmt.Sprintf("%d/%d/%d", cfg.SizeBytes, cfg.LineBytes, cfg.Assoc)
}

// solveLayoutGroup solves the candidates of one layout group (bases
// already applied and warmed) and fills their reports. Per-candidate
// construction failures land in errs; the returned error is reserved for
// whole-batch aborts (cancellation, NoFallback budget exhaustion).
func (p *Prepared) solveLayoutGroup(ctx context.Context, m *budget.Meter, col *obs.Collector, cands []Candidate, idxs []int, layoutID string, mode solveMode, opt BatchOptions, workers int, reports []*Report, errs map[int]error) error {
	// Deduplicate identical (geometry, mode) candidates inside the group.
	firstOf := map[string]int{}
	var solve []int // candidate indices that actually solve
	dupOf := map[int]int{}
	for _, ci := range idxs {
		k := candKey(cands[ci].Config)
		if fi, ok := firstOf[k]; ok {
			dupOf[ci] = fi
		} else {
			firstOf[k] = ci
			solve = append(solve, ci)
		}
	}
	mBatchDedup.Add(int64(len(dupOf)))

	states := make([]*batchCand, 0, len(solve))
	for _, ci := range solve {
		a, err := p.Analyzer(cands[ci].Config)
		if err != nil {
			errs[ci] = fmt.Errorf("candidate %d (%s): %w", ci, cands[ci].Label, err)
			continue
		}
		cs := &batchCand{ci: ci, label: cands[ci].Label, a: a,
			rep:  &Report{Config: cands[ci].Config, Sampled: mode.sampled},
			keys: make([]string, len(p.np.Refs)),
			need: make([]bool, len(p.np.Refs)),
		}
		cs.rep.Refs = make([]*RefReport, len(p.np.Refs))
		for ri, r := range p.np.Refs {
			cs.rep.Refs[ri] = &RefReport{Ref: r, Volume: p.spaces[r.Stmt].Volume()}
			cs.need[ri] = true
			if opt.Cache != nil {
				cs.keys[ri] = refKey(p.Digest(), r, p.np, cands[ci].Config, mode)
				if v, ok := opt.Cache.get(cs.keys[ri]); ok {
					v.fill(cs.rep.Refs[ri])
					cs.need[ri] = false
				}
			}
		}
		states = append(states, cs)
		reports[ci] = cs.rep
	}

	var serr error
	if mode.sampled {
		serr = p.solveSampled(ctx, m, col, states, *opt.Plan, workers)
	} else {
		// Geometry-parametric tier (geom.go): plan columns first — it
		// clears the need masks of members it will answer in closed form,
		// so the fused pass below only solves the anchors and the
		// unstable members — then fill (or refuse and re-solve) after.
		// Only exact batches without a fault hook are eligible: plain
		// deadline/point/scan budgets are fine (an interrupted anchor fails
		// the fit's census check and falls through per reference, and a
		// closed-form fill costs the meter nothing), but injected faults
		// must see the enumerating solver to keep fault-parity tests
		// meaningful.
		var gp *geomPlan
		if !opt.NoGeom && opt.Budget.Hook == nil && !p.opt.NoSymbolic && p.dyn == nil {
			gopt := GeomOptions{}
			if opt.Geom != nil {
				gopt = *opt.Geom
			}
			gp = p.planGeom(states, gopt)
		}
		serr = p.solveExactFused(ctx, m, col, states, workers)
		if gp != nil {
			serr = p.finishGeom(ctx, m, col, workers, gp, serr)
		}
	}
	// Publish solved results to the cache BEFORE any degradation:
	// complete refs only, still at the requested tier, so neither a
	// cancelled run nor a degraded one can poison the store (a degraded
	// ref is re-completed at a cheaper tier under the same key).
	if opt.Cache != nil {
		for _, cs := range states {
			for ri := range p.np.Refs {
				if cs.need[ri] && cs.rep.Refs[ri].Complete {
					opt.Cache.put(cs.keys[ri], snapRef(cs.rep.Refs[ri]))
				}
			}
		}
	}
	// Degradation ladder for whatever the budget cut short, mirroring the
	// solo solvers per candidate.
	fallback := sampling.DefaultFallback
	if mode.sampled {
		fallback = mode.plan
	}
	derr := p.degradeBatch(m, states, fallback)
	if derr == nil && serr != nil {
		// Cancellation observed by the solver pool on an unlimited meter.
		derr = serr
	}
	for _, cs := range states {
		cs.rep.Tier = TierExact
		for _, rr := range cs.rep.Refs {
			if rr.Tier > cs.rep.Tier {
				cs.rep.Tier = rr.Tier
			}
			if rr.Sampled {
				cs.rep.Sampled = true
			}
		}
	}
	for dup, src := range dupOf {
		if reports[src] == nil {
			errs[dup] = errs[src]
			continue
		}
		reports[dup] = copyReport(reports[src], cands[dup].Config)
	}
	return derr
}

// degradeBatch walks the degradation ladder for every candidate with
// budget-interrupted references, exactly as Analyzer.degrade does for a
// solo run: one shared Grace re-arms the meter, incomplete exact-tier
// refs are resampled under the fallback plan, and whatever still cannot
// finish drops to the closed-form probabilistic baseline. Cancellation
// and NoFallback budgets abort instead of degrading.
func (p *Prepared) degradeBatch(m *budget.Meter, states []*batchCand, fallback sampling.Plan) error {
	err := m.Err()
	stamp := func() {
		for _, cs := range states {
			cs.rep.BudgetSpent = m.Spent()
		}
	}
	if err == nil {
		stamp()
		return nil
	}
	// As in the solo ladder: cancellation, isolated panics and injected
	// transient faults abort typed instead of degrading — their partial
	// counts carry no guarantee worth papering over.
	if errors.Is(err, cerr.ErrCanceled) || errors.Is(err, cerr.ErrPanic) ||
		errors.Is(err, cerr.ErrTransient) || m.NoFallback() {
		stamp()
		return err
	}
	incomplete := func(cs *batchCand) bool {
		for _, rr := range cs.rep.Refs {
			if !rr.Complete {
				return true
			}
		}
		return false
	}
	firstIncompleteTier := TierProbabilistic
	for _, cs := range states {
		for _, rr := range cs.rep.Refs {
			if !rr.Complete && rr.Tier < firstIncompleteTier {
				firstIncompleteTier = rr.Tier
			}
		}
	}
	if firstIncompleteTier == TierExact {
		m.Grace()
		for _, cs := range states {
			if !incomplete(cs) {
				continue
			}
			serr := cs.a.resampleIncomplete(m, cs.rep, fallback)
			cs.rep.Degraded = true
			if serr != nil && errors.Is(serr, cerr.ErrCanceled) {
				stamp()
				return serr
			}
		}
	}
	for _, cs := range states {
		if incomplete(cs) {
			cs.a.probIncomplete(cs.rep)
			cs.rep.Degraded = true
		}
	}
	stamp()
	return nil
}

// copyReport deep-copies a report for a duplicate candidate.
func copyReport(src *Report, cfg cache.Config) *Report {
	out := &Report{Config: cfg, Sampled: src.Sampled, Tier: src.Tier, Elapsed: src.Elapsed,
		Degraded: src.Degraded, BudgetSpent: src.BudgetSpent}
	if src.Geom != nil {
		g := *src.Geom
		out.Geom = &g
	}
	out.Refs = make([]*RefReport, len(src.Refs))
	for i, rr := range src.Refs {
		cp := *rr
		out.Refs[i] = &cp
	}
	return out
}

// batchCand is the solve state of one non-duplicate candidate within a
// layout group: its analyzer, its report under construction, its result
// cache keys, and the per-reference need mask (false where the result
// cache already supplied the answer).
type batchCand struct {
	ci    int
	label string
	a     *Analyzer
	rep   *Report
	keys  []string
	need  []bool
}

// solveSampled runs the sampled solver for every needed (candidate,
// reference) pair as one pool of items. Bit-identity with per-candidate
// EstimateMisses comes for free: the sampling RNG is seeded per
// reference, independently of the geometry, and each item replays exactly
// the solo code path (including the Adaptive stopping rule when the
// Prepared Options enable it).
func (p *Prepared) solveSampled(ctx context.Context, m *budget.Meter, col *obs.Collector, states []*batchCand, plan sampling.Plan, workers int) error {
	type item struct {
		cs *batchCand
		ri int
	}
	var items []item
	var planned int64
	for _, cs := range states {
		for ri, r := range p.np.Refs {
			if cs.need[ri] {
				items = append(items, item{cs, ri})
				planned += plannedFor(plan, p.spaces[r.Stmt].Volume())
			}
		}
	}
	queue := make(chan item, len(items))
	for _, it := range items {
		queue <- it
	}
	close(queue)
	limited := !m.Unlimited()
	var wg sync.WaitGroup
	var canceled bool
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer guardWorker(m)
			walker := trace.NewWalker(p.np)
			var pb *budget.Probe
			if limited {
				pb = m.Probe()
				defer pb.Drain()
			}
			for it := range queue {
				if ctx.Err() != nil {
					mu.Lock()
					canceled = true
					mu.Unlock()
					return
				}
				if m.Err() != nil {
					return // another worker tripped the meter
				}
				a := it.cs.a
				c := a.newClassifierW(walker)
				work := a.sampleWorker(plan)
				r := p.np.Refs[it.ri]
				rr := it.cs.rep.Refs[it.ri]
				if a.opt.ProfileLabels {
					pprof.Do(context.Background(),
						pprof.Labels("candidate", it.cs.label, "ref", r.ID, "tile", "full"),
						func(context.Context) { work(c, r, rr, pb) })
				} else {
					work(c, r, rr, pb)
				}
				c.release()
				col.AddProgress("solve.batch", rr.Analyzed, planned, it.cs.label+"/"+r.ID)
			}
		}()
	}
	wg.Wait()
	if canceled {
		return cerr.ErrCanceled
	}
	return nil
}

// fuseGroup is the unit of fused exact solving: the candidates of one
// layout group that share a line size. Within the group, an access's
// memory line, its cold equations and hence its deciding reuse vector are
// identical for every candidate, so one interval walk decides them all.
type fuseGroup struct {
	lineBytes int64
	vecs      map[*ir.NRef][]*reuse.Vector
	memo      map[*reuse.Vector]memoInfo
	sym       map[*ir.NRef]*refSym
	cands     []*batchCand
	// active[ri] lists the candidate positions (into cands) that still
	// need reference ri (result-cache misses).
	active [][]int
}

// solveExactFused is the fused exact solver of SolveBatch: candidates are
// bucketed by line size, each bucket's (reference, tile) items are solved
// for all bucket candidates in one pass, and all buckets share one pool.
// When non-uniform (dynamic) reuse is enabled the fused walk would also
// have to fuse classifyDynamic, so each candidate degenerates to its own
// bucket and the plain per-candidate classifier runs instead — still on
// the shared pool and shared Prepared state.
func (p *Prepared) solveExactFused(ctx context.Context, m *budget.Meter, col *obs.Collector, states []*batchCand, workers int) error {
	// Bucket candidates by line size (or singleton buckets under dynamic
	// reuse, where the fused classifier does not apply).
	groups := map[int64]*fuseGroup{}
	var order []*fuseGroup
	for _, cs := range states {
		lb := cs.a.cfg.LineBytes
		if p.opt.Reuse.NonUniform {
			lb = -1 // sentinel: never share
		}
		g := groups[lb]
		if g == nil || lb == -1 {
			ls := p.lineState(cs.a.cfg.LineBytes)
			g = &fuseGroup{lineBytes: cs.a.cfg.LineBytes, vecs: ls.vecs, memo: ls.memo, sym: ls.sym}
			if lb != -1 {
				groups[lb] = g
			}
			order = append(order, g)
		}
		g.cands = append(g.cands, cs)
	}
	for _, g := range order {
		g.active = make([][]int, len(p.np.Refs))
		for ri := range p.np.Refs {
			for pos, cs := range g.cands {
				if cs.need[ri] {
					g.active[ri] = append(g.active[ri], pos)
				}
			}
		}
	}

	// Work items: (group, ref, tile), tiled proportionally to volume as in
	// findTiled so one dominant nest spreads across the pool.
	type tileItem struct {
		g    *fuseGroup
		ri   int
		tile poly.Tile
		// parts[k] holds the partial counts of g.active[ri][k]'s candidate.
		parts []RefReport
		done  bool
	}
	var totVol int64
	for _, r := range p.np.Refs {
		totVol += p.spaces[r.Stmt].Volume()
	}
	target := int64(tileFactor * workers)
	var items []*tileItem
	for _, g := range order {
		for ri, r := range p.np.Refs {
			if len(g.active[ri]) == 0 {
				continue
			}
			vol := p.spaces[r.Stmt].Volume()
			n := 1
			if totVol > 0 {
				n = int((vol*target + totVol - 1) / totVol)
				if n < 1 {
					n = 1
				}
			}
			// As in findTiled, tile choice derives from the symbolic info
			// regardless of NoSymbolic so both modes tile identically.
			avoid := -1
			if sym := g.sym[r]; sym != nil {
				avoid = sym.avoid
			}
			for _, t := range p.spaces[r.Stmt].TilesAvoiding(n, avoid) {
				items = append(items, &tileItem{g: g, ri: ri, tile: t,
					parts: make([]RefReport, len(g.active[ri]))})
			}
		}
	}
	// Progress denominator: every (active candidate, ref) pair classifies
	// the ref's full volume.
	var progTotal int64
	for _, g := range order {
		for ri, r := range p.np.Refs {
			progTotal += int64(len(g.active[ri])) * p.spaces[r.Stmt].Volume()
		}
	}
	queue := make(chan *tileItem, len(items))
	for _, it := range items {
		queue <- it
	}
	close(queue)

	limited := !m.Unlimited()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var canceled bool
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer guardWorker(m)
			walker := trace.NewWalker(p.np)
			fcs := map[*fuseGroup]*fusedClassifier{}
			defer func() {
				for _, fc := range fcs {
					fc.release()
				}
			}()
			var pb *budget.Probe
			if limited {
				pb = m.Probe()
				defer pb.Drain()
			}
			for it := range queue {
				mu.Lock()
				stop := canceled
				mu.Unlock()
				if stop || m.Err() != nil {
					return
				}
				fc := fcs[it.g]
				if fc == nil {
					fc = newFusedClassifier(it.g, walker, p)
					fcs[it.g] = fc
				}
				var rerr error
				run := func() { rerr = fc.runTile(ctx, it.ri, it.tile, it.g.active[it.ri], it.parts, pb) }
				if p.opt.ProfileLabels {
					pprof.Do(context.Background(),
						pprof.Labels("candidate", it.g.candLabel(it.ri), "ref", p.np.Refs[it.ri].ID, "tile", tileLabel(it.tile)),
						func(context.Context) { run() })
				} else {
					run()
				}
				if rerr != nil {
					return // meter tripped; the merge leaves this ref incomplete
				}
				if ctx.Err() != nil {
					mu.Lock()
					canceled = true
					mu.Unlock()
					return
				}
				it.done = true
				var delta int64
				for k := range it.parts {
					delta += it.parts[k].Analyzed
				}
				col.AddProgress("solve.batch", delta, progTotal, p.np.Refs[it.ri].ID)
			}
		}()
	}
	wg.Wait()

	// Deterministic merge in item order, exactly as findTiled.
	complete := map[*fuseGroup][]bool{}
	for _, g := range order {
		cc := make([]bool, len(p.np.Refs))
		for i := range cc {
			cc[i] = true
		}
		complete[g] = cc
	}
	for _, it := range items {
		for k, pos := range it.g.active[it.ri] {
			rr := it.g.cands[pos].rep.Refs[it.ri]
			rr.Analyzed += it.parts[k].Analyzed
			rr.Hits += it.parts[k].Hits
			rr.Cold += it.parts[k].Cold
			rr.Repl += it.parts[k].Repl
		}
		if !it.done {
			complete[it.g][it.ri] = false
		}
	}
	for _, g := range order {
		for ri := range p.np.Refs {
			for _, pos := range g.active[ri] {
				rr := g.cands[pos].rep.Refs[ri]
				rr.Tier = TierExact
				rr.Complete = complete[g][ri]
			}
		}
	}
	if canceled {
		return cerr.ErrCanceled
	}
	return nil
}

// candLabel renders the fused candidates active for a reference as one
// profile label value.
func (g *fuseGroup) candLabel(ri int) string {
	names := make([]string, len(g.active[ri]))
	for k, pos := range g.active[ri] {
		names[k] = g.cands[pos].label
	}
	return strings.Join(names, "+")
}
