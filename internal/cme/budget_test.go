package cme

import (
	"context"
	"errors"
	"testing"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cerr"
	"cachemodel/internal/faultinject"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
)

// prepKernel inlines, normalises and lays out a whole-program kernel.
func prepKernel(t testing.TB, p *ir.Program, cfg cache.Config, opt Options) (*ir.NProgram, *Analyzer) {
	t.Helper()
	flat, _, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		t.Fatalf("inline: %v", err)
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatalf("layout: %v", err)
	}
	a, err := New(np, cfg, opt)
	if err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	return np, a
}

// refCounts extracts the per-ref classification counts, in report order,
// for bit-identity comparisons across analyzers (ref pointers differ
// between separately prepared analyzers, report order does not).
func refCounts(rep *Report) [][4]int64 {
	out := make([][4]int64, len(rep.Refs))
	for i := range rep.Refs {
		rr := rep.Refs[i]
		out[i] = [4]int64{rr.Hits, rr.Cold, rr.Repl, rr.Analyzed}
	}
	return out
}

// checkCoherent asserts the partial-result invariants every report must
// satisfy, interrupted or not.
func checkCoherent(t *testing.T, rep *Report) {
	t.Helper()
	if rep == nil {
		t.Fatal("nil report")
	}
	for i := range rep.Refs {
		rr := rep.Refs[i]
		if rr.Hits+rr.Cold+rr.Repl != rr.Analyzed {
			t.Errorf("ref %s: hits %d + cold %d + repl %d != analyzed %d",
				rr.Ref, rr.Hits, rr.Cold, rr.Repl, rr.Analyzed)
		}
		if rr.Analyzed > rr.Volume {
			t.Errorf("ref %s: analyzed %d > volume %d", rr.Ref, rr.Analyzed, rr.Volume)
		}
		if rr.Complete && rr.Tier == TierExact && rr.Analyzed != rr.Volume {
			t.Errorf("ref %s: complete exact but analyzed %d != volume %d", rr.Ref, rr.Analyzed, rr.Volume)
		}
	}
	if c := rep.Coverage(); c < 0 || c > 1 {
		t.Errorf("coverage %f outside [0,1]", c)
	}
	if mr := rep.MissRatio(); mr < 0 || mr > 100 {
		t.Errorf("miss ratio %f outside [0,100]", mr)
	}
}

// TestNoBudgetBitIdentical: the unlimited context path must produce exactly
// the result of the legacy entry point — the checkpoint machinery is
// compiled out of the hot loop when no budget is armed.
func TestNoBudgetBitIdentical(t *testing.T) {
	cfg := cache.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2}
	_, legacy := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{})
	_, ctxed := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{})
	want := legacy.FindMisses()
	got, err := ctxed.FindMissesCtx(context.Background(), budget.Budget{})
	if err != nil {
		t.Fatalf("FindMissesCtx with zero budget: %v", err)
	}
	if got.Degraded || got.Tier != TierExact {
		t.Fatalf("zero budget degraded=%v tier=%v, want exact", got.Degraded, got.Tier)
	}
	if want.ExactMisses() != got.ExactMisses() {
		t.Fatalf("misses differ: legacy %d vs ctx %d", want.ExactMisses(), got.ExactMisses())
	}
	wc, gc := refCounts(want), refCounts(got)
	if len(wc) != len(gc) {
		t.Fatalf("ref count differs: legacy %d vs ctx %d", len(wc), len(gc))
	}
	for i, w := range wc {
		if gc[i] != w {
			t.Fatalf("ref %s counts differ: legacy %v vs ctx %v", want.Refs[i].Ref, w, gc[i])
		}
	}
}

// TestCancellationMidFindMisses: cancelling at an injected checkpoint must
// surface ErrCanceled (never degrade), leave a coherent partial report, and
// leave the analyzer reusable — a later uninterrupted run yields the
// original exact result bit for bit.
func TestCancellationMidFindMisses(t *testing.T) {
	cfg := cache.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2}
	_, a := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{Workers: 1})
	inj := faultinject.CancelAt(40)
	rep, err := a.FindMissesCtx(context.Background(), budget.Budget{Hook: inj.Hook()})
	if !errors.Is(err, cerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !inj.Fired() {
		t.Fatal("injector never fired")
	}
	checkCoherent(t, rep)
	if rep.Degraded {
		t.Fatal("cancellation must not degrade")
	}
	var incomplete int
	for i := range rep.Refs {
		if !rep.Refs[i].Complete {
			incomplete++
		}
	}
	if incomplete == 0 {
		t.Fatal("cancellation at checkpoint 40 left no incomplete refs — fault landed too late")
	}
	// The analyzer is reusable: an uninterrupted rerun matches a fresh one.
	_, fresh := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{Workers: 1})
	want, got := fresh.FindMisses(), a.FindMisses()
	if want.ExactMisses() != got.ExactMisses() {
		t.Fatalf("post-cancel rerun differs: fresh %d vs reused %d", want.ExactMisses(), got.ExactMisses())
	}
	wc, gc := refCounts(want), refCounts(got)
	if len(wc) != len(gc) {
		t.Fatalf("ref count differs: fresh %d vs reused %d", len(wc), len(gc))
	}
	for i, w := range wc {
		if gc[i] != w {
			t.Fatalf("post-cancel ref %s counts differ: %v vs %v", want.Refs[i].Ref, w, gc[i])
		}
	}
}

// TestRealContextCancellation: an already-cancelled context stops the run
// almost immediately with ErrCanceled.
func TestRealContextCancellation(t *testing.T) {
	cfg := cache.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2}
	_, a := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := a.FindMissesCtx(ctx, budget.Budget{})
	if !errors.Is(err, cerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	checkCoherent(t, rep)
}

// TestTightDeadlineReturnsFast: the acceptance bound — a 1 ms deadline on
// MMT must return within 50 ms, either degraded or with ErrBudgetExceeded.
func TestTightDeadlineReturnsFast(t *testing.T) {
	cfg := cache.Default32K(2)
	_, a := prepKernel(t, kernels.MMT(48, 12, 12), cfg, Options{})
	start := time.Now()
	rep, err := a.FindMissesCtx(context.Background(), budget.Budget{Deadline: time.Millisecond})
	wall := time.Since(start)
	if wall > 50*time.Millisecond {
		t.Fatalf("1ms-deadline run took %s, want < 50ms", wall)
	}
	if err != nil && !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want nil (degraded) or ErrBudgetExceeded", err)
	}
	if err == nil && !rep.Degraded {
		t.Fatal("1ms deadline neither errored nor degraded")
	}
	checkCoherent(t, rep)
	if rep.BudgetSpent.Checkpoints == 0 {
		t.Fatal("budgeted run must attach BudgetSpent provenance")
	}
}

// TestNoFallbackFailsWithPartial: NoFallback surfaces exhaustion as an
// error carrying the partial exact result instead of degrading.
func TestNoFallbackFailsWithPartial(t *testing.T) {
	cfg := cache.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2}
	_, a := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{Workers: 1})
	b := budget.Budget{MaxPoints: 200, NoFallback: true}
	rep, err := a.FindMissesCtx(context.Background(), b)
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	checkCoherent(t, rep)
	if rep.Degraded {
		t.Fatal("NoFallback run must not degrade")
	}
	if rep.Tier != TierExact {
		t.Fatalf("NoFallback partial tier = %v, want exact", rep.Tier)
	}
}

// TestDegradationAtAnyCheckpoint: injected exhaustion at a spread of
// checkpoint indices always yields a complete, degraded report.
func TestDegradationAtAnyCheckpoint(t *testing.T) {
	cfg := cache.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2}
	for _, n := range []int64{1, 3, 17, 100, 500} {
		_, a := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{Workers: 1})
		inj := faultinject.ExhaustAt(n)
		rep, err := a.FindMissesCtx(context.Background(), budget.Budget{Hook: inj.Hook()})
		if err != nil {
			t.Fatalf("checkpoint %d: err = %v, want graceful degradation", n, err)
		}
		if !inj.Fired() {
			t.Fatalf("checkpoint %d: injector never fired (run finished in fewer checkpoints)", n)
		}
		if !rep.Degraded || rep.Tier == TierExact {
			t.Fatalf("checkpoint %d: degraded=%v tier=%v, want degraded non-exact", n, rep.Degraded, rep.Tier)
		}
		checkCoherent(t, rep)
		for i := range rep.Refs {
			if !rep.Refs[i].Complete {
				t.Fatalf("checkpoint %d: ref %s incomplete after degradation", n, rep.Refs[i].Ref)
			}
		}
	}
}

// TestLadderReachesProbabilistic: a budget too small even for the sampled
// grace allowance pushes the run down to the probabilistic tier, which
// always completes.
func TestLadderReachesProbabilistic(t *testing.T) {
	cfg := cache.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2}
	_, a := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{Workers: 1})
	rep, err := a.FindMissesCtx(context.Background(), budget.Budget{MaxPoints: 1})
	if err != nil {
		t.Fatalf("err = %v, want graceful degradation", err)
	}
	if !rep.Degraded {
		t.Fatal("1-point budget did not degrade")
	}
	checkCoherent(t, rep)
	var probabilistic int
	for i := range rep.Refs {
		if !rep.Refs[i].Complete {
			t.Fatalf("ref %s incomplete after full ladder", rep.Refs[i].Ref)
		}
		if rep.Refs[i].Tier == TierProbabilistic {
			probabilistic++
		}
	}
	if probabilistic == 0 {
		t.Fatalf("no ref reached the probabilistic tier (report tier %v)", rep.Tier)
	}
	if rep.BudgetSpent.Graces == 0 {
		t.Fatalf("BudgetSpent = %+v, want at least one grace re-arm recorded", rep.BudgetSpent)
	}
}

// BenchmarkBudgetOverhead compares the unbudgeted FindMisses hot loop
// against the same loop carrying an armed (but never-tripping) meter. The
// per-point checkpoint cost must stay under ~2%.
func BenchmarkBudgetOverhead(b *testing.B) {
	cfg := cache.Default32K(2)
	huge := budget.Budget{MaxPoints: 1 << 60, MaxScan: 1 << 60}
	b.Run("unbudgeted", func(b *testing.B) {
		_, a := prepKernel(b, kernels.Hydro(64, 64), cfg, Options{Workers: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			a.FindMisses()
		}
	})
	b.Run("budgeted", func(b *testing.B) {
		_, a := prepKernel(b, kernels.Hydro(64, 64), cfg, Options{Workers: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := a.FindMissesCtx(context.Background(), huge); err != nil {
				b.Fatal(err)
			}
		}
	})
}
