package cme

import (
	"context"
	"fmt"
	"sort"

	"cachemodel/internal/budget"
	"cachemodel/internal/ir"
	"cachemodel/internal/linalg"
	"cachemodel/internal/obs"
	"cachemodel/internal/qpoly"
)

// Geometry-parametric sweeps: closed-form miss counts in the number of
// sets.
//
// The replacement equations see the cache geometry through exactly two
// quantities: the line size (which shapes reuse vectors and cold
// equations) and the set-mapping residue line mod NumSets. Within a sweep
// column — candidates of one layout group sharing LineBytes and Assoc,
// differing only in capacity — only NumSets varies, so the per-reference
// miss counts are functions of S = NumSets alone. This tier answers most
// of a column from a handful of anchor solves:
//
//   - Pure-cold rung: a reference with no feasible reuse producer
//     (refSym.allCold, a line-size-only property) is all cold misses at
//     every S. Zero anchor solves.
//
//   - Stable-region certificate: two distinct memory lines can contend
//     for a set only if S divides their difference, i.e. only if they lie
//     at least S lines apart. Once S exceeds the program's footprint span
//     in lines (footprintSpanLines), no two distinct touched lines ever
//     share a set: every replacement walk ends the same way and scans the
//     same logical interval — the whole interval under PaperLRU, the
//     suffix back to the reused line under exact LRU — at every such S.
//     All counts are therefore provably constant over S > span, and the
//     fit below runs only inside this certified region, so its claims are
//     sound rather than merely spot-checked.
//
//   - Per-residue fit rung: within the stable region the anchor counts of
//     each residue class S mod Period are fitted to a degree-Degree
//     polynomial (qpoly.FitPoly over exact rationals), the remaining
//     anchors are held out and must reproduce exactly, and every
//     evaluation must pass the count identities (integral, non-negative,
//     hits+cold+repl == volume). Any failure refuses the (member, ref)
//     pair, which falls through to the fused enumerating solver — a
//     refusal costs extra work, never a wrong count.
//
// Members at or below the span (where counts genuinely vary with S in a
// way no low-degree polynomial captures) are never claimed: they solve
// through the ordinary fused path, with provenance saying why. The tier
// runs only for exact batches. Plain deadline/point/scan budgets keep it
// eligible — an anchor the budget cuts short fails the fit's census
// check, so its column falls through per reference to the ordinary
// degradation ladder, and closed-form fills cost the meter nothing —
// but fault-hooked budgets and NoSymbolic disable it (both force
// enumeration for fault-parity and equivalence testing).

// GeomOptions tunes the geometry-parametric tier of SolveBatch. The zero
// value picks everything automatically.
type GeomOptions struct {
	// Period is the residue period in NumSets (default 1: inside the
	// stable region counts are constant, so one class suffices).
	Period int64
	// Degree is the fitted polynomial degree per residue class (default 0).
	Degree int
	// Verify is the number of holdout anchor solves per residue class that
	// the fit must reproduce exactly (default 2).
	Verify int
	// MinColumn is the smallest column (same line size and associativity,
	// distinct set counts) worth planning (default DefaultGeomMinColumn:
	// below that the anchors cover everything and closed-form evaluation
	// gains nothing).
	MinColumn int
}

// DefaultGeomMinColumn is the default GeomOptions.MinColumn: the smallest
// sweep column the geometry-parametric tier will claim. Work partitioners
// (internal/dist) use it to decide when keeping a column together in one
// solve is worth the coarser stealing granularity.
const DefaultGeomMinColumn = 4

func (o GeomOptions) withDefaults() GeomOptions {
	if o.Period <= 0 {
		o.Period = 1
	}
	if o.Degree < 0 {
		o.Degree = 0
	}
	if o.Verify <= 0 {
		o.Verify = 2
	}
	if o.MinColumn <= 0 {
		o.MinColumn = DefaultGeomMinColumn
	}
	return o
}

// anchorsPerClass is how many stable members of one residue class the
// fused path must solve before the rest of the class can be claimed.
func (o GeomOptions) anchorsPerClass() int { return o.Degree + 1 + o.Verify }

// GeomInfo is the geometry-parametric tier's provenance for one sweep
// candidate, mirroring ScalingInfo for the problem-size axis.
type GeomInfo struct {
	// NumSets is this candidate's set count, the tier's free parameter.
	NumSets int64 `json:"num_sets"`
	// SpanLines is the program footprint span bound in lines under the
	// candidate's layout and line size (-1: no finite bound); Stable
	// reports NumSets > SpanLines, the no-interference certificate.
	SpanLines int64 `json:"span_lines"`
	Stable    bool  `json:"stable"`
	// Anchor marks a member the fused solver solved to feed the fits.
	Anchor bool `json:"anchor,omitempty"`
	// ClosedRefs counts references answered by O(1) evaluation (including
	// PureColdRefs, the rung that needs no anchors at all);
	// FallthroughRefs counts references the tier claimed but refused, so
	// they re-solved through the fused enumerating path.
	ClosedRefs      int `json:"closed_refs"`
	PureColdRefs    int `json:"pure_cold_refs,omitempty"`
	FallthroughRefs int `json:"fallthrough_refs,omitempty"`
	TotalRefs       int `json:"total_refs"`
	// Period and Degree describe the fitted shape.
	Period int64 `json:"period"`
	Degree int   `json:"degree"`
	// Why says why the fit rung did not cover this member (anchors and
	// unstable members; empty for members answered in closed form).
	Why string `json:"why,omitempty"`
}

// Closed reports that every reference of the candidate came from the
// closed form.
func (g *GeomInfo) Closed() bool {
	return g != nil && !g.Anchor && g.TotalRefs > 0 && g.ClosedRefs == g.TotalRefs
}

// geomColumn is one planned column: the candidates of a layout group that
// share line size and associativity, ordered by ascending set count.
type geomColumn struct {
	lineBytes int64
	assoc     int
	span      int64 // footprint span bound in lines (-1: none computable)

	anchors  []*batchCand // stable members the fused pass solves
	deferred []*batchCand // stable members answered in closed form
	other    []*batchCand // unstable members: ordinary fused path

	// cleared[cs][ri] marks the refs this plan removed from cs.need so the
	// fused pass skips them; exactly these are filled (or restored on
	// refusal) by finishGeom.
	cleared map[*batchCand][]bool

	// pureCold[ri] marks references the pure-cold rung answers for every
	// member; fit[ri] marks references the fit rung must answer for the
	// deferred members.
	pureCold []bool
	fit      []bool
}

// geomPlan is the per-layout-group plan of the geometry-parametric tier.
type geomPlan struct {
	opt     GeomOptions
	columns []*geomColumn
}

// numSetsOf is the candidate's cache.Config.NumSets.
func numSetsOf(cs *batchCand) int64 {
	cfg := cs.a.cfg
	return cfg.SizeBytes / (cfg.LineBytes * int64(cfg.Assoc))
}

// planGeom partitions a layout group's candidates into geometry columns
// and decides, per column, which members anchor, which defer to closed
// form, and which references each rung covers. It clears the deferred
// (member, ref) pairs from the need masks so the fused pass skips them.
// nil means the tier has nothing to contribute to this group.
func (p *Prepared) planGeom(states []*batchCand, gopt GeomOptions) *geomPlan {
	gopt = gopt.withDefaults()
	type colKey struct {
		lineBytes int64
		assoc     int
	}
	cols := map[colKey][]*batchCand{}
	var order []colKey
	for _, cs := range states {
		k := colKey{cs.a.cfg.LineBytes, cs.a.cfg.Assoc}
		if _, ok := cols[k]; !ok {
			order = append(order, k)
		}
		cols[k] = append(cols[k], cs)
	}
	plan := &geomPlan{opt: gopt}
	for _, k := range order {
		members := cols[k]
		if len(members) < gopt.MinColumn {
			continue
		}
		sorted := append([]*batchCand(nil), members...)
		sort.Slice(sorted, func(i, j int) bool { return numSetsOf(sorted[i]) < numSetsOf(sorted[j]) })
		if col := p.planColumn(k.lineBytes, k.assoc, sorted, gopt); col != nil {
			plan.columns = append(plan.columns, col)
		}
	}
	if len(plan.columns) == 0 {
		return nil
	}
	return plan
}

// planColumn builds one column's plan (nil when nothing can be claimed).
// members arrive sorted by ascending set count, so anchors are the
// cheapest stable solves of each residue class.
func (p *Prepared) planColumn(lineBytes int64, assoc int, members []*batchCand, gopt GeomOptions) *geomColumn {
	col := &geomColumn{lineBytes: lineBytes, assoc: assoc,
		span:     p.footprintSpanLines(lineBytes),
		cleared:  map[*batchCand][]bool{},
		pureCold: make([]bool, len(p.np.Refs)),
		fit:      make([]bool, len(p.np.Refs)),
	}
	sym := p.lineState(lineBytes).sym
	anyPureCold := false
	for ri, r := range p.np.Refs {
		if s := sym[r]; s != nil && s.allCold && p.spaces[r.Stmt].Volume() > 0 {
			col.pureCold[ri] = true
			anyPureCold = true
		}
	}

	// Partition members: per residue class, the first anchorsPerClass
	// stable members anchor and the rest defer to closed form.
	need := gopt.anchorsPerClass()
	classCount := map[int64]int{}
	for _, cs := range members {
		s := numSetsOf(cs)
		switch {
		case col.span < 0 || s <= col.span:
			col.other = append(col.other, cs)
		case classCount[mod64(s, gopt.Period)] < need:
			classCount[mod64(s, gopt.Period)]++
			col.anchors = append(col.anchors, cs)
		default:
			col.deferred = append(col.deferred, cs)
		}
	}
	if len(col.deferred) == 0 && !anyPureCold {
		return nil
	}

	// Clear the rungs' (member, ref) pairs from the need masks. Pure-cold
	// references clear for every member (the rung is S-independent); fit
	// references clear only for deferred members.
	clear := func(cs *batchCand, ri int) {
		if !cs.need[ri] {
			return // the result cache already answered it
		}
		cs.need[ri] = false
		cl := col.cleared[cs]
		if cl == nil {
			cl = make([]bool, len(p.np.Refs))
			col.cleared[cs] = cl
		}
		cl[ri] = true
	}
	for ri := range p.np.Refs {
		if col.pureCold[ri] {
			for _, cs := range members {
				clear(cs, ri)
			}
			continue
		}
		for _, cs := range col.deferred {
			col.fit[ri] = true
			clear(cs, ri)
		}
	}
	if len(col.cleared) == 0 {
		return nil // everything was already cache-filled
	}
	mGeomAnchors.Add(int64(len(col.anchors)))
	return col
}

// footprintSpanLines bounds the program's footprint span in memory lines
// under the current layout: the difference between the largest and
// smallest line index any reference can touch. Every candidate with more
// sets than this span is interference-free (two distinct lines contend
// only when at least NumSets lines apart). Returns -1 when no finite
// bound exists.
func (p *Prepared) footprintSpanLines(lineBytes int64) int64 {
	minA, maxA := int64(0), int64(0)
	seen := false
	for _, r := range p.np.Refs {
		sp := p.spaces[r.Stmt]
		if sp.Volume() == 0 {
			continue // touches nothing
		}
		lo, hi, ok := sp.BoundingBox()
		if !ok {
			return -1
		}
		aff := r.AddressAffine()
		if aff.MaxDepthUsed() > len(lo) {
			return -1 // address uses a loop the space does not bound
		}
		a, b := affineRange(aff, lo, hi)
		if !seen || a < minA {
			minA = a
		}
		if !seen || b > maxA {
			maxA = b
		}
		seen = true
	}
	if !seen {
		return -1
	}
	return maxA/lineBytes - minA/lineBytes
}

// affineRange returns the minimum and maximum of an affine form over the
// box lo..hi (inclusive), the standard interval evaluation.
func affineRange(aff ir.Affine, lo, hi []int64) (int64, int64) {
	a, b := aff.Const, aff.Const
	for k := 1; k <= len(lo); k++ {
		c := aff.At(k)
		if c == 0 {
			continue
		}
		x, y := c*lo[k-1], c*hi[k-1]
		if x > y {
			x, y = y, x
		}
		a += x
		b += y
	}
	return a, b
}

// geomSample is one reference's anchor counts at one set count.
type geomSample struct {
	s                int64
	hits, cold, repl int64
}

// finishGeom completes the tier after the fused pass: it fills the
// pure-cold and fitted rungs' reports, restores and re-solves every
// refusal through the ordinary fused path, and stamps per-candidate
// provenance. serr is the fused pass's outcome; on a pool error
// (cancellation, panic) the deferred reports are left incomplete
// (coherent partial results), exactly like an interrupted enumeration.
// Budget exhaustion (m.Err with a clean pool) still fills: closed-form
// evaluation costs the meter nothing, and an anchor the budget cut
// short fails the fit's census check, so its column's deferred refs
// fall through per reference and rejoin the ordinary degradation
// ladder.
func (p *Prepared) finishGeom(ctx context.Context, m *budget.Meter, col *obs.Collector, workers int, gp *geomPlan, serr error) error {
	if serr != nil {
		return serr
	}
	var resolve []*batchCand
	resolveSeen := map[*batchCand]bool{}
	for _, gc := range gp.columns {
		refused := p.fillColumn(gc, gp.opt)
		for cs, refs := range refused {
			for ri, bad := range refs {
				if !bad {
					continue
				}
				cs.need[ri] = true
				if !resolveSeen[cs] {
					resolveSeen[cs] = true
					resolve = append(resolve, cs)
				}
			}
		}
	}
	if len(resolve) > 0 && m.Err() == nil {
		// Fall-through: the refused (member, ref) pairs run the ordinary
		// fused enumerating solver — need masks now select exactly them.
		sort.Slice(resolve, func(i, j int) bool { return resolve[i].ci < resolve[j].ci })
		return p.solveExactFused(ctx, m, col, resolve, workers)
	}
	return nil
}

// fillColumn evaluates one column's rungs and returns the refused
// (member → per-ref) masks (empty when everything claimed held).
func (p *Prepared) fillColumn(col *geomColumn, gopt GeomOptions) map[*batchCand][]bool {
	stats := map[*batchCand]*GeomInfo{}
	info := func(cs *batchCand) *GeomInfo {
		gi := stats[cs]
		if gi == nil {
			s := numSetsOf(cs)
			gi = &GeomInfo{NumSets: s, SpanLines: col.span,
				Stable: col.span >= 0 && s > col.span,
				Period: gopt.Period, Degree: gopt.Degree,
				TotalRefs: len(p.np.Refs)}
			stats[cs] = gi
			cs.rep.Geom = gi
		}
		return gi
	}
	refused := map[*batchCand][]bool{}
	refuse := func(cs *batchCand, ri int) {
		cl := col.cleared[cs]
		if cl == nil || !cl[ri] {
			return
		}
		m := refused[cs]
		if m == nil {
			m = make([]bool, len(p.np.Refs))
			refused[cs] = m
		}
		m[ri] = true
		info(cs).FallthroughRefs++
		mGeomFallbacks.Inc()
	}
	for _, cs := range col.anchors {
		info(cs).Anchor = true
		info(cs).Why = "anchor"
	}
	for _, cs := range col.other {
		if col.span < 0 {
			info(cs).Why = "no finite footprint bound"
		} else {
			info(cs).Why = fmt.Sprintf("unstable: %d sets <= span %d lines", numSetsOf(cs), col.span)
		}
	}

	// Pure-cold rung: all cold at every set count, no anchors consumed.
	// Members are visited in plan order so provenance builds
	// deterministically (the fills themselves are independent).
	fillPureCold := func(cs *batchCand) {
		cl := col.cleared[cs]
		if cl == nil {
			return
		}
		for ri := range p.np.Refs {
			if !col.pureCold[ri] || !cl[ri] {
				continue
			}
			rr := cs.rep.Refs[ri]
			rr.Analyzed = rr.Volume
			rr.Hits, rr.Repl = 0, 0
			rr.Cold = rr.Volume
			rr.Tier = TierExact
			rr.Complete = true
			rr.ClosedForm = true
			gi := info(cs)
			gi.ClosedRefs++
			gi.PureColdRefs++
			mGeomEvals.Inc()
			mGeomPureCold.Inc()
		}
	}
	for _, cs := range col.anchors {
		fillPureCold(cs)
	}
	for _, cs := range col.deferred {
		fillPureCold(cs)
	}
	for _, cs := range col.other {
		fillPureCold(cs)
	}

	// Fit rung, per reference over the anchor samples of each class.
	for ri := range p.np.Refs {
		if col.fit[ri] {
			p.fitAndFill(col, gopt, ri, refuse, info)
		}
	}
	return refused
}

// fitAndFill runs the fit rung for one reference: per residue class of
// the deferred set counts, fit the anchors, hold out the rest, and
// evaluate. Refusals route through refuse (fall-through, never a wrong
// count).
func (p *Prepared) fitAndFill(col *geomColumn, gopt GeomOptions, ri int, refuse func(*batchCand, int), info func(*batchCand) *GeomInfo) {
	// Collect anchor samples per residue class. An anchor whose report is
	// not an exact complete census cannot feed a fit.
	classes := map[int64][]geomSample{}
	bad := map[int64]bool{}
	for _, cs := range col.anchors {
		rr := cs.rep.Refs[ri]
		r := mod64(numSetsOf(cs), gopt.Period)
		if !rr.Complete || rr.Tier != TierExact || rr.Sampled || rr.Analyzed != rr.Volume {
			bad[r] = true
			continue
		}
		classes[r] = append(classes[r], geomSample{s: numSetsOf(cs),
			hits: rr.Hits, cold: rr.Cold, repl: rr.Repl})
	}
	fits := map[int64]*geomRefFit{}
	for _, cs := range col.deferred {
		cl := col.cleared[cs]
		if cl == nil || !cl[ri] {
			continue
		}
		r := mod64(numSetsOf(cs), gopt.Period)
		fit, ok := fits[r]
		if !ok {
			if bad[r] {
				fit = &geomRefFit{}
			} else {
				fit = fitClass(gopt, classes[r])
			}
			fits[r] = fit
			if fit.ok {
				mGeomFits.Inc()
			}
		}
		if !fit.ok {
			refuse(cs, ri)
			continue
		}
		rr := cs.rep.Refs[ri]
		hits, cold, repl, ok := fit.eval(numSetsOf(cs), rr.Volume)
		if !ok {
			refuse(cs, ri)
			continue
		}
		rr.Analyzed = rr.Volume
		rr.Hits, rr.Cold, rr.Repl = hits, cold, repl
		rr.Tier = TierExact
		rr.Complete = true
		rr.ClosedForm = true
		info(cs).ClosedRefs++
		mGeomEvals.Inc()
	}
}

// geomRefFit is one (column, reference, residue class) fitted counter set.
type geomRefFit struct {
	ok               bool
	hits, cold, repl []linalg.Rat // power-basis coefficients
}

// fitClass fits one residue class's anchor samples and verifies the
// holdouts. Inside the certified stable region the counts are constant,
// so the default degree-0 fit always holds; the holdout verification is
// defense in depth for non-default shapes.
func fitClass(gopt GeomOptions, samples []geomSample) *geomRefFit {
	needFit := gopt.Degree + 1
	if len(samples) < needFit+gopt.Verify {
		return &geomRefFit{}
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i].s < samples[j].s })
	fitOn, holdout := samples[:needFit], samples[needFit:]
	mk := func(sel func(geomSample) int64) ([]linalg.Rat, bool) {
		in := make([]qpoly.Sample, len(fitOn))
		for i, s := range fitOn {
			in[i] = qpoly.Sample{N: s.s, V: linalg.RatInt(sel(s))}
		}
		coef, err := qpoly.FitPoly(gopt.Degree, in)
		if err != nil {
			return nil, false
		}
		for _, s := range holdout {
			v, ok := evalPolyAt(coef, s.s)
			if !ok || v != sel(s) {
				return nil, false
			}
		}
		return coef, true
	}
	f := &geomRefFit{}
	var ok1, ok2, ok3 bool
	f.hits, ok1 = mk(func(s geomSample) int64 { return s.hits })
	f.cold, ok2 = mk(func(s geomSample) int64 { return s.cold })
	f.repl, ok3 = mk(func(s geomSample) int64 { return s.repl })
	if !ok1 || !ok2 || !ok3 {
		return &geomRefFit{}
	}
	f.ok = true
	return f
}

// eval evaluates the fitted counters at one set count and checks the
// count identities: integral, non-negative, summing to the volume.
func (f *geomRefFit) eval(s, volume int64) (hits, cold, repl int64, ok bool) {
	var k1, k2, k3 bool
	hits, k1 = evalPolyAt(f.hits, s)
	cold, k2 = evalPolyAt(f.cold, s)
	repl, k3 = evalPolyAt(f.repl, s)
	if !k1 || !k2 || !k3 || hits < 0 || cold < 0 || repl < 0 || hits+cold+repl != volume {
		return 0, 0, 0, false
	}
	return hits, cold, repl, true
}

// evalPolyAt evaluates power-basis rational coefficients at n, requiring
// an integral result.
func evalPolyAt(coef []linalg.Rat, n int64) (int64, bool) {
	acc := linalg.RatInt(0)
	x := linalg.RatInt(n)
	for i := len(coef) - 1; i >= 0; i-- {
		acc = acc.Mul(x).Add(coef[i])
	}
	return acc.Int()
}
