package cme

import (
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/kernels"
	"cachemodel/internal/obs"
)

// TestMemoHitRateGate: a workload with memo-eligible vectors whose keys
// rarely repeat must trip the hit-rate gate (memoDisableAfter consecutive
// probe misses per vector) — and tripping it must not change a single
// count relative to -nomemo, which is the ground truth the memo always
// had to match. Tomcatv at this geometry walks ~138k times with enough
// cold vectors that dozens of memo arenas get dropped mid-solve.
// (Package tests run sequentially, so global counter deltas are safe.)
func TestMemoHitRateGate(t *testing.T) {
	disabledC := obs.Default.Counter("cme_walk_memo_disabled_total")
	hitsC := obs.Default.Counter("cme_walk_memo_hits_total")

	cfg := cache.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 2}
	prog := func(opt Options) *Analyzer {
		_, a := prepKernel(t, kernels.Tomcatv(40, 2), cfg, opt)
		return a
	}

	d0, h0 := disabledC.Value(), hitsC.Value()
	memoRep := prog(Options{Workers: 1}).FindMisses()
	d1, h1 := disabledC.Value()-d0, hitsC.Value()-h0
	t.Logf("memo run: %d vectors disabled, %d memo hits", d1, h1)

	plainRep := prog(Options{Workers: 1, NoMemo: true}).FindMisses()

	if d1 == 0 {
		t.Errorf("hit-rate gate never fired (%d memo hits)", h1)
	}
	for i, rr := range memoRep.Refs {
		want := plainRep.Refs[i]
		if rr.Hits != want.Hits || rr.Cold != want.Cold || rr.Repl != want.Repl ||
			rr.Analyzed != want.Analyzed {
			t.Errorf("ref %s: memo-gated %d/%d/%d != nomemo %d/%d/%d",
				rr.Ref.ID, rr.Hits, rr.Cold, rr.Repl, want.Hits, want.Cold, want.Repl)
		}
	}
	if memoRep.EstimatedMisses() != plainRep.EstimatedMisses() {
		t.Errorf("estimated misses differ: %v vs %v",
			memoRep.EstimatedMisses(), plainRep.EstimatedMisses())
	}
}
