package cme

import (
	"context"
	"errors"
	"testing"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/faultinject"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
)

// TestFusedBudgetCheckpointParity proves the fused batch solver spends
// budget exactly like the solo exact solver: with a hook firing at the Nth
// cooperative checkpoint (every classified point flushes under a hook, and
// Workers=1 fixes the traversal order), a single-candidate batch must trip
// at the same point, degrade the same references, and produce a report
// whose per-reference provenance is bit-identical to solo FindMissesCtx
// under a twin injector.
func TestFusedBudgetCheckpointParity(t *testing.T) {
	build := func() *ir.Subroutine { return copyThenRead(48) }
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 2}
	degraded := 0
	for _, n := range []int64{1, 7, 40, 120, 1 << 20} {
		// Solo run. The injector CAS fires exactly once, so each run needs
		// its own injector with the same N.
		np, err := normalize.Normalize(build())
		if err != nil {
			t.Fatal(err)
		}
		if err := layout.AssignProgram(np, layout.Options{}); err != nil {
			t.Fatal(err)
		}
		a, err := New(np, cfg, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		solo, serr := a.FindMissesCtx(context.Background(), budget.Budget{Hook: faultinject.ExhaustAt(n).Hook()})
		if serr != nil {
			t.Fatalf("n=%d: solo did not degrade: %v", n, serr)
		}

		// Batch run: one candidate, same geometry, twin injector.
		_, p := prepBatch(t, build(), Options{Workers: 1})
		reps, berr := p.SolveBatch(context.Background(),
			[]Candidate{{Label: "twin", Config: cfg}},
			BatchOptions{Workers: 1, Budget: budget.Budget{Hook: faultinject.ExhaustAt(n).Hook()}})
		if berr != nil {
			t.Fatalf("n=%d: batch did not degrade: %v", n, berr)
		}
		got := reps[0]

		if got.Tier != solo.Tier || got.Degraded != solo.Degraded {
			t.Errorf("n=%d: batch tier=%v degraded=%v, solo tier=%v degraded=%v",
				n, got.Tier, got.Degraded, solo.Tier, solo.Degraded)
		}
		if len(got.Refs) != len(solo.Refs) {
			t.Fatalf("n=%d: %d refs vs %d", n, len(got.Refs), len(solo.Refs))
		}
		for i, g := range got.Refs {
			w := solo.Refs[i]
			if g.Tier != w.Tier || g.Complete != w.Complete || g.Sampled != w.Sampled ||
				g.Analyzed != w.Analyzed || g.Hits != w.Hits || g.Cold != w.Cold || g.Repl != w.Repl {
				t.Errorf("n=%d ref %d (%s): batch {tier=%v complete=%v sampled=%v n=%d hit=%d cold=%d repl=%d} vs solo {tier=%v complete=%v sampled=%v n=%d hit=%d cold=%d repl=%d}",
					n, i, w.Ref.ID,
					g.Tier, g.Complete, g.Sampled, g.Analyzed, g.Hits, g.Cold, g.Repl,
					w.Tier, w.Complete, w.Sampled, w.Analyzed, w.Hits, w.Cold, w.Repl)
			}
		}
		if solo.Degraded {
			degraded++
		}
	}
	if degraded == 0 {
		t.Fatal("no injection point actually degraded; the parity test proved nothing")
	}
}

// TestSolveBatchPartialFailure: an invalid candidate is recorded in the
// returned *BatchError with a nil report while the valid candidates still
// solve, bit-identically to their solo runs.
func TestSolveBatchPartialFailure(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{})
	good := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 1}
	bad := cache.Config{SizeBytes: 100, LineBytes: 32, Assoc: 1} // not line×assoc divisible
	cands := []Candidate{
		{Label: "good", Config: good},
		{Label: "bad", Config: bad},
		{Label: "good2", Config: good},
	}
	reps, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("err = %v, want *BatchError", err)
	}
	if len(be.Errs) != 1 || be.Errs[1] == nil {
		t.Fatalf("Errs = %v, want exactly index 1", be.Errs)
	}
	if reps[1] != nil {
		t.Error("failed candidate still produced a report")
	}
	want := soloReport(t, func() *ir.Subroutine { return stencil1D(64) }, good, nil, Options{}, nil)
	sameCounts(t, "good", reps[0], want)
	sameCounts(t, "good2", reps[2], want)
}
