package cme

import (
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/layout"
	"cachemodel/internal/sampling"
)

// TestSolveKeyStableAndDiscriminating: equal (program, candidates, mode)
// invocations share one key — even across separate builds of the program —
// while any result-affecting difference changes it.
func TestSolveKeyStableAndDiscriminating(t *testing.T) {
	cands := []Candidate{
		{Config: cache.Config{SizeBytes: 8192, LineBytes: 32, Assoc: 1}},
		{Config: cache.Config{SizeBytes: 16384, LineBytes: 32, Assoc: 2},
			Layout: &layout.Options{PadOf: map[string]int64{"A": 8}}},
	}
	plan := &sampling.Plan{C: 0.95, W: 0.05}

	_, p1 := prepBatch(t, stencil1D(64), Options{})
	_, p2 := prepBatch(t, stencil1D(64), Options{})
	base := p1.SolveKey(cands, nil)
	if base == "" || len(base) != 64 {
		t.Fatalf("SolveKey = %q, want 64 hex chars", base)
	}
	if got := p2.SolveKey(cands, nil); got != base {
		t.Errorf("identical invocations on separate builds diverge: %s vs %s", got, base)
	}

	diffs := map[string]string{
		"plan":      p1.SolveKey(cands, plan),
		"geometry":  p1.SolveKey([]Candidate{{Config: cache.Config{SizeBytes: 4096, LineBytes: 32, Assoc: 1}}, cands[1]}, nil),
		"layout":    p1.SolveKey([]Candidate{cands[0], {Config: cands[1].Config}}, nil),
		"order":     p1.SolveKey([]Candidate{cands[1], cands[0]}, nil),
		"truncated": p1.SolveKey(cands[:1], nil),
	}
	seen := map[string]string{base: "base"}
	for name, key := range diffs {
		if prev, dup := seen[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[key] = name
	}

	// A different program changes the key through the prepared digest.
	_, p3 := prepBatch(t, copyThenRead(48), Options{})
	if got := p3.SolveKey(cands, nil); got == base {
		t.Error("different programs share a key")
	}
}
