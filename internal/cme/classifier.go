package cme

import (
	"encoding/binary"
	"math/bits"
	"sync"

	"cachemodel/internal/ir"
	"cachemodel/internal/reuse"
	"cachemodel/internal/trace"
)

// memoInfo is the per-reuse-vector memoization precomputation: invMask has
// bit d set when the replacement-walk verdict is invariant under
// translating the consumer iteration along depth d (see the soundness
// conditions in vectorMemoInfo). A vector with a zero mask gains nothing
// from the memo and is classified directly.
type memoInfo struct {
	invMask uint64
	// needRes: at least one invariant depth has a shared nonzero address
	// coefficient, so translations shift every address by a common delta
	// and the key must capture the consumer address residue modulo
	// LineBytes·NumSets to pin that delta to a multiple of the way size.
	needRes bool
}

// memoEntry caches one replacement-walk verdict together with the scan
// work the walk performed. Scanned is replayed into the budget accounting
// on every memo hit, so budgeted runs consume the budget identically with
// and without memoization (MaxScan meters logical scan work).
type memoEntry struct {
	scanned int64
	evicted bool
}

// memoPrecompute derives, per depth, the program-wide conditions a depth
// must satisfy to be translation-invariant:
//
//   - rectAt[d]: no loop bound and no guard anywhere in the program
//     mentions I_{d+1}, so the interval walked between two access times
//     whose depth-d components both move by t is a pure translate (its
//     recursion shape and boundary flags are unchanged);
//   - zeroAt[d]: no reference's linearised address uses I_{d+1} at all, so
//     a translation along d leaves every visited address untouched (the
//     time loop of a stepped program is the canonical case);
//   - sharedAt[d]: every reference's linearised address has the same
//     coefficient at depth d, so translating along d shifts every address
//     in the interval (and the consumer's and producer's) by one common
//     delta, leaving all address differences intact.
func (a *Analyzer) memoPrecompute() {
	a.numSets = a.cfg.NumSets()
	a.wayBytes = a.cfg.LineBytes * a.numSets
	// Addresses in the model are non-negative (layout validates bases), so
	// a power-of-two set count lets the per-access set filter strength-
	// reduce the modulo to a mask.
	a.setMask = -1
	if a.numSets&(a.numSets-1) == 0 {
		a.setMask = a.numSets - 1
	}
	// Same strength reduction for addr -> memory line on power-of-two
	// line sizes.
	a.lineShift = -1
	if a.cfg.LineBytes&(a.cfg.LineBytes-1) == 0 {
		a.lineShift = bits.TrailingZeros64(uint64(a.cfg.LineBytes))
	}
	if a.memoInfo == nil { // a Prepared-built analyzer shares its table
		a.memoInfo = memoTable(a.np, a.vecs)
	}
}

// depthTraits are the program-wide per-depth invariance predicates the
// memo table and the symbolic region solver both build on (see
// memoPrecompute for their soundness roles). coeff[d] holds the shared
// address coefficient at depth d, valid when shared[d] (zero when
// zero[d]). They depend only on bounds, guards and address coefficients —
// never on array bases — so one set serves every geometry and layout.
type depthTraits struct {
	rect   []bool
	zero   []bool
	shared []bool
	coeff  []int64
}

// programTraits derives the per-depth predicates of a program.
func programTraits(np *ir.NProgram) *depthTraits {
	n := np.Depth
	t := &depthTraits{
		rect:   make([]bool, n),
		zero:   make([]bool, n),
		shared: make([]bool, n),
		coeff:  make([]int64, n),
	}
	for d := 0; d < n; d++ {
		t.rect[d] = true
		for _, s := range np.Stmts {
			for _, b := range s.Bounds {
				if b.Lo.At(d+1) != 0 || b.Hi.At(d+1) != 0 {
					t.rect[d] = false
				}
			}
			for _, g := range s.Guards {
				if g.Expr.At(d+1) != 0 {
					t.rect[d] = false
				}
			}
			if !t.rect[d] {
				break
			}
		}
		t.shared[d] = true
		if len(np.Refs) > 0 {
			c0 := np.Refs[0].AddressAffine().At(d + 1)
			for _, r := range np.Refs[1:] {
				if r.AddressAffine().At(d+1) != c0 {
					t.shared[d] = false
					break
				}
			}
			if t.shared[d] {
				t.coeff[d] = c0
			}
			t.zero[d] = t.shared[d] && c0 == 0
		}
	}
	return t
}

// memoTable derives the per-vector memoization eligibility for a program
// and its reuse vectors. The masks depend only on the program structure
// (bounds, guards, address coefficients — not array bases) and on the
// vectors themselves, so one table serves every cache geometry and every
// inter-array layout that shares the vectors' line size.
func memoTable(np *ir.NProgram, vecs map[*ir.NRef][]*reuse.Vector) map[*reuse.Vector]memoInfo {
	out := map[*reuse.Vector]memoInfo{}
	n := np.Depth
	if n == 0 || n > 64 {
		return out
	}
	t := programTraits(np)
	for _, vs := range vecs {
		for _, v := range vs {
			if _, done := out[v]; done {
				continue
			}
			out[v] = vectorMemoInfo(v, t.rect, t.zero, t.shared)
		}
	}
	return out
}

// vectorMemoInfo computes the invariant-depth mask of one reuse vector:
// the depths d such that translating the consumer point by t·e_d (which
// also translates the producer, at fixed displacement) provably leaves the
// replacement walk's verdict and scan count unchanged.
//
// Soundness: let p be the vector's pivot — the first depth where the
// interleaved (label, index) displacement is nonzero.
//
//   - d < p: producer and consumer agree on label and index at d, so the
//     walk is pinned to the consumer's I_{d+1} — every visited point X has
//     X[d] = idx[d]. Under rectAt[d], the pinned recursion shape is the
//     same at idx[d]+t; every visited address gains the common delta
//     c_d·t when sharedAt[d] holds (zero when zeroAt[d]).
//   - d == p with LabelDiff[p] == 0: the walk spans depth-d values
//     [idx[d]-δ, idx[d]]. Translating both endpoints by t maps the walk
//     set by the order-preserving bijection X ↦ X + t·e_d (interleaved
//     comparisons are translation-invariant in one index; rectAt[d] keeps
//     every translated point valid because the endpoints are valid and no
//     bound or guard mentions I_{d+1}). All addresses gain the common
//     delta c_d·t under sharedAt[d].
//   - d == p with LabelDiff[p] != 0: points in strictly-intermediate label
//     branches sweep their full depth-d range and do NOT translate, so
//     the walk is invariant only when addresses ignore I_{d+1} entirely
//     (zeroAt[d]); then the two walks visit identical address sequences.
//   - d > p: intermediate subtrees under a one-sided boundary flag change
//     length under translation; never invariant.
//
// When every delta is zero (zeroAt on all masked depths) the verdict is
// literally the same computation. Otherwise the common delta shifts every
// address, and the memo key pins the delta to a multiple of the way size
// wayBytes = LineBytes·NumSets by including the consumer address residue:
// a shift of m·wayBytes moves every memory line by m·NumSets, preserving
// line identity, set membership and distinctness — hence the verdict —
// and the scan count rides along by the bijection. Cold-equation checks
// stay outside the memo and run fresh at every point.
func vectorMemoInfo(v *reuse.Vector, rect, zero, shared []bool) memoInfo {
	pivot := len(v.LabelDiff)
	for k := range v.LabelDiff {
		if v.LabelDiff[k] != 0 || v.IdxDiff[k] != 0 {
			pivot = k
			break
		}
	}
	labelAtPivot := pivot < len(v.LabelDiff) && v.LabelDiff[pivot] != 0
	var mask uint64
	needRes := false
	for d := 0; d <= pivot && d < len(rect); d++ {
		if !rect[d] {
			continue
		}
		switch {
		case zero[d]:
			mask |= 1 << d
		case shared[d] && (d < pivot || !labelAtPivot):
			mask |= 1 << d
			needRes = true
		}
	}
	return memoInfo{invMask: mask, needRes: needRes}
}

// walkScratch is the per-walk distinct-line scratch: a linear scan slice
// for small associativity and an open-addressed probe table beyond
// distinctLinear ways, plus the memo key buffer. The buffers are recycled
// through scratchPool across classifiers (and across the per-candidate
// states of the batch solver), so a sweep spawning workers × candidates
// classifiers reuses a bounded set of tables instead of re-allocating and
// re-zeroing them per solve.
type walkScratch struct {
	linear   bool
	distinct []int64
	slots    []int64
	stamps   []uint32
	epoch    uint32
	mask     int
	keyBuf   []byte
}

// distinctLinear is the associativity up to which the linear distinct scan
// beats the hash probe (the whole slice fits in two cache lines).
const distinctLinear = 8

var scratchPool = sync.Pool{New: func() any { return new(walkScratch) }}

// newWalkScratch takes a scratch from the pool and sizes it for a k-way
// walk. A recycled table larger than needed is kept as-is (probing a
// larger table is correct and its stamps stay valid); a smaller one is
// regrown with fresh stamps.
func newWalkScratch(assoc int) *walkScratch {
	s := scratchPool.Get().(*walkScratch)
	s.linear = assoc <= distinctLinear
	if !s.linear {
		size := 1
		for size < 4*assoc {
			size <<= 1
		}
		if len(s.slots) < size {
			s.slots = make([]int64, size)
			s.stamps = make([]uint32, size)
			s.epoch = 0
		}
		s.mask = len(s.slots) - 1
	}
	return s
}

// release returns the scratch to the pool.
func (s *walkScratch) release() { scratchPool.Put(s) }

// reset clears the distinct-line set for a new walk.
func (s *walkScratch) reset() {
	s.distinct = s.distinct[:0]
	if !s.linear {
		s.epoch++
		if s.epoch == 0 { // stamp wrap: flush the table once per 2^32 walks
			for i := range s.stamps {
				s.stamps[i] = 0
			}
			s.epoch = 1
		}
	}
}

// add inserts a contending line and reports the distinct count.
func (s *walkScratch) add(line int64) int {
	if s.linear {
		for _, d := range s.distinct {
			if d == line {
				return len(s.distinct)
			}
		}
		s.distinct = append(s.distinct, line)
		return len(s.distinct)
	}
	h := int(uint64(line) * 0x9E3779B97F4A7C15 >> 32)
	for i := h & s.mask; ; i = (i + 1) & s.mask {
		if s.stamps[i] != s.epoch {
			s.stamps[i] = s.epoch
			s.slots[i] = line
			s.distinct = append(s.distinct, line) // count only
			return len(s.distinct)
		}
		if s.slots[i] == line {
			return len(s.distinct)
		}
	}
}

// memoKey appends the verdict-memo key for a vector to the scratch's key
// buffer: the consumer indices at every non-invariant depth, plus (when
// the invariant depths carry nonzero shared coefficients) the consumer
// address residue modulo wayBytes = LineBytes·NumSets. The returned slice
// aliases the buffer; it is only ever used for an immediate map operation.
func (s *walkScratch) memoKey(info memoInfo, idx []int64, addr, wayBytes int64) []byte {
	buf := s.keyBuf[:0]
	var tmp [8]byte
	for d, v := range idx {
		if info.invMask&(1<<d) != 0 {
			continue
		}
		binary.LittleEndian.PutUint64(tmp[:], uint64(v))
		buf = append(buf, tmp[:]...)
	}
	if info.needRes {
		res := addr % wayBytes
		if res < 0 {
			res += wayBytes
		}
		binary.LittleEndian.PutUint64(tmp[:], uint64(res))
		buf = append(buf, tmp[:]...)
	}
	s.keyBuf = buf
	return buf
}

// classifier is the per-worker classification engine: it owns the
// strength-reduced interval walker, the pooled distinct-line scratch, and
// the verdict memo arena. Classifiers share the Analyzer's immutable state
// (vectors, spaces, memo eligibility) but never each other's scratch, so
// one classifier per goroutine needs no locking.
type classifier struct {
	a      *Analyzer
	w      *trace.Walker
	noMemo bool
	memo   map[*reuse.Vector]*vecMemo
	s      *walkScratch
	lbuf   []int // reusable producer-point buffers
	pbuf   []int64

	// Local metric accumulators, flushed into the obs registry once at
	// release() so the hot loop never touches an atomic.
	nWalks    int64
	nMemoHits int64
	nSteps    int64
	nMemoOff  int64
}

// vecMemo is one reuse vector's verdict arena plus its hit-rate-gate
// state: miss counts consecutive probe misses, and off marks an arena the
// gate dropped. Folding the gate into the value the arena lookup already
// returns keeps the memoized hot path at the same map-operation count it
// always paid — a hit costs one extra struct-field write, a gated-off
// vector costs one field read instead of a key build.
type vecMemo struct {
	entries map[string]memoEntry
	miss    int
	off     bool
}

// memoDisableAfter is the hit-rate gate on replacement-walk memoization:
// after this many consecutive walks of one reuse vector without a single
// memo hit, the vector stops paying the key-build/probe/store tax and its
// arena is freed. Disabling is invisible in the results — a verdict
// recomputed by a walk is the one the memo would have replayed, with the
// identical logical scan count, so counts and budget accounting stay
// bit-identical to the always-memo path (and to -nomemo, which never
// builds the arena at all).
const memoDisableAfter = 512

func (a *Analyzer) newClassifier() *classifier {
	return a.newClassifierW(trace.NewWalker(a.np))
}

// newClassifierW builds a classifier around an existing walker, letting
// callers that run several classifiers on one goroutine (the batch solver,
// one per candidate) share a single prepared walker.
func (a *Analyzer) newClassifierW(w *trace.Walker) *classifier {
	c := &classifier{a: a, w: w, noMemo: a.opt.NoMemo, s: newWalkScratch(a.cfg.Assoc)}
	if !c.noMemo {
		c.memo = map[*reuse.Vector]*vecMemo{}
	}
	return c
}

// release recycles the classifier's scratch and flushes the locally
// accumulated metrics; the classifier must not be used afterwards.
func (c *classifier) release() {
	if c.s != nil {
		c.s.release()
		c.s = nil
	}
	c.flushMetrics()
}

// flushMetrics publishes the local walk counters and resets them.
func (c *classifier) flushMetrics() {
	mWalks.Add(c.nWalks)
	mWalkMemoHits.Add(c.nMemoHits)
	mWalkSteps.Add(c.nSteps)
	mWalkMemoDisabled.Add(c.nMemoOff)
	c.nWalks, c.nMemoHits, c.nSteps, c.nMemoOff = 0, 0, 0, 0
}

func (c *classifier) resetDistinct()          { c.s.reset() }
func (c *classifier) addDistinct(l int64) int { return c.s.add(l) }
func (c *classifier) memoKey(info memoInfo, idx []int64, addr int64) []byte {
	return c.s.memoKey(info, idx, addr, c.a.wayBytes)
}

// replacementWalk runs the replacement equation along one reuse vector for
// the consumer at idx: it scans the producer..consumer interval for k
// distinct contending lines and reports whether the line was evicted plus
// the number of accesses visited.
func (c *classifier) replacementWalk(producer, consumer trace.Time, line, set int64, k int) (evicted bool, scanned int64) {
	cfg := &c.a.cfg
	c.resetDistinct()
	numSets, mask, shift := c.a.numSets, c.a.setMask, c.a.lineShift
	toLine := func(addr int64) int64 {
		if shift >= 0 {
			return addr >> shift
		}
		return addr / cfg.LineBytes
	}
	inSet := func(al int64) bool {
		if mask >= 0 {
			return al&mask == set
		}
		return al%numSets == set
	}
	if c.a.opt.PaperLRU {
		// The paper's equations verbatim: k distinct set contentions
		// anywhere in the interval evict the line.
		c.w.Between(producer, consumer, func(_ *ir.NRef, addr int64) bool {
			scanned++
			al := toLine(addr)
			if al == line || !inSet(al) {
				return true
			}
			if c.addDistinct(al) >= k {
				evicted = true
				return false
			}
			return true
		})
		return evicted, scanned
	}
	// Exact LRU: scan backwards from the consumer; the first touch of the
	// line is its most recent fetch, and the line is evicted iff k
	// distinct other lines hit the set after that fetch.
	c.w.BetweenReverse(producer, consumer, func(_ *ir.NRef, addr int64) bool {
		scanned++
		al := toLine(addr)
		if al == line {
			return false // most recent fetch found; the count stands
		}
		if !inSet(al) {
			return true
		}
		if c.addDistinct(al) >= k {
			evicted = true
			return false
		}
		return true
	})
	return evicted, scanned
}

// classify decides the outcome of reference r's access at idx (the
// classifyN of the sequential seed path, with memoized walks and the
// strength-reduced walker). The returned scan count is the logical
// interference-scan work of the deciding walk — identical whether the
// verdict came from a walk or from the memo.
func (c *classifier) classify(r *ir.NRef, idx []int64) (Outcome, int64) {
	a := c.a
	addr := r.AddressAt(idx)
	line := a.cfg.MemLine(addr)
	set := line % a.numSets
	k := a.cfg.Assoc
	consumer := trace.Time{Label: r.Stmt.Label, Idx: idx, Seq: r.Seq}

	for _, v := range a.vecs[r] {
		plabel, pidx := v.ProducerPointBuf(idx, &c.lbuf, &c.pbuf)
		// Cold equation: the producer access must exist ...
		if !a.spaces[v.Producer.Stmt].Contains(pidx) {
			continue
		}
		// ... and touch the same memory line.
		if a.cfg.MemLine(v.Producer.AddressAt(pidx)) != line {
			continue
		}
		producer := trace.Time{Label: plabel, Idx: pidx, Seq: v.Producer.Seq}
		var evicted bool
		var scanned int64
		info := a.memoInfo[v]
		var vm *vecMemo
		if c.memo != nil && info.invMask != 0 {
			if vm = c.memo[v]; vm == nil {
				vm = &vecMemo{entries: map[string]memoEntry{}}
				c.memo[v] = vm
			}
		}
		if vm != nil && !vm.off {
			key := c.memoKey(info, idx, addr)
			if e, ok := vm.entries[string(key)]; ok {
				evicted, scanned = e.evicted, e.scanned
				c.nMemoHits++
				vm.miss = 0
			} else {
				evicted, scanned = c.replacementWalk(producer, consumer, line, set, k)
				vm.entries[string(key)] = memoEntry{scanned: scanned, evicted: evicted}
				c.nWalks++
				c.nSteps += scanned
				if vm.miss++; vm.miss >= memoDisableAfter {
					// Hit-rate gate: the vector keeps walking fresh points,
					// so stop paying for keys and stores and free its arena.
					vm.entries = nil
					vm.off = true
					c.nMemoOff++
				}
			}
		} else {
			evicted, scanned = c.replacementWalk(producer, consumer, line, set, k)
			c.nWalks++
			c.nSteps += scanned
		}
		if evicted {
			return ReplacementMiss, scanned
		}
		return Hit, scanned
	}
	if out, more, decided := c.classifyDynamic(r, idx, line, set, k, consumer); decided {
		return out, more
	}
	return ColdMiss, 0
}

// classifyDynamic resolves non-uniformly generated reuse (§8 future work)
// once every static reuse vector has fallen through.
func (c *classifier) classifyDynamic(r *ir.NRef, idx []int64, line, set int64, k int, consumer trace.Time) (Outcome, int64, bool) {
	a := c.a
	if a.dyn == nil {
		return ColdMiss, 0, false
	}
	var best trace.Time
	found := false
	for _, d := range a.dyn[r] {
		q, ok := d.ProducerPoint(idx)
		if !ok {
			continue
		}
		if !a.spaces[d.Producer.Stmt].Contains(q) {
			continue
		}
		pt := trace.Time{Label: d.Producer.Stmt.Label, Idx: q, Seq: d.Producer.Seq}
		if trace.Compare(pt, consumer) >= 0 {
			continue
		}
		// Same element by construction, hence the same memory line; the
		// cold equation is satisfied.
		if !found || trace.Compare(pt, best) > 0 {
			best = pt
			found = true
		}
	}
	if !found {
		return ColdMiss, 0, false
	}
	var scanned int64
	evicted := false
	cfg := &a.cfg
	c.resetDistinct()
	c.w.BetweenReverse(best, consumer, func(_ *ir.NRef, addr int64) bool {
		scanned++
		al := addr / cfg.LineBytes
		if al == line {
			return false
		}
		if al%a.numSets != set {
			return true
		}
		if c.addDistinct(al) >= k {
			evicted = true
			return false
		}
		return true
	})
	if evicted {
		return ReplacementMiss, scanned, true
	}
	return Hit, scanned, true
}

// memoStats reports arena occupancy (for tests and tuning).
func (c *classifier) memoStats() (vectors, entries int) {
	for _, vm := range c.memo {
		if len(vm.entries) > 0 {
			vectors++
			entries += len(vm.entries)
		}
	}
	return vectors, entries
}
