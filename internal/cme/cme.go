// Package cme implements the cache miss equations of §4: cold (compulsory)
// equations and replacement equations over reuse vectors, together with the
// two solvers of Fig. 6 — FindMisses, which classifies every iteration
// point of every reference, and EstimateMisses, which classifies a
// statistically chosen sample.
//
// Classification of one access follows §4.2 exactly: the reference's reuse
// vectors are tried in increasing lexicographic order; a point that solves
// the cold equation along the current vector stays indeterminate and falls
// through to the next vector; otherwise the replacement equation along the
// vector decides hit or miss (k distinct set contentions evict the line in
// a k-way cache). Points indeterminate after all vectors are cold misses.
//
// Both solvers are interruptible and budget-aware: the Ctx variants thread
// a context.Context and a budget.Budget through cooperative checkpoints at
// iteration-point granularity. On budget exhaustion the analysis degrades
// instead of dying, down the ladder
//
//	FindMisses (exact) → EstimateMisses (widened interval) → probabilistic
//
// recording per-reference provenance (Tier) and overall Degraded /
// BudgetSpent fields in the Report so callers can see exactly what
// produced the numbers. Context cancellation never degrades: the partial
// report is returned together with ErrCanceled.
package cme

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cerr"
	"cachemodel/internal/ir"
	"cachemodel/internal/obs"
	"cachemodel/internal/poly"
	"cachemodel/internal/prob"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

// Outcome classifies one access.
type Outcome int

// Access outcomes.
const (
	Hit Outcome = iota
	ColdMiss
	ReplacementMiss
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case ColdMiss:
		return "cold"
	case ReplacementMiss:
		return "replacement"
	}
	return "?"
}

// Tier identifies which rung of the degradation ladder produced a result.
type Tier int

// Degradation ladder, cheapest last.
const (
	// TierExact: every iteration point classified (FindMisses).
	TierExact Tier = iota
	// TierSampled: a statistically chosen sample classified
	// (EstimateMisses).
	TierSampled
	// TierProbabilistic: the Fraguela-style closed-form baseline; no
	// pointwise classification at all.
	TierProbabilistic
)

func (t Tier) String() string {
	switch t {
	case TierExact:
		return "exact"
	case TierSampled:
		return "sampled"
	case TierProbabilistic:
		return "probabilistic"
	}
	return "?"
}

// Options tunes the analysis.
type Options struct {
	// Reuse configures reuse-vector generation.
	Reuse reuse.Options
	// PaperLRU, when true, uses the paper's replacement equations
	// verbatim: k distinct set contentions anywhere in the reuse interval
	// evict the line. The default (false) additionally resets the
	// contention count whenever the reused line itself is touched inside
	// the interval, which models LRU exactly and lets FindMisses match
	// the simulator bit-for-bit when reuse information is complete.
	PaperLRU bool
	// Seed seeds the sampling RNG (EstimateMisses); 0 means a fixed
	// default so runs are reproducible.
	Seed int64
	// Vectors, when non-nil, supplies precomputed reuse vectors instead of
	// regenerating them. Reuse vectors depend only on the line geometry
	// (not associativity), so analyses of the same program at several
	// associativities can share one generation pass (see reuse.Generate).
	Vectors map[*ir.NRef][]*reuse.Vector
	// Workers sets the number of goroutines classifying references in
	// FindMisses / EstimateMisses. 0 uses GOMAXPROCS; 1 runs sequentially.
	// Results are bit-identical at any worker count: FindMisses partitions
	// iteration spaces into tiles whose partial counts merge by summation,
	// and sampling RNGs are seeded per reference.
	Workers int
	// NoMemo disables the interference-walk verdict memo, forcing every
	// replacement walk to run in full (the behaviour of the original
	// sequential solver). Budget accounting is identical either way — memo
	// hits replay the stored scan cost — so this knob exists for
	// benchmarking the memo and for equivalence tests.
	NoMemo bool
	// NoSymbolic disables the symbolic region fast path, forcing the exact
	// solvers to classify every iteration point individually. Reports are
	// bit-identical either way — the fast path replicates (or counts)
	// exactly the verdicts enumeration would have produced, and under a
	// budget it replays the per-point cost stream so checkpoints land on
	// the same iteration points — so this knob exists for benchmarking the
	// fast path and for equivalence tests.
	NoSymbolic bool
	// Adaptive switches EstimateMisses to sequential sampling: points are
	// drawn in chunks from the same per-reference RNG stream and a
	// reference's sampling stops as soon as the Wilson score interval of
	// the observed miss ratio meets the plan's half-width, instead of
	// always classifying the a-priori worst-case sample size (which
	// remains the cap). Runs are deterministic under a fixed Seed; the
	// classified sample is a prefix of the non-adaptive sample whenever
	// the space's rejection sampler succeeds chunk by chunk.
	Adaptive bool
	// ProfileLabels wraps solver work items in pprof.Do with "ref" and
	// "tile" labels (plus "candidate" in SolveBatch) so CPU profiles
	// attribute time to sweep candidates. Off by default: labels cost a
	// goroutine-label swap per work item.
	ProfileLabels bool
}

// Analyzer holds the per-program analysis state: reuse vectors, reference
// iteration spaces and the cache configuration. An Analyzer stays valid
// and reusable after an interrupted or degraded run: every solver call
// builds fresh per-run reports and never mutates the shared state.
type Analyzer struct {
	np       *ir.NProgram
	cfg      cache.Config
	opt      Options
	vecs     map[*ir.NRef][]*reuse.Vector
	dyn      map[*ir.NRef][]*reuse.DynamicPair
	spaces   map[*ir.NStmt]*poly.Space
	warmOnce sync.Once

	// Memoization support, precomputed once in New: per-vector invariant
	// masks plus the cache geometry the memo keys capture.
	memoInfo  map[*reuse.Vector]memoInfo
	symOf     map[*ir.NRef]*refSym // built in warm()
	numSets   int64
	wayBytes  int64
	setMask   int64 // numSets-1 when numSets is a power of two, else -1
	lineShift int   // log2(LineBytes) when a power of two, else -1

	// defc serves the one-off public Classify API; solver passes build one
	// classifier per worker instead.
	clsMu sync.Mutex
	defc  *classifier
}

// New prepares an analyzer: it generates reuse vectors for every reference
// and builds the RIS of every statement. Arrays must be laid out
// (internal/layout) before analysis.
func New(np *ir.NProgram, cfg cache.Config, opt Options) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, arr := range np.Arrays {
		if arr.Base < 0 {
			return nil, fmt.Errorf("cme: array %s has no base address; run layout first", arr.Name)
		}
	}
	vecs := opt.Vectors
	if vecs == nil {
		vecs = reuse.Generate(np, cfg, opt.Reuse)
	}
	a := &Analyzer{np: np, cfg: cfg, opt: opt,
		vecs:   vecs,
		spaces: map[*ir.NStmt]*poly.Space{},
	}
	if opt.Reuse.NonUniform {
		a.dyn = reuse.GenerateDynamic(np)
	}
	for _, s := range np.Stmts {
		a.spaces[s] = poly.FromStmt(s)
	}
	a.memoPrecompute()
	return a, nil
}

// Vectors exposes the reuse vectors of a reference (for reporting).
func (a *Analyzer) Vectors(r *ir.NRef) []*reuse.Vector { return a.vecs[r] }

// Space exposes the RIS of a statement.
func (a *Analyzer) Space(s *ir.NStmt) *poly.Space { return a.spaces[s] }

// Classify decides the outcome of reference r's access at iteration idx by
// solving the cold and replacement equations along r's reuse vectors.
func (a *Analyzer) Classify(r *ir.NRef, idx []int64) Outcome {
	o, _ := a.classifyN(r, idx)
	return o
}

// classifyN is Classify plus accounting: it reports the number of accesses
// visited while scanning interference intervals, the unit of the budget's
// MaxScan dimension. It serves the one-off public API through a shared
// (mutex-guarded) classifier; the solver passes give each worker its own
// classifier and skip the lock.
func (a *Analyzer) classifyN(r *ir.NRef, idx []int64) (Outcome, int64) {
	a.clsMu.Lock()
	defer a.clsMu.Unlock()
	if a.defc == nil {
		a.warm()
		a.defc = a.newClassifier()
	}
	return a.defc.classify(r, idx)
}

// ClassifyDetail is Classify plus attribution: for a replacement miss it
// reports the references whose accesses supplied the k distinct contending
// lines (the paper's follow-up work [10] uses exactly this information for
// CME-driven diagnosis); for a hit it reports the producer whose line was
// reused.
func (a *Analyzer) ClassifyDetail(r *ir.NRef, idx []int64) (Outcome, []*ir.NRef) {
	line := a.cfg.MemLine(r.AddressAt(idx))
	set := a.cfg.SetOfLine(line)
	k := a.cfg.Assoc
	consumer := trace.Time{Label: r.Stmt.Label, Idx: idx, Seq: r.Seq}

	var distinct []int64
	var culprits []*ir.NRef
	for _, v := range a.vecs[r] {
		plabel, pidx := v.ProducerPoint(idx)
		if !a.spaces[v.Producer.Stmt].Contains(pidx) {
			continue
		}
		if a.cfg.MemLine(v.Producer.AddressAt(pidx)) != line {
			continue
		}
		producer := trace.Time{Label: plabel, Idx: pidx, Seq: v.Producer.Seq}
		distinct, culprits = distinct[:0], culprits[:0]
		evicted := false
		trace.VisitBetweenReverse(a.np, producer, consumer, func(ri *ir.NRef, j []int64) bool {
			al := a.cfg.MemLine(ri.AddressAt(j))
			if al == line {
				return false
			}
			if a.cfg.SetOfLine(al) != set {
				return true
			}
			for _, d := range distinct {
				if d == al {
					return true
				}
			}
			distinct = append(distinct, al)
			culprits = append(culprits, ri)
			if len(distinct) >= k {
				evicted = true
				return false
			}
			return true
		})
		if evicted {
			return ReplacementMiss, append([]*ir.NRef(nil), culprits...)
		}
		return Hit, []*ir.NRef{v.Producer}
	}
	return ColdMiss, nil
}

// RefReport is the per-reference analysis result.
type RefReport struct {
	Ref      *ir.NRef
	Volume   int64 // |RIS_R|
	Analyzed int64 // points classified (== Volume unless sampled)
	Sampled  bool
	Hits     int64
	Cold     int64
	Repl     int64
	// Tier records which rung of the degradation ladder produced this
	// reference's numbers.
	Tier Tier
	// Complete reports that the reference's analysis ran to completion at
	// its Tier; false means the run was interrupted mid-reference and the
	// counts cover only a prefix (or sample prefix) of the RIS.
	Complete bool
	// Ratio holds the closed-form miss ratio when Tier is
	// TierProbabilistic (no pointwise counts exist there).
	Ratio float64
	// ClosedForm reports that the counts came from O(1) closed-form
	// evaluation rather than from enumerating (or sampling) this
	// reference's iteration space: either the scaling tier's
	// quasi-polynomials in the problem size, or the geometry-parametric
	// tier's per-residue fit in the number of sets (Report.Scaling and
	// Report.Geom say which).
	ClosedForm bool
}

// Misses returns cold + replacement misses among analysed points.
func (r *RefReport) Misses() int64 { return r.Cold + r.Repl }

// MissRatio returns the reference's estimated miss ratio in [0, 1].
func (r *RefReport) MissRatio() float64 {
	if r.Tier == TierProbabilistic {
		return r.Ratio
	}
	if r.Analyzed == 0 {
		return 0
	}
	return float64(r.Misses()) / float64(r.Analyzed)
}

// HalfWidth returns the realised confidence half-width of the reference's
// miss ratio under the given plan (0 for a full census).
func (r *RefReport) HalfWidth(plan sampling.Plan) float64 {
	if !r.Sampled {
		return 0
	}
	return plan.HalfWidth(r.MissRatio(), int(r.Analyzed), r.Volume)
}

// Report aggregates the analysis of a whole program.
type Report struct {
	Config  cache.Config
	Refs    []*RefReport
	Elapsed time.Duration
	Sampled bool

	// Provenance: which tiers produced the numbers and what they cost.

	// Tier is the cheapest (least exact) tier used by any reference, i.e.
	// the weakest guarantee in the report.
	Tier Tier
	// Degraded reports that at least one reference was produced by a
	// cheaper tier than requested because the budget ran out.
	Degraded bool
	// BudgetSpent records the resources consumed by the run.
	BudgetSpent budget.Spent
	// Scaling carries the closed-form scaling tier's provenance when the
	// report came from a ScalingSolver (nil otherwise).
	Scaling *ScalingInfo
	// Geom carries the geometry-parametric tier's provenance when
	// SolveBatch planned this candidate into a geometry column (nil when
	// the tier never considered it).
	Geom *GeomInfo
}

// TotalAccesses returns Σ_R |RIS_R|, the program's total access count.
func (rep *Report) TotalAccesses() int64 {
	var t int64
	for _, r := range rep.Refs {
		t += r.Volume
	}
	return t
}

// EstimatedMisses returns Σ_R |RIS_R|·ratio_R.
func (rep *Report) EstimatedMisses() float64 {
	var m float64
	for _, r := range rep.Refs {
		m += float64(r.Volume) * r.MissRatio()
	}
	return m
}

// MissRatio returns the loop-nest miss ratio of Fig. 6 in percent:
// Σ_R |RIS_R|·ratio_R / Σ_R |RIS_R|.
func (rep *Report) MissRatio() float64 {
	t := rep.TotalAccesses()
	if t == 0 {
		return 0
	}
	return 100 * rep.EstimatedMisses() / float64(t)
}

// MissRatioBound returns the confidence half-width of the aggregate miss
// ratio in percentage points under the plan: the access-weighted
// combination of the per-reference half-widths (conservative: per-ref
// errors are treated as perfectly correlated, so the true half-width is
// smaller).
func (rep *Report) MissRatioBound(plan sampling.Plan) float64 {
	t := rep.TotalAccesses()
	if t == 0 {
		return 0
	}
	var b float64
	for _, r := range rep.Refs {
		b += float64(r.Volume) * r.HalfWidth(plan)
	}
	return 100 * b / float64(t)
}

// ExactMisses returns the integral miss count when every point was
// analysed (FindMisses); it is meaningless for sampled reports.
func (rep *Report) ExactMisses() int64 {
	var m int64
	for _, r := range rep.Refs {
		m += r.Misses()
	}
	return m
}

// Coverage returns the fraction of the program's accesses that were
// classified pointwise (1.0 for a complete FindMisses; lower when the run
// was sampled, interrupted, or degraded to the probabilistic tier).
func (rep *Report) Coverage() float64 {
	t := rep.TotalAccesses()
	if t == 0 {
		return 0
	}
	var an int64
	for _, r := range rep.Refs {
		an += r.Analyzed
	}
	return float64(an) / float64(t)
}

// CompleteRefs returns how many references ran to completion at their tier.
func (rep *Report) CompleteRefs() int {
	n := 0
	for _, r := range rep.Refs {
		if r.Complete {
			n++
		}
	}
	return n
}

// finalize stamps aggregate provenance once the per-ref reports settled.
func (rep *Report) finalize(m *budget.Meter, start time.Time) {
	rep.Tier = TierExact
	for _, r := range rep.Refs {
		if r.Tier > rep.Tier {
			rep.Tier = r.Tier
		}
		if r.Sampled {
			rep.Sampled = true
		}
	}
	rep.BudgetSpent = m.Spent()
	rep.Elapsed = time.Since(start)
}

// FindMisses analyses every iteration point of every reference (the exact
// algorithm of Fig. 6, left).
func (a *Analyzer) FindMisses() *Report {
	rep, _ := a.FindMissesCtx(context.Background(), budget.Budget{})
	return rep
}

// FindMissesCtx is FindMisses under a context and a budget. With a zero
// budget and a background context it is bit-identical to FindMisses. On
// cancellation it returns the coherent partial report together with
// ErrCanceled. On budget exhaustion it degrades: references the exact pass
// did not finish are re-analysed by EstimateMisses under the paper's
// widened fallback interval, and if even that exhausts its grace
// allowance, by the closed-form probabilistic baseline — unless the budget
// sets NoFallback, in which case the partial report is returned with
// ErrBudgetExceeded.
func (a *Analyzer) FindMissesCtx(ctx context.Context, b budget.Budget) (*Report, error) {
	start := time.Now()
	col := obs.FromContext(ctx)
	ctx, span := obs.StartSpan(ctx, "solve.exact")
	defer span.End()
	m := budget.NewMeter(ctx, b)
	rep := &Report{Config: a.cfg}
	workers := a.opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	span.SetAttr("workers", workers)
	span.SetAttr("refs", len(a.np.Refs))
	if workers > 1 && len(a.np.Refs) > 0 {
		rep.Refs, _ = a.findTiled(m, workers, col)
	} else {
		var totVol int64
		if col != nil {
			a.warm()
			for _, r := range a.np.Refs {
				totVol += a.spaces[r.Stmt].Volume()
			}
		}
		rep.Refs, _ = a.perRefBudget(m, func(c *classifier, r *ir.NRef, rr *RefReport, p *budget.Probe) error {
			rr.Tier = TierExact
			perr := a.runTile(c, r, poly.FullTile(), rr, p)
			if perr == nil {
				rr.Complete = true
			}
			col.AddProgress("solve.exact", rr.Analyzed, totVol, r.ID)
			return perr
		})
	}
	return a.degrade(ctx, m, rep, start, sampling.DefaultFallback)
}

// guardWorker is deferred at the top of every solver pool goroutine: it
// converts a panic into a tripped meter instead of a process crash. The
// other workers observe the trip at their next checkpoint and stand down,
// the merge leaves the crashed item incomplete, and the caller gets the
// classified panic error — which the degradation ladder refuses to paper
// over (a crashed solve's partial counts carry no guarantee). This is the
// foundation of the serving layer's per-job panic isolation.
func guardWorker(m *budget.Meter) {
	if r := recover(); r != nil {
		m.Trip(cerr.FromPanic(r))
	}
}

// tileFactor is the work-queue overdecomposition ratio of the tiled exact
// solver: the iteration spaces are split into about tileFactor tiles per
// worker, so one dominant nest still spreads across all workers while the
// per-tile scheduling overhead stays negligible.
const tileFactor = 4

// runTile classifies every iteration point of r inside tile t, summing the
// outcomes into rr. The full tile covers the whole RIS (the sequential
// exact pass is runTile over the full tile).
func (a *Analyzer) runTile(c *classifier, r *ir.NRef, t poly.Tile, rr *RefReport, p *budget.Probe) error {
	if !a.opt.NoSymbolic {
		if sym := a.symOf[r]; sym.usable() {
			return a.runTileSym(c, r, sym, t, rr, p)
		}
	}
	var perr error
	before := rr.Analyzed
	a.spaces[r.Stmt].EnumerateTile(t, func(idx []int64) bool {
		out, scanned := c.classify(r, idx)
		rr.Analyzed++
		switch out {
		case Hit:
			rr.Hits++
		case ColdMiss:
			rr.Cold++
		case ReplacementMiss:
			rr.Repl++
		}
		if p != nil {
			if perr = p.Check(1, scanned); perr != nil {
				return false
			}
		}
		return true
	})
	mTilesSolved.Inc()
	mPointsClassed.Add(rr.Analyzed - before)
	mPointsEnumerated.Add(rr.Analyzed - before)
	return perr
}

// runTileLabeled is runTile behind an optional pprof label pair
// ("ref", "tile"), controlled by Options.ProfileLabels, so CPU profiles
// attribute samples to individual work items.
func (a *Analyzer) runTileLabeled(c *classifier, ref int, t poly.Tile, rr *RefReport, p *budget.Probe) error {
	r := a.np.Refs[ref]
	if !a.opt.ProfileLabels {
		return a.runTile(c, r, t, rr, p)
	}
	var err error
	pprof.Do(context.Background(), pprof.Labels("ref", r.ID, "tile", tileLabel(t)), func(context.Context) {
		err = a.runTile(c, r, t, rr, p)
	})
	return err
}

// tileLabel renders a tile as a short profile label value.
func tileLabel(t poly.Tile) string {
	if t.Full() {
		return "full"
	}
	return "d" + strconv.Itoa(t.Dim) + ":" + strconv.FormatInt(t.Lo, 10) + "-" + strconv.FormatInt(t.Hi, 10)
}

// findTiled is the tile-parallel exact solver: every reference's RIS is
// split into tiles in proportion to its share of the program's points, the
// (reference, tile) items feed a worker pool, and the per-tile partial
// counts are summed into per-reference reports. Because the tiles of one
// reference partition its RIS and every aggregate is a sum, the merged
// report is bit-identical to the sequential solver's regardless of worker
// count or scheduling order. A reference is Complete only if all its tiles
// ran to completion. Budget checkpoints keep iteration-point granularity
// via per-worker probes, exactly as in the per-reference fan-out.
func (a *Analyzer) findTiled(m *budget.Meter, workers int, col *obs.Collector) ([]*RefReport, error) {
	a.warm()
	out := make([]*RefReport, len(a.np.Refs))
	var totVol int64
	for i, r := range a.np.Refs {
		out[i] = &RefReport{Ref: r, Volume: a.spaces[r.Stmt].Volume(), Tier: TierExact}
		totVol += out[i].Volume
	}
	type tileItem struct {
		ref  int
		tile poly.Tile
		part RefReport // per-tile partial counts, merged after the pool drains
		done bool
	}
	target := int64(tileFactor * workers)
	var items []*tileItem
	for i, r := range a.np.Refs {
		n := 1
		if totVol > 0 {
			n = int((out[i].Volume*target + totVol - 1) / totVol) // ceil of the proportional share
			if n < 1 {
				n = 1
			}
		}
		// Keep the reference's best replication dimension contiguous so
		// tiling does not truncate symbolic runs. The avoidance choice is
		// independent of Options.NoSymbolic so both modes tile identically.
		avoid := -1
		if sym := a.symOf[r]; sym != nil {
			avoid = sym.avoid
		}
		for _, t := range a.spaces[r.Stmt].TilesAvoiding(n, avoid) {
			items = append(items, &tileItem{ref: i, tile: t})
		}
	}
	limited := !m.Unlimited()
	queue := make(chan *tileItem, len(items))
	for _, it := range items {
		queue <- it
	}
	close(queue)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer guardWorker(m)
			c := a.newClassifier()
			defer c.release()
			var p *budget.Probe
			if limited {
				p = m.Probe()
			}
			for it := range queue {
				if m.Err() != nil {
					break // another worker tripped the meter
				}
				if err := a.runTileLabeled(c, it.ref, it.tile, &it.part, p); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					break
				}
				it.done = true
				col.AddProgress("solve.exact", it.part.Analyzed, totVol, a.np.Refs[it.ref].ID)
			}
			if p != nil {
				p.Drain()
			}
		}()
	}
	wg.Wait()
	// Deterministic merge: per-reference sums over its tiles, in item order.
	complete := make([]bool, len(out))
	for i := range complete {
		complete[i] = true
	}
	for _, it := range items {
		rr := out[it.ref]
		rr.Analyzed += it.part.Analyzed
		rr.Hits += it.part.Hits
		rr.Cold += it.part.Cold
		rr.Repl += it.part.Repl
		if !it.done {
			complete[it.ref] = false
		}
	}
	for i := range out {
		out[i].Complete = complete[i]
	}
	return out, firstErr
}

// EstimateMisses analyses a statistically chosen sample of each reference's
// RIS (the algorithm of Fig. 6, right): a reference whose RIS is too small
// to achieve the requested (c, w) falls back to the paper's default
// (90%, 0.15); a RIS too small even for that is analysed exhaustively.
func (a *Analyzer) EstimateMisses(plan sampling.Plan) (*Report, error) {
	return a.EstimateMissesCtx(context.Background(), budget.Budget{}, plan)
}

// EstimateMissesCtx is EstimateMisses under a context and a budget. With a
// zero budget it is bit-identical to EstimateMisses. On cancellation it
// returns the partial report with ErrCanceled; on budget exhaustion it
// degrades unfinished references to the probabilistic baseline (or fails
// with ErrBudgetExceeded under NoFallback).
func (a *Analyzer) EstimateMissesCtx(ctx context.Context, b budget.Budget, plan sampling.Plan) (*Report, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	col := obs.FromContext(ctx)
	ctx, span := obs.StartSpan(ctx, "solve.sampled")
	defer span.End()
	m := budget.NewMeter(ctx, b)
	rep := &Report{Config: a.cfg, Sampled: true}
	work := a.sampleWorker(plan)
	var planned int64
	if col != nil {
		planned = a.plannedSample(plan)
	}
	span.SetAttr("refs", len(a.np.Refs))
	rep.Refs, _ = a.perRefBudget(m, func(c *classifier, r *ir.NRef, rr *RefReport, p *budget.Probe) error {
		err := work(c, r, rr, p)
		col.AddProgress("solve.sampled", rr.Analyzed, planned, r.ID)
		return err
	})
	// The exact rung is already behind us: degrade straight to the
	// probabilistic tier for whatever the sampling pass did not finish.
	return a.degrade(ctx, m, rep, start, plan)
}

// plannedSample returns the a-priori total of points the sampling pass
// will classify across all references under plan (the denominator of the
// progress stream; the adaptive sampler may stop short of it).
func (a *Analyzer) plannedSample(plan sampling.Plan) int64 {
	a.warm()
	var tot int64
	for _, r := range a.np.Refs {
		tot += plannedFor(plan, a.spaces[r.Stmt].Volume())
	}
	return tot
}

// plannedFor returns how many points the sampling pass will classify for
// one reference of the given volume under plan (mirroring sampleWorker's
// plan selection).
func plannedFor(plan sampling.Plan, vol int64) int64 {
	switch {
	case plan.Achievable(vol):
		return int64(plan.SizeFor(vol))
	case sampling.DefaultFallback.Achievable(vol):
		return int64(sampling.DefaultFallback.SizeFor(vol))
	default:
		return vol
	}
}

// sampleWorker returns the per-reference sampling pass of Fig. 6 (right)
// as a perRefBudget work function.
func (a *Analyzer) sampleWorker(plan sampling.Plan) func(*classifier, *ir.NRef, *RefReport, *budget.Probe) error {
	seed := a.opt.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF
	}
	return func(c *classifier, r *ir.NRef, rr *RefReport, p *budget.Probe) error {
		// Per-reference RNG: deterministic regardless of worker count.
		rng := rand.New(rand.NewSource(seed ^ int64(r.Seq)*0x9E3779B9))
		sp := a.spaces[r.Stmt]
		vol := rr.Volume
		rr.Tier = TierSampled
		splan := plan
		capN := 0
		switch {
		case plan.Achievable(vol):
			rr.Sampled = true
			capN = plan.SizeFor(vol)
		case sampling.DefaultFallback.Achievable(vol):
			rr.Sampled = true
			splan, capN = sampling.DefaultFallback, sampling.DefaultFallback.SizeFor(vol)
			sampling.FallbackPlans.Inc()
		default:
			// Analyse all points: a full census of a small RIS.
			rr.Tier = TierExact
		}
		var perr error
		classify := func(idx []int64) bool {
			out, scanned := c.classify(r, idx)
			rr.Analyzed++
			switch out {
			case Hit:
				rr.Hits++
			case ColdMiss:
				rr.Cold++
			case ReplacementMiss:
				rr.Repl++
			}
			if p != nil {
				if perr = p.Check(1, scanned); perr != nil {
					return false
				}
			}
			return true
		}
		switch {
		case rr.Sampled && a.opt.Adaptive:
			sampleAdaptive(sp, rng, splan, vol, capN, rr, classify)
		case rr.Sampled:
			for _, pt := range sp.Sample(rng, capN) {
				if !classify(pt) {
					break
				}
			}
		default:
			sp.Enumerate(classify)
		}
		if perr == nil {
			rr.Complete = true
		}
		mPointsClassed.Add(rr.Analyzed)
		if rr.Sampled {
			sampling.Draws.Add(rr.Analyzed)
		}
		return perr
	}
}

// Adaptive sampling tuning: points are drawn adaptiveChunk at a time (so
// the RNG stream matches the non-adaptive sampler chunk by chunk while the
// rejection phase succeeds) and the stopping rule is consulted only from
// adaptiveMin classified points on. The real floor is the Wilson interval
// itself: at an all-hit or all-miss prefix it still needs ≈ z²(1−W)/(2W)
// points before it can meet ±W, so adaptiveMin merely guards the rule's
// small-n corner.
const (
	adaptiveChunk = 32
	adaptiveMin   = 8
)

// sampleAdaptive is the sequential-sampling inner loop of EstimateMisses
// under Options.Adaptive: draw a chunk, classify point by point, and stop
// as soon as the Wilson score interval of the running miss ratio (read
// back from rr, which classify updates) fits the plan's half-width. capN,
// the a-priori sample size, remains the hard cap, so adaptive never draws
// more than the non-adaptive sampler. The classify callback returns false
// to abort (budget exhausted).
func sampleAdaptive(sp *poly.Space, rng *rand.Rand, plan sampling.Plan, vol int64, capN int, rr *RefReport, classify func([]int64) bool) {
	drawn := 0
	for drawn < capN {
		chunk := adaptiveChunk
		if capN-drawn < chunk {
			chunk = capN - drawn
		}
		pts := sp.Sample(rng, chunk)
		drawn += chunk
		for _, pt := range pts {
			if !classify(pt) {
				return
			}
			if rr.Analyzed >= adaptiveMin &&
				plan.WilsonHalfWidth(rr.MissRatio(), int(rr.Analyzed), vol) <= plan.W {
				sampling.EarlyStops.Inc()
				return
			}
		}
		if len(pts) == 0 {
			return // empty space; cannot make progress
		}
	}
}

// degrade inspects the outcome of a solver pass and walks the remaining
// rungs of the ladder for every incomplete reference. fallbackPlan is the
// sampling plan the TierSampled rung uses (the paper's widened fallback
// interval when coming from FindMisses).
func (a *Analyzer) degrade(ctx context.Context, m *budget.Meter, rep *Report, start time.Time, fallbackPlan sampling.Plan) (*Report, error) {
	err := m.Err()
	if err == nil {
		// Completed within budget; nothing to degrade. (Individual refs
		// are all complete here by construction.)
		rep.finalize(m, start)
		return rep, nil
	}
	// Cancellation means stop, not degrade; a panic or injected transient
	// fault means the counts carry no guarantee — degrading would launder a
	// crash into a plausible-looking number. All three surface typed.
	if errors.Is(err, cerr.ErrCanceled) || errors.Is(err, cerr.ErrPanic) ||
		errors.Is(err, cerr.ErrTransient) || m.NoFallback() {
		rep.finalize(m, start)
		return rep, err
	}
	_, dspan := obs.StartSpan(ctx, "degrade")
	defer dspan.End()
	// TierSampled rung, for references the exact pass left unfinished.
	// Skip it if this pass already was the sampling pass.
	firstIncompleteTier := TierProbabilistic
	for _, rr := range rep.Refs {
		if !rr.Complete && rr.Tier < firstIncompleteTier {
			firstIncompleteTier = rr.Tier
		}
	}
	if firstIncompleteTier == TierExact {
		m.Grace()
		serr := a.resampleIncomplete(m, rep, fallbackPlan)
		rep.Degraded = true
		if serr != nil && errors.Is(serr, cerr.ErrCanceled) {
			rep.finalize(m, start)
			return rep, serr
		}
	}
	// Probabilistic rung: closed-form, no iteration walks, cannot exhaust.
	a.probIncomplete(rep)
	rep.Degraded = true
	rep.finalize(m, start)
	dspan.SetAttr("tier", rep.Tier.String())
	return rep, nil
}

// resampleIncomplete re-analyses every incomplete reference with the
// sampling solver under the (typically widened) plan, discarding the
// biased partial counts of the interrupted exact prefix.
func (a *Analyzer) resampleIncomplete(m *budget.Meter, rep *Report, plan sampling.Plan) error {
	work := a.sampleWorker(plan)
	c := a.newClassifier()
	defer c.release()
	p := m.Probe()
	defer p.Drain()
	for _, rr := range rep.Refs {
		if rr.Complete {
			continue
		}
		rr.Analyzed, rr.Hits, rr.Cold, rr.Repl = 0, 0, 0, 0
		rr.Sampled = false
		if err := work(c, rr.Ref, rr, p); err != nil {
			// Leave this and the remaining refs incomplete; the caller
			// drops them to the probabilistic rung.
			rr.Analyzed, rr.Hits, rr.Cold, rr.Repl = 0, 0, 0, 0
			rr.Sampled = false
			rr.Complete = false
			return err
		}
	}
	return nil
}

// probIncomplete resolves every still-incomplete reference with the
// Fraguela-style probabilistic baseline, reusing the analyzer's reuse
// vectors (same line geometry, so the vectors transfer directly).
func (a *Analyzer) probIncomplete(rep *Report) {
	todo := false
	for _, rr := range rep.Refs {
		if !rr.Complete {
			todo = true
			break
		}
	}
	if !todo {
		return
	}
	est := prob.NewEstimator(a.np, a.cfg, prob.Options{
		Reuse:   a.opt.Reuse,
		Vectors: a.vecs,
		Seed:    a.opt.Seed,
	})
	for _, rr := range rep.Refs {
		if rr.Complete {
			continue
		}
		rr.Tier = TierProbabilistic
		rr.Ratio = est.RefRatio(rr.Ref)
		rr.Analyzed, rr.Hits, rr.Cold, rr.Repl = 0, 0, 0, 0
		rr.Sampled = false
		rr.Complete = true
	}
}

// perRefBudget runs work over every reference, possibly in parallel, under
// the meter. Each worker goroutine owns a budget probe (nil when the meter
// is unlimited, so the no-budget path costs one nil check per point) and
// its own classifier, so workers share only the analyzer's immutable state.
// When one worker trips the meter, the others stop at their next checkpoint
// and unprocessed references are left incomplete. All lazily built shared
// state (space volumes, linearised addresses) is warmed sequentially first
// so the workers only read.
func (a *Analyzer) perRefBudget(m *budget.Meter, work func(c *classifier, r *ir.NRef, rr *RefReport, p *budget.Probe) error) ([]*RefReport, error) {
	a.warm()
	out := make([]*RefReport, len(a.np.Refs))
	for i, r := range a.np.Refs {
		out[i] = &RefReport{Ref: r, Volume: a.spaces[r.Stmt].Volume()}
	}
	limited := !m.Unlimited()
	workers := a.opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(a.np.Refs) < 2 {
		c := a.newClassifier()
		defer c.release()
		var firstErr error
		for i, r := range a.np.Refs {
			var p *budget.Probe
			if limited {
				p = m.Probe()
			}
			err := work(c, r, out[i], p)
			if p != nil {
				p.Drain()
			}
			if err != nil {
				firstErr = err
				break
			}
		}
		return out, firstErr
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int, len(a.np.Refs))
	for i := range a.np.Refs {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer guardWorker(m)
			c := a.newClassifier()
			defer c.release()
			var p *budget.Probe
			if limited {
				p = m.Probe()
			}
			for i := range next {
				if m.Err() != nil {
					return // another worker tripped the meter
				}
				if err := work(c, a.np.Refs[i], out[i], p); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					if p != nil {
						p.Drain()
					}
					return
				}
			}
			if p != nil {
				p.Drain()
			}
		}()
	}
	wg.Wait()
	return out, firstErr
}

// warm materialises every lazy cache the workers would otherwise race on:
// space volumes, bounding boxes and linearised reference addresses.
func (a *Analyzer) warm() {
	a.warmOnce.Do(func() {
		idx := make([]int64, a.np.Depth)
		for _, sp := range a.spaces {
			sp.Volume()
			sp.BoundingBox()
		}
		for _, r := range a.np.Refs {
			r.AddressAt(idx)
		}
		// Symbolic-region eligibility is computed even under NoSymbolic:
		// the tiler consults it (TilesAvoiding) either way, so budgeted
		// symbolic and non-symbolic runs see identical tile sequences and
		// hence identical checkpoint order. A Prepared-built analyzer
		// arrives with the shared per-line table already stamped.
		if a.symOf == nil {
			a.symOf = buildSymInfo(a.np, a.spaces, a.vecs, a.memoInfo, a.dyn, a.cfg.LineBytes)
		}
	})
}
