// Package cme implements the cache miss equations of §4: cold (compulsory)
// equations and replacement equations over reuse vectors, together with the
// two solvers of Fig. 6 — FindMisses, which classifies every iteration
// point of every reference, and EstimateMisses, which classifies a
// statistically chosen sample.
//
// Classification of one access follows §4.2 exactly: the reference's reuse
// vectors are tried in increasing lexicographic order; a point that solves
// the cold equation along the current vector stays indeterminate and falls
// through to the next vector; otherwise the replacement equation along the
// vector decides hit or miss (k distinct set contentions evict the line in
// a k-way cache). Points indeterminate after all vectors are cold misses.
package cme

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/poly"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

// Outcome classifies one access.
type Outcome int

// Access outcomes.
const (
	Hit Outcome = iota
	ColdMiss
	ReplacementMiss
)

func (o Outcome) String() string {
	switch o {
	case Hit:
		return "hit"
	case ColdMiss:
		return "cold"
	case ReplacementMiss:
		return "replacement"
	}
	return "?"
}

// Options tunes the analysis.
type Options struct {
	// Reuse configures reuse-vector generation.
	Reuse reuse.Options
	// PaperLRU, when true, uses the paper's replacement equations
	// verbatim: k distinct set contentions anywhere in the reuse interval
	// evict the line. The default (false) additionally resets the
	// contention count whenever the reused line itself is touched inside
	// the interval, which models LRU exactly and lets FindMisses match
	// the simulator bit-for-bit when reuse information is complete.
	PaperLRU bool
	// Seed seeds the sampling RNG (EstimateMisses); 0 means a fixed
	// default so runs are reproducible.
	Seed int64
	// Vectors, when non-nil, supplies precomputed reuse vectors instead of
	// regenerating them. Reuse vectors depend only on the line geometry
	// (not associativity), so analyses of the same program at several
	// associativities can share one generation pass (see reuse.Generate).
	Vectors map[*ir.NRef][]*reuse.Vector
	// Workers sets the number of goroutines classifying references in
	// FindMisses / EstimateMisses. 0 uses GOMAXPROCS; 1 runs sequentially.
	// Results are bit-identical at any worker count: sampling RNGs are
	// seeded per reference.
	Workers int
}

// Analyzer holds the per-program analysis state: reuse vectors, reference
// iteration spaces and the cache configuration.
type Analyzer struct {
	np       *ir.NProgram
	cfg      cache.Config
	opt      Options
	vecs     map[*ir.NRef][]*reuse.Vector
	dyn      map[*ir.NRef][]*reuse.DynamicPair
	spaces   map[*ir.NStmt]*poly.Space
	warmOnce sync.Once
}

// New prepares an analyzer: it generates reuse vectors for every reference
// and builds the RIS of every statement. Arrays must be laid out
// (internal/layout) before analysis.
func New(np *ir.NProgram, cfg cache.Config, opt Options) (*Analyzer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for _, arr := range np.Arrays {
		if arr.Base < 0 {
			return nil, fmt.Errorf("cme: array %s has no base address; run layout first", arr.Name)
		}
	}
	vecs := opt.Vectors
	if vecs == nil {
		vecs = reuse.Generate(np, cfg, opt.Reuse)
	}
	a := &Analyzer{np: np, cfg: cfg, opt: opt,
		vecs:   vecs,
		spaces: map[*ir.NStmt]*poly.Space{},
	}
	if opt.Reuse.NonUniform {
		a.dyn = reuse.GenerateDynamic(np)
	}
	for _, s := range np.Stmts {
		a.spaces[s] = poly.FromStmt(s)
	}
	return a, nil
}

// Vectors exposes the reuse vectors of a reference (for reporting).
func (a *Analyzer) Vectors(r *ir.NRef) []*reuse.Vector { return a.vecs[r] }

// Space exposes the RIS of a statement.
func (a *Analyzer) Space(s *ir.NStmt) *poly.Space { return a.spaces[s] }

// Classify decides the outcome of reference r's access at iteration idx by
// solving the cold and replacement equations along r's reuse vectors.
func (a *Analyzer) Classify(r *ir.NRef, idx []int64) Outcome {
	line := a.cfg.MemLine(r.AddressAt(idx))
	set := a.cfg.SetOfLine(line)
	k := a.cfg.Assoc
	consumer := trace.Time{Label: r.Stmt.Label, Idx: idx, Seq: r.Seq}

	var distinct []int64 // distinct contending lines (reused per vector)
	for _, v := range a.vecs[r] {
		plabel, pidx := v.ProducerPoint(idx)
		// Cold equation: the producer access must exist ...
		if !a.spaces[v.Producer.Stmt].Contains(pidx) {
			continue
		}
		// ... and touch the same memory line.
		if a.cfg.MemLine(v.Producer.AddressAt(pidx)) != line {
			continue
		}
		// Replacement equation along v: count distinct memory lines that
		// contend for the cache set between the producer and the consumer.
		producer := trace.Time{Label: plabel, Idx: pidx, Seq: v.Producer.Seq}
		distinct = distinct[:0]
		evicted := false
		if a.opt.PaperLRU {
			// The paper's equations verbatim: k distinct set contentions
			// anywhere in the interval evict the line.
			trace.VisitBetween(a.np, producer, consumer, func(ri *ir.NRef, j []int64) bool {
				al := a.cfg.MemLine(ri.AddressAt(j))
				if al == line || a.cfg.SetOfLine(al) != set {
					return true
				}
				for _, d := range distinct {
					if d == al {
						return true
					}
				}
				distinct = append(distinct, al)
				if len(distinct) >= k {
					evicted = true
					return false
				}
				return true
			})
		} else {
			// Exact LRU: scan backwards from the consumer; the first touch
			// of the line is its most recent fetch, and the line is evicted
			// iff k distinct other lines hit the set after that fetch.
			trace.VisitBetweenReverse(a.np, producer, consumer, func(ri *ir.NRef, j []int64) bool {
				al := a.cfg.MemLine(ri.AddressAt(j))
				if al == line {
					return false // most recent fetch found; the count stands
				}
				if a.cfg.SetOfLine(al) != set {
					return true
				}
				for _, d := range distinct {
					if d == al {
						return true
					}
				}
				distinct = append(distinct, al)
				if len(distinct) >= k {
					evicted = true
					return false
				}
				return true
			})
		}
		if evicted {
			return ReplacementMiss
		}
		return Hit
	}
	if out, decided := a.classifyDynamic(r, idx, line, set, k, consumer); decided {
		return out
	}
	return ColdMiss
}

// classifyDynamic resolves non-uniformly generated reuse (§8 future work)
// once every static reuse vector has fallen through: among the dynamic
// producer candidates, the lexicographically latest valid producer
// iteration decides via the usual replacement walk.
func (a *Analyzer) classifyDynamic(r *ir.NRef, idx []int64, line, set int64, k int, consumer trace.Time) (Outcome, bool) {
	if a.dyn == nil {
		return ColdMiss, false
	}
	var best trace.Time
	found := false
	for _, d := range a.dyn[r] {
		q, ok := d.ProducerPoint(idx)
		if !ok {
			continue
		}
		if !a.spaces[d.Producer.Stmt].Contains(q) {
			continue
		}
		pt := trace.Time{Label: d.Producer.Stmt.Label, Idx: q, Seq: d.Producer.Seq}
		if trace.Compare(pt, consumer) >= 0 {
			continue
		}
		// Same element by construction, hence the same memory line; the
		// cold equation is satisfied.
		if !found || trace.Compare(pt, best) > 0 {
			best = pt
			found = true
		}
	}
	if !found {
		return ColdMiss, false
	}
	var distinct []int64
	evicted := false
	trace.VisitBetweenReverse(a.np, best, consumer, func(ri *ir.NRef, j []int64) bool {
		al := a.cfg.MemLine(ri.AddressAt(j))
		if al == line {
			return false
		}
		if a.cfg.SetOfLine(al) != set {
			return true
		}
		for _, dd := range distinct {
			if dd == al {
				return true
			}
		}
		distinct = append(distinct, al)
		if len(distinct) >= k {
			evicted = true
			return false
		}
		return true
	})
	if evicted {
		return ReplacementMiss, true
	}
	return Hit, true
}

// ClassifyDetail is Classify plus attribution: for a replacement miss it
// reports the references whose accesses supplied the k distinct contending
// lines (the paper's follow-up work [10] uses exactly this information for
// CME-driven diagnosis); for a hit it reports the producer whose line was
// reused.
func (a *Analyzer) ClassifyDetail(r *ir.NRef, idx []int64) (Outcome, []*ir.NRef) {
	line := a.cfg.MemLine(r.AddressAt(idx))
	set := a.cfg.SetOfLine(line)
	k := a.cfg.Assoc
	consumer := trace.Time{Label: r.Stmt.Label, Idx: idx, Seq: r.Seq}

	var distinct []int64
	var culprits []*ir.NRef
	for _, v := range a.vecs[r] {
		plabel, pidx := v.ProducerPoint(idx)
		if !a.spaces[v.Producer.Stmt].Contains(pidx) {
			continue
		}
		if a.cfg.MemLine(v.Producer.AddressAt(pidx)) != line {
			continue
		}
		producer := trace.Time{Label: plabel, Idx: pidx, Seq: v.Producer.Seq}
		distinct, culprits = distinct[:0], culprits[:0]
		evicted := false
		trace.VisitBetweenReverse(a.np, producer, consumer, func(ri *ir.NRef, j []int64) bool {
			al := a.cfg.MemLine(ri.AddressAt(j))
			if al == line {
				return false
			}
			if a.cfg.SetOfLine(al) != set {
				return true
			}
			for _, d := range distinct {
				if d == al {
					return true
				}
			}
			distinct = append(distinct, al)
			culprits = append(culprits, ri)
			if len(distinct) >= k {
				evicted = true
				return false
			}
			return true
		})
		if evicted {
			return ReplacementMiss, append([]*ir.NRef(nil), culprits...)
		}
		return Hit, []*ir.NRef{v.Producer}
	}
	return ColdMiss, nil
}

// RefReport is the per-reference analysis result.
type RefReport struct {
	Ref      *ir.NRef
	Volume   int64 // |RIS_R|
	Analyzed int64 // points classified (== Volume unless sampled)
	Sampled  bool
	Hits     int64
	Cold     int64
	Repl     int64
}

// Misses returns cold + replacement misses among analysed points.
func (r *RefReport) Misses() int64 { return r.Cold + r.Repl }

// MissRatio returns the reference's estimated miss ratio in [0, 1].
func (r *RefReport) MissRatio() float64 {
	if r.Analyzed == 0 {
		return 0
	}
	return float64(r.Misses()) / float64(r.Analyzed)
}

// HalfWidth returns the realised confidence half-width of the reference's
// miss ratio under the given plan (0 for a full census).
func (r *RefReport) HalfWidth(plan sampling.Plan) float64 {
	if !r.Sampled {
		return 0
	}
	return plan.HalfWidth(r.MissRatio(), int(r.Analyzed), r.Volume)
}

// Report aggregates the analysis of a whole program.
type Report struct {
	Config  cache.Config
	Refs    []*RefReport
	Elapsed time.Duration
	Sampled bool
}

// TotalAccesses returns Σ_R |RIS_R|, the program's total access count.
func (rep *Report) TotalAccesses() int64 {
	var t int64
	for _, r := range rep.Refs {
		t += r.Volume
	}
	return t
}

// EstimatedMisses returns Σ_R |RIS_R|·ratio_R.
func (rep *Report) EstimatedMisses() float64 {
	var m float64
	for _, r := range rep.Refs {
		m += float64(r.Volume) * r.MissRatio()
	}
	return m
}

// MissRatio returns the loop-nest miss ratio of Fig. 6 in percent:
// Σ_R |RIS_R|·ratio_R / Σ_R |RIS_R|.
func (rep *Report) MissRatio() float64 {
	t := rep.TotalAccesses()
	if t == 0 {
		return 0
	}
	return 100 * rep.EstimatedMisses() / float64(t)
}

// MissRatioBound returns the confidence half-width of the aggregate miss
// ratio in percentage points under the plan: the access-weighted
// combination of the per-reference half-widths (conservative: per-ref
// errors are treated as perfectly correlated, so the true half-width is
// smaller).
func (rep *Report) MissRatioBound(plan sampling.Plan) float64 {
	t := rep.TotalAccesses()
	if t == 0 {
		return 0
	}
	var b float64
	for _, r := range rep.Refs {
		b += float64(r.Volume) * r.HalfWidth(plan)
	}
	return 100 * b / float64(t)
}

// ExactMisses returns the integral miss count when every point was
// analysed (FindMisses); it is meaningless for sampled reports.
func (rep *Report) ExactMisses() int64 {
	var m int64
	for _, r := range rep.Refs {
		m += r.Misses()
	}
	return m
}

// FindMisses analyses every iteration point of every reference (the exact
// algorithm of Fig. 6, left).
func (a *Analyzer) FindMisses() *Report {
	start := time.Now()
	rep := &Report{Config: a.cfg}
	rep.Refs = a.perRef(func(r *ir.NRef, rr *RefReport) {
		a.spaces[r.Stmt].Enumerate(func(idx []int64) bool {
			rr.Analyzed++
			switch a.Classify(r, idx) {
			case Hit:
				rr.Hits++
			case ColdMiss:
				rr.Cold++
			case ReplacementMiss:
				rr.Repl++
			}
			return true
		})
	})
	rep.Elapsed = time.Since(start)
	return rep
}

// perRef runs work over every reference, possibly in parallel. All lazily
// built shared state (space volumes, linearised addresses) is warmed
// sequentially first so the workers only read.
func (a *Analyzer) perRef(work func(r *ir.NRef, rr *RefReport)) []*RefReport {
	a.warm()
	out := make([]*RefReport, len(a.np.Refs))
	for i, r := range a.np.Refs {
		out[i] = &RefReport{Ref: r, Volume: a.spaces[r.Stmt].Volume()}
	}
	workers := a.opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers <= 1 || len(a.np.Refs) < 2 {
		for i, r := range a.np.Refs {
			work(r, out[i])
		}
		return out
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				work(a.np.Refs[i], out[i])
			}
		}()
	}
	for i := range a.np.Refs {
		next <- i
	}
	close(next)
	wg.Wait()
	return out
}

// warm materialises every lazy cache the workers would otherwise race on:
// space volumes, bounding boxes and linearised reference addresses.
func (a *Analyzer) warm() {
	a.warmOnce.Do(func() {
		idx := make([]int64, a.np.Depth)
		for _, sp := range a.spaces {
			sp.Volume()
			sp.BoundingBox()
		}
		for _, r := range a.np.Refs {
			r.AddressAt(idx)
		}
	})
}

// EstimateMisses analyses a statistically chosen sample of each reference's
// RIS (the algorithm of Fig. 6, right): a reference whose RIS is too small
// to achieve the requested (c, w) falls back to the paper's default
// (90%, 0.15); a RIS too small even for that is analysed exhaustively.
func (a *Analyzer) EstimateMisses(plan sampling.Plan) (*Report, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	seed := a.opt.Seed
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15 & 0x7FFFFFFFFFFFFFFF
	}
	rep := &Report{Config: a.cfg, Sampled: true}
	rep.Refs = a.perRef(func(r *ir.NRef, rr *RefReport) {
		// Per-reference RNG: deterministic regardless of worker count.
		rng := rand.New(rand.NewSource(seed ^ int64(r.Seq)*0x9E3779B9))
		sp := a.spaces[r.Stmt]
		vol := rr.Volume
		var pts [][]int64
		switch {
		case plan.Achievable(vol):
			rr.Sampled = true
			pts = sp.Sample(rng, plan.SizeFor(vol))
		case sampling.DefaultFallback.Achievable(vol):
			rr.Sampled = true
			pts = sp.Sample(rng, sampling.DefaultFallback.SizeFor(vol))
		default:
			// Analyse all points.
		}
		classify := func(idx []int64) {
			rr.Analyzed++
			switch a.Classify(r, idx) {
			case Hit:
				rr.Hits++
			case ColdMiss:
				rr.Cold++
			case ReplacementMiss:
				rr.Repl++
			}
		}
		if rr.Sampled {
			for _, p := range pts {
				classify(p)
			}
		} else {
			sp.Enumerate(func(idx []int64) bool { classify(idx); return true })
		}
	})
	rep.Elapsed = time.Since(start)
	return rep, nil
}
