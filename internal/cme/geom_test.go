package cme

import (
	"context"
	"fmt"
	"testing"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/faultinject"
	"cachemodel/internal/ir"
)

// geomColumnCands builds a cache-size column: count candidates at a fixed
// line size and associativity, sizes from, from+step, ...
func geomColumnCands(from, step int64, count int, lineBytes int64, assoc int) []Candidate {
	cands := make([]Candidate, count)
	for i := range cands {
		cfg := cache.Config{SizeBytes: from + int64(i)*step, LineBytes: lineBytes, Assoc: assoc}
		cands[i] = Candidate{Label: cfg.String(), Config: cfg}
	}
	return cands
}

// geomVsFused solves the same candidates with the geometry-parametric
// tier on and off and asserts bit-identical per-ref counts; it returns
// the geom-tier reports for provenance checks.
func geomVsFused(t *testing.T, label string, p *Prepared, cands []Candidate, workers int) []*Report {
	t.Helper()
	geom, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: workers})
	if err != nil {
		t.Fatalf("%s: geom SolveBatch: %v", label, err)
	}
	fused, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: workers, NoGeom: true})
	if err != nil {
		t.Fatalf("%s: fused SolveBatch: %v", label, err)
	}
	for i := range cands {
		sameCounts(t, fmt.Sprintf("%s/%s", label, cands[i].Label), geom[i], fused[i])
	}
	return geom
}

// TestGeomStableColumnClosedForm: a column entirely above the footprint
// span must solve three anchors and answer the rest in closed form,
// bit-identical to the enumerating solver.
func TestGeomStableColumnClosedForm(t *testing.T) {
	// stencil1D(64): A and B are 64 reals = 512 B each, ~33 lines of 32 B
	// total footprint. Sizes 2048..6656 step 512 → 64..208 sets, all
	// stable.
	_, p := prepBatch(t, stencil1D(64), Options{})
	cands := geomColumnCands(2048, 512, 10, 32, 1)
	reps := geomVsFused(t, "stable", p, cands, 2)

	anchors, closed := 0, 0
	for i, rep := range reps {
		g := rep.Geom
		if g == nil {
			t.Fatalf("candidate %s: no geom provenance", cands[i].Label)
		}
		if !g.Stable {
			t.Errorf("candidate %s: not certified stable (span %d)", cands[i].Label, g.SpanLines)
		}
		if g.Anchor {
			anchors++
		} else if g.Closed() {
			closed++
		}
		if g.FallthroughRefs != 0 {
			t.Errorf("candidate %s: %d fall-throughs inside the stable region", cands[i].Label, g.FallthroughRefs)
		}
	}
	// Default options: degree 0 + 1 fit + 2 verify = 3 anchors, one class.
	if anchors != 3 {
		t.Errorf("anchors = %d, want 3", anchors)
	}
	if closed != len(cands)-3 {
		t.Errorf("closed-form members = %d, want %d", closed, len(cands)-3)
	}
}

// TestGeomMixedColumn: a column straddling the span certificate solves
// the unstable members through the fused path (with provenance saying
// why) and still answers the stable tail in closed form.
func TestGeomMixedColumn(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{})
	// 256 B..6400 B: the small sizes sit below the ~33-line span.
	cands := geomColumnCands(256, 512, 13, 32, 1)
	reps := geomVsFused(t, "mixed", p, cands, 2)

	unstable, closed := 0, 0
	for _, rep := range reps {
		g := rep.Geom
		if g == nil {
			continue
		}
		if !g.Stable {
			unstable++
			if g.Why == "" {
				t.Error("unstable member carries no Why")
			}
		}
		if g.Closed() {
			closed++
		}
	}
	if unstable == 0 {
		t.Error("no unstable member; widen the column downward")
	}
	if closed == 0 {
		t.Error("no closed-form member; widen the column upward")
	}
}

// TestGeomNonPow2AndAssoc: non-power-of-two set counts and assoc > 1
// stay bit-identical (the walkers take their general-modulo paths).
func TestGeomNonPow2AndAssoc(t *testing.T) {
	_, p := prepBatch(t, copyThenRead(48), Options{})
	var cands []Candidate
	// assoc 2, line 32: sizes chosen so NumSets = size/64 includes
	// non-powers-of-two (96, 112, 160, ...), all above the ~13-line span.
	for i := 0; i < 8; i++ {
		cfg := cache.Config{SizeBytes: 6144 + int64(i)*1024, LineBytes: 32, Assoc: 2}
		cands = append(cands, Candidate{Label: cfg.String(), Config: cfg})
	}
	reps := geomVsFused(t, "nonpow2", p, cands, 3)
	sawClosed := false
	for _, rep := range reps {
		if rep.Geom.Closed() {
			sawClosed = true
		}
	}
	if !sawClosed {
		t.Error("no candidate was answered in closed form")
	}
}

// TestGeomPaperLRU: the certificate must hold under the paper's verbatim
// forward-scan replacement equations too.
func TestGeomPaperLRU(t *testing.T) {
	_, p := prepBatch(t, copyThenRead(48), Options{PaperLRU: true})
	cands := geomColumnCands(2048, 256, 8, 32, 1)
	geomVsFused(t, "paperlru", p, cands, 2)
}

// TestGeomMultiColumnGroup: a layout group holding two interleaved
// columns (two line sizes) plans them independently.
func TestGeomMultiColumnGroup(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{})
	var cands []Candidate
	for i := 0; i < 6; i++ {
		for _, lb := range []int64{32, 64} {
			cfg := cache.Config{SizeBytes: 4096 + int64(i)*512, LineBytes: lb, Assoc: 1}
			cands = append(cands, Candidate{Label: cfg.String(), Config: cfg})
		}
	}
	reps := geomVsFused(t, "multicol", p, cands, 4)
	closedPerLine := map[int64]int{}
	for i, rep := range reps {
		if rep.Geom != nil && rep.Geom.Closed() {
			closedPerLine[cands[i].Config.LineBytes]++
		}
	}
	for _, lb := range []int64{32, 64} {
		if closedPerLine[lb] == 0 {
			t.Errorf("line %d: no closed-form member", lb)
		}
	}
}

// TestGeomBudgetBypass: any budget — including a pure fault-injection
// hook — disables the tier, so budget checkpoint parity with the solo
// solvers is untouched and the reports carry no geom provenance.
func TestGeomBudgetBypass(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{})
	cands := geomColumnCands(2048, 512, 6, 32, 1)
	reps, err := p.SolveBatch(context.Background(), cands,
		BatchOptions{Workers: 2, Budget: budget.Budget{Hook: faultinject.ExhaustAt(1 << 30).Hook()}})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for i, rep := range reps {
		if rep.Geom != nil {
			t.Errorf("candidate %s: geom tier engaged under a budget hook", cands[i].Label)
		}
	}
}

// TestGeomPlainBudgetEngages: an ordinary point/scan budget (no fault
// hook) keeps the tier eligible — serve arms one on every job — and a
// budget generous enough never to trip yields bit-identical counts with
// untouched closed-form provenance.
func TestGeomPlainBudgetEngages(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{})
	cands := geomColumnCands(2048, 512, 10, 32, 1)
	bud := budget.Budget{MaxPoints: 1 << 40, MaxScan: 1 << 40}
	geom, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2, Budget: bud})
	if err != nil {
		t.Fatalf("geom SolveBatch: %v", err)
	}
	fused, err := p.SolveBatch(context.Background(), cands,
		BatchOptions{Workers: 2, Budget: bud, NoGeom: true})
	if err != nil {
		t.Fatalf("fused SolveBatch: %v", err)
	}
	closed := 0
	for i := range cands {
		sameCounts(t, "budgeted/"+cands[i].Label, geom[i], fused[i])
		if g := geom[i].Geom; g == nil {
			t.Errorf("candidate %s: geom tier skipped under a plain budget", cands[i].Label)
		} else if g.Closed() {
			closed++
		}
	}
	if closed == 0 {
		t.Errorf("no closed-form members under a plain budget")
	}
}

// TestGeomExhaustedBudgetDegrades: a budget too small to finish the
// anchors must never yield silently wrong closed forms — every deferred
// reference either fails the fit's census check and falls through to
// the ordinary degradation ladder, or is filled from anchors that did
// complete exactly.
func TestGeomExhaustedBudgetDegrades(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{})
	cands := geomColumnCands(2048, 512, 10, 32, 1)
	truth, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2, NoGeom: true})
	if err != nil {
		t.Fatalf("truth SolveBatch: %v", err)
	}
	for _, maxPoints := range []int64{1, 64, 1024} {
		reps, err := p.SolveBatch(context.Background(), cands,
			BatchOptions{Workers: 2, Budget: budget.Budget{MaxPoints: maxPoints}})
		if err != nil {
			t.Fatalf("MaxPoints=%d: SolveBatch: %v", maxPoints, err)
		}
		for i, rep := range reps {
			for ri, rr := range rep.Refs {
				if !rr.Complete || rr.Sampled || rr.Tier != TierExact {
					continue // degraded or unfinished: not a closed-form claim
				}
				want := truth[i].Refs[ri]
				if rr.Hits != want.Hits || rr.Cold != want.Cold || rr.Repl != want.Repl {
					t.Errorf("MaxPoints=%d %s ref %s: exact-tier counts %d/%d/%d want %d/%d/%d",
						maxPoints, cands[i].Label, rr.Ref.ID,
						rr.Hits, rr.Cold, rr.Repl, want.Hits, want.Cold, want.Repl)
				}
			}
		}
	}
}

// TestGeomNoSymbolicBypass: NoSymbolic forces enumeration everywhere,
// including the geometry tier.
func TestGeomNoSymbolicBypass(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{NoSymbolic: true})
	cands := geomColumnCands(2048, 512, 6, 32, 1)
	reps, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for i, rep := range reps {
		if rep.Geom != nil {
			t.Errorf("candidate %s: geom tier engaged under NoSymbolic", cands[i].Label)
		}
	}
}

// TestGeomResultCacheInteraction: geom-filled references are not
// published to the result cache (only enumerator-produced counts are),
// and a second sweep over the same column still reproduces the counts
// bit-identically.
func TestGeomResultCacheInteraction(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{})
	cands := geomColumnCands(2048, 512, 8, 32, 1)
	rc := NewResultCache(0)
	first, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2, Cache: rc})
	if err != nil {
		t.Fatalf("first SolveBatch: %v", err)
	}
	second, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2, Cache: rc})
	if err != nil {
		t.Fatalf("second SolveBatch: %v", err)
	}
	for i := range cands {
		sameCounts(t, "rc/"+cands[i].Label, second[i], first[i])
	}
}

// geomFuzzPrograms is the generator pool for FuzzGeomParamVsFused.
var geomFuzzPrograms = []func() *ir.Subroutine{
	func() *ir.Subroutine { return stencil1D(64) },
	func() *ir.Subroutine { return copyThenRead(48) },
	func() *ir.Subroutine { return transpose2D(10) },
	func() *ir.Subroutine { return triangularGuarded(12) },
}

// FuzzGeomParamVsFused: for random programs, line sizes, associativities
// and size ladders — including non-power-of-two set counts and columns
// straddling the stability span — the geometry-parametric tier must
// produce per-ref miss counts bit-identical to the fused enumerating
// solver, and a budget hook must bypass the tier entirely.
func FuzzGeomParamVsFused(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(1), uint16(64), uint16(32), uint8(10))
	f.Add(uint8(1), uint8(1), uint8(2), uint16(96), uint16(48), uint8(8))
	f.Add(uint8(2), uint8(0), uint8(1), uint16(33), uint16(7), uint8(12))
	f.Add(uint8(3), uint8(1), uint8(4), uint16(200), uint16(100), uint8(6))
	f.Fuzz(func(t *testing.T, progSel, lineSel, assoc uint8, fromSets, stepSets uint16, count uint8) {
		build := geomFuzzPrograms[int(progSel)%len(geomFuzzPrograms)]
		lineBytes := []int64{32, 64}[int(lineSel)%2]
		na := int64(assoc%4) + 1
		n := int(count%16) + 4
		from := int64(fromSets%512) + 1
		step := int64(stepSets%64) + 1

		_, p := prepBatch(t, build(), Options{})
		var cands []Candidate
		seen := map[int64]bool{}
		for i := 0; i < n; i++ {
			sets := from + int64(i)*step
			if seen[sets] {
				continue
			}
			seen[sets] = true
			cfg := cache.Config{SizeBytes: sets * lineBytes * na, LineBytes: lineBytes, Assoc: int(na)}
			if cfg.Validate() != nil {
				continue
			}
			cands = append(cands, Candidate{Label: cfg.String(), Config: cfg})
		}
		if len(cands) < 4 {
			return
		}
		geom, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2})
		if err != nil {
			t.Fatalf("geom SolveBatch: %v", err)
		}
		fused, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2, NoGeom: true})
		if err != nil {
			t.Fatalf("fused SolveBatch: %v", err)
		}
		for i := range cands {
			g, w := geom[i], fused[i]
			for ri := range w.Refs {
				gr, wr := g.Refs[ri], w.Refs[ri]
				if gr.Hits != wr.Hits || gr.Cold != wr.Cold || gr.Repl != wr.Repl ||
					gr.Analyzed != wr.Analyzed || !gr.Complete {
					t.Fatalf("%s ref %d: geom (h=%d c=%d r=%d n=%d complete=%v) != fused (h=%d c=%d r=%d n=%d)",
						cands[i].Label, ri, gr.Hits, gr.Cold, gr.Repl, gr.Analyzed, gr.Complete,
						wr.Hits, wr.Cold, wr.Repl, wr.Analyzed)
				}
			}
			// Provenance discipline: a claimed member accounts for every
			// ref as closed, fallthrough, or neither claimed at all.
			if gi := g.Geom; gi != nil && gi.ClosedRefs+gi.FallthroughRefs > gi.TotalRefs {
				t.Fatalf("%s: provenance overcount: %+v", cands[i].Label, gi)
			}
		}
		// Budget-parity: a fault hook must bypass the tier.
		budgeted, err := p.SolveBatch(context.Background(), cands,
			BatchOptions{Workers: 2, Budget: budget.Budget{Hook: faultinject.ExhaustAt(1 << 30).Hook()}})
		if err != nil {
			t.Fatalf("budgeted SolveBatch: %v", err)
		}
		for i, rep := range budgeted {
			if rep.Geom != nil {
				t.Fatalf("%s: geom tier engaged under a budget hook", cands[i].Label)
			}
		}
	})
}
