package cme

import (
	"context"
	"errors"
	"testing"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cerr"
	"cachemodel/internal/faultinject"
	"cachemodel/internal/kernels"
	"cachemodel/internal/obs"
	"cachemodel/internal/trace"
)

// oddConfigs are non-power-of-two geometries: 24-byte lines force the
// `%` fallbacks in the trace walker and the classifier's set congruence,
// and 48 sets × 3 ways exercises the non-mask set reduction.
func oddConfigs() []cache.Config {
	return []cache.Config{
		{SizeBytes: 3456, LineBytes: 24, Assoc: 3}, // 144 lines, 48 sets, 3-way
		{SizeBytes: 1536, LineBytes: 24, Assoc: 2}, // 64 lines, 32 sets, odd line
	}
}

// TestSymbolicEquivalence sweeps every built-in kernel under the golden and
// the non-power-of-two geometries and checks the symbolic region fast path
// is bit-identical to full per-point enumeration at several worker counts.
func TestSymbolicEquivalence(t *testing.T) {
	const n = 8
	configs := append(goldenConfigs(), oddConfigs()...)
	for _, spec := range kernels.Suite() {
		for _, cfg := range configs {
			label := spec.Name + " [" + cfg.String() + "]"
			_, base := prepKernel(t, spec.Build(n), cfg, Options{Workers: 1, NoSymbolic: true})
			want := base.FindMisses()
			for _, workers := range []int{1, 3, 8} {
				_, sym := prepKernel(t, spec.Build(n), cfg, Options{Workers: workers})
				sameRefReports(t, label+" symbolic", want, sym.FindMisses())
			}
		}
	}
}

// TestSymbolicOddGeometry pins the solver against the reference simulator
// under non-power-of-two geometry, symbolic fast path on and off. With
// 24-byte lines the arrays of copyThenRead(48) stay line-aligned (384 =
// 16·24), so its analysis is exact; stencil1D(64) and transpose2D straddle
// array boundaries or walk transposed, where the reuse-vector model is
// conservative by construction — those are held to the conservative bound
// plus on/off bit-identity.
func TestSymbolicOddGeometry(t *testing.T) {
	for _, prog := range batchPrograms {
		for _, cfg := range oddConfigs() {
			label := prog.name + " [" + cfg.String() + "]"
			np, on := prep(t, prog.build(), cfg, Options{})
			npOff, off := prep(t, prog.build(), cfg, Options{NoSymbolic: true})
			sameRefReports(t, label+" on/off", off.FindMisses(), on.FindMisses())
			checkConservative(t, np, on, cfg)
			checkConservative(t, npOff, off, cfg)
			if prog.name == "copyread" {
				checkExact(t, np, on, cfg)
				checkExact(t, npOff, off, cfg)
			}
			// The sharded simulator's set partitioning must survive odd
			// set counts too.
			sim := trace.Simulate(np, cfg)
			shard := trace.SimulateSharded(np, cfg, 3)
			if sim.Accesses != shard.Accesses || sim.Misses != shard.Misses {
				t.Errorf("%s: sharded simulator %d/%d != sequential %d/%d",
					label, shard.Accesses, shard.Misses, sim.Accesses, sim.Misses)
			}
		}
	}
}

// TestSymbolicBudgetParity: under a binding scan budget the symbolic path
// replays the per-point cost stream of each counted region, so it must
// degrade at exactly the same point as enumeration and produce a
// bit-identical report, including per-reference provenance.
func TestSymbolicBudgetParity(t *testing.T) {
	cfg := cache.Config{SizeBytes: 512, LineBytes: 32, Assoc: 2}
	for _, spec := range []string{"hydro", "sor2d", "transpose"} {
		for _, s := range kernels.Suite() {
			if s.Name != spec {
				continue
			}
			_, plain := prepKernel(t, s.Build(10), cfg, Options{Workers: 1, NoSymbolic: true})
			_, sym := prepKernel(t, s.Build(10), cfg, Options{Workers: 1})
			full, err := plain.FindMissesCtx(context.Background(), budget.Budget{MaxScan: 1 << 50})
			if err != nil {
				t.Fatalf("%s: measuring run failed: %v", spec, err)
			}
			b := budget.Budget{MaxScan: full.BudgetSpent.Scan / 2}
			if b.MaxScan == 0 {
				t.Fatalf("%s: full run reported no scan work", spec)
			}
			want, werr := plain.FindMissesCtx(context.Background(), b)
			got, gerr := sym.FindMissesCtx(context.Background(), b)
			if (werr == nil) != (gerr == nil) {
				t.Fatalf("%s: errors diverged: %v vs %v", spec, werr, gerr)
			}
			if !want.Degraded {
				t.Fatalf("%s: budget %d did not force degradation", spec, b.MaxScan)
			}
			sameRefReports(t, spec+" budgeted symbolic", want, got)
		}
	}
}

// TestSymbolicFaultParity injects budget exhaustion at fixed checkpoints of
// a single-worker run (single worker so the checkpoint order is
// deterministic) and checks the symbolic path fails at the same checkpoint
// with a bit-identical partial report.
func TestSymbolicFaultParity(t *testing.T) {
	cfg := cache.Config{SizeBytes: 512, LineBytes: 32, Assoc: 2}
	for _, at := range []int64{1, 7, 50, 400} {
		run := func(opt Options) (*Report, error) {
			_, a := prepKernel(t, kernels.Hydro(16, 16), cfg, opt)
			inj := faultinject.ExhaustAt(at)
			rep, err := a.FindMissesCtx(context.Background(),
				budget.Budget{Hook: inj.Hook(), NoFallback: true})
			if !inj.Fired() {
				t.Fatalf("at=%d: injector never fired (%d checkpoints seen)", at, inj.Checkpoints())
			}
			return rep, err
		}
		want, werr := run(Options{Workers: 1, NoSymbolic: true})
		got, gerr := run(Options{Workers: 1})
		if !errors.Is(werr, cerr.ErrBudgetExceeded) || !errors.Is(gerr, cerr.ErrBudgetExceeded) {
			t.Fatalf("at=%d: errs = %v / %v, want ErrBudgetExceeded", at, werr, gerr)
		}
		sameRefReports(t, "fault parity", want, got)
	}
}

// TestSolveBatchSymbolicEquivalence runs the batch design-space sweep with
// the fused symbolic fast path on and off, over the golden candidates plus
// non-power-of-two geometries, and requires bit-identical reports.
func TestSolveBatchSymbolicEquivalence(t *testing.T) {
	cands := sweepCandidates()
	for _, cfg := range oddConfigs() {
		cands = append(cands, Candidate{Label: cfg.String(), Config: cfg})
	}
	for _, prog := range batchPrograms {
		_, on := prepBatch(t, prog.build(), Options{})
		_, off := prepBatch(t, prog.build(), Options{NoSymbolic: true})
		gotReps, err := on.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2})
		if err != nil {
			t.Fatalf("%s: SolveBatch: %v", prog.name, err)
		}
		wantReps, err := off.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2})
		if err != nil {
			t.Fatalf("%s: SolveBatch (nosymbolic): %v", prog.name, err)
		}
		for i, c := range cands {
			sameCounts(t, prog.name+"/"+c.Label, gotReps[i], wantReps[i])
		}
	}
}

// TestSymbolicCoverageCounters: solving a kernel with loop-invariant inner
// reuse must route a nonzero share of points through the symbolic counters,
// and the symbolic/enumerated split must cover every classified point.
// (Package tests run sequentially, so global counter deltas are safe.)
func TestSymbolicCoverageCounters(t *testing.T) {
	symC := obs.Default.Counter("cme_points_symbolic_total")
	enumC := obs.Default.Counter("cme_points_enumerated_total")
	classC := obs.Default.Counter("cme_points_classified_total")
	s0, e0, c0 := symC.Value(), enumC.Value(), classC.Value()

	cfg := cache.Config{SizeBytes: 512, LineBytes: 32, Assoc: 2}
	_, a := prepKernel(t, kernels.Tomcatv(12, 4), cfg, Options{Workers: 1})
	rep := a.FindMisses()

	sym, enum, class := symC.Value()-s0, enumC.Value()-e0, classC.Value()-c0
	if sym <= 0 {
		t.Errorf("symbolic fast path never fired: %d symbolic of %d classified", sym, class)
	}
	if sym+enum != class {
		t.Errorf("symbolic %d + enumerated %d != classified %d", sym, enum, class)
	}
	var analyzed int64
	for _, rr := range rep.Refs {
		analyzed += rr.Analyzed
	}
	if class != analyzed {
		t.Errorf("classified counter %d != report analyzed %d", class, analyzed)
	}

	// With the fast path disabled every point must be enumerated.
	s1, e1, c1 := symC.Value(), enumC.Value(), classC.Value()
	_, off := prepKernel(t, kernels.Tomcatv(12, 4), cfg, Options{Workers: 1, NoSymbolic: true})
	off.FindMisses()
	if d := symC.Value() - s1; d != 0 {
		t.Errorf("NoSymbolic run still counted %d points symbolically", d)
	}
	if e, c := enumC.Value()-e1, classC.Value()-c1; e != c {
		t.Errorf("NoSymbolic run: enumerated %d != classified %d", e, c)
	}
}
