package cme

import (
	"context"
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
)

// famOf adapts a subroutine family to a BuildFunc through the standard
// front half of the pipeline (normalise + baseline layout).
func famOf(f func(n int64) *ir.Subroutine) BuildFunc {
	return func(n int64) (*ir.NProgram, error) {
		np, err := normalize.Normalize(f(n))
		if err != nil {
			return nil, err
		}
		if err := layout.AssignProgram(np, layout.Options{}); err != nil {
			return nil, err
		}
		return np, nil
	}
}

// checkScalingIdentity pins one scaling report to a fresh per-size exact
// solve: every counter of every reference must be bit-identical.
func checkScalingIdentity(t *testing.T, build BuildFunc, cfg cache.Config, n int64, got *Report) {
	t.Helper()
	np, err := build(n)
	if err != nil {
		t.Fatalf("build(%d): %v", n, err)
	}
	a, err := New(np, cfg, Options{})
	if err != nil {
		t.Fatalf("analyzer at n=%d: %v", n, err)
	}
	want := a.FindMisses()
	if len(got.Refs) != len(want.Refs) {
		t.Fatalf("n=%d: %d refs vs %d exact", n, len(got.Refs), len(want.Refs))
	}
	exact := map[string]*RefReport{}
	for _, rr := range want.Refs {
		exact[rr.Ref.ID] = rr
	}
	for _, rr := range got.Refs {
		w := exact[rr.Ref.ID]
		if w == nil {
			t.Fatalf("n=%d: ref %s missing from the exact report", n, rr.Ref.ID)
		}
		if rr.Volume != w.Volume || rr.Analyzed != w.Analyzed ||
			rr.Hits != w.Hits || rr.Cold != w.Cold || rr.Repl != w.Repl {
			t.Fatalf("n=%d ref %s: scaling (vol %d an %d hit %d cold %d repl %d) != exact (vol %d an %d hit %d cold %d repl %d)",
				n, rr.Ref.ID,
				rr.Volume, rr.Analyzed, rr.Hits, rr.Cold, rr.Repl,
				w.Volume, w.Analyzed, w.Hits, w.Cold, w.Repl)
		}
	}
}

// TestScalingBitIdentityStencil is the tier's core contract: on a ladder
// of sizes — non-powers of two included — the scaling solver's report at
// fixed n is bit-identical to running the enumerating solver at n, and
// past the fitted chamber the answers come from the closed form.
func TestScalingBitIdentityStencil(t *testing.T) {
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 1}
	build := famOf(stencil1D)
	s, err := PrepareScaling(build, cfg, Options{}, ScalingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.ClosedFormEligible() {
		t.Fatalf("stencil family should be eligible (why: %s)", s.Why())
	}
	ladder := []int64{8, 12, 16, 31, 32, 33, 48, 63, 64, 65, 96, 100, 128, 160, 200, 256, 321}
	closed := 0
	for _, n := range ladder {
		rep, err := s.EvalCtx(context.Background(), n)
		if err != nil {
			t.Fatalf("EvalCtx(%d): %v", n, err)
		}
		if rep.Scaling == nil {
			t.Fatalf("n=%d: no scaling provenance", n)
		}
		if rep.Scaling.ClosedForm {
			closed++
			if rep.Scaling.ClosedFormRefs != rep.Scaling.TotalRefs {
				t.Fatalf("n=%d: closed-form report covers %d/%d refs",
					n, rep.Scaling.ClosedFormRefs, rep.Scaling.TotalRefs)
			}
			for _, rr := range rep.Refs {
				if !rr.ClosedForm || !rr.Complete || rr.Tier != TierExact {
					t.Fatalf("n=%d ref %s: ClosedForm=%v Complete=%v Tier=%v",
						n, rr.Ref.ID, rr.ClosedForm, rr.Complete, rr.Tier)
				}
			}
		} else if rep.Scaling.Why == "" {
			t.Fatalf("n=%d: fall-through without a reason", n)
		}
		checkScalingIdentity(t, build, cfg, n, rep)
	}
	if closed == 0 {
		t.Fatalf("no ladder size was answered in closed form")
	}
	st := s.Stats()
	if st.ClosedEvals != int64(closed) || st.Fallbacks != int64(len(ladder)-closed) {
		t.Fatalf("stats %+v inconsistent with %d closed of %d", st, closed, len(ladder))
	}
	t.Logf("closed form answered %d/%d ladder sizes with %d fit solves across %d residue classes",
		closed, len(ladder), st.FitSolves, st.ResiduesFitted)
}

// TestScalingSmallNSpendsNoFits: a size below the fit window can never be
// covered by a residue-class fit (tryFit anchors every class at or beyond
// the window), so EvalClosedCtx must refuse immediately instead of paying
// degree+1+verify window-sized sample solves for a guaranteed miss.
func TestScalingSmallNSpendsNoFits(t *testing.T) {
	// 1024 cache lines push the fit window far past every queried size.
	cfg := cache.Config{SizeBytes: 32 * 1024, LineBytes: 32, Assoc: 1}
	s, err := PrepareScaling(famOf(stencil1D), cfg, Options{}, ScalingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.ClosedFormEligible() {
		t.Fatalf("stencil family should be eligible (why: %s)", s.Why())
	}
	if s.MinClosedN() < 1024 {
		t.Fatalf("MinClosedN %d, want at least the cache line count", s.MinClosedN())
	}
	for _, n := range []int64{8, 16, 100, 1023} {
		rep, ok, err := s.EvalClosedCtx(context.Background(), n)
		if err != nil || ok || rep != nil {
			t.Fatalf("EvalClosedCtx(%d) = (%v, %v, %v), want a free refusal", n, rep, ok, err)
		}
	}
	if st := s.Stats(); st.FitSolves != 0 || st.ResiduesFitted != 0 {
		t.Fatalf("small-n evals spent %d fit solves across %d residue classes, want none",
			st.FitSolves, st.ResiduesFitted)
	}
}

// singlePass touches every element of two arrays exactly once.
func singlePass(n int64) *ir.Subroutine {
	b := ir.NewSub("copy")
	A := b.Real8("A", n)
	B := b.Real8("B", n)
	b.Do("I", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(A, ir.Var("I")), ir.R(B, ir.Var("I"))).
		End()
	return b.Build()
}

// TestScalingPureCold: with one element per line a single pass has no
// reuse at all, so rung 2 resolves every reference by counting — zero
// fit solves at any size.
func TestScalingPureCold(t *testing.T) {
	cfg := cache.Config{SizeBytes: 64, LineBytes: 8, Assoc: 1}
	build := famOf(singlePass)
	s, err := PrepareScaling(build, cfg, Options{}, ScalingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !s.ClosedFormEligible() {
		t.Fatalf("single-pass family should be eligible (why: %s)", s.Why())
	}
	for _, n := range []int64{5, 17, 64, 100, 1000, 123457} {
		rep, err := s.EvalCtx(context.Background(), n)
		if err != nil {
			t.Fatalf("EvalCtx(%d): %v", n, err)
		}
		if !rep.Scaling.ClosedForm {
			t.Fatalf("n=%d fell through: %s", n, rep.Scaling.Why)
		}
		if rep.Scaling.PureColdRefs != 2 {
			t.Fatalf("n=%d: PureColdRefs = %d, want 2", n, rep.Scaling.PureColdRefs)
		}
		for _, rr := range rep.Refs {
			if rr.Volume != n || rr.Cold != n || rr.Hits != 0 || rr.Repl != 0 {
				t.Fatalf("n=%d ref %s: vol %d cold %d hits %d repl %d",
					n, rr.Ref.ID, rr.Volume, rr.Cold, rr.Hits, rr.Repl)
			}
		}
	}
	if st := s.Stats(); st.FitSolves != 0 {
		t.Fatalf("pure-cold family spent %d fit solves", st.FitSolves)
	}
	// Counting closed forms must still match the enumerating solver.
	rep, _ := s.EvalCtx(context.Background(), 37)
	checkScalingIdentity(t, build, cfg, 37, rep)
}

// TestScalingIneligibleFallsThrough: a family whose bounds move
// quadratically in n fails the affine probe; every size must still be
// answered — by fall-through — and say why.
func TestScalingIneligibleFallsThrough(t *testing.T) {
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 1}
	build := famOf(func(n int64) *ir.Subroutine { return stencil1D(n * n) })
	s, err := PrepareScaling(build, cfg, Options{}, ScalingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.ClosedFormEligible() {
		t.Fatal("quadratic family must not be eligible")
	}
	rep, err := s.EvalCtx(context.Background(), 7)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scaling == nil || rep.Scaling.ClosedForm || rep.Scaling.Why == "" {
		t.Fatalf("fall-through provenance missing: %+v", rep.Scaling)
	}
	checkScalingIdentity(t, build, cfg, 7, rep)
}

// TestScalingMissPolys: the public closed forms evaluate to the exact
// per-reference counters.
func TestScalingMissPolys(t *testing.T) {
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 1}
	build := famOf(stencil1D)
	s, err := PrepareScaling(build, cfg, Options{}, ScalingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 96 // ≡ 0 mod the 32-element set-wrap period
	if _, err := s.EvalCtx(context.Background(), n); err != nil {
		t.Fatal(err)
	}
	np, err := build(n)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(np, cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]*RefReport{}
	for _, rr := range a.FindMisses().Refs {
		want[rr.Ref.ID] = rr
	}
	polys := s.MissPolys()
	if len(polys) == 0 {
		t.Fatal("no closed forms accumulated")
	}
	r := n % s.Period()
	for _, mp := range polys {
		w := want[mp.RefID]
		if w == nil {
			t.Fatalf("unknown ref %s", mp.RefID)
		}
		if vol, ok := mp.Volume.EvalInt(n); !ok || vol != w.Volume {
			t.Fatalf("ref %s: volume poly %d (ok=%v), exact %d", mp.RefID, vol, ok, w.Volume)
		}
		if mp.PureCold {
			continue
		}
		cls, ok := mp.Residues[r]
		if !ok {
			t.Fatalf("ref %s: residue %d not fitted", mp.RefID, r)
		}
		if cold, _ := cls.Cold.EvalInt(n); cold != w.Cold {
			t.Fatalf("ref %s: cold poly %d, exact %d", mp.RefID, cold, w.Cold)
		}
		if hits, _ := cls.Hits.EvalInt(n); hits != w.Hits {
			t.Fatalf("ref %s: hits poly %d, exact %d", mp.RefID, hits, w.Hits)
		}
		if repl, _ := cls.Repl.EvalInt(n); repl != w.Repl {
			t.Fatalf("ref %s: repl poly %d, exact %d", mp.RefID, repl, w.Repl)
		}
	}
}

// TestScalingLadderSharesFits: a ladder inside one residue class must be
// paid for by a single round of fit solves.
func TestScalingLadderSharesFits(t *testing.T) {
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 1}
	s, err := PrepareScaling(famOf(stencil1D), cfg, Options{}, ScalingOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ns := make([]int64, 0, 8)
	for n := int64(256); n < 256+8*32; n += 32 {
		ns = append(ns, n)
	}
	reps, err := s.SolveLadder(context.Background(), ns)
	if err != nil {
		t.Fatal(err)
	}
	for i, rep := range reps {
		if rep == nil || !rep.Scaling.ClosedForm {
			t.Fatalf("ladder size %d fell through", ns[i])
		}
	}
	st := s.Stats()
	if st.ResiduesFitted != 1 {
		t.Fatalf("ladder of one residue class fitted %d classes", st.ResiduesFitted)
	}
	if st.Fallbacks != 0 {
		t.Fatalf("%d fallbacks on an in-class ladder", st.Fallbacks)
	}
}
