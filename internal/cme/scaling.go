package cme

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/linalg"
	"cachemodel/internal/poly"
	"cachemodel/internal/qpoly"
)

// This file implements the closed-form scaling tier — the top rung of the
// solver ladder. Where the exact tier classifies iteration points and the
// PR-5 region tier replicates verdicts across translates at ONE problem
// size, this tier keeps the problem size n itself symbolic: per-reference
// miss counts become piecewise quasi-polynomials of n (Ehrhart), so a
// whole size sweep costs one symbolic solve plus O(1) polynomial
// evaluations instead of one re-enumeration per size.
//
// The construction has three rungs of its own (the eligibility ladder):
//
//  1. Structural affinity. The program family build(n) is instantiated at
//     three consecutive probe sizes; statements, references and reuse
//     structure must match one-to-one and every loop bound and guard
//     constant must move affinely with n (coefficients fixed). This lifts
//     each statement's iteration space to a poly.ParamSpace, whose
//     parametric CountPoly supplies every reference's |RIS| as a
//     quasi-polynomial — the Volume column of any size's report is then
//     O(1).
//
//  2. Pure-cold references. A reference whose every reuse vector has an
//     unsatisfiable producer-existence system is all cold (the PR-5
//     "empty replacement polytope" case). The probe systems are lifted
//     parametrically and checked with CountWithPoly: identically zero
//     for every n means cold = |RIS| in closed form — no solving at any
//     size, ever.
//
//  3. Everything else is fitted per residue class. Counts are
//     quasi-polynomial with the set-wrap period P = numSets·lineBytes/g
//     (g = gcd of the element sizes): within a class n ≡ r (mod P) each
//     counter is eventually a plain polynomial of degree ≤ the number of
//     n-dependent loop dimensions. The solver runs the exact enumerating
//     tier at deg+1 SMALL sample sizes of the class (past the chamber
//     breakpoints where working sets outgrow the cache), interpolates
//     exactly over linalg.Rat, and verifies the polynomial reproduces
//     further holdout solves bit-for-bit before trusting it. Residue
//     classes are fitted lazily — a ladder stepping by P pays for one.
//
// Anything that fails a rung falls through: ineligible families or
// unfitted sizes are answered by the ordinary per-size solver, and the
// Report's Scaling provenance says which path produced the numbers.

// BuildFunc instantiates the program family at one problem size: a fully
// normalised and laid-out program (the same front half the per-size
// solvers consume).
type BuildFunc func(n int64) (*ir.NProgram, error)

// ScalingOptions tunes the scaling solver. The zero value picks
// everything automatically.
type ScalingOptions struct {
	// MinN is the smallest size the solver must answer (default 4).
	// Sizes below it are rejected.
	MinN int64
	// ProbeN is the base of the three structural probe sizes
	// ProbeN, ProbeN+1, ProbeN+2 (default 8).
	ProbeN int64
	// Period overrides the residue period (default: the set-wrap period
	// numSets·lineBytes / gcd(element sizes)).
	Period int64
	// Degree overrides the fitted polynomial degree (default: the maximum
	// number of n-dependent dimensions of any statement).
	Degree int
	// Verify is the number of holdout solves per residue class that the
	// fit must reproduce exactly (default 2).
	Verify int
	// FitN is the smallest sample size used for fitting solves (default:
	// past the capacity chamber, see autoFitN). A failed verification
	// escalates it before giving up on the residue class.
	FitN int64
	// Budget meters the internal exact solves (fit samples and
	// fall-through sizes). Zero = unlimited.
	Budget budget.Budget
}

// ScalingInfo is the Report provenance of the scaling tier.
type ScalingInfo struct {
	// N is the problem size this report answers.
	N int64
	// ClosedForm reports that every reference was evaluated in O(1) from
	// its quasi-polynomial; false means the size fell through to the
	// per-size solver.
	ClosedForm bool
	// ClosedFormRefs / TotalRefs is the per-reference closed-form
	// coverage of this report.
	ClosedFormRefs int
	TotalRefs      int
	// PureColdRefs counts references resolved by parametric counting
	// alone (rung 2), a subset of ClosedFormRefs.
	PureColdRefs int
	// Period and Degree describe the quasi-polynomial shape; Residue is
	// n mod Period.
	Period  int64
	Degree  int
	Residue int64
	// FitSolves is the cumulative number of exact sample solves the
	// solver has spent on fits so far.
	FitSolves int64
	// Why says why the size fell through (empty when ClosedForm).
	Why string
}

// ScalingStats snapshots a solver's work counters.
type ScalingStats struct {
	ResiduesFitted int
	FitSolves      int64
	ClosedEvals    int64
	Fallbacks      int64
}

// refScale is the per-reference symbolic state.
type refScale struct {
	ref      *ir.NRef // the template instantiation's reference (ID donor)
	space    *poly.ParamSpace
	volume   qpoly.Piecewise
	pureCold bool
}

// refFit is one reference's fitted counters within one residue class, as
// power-basis polynomials of n (period-1 quasi-polynomials).
type refFit struct {
	analyzed, hits, cold, repl qpoly.QPoly
}

// residueFit is the closed form of one residue class n ≡ r (mod period).
type residueFit struct {
	ok   bool
	why  string
	base int64 // smallest n the fit is valid for
	refs map[string]*refFit
}

// ScalingSolver is the closed-form scaling tier for one program family ×
// cache configuration. It is safe for concurrent use.
type ScalingSolver struct {
	build BuildFunc
	cfg   cache.Config
	opt   Options
	sopt  ScalingOptions

	eligible bool
	why      string // why the family is ineligible (when !eligible)
	period   int64
	degree   int
	tmpl     *ir.NProgram
	refs     []*refScale // in template program order
	byID     map[string]*refScale

	mu    sync.Mutex
	fits  map[int64]*residueFit
	stats ScalingStats
}

func (o ScalingOptions) withDefaults() ScalingOptions {
	if o.MinN == 0 {
		o.MinN = 4
	}
	if o.ProbeN == 0 {
		o.ProbeN = 8
	}
	if o.Verify == 0 {
		o.Verify = 2
	}
	return o
}

// PrepareScaling probes the program family and builds the scaling solver.
// An error means the probes themselves failed (bad build function or
// invalid configuration); a structurally ineligible family is NOT an
// error — the solver is returned with ClosedFormEligible() == false and
// answers every size by fall-through.
func PrepareScaling(build BuildFunc, cfg cache.Config, opt Options, sopt ScalingOptions) (*ScalingSolver, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sopt = sopt.withDefaults()
	s := &ScalingSolver{build: build, cfg: cfg, opt: opt, sopt: sopt,
		fits: map[int64]*residueFit{},
		byID: map[string]*refScale{},
	}
	if err := s.probe(); err != nil {
		return nil, err
	}
	return s, nil
}

// ClosedFormEligible reports whether the family passed the structural
// probes; Why says what failed when it did not.
func (s *ScalingSolver) ClosedFormEligible() bool { return s.eligible }

// Why returns the ineligibility reason (empty when eligible).
func (s *ScalingSolver) Why() string { return s.why }

// Period returns the residue period of the fitted quasi-polynomials.
func (s *ScalingSolver) Period() int64 { return s.period }

// Stats snapshots the work counters.
func (s *ScalingSolver) Stats() ScalingStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.ResiduesFitted = len(s.fits)
	return st
}

// ineligible marks the whole family as fall-through-only.
func (s *ScalingSolver) ineligible(format string, args ...any) {
	s.eligible = false
	s.why = fmt.Sprintf(format, args...)
}

// probe instantiates the family at three consecutive sizes and lifts the
// structure to parameter space (rungs 1 and 2 of the eligibility ladder).
func (s *ScalingSolver) probe() error {
	n0 := s.sopt.ProbeN
	var nps [3]*ir.NProgram
	var preps [3]*Prepared
	for i := range nps {
		np, err := s.build(n0 + int64(i))
		if err != nil {
			return fmt.Errorf("cme: scaling probe at n=%d: %w", n0+int64(i), err)
		}
		prep, err := Prepare(np, s.opt)
		if err != nil {
			return fmt.Errorf("cme: scaling probe at n=%d: %w", n0+int64(i), err)
		}
		nps[i], preps[i] = np, prep
	}
	s.tmpl = nps[0]

	// Residue period: the set-wrap period of the cache geometry over the
	// finest element granularity. Every affine address term a·n^k + ...
	// repeats mod numSets·lineBytes when n advances by it.
	s.period = s.sopt.Period
	if s.period == 0 {
		setspan := s.cfg.NumSets() * s.cfg.LineBytes
		g := setspan
		for _, arr := range s.tmpl.Arrays {
			g = linalg.GCD(g, arr.ElemSize)
		}
		if g == 0 {
			g = 1
		}
		s.period = setspan / g
	}
	if s.period < 1 {
		s.period = 1
	}

	// Rung 1: structural match + affine lift of every statement space.
	if len(nps[1].Stmts) != len(nps[0].Stmts) || len(nps[2].Stmts) != len(nps[0].Stmts) ||
		len(nps[1].Refs) != len(nps[0].Refs) || len(nps[2].Refs) != len(nps[0].Refs) {
		s.ineligible("statement/reference structure varies with n")
		return nil
	}
	spaces := make(map[*ir.NStmt]*poly.ParamSpace, len(nps[0].Stmts))
	maxNDims := 0
	for i, st := range nps[0].Stmts {
		st1, st2 := nps[1].Stmts[i], nps[2].Stmts[i]
		ps, ok := liftSpace(st, st1, st2, n0)
		if !ok {
			s.ineligible("statement %s: bounds or guards are not affine in n", st.Name)
			return nil
		}
		spaces[st] = ps
		nd := 0
		for _, b := range ps.Bounds {
			if b.Lo.IsParam() || b.Hi.IsParam() {
				nd++
			}
		}
		if nd > maxNDims {
			maxNDims = nd
		}
	}
	s.degree = s.sopt.Degree
	if s.degree == 0 {
		s.degree = maxNDims
	}
	if s.degree == 0 {
		s.degree = 1 // constant-size family: still fit a sanity slope
	}

	// Volume polynomials per reference (rung 1 payoff), and the pure-cold
	// classification (rung 2).
	sym := make([]map[*ir.NRef]*refSym, 3)
	for i, p := range preps {
		sym[i] = p.lineState(s.cfg.LineBytes).sym
	}
	fitOpt := poly.FitOptions{MinN: s.sopt.MinN}
	for i, r := range nps[0].Refs {
		r1, r2 := nps[1].Refs[i], nps[2].Refs[i]
		if r.ID != r1.ID || r.ID != r2.ID {
			s.ineligible("reference order varies with n")
			return nil
		}
		ps := spaces[r.Stmt]
		vol, err := ps.CountPoly(poly.FullTile(), fitOpt)
		if err != nil {
			s.ineligible("reference %s: volume is not quasi-polynomial: %v", r.ID, err)
			return nil
		}
		rs := &refScale{ref: r, space: ps, volume: vol}
		rs.pureCold = s.liftPureCold(ps, fitOpt,
			[3]*ir.NRef{r, r1, r2}, [3]*ir.NProgram{nps[0], nps[1], nps[2]}, sym, preps)
		s.refs = append(s.refs, rs)
		s.byID[r.ID] = rs
	}
	s.eligible = true
	return nil
}

// liftSpace lifts one statement's bounds and guards to parameter space by
// differencing three consecutive instantiations: coefficients must agree
// and constants must advance by the same integer step.
func liftSpace(st0, st1, st2 *ir.NStmt, n0 int64) (*poly.ParamSpace, bool) {
	if st0.Depth() != st1.Depth() || st0.Depth() != st2.Depth() ||
		len(st0.Guards) != len(st1.Guards) || len(st0.Guards) != len(st2.Guards) {
		return nil, false
	}
	bounds := make([]poly.ParamBound, st0.Depth())
	for k := range bounds {
		lo, ok1 := liftAffine(st0.Bounds[k].Lo, st1.Bounds[k].Lo, st2.Bounds[k].Lo, n0)
		hi, ok2 := liftAffine(st0.Bounds[k].Hi, st1.Bounds[k].Hi, st2.Bounds[k].Hi, n0)
		if !ok1 || !ok2 {
			return nil, false
		}
		bounds[k] = poly.ParamBound{Lo: lo, Hi: hi}
	}
	guards := make([]poly.ParamConstraint, len(st0.Guards))
	for i := range guards {
		g0, g1, g2 := st0.Guards[i], st1.Guards[i], st2.Guards[i]
		if g0.IsEq != g1.IsEq || g0.IsEq != g2.IsEq {
			return nil, false
		}
		e, ok := liftAffine(g0.Expr, g1.Expr, g2.Expr, n0)
		if !ok {
			return nil, false
		}
		guards[i] = poly.ParamConstraint{Expr: e, IsEq: g0.IsEq}
	}
	return poly.NewParamSpace(bounds, guards), true
}

// liftAffine recovers c(n) = base + step·n from three consecutive
// observations, requiring equal index coefficients and a consistent step.
func liftAffine(a0, a1, a2 ir.Affine, n0 int64) (poly.ParamAffine, bool) {
	d := a0.MaxDepthUsed()
	if a1.MaxDepthUsed() != d || a2.MaxDepthUsed() != d {
		return poly.ParamAffine{}, false
	}
	for k := 1; k <= d; k++ {
		if a0.At(k) != a1.At(k) || a0.At(k) != a2.At(k) {
			return poly.ParamAffine{}, false
		}
	}
	step := a1.Const - a0.Const
	if a2.Const-a1.Const != step {
		return poly.ParamAffine{}, false
	}
	base := ir.Affine{Const: a0.Const - step*n0, Coeff: append([]int64(nil), a0.Coeff...)}
	return poly.ParamAffine{Base: base, N: step}, true
}

// liftPureCold decides rung 2 for one reference: all three probes must
// classify it all-cold, and every reuse vector's producer-existence
// system must lift to parameter space and count zero for every n. A
// false return is not an error — the reference just takes the fitted
// path.
func (s *ScalingSolver) liftPureCold(ps *poly.ParamSpace, fitOpt poly.FitOptions,
	rs [3]*ir.NRef, nps [3]*ir.NProgram, sym []map[*ir.NRef]*refSym, preps [3]*Prepared) bool {

	for i := range rs {
		if rsym := sym[i][rs[i]]; rsym == nil || !rsym.allCold {
			return false
		}
	}
	// allCold already certifies each probe's systems are unsatisfiable at
	// its own size; the parametric lift extends that to every size.
	depth := rs[0].Stmt.Depth()
	var vecs [3][][]ir.NConstraint
	for i := range rs {
		ls := preps[i].lineState(s.cfg.LineBytes)
		for _, v := range ls.vecs[rs[i]] {
			sys, ok := producerSystem(v, depth)
			if !ok {
				return false
			}
			vecs[i] = append(vecs[i], sys)
		}
	}
	if len(vecs[0]) != len(vecs[1]) || len(vecs[0]) != len(vecs[2]) {
		return false
	}
	for j := range vecs[0] {
		if len(vecs[1][j]) != len(vecs[0][j]) || len(vecs[2][j]) != len(vecs[0][j]) {
			return false
		}
		sys := make([]poly.ParamConstraint, len(vecs[0][j]))
		for c := range vecs[0][j] {
			c0, c1, c2 := vecs[0][j][c], vecs[1][j][c], vecs[2][j][c]
			if c0.IsEq != c1.IsEq || c0.IsEq != c2.IsEq {
				return false
			}
			e, ok := liftAffine(c0.Expr, c1.Expr, c2.Expr, s.sopt.ProbeN)
			if !ok {
				return false
			}
			sys[c] = poly.ParamConstraint{Expr: e, IsEq: c0.IsEq}
		}
		cnt, err := ps.CountWithPoly(poly.FullTile(), sys, fitOpt)
		if err != nil || !cnt.IsZero() {
			return false
		}
	}
	return true
}

// autoFitN places the fit window past the chamber breakpoints: beyond the
// size where every array row spans more lines than the cache holds, the
// capacity-transition chambers are behind us. One period of slack keeps
// the first sample clear of the seam.
func (s *ScalingSolver) autoFitN() int64 {
	if s.sopt.FitN != 0 {
		return s.sopt.FitN
	}
	fitN := s.period
	if lines := s.cfg.SizeBytes / s.cfg.LineBytes; lines > fitN {
		fitN = lines
	}
	if fitN < 2*s.sopt.MinN {
		fitN = 2 * s.sopt.MinN
	}
	return fitN
}

// MinClosedN returns a lower bound on the sizes the closed form can
// cover: sampled fits are anchored at or beyond the fit window, so
// EvalClosedCtx below this bound always reports ok=false (and spends
// nothing). Callers with a known size range can use it to skip the
// closed tier up front.
func (s *ScalingSolver) MinClosedN() int64 {
	n := s.sopt.MinN
	if s.needsFit() {
		if f := s.autoFitN(); f > n {
			n = f
		}
	}
	return n
}

// solveExactAt runs the ordinary exact tier at one size.
func (s *ScalingSolver) solveExactAt(ctx context.Context, n int64) (*Report, error) {
	np, err := s.build(n)
	if err != nil {
		return nil, err
	}
	a, err := New(np, s.cfg, s.opt)
	if err != nil {
		return nil, err
	}
	return a.FindMissesCtx(ctx, s.sopt.Budget)
}

// fitResidue lazily builds (and caches) the closed form of one residue
// class from exact sample solves. It is called with s.mu NOT held.
func (s *ScalingSolver) fitResidue(ctx context.Context, r int64) (*residueFit, error) {
	s.mu.Lock()
	if f, ok := s.fits[r]; ok {
		s.mu.Unlock()
		return f, nil
	}
	s.mu.Unlock()

	f, solves, err := s.fitResidueUncached(ctx, r)
	if err != nil {
		return nil, err // budget/cancellation: don't cache, don't fall back
	}
	s.mu.Lock()
	if prev, ok := s.fits[r]; ok { // another goroutine won the race
		s.mu.Unlock()
		return prev, nil
	}
	s.fits[r] = f
	s.stats.FitSolves += solves
	s.mu.Unlock()
	mScalingFits.Inc()
	mScalingFitSolves.Add(solves)
	return f, nil
}

// needsFit reports whether any reference actually needs sampled fitting
// (pure-cold references are answered by counting alone).
func (s *ScalingSolver) needsFit() bool {
	for _, rs := range s.refs {
		if !rs.pureCold {
			return true
		}
	}
	return false
}

func (s *ScalingSolver) fitResidueUncached(ctx context.Context, r int64) (*residueFit, int64, error) {
	if !s.needsFit() {
		return &residueFit{ok: true, base: s.sopt.MinN, refs: map[string]*refFit{}}, 0, nil
	}
	fitN := s.autoFitN()
	var solves int64
	var lastErr error
	for attempt := 0; attempt < 3; attempt++ {
		f, n, err := s.tryFit(ctx, r, fitN)
		solves += n
		if err == nil {
			return f, solves, nil
		}
		if ctx.Err() != nil {
			return nil, solves, err
		}
		lastErr = err
		fitN *= 2 // the chamber guess was too low: push the window out
	}
	return &residueFit{ok: false, why: lastErr.Error()}, solves, nil
}

// tryFit samples degree+1+verify sizes of the class at and beyond fitN,
// interpolates each non-cold reference's counters exactly and verifies
// the holdout solves reproduce bit-for-bit. Pure-cold references are
// cross-checked against their counting closed form instead.
func (s *ScalingSolver) tryFit(ctx context.Context, r, fitN int64) (*residueFit, int64, error) {
	nSamples := s.degree + 1 + s.sopt.Verify
	base := fitN + mod64(r-fitN, s.period)
	type sampleRep struct {
		n   int64
		rep *Report
	}
	var solves int64
	samples := make([]sampleRep, 0, nSamples)
	for k := 0; k < nSamples; k++ {
		n := base + int64(k)*s.period
		rep, err := s.solveExactAt(ctx, n)
		solves++
		if err != nil {
			return nil, solves, err
		}
		samples = append(samples, sampleRep{n: n, rep: rep})
	}

	f := &residueFit{ok: true, base: base, refs: make(map[string]*refFit, len(s.refs))}
	for _, rs := range s.refs {
		id := rs.ref.ID
		var an, hi, co, re []qpoly.Sample
		for _, sm := range samples {
			rr := findRef(sm.rep, id)
			if rr == nil || !rr.Complete || rr.Tier != TierExact {
				return nil, solves, fmt.Errorf("sample solve at n=%d did not complete exactly for %s", sm.n, id)
			}
			if vol, ok := rs.volume.EvalInt(sm.n); !ok || vol != rr.Volume {
				return nil, solves, fmt.Errorf("volume polynomial of %s diverges at n=%d: poly %d, exact %d",
					id, sm.n, vol, rr.Volume)
			}
			if rs.pureCold {
				if rr.Hits != 0 || rr.Repl != 0 || rr.Cold != rr.Volume {
					return nil, solves, fmt.Errorf("pure-cold closed form of %s diverges at n=%d", id, sm.n)
				}
				continue
			}
			an = append(an, qpoly.Sample{N: sm.n, V: linalg.RatInt(rr.Analyzed)})
			hi = append(hi, qpoly.Sample{N: sm.n, V: linalg.RatInt(rr.Hits)})
			co = append(co, qpoly.Sample{N: sm.n, V: linalg.RatInt(rr.Cold)})
			re = append(re, qpoly.Sample{N: sm.n, V: linalg.RatInt(rr.Repl)})
		}
		if rs.pureCold {
			continue
		}
		rf := &refFit{}
		var err error
		if rf.analyzed, err = fitCounter(s.degree, an); err != nil {
			return nil, solves, fmt.Errorf("ref %s analyzed: %w", id, err)
		}
		if rf.hits, err = fitCounter(s.degree, hi); err != nil {
			return nil, solves, fmt.Errorf("ref %s hits: %w", id, err)
		}
		if rf.cold, err = fitCounter(s.degree, co); err != nil {
			return nil, solves, fmt.Errorf("ref %s cold: %w", id, err)
		}
		if rf.repl, err = fitCounter(s.degree, re); err != nil {
			return nil, solves, fmt.Errorf("ref %s repl: %w", id, err)
		}
		f.refs[id] = rf
	}
	return f, solves, nil
}

// fitCounter interpolates one counter as a plain polynomial (the residue
// class is fixed, so the quasi-period is quotiented out).
func fitCounter(deg int, samples []qpoly.Sample) (qpoly.QPoly, error) {
	coef, err := qpoly.FitPoly(deg, samples)
	if err != nil {
		return qpoly.QPoly{}, err
	}
	return qpoly.New([][]linalg.Rat{coef}), nil
}

func findRef(rep *Report, id string) *RefReport {
	for _, rr := range rep.Refs {
		if rr.Ref.ID == id {
			return rr
		}
	}
	return nil
}

func mod64(n, m int64) int64 {
	v := n % m
	if v < 0 {
		v += m
	}
	return v
}

// EvalClosedCtx evaluates the closed form at size n without ever solving
// at n itself: it may spend fit solves (at small sample sizes) the first
// time a residue class is touched, but never enumerates size n. ok
// reports whether the closed form covers n; (nil, false, nil) means the
// caller should fall through.
func (s *ScalingSolver) EvalClosedCtx(ctx context.Context, n int64) (*Report, bool, error) {
	if !s.eligible || n < s.sopt.MinN {
		return nil, false, nil
	}
	// Residue-class fits are anchored at or beyond the fit window
	// (tryFit's base ≥ fitN), so when sampled fitting is needed no fit can
	// ever cover a smaller n: refuse before spending fit solves that are
	// guaranteed wasted. Pure-cold-only programs fit for free from MinN.
	if s.needsFit() && n < s.autoFitN() {
		return nil, false, nil
	}
	start := time.Now()
	r := mod64(n, s.period)
	fit, err := s.fitResidue(ctx, r)
	if err != nil {
		return nil, false, err
	}
	if !fit.ok || n < fit.base {
		return nil, false, nil
	}
	rep := &Report{Config: s.cfg, Tier: TierExact,
		Scaling: s.info(n, true, "")}
	for _, rs := range s.refs {
		vol, ok := rs.volume.EvalInt(n)
		if !ok {
			return nil, false, nil
		}
		rr := &RefReport{Ref: rs.ref, Volume: vol, Tier: TierExact,
			Complete: true, ClosedForm: true}
		if rs.pureCold {
			rr.Analyzed, rr.Cold = vol, vol
		} else {
			rf := fit.refs[rs.ref.ID]
			if rf == nil {
				return nil, false, nil
			}
			var okA, okH, okC, okR bool
			rr.Analyzed, okA = rf.analyzed.EvalInt(n)
			rr.Hits, okH = rf.hits.EvalInt(n)
			rr.Cold, okC = rf.cold.EvalInt(n)
			rr.Repl, okR = rf.repl.EvalInt(n)
			// A non-integer value or a broken count identity means the
			// polynomial left its chamber: refuse rather than mispredict.
			if !okA || !okH || !okC || !okR ||
				rr.Analyzed != vol || rr.Hits+rr.Cold+rr.Repl != rr.Analyzed ||
				rr.Hits < 0 || rr.Cold < 0 || rr.Repl < 0 {
				return nil, false, nil
			}
		}
		rep.Refs = append(rep.Refs, rr)
	}
	rep.Elapsed = time.Since(start)
	s.mu.Lock()
	s.stats.ClosedEvals++
	s.mu.Unlock()
	mScalingEvals.Inc()
	return rep, true, nil
}

// info assembles the provenance block (called with s.mu not held).
func (s *ScalingSolver) info(n int64, closed bool, why string) *ScalingInfo {
	cold := 0
	for _, rs := range s.refs {
		if rs.pureCold {
			cold++
		}
	}
	total := len(s.refs)
	if total == 0 && s.tmpl != nil {
		total = len(s.tmpl.Refs)
	}
	closedRefs := 0
	if closed {
		closedRefs = total
	}
	st := s.Stats()
	return &ScalingInfo{N: n, ClosedForm: closed,
		ClosedFormRefs: closedRefs, TotalRefs: total, PureColdRefs: cold,
		Period: s.period, Degree: s.degree, Residue: mod64(n, max64(s.period, 1)),
		FitSolves: st.FitSolves, Why: why}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// EvalCtx answers one size: closed form when the ladder allows it,
// otherwise graceful fall-through to the per-size exact solver (with the
// fall-through recorded in the report's Scaling provenance).
func (s *ScalingSolver) EvalCtx(ctx context.Context, n int64) (*Report, error) {
	rep, ok, err := s.EvalClosedCtx(ctx, n)
	if err != nil {
		return nil, err
	}
	if ok {
		return rep, nil
	}
	why := s.why
	if why == "" {
		why = s.fallbackWhy(n)
	}
	rep, err = s.solveExactAt(ctx, n)
	if rep != nil {
		rep.Scaling = s.info(n, false, why)
	}
	s.mu.Lock()
	s.stats.Fallbacks++
	s.mu.Unlock()
	mScalingFallbacks.Inc()
	return rep, err
}

func (s *ScalingSolver) fallbackWhy(n int64) string {
	if n < s.sopt.MinN {
		return fmt.Sprintf("n=%d below MinN=%d", n, s.sopt.MinN)
	}
	s.mu.Lock()
	f := s.fits[mod64(n, s.period)]
	s.mu.Unlock()
	switch {
	case f == nil:
		return "residue class not fitted"
	case !f.ok:
		return "residue class fit failed: " + f.why
	default:
		return fmt.Sprintf("n=%d below the fitted chamber base %d", n, f.base)
	}
}

// SolveLadder answers a whole size ladder. Sizes sharing a residue class
// mod Period share one fit; the reports come back index-aligned with ns.
func (s *ScalingSolver) SolveLadder(ctx context.Context, ns []int64) ([]*Report, error) {
	out := make([]*Report, len(ns))
	for i, n := range ns {
		rep, err := s.EvalCtx(ctx, n)
		if err != nil {
			return out, err
		}
		out[i] = rep
	}
	return out, nil
}

// MissPoly is the public closed form of one reference: the volume
// quasi-polynomial plus the per-residue-class counter polynomials fitted
// so far.
type MissPoly struct {
	RefID    string
	PureCold bool
	Volume   qpoly.Piecewise
	// Residues maps n mod Period to the class's counter polynomials
	// (valid for n ≥ Base in the class).
	Residues map[int64]MissPolyClass
}

// MissPolyClass is one residue class's closed form.
type MissPolyClass struct {
	Base                       int64
	Analyzed, Hits, Cold, Repl qpoly.QPoly
}

// MissPolys returns the per-reference closed forms accumulated so far,
// sorted by reference ID. Pure-cold references carry no residue
// classes — their counters are the volume itself.
func (s *ScalingSolver) MissPolys() []MissPoly {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]MissPoly, 0, len(s.refs))
	for _, rs := range s.refs {
		mp := MissPoly{RefID: rs.ref.ID, PureCold: rs.pureCold,
			Volume: rs.volume, Residues: map[int64]MissPolyClass{}}
		for r, f := range s.fits {
			if !f.ok {
				continue
			}
			if rf := f.refs[rs.ref.ID]; rf != nil {
				mp.Residues[r] = MissPolyClass{Base: f.base,
					Analyzed: rf.analyzed, Hits: rf.hits, Cold: rf.cold, Repl: rf.repl}
			}
		}
		out = append(out, mp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].RefID < out[j].RefID })
	return out
}
