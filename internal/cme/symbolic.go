package cme

import (
	"context"
	"sort"

	"cachemodel/internal/budget"
	"cachemodel/internal/ir"
	"cachemodel/internal/poly"
	"cachemodel/internal/reuse"
	"cachemodel/internal/trace"
)

// This file implements the symbolic region solver: instead of classifying
// every iteration point, it classifies one representative region and
// replicates the verdicts across the translates that provably share them,
// and resolves all-cold references by pure lattice-point counting. Reports
// are bit-identical to the enumerating solver; Options.NoSymbolic turns
// the fast path off for benchmarking and equivalence testing.
//
// Soundness rests on the same per-depth invariance predicates the verdict
// memo uses (programTraits / vectorMemoInfo). A dimension k is eligible
// for a reference when EVERY reuse vector of the reference carries
// invariance bit k. Translating the consumer by t·e_k then
//
//   - keeps the recursion shape of every deeper level and every guard
//     (rectAt[k]: nothing mentions I_{k+1});
//   - keeps each vector's replacement-walk verdict AND scan count
//     whenever the common address delta c_k·t is a multiple of the line
//     size: all visited addresses, the consumer's and the producer's
//     shift by the same whole-line amount, so every line identity
//     difference, set-membership relation and distinctness relation in
//     the walk is preserved (the walk only ever compares lines against
//     the consumer's line and set). The translation period is therefore
//     trace.LineWrapPeriod(c_k, LineBytes) — a divisor of the set-wrap
//     period numSets·lineBytes/gcd, and 1 when addresses ignore I_{k+1}
//     entirely (the time loop of a stepped program);
//   - leaves each vector's cold equation unchanged except for the
//     producer-existence bound at depth k itself, which is an interval of
//     idx[k] computed from the producer's depth-k bound pair — the slab
//     decomposition below splits the dimension at those interval
//     boundaries, so the verdict pattern is constant (period-P periodic)
//     within each slab.
//
// Within a slab longer than the period P, the solver classifies the first
// P values (the representatives) and replicates their aggregate outcomes
// onto the remaining values. Under a budget probe it instead records the
// per-point (outcome, scanned) stream of each representative subtree and
// replays it point by point for every replica, issuing the same
// Check(1, scanned) sequence the enumerator would have issued — budget
// trip points, degradation decisions and partial counts stay
// bit-identical even under fault injection (the PR 2 memo's parity
// discipline, lifted from single walks to whole regions).

// refSym is the per-reference symbolic-region precomputation.
type refSym struct {
	// allCold: no reuse vector's producer-existence system has any
	// solution inside the reference's iteration space, so every point is a
	// cold miss (the replacement polytope is empty) and the tile resolves
	// by counting alone.
	allCold bool
	// dims[k] describes depth k when it is eligible for replication.
	dims []*dimSym
	// avoid is the dimension the tiler should keep contiguous (-1: none).
	avoid  int
	anyDim bool
}

// usable reports whether the fast path can improve on enumeration.
func (s *refSym) usable() bool { return s != nil && (s.allCold || s.anyDim) }

// dimSym is one eligible replication dimension of a reference.
type dimSym struct {
	period int64
	// ivs holds, per reuse vector, the producer-existence interval of
	// idx[k] as a pre-shifted affine pair over the prefix idx[0..k-1].
	ivs []ivSpec
}

type ivSpec struct {
	lo, hi ir.Affine
}

// symPatternCap bounds the recorded verdict stream of one representative
// subtree in budget mode; larger subtrees fall back to enumeration for
// their replicas (deterministically, so parity is unaffected).
const symPatternCap = 1 << 15

// symPattern is a recorded per-point verdict stream of one representative
// subtree, in enumeration order.
type symPattern struct {
	outs    []byte
	scans   []int64
	overrun bool
}

// shiftAffine returns a'(idx) = a(idx − D) + add: the same coefficients
// with the displacement folded into the constant.
func shiftAffine(a ir.Affine, D []int64, add int64) ir.Affine {
	out := ir.Affine{Const: a.Const + add, Coeff: append([]int64(nil), a.Coeff...)}
	for d := 1; d <= a.MaxDepthUsed(); d++ {
		if c := a.At(d); c != 0 && d-1 < len(D) {
			out.Const -= c * D[d-1]
		}
	}
	return out
}

// varMinus returns the affine I_{m+1} − a.
func varMinus(m int, a ir.Affine) ir.Affine {
	n := len(a.Coeff)
	if m+1 > n {
		n = m + 1
	}
	co := make([]int64, n)
	for i, c := range a.Coeff {
		co[i] = -c
	}
	co[m]++
	return ir.Affine{Const: -a.Const, Coeff: co}
}

// minusVar returns the affine a − I_{m+1}.
func minusVar(a ir.Affine, m int) ir.Affine {
	n := len(a.Coeff)
	if m+1 > n {
		n = m + 1
	}
	co := make([]int64, n)
	copy(co, a.Coeff)
	co[m]--
	return ir.Affine{Const: a.Const, Coeff: co}
}

// producerSystem renders "the producer point of v exists" as affine
// constraints over the consumer iteration: the producer's bounds and
// guards composed with the displacement idx − IdxDiff. ok = false when
// the system cannot be expressed over the consumer's depth.
func producerSystem(v *reuse.Vector, depth int) ([]ir.NConstraint, bool) {
	p := v.Producer.Stmt
	if p.Depth() != depth {
		return nil, false
	}
	D := v.IdxDiff
	var sys []ir.NConstraint
	for m := 0; m < depth; m++ {
		bl, bh := p.Bounds[m].Lo, p.Bounds[m].Hi
		if bl.MaxDepthUsed() > depth || bh.MaxDepthUsed() > depth {
			return nil, false
		}
		// Lo(idx−D) + D[m] <= idx[m] <= Hi(idx−D) + D[m]
		sys = append(sys,
			ir.NConstraint{Expr: varMinus(m, shiftAffine(bl, D, D[m]))},
			ir.NConstraint{Expr: minusVar(shiftAffine(bh, D, D[m]), m)})
	}
	for _, g := range p.Guards {
		if g.Expr.MaxDepthUsed() > depth {
			return nil, false
		}
		sys = append(sys, ir.NConstraint{Expr: shiftAffine(g.Expr, D, 0), IsEq: g.IsEq})
	}
	return sys, true
}

// buildSymInfo derives the symbolic-region eligibility of every reference
// for one line size. It reads only program structure, reuse vectors and
// the memo invariance masks — never array bases — so, like the memo
// table, one table serves every capacity, associativity and layout that
// shares the line size.
func buildSymInfo(np *ir.NProgram, spaces map[*ir.NStmt]*poly.Space,
	vecs map[*ir.NRef][]*reuse.Vector, memo map[*reuse.Vector]memoInfo,
	dyn map[*ir.NRef][]*reuse.DynamicPair, lineBytes int64) map[*ir.NRef]*refSym {

	out := make(map[*ir.NRef]*refSym, len(np.Refs))
	traits := programTraits(np)
	for _, r := range np.Refs {
		rs := &refSym{avoid: -1}
		out[r] = rs
		if np.Depth == 0 || np.Depth > 64 {
			continue
		}
		if dyn != nil && len(dyn[r]) > 0 {
			// Dynamically generated reuse is not invariance-analysed.
			continue
		}
		sp := spaces[r.Stmt]
		n := sp.Depth
		vs := vecs[r]
		rs.dims = make([]*dimSym, n)

		// Empty replacement polytope: every vector's producer-existence
		// system has no solution inside the consumer's space.
		rs.allCold = true
		for _, v := range vs {
			sys, ok := producerSystem(v, n)
			if !ok || sp.CountWith(poly.FullTile(), sys) > 0 {
				rs.allCold = false
				break
			}
		}
		if rs.allCold {
			continue
		}

		blo, bhi, bok := sp.BoundingBox()
		for k := 0; k < n; k++ {
			if !traits.zero[k] && !traits.shared[k] {
				continue
			}
			period := int64(1)
			if traits.coeff[k] != 0 {
				period = trace.LineWrapPeriod(traits.coeff[k], lineBytes)
			}
			if bok && bhi[k]-blo[k]+1 <= period {
				continue // the dimension can never hold more than one period
			}
			ds := &dimSym{period: period, ivs: make([]ivSpec, 0, len(vs))}
			ok := len(vs) > 0
			for _, v := range vs {
				if memo[v].invMask&(1<<k) == 0 {
					ok = false
					break
				}
				p := v.Producer.Stmt
				if p.Depth() != n {
					ok = false
					break
				}
				bl, bh := p.Bounds[k].Lo, p.Bounds[k].Hi
				if bl.MaxDepthUsed() > k || bh.MaxDepthUsed() > k {
					ok = false // the producer's depth-k bound is not outer-only
					break
				}
				D := v.IdxDiff
				ds.ivs = append(ds.ivs, ivSpec{
					lo: shiftAffine(bl, D, D[k]),
					hi: shiftAffine(bh, D, D[k]),
				})
			}
			if ok {
				rs.dims[k] = ds
				rs.anyDim = true
				if rs.avoid < 0 && period == 1 {
					rs.avoid = k
				}
			}
		}
	}
	return out
}

// symDelta is the aggregate outcome of one representative subtree.
type symDelta struct {
	analyzed, hits, cold, repl int64
}

// symRun executes one (reference, tile) solve with region replication,
// bit-identical to plain enumeration of the same tile.
type symRun struct {
	a    *Analyzer
	c    *classifier
	r    *ir.NRef
	sym  *refSym
	sp   *poly.Space
	t    poly.Tile
	rr   *RefReport
	p    *budget.Probe
	perr error
	idx  []int64
	nRep int64 // points resolved without classification

	rec    *symPattern  // active budget-mode recording (nil otherwise)
	cuts   [][]int64    // per-depth slab-boundary scratch
	deltas [][]symDelta // per-depth aggregate scratch
}

// runTileSym is the symbolic counterpart of runTile.
func (a *Analyzer) runTileSym(c *classifier, r *ir.NRef, sym *refSym, t poly.Tile, rr *RefReport, p *budget.Probe) error {
	sp := a.spaces[r.Stmt]
	before := rr.Analyzed
	s := &symRun{a: a, c: c, r: r, sym: sym, sp: sp, t: t, rr: rr, p: p,
		idx:    make([]int64, sp.Depth),
		cuts:   make([][]int64, sp.Depth),
		deltas: make([][]symDelta, sp.Depth),
	}
	if sym.allCold {
		s.runAllCold()
	} else {
		s.run(0)
	}
	total := rr.Analyzed - before
	mTilesSolved.Inc()
	mPointsClassed.Add(total)
	mPointsSymbolic.Add(s.nRep)
	mPointsEnumerated.Add(total - s.nRep)
	return s.perr
}

// runAllCold resolves an empty-replacement-polytope reference: every point
// is a cold miss with zero scan work. Without a probe the tile is counted
// in closed form; with one, the points are replayed individually so the
// budget checkpoint sequence matches the enumerator's exactly.
func (s *symRun) runAllCold() {
	if s.p == nil {
		cnt := s.sp.CountTile(s.t)
		s.rr.Analyzed += cnt
		s.rr.Cold += cnt
		s.nRep += cnt
		return
	}
	s.sp.EnumerateTile(s.t, func([]int64) bool {
		s.nRep++
		return s.emit(ColdMiss, 0)
	})
}

// emit accounts one point's outcome, feeding the active recording and the
// budget probe exactly as the enumerating loop would.
func (s *symRun) emit(out Outcome, scanned int64) bool {
	s.rr.Analyzed++
	switch out {
	case Hit:
		s.rr.Hits++
	case ColdMiss:
		s.rr.Cold++
	case ReplacementMiss:
		s.rr.Repl++
	}
	if s.rec != nil {
		if len(s.rec.outs) >= symPatternCap {
			s.rec.overrun = true
		} else {
			s.rec.outs = append(s.rec.outs, byte(out))
			s.rec.scans = append(s.rec.scans, scanned)
		}
	}
	if s.p != nil {
		if s.perr = s.p.Check(1, scanned); s.perr != nil {
			return false
		}
	}
	return true
}

// run recurses over the iteration space in lexicographic order, matching
// EnumerateTile's structure level by level; at an eligible dimension it
// switches to slab decomposition instead of the plain loop.
func (s *symRun) run(k int) bool {
	if k == s.sp.Depth {
		out, scanned := s.c.classify(s.r, s.idx)
		return s.emit(out, scanned)
	}
	lo, hi, ok := s.sp.RangeAt(k, s.idx)
	if !ok {
		return true
	}
	if k == s.t.Dim {
		if s.t.Lo > lo {
			lo = s.t.Lo
		}
		if s.t.Hi < hi {
			hi = s.t.Hi
		}
		if lo > hi {
			return true
		}
	}
	var d *dimSym
	if s.rec == nil { // replication is disabled inside a recording
		d = s.sym.dims[k]
	}
	if d == nil || hi-lo+1 <= d.period {
		for v := lo; v <= hi; v++ {
			s.idx[k] = v
			if !s.run(k + 1) {
				return false
			}
		}
		return true
	}
	return s.runSlabs(k, d, lo, hi)
}

// slabCuts computes the ascending slab boundaries of [lo, hi] at depth k:
// the values where some vector's producer-existence interval opens or
// closes. Within a slab every vector's existence status is constant along
// the dimension, so verdicts repeat with the dimension's period.
func (s *symRun) slabCuts(k int, d *dimSym, lo, hi int64) []int64 {
	cuts := s.cuts[k][:0]
	for _, iv := range d.ivs {
		a := iv.lo.Eval(s.idx)
		b := iv.hi.Eval(s.idx) + 1
		if a > lo && a <= hi {
			cuts = append(cuts, a)
		}
		if b > lo && b <= hi {
			cuts = append(cuts, b)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	w := 0
	for i, c := range cuts {
		if i == 0 || c != cuts[w-1] {
			cuts[w] = c
			w++
		}
	}
	cuts = cuts[:w]
	s.cuts[k] = cuts
	return cuts
}

func (s *symRun) runSlabs(k int, d *dimSym, lo, hi int64) bool {
	cuts := s.slabCuts(k, d, lo, hi)
	start := lo
	for ci := 0; ci <= len(cuts); ci++ {
		end := hi
		if ci < len(cuts) {
			end = cuts[ci] - 1
		}
		if !s.runSlab(k, d, start, end) {
			return false
		}
		start = end + 1
		// Re-read the cut list: deeper recursion shares the per-depth
		// scratch only below k, so the slice is intact, but it may have
		// been moved by append in a sibling call.
		cuts = s.cuts[k]
	}
	return true
}

// runSlab solves one slab [lo, hi] of depth k: when the slab holds more
// than one period P, the first P values are classified and the remaining
// values inherit their verdicts by translation.
func (s *symRun) runSlab(k int, d *dimSym, lo, hi int64) bool {
	if lo > hi {
		return true
	}
	n := hi - lo + 1
	P := d.period
	if n <= P {
		for v := lo; v <= hi; v++ {
			s.idx[k] = v
			if !s.run(k + 1) {
				return false
			}
		}
		return true
	}
	if s.p == nil {
		// Aggregate replication: classify the representatives, then copy
		// their aggregate outcomes onto every further translate.
		dl := s.deltas[k]
		if int64(cap(dl)) < P {
			dl = make([]symDelta, P)
		} else {
			dl = dl[:P]
		}
		s.deltas[k] = dl
		for j := int64(0); j < P; j++ {
			before := symDelta{s.rr.Analyzed, s.rr.Hits, s.rr.Cold, s.rr.Repl}
			s.idx[k] = lo + j
			if !s.run(k + 1) {
				return false
			}
			dl[j] = symDelta{
				analyzed: s.rr.Analyzed - before.analyzed,
				hits:     s.rr.Hits - before.hits,
				cold:     s.rr.Cold - before.cold,
				repl:     s.rr.Repl - before.repl,
			}
		}
		dl = s.deltas[k] // recursion below k never touches level k's scratch
		for j := int64(0); j < P; j++ {
			extra := (n - 1 - j) / P // translates beyond the representative
			if extra == 0 {
				continue
			}
			s.rr.Analyzed += extra * dl[j].analyzed
			s.rr.Hits += extra * dl[j].hits
			s.rr.Cold += extra * dl[j].cold
			s.rr.Repl += extra * dl[j].repl
			s.nRep += extra * dl[j].analyzed
		}
		return true
	}
	// Budget mode: record each representative's per-point verdict stream
	// and replay it for the translates in enumeration order, so the probe
	// sees the identical Check(1, scanned) sequence (and trips at the
	// identical point) as under plain enumeration.
	pats := make([]*symPattern, P)
	for j := int64(0); j < P; j++ {
		pat := &symPattern{}
		s.rec = pat
		s.idx[k] = lo + j
		ok := s.run(k + 1)
		s.rec = nil
		if !ok {
			return false
		}
		pats[j] = pat
	}
	for v := lo + P; v <= hi; v++ {
		pat := pats[(v-lo)%P]
		if pat.overrun {
			// Subtree too large to record: classify this translate anew
			// (deeper replication may still engage).
			s.idx[k] = v
			if !s.run(k + 1) {
				return false
			}
			continue
		}
		for i, o := range pat.outs {
			s.nRep++
			if !s.emit(Outcome(o), pat.scans[i]) {
				return false
			}
		}
	}
	return true
}

// ---- fused batch variant ----

// symRunFused replays the same region logic for a fused candidate group:
// the line size (and hence every period and every slab) is shared across
// the group, so one slab decomposition replicates every candidate's
// aggregates at once. It runs only on unbudgeted solves; budgeted batch
// runs enumerate, which is trivially bit-identical.
type symRunFused struct {
	fc    *fusedClassifier
	r     *ir.NRef
	sym   *refSym
	sp    *poly.Space
	t     poly.Tile
	parts []RefReport
	ctx   context.Context
	idx   []int64
	nRep  int64 // replicated points per candidate
	nPts  int64 // classified points (context-poll cadence)

	cuts   [][]int64
	deltas [][]symDelta // per depth: P * len(parts) deltas, row-major
}

// runTileSym mirrors fusedClassifier.runTile for an eligible reference.
func (fc *fusedClassifier) runTileSym(ctx context.Context, r *ir.NRef, sym *refSym, t poly.Tile, parts []RefReport) {
	sp := fc.p.spaces[r.Stmt]
	var before int64
	for i := range parts {
		before += parts[i].Analyzed
	}
	s := &symRunFused{fc: fc, r: r, sym: sym, sp: sp, t: t, parts: parts, ctx: ctx,
		idx:    make([]int64, sp.Depth),
		cuts:   make([][]int64, sp.Depth),
		deltas: make([][]symDelta, sp.Depth),
	}
	if sym.allCold {
		cnt := sp.CountTile(t)
		for i := range parts {
			parts[i].Analyzed += cnt
			parts[i].Cold += cnt
		}
		s.nRep = cnt
	} else {
		s.run(0)
	}
	var after int64
	for i := range parts {
		after += parts[i].Analyzed
	}
	mTilesSolved.Inc()
	mPointsClassed.Add(after - before)
	mPointsSymbolic.Add(s.nRep * int64(len(parts)))
	mPointsEnumerated.Add(after - before - s.nRep*int64(len(parts)))
}

func (s *symRunFused) run(k int) bool {
	if k == s.sp.Depth {
		s.fc.classifyFused(s.r, s.idx, s.parts)
		s.nPts++
		return s.nPts&4095 != 0 || s.ctx.Err() == nil
	}
	lo, hi, ok := s.sp.RangeAt(k, s.idx)
	if !ok {
		return true
	}
	if k == s.t.Dim {
		if s.t.Lo > lo {
			lo = s.t.Lo
		}
		if s.t.Hi < hi {
			hi = s.t.Hi
		}
		if lo > hi {
			return true
		}
	}
	d := s.sym.dims[k]
	if d == nil || hi-lo+1 <= d.period {
		for v := lo; v <= hi; v++ {
			s.idx[k] = v
			if !s.run(k + 1) {
				return false
			}
		}
		return true
	}
	// Slab decomposition (same derivation as symRun.runSlabs).
	cuts := s.cuts[k][:0]
	for _, iv := range d.ivs {
		a := iv.lo.Eval(s.idx)
		b := iv.hi.Eval(s.idx) + 1
		if a > lo && a <= hi {
			cuts = append(cuts, a)
		}
		if b > lo && b <= hi {
			cuts = append(cuts, b)
		}
	}
	sort.Slice(cuts, func(i, j int) bool { return cuts[i] < cuts[j] })
	w := 0
	for i, c := range cuts {
		if i == 0 || c != cuts[w-1] {
			cuts[w] = c
			w++
		}
	}
	cuts = cuts[:w]
	s.cuts[k] = cuts
	start := lo
	for ci := 0; ci <= len(cuts); ci++ {
		end := hi
		if ci < len(cuts) {
			end = cuts[ci] - 1
		}
		if !s.runSlab(k, d, start, end) {
			return false
		}
		start = end + 1
		cuts = s.cuts[k]
	}
	return true
}

func (s *symRunFused) runSlab(k int, d *dimSym, lo, hi int64) bool {
	if lo > hi {
		return true
	}
	n := hi - lo + 1
	P := d.period
	if n <= P {
		for v := lo; v <= hi; v++ {
			s.idx[k] = v
			if !s.run(k + 1) {
				return false
			}
		}
		return true
	}
	nc := int64(len(s.parts))
	dl := s.deltas[k]
	if int64(cap(dl)) < P*nc {
		dl = make([]symDelta, P*nc)
	} else {
		dl = dl[:P*nc]
	}
	s.deltas[k] = dl
	for j := int64(0); j < P; j++ {
		row := dl[j*nc : (j+1)*nc]
		for i := range s.parts {
			row[i] = symDelta{s.parts[i].Analyzed, s.parts[i].Hits, s.parts[i].Cold, s.parts[i].Repl}
		}
		s.idx[k] = lo + j
		if !s.run(k + 1) {
			return false
		}
		for i := range s.parts {
			row[i] = symDelta{
				analyzed: s.parts[i].Analyzed - row[i].analyzed,
				hits:     s.parts[i].Hits - row[i].hits,
				cold:     s.parts[i].Cold - row[i].cold,
				repl:     s.parts[i].Repl - row[i].repl,
			}
		}
	}
	dl = s.deltas[k]
	for j := int64(0); j < P; j++ {
		extra := (n - 1 - j) / P
		if extra == 0 {
			continue
		}
		row := dl[j*nc : (j+1)*nc]
		for i := range s.parts {
			s.parts[i].Analyzed += extra * row[i].analyzed
			s.parts[i].Hits += extra * row[i].hits
			s.parts[i].Cold += extra * row[i].cold
			s.parts[i].Repl += extra * row[i].repl
		}
		s.nRep += extra * row[0].analyzed
	}
	return true
}
