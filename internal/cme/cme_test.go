package cme

import (
	"math/rand"
	"strings"
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

// prep normalises, lays out and wraps a subroutine for analysis.
func prep(t testing.TB, sub *ir.Subroutine, cfg cache.Config, opt Options) (*ir.NProgram, *Analyzer) {
	t.Helper()
	np, err := normalize.Normalize(sub)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatalf("layout: %v", err)
	}
	a, err := New(np, cfg, opt)
	if err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	return np, a
}

// checkExact asserts FindMisses matches the simulator per reference.
func checkExact(t *testing.T, np *ir.NProgram, a *Analyzer, cfg cache.Config) {
	t.Helper()
	rep := a.FindMisses()
	sim := trace.Simulate(np, cfg)
	for _, rr := range rep.Refs {
		st := sim.PerRef[rr.Ref]
		var simMiss, simAcc int64
		if st != nil {
			simMiss, simAcc = st.Misses, st.Accesses
		}
		if rr.Volume != simAcc {
			t.Errorf("%s [%s]: |RIS| = %d but simulator saw %d accesses", rr.Ref.ID, cfg, rr.Volume, simAcc)
		}
		if rr.Misses() != simMiss {
			t.Errorf("%s [%s]: analytical misses %d (cold %d, repl %d), simulator %d",
				rr.Ref.ID, cfg, rr.Misses(), rr.Cold, rr.Repl, simMiss)
		}
	}
}

// checkConservative asserts FindMisses never undercounts misses.
func checkConservative(t *testing.T, np *ir.NProgram, a *Analyzer, cfg cache.Config) {
	t.Helper()
	rep := a.FindMisses()
	sim := trace.Simulate(np, cfg)
	for _, rr := range rep.Refs {
		st := sim.PerRef[rr.Ref]
		var simMiss int64
		if st != nil {
			simMiss = st.Misses
		}
		if rr.Misses() < simMiss {
			t.Errorf("%s [%s]: analytical misses %d < simulator %d (must be conservative)",
				rr.Ref.ID, cfg, rr.Misses(), simMiss)
		}
	}
}

func tinyConfigs() []cache.Config {
	return []cache.Config{
		{SizeBytes: 256, LineBytes: 32, Assoc: 1},
		{SizeBytes: 256, LineBytes: 32, Assoc: 2},
		{SizeBytes: 512, LineBytes: 64, Assoc: 4},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 1},
	}
}

// stencil1D builds: DO I = 2, n−1: A(I) = B(I−1) + B(I) + B(I+1).
func stencil1D(n int64) *ir.Subroutine {
	b := ir.NewSub("stencil")
	A := b.Real8("A", n)
	B := b.Real8("B", n)
	b.Do("I", ir.Con(2), ir.Con(n-1)).
		Assign("S1", ir.R(A, ir.Var("I")),
			ir.R(B, ir.Var("I").PlusConst(-1)), ir.R(B, ir.Var("I")), ir.R(B, ir.Var("I").PlusConst(1))).
		End()
	return b.Build()
}

func TestStencilExact(t *testing.T) {
	for _, cfg := range tinyConfigs() {
		np, a := prep(t, stencil1D(64), cfg, Options{})
		checkExact(t, np, a, cfg)
	}
}

// copyThenRead exercises cross-nest group reuse: the second nest re-reads
// what the first nest wrote.
func copyThenRead(n int64) *ir.Subroutine {
	b := ir.NewSub("copyread")
	A := b.Real8("A", n)
	B := b.Real8("B", n)
	b.Do("I", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(A, ir.Var("I")), ir.R(B, ir.Var("I"))).
		End().
		Do("I", ir.Con(1), ir.Con(n)).
		Assign("S2", ir.R(B, ir.Var("I")), ir.R(A, ir.Var("I"))).
		End()
	return b.Build()
}

func TestCrossNestExact(t *testing.T) {
	for _, cfg := range tinyConfigs() {
		np, a := prep(t, copyThenRead(48), cfg, Options{})
		checkExact(t, np, a, cfg)
	}
}

// transpose2D walks B against the layout: B(J,I) inside an I-J nest, plus a
// row-order reader of the same array — non-uniformly generated pair, where
// the analysis may overestimate (the paper's MMT effect) but never
// underestimate.
func transpose2D(n int64) *ir.Subroutine {
	b := ir.NewSub("transpose")
	A := b.Real8("A", n, n)
	B := b.Real8("B", n, n)
	b.Do("I", ir.Con(1), ir.Con(n)).
		Do("J", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(A, ir.Var("J"), ir.Var("I")), ir.R(B, ir.Var("I"), ir.Var("J"))).
		End().End().
		Do("I", ir.Con(1), ir.Con(n)).
		Do("J", ir.Con(1), ir.Con(n)).
		Assign("S2", nil, ir.R(B, ir.Var("J"), ir.Var("I"))).
		End().End()
	return b.Build()
}

func TestTransposeConservative(t *testing.T) {
	for _, cfg := range tinyConfigs() {
		np, a := prep(t, transpose2D(16), cfg, Options{})
		checkConservative(t, np, a, cfg)
	}
}

// triangular nest with an IF guard: exercises RIS membership in the cold
// equations.
func triangularGuarded(n int64) *ir.Subroutine {
	b := ir.NewSub("tri")
	A := b.Real8("A", n, n)
	b.Do("I", ir.Con(1), ir.Con(n)).
		Do("J", ir.Var("I"), ir.Con(n)).
		Assign("S1", ir.R(A, ir.Var("J"), ir.Var("I"))).
		IfCond(ir.Cond{LHS: ir.Var("J"), Op: ir.EQ, RHS: ir.Con(n)}).
		Assign("S2", nil, ir.R(A, ir.Var("I"), ir.Var("I"))).
		End().
		End().End()
	return b.Build()
}

func TestTriangularGuardedConservative(t *testing.T) {
	for _, cfg := range tinyConfigs() {
		np, a := prep(t, triangularGuarded(20), cfg, Options{})
		checkConservative(t, np, a, cfg)
	}
}

// TestPaperLRUOverestimates: the paper-faithful replacement test (no reset
// on re-touch) must classify at least as many misses as the exact-LRU
// variant.
func TestPaperLRUOverestimates(t *testing.T) {
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 1}
	subA := copyThenRead(48)
	npA, aExact := prep(t, subA, cfg, Options{})
	repExact := aExact.FindMisses()
	_, aPaper := prep(t, copyThenRead(48), cfg, Options{PaperLRU: true})
	repPaper := aPaper.FindMisses()
	_ = npA
	if repPaper.ExactMisses() < repExact.ExactMisses() {
		t.Errorf("paper LRU misses %d < exact-LRU misses %d", repPaper.ExactMisses(), repExact.ExactMisses())
	}
}

// TestEstimateWithinInterval: the sampled estimate must stay within the
// requested half-width of the exact per-reference ratios (with slack for
// the 95% confidence level across many refs).
func TestEstimateWithinInterval(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2}
	np, a := prep(t, transpose2D(40), cfg, Options{})
	exact := a.FindMisses()
	est, err := a.EstimateMisses(sampling.Plan{C: 0.95, W: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	_ = np
	d := est.MissRatio() - exact.MissRatio()
	if d < 0 {
		d = -d
	}
	// Miss ratios are in percent; w = 0.05 is 5 percentage points.
	if d > 5 {
		t.Errorf("estimate %.2f%% vs exact %.2f%%: |Δ| = %.2f > 5", est.MissRatio(), exact.MissRatio(), d)
	}
	for _, rr := range est.Refs {
		if rr.Sampled && rr.Analyzed > rr.Volume {
			t.Errorf("%s: sampled %d > volume %d", rr.Ref.ID, rr.Analyzed, rr.Volume)
		}
	}
}

// TestEstimateSmallRISExhaustive: tiny RISs must be analysed exhaustively.
func TestEstimateSmallRISExhaustive(t *testing.T) {
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 1}
	_, a := prep(t, stencil1D(16), cfg, Options{})
	rep, err := a.EstimateMisses(sampling.Plan{C: 0.95, W: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	for _, rr := range rep.Refs {
		if rr.Sampled {
			t.Errorf("%s: sampled although |RIS| = %d is below both plans", rr.Ref.ID, rr.Volume)
		}
		if rr.Analyzed != rr.Volume {
			t.Errorf("%s: analysed %d of %d", rr.Ref.ID, rr.Analyzed, rr.Volume)
		}
	}
}

// randomProgram builds a random 2-deep loop nest over small arrays with
// random affine subscripts — fodder for the conservativeness property.
func randomProgram(rng *rand.Rand, id int64) *ir.Subroutine {
	b := ir.NewSub("rand")
	n := int64(8 + rng.Intn(8))
	A := b.Real8("A", n+4, n+4)
	B := b.Real8("B", n+4)
	nstmt := 1 + rng.Intn(3)
	b.Do("I", ir.Con(1), ir.Con(n)).
		Do("J", ir.Con(1), ir.Con(n))
	for s := 0; s < nstmt; s++ {
		off := func() int64 { return int64(rng.Intn(4)) }
		lhs := ir.R(A, ir.Var("J").PlusConst(off()), ir.Var("I").PlusConst(off()))
		read1 := ir.R(A, ir.Var("J").PlusConst(off()), ir.Var("I").PlusConst(off()))
		read2 := ir.R(B, ir.Var("J").PlusConst(off()))
		b.Assign("S", lhs, read1, read2)
	}
	b.End().End()
	return b.Build()
}

// TestPropertyConservative: across random programs and configurations, the
// analytical method never reports fewer misses than the simulator, and the
// RIS volumes match simulated access counts exactly.
func TestPropertyConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		sub := randomProgram(rng, int64(trial))
		cfg := tinyConfigs()[trial%len(tinyConfigs())]
		np, a := prep(t, sub, cfg, Options{})
		checkConservative(t, np, a, cfg)
	}
}

// TestPropertyExactUniformStencils: programs whose references to each array
// are all uniformly generated must be analysed exactly.
func TestPropertyExactUniformStencils(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 15; trial++ {
		n := int64(10 + rng.Intn(20))
		b := ir.NewSub("uni")
		A := b.Real8("A", n+4, n+4)
		B := b.Real8("B", n+4, n+4)
		off := func() int64 { return int64(rng.Intn(3)) }
		b.Do("I", ir.Con(1), ir.Con(n)).
			Do("J", ir.Con(1), ir.Con(n)).
			Assign("S1", ir.R(A, ir.Var("J").PlusConst(off()), ir.Var("I").PlusConst(off())),
				ir.R(B, ir.Var("J").PlusConst(off()), ir.Var("I").PlusConst(off())),
				ir.R(B, ir.Var("J").PlusConst(off()), ir.Var("I").PlusConst(off()))).
			End().End()
		cfg := tinyConfigs()[trial%len(tinyConfigs())]
		np, a := prep(t, b.Build(), cfg, Options{})
		checkExact(t, np, a, cfg)
	}
}

// TestEvictThenRefetch is the regression test for the backward-scan
// replacement equation: the reused line is evicted mid-interval but
// re-fetched by a closer access that only a non-uniform reference makes,
// ... modelled here with a uniform pattern: the consumer's line is touched
// repeatedly inside a long interval, so the line survives even though the
// interval as a whole holds more than k distinct conflicting lines. A
// forward scan with early exit misclassifies this as a miss.
func TestEvictThenRefetch(t *testing.T) {
	// Direct-mapped, 4 sets of 32 B. A(1..4) is one line; C spans many
	// lines that alias A's set.
	cfg := cache.Config{SizeBytes: 128, LineBytes: 32, Assoc: 1}
	b := ir.NewSub("refetch")
	A := b.Real8("A", 4)   // one line, set 0
	C := b.Real8("C", 128) // 32 lines, 8 alias set 0
	// Nest 1: touch A, then sweep C (evicts A's line), then touch A again
	// near the end — the simulator sees the final touch and hits in nest 2.
	b.Do("I", ir.Con(1), ir.Con(4)).
		Assign("S1", nil, ir.R(A, ir.Var("I"))).
		End().
		Do("I", ir.Con(1), ir.Con(128)).
		Assign("S2", nil, ir.R(C, ir.Var("I"))).
		End().
		Do("I", ir.Con(1), ir.Con(4)).
		Assign("S3", nil, ir.R(A, ir.Var("I"))).
		End().
		Do("I", ir.Con(1), ir.Con(4)).
		Assign("S4", nil, ir.R(A, ir.Var("I"))).
		End()
	np, a := prep(t, b.Build(), cfg, Options{})
	checkExact(t, np, a, cfg)
}

// TestReportAggregation: per-array and per-statement groupings preserve
// the totals and order by miss volume.
func TestReportAggregation(t *testing.T) {
	cfg := cache.Config{SizeBytes: 512, LineBytes: 32, Assoc: 1}
	_, a := prep(t, copyThenRead(64), cfg, Options{})
	rep := a.FindMisses()
	for _, groups := range [][]Aggregate{rep.ByArray(), rep.ByStatement()} {
		var acc int64
		var miss float64
		for _, g := range groups {
			acc += g.Accesses
			miss += g.Misses
		}
		if acc != rep.TotalAccesses() {
			t.Errorf("grouped accesses %d != %d", acc, rep.TotalAccesses())
		}
		if d := miss - rep.EstimatedMisses(); d > 1e-6 || d < -1e-6 {
			t.Errorf("grouped misses %.1f != %.1f", miss, rep.EstimatedMisses())
		}
		for i := 1; i < len(groups); i++ {
			if groups[i-1].Misses < groups[i].Misses {
				t.Errorf("groups not sorted by miss volume")
			}
		}
	}
	var sb strings.Builder
	rep.WriteSummary(&sb)
	if !strings.Contains(sb.String(), "FindMisses") || !strings.Contains(sb.String(), "A") {
		t.Errorf("summary missing content:\n%s", sb.String())
	}
}

// TestConfidenceBounds: the realised aggregate bound must cover the true
// (exhaustive) miss ratio, and a census reports zero width.
func TestConfidenceBounds(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2}
	plan := sampling.Plan{C: 0.95, W: 0.05}
	_, a := prep(t, transpose2D(40), cfg, Options{})
	exact := a.FindMisses()
	est, err := a.EstimateMisses(plan)
	if err != nil {
		t.Fatal(err)
	}
	bound := est.MissRatioBound(plan)
	if bound <= 0 || bound > 6 {
		t.Errorf("aggregate bound = %.3f pp, want (0, 6]", bound)
	}
	d := est.MissRatio() - exact.MissRatio()
	if d < 0 {
		d = -d
	}
	if d > bound+1 { // +1pp slack for the 5% failure probability
		t.Errorf("true error %.2f exceeds bound %.2f", d, bound)
	}
	if exact.MissRatioBound(plan) != 0 {
		t.Error("census must have zero bound")
	}
}

// TestNonUniformTranspose implements the paper's §8 future work check: a
// transpose's read and write are not uniformly generated, so the paper's
// method overestimates; with NonUniform resolution the analysis matches
// the simulator exactly (the producer iteration is uniquely solvable).
func TestNonUniformTranspose(t *testing.T) {
	build := func() *ir.Subroutine {
		b := ir.NewSub("tr")
		A := b.Real8("A", 24, 24)
		B := b.Real8("B", 24, 24)
		b.Do("I", ir.Con(1), ir.Con(24)).
			Do("J", ir.Con(1), ir.Con(24)).
			Assign("S1", ir.R(B, ir.Var("J"), ir.Var("I")), ir.R(A, ir.Var("I"), ir.Var("J"))).
			End().End().
			// Second nest re-reads B in transposed order: its producer in
			// the first nest is non-uniform but uniquely solvable.
			Do("I", ir.Con(1), ir.Con(24)).
			Do("J", ir.Con(1), ir.Con(24)).
			Assign("S2", nil, ir.R(B, ir.Var("I"), ir.Var("J"))).
			End().End()
		return b.Build()
	}
	for _, cfg := range []cache.Config{
		{SizeBytes: 1024, LineBytes: 32, Assoc: 1},
		{SizeBytes: 4096, LineBytes: 32, Assoc: 2},
	} {
		np, plain := prep(t, build(), cfg, Options{})
		repPlain := plain.FindMisses()
		sim := trace.Simulate(np, cfg)
		npNU, nu := prep(t, build(), cfg, Options{Reuse: reuse.Options{NonUniform: true}})
		repNU := nu.FindMisses()
		simNU := trace.Simulate(npNU, cfg)
		if repNU.ExactMisses() != simNU.Misses {
			t.Errorf("[%v] non-uniform analysis %d != simulator %d", cfg, repNU.ExactMisses(), simNU.Misses)
		}
		if repPlain.ExactMisses() < sim.Misses {
			t.Errorf("[%v] plain analysis undercounts", cfg)
		}
		if repNU.ExactMisses() > repPlain.ExactMisses() {
			t.Errorf("[%v] non-uniform resolution increased misses: %d > %d",
				cfg, repNU.ExactMisses(), repPlain.ExactMisses())
		}
	}
}

// TestNonUniformStillConservative: with kernels that have ambiguous
// producers (MMT's copy buffer), NonUniform must stay conservative.
func TestNonUniformStillConservative(t *testing.T) {
	cfg := cache.Config{SizeBytes: 2048, LineBytes: 32, Assoc: 2}
	np, a := prep(t, transpose2D(20), cfg, Options{Reuse: reuse.Options{NonUniform: true}})
	rep := a.FindMisses()
	sim := trace.Simulate(np, cfg)
	if rep.ExactMisses() < sim.Misses {
		t.Errorf("non-uniform analysis undercounts: %d < %d", rep.ExactMisses(), sim.Misses)
	}
}
