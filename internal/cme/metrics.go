package cme

import "cachemodel/internal/obs"

// Shared solver metrics, registered in the obs.Default registry.  Hot
// paths accumulate into plain local integers and flush here once per
// tile or classifier release, so the steady-state cost is a handful of
// uncontended atomic adds per tile — not per point.
var (
	mTilesSolved      = obs.Default.Counter("cme_tiles_solved_total")
	mPointsClassed    = obs.Default.Counter("cme_points_classified_total")
	mPointsSymbolic   = obs.Default.Counter("cme_points_symbolic_total")
	mPointsEnumerated = obs.Default.Counter("cme_points_enumerated_total")
	mWalks            = obs.Default.Counter("cme_walks_total")
	mWalkMemoHits     = obs.Default.Counter("cme_walk_memo_hits_total")
	mWalkSteps        = obs.Default.Counter("cme_walk_steps_total")
	// mWalkMemoDisabled counts reuse vectors whose memo arena the hit-rate
	// gate dropped (memoDisableAfter consecutive probe misses).
	mWalkMemoDisabled = obs.Default.Counter("cme_walk_memo_disabled_total")
	mFusedCandidates  = obs.Default.Histogram("cme_fused_walk_candidates", 1, 2, 4, 8, 16, 32)
	mCacheHits        = obs.Default.Counter("cme_resultcache_hits_total")
	mCacheMisses      = obs.Default.Counter("cme_resultcache_misses_total")
	mCacheEvictions   = obs.Default.Counter("cme_resultcache_evictions_total")
	mCacheCorrupt     = obs.Default.Counter("cme_resultcache_corrupt_total")
	mBatchCands       = obs.Default.Counter("cme_batch_candidates_total")
	mBatchDedup       = obs.Default.Counter("cme_batch_dedup_total")

	// Closed-form scaling tier.
	mScalingFits      = obs.Default.Counter("cme_scaling_residue_fits_total")
	mScalingFitSolves = obs.Default.Counter("cme_scaling_fit_solves_total")
	mScalingEvals     = obs.Default.Counter("cme_scaling_closed_evals_total")
	mScalingFallbacks = obs.Default.Counter("cme_scaling_fallbacks_total")

	// Geometry-parametric tier (geom.go): fits per (column, ref, residue
	// class), closed-form evaluations per (member, ref) — pure-cold fills
	// count in both cme_geom_eval_total and cme_geom_purecold_total —
	// anchor members fed to the fused solver, and refused pairs that fell
	// through to enumeration.
	mGeomFits      = obs.Default.Counter("cme_geom_fit_total")
	mGeomEvals     = obs.Default.Counter("cme_geom_eval_total")
	mGeomAnchors   = obs.Default.Counter("cme_geom_anchor_solves_total")
	mGeomPureCold  = obs.Default.Counter("cme_geom_purecold_total")
	mGeomFallbacks = obs.Default.Counter("cme_geom_fallback_total")
)
