package cme

import (
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/sampling"
)

// TestParallelDeterminism: worker count must not change results.
func TestParallelDeterminism(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2}
	_, seq := prep(t, transpose2D(40), cfg, Options{Workers: 1})
	_, par := prep(t, transpose2D(40), cfg, Options{Workers: 8})
	p := sampling.Plan{C: 0.95, W: 0.05}
	rs, err := seq.EstimateMisses(p)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := par.EstimateMisses(p)
	if err != nil {
		t.Fatal(err)
	}
	if rs.MissRatio() != rp.MissRatio() {
		t.Errorf("sequential %.6f%% != parallel %.6f%%", rs.MissRatio(), rp.MissRatio())
	}
	fs := seq.FindMisses()
	fp := par.FindMisses()
	if fs.ExactMisses() != fp.ExactMisses() {
		t.Errorf("FindMisses sequential %d != parallel %d", fs.ExactMisses(), fp.ExactMisses())
	}
}
