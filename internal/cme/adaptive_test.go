package cme

import (
	"math"
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/kernels"
	"cachemodel/internal/sampling"
)

// adaptivePlan is the paper's whole-program plan; the adaptive solver must
// honour exactly this (C, W) contract while drawing fewer points.
var adaptivePlan = sampling.Plan{C: 0.95, W: 0.05}

// TestAdaptiveFewerSamples is the headline property: on a built-in kernel,
// variance-driven early stopping draws strictly fewer samples than the
// a-priori plan while the a-priori run stays available as the hard cap.
func TestAdaptiveFewerSamples(t *testing.T) {
	cfg := cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 2}
	_, fixed := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{})
	_, adapt := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{Adaptive: true})

	fr, err := fixed.EstimateMisses(adaptivePlan)
	if err != nil {
		t.Fatal(err)
	}
	ar, err := adapt.EstimateMisses(adaptivePlan)
	if err != nil {
		t.Fatal(err)
	}

	var fixedN, adaptN int64
	sampled := false
	for i, frr := range fr.Refs {
		arr := ar.Refs[i]
		if frr.Sampled != arr.Sampled {
			t.Fatalf("%s: tier disagreement (fixed sampled=%v, adaptive sampled=%v)", frr.Ref.ID, frr.Sampled, arr.Sampled)
		}
		if !frr.Sampled {
			// Census tiers must be untouched by the adaptive flag.
			if frr.Analyzed != arr.Analyzed || frr.Hits != arr.Hits || frr.Cold != arr.Cold || frr.Repl != arr.Repl {
				t.Errorf("%s: census results differ under Adaptive", frr.Ref.ID)
			}
			continue
		}
		sampled = true
		fixedN += frr.Analyzed
		adaptN += arr.Analyzed
		if arr.Analyzed > frr.Analyzed {
			t.Errorf("%s: adaptive drew %d > a-priori cap %d", frr.Ref.ID, arr.Analyzed, frr.Analyzed)
		}
	}
	if !sampled {
		t.Fatal("no reference was sampled; the kernel is too small to exercise adaptivity")
	}
	if adaptN >= fixedN {
		t.Errorf("adaptive drew %d samples, a-priori plan %d; want strictly fewer", adaptN, fixedN)
	}
	t.Logf("hydro 24x24 %s: a-priori %d samples, adaptive %d (%.0f%%)", cfg, fixedN, adaptN, 100*float64(adaptN)/float64(fixedN))
}

// TestAdaptiveHonoursPlan is the fixed-seed statistical test of the (C, W)
// contract: across many independent seeds, the adaptive estimate must fall
// within ±W of the exact ratio at least about C of the time. With 40 runs at
// C = 0.95 the expected violation count is 2; ≥ 9 has probability < 1e-4
// under the contract, so the bound is stable for fixed seeds yet sharp
// enough to catch a broken stopping rule.
func TestAdaptiveHonoursPlan(t *testing.T) {
	cfg := cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 2}
	np, exact := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{})
	truth := map[int]float64{}
	for i, rr := range exact.FindMisses().Refs {
		truth[i] = rr.MissRatio()
	}

	const runs = 40
	trials, violations := 0, 0
	for seed := int64(1); seed <= runs; seed++ {
		a, err := New(np, cfg, Options{Adaptive: true, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.EstimateMisses(adaptivePlan)
		if err != nil {
			t.Fatal(err)
		}
		for i, rr := range rep.Refs {
			if !rr.Sampled {
				continue
			}
			trials++
			if math.Abs(rr.MissRatio()-truth[i]) > adaptivePlan.W {
				violations++
			}
		}
	}
	if trials == 0 {
		t.Fatal("no sampled references across any seed")
	}
	maxViol := trials * 9 / 40 // scaled: 9-of-40-per-ref tail bound
	if violations > maxViol {
		t.Errorf("adaptive estimate violated ±W in %d of %d trials (bound %d): stopping rule breaks the (C, W) contract",
			violations, trials, maxViol)
	}
	t.Logf("adaptive coverage: %d violations in %d trials (±%.2f at C=%.2f)", violations, trials, adaptivePlan.W, adaptivePlan.C)
}

// TestAdaptiveDeterministic: the adaptive path is a pure function of the
// seed — two runs agree bit-for-bit.
func TestAdaptiveDeterministic(t *testing.T) {
	cfg := cache.Config{SizeBytes: 8 << 10, LineBytes: 32, Assoc: 2}
	np, _ := prepKernel(t, kernels.Hydro(24, 24), cfg, Options{})
	run := func() *Report {
		a, err := New(np, cfg, Options{Adaptive: true, Seed: 7, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		rep, err := a.EstimateMisses(adaptivePlan)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	r1, r2 := run(), run()
	sameCounts(t, "adaptive determinism", r2, r1)
}
