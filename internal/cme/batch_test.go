package cme

import (
	"context"
	"errors"
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/cerr"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
)

// prepBatch normalises and baseline-lays-out a subroutine, then builds the
// geometry-invariant Prepared stage.
func prepBatch(t testing.TB, sub *ir.Subroutine, opt Options) (*ir.NProgram, *Prepared) {
	t.Helper()
	np, err := normalize.Normalize(sub)
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatalf("layout: %v", err)
	}
	p, err := Prepare(np, opt)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return np, p
}

// soloReport runs the classic per-candidate pipeline from scratch on a fresh
// build of the same subroutine: normalize, candidate layout, New, and either
// FindMisses or EstimateMisses. This is the golden reference SolveBatch must
// match bit-for-bit.
func soloReport(t testing.TB, build func() *ir.Subroutine, cfg cache.Config, lo *layout.Options, opt Options, plan *sampling.Plan) *Report {
	t.Helper()
	np, err := normalize.Normalize(build())
	if err != nil {
		t.Fatalf("normalize: %v", err)
	}
	use := layout.Options{}
	if lo != nil {
		use = *lo
	}
	if err := layout.AssignProgram(np, use); err != nil {
		t.Fatalf("layout: %v", err)
	}
	a, err := New(np, cfg, opt)
	if err != nil {
		t.Fatalf("analyzer: %v", err)
	}
	if plan == nil {
		return a.FindMisses()
	}
	rep, err := a.EstimateMisses(*plan)
	if err != nil {
		t.Fatalf("estimate: %v", err)
	}
	return rep
}

// sameCounts asserts two reports agree bit-for-bit on every per-reference
// aggregate the solvers produce.
func sameCounts(t *testing.T, label string, got, want *Report) {
	t.Helper()
	if got == nil {
		t.Fatalf("%s: nil report", label)
	}
	if len(got.Refs) != len(want.Refs) {
		t.Fatalf("%s: %d refs, want %d", label, len(got.Refs), len(want.Refs))
	}
	for i, g := range got.Refs {
		w := want.Refs[i]
		if g.Volume != w.Volume || g.Analyzed != w.Analyzed ||
			g.Hits != w.Hits || g.Cold != w.Cold || g.Repl != w.Repl ||
			g.Sampled != w.Sampled || !g.Complete {
			t.Errorf("%s ref %d (%s): got vol=%d n=%d hit=%d cold=%d repl=%d sampled=%v complete=%v; want vol=%d n=%d hit=%d cold=%d repl=%d sampled=%v",
				label, i, w.Ref.ID,
				g.Volume, g.Analyzed, g.Hits, g.Cold, g.Repl, g.Sampled, g.Complete,
				w.Volume, w.Analyzed, w.Hits, w.Cold, w.Repl, w.Sampled)
		}
	}
}

// batchPrograms are the golden-sweep subjects: straight-line reuse,
// cross-nest group reuse, and a transposed walk.
var batchPrograms = []struct {
	name  string
	build func() *ir.Subroutine
}{
	{"stencil", func() *ir.Subroutine { return stencil1D(64) }},
	{"copyread", func() *ir.Subroutine { return copyThenRead(48) }},
	{"transpose", func() *ir.Subroutine { return transpose2D(12) }},
}

// sweepCandidates builds the golden design space: every tiny geometry (two
// distinct line sizes, so the fused solver forms several fuse groups) under
// three layouts (baseline plus two paddings of A).
func sweepCandidates() []Candidate {
	// Pad both arrays: whichever is placed first, its pad shifts the other,
	// so every program sees three genuinely distinct layouts.
	pads := []*layout.Options{
		nil,
		{PadOf: map[string]int64{"A": 8, "B": 8}},
		{PadOf: map[string]int64{"A": 64, "B": 64}},
	}
	var cands []Candidate
	for _, cfg := range tinyConfigs() {
		for pi, lo := range pads {
			cands = append(cands, Candidate{
				Label:  cfg.String() + "/pad" + string(rune('0'+pi)),
				Config: cfg,
				Layout: lo,
			})
		}
	}
	return cands
}

// TestSolveBatchGoldenExact is the golden sweep: SolveBatch over four
// geometries times three paddings must be bit-identical to running the full
// classic pipeline independently per candidate, at any worker count.
func TestSolveBatchGoldenExact(t *testing.T) {
	for _, prog := range batchPrograms {
		np, p := prepBatch(t, prog.build(), Options{})
		base := make([]int64, len(np.Arrays))
		for i, a := range np.Arrays {
			base[i] = a.Base
		}
		cands := sweepCandidates()
		for _, workers := range []int{1, 4} {
			reps, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: workers})
			if err != nil {
				t.Fatalf("%s: SolveBatch: %v", prog.name, err)
			}
			for i, c := range cands {
				want := soloReport(t, prog.build, c.Config, c.Layout, Options{}, nil)
				sameCounts(t, prog.name+"/"+c.Label, reps[i], want)
			}
		}
		// The batch must leave the baseline layout in place.
		for i, a := range np.Arrays {
			if a.Base != base[i] {
				t.Errorf("%s: array %s base %d after batch, want baseline %d", prog.name, a.Name, a.Base, base[i])
			}
		}
	}
}

// TestSolveBatchGoldenPaperLRU repeats the golden sweep under the paper's
// verbatim replacement equations, whose fused walk takes the other branch.
func TestSolveBatchGoldenPaperLRU(t *testing.T) {
	opt := Options{PaperLRU: true}
	_, p := prepBatch(t, copyThenRead(48), opt)
	cands := sweepCandidates()
	reps, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 3})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for i, c := range cands {
		want := soloReport(t, func() *ir.Subroutine { return copyThenRead(48) }, c.Config, c.Layout, opt, nil)
		sameCounts(t, "paperlru/"+c.Label, reps[i], want)
	}
}

// TestSolveBatchGoldenNonUniform covers the dynamic-reuse fallback: with
// NonUniform enabled the fused solver degenerates to singleton groups running
// the plain classifier, and must still match solo FindMisses exactly.
func TestSolveBatchGoldenNonUniform(t *testing.T) {
	opt := Options{Reuse: reuse.Options{NonUniform: true}}
	_, p := prepBatch(t, transpose2D(12), opt)
	cands := sweepCandidates()
	reps, err := p.SolveBatch(context.Background(), cands, BatchOptions{Workers: 2})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	for i, c := range cands {
		want := soloReport(t, func() *ir.Subroutine { return transpose2D(12) }, c.Config, c.Layout, opt, nil)
		sameCounts(t, "nonuniform/"+c.Label, reps[i], want)
	}
}

// TestSolveBatchGoldenSampled checks the sampled tier: batch estimates under
// a fixed seed must be distribution-identical — in fact bit-identical, since
// the per-reference RNG streams are geometry-independent — to solo
// EstimateMisses.
func TestSolveBatchGoldenSampled(t *testing.T) {
	plan := sampling.Plan{C: 0.95, W: 0.05}
	_, p := prepBatch(t, stencil1D(512), Options{})
	cands := sweepCandidates()
	reps, err := p.SolveBatch(context.Background(), cands, BatchOptions{Plan: &plan, Workers: 4})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	sampledRefs := 0
	for i, c := range cands {
		want := soloReport(t, func() *ir.Subroutine { return stencil1D(512) }, c.Config, c.Layout, Options{}, &plan)
		sameCounts(t, "sampled/"+c.Label, reps[i], want)
		for _, rr := range reps[i].Refs {
			if rr.Sampled {
				sampledRefs++
			}
		}
	}
	if sampledRefs == 0 {
		t.Fatalf("no reference actually sampled; enlarge the program so the test exercises the sampled tier")
	}
}

// TestSolveBatchResultCache proves the content-addressed cache: a second
// identical sweep is served entirely from the cache, bit-identically.
func TestSolveBatchResultCache(t *testing.T) {
	np, p := prepBatch(t, copyThenRead(48), Options{})
	cands := sweepCandidates()
	rc := NewResultCache(0)
	opt := BatchOptions{Cache: rc, Workers: 2}

	first, err := p.SolveBatch(context.Background(), cands, opt)
	if err != nil {
		t.Fatalf("first SolveBatch: %v", err)
	}
	s1 := rc.Stats()
	wantMiss := int64(len(cands) * len(np.Refs))
	if s1.Hits != 0 || s1.Misses != wantMiss {
		t.Fatalf("first sweep stats = %+v, want 0 hits / %d misses", s1, wantMiss)
	}
	if s1.Entries != int(wantMiss) {
		t.Fatalf("first sweep stored %d entries, want %d", s1.Entries, wantMiss)
	}

	second, err := p.SolveBatch(context.Background(), cands, opt)
	if err != nil {
		t.Fatalf("second SolveBatch: %v", err)
	}
	s2 := rc.Stats()
	if s2.Hits != wantMiss || s2.Misses != wantMiss {
		t.Fatalf("second sweep stats = %+v, want %d hits / %d misses (all served from cache)", s2, wantMiss, wantMiss)
	}
	for i := range cands {
		sameCounts(t, "cached/"+cands[i].Label, second[i], first[i])
	}
}

// TestSolveBatchDuplicates: identical candidates inside one call solve once
// and copy; the cache observes only one set of misses per distinct candidate.
func TestSolveBatchDuplicates(t *testing.T) {
	np, p := prepBatch(t, stencil1D(64), Options{})
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 1}
	cands := []Candidate{
		{Label: "a", Config: cfg},
		{Label: "b", Config: cfg},
		{Label: "c", Config: cfg},
	}
	rc := NewResultCache(0)
	reps, err := p.SolveBatch(context.Background(), cands, BatchOptions{Cache: rc, Workers: 2})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	if got, want := rc.Stats().Misses, int64(len(np.Refs)); got != want {
		t.Errorf("duplicates were solved separately: %d cache misses, want %d", got, want)
	}
	sameCounts(t, "dup b", reps[1], reps[0])
	sameCounts(t, "dup c", reps[2], reps[0])
}

// TestSolveBatchCacheRoundTrip: Save/Load moves results across cache
// instances (the optional on-disk store).
func TestSolveBatchCacheRoundTrip(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{})
	cands := sweepCandidates()[:4]
	rc := NewResultCache(0)
	first, err := p.SolveBatch(context.Background(), cands, BatchOptions{Cache: rc, Workers: 2})
	if err != nil {
		t.Fatalf("SolveBatch: %v", err)
	}
	path := t.TempDir() + "/results.json"
	if err := rc.Save(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	rc2 := NewResultCache(0)
	if err := rc2.Load(path); err != nil {
		t.Fatalf("load: %v", err)
	}
	reps, err := p.SolveBatch(context.Background(), cands, BatchOptions{Cache: rc2, Workers: 2})
	if err != nil {
		t.Fatalf("SolveBatch after load: %v", err)
	}
	if s := rc2.Stats(); s.Misses != 0 {
		t.Errorf("reloaded cache missed %d times, want 0", s.Misses)
	}
	for i := range cands {
		sameCounts(t, "roundtrip/"+cands[i].Label, reps[i], first[i])
	}
}

// TestResultCacheLRU: the cache honours its capacity bound and counts
// evictions.
func TestResultCacheLRU(t *testing.T) {
	rc := NewResultCache(2)
	rc.put("a", cachedRef{Hits: 1})
	rc.put("b", cachedRef{Hits: 2})
	rc.put("c", cachedRef{Hits: 3}) // evicts a
	if _, ok := rc.get("a"); ok {
		t.Error("oldest entry survived past capacity")
	}
	if v, ok := rc.get("b"); !ok || v.Hits != 2 {
		t.Error("entry b lost")
	}
	rc.put("d", cachedRef{Hits: 4}) // evicts c (b was just touched)
	if _, ok := rc.get("c"); ok {
		t.Error("LRU order ignores recency of use")
	}
	s := rc.Stats()
	if s.Evictions != 2 || s.Entries != 2 {
		t.Errorf("stats = %+v, want 2 evictions, 2 entries", s)
	}
}

// TestSolveBatchCanceled: a cancelled context surfaces cerr.ErrCanceled.
func TestSolveBatchCanceled(t *testing.T) {
	_, p := prepBatch(t, stencil1D(64), Options{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := p.SolveBatch(ctx, sweepCandidates(), BatchOptions{Workers: 2})
	if !errors.Is(err, cerr.ErrCanceled) {
		t.Fatalf("err = %v, want cerr.ErrCanceled", err)
	}
}

// TestPreparedDigestStability: the digest must ignore layout (bases) but
// react to program structure and result-shaping options.
func TestPreparedDigestStability(t *testing.T) {
	np1, err := normalize.Normalize(stencil1D(64))
	if err != nil {
		t.Fatal(err)
	}
	d0 := programDigest(np1, Options{})
	if err := layout.AssignProgram(np1, layout.Options{PadOf: map[string]int64{"A": 64}}); err != nil {
		t.Fatal(err)
	}
	if d1 := programDigest(np1, Options{}); d1 != d0 {
		t.Error("digest changed with layout; it must be layout-invariant")
	}
	if d2 := programDigest(np1, Options{PaperLRU: true}); d2 == d0 {
		t.Error("digest ignored PaperLRU")
	}
	np2, err := normalize.Normalize(stencil1D(65))
	if err != nil {
		t.Fatal(err)
	}
	if d3 := programDigest(np2, Options{}); d3 == d0 {
		t.Error("digest ignored program structure")
	}
}
