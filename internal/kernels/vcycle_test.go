package kernels

import (
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/inline"
	"cachemodel/internal/interp"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/trace"
)

func TestVCycleClassification(t *testing.T) {
	p := VCycle(32, 2)
	st := inline.ClassifyProgram(p)
	if st.Calls != 14 || st.Inlined != 14 {
		t.Errorf("calls/inlined = %d/%d, want 14/14", st.Calls, st.Inlined)
	}
	if st.RAble != 1 {
		t.Errorf("R-able = %d, want 1 (CORNER's 16x16 formal over the fine grid)", st.RAble)
	}
	if st.NAble != 0 {
		t.Errorf("N-able = %d, want 0", st.NAble)
	}
}

// TestVCycleAddressExact: the inlined + normalised V-cycle must reproduce
// the reference interpreter's address stream bit for bit — this covers
// flat-alias sequence association (CLEAR) and renaming (CORNER, at n=32
// where its formal is renameable) inside a full program.
func TestVCycleAddressExact(t *testing.T) {
	for _, n := range []int64{16, 32} {
		testVCycleAddressExact(t, n)
	}
}

func testVCycleAddressExact(t *testing.T, n int64) {
	t.Helper()
	p := VCycle(n, 2)
	flat, _, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatal(err)
	}
	var got []int64
	trace.Execute(np, func(r *ir.NRef, idx []int64) bool {
		got = append(got, r.AddressAt(idx))
		return true
	})
	want, err := interp.Addresses(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("stream length %d, oracle %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("address %d: inlined %d, oracle %d", i, got[i], want[i])
		}
	}
}

// TestVCycleConservative: the analysis never undercounts on the V-cycle.
func TestVCycleConservative(t *testing.T) {
	p := VCycle(16, 1)
	np := prep(t, p)
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2}
	a, err := cme.New(np, cfg, cme.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := a.FindMisses()
	sim := trace.Simulate(np, cfg)
	if rep.TotalAccesses() != sim.Accesses {
		t.Fatalf("accesses %d vs %d", rep.TotalAccesses(), sim.Accesses)
	}
	if rep.ExactMisses() < sim.Misses {
		t.Errorf("FindMisses %d < simulator %d", rep.ExactMisses(), sim.Misses)
	}
}
