package kernels

import (
	"fmt"

	"cachemodel/internal/ir"
)

// VCycle is a three-level multigrid V-cycle — a fourth whole program that
// deliberately exercises the inlining paths the SPEC models do not:
//
//   - per-level smooth/residual/restrict/prolong subroutines whose array
//     actuals are all propagateable,
//   - CLEAR takes a 1-D assumed-size formal and receives 2-D grids:
//     FORTRAN sequence association, handled with flat alias views,
//   - CORNER takes a fixed 16×16 formal and receives the fine grid:
//     renameable (same rank, mismatched leading dimension, @AP' = @AP).
//
// n must be divisible by 4 and at least 16.
func VCycle(n, iters int64) *ir.Program {
	if n%4 != 0 || n < 16 {
		panic("kernels: VCycle needs n divisible by 4 and >= 16")
	}
	p := ir.NewProgram("VCycle")
	sizes := []int64{n, n / 2, n / 4}

	// Grids held in COMMON (shared arrays): solution U, rhs F, residual R
	// per level.
	var U, F, R []*ir.Array
	var common []*ir.Array
	for l, m := range sizes {
		u := ir.NewArray(fmt.Sprintf("U%d", l), 8, m, m)
		f := ir.NewArray(fmt.Sprintf("F%d", l), 8, m, m)
		r := ir.NewArray(fmt.Sprintf("R%d", l), 8, m, m)
		U, F, R = append(U, u), append(F, f), append(R, r)
		common = append(common, u, f, r)
	}

	i, j := ir.Var("i"), ir.Var("j")
	im1, ip1 := i.PlusConst(-1), i.PlusConst(1)
	jm1, jp1 := j.PlusConst(-1), j.PlusConst(1)

	// Per-level subroutines (loop bounds must be compile-time constants,
	// so each level gets its own instance, as real F77 multigrids do with
	// parameterised includes).
	for l, m := range sizes {
		sm := ir.NewSub(fmt.Sprintf("SMOOTH%d", l))
		v := sm.Formal("V", 8, m, m)
		f := sm.Formal("G", 8, m, m)
		sm.Do("j", ir.Con(2), ir.Con(m-1)).
			Do("i", ir.Con(2), ir.Con(m-1)).
			Assign("SM", ir.R(v, i, j),
				ir.R(v, i, j), ir.R(f, i, j),
				ir.R(v, im1, j), ir.R(v, ip1, j), ir.R(v, i, jm1), ir.R(v, i, jp1)).
			End().End()
		p.Add(sm.Build())

		rs := ir.NewSub(fmt.Sprintf("RESID%d", l))
		rv := rs.Formal("V", 8, m, m)
		rf := rs.Formal("G", 8, m, m)
		rr := rs.Formal("W", 8, m, m)
		rs.Do("j", ir.Con(2), ir.Con(m-1)).
			Do("i", ir.Con(2), ir.Con(m-1)).
			Assign("RS", ir.R(rr, i, j),
				ir.R(rf, i, j), ir.R(rv, i, j),
				ir.R(rv, im1, j), ir.R(rv, ip1, j), ir.R(rv, i, jm1), ir.R(rv, i, jp1)).
			End().End()
		p.Add(rs.Build())

		// CLEAR takes a 1-D assumed-size view of the grid: sequence
		// association through a flat alias.
		cl := ir.NewSub(fmt.Sprintf("CLEAR%d", l))
		w := cl.Formal("W", 8, 0)
		cl.Do("i", ir.Con(1), ir.Con(m*m)).
			Assign("CL", ir.R(w, i)).
			End()
		p.Add(cl.Build())
	}
	for l := 0; l < len(sizes)-1; l++ {
		nf, nc := sizes[l], sizes[l+1]
		_ = nf
		rt := ir.NewSub(fmt.Sprintf("RESTR%d", l))
		fine := rt.Formal("FN", 8, sizes[l], sizes[l])
		coarse := rt.Formal("CS", 8, nc, nc)
		i2 := i.Scale(2)
		j2 := j.Scale(2)
		rt.Do("j", ir.Con(1), ir.Con(nc)).
			Do("i", ir.Con(1), ir.Con(nc)).
			Assign("RT", ir.R(coarse, i, j),
				ir.R(fine, i2.PlusConst(-1), j2.PlusConst(-1)), ir.R(fine, i2, j2.PlusConst(-1)),
				ir.R(fine, i2.PlusConst(-1), j2), ir.R(fine, i2, j2)).
			End().End()
		p.Add(rt.Build())

		pr := ir.NewSub(fmt.Sprintf("PROL%d", l))
		pc := pr.Formal("CS", 8, nc, nc)
		pf := pr.Formal("FN", 8, sizes[l], sizes[l])
		pr.Do("j", ir.Con(1), ir.Con(nc)).
			Do("i", ir.Con(1), ir.Con(nc)).
			Assign("PR", ir.R(pf, i2.PlusConst(-1), j2.PlusConst(-1)),
				ir.R(pf, i2.PlusConst(-1), j2.PlusConst(-1)), ir.R(pc, i, j)).
			End().End()
		p.Add(pr.Build())
	}

	// CORNER: fixed-shape formal over the fine grid — renameable.
	co := ir.NewSub("CORNER")
	ct := co.Formal("T", 8, 16, 16)
	co.Do("j", ir.Con(1), ir.Con(16)).
		Do("i", ir.Con(1), ir.Con(16)).
		Assign("CO", ir.R(ct, i, j), ir.R(ct, i, j)).
		End().End()
	p.Add(co.Build())

	main := ir.NewSub("MAIN")
	main.Do("IT", ir.Con(1), ir.Con(iters)).
		Call("SMOOTH0", ir.ArgVar(U[0]), ir.ArgVar(F[0])).
		Call("RESID0", ir.ArgVar(U[0]), ir.ArgVar(F[0]), ir.ArgVar(R[0])).
		Call("CLEAR1", ir.ArgVar(U[1])).
		Call("RESTR0", ir.ArgVar(R[0]), ir.ArgVar(F[1])).
		Call("SMOOTH1", ir.ArgVar(U[1]), ir.ArgVar(F[1])).
		Call("RESID1", ir.ArgVar(U[1]), ir.ArgVar(F[1]), ir.ArgVar(R[1])).
		Call("CLEAR2", ir.ArgVar(U[2])).
		Call("RESTR1", ir.ArgVar(R[1]), ir.ArgVar(F[2])).
		Call("SMOOTH2", ir.ArgVar(U[2]), ir.ArgVar(F[2])).
		Call("PROL1", ir.ArgVar(U[2]), ir.ArgVar(U[1])).
		Call("SMOOTH1", ir.ArgVar(U[1]), ir.ArgVar(F[1])).
		Call("PROL0", ir.ArgVar(U[1]), ir.ArgVar(U[0])).
		Call("SMOOTH0", ir.ArgVar(U[0]), ir.ArgVar(F[0])).
		Call("CORNER", ir.ArgVar(U[0])).
		End()
	m := main.Build()
	m.Locals = append(m.Locals, common...)
	p.Add(m)
	p.SetMain("MAIN")
	return p
}
