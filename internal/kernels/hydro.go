// Package kernels builds the paper's workloads as IR programs: the three
// kernels of Figure 8 (Hydro, MGRID, MMT), transcribed statement by
// statement, and structurally faithful models of the three SPECfp95 whole
// programs of Table 5 (Tomcatv, Swim, Applu).
//
// The paper obtained its reference streams from the Polaris IR of the real
// FORTRAN sources after scalar optimisation; we reproduce that by recording
// each distinct array reference of a statement once (repeated reads of the
// same element within one statement are register-allocated by any
// reasonable backend, as the paper's Opts component does).
package kernels

import "cachemodel/internal/ir"

// Hydro is Livermore kernel 18 (2-D explicit hydrodynamics) exactly as in
// Figure 8, with KN = kn and JN = jn. Arrays are (jn+1)×(kn+1) REAL*8.
func Hydro(jn, kn int64) *ir.Program {
	p := ir.NewProgram("Hydro")
	b := ir.NewSub("HYDRO")
	dim := []int64{jn + 1, kn + 1}
	ZA := b.Real8("ZA", dim...)
	ZP := b.Real8("ZP", dim...)
	ZQ := b.Real8("ZQ", dim...)
	ZR := b.Real8("ZR", dim...)
	ZM := b.Real8("ZM", dim...)
	ZB := b.Real8("ZB", dim...)
	ZU := b.Real8("ZU", dim...)
	ZV := b.Real8("ZV", dim...)
	ZZ := b.Real8("ZZ", dim...)

	j := ir.Var("j")
	k := ir.Var("k")
	jm1 := j.PlusConst(-1)
	jp1 := j.PlusConst(1)
	km1 := k.PlusConst(-1)
	kp1 := k.PlusConst(1)

	// First nest: ZA and ZB.
	b.Do("k", ir.Con(2), ir.Con(kn)).
		Do("j", ir.Con(2), ir.Con(jn)).
		Assign("ZA", ir.R(ZA, j, k),
			ir.R(ZP, jm1, kp1), ir.R(ZQ, jm1, kp1), ir.R(ZP, jm1, k), ir.R(ZQ, jm1, k),
			ir.R(ZR, j, k), ir.R(ZR, jm1, k), ir.R(ZM, jm1, k), ir.R(ZM, jm1, kp1)).
		Assign("ZB", ir.R(ZB, j, k),
			ir.R(ZP, jm1, k), ir.R(ZQ, jm1, k), ir.R(ZP, j, k), ir.R(ZQ, j, k),
			ir.R(ZR, j, k), ir.R(ZR, j, km1), ir.R(ZM, j, k), ir.R(ZM, jm1, k)).
		End().End()

	// Second nest: ZU and ZV (repeated ZZ(j,k)/ZR(j,k) reads are
	// register-allocated: recorded once).
	b.Do("k", ir.Con(2), ir.Con(kn)).
		Do("j", ir.Con(2), ir.Con(jn)).
		Assign("ZU", ir.R(ZU, j, k),
			ir.R(ZU, j, k), ir.R(ZA, j, k), ir.R(ZZ, j, k), ir.R(ZZ, jp1, k),
			ir.R(ZA, jm1, k), ir.R(ZZ, jm1, k),
			ir.R(ZB, j, k), ir.R(ZZ, j, km1),
			ir.R(ZB, j, kp1), ir.R(ZZ, j, kp1)).
		Assign("ZV", ir.R(ZV, j, k),
			ir.R(ZV, j, k), ir.R(ZA, j, k), ir.R(ZR, j, k), ir.R(ZR, jp1, k),
			ir.R(ZA, jm1, k), ir.R(ZR, jm1, k),
			ir.R(ZB, j, k), ir.R(ZR, j, km1),
			ir.R(ZB, j, kp1), ir.R(ZR, j, kp1)).
		End().End()

	// Third nest: ZR and ZZ updates.
	b.Do("k", ir.Con(2), ir.Con(kn)).
		Do("j", ir.Con(2), ir.Con(jn)).
		Assign("ZRu", ir.R(ZR, j, k), ir.R(ZR, j, k), ir.R(ZU, j, k)).
		Assign("ZZu", ir.R(ZZ, j, k), ir.R(ZZ, j, k), ir.R(ZV, j, k)).
		End().End()

	p.Add(b.Build())
	return p
}

// MGRID is the 3-D interpolation nest of MGRID from Figure 8, with grid
// parameter m (the paper uses M = 100).
func MGRID(m int64) *ir.Program {
	p := ir.NewProgram("MGRID")
	b := ir.NewSub("INTERP")
	U := b.Real8("U", 2*m, 2*m, 2*m)
	Z := b.Real8("Z", m, m, m)

	i1 := ir.Var("I1")
	i2 := ir.Var("I2")
	i3 := ir.Var("I3")
	t := func(v ir.Expr, c int64) ir.Expr { return v.Scale(2).PlusConst(c) }

	b.Do("I3", ir.Con(2), ir.Con(m-1)).
		// First I2 loop: statements 100 and 200's first statement.
		Do("I2", ir.Con(2), ir.Con(m-1)).
		Do("I1", ir.Con(2), ir.Con(m-1)).
		Assign("S1", ir.R(U, t(i1, -1), t(i2, -1), t(i3, -1)),
			ir.R(U, t(i1, -1), t(i2, -1), t(i3, -1)), ir.R(Z, i1, i2, i3)).
		End().
		Do("I1", ir.Con(2), ir.Con(m-1)).
		Assign("S2", ir.R(U, t(i1, -2), t(i2, -1), t(i3, -1)),
			ir.R(U, t(i1, -2), t(i2, -1), t(i3, -1)),
			ir.R(Z, i1.PlusConst(-1), i2, i3), ir.R(Z, i1, i2, i3)).
		End().
		End().
		// Second I2 loop: statements 300 and 400.
		Do("I2", ir.Con(2), ir.Con(m-1)).
		Do("I1", ir.Con(2), ir.Con(m-1)).
		Assign("S3", ir.R(U, t(i1, -1), t(i2, -2), t(i3, -1)),
			ir.R(U, t(i1, -1), t(i2, -2), t(i3, -1)),
			ir.R(Z, i1, i2.PlusConst(-1), i3), ir.R(Z, i1, i2, i3)).
		End().
		Do("I1", ir.Con(2), ir.Con(m-1)).
		Assign("S4", ir.R(U, t(i1, -2), t(i2, -2), t(i3, -1)),
			ir.R(U, t(i1, -2), t(i2, -2), t(i3, -1)),
			ir.R(Z, i1.PlusConst(-1), i2.PlusConst(-1), i3), ir.R(Z, i1.PlusConst(-1), i2, i3),
			ir.R(Z, i1, i2.PlusConst(-1), i3), ir.R(Z, i1, i2, i3)).
		End().
		End().
		End()

	p.Add(b.Build())
	return p
}

// MMT is the 3-D blocked loop nest of Figure 8 computing D += A·Bᵀ with a
// transposed copy block WB (taken from Fraguela et al.). n must be
// divisible by bj and bk. The scalar RA is register-allocated: its load
// A(I,K) is the only memory reference of that statement.
func MMT(n, bj, bk int64) *ir.Program {
	p := ir.NewProgram("MMT")
	b := ir.NewSub("MMT")
	A := b.Real8("A", n, n)
	B := b.Real8("B", n, n)
	D := b.Real8("D", n, n)
	WB := b.Real8("WB", n, n)

	J2 := ir.Var("J2")
	K2 := ir.Var("K2")
	I := ir.Var("I")
	J := ir.Var("J")
	K := ir.Var("K")

	b.DoStep("J2", ir.Con(1), ir.Con(n), bj).
		DoStep("K2", ir.Con(1), ir.Con(n), bk).
		// Copy block of Bᵀ into WB.
		Do("J", J2, J2.PlusConst(bj-1)).
		Do("K", K2, K2.PlusConst(bk-1)).
		Assign("COPY", ir.R(WB, J.Minus(J2).PlusConst(1), K.Minus(K2).PlusConst(1)),
			ir.R(B, K, J)).
		End().End().
		// Multiply.
		Do("I", ir.Con(1), ir.Con(n)).
		Do("K", K2, K2.PlusConst(bk-1)).
		Assign("LOADRA", nil, ir.R(A, I, K)).
		Do("J", J2, J2.PlusConst(bj-1)).
		Assign("MUL", ir.R(D, I, J),
			ir.R(D, I, J), ir.R(WB, J.Minus(J2).PlusConst(1), K.Minus(K2).PlusConst(1))).
		End().End().End().
		End().End()

	p.Add(b.Build())
	return p
}
