package kernels

import (
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/trace"
)

func prep(t testing.TB, p *ir.Program) *ir.NProgram {
	t.Helper()
	flat, _, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		t.Fatalf("%s: inline: %v", p.Name, err)
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		t.Fatalf("%s: normalize: %v", p.Name, err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatalf("%s: layout: %v", p.Name, err)
	}
	return np
}

// countAccesses replays a program, returning total accesses.
func countAccesses(np *ir.NProgram) int64 {
	var n int64
	trace.Execute(np, func(r *ir.NRef, idx []int64) bool { n++; return true })
	return n
}

func TestHydroShape(t *testing.T) {
	np := prep(t, Hydro(10, 10))
	if np.Depth != 2 {
		t.Errorf("depth = %d, want 2", np.Depth)
	}
	if len(np.Stmts) != 6 {
		t.Errorf("statements = %d, want 6", len(np.Stmts))
	}
	// 9 iterations per dimension, 6 statements, references per statement:
	// 9+9+11+11+3+3 = 46.
	if got, want := countAccesses(np), int64(9*9*46); got != want {
		t.Errorf("accesses = %d, want %d", got, want)
	}
}

// TestHydroExact reproduces the Table 3 Hydro row at reduced scale:
// FindMisses must match the simulator exactly for all associativities.
func TestHydroExact(t *testing.T) {
	for _, assoc := range []int{1, 2, 4} {
		cfg := cache.Config{SizeBytes: 2048, LineBytes: 32, Assoc: assoc}
		np := prep(t, Hydro(12, 12))
		a, err := cme.New(np, cfg, cme.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := a.FindMisses()
		sim := trace.Simulate(np, cfg)
		if rep.ExactMisses() != sim.Misses {
			t.Errorf("assoc %d: FindMisses %d, simulator %d", assoc, rep.ExactMisses(), sim.Misses)
		}
		if rep.TotalAccesses() != sim.Accesses {
			t.Errorf("assoc %d: accesses %d vs %d", assoc, rep.TotalAccesses(), sim.Accesses)
		}
	}
}

func TestMGRIDShape(t *testing.T) {
	np := prep(t, MGRID(8))
	if np.Depth != 3 {
		t.Errorf("depth = %d, want 3", np.Depth)
	}
	if len(np.Stmts) != 4 {
		t.Errorf("statements = %d, want 4", len(np.Stmts))
	}
}

// TestMGRIDExact: the MGRID interpolation nest is fully uniformly
// generated per array, so FindMisses is exact (Table 3 MGRID rows).
func TestMGRIDExact(t *testing.T) {
	for _, assoc := range []int{1, 2, 4} {
		cfg := cache.Config{SizeBytes: 2048, LineBytes: 32, Assoc: assoc}
		np := prep(t, MGRID(8))
		a, err := cme.New(np, cfg, cme.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := a.FindMisses()
		sim := trace.Simulate(np, cfg)
		if rep.ExactMisses() != sim.Misses {
			t.Errorf("assoc %d: FindMisses %d, simulator %d", assoc, rep.ExactMisses(), sim.Misses)
		}
	}
}

// TestMMTConservative: MMT's WB references are not uniformly generated
// (transposition), so the analysis may overestimate but never
// underestimate (the Table 3 MMT rows show the small overestimate).
func TestMMTConservative(t *testing.T) {
	cfg := cache.Config{SizeBytes: 2048, LineBytes: 32, Assoc: 2}
	np := prep(t, MMT(16, 8, 8))
	a, err := cme.New(np, cfg, cme.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep := a.FindMisses()
	sim := trace.Simulate(np, cfg)
	if rep.ExactMisses() < sim.Misses {
		t.Errorf("FindMisses %d < simulator %d", rep.ExactMisses(), sim.Misses)
	}
	if rep.TotalAccesses() != sim.Accesses {
		t.Errorf("accesses %d vs %d", rep.TotalAccesses(), sim.Accesses)
	}
}

func TestTomcatvShape(t *testing.T) {
	p := Tomcatv(10, 2)
	st := p.CollectStats()
	if st.Subroutines != 1 {
		t.Errorf("subroutines = %d, want 1 (Table 5)", st.Subroutines)
	}
	if st.Calls != 0 {
		t.Errorf("calls = %d, want 0 (Table 5)", st.Calls)
	}
	np := prep(t, p)
	if np.Depth != 3 {
		t.Errorf("depth = %d, want 3 (ITER, j, i)", np.Depth)
	}
	if len(np.Refs) < 40 {
		t.Errorf("references = %d, want a Tomcatv-scale count", len(np.Refs))
	}
}

func TestSwimShape(t *testing.T) {
	p := Swim(10, 2)
	st := p.CollectStats()
	if st.Subroutines != 4 {
		t.Errorf("subroutines = %d, want 4", st.Subroutines)
	}
	if st.Calls != 3 {
		t.Errorf("call statements = %d, want 3", st.Calls)
	}
	np := prep(t, p)
	if len(np.Refs) < 50 {
		t.Errorf("references = %d, want a Swim-scale count", len(np.Refs))
	}
	// All three calls are parameterless and must have been inlined.
	_, stats, err := inline.Flatten(Swim(10, 2), inline.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Inlined != 3 {
		t.Errorf("inlined = %d, want 3", stats.Inlined)
	}
}

func TestAppluShape(t *testing.T) {
	p := Applu(8, 2)
	st := p.CollectStats()
	if st.Subroutines != 16 {
		t.Errorf("subroutines = %d, want 16 (Table 5)", st.Subroutines)
	}
	if st.Calls < 15 {
		t.Errorf("call statements = %d, want Applu-scale count", st.Calls)
	}
	// All actuals must be propagateable, as the paper reports for Applu.
	cls := inline.ClassifyProgram(p)
	if cls.RAble != 0 || cls.NAble != 0 {
		t.Errorf("classification P/R/N = %d/%d/%d, want all propagateable", cls.PAble, cls.RAble, cls.NAble)
	}
	np := prep(t, p)
	if len(np.Refs) < 800 {
		t.Errorf("references = %d, want an Applu-scale count (paper: 2565)", len(np.Refs))
	}
}

// TestWholeProgramsSimulate: the three whole programs must prepare and
// replay without error at small scale, with every access in bounds of its
// array (catching transcription slips).
func TestWholeProgramsSimulate(t *testing.T) {
	progs := []*ir.Program{Tomcatv(8, 1), Swim(8, 1), Applu(6, 1)}
	for _, p := range progs {
		np := prep(t, p)
		bad := 0
		trace.Execute(np, func(r *ir.NRef, idx []int64) bool {
			subs := r.SubsAt(idx)
			for d, s := range subs {
				dim := r.Array.Dims[d]
				if s < 1 || (dim > 0 && s > dim) {
					bad++
					if bad < 4 {
						t.Errorf("%s: %s out of bounds at %v: subscript %d = %d (dim %d)",
							p.Name, r.ID, idx, d+1, s, dim)
					}
					return bad < 4
				}
			}
			return true
		})
		if bad > 0 {
			t.Errorf("%s: %d out-of-bounds accesses", p.Name, bad)
		}
	}
}

// TestWholeProgramsConservative: analytical misses never undercount at
// miniature scale on a small cache.
func TestWholeProgramsConservative(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 2}
	for _, p := range []*ir.Program{Tomcatv(8, 1), Swim(8, 1)} {
		np := prep(t, p)
		a, err := cme.New(np, cfg, cme.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rep := a.FindMisses()
		sim := trace.Simulate(np, cfg)
		if rep.ExactMisses() < sim.Misses {
			t.Errorf("%s: FindMisses %d < simulator %d", p.Name, rep.ExactMisses(), sim.Misses)
		}
		if rep.TotalAccesses() != sim.Accesses {
			t.Errorf("%s: accesses %d vs %d", p.Name, rep.TotalAccesses(), sim.Accesses)
		}
	}
}
