package kernels

import (
	"fmt"

	"cachemodel/internal/ir"
)

// Applu is a structurally faithful model of SPECfp95 Applu: an SSOR solver
// for the 3-D Navier-Stokes equations on 5-component fields. It has 16
// subroutines wired the way the original is — boundary/initial setters,
// the three directional flux routines called from RHS, the block-Jacobian
// builders JACLD/JACU feeding the triangular sweeps BLTS/BUTS inside the
// SSOR iteration — with the block dimension (5) fully unrolled, which is
// what gives the original its thousands of references. The Jacobian
// plane buffers are passed as actual parameters (all propagateable, as the
// paper reports for Applu).
//
// Departure from the original (documented in DESIGN.md): the original
// passes the sweep plane index k into JACLD/BLTS and calls them once per
// plane; a formal integer loop bound is a data-dependent construct in our
// program model, so the k loop lives inside the callees instead. The
// per-plane Jacobian buffers are overwritten per k exactly as in the
// original.
func Applu(n, itmax int64) *ir.Program {
	p := ir.NewProgram("Applu")

	field := func(name string) *ir.Array { return ir.NewArray(name, 8, 5, n, n, n) }
	U := field("U")
	RSD := field("RSD")
	FRCT := field("FRCT")
	FLUX := field("FLUX")
	common := []*ir.Array{U, RSD, FRCT, FLUX}

	jac := func(name string) *ir.Array { return ir.NewArray(name, 8, 5, 5, n, n) }
	AJ, BJ, CJ, DJ := jac("AJ"), jac("BJ"), jac("CJ"), jac("DJ")
	common = append(common, AJ, BJ, CJ, DJ)

	i, j, k := ir.Var("i"), ir.Var("j"), ir.Var("k")
	c := ir.Con
	m5 := func(m int) ir.Expr { return c(int64(m)) }

	// SETBV: boundary values on all six faces, per component.
	setbv := ir.NewSub("SETBV")
	face := func(b *ir.SubBuilder, v1, v2 string, fix func(m int, lo bool) *ir.Ref) {
		b.Do(v1, c(1), c(n)).Do(v2, c(1), c(n))
		for m := 1; m <= 5; m++ {
			b.Assign(fmt.Sprintf("BV%d", m), fix(m, true))
			b.Assign(fmt.Sprintf("BV%d", m), fix(m, false))
		}
		b.End().End()
	}
	face(setbv, "j", "k", func(m int, lo bool) *ir.Ref {
		x := c(1)
		if !lo {
			x = c(n)
		}
		return ir.R(U, m5(m), x, ir.Var("j"), ir.Var("k"))
	})
	face(setbv, "i", "k", func(m int, lo bool) *ir.Ref {
		x := c(1)
		if !lo {
			x = c(n)
		}
		return ir.R(U, m5(m), ir.Var("i"), x, ir.Var("k"))
	})
	face(setbv, "i", "j", func(m int, lo bool) *ir.Ref {
		x := c(1)
		if !lo {
			x = c(n)
		}
		return ir.R(U, m5(m), ir.Var("i"), ir.Var("j"), x)
	})
	p.Add(setbv.Build())

	// SETIV: interior initial values interpolated from the boundaries.
	setiv := ir.NewSub("SETIV")
	setiv.Do("k", c(2), c(n-1)).Do("j", c(2), c(n-1)).Do("i", c(2), c(n-1))
	for m := 1; m <= 5; m++ {
		setiv.Assign(fmt.Sprintf("IV%d", m),
			ir.R(U, m5(m), i, j, k),
			ir.R(U, m5(m), c(1), j, k), ir.R(U, m5(m), c(n), j, k))
	}
	setiv.End().End().End()
	p.Add(setiv.Build())

	// ERHS: the exact-solution forcing term.
	erhs := ir.NewSub("ERHS")
	erhs.Do("k", c(2), c(n-1)).Do("j", c(2), c(n-1)).Do("i", c(2), c(n-1))
	for m := 1; m <= 5; m++ {
		erhs.Assign(fmt.Sprintf("ER%d", m),
			ir.R(FRCT, m5(m), i, j, k), ir.R(U, m5(m), i, j, k))
	}
	erhs.End().End().End()
	p.Add(erhs.Build())

	// RHSX/RHSY/RHSZ: directional fluxes, differences and dissipation.
	dir := func(name string, shift func(e ir.Expr, d int64) [3]ir.Expr) *ir.Subroutine {
		b := ir.NewSub(name)
		b.Do("k", c(2), c(n-1)).Do("j", c(2), c(n-1))
		// Flux computation along the direction.
		b.Do("i", c(1), c(n))
		for m := 1; m <= 5; m++ {
			s := shift(i, 0)
			b.Assign(fmt.Sprintf("%sF%d", name, m),
				ir.R(FLUX, m5(m), s[0], s[1], s[2]),
				ir.R(U, m5(m), s[0], s[1], s[2]), ir.R(U, c(1), s[0], s[1], s[2]))
		}
		b.End()
		// Central differences of the fluxes.
		b.Do("i", c(2), c(n-1))
		for m := 1; m <= 5; m++ {
			s0 := shift(i, 0)
			sm := shift(i, -1)
			sp := shift(i, 1)
			b.Assign(fmt.Sprintf("%sD%d", name, m),
				ir.R(RSD, m5(m), s0[0], s0[1], s0[2]),
				ir.R(RSD, m5(m), s0[0], s0[1], s0[2]),
				ir.R(FLUX, m5(m), sp[0], sp[1], sp[2]), ir.R(FLUX, m5(m), sm[0], sm[1], sm[2]))
		}
		b.End()
		// Fourth-order dissipation.
		b.Do("i", c(3), c(n-2))
		for m := 1; m <= 5; m++ {
			s0 := shift(i, 0)
			sm2 := shift(i, -2)
			sm1 := shift(i, -1)
			sp1 := shift(i, 1)
			sp2 := shift(i, 2)
			b.Assign(fmt.Sprintf("%sV%d", name, m),
				ir.R(RSD, m5(m), s0[0], s0[1], s0[2]),
				ir.R(RSD, m5(m), s0[0], s0[1], s0[2]),
				ir.R(U, m5(m), sm2[0], sm2[1], sm2[2]), ir.R(U, m5(m), sm1[0], sm1[1], sm1[2]),
				ir.R(U, m5(m), s0[0], s0[1], s0[2]),
				ir.R(U, m5(m), sp1[0], sp1[1], sp1[2]), ir.R(U, m5(m), sp2[0], sp2[1], sp2[2]))
		}
		b.End()
		b.End().End() // j, k
		return b.Build()
	}
	p.Add(dir("RHSX", func(e ir.Expr, d int64) [3]ir.Expr {
		return [3]ir.Expr{e.PlusConst(d), j, k}
	}))
	p.Add(dir("RHSY", func(e ir.Expr, d int64) [3]ir.Expr {
		return [3]ir.Expr{j, e.PlusConst(d), k}
	}))
	p.Add(dir("RHSZ", func(e ir.Expr, d int64) [3]ir.Expr {
		return [3]ir.Expr{j, k, e.PlusConst(d)}
	}))

	// RHS: assemble the right-hand side from the forcing term, then the
	// three directional contributions.
	rhs := ir.NewSub("RHS")
	rhs.Do("k", c(1), c(n)).Do("j", c(1), c(n)).Do("i", c(1), c(n))
	for m := 1; m <= 5; m++ {
		rhs.Assign(fmt.Sprintf("RH%d", m),
			ir.R(RSD, m5(m), i, j, k), ir.R(FRCT, m5(m), i, j, k))
	}
	rhs.End().End().End().
		Call("RHSX").Call("RHSY").Call("RHSZ")
	p.Add(rhs.Build())

	// JACLD / JACU: 5×5 block Jacobians, fully unrolled. The four plane
	// buffers are formals (propagateable actuals at every call site).
	jacSub := func(name string, dep int64) *ir.Subroutine {
		b := ir.NewSub(name)
		fa := b.Formal("JA", 8, 5, 5, n, n)
		fb := b.Formal("JB", 8, 5, 5, n, n)
		fc := b.Formal("JC", 8, 5, 5, n, n)
		fd := b.Formal("JD", 8, 5, 5, n, n)
		b.Do("k", c(2), c(n-1)).Do("j", c(2), c(n-1)).Do("i", c(2), c(n-1))
		for mr := 1; mr <= 5; mr++ {
			for mc := 1; mc <= 5; mc++ {
				r, q := m5(mr), m5(mc)
				b.Assign(fmt.Sprintf("JD%d%d", mr, mc),
					ir.R(fd, r, q, i, j),
					ir.R(U, q, i, j, k), ir.R(U, c(1), i, j, k))
				b.Assign(fmt.Sprintf("JA%d%d", mr, mc),
					ir.R(fa, r, q, i, j),
					ir.R(U, q, i, j, k.PlusConst(dep)), ir.R(U, c(1), i, j, k.PlusConst(dep)))
				b.Assign(fmt.Sprintf("JB%d%d", mr, mc),
					ir.R(fb, r, q, i, j),
					ir.R(U, q, i, j.PlusConst(dep), k), ir.R(U, c(1), i, j.PlusConst(dep), k))
				b.Assign(fmt.Sprintf("JC%d%d", mr, mc),
					ir.R(fc, r, q, i, j),
					ir.R(U, q, i.PlusConst(dep), j, k), ir.R(U, c(1), i.PlusConst(dep), j, k))
			}
		}
		b.End().End().End()
		return b.Build()
	}
	p.Add(jacSub("JACLD", -1))
	p.Add(jacSub("JACU", 1))

	// BLTS / BUTS: lower / upper triangular sweeps of the SSOR step.
	sweep := func(name string, dep int64, descending bool) *ir.Subroutine {
		b := ir.NewSub(name)
		fa := b.Formal("JA", 8, 5, 5, n, n)
		fd := b.Formal("JD", 8, 5, 5, n, n)
		if descending {
			b.DoStep("k", c(n-1), c(2), -1).DoStep("j", c(n-1), c(2), -1).DoStep("i", c(n-1), c(2), -1)
		} else {
			b.Do("k", c(2), c(n-1)).Do("j", c(2), c(n-1)).Do("i", c(2), c(n-1))
		}
		for m := 1; m <= 5; m++ {
			reads := []*ir.Ref{ir.R(RSD, m5(m), i, j, k)}
			for mc := 1; mc <= 5; mc++ {
				reads = append(reads,
					ir.R(fa, m5(m), m5(mc), i, j),
					ir.R(RSD, m5(mc), i.PlusConst(dep), j, k))
			}
			reads = append(reads, ir.R(fd, m5(m), m5(m), i, j))
			b.Assign(fmt.Sprintf("SW%d", m), ir.R(RSD, m5(m), i, j, k), reads...)
		}
		b.End().End().End()
		return b.Build()
	}
	p.Add(sweep("BLTS", -1, false))
	p.Add(sweep("BUTS", 1, true))

	// ADDU: apply the update.
	addu := ir.NewSub("ADDU")
	addu.Do("k", c(2), c(n-1)).Do("j", c(2), c(n-1)).Do("i", c(2), c(n-1))
	for m := 1; m <= 5; m++ {
		addu.Assign(fmt.Sprintf("AD%d", m),
			ir.R(U, m5(m), i, j, k),
			ir.R(U, m5(m), i, j, k), ir.R(RSD, m5(m), i, j, k))
	}
	addu.End().End().End()
	p.Add(addu.Build())

	// L2NORM: residual norm (reads only; the sum is register-allocated).
	l2 := ir.NewSub("L2NORM")
	l2.Do("k", c(2), c(n-1)).Do("j", c(2), c(n-1)).Do("i", c(2), c(n-1))
	for m := 1; m <= 5; m++ {
		l2.Assign(fmt.Sprintf("L2%d", m), nil, ir.R(RSD, m5(m), i, j, k))
	}
	l2.End().End().End()
	p.Add(l2.Build())

	// RESID: recompute the residual from the updated field.
	resid := ir.NewSub("RESID")
	resid.Call("RHS")
	p.Add(resid.Build())

	// SSOR: the pseudo-time iteration.
	ssor := ir.NewSub("SSOR")
	ssor.Do("ISTEP", c(1), c(itmax)).
		Call("JACLD", ir.ArgVar(AJ), ir.ArgVar(BJ), ir.ArgVar(CJ), ir.ArgVar(DJ)).
		Call("BLTS", ir.ArgVar(AJ), ir.ArgVar(DJ)).
		Call("JACU", ir.ArgVar(AJ), ir.ArgVar(BJ), ir.ArgVar(CJ), ir.ArgVar(DJ)).
		Call("BUTS", ir.ArgVar(CJ), ir.ArgVar(DJ)).
		Call("ADDU").
		Call("RESID").
		Call("L2NORM").
		End()
	p.Add(ssor.Build())

	// MAIN.
	main := ir.NewSub("MAIN")
	main.Call("SETBV").
		Call("SETIV").
		Call("ERHS").
		Call("RHS").
		Call("L2NORM").
		Call("SSOR").
		Call("L2NORM")
	m := main.Build()
	m.Locals = append(m.Locals, common...)
	p.Add(m)
	p.SetMain("MAIN")
	return p
}
