package kernels

import "cachemodel/internal/ir"

// Linpack / Lapack-style kernels of the paper's validation corpus (§1),
// restricted to the regular program model: factorisations are modelled
// without data-dependent pivoting, exactly the restriction the paper's
// program model imposes.

// Linpack returns the Linpack/Lapack-flavoured workloads.
func Linpack() []Spec {
	return []Spec{
		{"daxpy", "Linpack DAXPY: Y += a·X", daxpy, true},
		{"dgefa", "Linpack DGEFA: LU factorisation, no pivoting", dgefa, false},
		{"dgesl", "Linpack DGESL: forward + back substitution", dgesl, false},
		{"cholesky", "Lapack-style Cholesky factorisation (left-looking)", cholesky, false},
		{"jacobi2d", "Jacobi 2-D relaxation with flip buffers", jacobi2d, true},
		{"sor2d", "Gauss-Seidel/SOR 2-D relaxation (in place)", sor2d, true},
		{"mmijk", "matrix multiply, ijk order (row walk of B)", mmijk, true},
		{"mmjki", "matrix multiply, jki order (column friendly)", mmjki, true},
		{"transpose", "out-of-place matrix transpose", transposeK, false},
	}
}

// Suite returns every built-in kernel spec (Livermore + Linpack + the
// paper's three Figure 8 kernels).
func Suite() []Spec {
	out := []Spec{
		{"hydro", "Fig. 8 Hydro (Livermore K18)", func(n int64) *ir.Program { return Hydro(n, n) }, true},
		{"mgrid", "Fig. 8 MGRID 3-D interpolation", MGRID, true},
		{"mmt", "Fig. 8 blocked A·Bᵀ with transposed copy", func(n int64) *ir.Program {
			b := n / 2
			if b < 1 {
				b = 1
			}
			return MMT(n, b, b)
		}, false},
	}
	out = append(out, Livermore()...)
	return append(out, Linpack()...)
}

func daxpy(n int64) *ir.Program {
	p := ir.NewProgram("DAXPY")
	b := ir.NewSub("DAXPY")
	X := b.Real8("X", n)
	Y := b.Real8("Y", n)
	i := ir.Var("i")
	b.Do("i", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(Y, i), ir.R(Y, i), ir.R(X, i)).
		End()
	p.Add(b.Build())
	return p
}

// dgefa: for k: scale column k below the diagonal, then rank-1 update the
// trailing submatrix (no pivot search — data-dependent).
func dgefa(n int64) *ir.Program {
	p := ir.NewProgram("DGEFA")
	b := ir.NewSub("DGEFA")
	A := b.Real8("A", n, n)
	i, j, k := ir.Var("i"), ir.Var("j"), ir.Var("k")
	b.Do("k", ir.Con(1), ir.Con(n-1)).
		// Column scale: A(i,k) = A(i,k)/A(k,k); the reciprocal is a
		// register after one load.
		Do("i", k.PlusConst(1), ir.Con(n)).
		IfCond(ir.Cond{LHS: i, Op: ir.EQ, RHS: k.PlusConst(1)}).
		Assign("PIV", nil, ir.R(A, k, k)).
		End().
		Assign("SCAL", ir.R(A, i, k), ir.R(A, i, k)).
		End().
		// Trailing update: A(i,j) -= A(i,k)·A(k,j).
		Do("j", k.PlusConst(1), ir.Con(n)).
		Do("i", k.PlusConst(1), ir.Con(n)).
		Assign("UPD", ir.R(A, i, j),
			ir.R(A, i, j), ir.R(A, i, k), ir.R(A, k, j)).
		End().End().
		End()
	p.Add(b.Build())
	return p
}

// dgesl: solve L·y = b then U·x = y using the factors of dgefa.
func dgesl(n int64) *ir.Program {
	p := ir.NewProgram("DGESL")
	b := ir.NewSub("DGESL")
	A := b.Real8("A", n, n)
	B := b.Real8("B", n)
	i, k := ir.Var("i"), ir.Var("k")
	// Forward elimination: B(i) -= A(i,k)·B(k).
	b.Do("k", ir.Con(1), ir.Con(n-1)).
		Do("i", k.PlusConst(1), ir.Con(n)).
		Assign("FWD", ir.R(B, i), ir.R(B, i), ir.R(A, i, k), ir.R(B, k)).
		End().End()
	// Back substitution (descending): B(i) -= A(i,k)·B(k), k from n down.
	b.DoStep("k", ir.Con(n), ir.Con(2), -1).
		Do("i", ir.Con(1), k.PlusConst(-1)).
		Assign("BCK", ir.R(B, i), ir.R(B, i), ir.R(A, i, k), ir.R(B, k)).
		End().End()
	p.Add(b.Build())
	return p
}

// cholesky: left-looking, lower triangle, no square-root memory traffic.
func cholesky(n int64) *ir.Program {
	p := ir.NewProgram("CHOLESKY")
	b := ir.NewSub("CHOLESKY")
	A := b.Real8("A", n, n)
	i, j, k := ir.Var("i"), ir.Var("j"), ir.Var("k")
	b.Do("j", ir.Con(1), ir.Con(n)).
		// Update column j with columns 1..j-1: A(i,j) -= A(i,k)·A(j,k).
		Do("k", ir.Con(1), j.PlusConst(-1)).
		Do("i", j, ir.Con(n)).
		Assign("UPD", ir.R(A, i, j),
			ir.R(A, i, j), ir.R(A, i, k), ir.R(A, j, k)).
		End().End().
		// Scale column j below the diagonal.
		Do("i", j.PlusConst(1), ir.Con(n)).
		Assign("SCL", ir.R(A, i, j), ir.R(A, i, j), ir.R(A, j, j)).
		End().
		End()
	p.Add(b.Build())
	return p
}

func jacobi2d(n int64) *ir.Program {
	p := ir.NewProgram("JACOBI2D")
	b := ir.NewSub("JACOBI2D")
	U := b.Real8("U", n, n)
	V := b.Real8("V", n, n)
	i, j := ir.Var("i"), ir.Var("j")
	sweep := func(label string, dst, src *ir.Array) {
		b.Do("j", ir.Con(2), ir.Con(n-1)).
			Do("i", ir.Con(2), ir.Con(n-1)).
			Assign(label, ir.R(dst, i, j),
				ir.R(src, i.PlusConst(-1), j), ir.R(src, i.PlusConst(1), j),
				ir.R(src, i, j.PlusConst(-1)), ir.R(src, i, j.PlusConst(1))).
			End().End()
	}
	b.Do("t", ir.Con(1), ir.Con(4))
	sweep("S1", V, U)
	sweep("S2", U, V)
	b.End()
	p.Add(b.Build())
	return p
}

func sor2d(n int64) *ir.Program {
	p := ir.NewProgram("SOR2D")
	b := ir.NewSub("SOR2D")
	U := b.Real8("U", n, n)
	i, j := ir.Var("i"), ir.Var("j")
	b.Do("t", ir.Con(1), ir.Con(4)).
		Do("j", ir.Con(2), ir.Con(n-1)).
		Do("i", ir.Con(2), ir.Con(n-1)).
		Assign("S1", ir.R(U, i, j),
			ir.R(U, i, j),
			ir.R(U, i.PlusConst(-1), j), ir.R(U, i.PlusConst(1), j),
			ir.R(U, i, j.PlusConst(-1)), ir.R(U, i, j.PlusConst(1))).
		End().End().End()
	p.Add(b.Build())
	return p
}

func mmijk(n int64) *ir.Program {
	p := ir.NewProgram("MMIJK")
	b := ir.NewSub("MMIJK")
	A := b.Real8("A", n, n)
	B := b.Real8("B", n, n)
	C := b.Real8("C", n, n)
	i, j, k := ir.Var("i"), ir.Var("j"), ir.Var("k")
	b.Do("i", ir.Con(1), ir.Con(n)).
		Do("j", ir.Con(1), ir.Con(n)).
		Do("k", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(C, i, j),
			ir.R(C, i, j), ir.R(A, i, k), ir.R(B, k, j)).
		End().End().End()
	p.Add(b.Build())
	return p
}

func mmjki(n int64) *ir.Program {
	p := ir.NewProgram("MMJKI")
	b := ir.NewSub("MMJKI")
	A := b.Real8("A", n, n)
	B := b.Real8("B", n, n)
	C := b.Real8("C", n, n)
	i, j, k := ir.Var("i"), ir.Var("j"), ir.Var("k")
	b.Do("j", ir.Con(1), ir.Con(n)).
		Do("k", ir.Con(1), ir.Con(n)).
		Do("i", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(C, i, j),
			ir.R(C, i, j), ir.R(A, i, k), ir.R(B, k, j)).
		End().End().End()
	p.Add(b.Build())
	return p
}

// transposeK: B(j,i) = A(i,j) — the reads and writes to A/B are not
// mutually uniformly generated, so the analysis may only overestimate.
func transposeK(n int64) *ir.Program {
	p := ir.NewProgram("TRANSPOSE")
	b := ir.NewSub("TRANSPOSE")
	A := b.Real8("A", n, n)
	B := b.Real8("B", n, n)
	i, j := ir.Var("i"), ir.Var("j")
	b.Do("j", ir.Con(1), ir.Con(n)).
		Do("i", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(B, j, i), ir.R(A, i, j)).
		End().End()
	p.Add(b.Build())
	return p
}
