package kernels

import "cachemodel/internal/ir"

// Swim is a structurally faithful model of SPECfp95 Swim (shallow-water
// equations): thirteen N×N REAL*8 arrays in COMMON (modelled as shared
// array objects), a main cycle loop converted from the original's IF-GOTO,
// and the three parameterless subroutines CALC1, CALC2 and CALC3 called
// once per cycle, plus periodic-boundary copy loops.
func Swim(n, cycles int64) *ir.Program {
	p := ir.NewProgram("Swim")

	// COMMON block: the arrays are owned by MAIN and referenced directly
	// by the parameterless CALC subroutines, exactly like FORTRAN COMMON.
	mk := func(name string) *ir.Array { return ir.NewArray(name, 8, n, n) }
	U, V, P := mk("U"), mk("V"), mk("P")
	UNEW, VNEW, PNEW := mk("UNEW"), mk("VNEW"), mk("PNEW")
	UOLD, VOLD, POLD := mk("UOLD"), mk("VOLD"), mk("POLD")
	CU, CV, Z, H := mk("CU"), mk("CV"), mk("Z"), mk("H")
	common := []*ir.Array{U, V, P, UNEW, VNEW, PNEW, UOLD, VOLD, POLD, CU, CV, Z, H}

	i := ir.Var("i")
	j := ir.Var("j")
	ip1 := i.PlusConst(1)
	jp1 := j.PlusConst(1)

	// CALC1: compute capital-U, capital-V, Z and H.
	c1 := ir.NewSub("CALC1")
	c1.Do("j", ir.Con(1), ir.Con(n-1)).
		Do("i", ir.Con(1), ir.Con(n-1)).
		Assign("C1A", ir.R(CU, ip1, j),
			ir.R(P, ip1, j), ir.R(P, i, j), ir.R(U, ip1, j)).
		Assign("C1B", ir.R(CV, i, jp1),
			ir.R(P, i, jp1), ir.R(P, i, j), ir.R(V, i, jp1)).
		Assign("C1C", ir.R(Z, ip1, jp1),
			ir.R(V, ip1, jp1), ir.R(V, i, jp1), ir.R(U, ip1, jp1), ir.R(U, ip1, j),
			ir.R(P, i, j), ir.R(P, ip1, j), ir.R(P, i, jp1), ir.R(P, ip1, jp1)).
		Assign("C1D", ir.R(H, i, j),
			ir.R(P, i, j), ir.R(U, ip1, j), ir.R(U, i, j), ir.R(V, i, jp1), ir.R(V, i, j)).
		End().End().
		// Periodic boundary: copy last column of CU.
		Do("j", ir.Con(1), ir.Con(n-1)).
		Assign("C1E", ir.R(CU, ir.Con(1), j), ir.R(CU, ir.Con(n), j)).
		Assign("C1F", ir.R(CV, ir.Con(n), jp1), ir.R(CV, ir.Con(1), jp1)).
		End()

	// CALC2: compute new values UNEW, VNEW, PNEW.
	c2 := ir.NewSub("CALC2")
	c2.Do("j", ir.Con(1), ir.Con(n-1)).
		Do("i", ir.Con(1), ir.Con(n-1)).
		Assign("C2A", ir.R(UNEW, ip1, j),
			ir.R(UOLD, ip1, j), ir.R(Z, ip1, jp1), ir.R(Z, ip1, j),
			ir.R(CV, ip1, jp1), ir.R(CV, i, jp1), ir.R(CV, ip1, j), ir.R(CV, i, j),
			ir.R(H, ip1, j), ir.R(H, i, j)).
		Assign("C2B", ir.R(VNEW, i, jp1),
			ir.R(VOLD, i, jp1), ir.R(Z, ip1, jp1), ir.R(Z, i, jp1),
			ir.R(CU, ip1, jp1), ir.R(CU, i, jp1), ir.R(CU, ip1, j), ir.R(CU, i, j),
			ir.R(H, i, jp1), ir.R(H, i, j)).
		Assign("C2C", ir.R(PNEW, i, j),
			ir.R(POLD, i, j), ir.R(CU, ip1, j), ir.R(CU, i, j),
			ir.R(CV, i, jp1), ir.R(CV, i, j)).
		End().End().
		Do("j", ir.Con(1), ir.Con(n-1)).
		Assign("C2D", ir.R(UNEW, ir.Con(1), j), ir.R(UNEW, ir.Con(n), j)).
		End()

	// CALC3: time smoothing and rotation of the time levels.
	c3 := ir.NewSub("CALC3")
	c3.Do("j", ir.Con(1), ir.Con(n)).
		Do("i", ir.Con(1), ir.Con(n)).
		Assign("C3A", ir.R(UOLD, i, j),
			ir.R(U, i, j), ir.R(UNEW, i, j), ir.R(UOLD, i, j)).
		Assign("C3B", ir.R(VOLD, i, j),
			ir.R(V, i, j), ir.R(VNEW, i, j), ir.R(VOLD, i, j)).
		Assign("C3C", ir.R(POLD, i, j),
			ir.R(P, i, j), ir.R(PNEW, i, j), ir.R(POLD, i, j)).
		Assign("C3D", ir.R(U, i, j), ir.R(UNEW, i, j)).
		Assign("C3E", ir.R(V, i, j), ir.R(VNEW, i, j)).
		Assign("C3F", ir.R(P, i, j), ir.R(PNEW, i, j)).
		End().End()

	// MAIN: the original IF-GOTO cycle loop as a DO (as the paper notes).
	main := ir.NewSub("MAIN")
	main.Do("NCYCLE", ir.Con(1), ir.Con(cycles)).
		Call("CALC1").
		Call("CALC2").
		Call("CALC3").
		End()
	m := main.Build()
	m.Locals = append(m.Locals, common...)

	p.Add(m)
	p.Add(c1.Build())
	p.Add(c2.Build())
	p.Add(c3.Build())
	p.SetMain("MAIN")
	return p
}
