package kernels

import "cachemodel/internal/ir"

// Tomcatv is a structurally faithful model of SPECfp95 Tomcatv (vectorised
// mesh generation): seven N×N REAL*8 arrays, an outer time loop (the
// original's data-dependent convergence loop, fixed at iters iterations as
// the paper does with the reference input's 750), a residual nest with
// 9-point stencils, a tridiagonal forward-elimination sweep, a backward
// substitution sweep (negative step) and the mesh update nest.
func Tomcatv(n, iters int64) *ir.Program {
	p := ir.NewProgram("Tomcatv")
	b := ir.NewSub("TOMCATV")
	X := b.Real8("X", n, n)
	Y := b.Real8("Y", n, n)
	RX := b.Real8("RX", n, n)
	RY := b.Real8("RY", n, n)
	AA := b.Real8("AA", n, n)
	DD := b.Real8("DD", n, n)
	D := b.Real8("D", n, n)

	i := ir.Var("i")
	j := ir.Var("j")
	im1 := i.PlusConst(-1)
	ip1 := i.PlusConst(1)
	jm1 := j.PlusConst(-1)
	jp1 := j.PlusConst(1)

	b.Do("ITER", ir.Con(1), ir.Con(iters))

	// Residual computation (9-point stencils on X and Y).
	b.Do("j", ir.Con(2), ir.Con(n-1)).
		Do("i", ir.Con(2), ir.Con(n-1)).
		Assign("T1", ir.R(RX, i, j),
			ir.R(X, im1, j), ir.R(X, ip1, j), ir.R(X, i, jm1), ir.R(X, i, jp1),
			ir.R(X, i, j), ir.R(Y, im1, j), ir.R(Y, ip1, j)).
		Assign("T2", ir.R(RY, i, j),
			ir.R(Y, im1, j), ir.R(Y, ip1, j), ir.R(Y, i, jm1), ir.R(Y, i, jp1),
			ir.R(Y, i, j), ir.R(X, i, jm1), ir.R(X, i, jp1)).
		Assign("T3", ir.R(AA, i, j),
			ir.R(X, i, jp1), ir.R(X, i, jm1), ir.R(Y, i, jp1), ir.R(Y, i, jm1)).
		Assign("T4", ir.R(DD, i, j),
			ir.R(X, ip1, j), ir.R(X, im1, j), ir.R(Y, ip1, j), ir.R(Y, im1, j),
			ir.R(AA, i, j)).
		End().End()

	// Forward elimination of the tridiagonal solves (wavefront in j).
	b.Do("j", ir.Con(3), ir.Con(n-1)).
		Do("i", ir.Con(2), ir.Con(n-1)).
		Assign("T5", ir.R(D, i, j),
			ir.R(AA, i, j), ir.R(D, i, jm1), ir.R(DD, i, j)).
		Assign("T6", ir.R(RX, i, j),
			ir.R(RX, i, j), ir.R(RX, i, jm1), ir.R(AA, i, j)).
		Assign("T7", ir.R(RY, i, j),
			ir.R(RY, i, j), ir.R(RY, i, jm1), ir.R(AA, i, j)).
		End().End()

	// Backward substitution (descending j).
	b.DoStep("j", ir.Con(n-1), ir.Con(2), -1).
		Do("i", ir.Con(2), ir.Con(n-1)).
		Assign("T8", ir.R(RX, i, j),
			ir.R(RX, i, j), ir.R(D, i, j), ir.R(RX, i, jp1)).
		Assign("T9", ir.R(RY, i, j),
			ir.R(RY, i, j), ir.R(D, i, j), ir.R(RY, i, jp1)).
		End().End()

	// Mesh update.
	b.Do("j", ir.Con(2), ir.Con(n-1)).
		Do("i", ir.Con(2), ir.Con(n-1)).
		Assign("T10", ir.R(X, i, j), ir.R(X, i, j), ir.R(RX, i, j)).
		Assign("T11", ir.R(Y, i, j), ir.R(Y, i, j), ir.R(RY, i, j)).
		End().End()

	b.End() // ITER
	p.Add(b.Build())
	return p
}
