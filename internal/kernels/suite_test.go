package kernels

import (
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

// prepAligned prepares a program with line-aligned array bases, so that
// no memory line spans two arrays (required for the per-reference
// exactness check: cross-array line sharing is the one effect reuse
// vectors cannot see).
func prepAligned(t *testing.T, p *ir.Program, lineBytes int64) *ir.NProgram {
	t.Helper()
	flat, _, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		t.Fatalf("%s: inline: %v", p.Name, err)
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		t.Fatalf("%s: normalize: %v", p.Name, err)
	}
	if err := layout.AssignProgram(np, layout.Options{Align: lineBytes}); err != nil {
		t.Fatalf("%s: layout: %v", p.Name, err)
	}
	return np
}

// TestSuiteValidation runs every built-in kernel through FindMisses and
// the simulator on two cache shapes: uniformly generated kernels must
// match exactly; the rest must never undercount.
func TestSuiteValidation(t *testing.T) {
	cfgs := []cache.Config{
		{SizeBytes: 1024, LineBytes: 32, Assoc: 1},
		{SizeBytes: 2048, LineBytes: 64, Assoc: 2},
	}
	for _, spec := range Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			n := int64(16)
			p := spec.Build(n)
			for _, cfg := range cfgs {
				np := prepAligned(t, spec.Build(n), cfg.LineBytes)
				_ = p
				a, err := cme.New(np, cfg, cme.Options{})
				if err != nil {
					t.Fatal(err)
				}
				rep := a.FindMisses()
				sim := trace.Simulate(np, cfg)
				if rep.TotalAccesses() != sim.Accesses {
					t.Fatalf("[%v] accesses %d vs %d", cfg, rep.TotalAccesses(), sim.Accesses)
				}
				if spec.Uniform {
					if rep.ExactMisses() != sim.Misses {
						t.Errorf("[%v] FindMisses %d != simulator %d (uniform kernel must be exact)",
							cfg, rep.ExactMisses(), sim.Misses)
					}
				} else if rep.ExactMisses() < sim.Misses {
					t.Errorf("[%v] FindMisses %d < simulator %d (must be conservative)",
						cfg, rep.ExactMisses(), sim.Misses)
				}
			}
		})
	}
}

// TestSuiteEstimates: EstimateMisses stays within the interval on every
// suite kernel at one representative configuration.
func TestSuiteEstimates(t *testing.T) {
	cfg := cache.Config{SizeBytes: 2048, LineBytes: 32, Assoc: 2}
	for _, spec := range Suite() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			np := prepAligned(t, spec.Build(20), cfg.LineBytes)
			a, err := cme.New(np, cfg, cme.Options{})
			if err != nil {
				t.Fatal(err)
			}
			exact := a.FindMisses()
			est, err := a.EstimateMisses(quickPlan())
			if err != nil {
				t.Fatal(err)
			}
			d := est.MissRatio() - exact.MissRatio()
			if d < 0 {
				d = -d
			}
			if d > 6 {
				t.Errorf("estimate %.2f%% vs exact %.2f%%", est.MissRatio(), exact.MissRatio())
			}
		})
	}
}

func quickPlan() sampling.Plan { return sampling.Plan{C: 0.95, W: 0.05} }

// TestSuiteNamesUnique guards the registry.
func TestSuiteNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Suite() {
		if seen[s.Name] {
			t.Errorf("duplicate kernel name %s", s.Name)
		}
		seen[s.Name] = true
		if s.Description == "" {
			t.Errorf("%s: missing description", s.Name)
		}
	}
	if len(seen) < 20 {
		t.Errorf("suite has only %d kernels", len(seen))
	}
}

// TestSuiteNonUniformUpgrade: with the §8 future-work extension enabled
// (unique-producer non-uniform reuse), the transpose kernel joins the
// exactly-analysable set; everything else stays at least conservative.
func TestSuiteNonUniformUpgrade(t *testing.T) {
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 1}
	np := prepAligned(t, transposeK(16), cfg.LineBytes)
	a, err := cme.New(np, cfg, cme.Options{Reuse: reuse.Options{NonUniform: true}})
	if err != nil {
		t.Fatal(err)
	}
	rep := a.FindMisses()
	sim := trace.Simulate(np, cfg)
	if rep.ExactMisses() != sim.Misses {
		t.Errorf("transpose with NonUniform: analysis %d != simulator %d", rep.ExactMisses(), sim.Misses)
	}
}
