package kernels

import "cachemodel/internal/ir"

// The paper validates against "programs from SPECfp95, Perfect Suite,
// Livermore kernels, Linpack and Lapack" (§1) but prints results only for
// three kernels and three whole programs. This file supplies the
// Livermore side of that corpus: the kernels whose access patterns fit
// the regular program model (data-dependent kernels such as K13/K16 are
// excluded, exactly as the model requires). Each kernel is used by the
// suite-wide validation tests and by `cachette list`.

// Spec describes a buildable workload.
type Spec struct {
	Name        string
	Description string
	// Build instantiates the kernel at problem size n.
	Build func(n int64) *ir.Program
	// Uniform reports that all references to each array are uniformly
	// generated, so the analysis must match the simulator exactly.
	Uniform bool
}

// Livermore returns the affine subset of the Livermore loops.
func Livermore() []Spec {
	return []Spec{
		{"lk1", "Livermore K1: hydro fragment", lk1, true},
		{"lk3", "Livermore K3: inner product", lk3, true},
		{"lk5", "Livermore K5: tri-diagonal elimination", lk5, true},
		{"lk6", "Livermore K6: general linear recurrence (triangular)", lk6, false},
		{"lk7", "Livermore K7: equation of state fragment", lk7, true},
		{"lk11", "Livermore K11: first sum (prefix)", lk11, true},
		{"lk12", "Livermore K12: first difference", lk12, true},
		{"lk18", "Livermore K18: 2-D explicit hydrodynamics (= Hydro)", func(n int64) *ir.Program { return Hydro(n, n) }, true},
		{"lk21", "Livermore K21: matrix product", lk21, true},
		{"lk22", "Livermore K22: Planckian distribution", lk22, true},
	}
}

// lk1: X(k) = Q + Y(k)*(R*Z(k+10) + T*Z(k+11)).
func lk1(n int64) *ir.Program {
	p := ir.NewProgram("LK1")
	b := ir.NewSub("LK1")
	X := b.Real8("X", n+1)
	Y := b.Real8("Y", n+1)
	Z := b.Real8("Z", n+12)
	k := ir.Var("k")
	b.Do("k", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(X, k),
			ir.R(Y, k), ir.R(Z, k.PlusConst(10)), ir.R(Z, k.PlusConst(11))).
		End()
	p.Add(b.Build())
	return p
}

// lk3: Q = Q + Z(k)*X(k). The accumulator lives in a register.
func lk3(n int64) *ir.Program {
	p := ir.NewProgram("LK3")
	b := ir.NewSub("LK3")
	X := b.Real8("X", n)
	Z := b.Real8("Z", n)
	k := ir.Var("k")
	b.Do("k", ir.Con(1), ir.Con(n)).
		Assign("S1", nil, ir.R(Z, k), ir.R(X, k)).
		End()
	p.Add(b.Build())
	return p
}

// lk5: X(i) = Z(i)*(Y(i) - X(i-1)) — a first-order recurrence; the
// loop-carried X(i-1) is a genuine memory reference in the original.
func lk5(n int64) *ir.Program {
	p := ir.NewProgram("LK5")
	b := ir.NewSub("LK5")
	X := b.Real8("X", n+1)
	Y := b.Real8("Y", n+1)
	Z := b.Real8("Z", n+1)
	i := ir.Var("i")
	b.Do("i", ir.Con(2), ir.Con(n)).
		Assign("S1", ir.R(X, i),
			ir.R(Z, i), ir.R(Y, i), ir.R(X, i.PlusConst(-1))).
		End()
	p.Add(b.Build())
	return p
}

// lk6: W(i) += B(i,k)·W(i-k) — general linear recurrence, triangular space.
func lk6(n int64) *ir.Program {
	p := ir.NewProgram("LK6")
	b := ir.NewSub("LK6")
	W := b.Real8("W", n+1)
	B := b.Real8("B", n+1, n+1)
	i := ir.Var("i")
	k := ir.Var("k")
	b.Do("i", ir.Con(2), ir.Con(n)).
		Do("k", ir.Con(1), i.PlusConst(-1)).
		Assign("S1", ir.R(W, i),
			ir.R(W, i), ir.R(B, i, k), ir.R(W, i.Minus(k))).
		End().End()
	p.Add(b.Build())
	return p
}

// lk7: X(k) = U(k) + R*(Z(k)+R*Y(k)) + T*(U(k+3)+R*(U(k+2)+R*U(k+1))) +
// T²*(U(k+6)+R*(U(k+5)+R*U(k+4))).
func lk7(n int64) *ir.Program {
	p := ir.NewProgram("LK7")
	b := ir.NewSub("LK7")
	X := b.Real8("X", n)
	Y := b.Real8("Y", n)
	Z := b.Real8("Z", n)
	U := b.Real8("U", n+7)
	k := ir.Var("k")
	b.Do("k", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(X, k),
			ir.R(U, k), ir.R(Z, k), ir.R(Y, k),
			ir.R(U, k.PlusConst(3)), ir.R(U, k.PlusConst(2)), ir.R(U, k.PlusConst(1)),
			ir.R(U, k.PlusConst(6)), ir.R(U, k.PlusConst(5)), ir.R(U, k.PlusConst(4))).
		End()
	p.Add(b.Build())
	return p
}

// lk11: X(k) = X(k-1) + Y(k) — first sum.
func lk11(n int64) *ir.Program {
	p := ir.NewProgram("LK11")
	b := ir.NewSub("LK11")
	X := b.Real8("X", n+1)
	Y := b.Real8("Y", n+1)
	k := ir.Var("k")
	b.Do("k", ir.Con(2), ir.Con(n)).
		Assign("S1", ir.R(X, k), ir.R(X, k.PlusConst(-1)), ir.R(Y, k)).
		End()
	p.Add(b.Build())
	return p
}

// lk12: X(k) = Y(k+1) - Y(k) — first difference.
func lk12(n int64) *ir.Program {
	p := ir.NewProgram("LK12")
	b := ir.NewSub("LK12")
	X := b.Real8("X", n+1)
	Y := b.Real8("Y", n+2)
	k := ir.Var("k")
	b.Do("k", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(X, k), ir.R(Y, k.PlusConst(1)), ir.R(Y, k)).
		End()
	p.Add(b.Build())
	return p
}

// lk21: PX(i,j) += VY(i,k)·CX(k,j) — matrix product in the original's
// loop order (k outer, then i inner, j middle... the original is
// DO k / DO i: PX(i,j) over j? We use the canonical listing: j, k, i).
func lk21(n int64) *ir.Program {
	p := ir.NewProgram("LK21")
	b := ir.NewSub("LK21")
	PX := b.Real8("PX", n, n)
	VY := b.Real8("VY", n, n)
	CX := b.Real8("CX", n, n)
	i, j, k := ir.Var("i"), ir.Var("j"), ir.Var("k")
	b.Do("j", ir.Con(1), ir.Con(n)).
		Do("k", ir.Con(1), ir.Con(n)).
		Do("i", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(PX, i, j),
			ir.R(PX, i, j), ir.R(VY, i, k), ir.R(CX, k, j)).
		End().End().End()
	p.Add(b.Build())
	return p
}

// lk22: Y(k) = U(k)/V(k); W(k) = X(k)/(EXP(Y(k))-1): the EXP is a libm
// call on a register value; the memory traffic is the four streams.
func lk22(n int64) *ir.Program {
	p := ir.NewProgram("LK22")
	b := ir.NewSub("LK22")
	X := b.Real8("X", n)
	Y := b.Real8("Y", n)
	U := b.Real8("U", n)
	V := b.Real8("V", n)
	W := b.Real8("W", n)
	k := ir.Var("k")
	b.Do("k", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(Y, k), ir.R(U, k), ir.R(V, k)).
		Assign("S2", ir.R(W, k), ir.R(X, k), ir.R(Y, k)).
		End()
	p.Add(b.Build())
	return p
}
