package sampling

import (
	"math"
	"testing"
	"testing/quick"
)

func TestZScore(t *testing.T) {
	cases := []struct {
		c, want float64
	}{
		{0.90, 1.6449},
		{0.95, 1.9600},
		{0.99, 2.5758},
	}
	for _, c := range cases {
		if got := ZScore(c.c); math.Abs(got-c.want) > 1e-3 {
			t.Errorf("ZScore(%v) = %.4f, want %.4f", c.c, got, c.want)
		}
	}
}

// TestPaperSampleSizes: the paper's plans must give the classic sizes —
// (95%, 0.05) needs 385 samples and the fallback (90%, 0.15) needs 31.
func TestPaperSampleSizes(t *testing.T) {
	if got := (Plan{C: 0.95, W: 0.05}).Size(); got != 385 {
		t.Errorf("(95%%, 0.05) size = %d, want 385", got)
	}
	fb := DefaultFallback.Size()
	if fb < 30 || fb > 31 {
		t.Errorf("(90%%, 0.15) size = %d, want 30-31", fb)
	}
}

func TestSizeForFPC(t *testing.T) {
	p := Plan{C: 0.95, W: 0.05}
	if got := p.SizeFor(1 << 40); got != 385 {
		t.Errorf("infinite-population size = %d, want 385", got)
	}
	small := p.SizeFor(400)
	if small >= 385 || small <= 0 {
		t.Errorf("FPC size for 400 = %d, want < 385", small)
	}
	if got := p.SizeFor(10); got > 10 {
		t.Errorf("size %d exceeds population 10", got)
	}
	if p.SizeFor(0) != 0 {
		t.Error("empty population must need 0 samples")
	}
}

func TestAchievable(t *testing.T) {
	p := Plan{C: 0.95, W: 0.05}
	if p.Achievable(384) {
		t.Error("384 points cannot achieve (95%, 0.05)")
	}
	if !p.Achievable(385) {
		t.Error("385 points achieve (95%, 0.05)")
	}
}

func TestValidate(t *testing.T) {
	bad := []Plan{{C: 0, W: 0.05}, {C: 1, W: 0.05}, {C: 0.95, W: 0}, {C: 0.95, W: 1}}
	for _, p := range bad {
		if p.Validate() == nil {
			t.Errorf("Validate(%+v) accepted", p)
		}
	}
	if (Plan{C: 0.95, W: 0.05}).Validate() != nil {
		t.Error("valid plan rejected")
	}
}

func TestHalfWidth(t *testing.T) {
	p := Plan{C: 0.95, W: 0.05}
	// Worst case p = 1/2 with the plan's own size: half-width ≈ w.
	hw := p.HalfWidth(0.5, p.Size(), 0)
	if math.Abs(hw-0.05) > 0.002 {
		t.Errorf("half-width at design point = %.4f, want ≈ 0.05", hw)
	}
	// Full census: zero width.
	if got := p.HalfWidth(0.5, 100, 100); got != 0 {
		t.Errorf("census half-width = %v, want 0", got)
	}
	// FPC shrinks the width for finite populations.
	if p.HalfWidth(0.5, 100, 150) >= p.HalfWidth(0.5, 100, 0) {
		t.Error("FPC did not shrink the width")
	}
}

// TestSizeMonotone: tighter intervals and higher confidence always need
// more samples (testing/quick over the parameter grid).
func TestSizeMonotone(t *testing.T) {
	f := func(a, b uint8) bool {
		c := 0.5 + float64(a%49)/100  // 0.50..0.98
		w := 0.01 + float64(b%20)/100 // 0.01..0.20
		n1 := (Plan{C: c, W: w}).Size()
		n2 := (Plan{C: c, W: w / 2}).Size()
		n3 := (Plan{C: c + 0.01, W: w}).Size()
		return n2 >= n1 && n3 >= n1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestZScoreMemoized: warmed and cold lookups come from the same bisection,
// so repeated calls (including the pre-warmed table) are bit-identical.
func TestZScoreMemoized(t *testing.T) {
	for _, c := range []float64{0.80, 0.90, 0.95, 0.99, 0.925} {
		first := ZScore(c)
		for i := 0; i < 3; i++ {
			if again := ZScore(c); again != first {
				t.Errorf("ZScore(%v) unstable across calls: %v then %v", c, first, again)
			}
		}
		if got := zscoreBisect(c); got != first {
			t.Errorf("memoized ZScore(%v)=%v differs from direct bisection %v", c, first, got)
		}
	}
}

// TestWilsonHalfWidth pins the stopping rule's edge behaviour.
func TestWilsonHalfWidth(t *testing.T) {
	p := Plan{C: 0.95, W: 0.05}
	if hw := p.WilsonHalfWidth(0.5, 0, 1000); hw != 1 {
		t.Errorf("n=0: half-width %v, want 1", hw)
	}
	if hw := p.WilsonHalfWidth(0.5, 1000, 1000); hw != 0 {
		t.Errorf("census: half-width %v, want 0", hw)
	}
	// Never collapses at the extremes: a handful of all-hit draws must not
	// satisfy the plan.
	if hw := p.WilsonHalfWidth(0, 8, 1_000_000); hw <= p.W {
		t.Errorf("phat=0, n=8: half-width %v ≤ W; the rule would stop on a lucky prefix", hw)
	}
	// Monotone shrinking in n at fixed phat.
	prev := math.Inf(1)
	for _, n := range []int{10, 50, 100, 400, 1000} {
		hw := p.WilsonHalfWidth(0.3, n, 1_000_000)
		if hw >= prev {
			t.Errorf("half-width not shrinking: n=%d gives %v ≥ %v", n, hw, prev)
		}
		prev = hw
	}
	// The FPC tightens the interval versus an infinite population.
	if inf, fin := p.WilsonHalfWidth(0.3, 100, 0), p.WilsonHalfWidth(0.3, 100, 200); fin >= inf {
		t.Errorf("FPC did not tighten: finite %v ≥ infinite %v", fin, inf)
	}
}
