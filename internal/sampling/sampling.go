// Package sampling provides the statistical machinery of EstimateMisses
// (§4.2, Fig. 6): translating a confidence level c and interval half-width
// w into a sample size for estimating a proportion, including the finite
// population correction, exactly in the spirit of [5, 22] cited by the
// paper.
package sampling

import (
	"fmt"
	"math"
	"sync"
)

// Plan is a sampling request: estimate a proportion within ±W at
// confidence C (e.g. C=0.95, W=0.05 for the paper's whole-program runs).
type Plan struct {
	C float64 // confidence level in (0, 1)
	W float64 // interval half-width in (0, 1)
}

// DefaultFallback is the paper's fallback plan (c', w') = (90%, 0.15) used
// when a RIS is too small for the requested plan.
var DefaultFallback = Plan{C: 0.90, W: 0.15}

// Validate reports whether the plan's parameters are in range.
func (p Plan) Validate() error {
	if !(p.C > 0 && p.C < 1) {
		return fmt.Errorf("sampling: confidence %v out of (0,1)", p.C)
	}
	if !(p.W > 0 && p.W < 1) {
		return fmt.Errorf("sampling: interval width %v out of (0,1)", p.W)
	}
	return nil
}

// zscoreMemo caches bisection results. ZScore sits on hot paths now — the
// adaptive solver consults the stopping rule per classified point and the
// advisor calls HalfWidth per reference per candidate — while real callers
// only ever use a handful of distinct confidence levels, so a small table
// of common levels (warmed once) plus a concurrent map for everything else
// removes the 200-iteration erf bisection from every call after the first.
var (
	zscoreMemo sync.Map // float64 -> float64
	zscoreOnce sync.Once
)

// zscoreWarm seeds the memo with the confidence levels the paper and the
// CLI use, each computed by the same bisection so memoized and cold
// results are bit-identical.
func zscoreWarm() {
	for _, c := range [...]float64{0.80, 0.90, 0.95, 0.99} {
		zscoreMemo.Store(c, zscoreBisect(c))
	}
}

// ZScore returns the two-sided standard-normal critical value z such that
// P(|Z| ≤ z) = c, computed by bisection on the error function (no outside
// tables) and memoized per confidence level.
func ZScore(c float64) float64 {
	zscoreOnce.Do(zscoreWarm)
	if z, ok := zscoreMemo.Load(c); ok {
		return z.(float64)
	}
	z := zscoreBisect(c)
	zscoreMemo.Store(c, z)
	return z
}

func zscoreBisect(c float64) float64 {
	// Solve erf(z/√2) = c for z in (0, 40).
	lo, hi := 0.0, 40.0
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if math.Erf(mid/math.Sqrt2) < c {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// Size returns the worst-case (p = 1/2) sample size needed for the plan,
// n = z²/(4w²), rounded up. For the paper's (95%, 0.05) this is 385.
func (p Plan) Size() int {
	z := ZScore(p.C)
	return int(math.Ceil(z * z / (4 * p.W * p.W)))
}

// SizeFor returns the sample size adjusted with the finite population
// correction for a population of v points: n' = n / (1 + (n−1)/v).
func (p Plan) SizeFor(v int64) int {
	if v <= 0 {
		return 0
	}
	n := float64(p.Size())
	adj := n / (1 + (n-1)/float64(v))
	s := int(math.Ceil(adj))
	if int64(s) > v {
		s = int(v)
	}
	return s
}

// Achievable reports whether a population of v points suffices for the
// plan, i.e. whether v is at least the uncorrected sample size. This is
// the "RIS too small" test of Fig. 6.
func (p Plan) Achievable(v int64) bool { return v >= int64(p.Size()) }

// WilsonHalfWidth returns the half-width of the Wilson score interval for
// an observed proportion phat from n samples out of a population of v
// (v ≤ 0 means infinite), with the finite population correction applied to
// the standard error. The adaptive solver uses this as its stopping rule
// instead of the Wald width of HalfWidth because Wilson never collapses to
// zero at phat ∈ {0, 1}: an all-hit prefix still needs n ≈ z²(1−W)/(2W)
// draws before the interval meets ±W, so sampling cannot stop on a lucky
// (or unlucky) first handful of points.
func (p Plan) WilsonHalfWidth(phat float64, n int, v int64) float64 {
	if n <= 0 {
		return 1
	}
	if v > 0 && int64(n) >= v {
		return 0 // full census: no sampling uncertainty
	}
	z := ZScore(p.C)
	nn := float64(n)
	se2 := phat * (1 - phat) / nn
	if v > 1 && int64(n) < v {
		se2 *= float64(v-int64(n)) / float64(v-1)
	}
	return z * math.Sqrt(se2+z*z/(4*nn*nn)) / (1 + z*z/nn)
}

// HalfWidth returns the realised confidence half-width for an observed
// proportion phat from n samples out of a population of v (v ≤ 0 means
// infinite), i.e. z·sqrt(phat(1−phat)/n)·fpc.
func (p Plan) HalfWidth(phat float64, n int, v int64) float64 {
	if n <= 0 {
		return 1
	}
	if v > 0 && int64(n) >= v {
		return 0 // full census: no sampling uncertainty
	}
	z := ZScore(p.C)
	se := math.Sqrt(phat * (1 - phat) / float64(n))
	if v > 1 && int64(n) < v {
		se *= math.Sqrt(float64(v-int64(n)) / float64(v-1))
	}
	return z * se
}
