package sampling

import "cachemodel/internal/obs"

// Sampling metrics, updated by the solver passes that draw samples
// (internal/cme) at per-reference granularity — never per draw.
var (
	// Draws counts sampled points actually classified.
	Draws = obs.Default.Counter("sampling_draws_total")
	// EarlyStops counts references whose adaptive sampling stopped ahead
	// of the a-priori sample size via the Wilson interval rule.
	EarlyStops = obs.Default.Counter("sampling_early_stops_total")
	// FallbackPlans counts references that fell back to the paper's
	// default (90%, 0.15) plan because the requested plan was not
	// achievable on their RIS volume.
	FallbackPlans = obs.Default.Counter("sampling_fallback_plans_total")
)
