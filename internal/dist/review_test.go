package dist

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// oneUnitSpec is a 1-candidate sweep: one unit, cheap to complete with
// synthetic rows when the test only exercises scheduling, not solving.
func oneUnitSpec(cacheBytes int64) *SweepSpec {
	return &SweepSpec{
		ProgramSpec: ProgramSpec{Program: "hydro", Size: 16},
		SolveSpec:   SolveSpec{Exact: true},
		CacheSizes:  []int64{cacheBytes},
		LineSizes:   []int64{32},
		Assocs:      []int{1},
	}
}

// completeAll drains the coordinator by leasing every pending unit and
// completing it with synthetic rows — scheduling-only tests don't need
// real solves.
func completeAll(t *testing.T, c *Coordinator, worker string) {
	t.Helper()
	for {
		lr := c.Lease(worker)
		if lr.Status != LeaseUnit {
			return
		}
		rows := make([]Row, len(lr.Unit.Candidates))
		for i, wc := range lr.Unit.Candidates {
			rows[i] = Row{Label: wc.Label, CacheBytes: wc.CacheBytes, MissRatioPct: 1}
		}
		if err := c.Complete(worker, lr.Sweep, lr.Unit.Key, rows, "", nil); err != nil {
			t.Fatalf("Complete: %v", err)
		}
	}
}

// TestBudgetedSweepDoesNotAliasUnbudgeted: a sweep with a per-unit budget
// must be a distinct sweep from the identical-grid unbudgeted one (a
// budget can degrade rows), and its units must not dedup against the
// unbudgeted sweep's units. Identical budgets still alias idempotently.
func TestBudgetedSweepDoesNotAliasUnbudgeted(t *testing.T) {
	c, _ := newTestCoordinator(t, Options{})
	ctx := context.Background()

	plain, err := c.AddSweep(ctx, testSpec())
	if err != nil {
		t.Fatalf("AddSweep plain: %v", err)
	}

	budgeted := testSpec()
	budgeted.MaxPoints = 123
	stB, err := c.AddSweep(ctx, budgeted)
	if err != nil {
		t.Fatalf("AddSweep budgeted: %v", err)
	}
	if stB.Sweep == plain.Sweep {
		t.Fatalf("budgeted sweep aliased the unbudgeted sweep %s", plain.Sweep)
	}
	if stB.Stats.Deduped != 0 {
		t.Fatalf("budgeted units deduped %d against unbudgeted units, want 0", stB.Stats.Deduped)
	}

	again := testSpec()
	again.MaxPoints = 123
	stB2, err := c.AddSweep(ctx, again)
	if err != nil {
		t.Fatalf("AddSweep budgeted again: %v", err)
	}
	if stB2.Sweep != stB.Sweep {
		t.Fatalf("identical budgeted resubmit created a new sweep")
	}

	timeout := testSpec()
	timeout.TimeoutMs = 5000
	stT, err := c.AddSweep(ctx, timeout)
	if err != nil {
		t.Fatalf("AddSweep timeout: %v", err)
	}
	if stT.Sweep == plain.Sweep || stT.Sweep == stB.Sweep {
		t.Fatalf("timeout-budgeted sweep aliased another spec's sweep")
	}
}

// TestPruneSweepDoesNotAliasExact: prune replaces dominated rows with
// cheap-tier estimates, so a pruned sweep must never alias the
// identical-grid exact sweep — the idempotent-resubmit path would
// otherwise hand advisor estimates to a caller that asked for exact rows.
func TestPruneSweepDoesNotAliasExact(t *testing.T) {
	c, srv := newTestCoordinator(t, Options{})
	ctx := context.Background()
	spec := testSpec()
	spec.CacheSizes = []int64{1024, 2048, 4096, 8192}
	spec.Assocs = []int{1}

	exact, err := c.AddSweep(ctx, spec)
	if err != nil {
		t.Fatalf("AddSweep exact: %v", err)
	}
	pruneSpec := testSpec()
	pruneSpec.CacheSizes = spec.CacheSizes
	pruneSpec.Assocs = spec.Assocs
	pruneSpec.Prune = true
	pruneSpec.PruneKeep = 2
	pruneSpec.PruneMargin = 0.001
	pruned, err := c.AddSweep(ctx, pruneSpec)
	if err != nil {
		t.Fatalf("AddSweep pruned: %v", err)
	}
	if pruned.Sweep == exact.Sweep {
		t.Fatalf("pruned sweep aliased the exact sweep")
	}
	// Different prune knobs are a different sweep too.
	otherKnobs := testSpec()
	otherKnobs.CacheSizes = spec.CacheSizes
	otherKnobs.Assocs = spec.Assocs
	otherKnobs.Prune = true
	otherKnobs.PruneKeep = 3
	otherKnobs.PruneMargin = 0.001
	st3, err := c.AddSweep(ctx, otherKnobs)
	if err != nil {
		t.Fatalf("AddSweep other knobs: %v", err)
	}
	if st3.Sweep == pruned.Sweep {
		t.Fatalf("different prune knobs aliased the same sweep")
	}
	runWorkers(t, srv.URL, 1, nil)
}

// TestJournalTornTailSurvivesSecondRestart: a torn final line (crash
// mid-append) must be truncated on open, so records journalled *after*
// the first restart land on a record boundary and survive a second
// restart. Without the truncation the first post-resume append
// concatenates onto the torn line and every later record is silently
// discarded next time.
func TestJournalTornTailSurvivesSecondRestart(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "coordinator.journal")
	spec := testSpec()

	// Run 1: accept the sweep, complete one unit, then "crash" leaving a
	// torn half-record at the tail.
	a, err := New(Options{JournalPath: journal})
	if err != nil {
		t.Fatalf("New A: %v", err)
	}
	stA, err := a.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	lr := a.Lease("w-a")
	if lr.Status != LeaseUnit {
		t.Fatalf("lease status %q", lr.Status)
	}
	rows := make([]Row, len(lr.Unit.Candidates))
	if err := a.Complete("w-a", lr.Sweep, lr.Unit.Key, rows, "", nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	a.Close()
	f, err := os.OpenFile(journal, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.WriteString(`{"t":"complete","sweep":"dead`); err != nil { // no trailing newline
		t.Fatalf("write torn tail: %v", err)
	}
	f.Close()

	// Run 2: replay must keep the intact record, and new records must not
	// concatenate onto the torn tail.
	b, err := New(Options{JournalPath: journal})
	if err != nil {
		t.Fatalf("New B: %v", err)
	}
	if got := b.Status().UnitsDone; got != 1 {
		t.Fatalf("after first restart: done=%d, want 1", got)
	}
	lr = b.Lease("w-b")
	if lr.Status != LeaseUnit {
		t.Fatalf("lease status %q", lr.Status)
	}
	rows = make([]Row, len(lr.Unit.Candidates))
	if err := b.Complete("w-b", lr.Sweep, lr.Unit.Key, rows, "", nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	b.Close()

	// Run 3: both completions — including the one journalled after the
	// torn crash — must replay.
	c, err := New(Options{JournalPath: journal})
	if err != nil {
		t.Fatalf("New C: %v", err)
	}
	defer c.Close()
	if got := c.Status().UnitsDone; got != 2 {
		t.Fatalf("after second restart: done=%d, want 2 (post-crash record lost)", got)
	}
	if _, ok := c.SweepStatus(stA.Sweep); !ok {
		t.Fatalf("sweep lost across restarts")
	}
}

// TestJournalPruneOutcomeReplayed: the prune pass's outcome is journalled
// with the submission, so a restarted coordinator re-applies it instead
// of re-running the cheap-tier solve over the whole grid.
func TestJournalPruneOutcomeReplayed(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "coordinator.journal")
	spec := testSpec()
	spec.CacheSizes = []int64{1024, 2048, 4096, 8192, 16384, 32768}
	spec.Assocs = []int{1}
	spec.Prune = true
	spec.PruneKeep = 2
	spec.PruneMargin = 0.001

	a, err := New(Options{JournalPath: journal})
	if err != nil {
		t.Fatalf("New A: %v", err)
	}
	stA, err := a.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	if stA.Stats.Pruned == 0 {
		t.Fatalf("prune pass eliminated nothing")
	}
	a.Close()

	blob, err := os.ReadFile(journal)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	if !strings.Contains(string(blob), `"pruned":{`) {
		t.Fatalf("sweep record does not journal the prune outcome:\n%.400s", blob)
	}

	b, err := New(Options{JournalPath: journal})
	if err != nil {
		t.Fatalf("New B: %v", err)
	}
	defer b.Close()
	stB, ok := b.SweepStatus(stA.Sweep)
	if !ok {
		t.Fatalf("pruned sweep lost across restart")
	}
	if stB.Stats.Pruned != stA.Stats.Pruned || stB.Stats.Units != stA.Stats.Units {
		t.Fatalf("replayed prune stats differ: got %+v, want %+v", stB.Stats, stA.Stats)
	}
}

// TestSweepRetentionEvictsFinishedSweeps: beyond MaxRetainedSweeps the
// oldest finished sweeps are evicted — their reports become unavailable
// and their units leave the dedup store — while running sweeps stay.
func TestSweepRetentionEvictsFinishedSweeps(t *testing.T) {
	c, err := New(Options{MaxRetainedSweeps: 1, Logf: t.Logf})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	defer c.Close()
	ctx := context.Background()

	stA, err := c.AddSweep(ctx, oneUnitSpec(2048))
	if err != nil {
		t.Fatalf("AddSweep A: %v", err)
	}
	completeAll(t, c, "w0")
	if st, _ := c.SweepStatus(stA.Sweep); !st.Done {
		t.Fatalf("sweep A not done after draining")
	}

	stB, err := c.AddSweep(ctx, oneUnitSpec(4096))
	if err != nil {
		t.Fatalf("AddSweep B: %v", err)
	}
	if _, ok := c.SweepStatus(stA.Sweep); ok {
		t.Fatalf("finished sweep A not evicted at retention 1")
	}
	if st := c.Status(); len(st.Sweeps) != 1 || st.Sweeps[0].Sweep != stB.Sweep {
		t.Fatalf("status after eviction: %+v", st.Sweeps)
	}

	// Sweep B is still running: submitting more sweeps must never evict it.
	stC, err := c.AddSweep(ctx, oneUnitSpec(8192))
	if err != nil {
		t.Fatalf("AddSweep C: %v", err)
	}
	if _, ok := c.SweepStatus(stB.Sweep); !ok {
		t.Fatalf("running sweep B was evicted")
	}
	_ = stC

	// A resubmit of the evicted sweep is a fresh sweep with fresh units:
	// its unit left the dedup store with it.
	completeAll(t, c, "w0")
	stA2, err := c.AddSweep(ctx, oneUnitSpec(2048))
	if err != nil {
		t.Fatalf("resubmit A: %v", err)
	}
	if stA2.Stats.Deduped != 0 || stA2.Stats.UnitsDone != 0 {
		t.Fatalf("evicted sweep's unit still in the dedup store: %+v", stA2.Stats)
	}
	completeAll(t, c, "w0")
	if _, err := c.Report(stA2.Sweep); err != nil {
		t.Fatalf("Report after re-solve: %v", err)
	}
}
