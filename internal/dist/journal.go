package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Journal record types. Sweep and complete/fail records are replayed on
// restart; lease records are audit-only (a lease held by a worker that
// outlived the coordinator will simply be re-issued — the result is
// bit-identical either way, so replaying leases would only delay work).
const (
	recSweep    = "sweep"
	recLease    = "lease"
	recComplete = "complete"
	recFail     = "fail"
)

// journalRec is one append-only JSONL line of coordinator state.
type journalRec struct {
	T      string     `json:"t"`
	Sweep  string     `json:"sweep,omitempty"`
	Spec   *SweepSpec `json:"spec,omitempty"`
	Unit   string     `json:"unit,omitempty"`
	Worker string     `json:"worker,omitempty"`
	Rows   []Row      `json:"rows,omitempty"`
	Err    string     `json:"err,omitempty"`
}

// journal is the coordinator's crash log: every state transition that
// matters for resume is one fsynced JSONL line, so a killed coordinator
// reconstructs its ledger by re-decomposing journalled sweeps (unit keys
// are content addresses, so they match deterministically) and re-applying
// completed units by key.
type journal struct {
	f *os.File
}

// openJournal reads any existing records at path (tolerating a torn final
// line from a crash mid-append) and opens the file for appending.
func openJournal(path string) ([]journalRec, *journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist journal: %w", err)
	}
	var recs []journalRec
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var rec journalRec
		if err := json.Unmarshal(line, &rec); err != nil {
			// A torn tail (crash mid-append) or foreign line: stop trusting
			// the file from here; everything before it is intact.
			break
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dist journal: %w", err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dist journal: %w", err)
	}
	return recs, &journal{f: f}, nil
}

// append writes one record and syncs it: a record the coordinator acted
// on must be on disk before the action is acknowledged.
func (j *journal) append(rec journalRec) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(blob, '\n')); err != nil {
		return err
	}
	return j.f.Sync()
}

func (j *journal) close() error {
	return j.f.Close()
}
