package dist

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// Journal record types. Sweep and complete/fail records are replayed on
// restart; lease records are audit-only (a lease held by a worker that
// outlived the coordinator will simply be re-issued — the result is
// bit-identical either way, so replaying leases would only delay work).
const (
	recSweep    = "sweep"
	recLease    = "lease"
	recComplete = "complete"
	recFail     = "fail"
)

// journalRec is one append-only JSONL line of coordinator state.
type journalRec struct {
	T      string     `json:"t"`
	Sweep  string     `json:"sweep,omitempty"`
	Spec   *SweepSpec `json:"spec,omitempty"`
	Unit   string     `json:"unit,omitempty"`
	Worker string     `json:"worker,omitempty"`
	Rows   []Row      `json:"rows,omitempty"`
	Err    string     `json:"err,omitempty"`
	// Trace stamps sweep and lease records with the sweep's trace id, so
	// a post-crash journal is greppable per sweep/trace and replay
	// re-attaches the original trace to the resumed sweep.
	Trace string `json:"trace,omitempty"`
	// Pruned is the advisor prune pass's outcome for a sweep record, keyed
	// by candidate index, so replay re-applies it instead of re-running the
	// solve pass. A pointer so that "prune ran and eliminated nothing"
	// (non-nil empty map) survives omitempty and is distinguishable from
	// "no prune" (nil).
	Pruned *map[int]Row `json:"pruned,omitempty"`
}

// journal is the coordinator's crash log: every state transition that
// matters for resume is one JSONL line (fsynced for sweep and
// complete/fail records), so a killed coordinator reconstructs its ledger
// by re-decomposing journalled sweeps (unit keys are content addresses,
// so they match deterministically) and re-applying completed units by
// key.
type journal struct {
	f *os.File
}

// openJournal reads the intact record prefix at path and opens the file
// for appending *at the end of that prefix*: a torn final line (crash
// mid-append) or any trailing garbage is truncated away, so the first
// post-resume record starts on a record boundary. Without the truncation
// the first append would concatenate onto the torn line, and the next
// restart would stop replaying there — silently discarding everything
// journalled after the first crash. A torn record was never acknowledged
// (append syncs before returning), so dropping it is sound: the unit it
// described is simply re-issued.
func openJournal(path string) ([]journalRec, *journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("dist journal: %w", err)
	}
	var recs []journalRec
	var intact int64 // byte length of the intact, newline-terminated prefix
	br := bufio.NewReaderSize(f, 1<<20)
scan:
	for {
		line, rerr := br.ReadBytes('\n')
		switch rerr {
		case nil:
			body := bytes.TrimSpace(bytes.TrimSuffix(line, []byte("\n")))
			if len(body) > 0 {
				var rec journalRec
				if err := json.Unmarshal(body, &rec); err != nil {
					// A foreign or corrupt line: stop trusting the file from
					// here; everything before it is intact.
					break scan
				}
				recs = append(recs, rec)
			}
			intact += int64(len(line))
		case io.EOF:
			// A non-empty remainder is an unterminated tail: torn, drop it.
			break scan
		default:
			f.Close()
			return nil, nil, fmt.Errorf("dist journal: %w", rerr)
		}
	}
	if err := f.Truncate(intact); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dist journal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(intact, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("dist journal: %w", err)
	}
	return recs, &journal{f: f}, nil
}

// append writes one record; with sync it is fsynced — a record the
// coordinator acted on must be on disk before the action is
// acknowledged. Audit-only records (leases) skip the sync so scheduling
// traffic does not serialize behind disk flushes.
func (j *journal) append(rec journalRec, sync bool) error {
	blob, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	if _, err := j.f.Write(append(blob, '\n')); err != nil {
		return err
	}
	if !sync {
		return nil
	}
	return j.f.Sync()
}

func (j *journal) close() error {
	return j.f.Close()
}
