package dist

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/faultinject"
)

// TestChaosKilledWorkersPreserveBitIdentity is the failure-schedule half
// of the determinism guarantee: workers are killed mid-unit at
// fault-injected checkpoints (no completion, no failure report — exactly
// a SIGKILL), replacements restart, leases expire and are stolen, and the
// merged report must still be byte-identical to the single-process
// baseline. Three seeds vary the kill schedule.
func TestChaosKilledWorkersPreserveBitIdentity(t *testing.T) {
	spec := &SweepSpec{
		ProgramSpec: ProgramSpec{Program: "hydro", Size: 12},
		SolveSpec:   SolveSpec{Exact: true},
		CacheSizes:  []int64{1024, 2048, 4096, 8192},
		LineSizes:   []int64{32},
		Assocs:      []int{1, 2},
	}
	want := mustJSON(t, baselineRows(t, spec))

	for _, seed := range []int64{1, 7, 42} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			c, err := New(Options{LeaseTTL: 150 * time.Millisecond, ShutdownWhenDone: true, Logf: t.Logf})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			defer c.Close()
			srv := httptest.NewServer(c.Handler())
			defer srv.Close()
			st, err := c.AddSweep(context.Background(), spec)
			if err != nil {
				t.Fatalf("AddSweep: %v", err)
			}

			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			defer cancel()
			rng := rand.New(rand.NewSource(seed))
			const maxDeaths = 3
			var deaths int
			var wg sync.WaitGroup

			// The killer: dies at a random checkpoint of whatever unit it
			// holds, is restarted (a fresh process: cold caches, new lease),
			// and after maxDeaths deaths stays down.
			wg.Add(1)
			go func() {
				defer wg.Done()
				for deaths < maxDeaths {
					inj := faultinject.At(rng.Int63n(40)+1, ErrKilled)
					w, err := NewWorker(WorkerOptions{
						Coordinator: srv.URL,
						ID:          fmt.Sprintf("killer-%d", deaths),
						Poll:        20 * time.Millisecond,
						Hook:        func(string) budget.Hook { return inj.Hook() },
					})
					if err != nil {
						t.Errorf("killer: %v", err)
						return
					}
					err = w.Run(ctx)
					if errors.Is(err, ErrKilled) {
						deaths++
						continue // "restart the process"
					}
					return // clean shutdown (or ctx timeout)
				}
			}()

			// The immortal worker guarantees progress whatever the killer
			// does.
			wg.Add(1)
			var immortalErr error
			go func() {
				defer wg.Done()
				w, err := NewWorker(WorkerOptions{
					Coordinator: srv.URL, ID: "immortal", Poll: 20 * time.Millisecond,
				})
				if err != nil {
					immortalErr = err
					return
				}
				immortalErr = w.Run(ctx)
			}()

			wg.Wait()
			if immortalErr != nil {
				t.Fatalf("immortal worker: %v", immortalErr)
			}
			if err := c.Wait(ctx, st.Sweep); err != nil {
				t.Fatalf("Wait: %v", err)
			}
			rep, err := c.Report(st.Sweep)
			if err != nil {
				t.Fatalf("Report: %v", err)
			}
			if got := mustJSON(t, rep.Rows); got != want {
				t.Errorf("seed %d: merged rows differ from single-process baseline after %d kills", seed, deaths)
			}
			status := c.Status()
			t.Logf("seed %d: %d deaths, %d stolen, %d leased, %d completed",
				seed, deaths, status.UnitsStolen, status.UnitsLeased, status.UnitsDone)
			if int(status.UnitsStolen) < deaths {
				t.Errorf("stolen = %d, want >= %d (every death abandons a leased unit)", status.UnitsStolen, deaths)
			}
			if deaths == 0 {
				t.Logf("seed %d: killer never got a unit (immortal won every race)", seed)
			}
		})
	}
}
