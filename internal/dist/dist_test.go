package dist

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cerr"
	"cachemodel/internal/cme"
)

// testSpec is the shared small workload: fast enough for exact solves,
// rich enough (several arrays, replacement misses) that a merge bug would
// show up in the counts.
func testSpec() *SweepSpec {
	return &SweepSpec{
		ProgramSpec: ProgramSpec{Program: "hydro", Size: 16},
		SolveSpec:   SolveSpec{Exact: true},
		CacheSizes:  []int64{2048, 4096, 8192},
		LineSizes:   []int64{32},
		Assocs:      []int{1, 2},
	}
}

// baselineRows renders the single-process SolveBatch answer for a spec —
// the byte-level ground truth every distributed schedule must reproduce.
func baselineRows(t *testing.T, spec *SweepSpec) []Row {
	t.Helper()
	wcs, err := spec.grid()
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	np, err := spec.ProgramSpec.build(0)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	prep, err := cme.Prepare(np, spec.options())
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	plan, err := spec.plan()
	if err != nil {
		t.Fatalf("plan: %v", err)
	}
	reps, err := prep.SolveBatch(context.Background(), candidates(wcs), cme.BatchOptions{Plan: plan})
	return RenderRows(wcs, reps, err)
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	blob, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return string(blob)
}

// runWorkers runs n workers against a coordinator URL until each exits,
// failing the test on any error other than a clean shutdown.
func runWorkers(t *testing.T, url string, n int, mutate func(i int, o *WorkerOptions)) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		opt := WorkerOptions{Coordinator: url, ID: fmt.Sprintf("w%d", i), Poll: 20 * time.Millisecond}
		if mutate != nil {
			mutate(i, &opt)
		}
		w, err := NewWorker(opt)
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = w.Run(context.Background())
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
}

func newTestCoordinator(t *testing.T, opt Options) (*Coordinator, *httptest.Server) {
	t.Helper()
	opt.ShutdownWhenDone = true
	opt.Logf = t.Logf
	c, err := New(opt)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	srv := httptest.NewServer(c.Handler())
	t.Cleanup(srv.Close)
	t.Cleanup(func() { c.Close() })
	return c, srv
}

// TestBitIdentityAcrossWorkerCounts is the core guarantee: the merged
// report's rows are byte-identical to a single-process SolveBatch at any
// worker count.
func TestBitIdentityAcrossWorkerCounts(t *testing.T) {
	spec := testSpec()
	want := mustJSON(t, baselineRows(t, spec))
	for _, workers := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			c, srv := newTestCoordinator(t, Options{})
			st, err := c.AddSweep(context.Background(), spec)
			if err != nil {
				t.Fatalf("AddSweep: %v", err)
			}
			if st.Stats.Units != 6 {
				t.Fatalf("units = %d, want 6", st.Stats.Units)
			}
			runWorkers(t, srv.URL, workers, nil)
			rep, err := c.Report(st.Sweep)
			if err != nil {
				t.Fatalf("Report: %v", err)
			}
			if got := mustJSON(t, rep.Rows); got != want {
				t.Errorf("merged rows differ from single-process baseline\n got: %.300s\nwant: %.300s", got, want)
			}
		})
	}
}

// TestBitIdentitySampledTier checks the same guarantee for the sampled
// solver: the per-reference sampling RNG is geometry- and batch-shape-
// independent, so unit decomposition must not change a single count.
func TestBitIdentitySampledTier(t *testing.T) {
	spec := testSpec()
	spec.SolveSpec = SolveSpec{Confidence: 0.95, Width: 0.05}
	spec.UnitSize = 2
	want := mustJSON(t, baselineRows(t, spec))

	c, srv := newTestCoordinator(t, Options{})
	st, err := c.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	if st.Stats.Units != 3 {
		t.Fatalf("units = %d, want 3 (6 candidates at unit size 2)", st.Stats.Units)
	}
	runWorkers(t, srv.URL, 2, nil)
	rep, err := c.Report(st.Sweep)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if got := mustJSON(t, rep.Rows); got != want {
		t.Errorf("sampled merged rows differ from single-process baseline")
	}
}

// TestInvalidCandidatesSurviveDistribution checks that per-candidate
// failures render identically distributed and single-process: an invalid
// geometry must become a row error, not a dead unit.
func TestInvalidCandidatesSurviveDistribution(t *testing.T) {
	spec := testSpec()
	spec.CacheSizes = []int64{4096, 3000} // 3000: not a power-of-two line multiple
	want := mustJSON(t, baselineRows(t, spec))

	c, srv := newTestCoordinator(t, Options{})
	st, err := c.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	runWorkers(t, srv.URL, 2, nil)
	rep, err := c.Report(st.Sweep)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if got := mustJSON(t, rep.Rows); got != want {
		t.Errorf("rows with invalid candidates differ from baseline\n got: %.300s\nwant: %.300s", got, want)
	}
	bad := 0
	for _, row := range rep.Rows {
		if row.Error != "" {
			bad++
		}
	}
	if bad == 0 {
		t.Fatalf("expected per-row errors for the invalid geometry")
	}
}

// TestGeomColumnUnits: an exact, unbudgeted sweep at the default unit
// size shards by geometry column — one unit per (line, assoc) ladder —
// so the worker's SolveBatch sees whole size columns and the
// geometry-parametric tier can engage, while the merged rows stay
// byte-identical to the single-process baseline. NoColumnUnits restores
// per-candidate units.
func TestGeomColumnUnits(t *testing.T) {
	spec := testSpec()
	spec.CacheSizes = []int64{2048, 4096, 8192, 16384} // 4 sizes: column-sized
	want := mustJSON(t, baselineRows(t, spec))

	c, srv := newTestCoordinator(t, Options{})
	st, err := c.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	// 8 candidates = 2 geometry columns (assoc 1 and assoc 2) of 4 sizes.
	if st.Stats.Units != 2 {
		t.Fatalf("units = %d, want 2 column units", st.Stats.Units)
	}
	runWorkers(t, srv.URL, 2, nil)
	rep, err := c.Report(st.Sweep)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if got := mustJSON(t, rep.Rows); got != want {
		t.Errorf("column-unit rows differ from single-process baseline\n got: %.300s\nwant: %.300s", got, want)
	}

	// Opting out restores per-candidate stealing granularity, and the
	// rows still merge to the same bytes.
	optout := testSpec()
	optout.CacheSizes = spec.CacheSizes
	optout.NoColumnUnits = true
	c2, srv2 := newTestCoordinator(t, Options{})
	st2, err := c2.AddSweep(context.Background(), optout)
	if err != nil {
		t.Fatalf("AddSweep opt-out: %v", err)
	}
	if st2.Stats.Units != 8 {
		t.Fatalf("opt-out units = %d, want 8 per-candidate units", st2.Stats.Units)
	}
	runWorkers(t, srv2.URL, 2, nil)
	rep2, err := c2.Report(st2.Sweep)
	if err != nil {
		t.Fatalf("Report opt-out: %v", err)
	}
	if got := mustJSON(t, rep2.Rows); got != want {
		t.Errorf("opt-out rows differ from single-process baseline")
	}
}

// TestResubmitIsIdempotent: an identical spec resubmission returns the
// existing sweep without duplicating units.
func TestResubmitIsIdempotent(t *testing.T) {
	c, _ := newTestCoordinator(t, Options{})
	spec := testSpec()
	st1, err := c.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	st2, err := c.AddSweep(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("resubmit: %v", err)
	}
	if st1.Sweep != st2.Sweep {
		t.Fatalf("resubmit created a new sweep: %s vs %s", st1.Sweep, st2.Sweep)
	}
	if got := c.Status(); len(got.Sweeps) != 1 || got.Units != st1.Stats.Units {
		t.Fatalf("resubmit changed coordinator state: %+v", got)
	}
}

// TestDedupAcrossSweeps: overlapping grids share units — the overlap is
// solved once and the second sweep's rows are filled from the store.
func TestDedupAcrossSweeps(t *testing.T) {
	c, srv := newTestCoordinator(t, Options{})
	specA := testSpec()
	specA.CacheSizes = []int64{4096, 8192}
	specA.Assocs = []int{1}
	stA, err := c.AddSweep(context.Background(), specA)
	if err != nil {
		t.Fatalf("AddSweep A: %v", err)
	}
	runWorkers(t, srv.URL, 1, nil)
	repA, err := c.Report(stA.Sweep)
	if err != nil {
		t.Fatalf("Report A: %v", err)
	}

	specB := testSpec()
	specB.CacheSizes = []int64{8192, 16384}
	specB.Assocs = []int{1}
	stB, err := c.AddSweep(context.Background(), specB)
	if err != nil {
		t.Fatalf("AddSweep B: %v", err)
	}
	if stB.Stats.Deduped != 1 {
		t.Fatalf("deduped = %d, want 1 (8KB unit shared with sweep A)", stB.Stats.Deduped)
	}
	runWorkers(t, srv.URL, 1, nil)
	repB, err := c.Report(stB.Sweep)
	if err != nil {
		t.Fatalf("Report B: %v", err)
	}
	if got, want := mustJSON(t, repB.Rows[0]), mustJSON(t, repA.Rows[1]); got != want {
		t.Errorf("deduped row differs from its canonical solve\n got: %.200s\nwant: %.200s", got, want)
	}
	if got, want := mustJSON(t, repB.Rows), mustJSON(t, baselineRows(t, specB)); got != want {
		t.Errorf("sweep B rows differ from baseline")
	}
	if st := c.Status(); st.UnitsDeduped != 1 {
		t.Errorf("coordinator deduped = %d, want 1", st.UnitsDeduped)
	}
}

// TestWorkStealing: a zombie worker leases a unit and never heartbeats;
// the lease expires and a live worker steals and finishes it, with the
// merged report unchanged.
func TestWorkStealing(t *testing.T) {
	spec := testSpec()
	want := mustJSON(t, baselineRows(t, spec))
	c, srv := newTestCoordinator(t, Options{LeaseTTL: 100 * time.Millisecond})
	st, err := c.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	lr := c.Lease("zombie")
	if lr.Status != LeaseUnit {
		t.Fatalf("zombie lease status %q, want unit", lr.Status)
	}
	runWorkers(t, srv.URL, 1, nil)
	rep, err := c.Report(st.Sweep)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if got := mustJSON(t, rep.Rows); got != want {
		t.Errorf("rows after steal differ from baseline")
	}
	if got := c.Status(); got.UnitsStolen < 1 {
		t.Errorf("stolen = %d, want >= 1", got.UnitsStolen)
	}
}

// TestHeartbeatKeepsLease: a heartbeated lease survives past the TTL; a
// silent one does not.
func TestHeartbeatKeepsLease(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	c, err := New(Options{LeaseTTL: 10 * time.Second, now: clock})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := c.AddSweep(context.Background(), testSpec()); err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	lr := c.Lease("w0")
	if lr.Status != LeaseUnit {
		t.Fatalf("lease status %q", lr.Status)
	}
	now = now.Add(8 * time.Second)
	if !c.Heartbeat("w0", lr.Sweep, lr.Unit.Key) {
		t.Fatalf("heartbeat within TTL rejected")
	}
	now = now.Add(8 * time.Second) // 16s since grant, 8s since heartbeat
	if !c.Heartbeat("w0", lr.Sweep, lr.Unit.Key) {
		t.Fatalf("heartbeat after extension rejected")
	}
	now = now.Add(11 * time.Second) // past the extended deadline
	if c.Heartbeat("w0", lr.Sweep, lr.Unit.Key) {
		t.Fatalf("heartbeat on an expired lease accepted")
	}
	if got := c.Status(); got.UnitsStolen != 1 {
		t.Fatalf("stolen = %d, want 1", got.UnitsStolen)
	}
}

// TestJournalResume: a coordinator killed mid-sweep restarts from its
// journal with completed units intact, and the finished report is still
// byte-identical to the baseline.
func TestJournalResume(t *testing.T) {
	spec := testSpec()
	want := mustJSON(t, baselineRows(t, spec))
	journal := filepath.Join(t.TempDir(), "coordinator.journal")

	// Phase 1: a coordinator accepts the sweep and sees one unit complete,
	// then dies (Close without finishing).
	a, err := New(Options{JournalPath: journal, ShutdownWhenDone: true})
	if err != nil {
		t.Fatalf("New A: %v", err)
	}
	stA, err := a.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	lr := a.Lease("pre")
	if lr.Status != LeaseUnit {
		t.Fatalf("lease status %q", lr.Status)
	}
	// Solve the leased unit out of band, exactly as a worker would.
	np, err := spec.ProgramSpec.build(0)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	prep, err := cme.Prepare(np, spec.options())
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	reps, serr := prep.SolveBatch(context.Background(), candidates(lr.Unit.Candidates), cme.BatchOptions{})
	if err := a.Complete("pre", lr.Sweep, lr.Unit.Key, RenderRows(lr.Unit.Candidates, reps, serr), "", nil); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	a.Close()

	// Phase 2: a fresh coordinator replays the journal and only re-issues
	// the unfinished units.
	b, err := New(Options{JournalPath: journal, ShutdownWhenDone: true})
	if err != nil {
		t.Fatalf("New B: %v", err)
	}
	defer b.Close()
	if got := b.Status(); got.UnitsDone != 1 || len(got.Sweeps) != 1 {
		t.Fatalf("after replay: done=%d sweeps=%d, want 1/1", got.UnitsDone, len(got.Sweeps))
	}
	srv := httptest.NewServer(b.Handler())
	defer srv.Close()
	runWorkers(t, srv.URL, 1, nil)
	rep, err := b.Report(stA.Sweep)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if got := mustJSON(t, rep.Rows); got != want {
		t.Errorf("resumed rows differ from baseline")
	}
	if got := b.Status().Workers["w0"].UnitsCompleted; got != 5 {
		t.Errorf("live worker completed %d units, want 5 (1 of 6 replayed)", got)
	}
}

// TestUnitRetryThenSuccess: a worker-reported transient failure re-queues
// the unit; the next attempt succeeds and the report is unharmed.
func TestUnitRetryThenSuccess(t *testing.T) {
	spec := testSpec()
	want := mustJSON(t, baselineRows(t, spec))
	c, srv := newTestCoordinator(t, Options{})
	st, err := c.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	var fired atomic.Bool
	runWorkers(t, srv.URL, 1, func(i int, o *WorkerOptions) {
		o.Hook = func(unitKey string) budget.Hook {
			return func(n int64) error {
				if fired.CompareAndSwap(false, true) {
					return fmt.Errorf("%w: injected unit failure", cerr.ErrTransient)
				}
				return nil
			}
		}
	})
	rep, err := c.Report(st.Sweep)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if got := mustJSON(t, rep.Rows); got != want {
		t.Errorf("rows after retry differ from baseline")
	}
	if got := c.Status(); got.UnitsRetried != 1 {
		t.Errorf("retried = %d, want 1", got.UnitsRetried)
	}
}

// TestUnitFailureExhaustsRetries: a unit that always fails takes its
// sweep down with a typed error instead of hanging.
func TestUnitFailureExhaustsRetries(t *testing.T) {
	spec := testSpec()
	c, srv := newTestCoordinator(t, Options{UnitRetries: 2})
	st, err := c.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	runWorkers(t, srv.URL, 1, func(i int, o *WorkerOptions) {
		o.Hook = func(unitKey string) budget.Hook {
			return func(n int64) error {
				return fmt.Errorf("%w: always failing", cerr.ErrTransient)
			}
		}
	})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.Wait(ctx, st.Sweep); err == nil {
		t.Fatalf("Wait succeeded for a sweep whose units always fail")
	}
	if _, err := c.Report(st.Sweep); err == nil {
		t.Fatalf("Report succeeded for a failed sweep")
	}
	_ = srv
}

// TestPruneSearchMode: the advisor frontier pass prunes dominated
// geometries before exact solving, marks them in the merged report, and
// solves the survivors exactly.
func TestPruneSearchMode(t *testing.T) {
	spec := testSpec()
	spec.CacheSizes = []int64{1024, 2048, 4096, 8192, 16384, 32768}
	spec.Assocs = []int{1}
	spec.Prune = true
	spec.PruneKeep = 2
	spec.PruneMargin = 0.001

	c, srv := newTestCoordinator(t, Options{})
	st, err := c.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	if st.Stats.Pruned == 0 {
		t.Fatalf("prune pass eliminated nothing on a 6-point size ladder")
	}
	if st.Stats.Units >= st.Stats.Candidates {
		t.Fatalf("units (%d) not reduced below candidates (%d)", st.Stats.Units, st.Stats.Candidates)
	}
	runWorkers(t, srv.URL, 1, nil)
	rep, err := c.Report(st.Sweep)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	pruned, solved := 0, 0
	for _, row := range rep.Rows {
		if row.Pruned {
			pruned++
			if row.MissRatioPct <= 0 || len(row.Refs) != 0 || row.Tier != "sampled" {
				t.Errorf("pruned row %s has wrong provenance: %+v", row.Label, row)
			}
		} else {
			solved++
			if row.Error == "" && len(row.Refs) == 0 {
				t.Errorf("survivor row %s missing exact refs", row.Label)
			}
		}
	}
	if pruned != st.Stats.Pruned || solved == 0 {
		t.Errorf("pruned=%d solved=%d, stats=%+v", pruned, solved, st.Stats)
	}
	// Prune with a pad axis must be rejected (the advisor ranks
	// geometries, not layouts).
	bad := testSpec()
	bad.Prune = true
	bad.PadArray = "ZA"
	bad.Pads = []int64{8}
	if _, err := c.AddSweep(context.Background(), bad); err == nil {
		t.Fatalf("prune with a pad axis accepted")
	}
}

// TestWorkerCheckpointResume: a worker's result-cache checkpoint makes a
// restarted worker replay finished solves from disk (the coordinator
// sees completions without re-solving).
func TestWorkerCheckpointResume(t *testing.T) {
	spec := testSpec()
	want := mustJSON(t, baselineRows(t, spec))
	cachePath := filepath.Join(t.TempDir(), "worker.cache")

	// First run: solve everything, checkpointing per unit.
	c1, srv1 := newTestCoordinator(t, Options{})
	st1, err := c1.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	runWorkers(t, srv1.URL, 1, func(i int, o *WorkerOptions) { o.CachePath = cachePath })
	if _, err := c1.Report(st1.Sweep); err != nil {
		t.Fatalf("Report: %v", err)
	}

	// Second run on a fresh coordinator: a worker warmed from the
	// checkpoint answers every unit from cache. The budget hook proves no
	// solving happened: it would fail any unit that actually solves.
	c2, srv2 := newTestCoordinator(t, Options{})
	st2, err := c2.AddSweep(context.Background(), spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	runWorkers(t, srv2.URL, 1, func(i int, o *WorkerOptions) {
		o.CachePath = cachePath
		o.Hook = func(unitKey string) budget.Hook {
			return func(n int64) error {
				return fmt.Errorf("%w: solver ran despite a warm checkpoint", cerr.ErrTransient)
			}
		}
	})
	rep, err := c2.Report(st2.Sweep)
	if err != nil {
		t.Fatalf("Report after warm restart: %v", err)
	}
	if got := mustJSON(t, rep.Rows); got != want {
		t.Errorf("checkpoint-replayed rows differ from baseline")
	}
}
