package dist

import (
	"context"
	"fmt"
	"sync"
	"time"

	"cachemodel/internal/cme"
	"cachemodel/internal/obs"
)

// Options configures a Coordinator. The zero value is usable.
type Options struct {
	// LeaseTTL is how long a worker may hold a unit without heartbeating
	// before the lease expires and the unit is stolen (default 10s).
	LeaseTTL time.Duration
	// UnitRetries is how many worker-reported failures a unit absorbs
	// before the sweeps referencing it fail (default 3). Lease expiries do
	// not count — a dead worker is the steal path, not the failure path.
	UnitRetries int
	// MaxProblemSize rejects absurd problem sizes at submission
	// (default 4096).
	MaxProblemSize int64
	// MaxCandidates bounds a sweep's candidate grid (default 4096).
	MaxCandidates int
	// JournalPath, when set, appends every sweep submission, lease and
	// unit completion to this file and replays it on startup, so a killed
	// coordinator restarts mid-sweep without losing completed units.
	JournalPath string
	// ShutdownWhenDone makes Lease answer "shutdown" once every submitted
	// sweep has finished — the one-shot CLI mode, where workers should
	// exit instead of polling forever.
	ShutdownWhenDone bool
	// Logf receives coordinator lifecycle lines (nil = silent).
	Logf func(format string, args ...any)

	// now is the test clock seam.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.UnitRetries <= 0 {
		o.UnitRetries = 3
	}
	if o.MaxProblemSize <= 0 {
		o.MaxProblemSize = 4096
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4096
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// unitState is one work unit's scheduling lifecycle.
type unitState int

const (
	unitPending unitState = iota
	unitLeased
	unitDone
	unitFailed
)

// unitRef ties a unit to one run of one sweep's candidate grid. The first
// ref is the canonical owner; later refs are dedup followers — identical
// (program, geometry, mode) runs whose rows are copied from the canonical
// result with only the labels patched (the key construction guarantees
// everything else is identical).
type unitRef struct {
	sweep *sweepState
	start int // index of the first candidate in the sweep grid
	cands []WireCandidate
}

// unit is one content-addressed work unit: a consecutive run of
// candidates keyed by Prepared.SolveKey over exactly those candidates.
type unit struct {
	key     string
	refs    []unitRef
	state   unitState
	worker  string
	expires time.Time
	fails   int
	rows    []Row // canonical rows once done
}

// live reports whether any referencing sweep still wants this unit.
func (u *unit) live() bool {
	for _, ref := range u.refs {
		if !ref.sweep.closed {
			return true
		}
	}
	return false
}

// sweepState is one submitted sweep's merge ledger.
type sweepState struct {
	id      string
	spec    *SweepSpec
	program string
	wcs     []WireCandidate

	rows      []Row
	filled    []bool
	remaining int // unfilled rows

	unitsTotal int // unit refs (canonical + follower)
	unitsDone  int
	deduped    int
	pruned     int
	stolen     int64
	retried    int64

	failed  string
	closed  bool
	done    chan struct{}
	created time.Time
}

// workerStat is the per-worker throughput ledger.
type workerStat struct {
	completed int64
	firstSeen time.Time
	lastSeen  time.Time
	// shutdown marks that this worker has been answered LeaseShutdown: it
	// is gone for scheduling purposes, and a lingering coordinator can
	// exit once every known worker is shut down.
	shutdown bool
}

// Coordinator owns sweep decomposition, unit leasing, stealing, dedup,
// journalling and the deterministic merge. All methods are safe for
// concurrent use; the coordinator is passive (no background goroutines) —
// expiry reaping happens on every request, which keeps it trivially
// testable under a fake clock.
type Coordinator struct {
	opt Options

	mu      sync.Mutex
	sweeps  map[string]*sweepState
	order   []string
	units   []*unit // canonical units in creation order
	byKey   map[string]*unit
	workers map[string]*workerStat
	journal *journal

	leased, stolen, deduped, retried, completed int64
}

// New builds a coordinator, replaying the journal at Options.JournalPath
// when one exists: sweeps are re-decomposed from their journalled specs
// (deterministic, so unit keys match) and completed units are re-applied
// by key, so only work that never completed is re-issued. Records that no
// longer match (a spec the current build rejects, a key no code path
// produces) are skipped with a log line rather than trusted.
func New(opt Options) (*Coordinator, error) {
	opt = opt.withDefaults()
	c := &Coordinator{
		opt:     opt,
		sweeps:  map[string]*sweepState{},
		byKey:   map[string]*unit{},
		workers: map[string]*workerStat{},
	}
	if opt.JournalPath == "" {
		return c, nil
	}
	recs, j, err := openJournal(opt.JournalPath)
	if err != nil {
		return nil, err
	}
	// Replay with journalling suppressed (c.journal still nil): the
	// records being replayed are already on disk.
	for _, r := range recs {
		switch r.T {
		case recSweep:
			if r.Spec == nil {
				continue
			}
			if _, err := c.addSweep(context.Background(), r.Spec, true); err != nil {
				opt.Logf("dist: journal replay: sweep %.12s: %v", r.Sweep, err)
			}
		case recComplete:
			if err := c.Complete(r.Worker, r.Sweep, r.Unit, r.Rows, ""); err != nil {
				opt.Logf("dist: journal replay: unit %.12s: %v", r.Unit, err)
			}
		case recFail:
			_ = c.Complete(r.Worker, r.Sweep, r.Unit, nil, r.Err)
		}
	}
	c.journal = j
	return c, nil
}

// Close releases the journal file handle (the coordinator itself has no
// other resources).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		return c.journal.close()
	}
	return nil
}

// AddSweep validates and decomposes a sweep, returning its status. The
// sweep id is the SolveKey over the full candidate grid, so resubmitting
// an identical sweep is idempotent: the existing sweep's status comes
// back and no new units are created.
func (c *Coordinator) AddSweep(ctx context.Context, spec *SweepSpec) (*SweepStatus, error) {
	return c.addSweep(ctx, spec, false)
}

func (c *Coordinator) addSweep(ctx context.Context, spec *SweepSpec, replay bool) (*SweepStatus, error) {
	wcs, err := spec.grid()
	if err != nil {
		return nil, err
	}
	if len(wcs) > c.opt.MaxCandidates {
		return nil, fmt.Errorf("candidate grid of %d exceeds the coordinator limit %d", len(wcs), c.opt.MaxCandidates)
	}
	np, err := spec.ProgramSpec.build(c.opt.MaxProblemSize)
	if err != nil {
		return nil, err
	}
	prep, err := cme.Prepare(np, spec.options())
	if err != nil {
		return nil, err
	}
	plan, err := spec.plan()
	if err != nil {
		return nil, err
	}
	cands := candidates(wcs)
	id := prep.SolveKey(cands, plan)

	c.mu.Lock()
	if ss, ok := c.sweeps[id]; ok {
		st := c.sweepStatusLocked(ss)
		c.mu.Unlock()
		return st, nil
	}
	c.mu.Unlock()

	// The prune pass solves (cheap tier), so it runs outside the lock.
	prunedRows := map[int]Row{}
	if spec.Prune {
		if spec.PadArray != "" {
			return nil, fmt.Errorf("prune is not supported with a pad axis (the advisor ranks geometries, not layouts)")
		}
		if prunedRows, err = pruneGrid(ctx, spec, wcs); err != nil {
			return nil, err
		}
	}

	ss := &sweepState{
		id:      id,
		spec:    spec,
		program: np.Name,
		wcs:     wcs,
		rows:    make([]Row, len(wcs)),
		filled:  make([]bool, len(wcs)),
		done:    make(chan struct{}),
		created: c.opt.now(),
	}
	for i, row := range prunedRows {
		ss.rows[i] = row
		ss.filled[i] = true
	}
	ss.pruned = len(prunedRows)
	ss.remaining = len(wcs) - len(prunedRows)
	mPruned.Add(int64(ss.pruned))

	unitSize := spec.UnitSize
	if unitSize < 1 {
		unitSize = 1
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.sweeps[id]; ok { // raced with an identical submit
		return c.sweepStatusLocked(existing), nil
	}
	c.sweeps[id] = ss
	c.order = append(c.order, id)
	mSweeps.Inc()

	for i := 0; i < len(wcs); {
		if ss.filled[i] {
			i++
			continue
		}
		j := i
		for j < len(wcs) && j-i < unitSize && !ss.filled[j] {
			j++
		}
		key := prep.SolveKey(cands[i:j], plan)
		ref := unitRef{sweep: ss, start: i, cands: wcs[i:j]}
		ss.unitsTotal++
		if u, ok := c.byKey[key]; ok {
			// Content-addressed dedup: an identical unit (same program
			// digest, geometry run and solve mode) already exists, within
			// this sweep or from an earlier one.
			ss.deduped++
			c.deduped++
			mDeduped.Inc()
			switch u.state {
			case unitDone:
				c.fillLocked(ref, u.rows)
			case unitFailed:
				// A fresh sweep earns the unit fresh attempts.
				u.state = unitPending
				u.fails = 0
				mPending.Add(1)
				u.refs = append(u.refs, ref)
			default:
				u.refs = append(u.refs, ref)
			}
		} else {
			u := &unit{key: key, refs: []unitRef{ref}}
			c.byKey[key] = u
			c.units = append(c.units, u)
			mUnits.Inc()
			mPending.Add(1)
		}
		i = j
	}
	if !replay {
		c.journalLocked(journalRec{T: recSweep, Sweep: id, Spec: spec})
	}
	c.opt.Logf("dist: sweep %.12s: %d candidates, %d units (%d deduped, %d pruned)",
		id, len(wcs), ss.unitsTotal, ss.deduped, ss.pruned)
	c.checkDoneLocked(ss)
	return c.sweepStatusLocked(ss), nil
}

// Lease hands the next pending unit to worker, first reclaiming any
// expired leases (work stealing). When nothing is pending it answers
// "wait" (units are still in flight, or no sweep has been submitted yet)
// or — with ShutdownWhenDone, once every sweep is finished — "shutdown".
func (c *Coordinator) Lease(worker string) *LeaseResponse {
	now := c.opt.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	c.reapLocked(now)
	for _, u := range c.units {
		if u.state != unitPending || !u.live() {
			continue
		}
		u.state = unitLeased
		u.worker = worker
		u.expires = now.Add(c.opt.LeaseTTL)
		c.leased++
		mLeased.Inc()
		mPending.Add(-1)
		ref := u.refs[0]
		c.journalLocked(journalRec{T: recLease, Sweep: ref.sweep.id, Unit: u.key, Worker: worker})
		return &LeaseResponse{
			Status: LeaseUnit,
			Sweep:  ref.sweep.id,
			TTLMs:  c.opt.LeaseTTL.Milliseconds(),
			Unit: &UnitSpec{
				Key:        u.key,
				Seq:        ref.start,
				Program:    ref.sweep.spec.ProgramSpec,
				Solve:      ref.sweep.spec.SolveSpec,
				Candidates: ref.cands,
			},
		}
	}
	if c.opt.ShutdownWhenDone && len(c.sweeps) > 0 && c.allDoneLocked() {
		if ws := c.workers[worker]; ws != nil {
			ws.shutdown = true
		}
		return &LeaseResponse{Status: LeaseShutdown}
	}
	wait := c.opt.LeaseTTL / 4
	if wait > 500*time.Millisecond {
		wait = 500 * time.Millisecond
	}
	return &LeaseResponse{Status: LeaseWait, RetryAfterMs: wait.Milliseconds()}
}

// Heartbeat extends worker's lease on a unit. false means the lease is
// gone — expired and stolen, completed elsewhere, or never granted — and
// the worker should abandon the unit (its late result would be identical
// anyway, but the compute is better spent on a fresh lease).
func (c *Coordinator) Heartbeat(worker, sweep, unitKey string) bool {
	now := c.opt.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	c.reapLocked(now)
	u := c.byKey[unitKey]
	if u == nil || u.state != unitLeased || u.worker != worker {
		return false
	}
	u.expires = now.Add(c.opt.LeaseTTL)
	return true
}

// Complete records a unit result (or a worker-reported failure). Late
// completions from stale leases are accepted when the unit is still
// unresolved — the result is bit-identical to what the stealing worker
// would produce, so first write wins and the duplicate is dropped.
func (c *Coordinator) Complete(worker, sweep, unitKey string, rows []Row, errMsg string) error {
	now := c.opt.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	u := c.byKey[unitKey]
	if u == nil {
		return fmt.Errorf("unknown unit %.12s", unitKey)
	}
	if u.state == unitDone || u.state == unitFailed {
		return nil // duplicate or late after resolution: drop
	}
	want := len(u.refs[0].cands)
	if errMsg == "" && len(rows) != want {
		return fmt.Errorf("unit %.12s: got %d rows, want %d", unitKey, len(rows), want)
	}
	wasPending := u.state == unitPending
	u.worker = ""
	if errMsg != "" {
		u.fails++
		c.journalLocked(journalRec{T: recFail, Sweep: sweep, Unit: unitKey, Worker: worker, Err: errMsg})
		if u.fails >= c.opt.UnitRetries {
			u.state = unitFailed
			if !wasPending {
				// leaving leased: nothing pending to adjust
			} else {
				mPending.Add(-1)
			}
			c.failLocked(u, errMsg)
			return nil
		}
		u.state = unitPending
		if !wasPending {
			mPending.Add(1)
		}
		c.retried++
		mRetried.Inc()
		for _, ref := range u.refs {
			ref.sweep.retried++
		}
		c.opt.Logf("dist: unit %.12s failed on %s (attempt %d/%d): %s",
			unitKey, worker, u.fails, c.opt.UnitRetries, errMsg)
		return nil
	}
	u.state = unitDone
	u.rows = rows
	if wasPending {
		mPending.Add(-1)
	}
	c.completed++
	mCompleted.Inc()
	if ws := c.workers[worker]; ws != nil {
		ws.completed++
	}
	for _, ref := range u.refs {
		c.fillLocked(ref, rows)
	}
	c.journalLocked(journalRec{T: recComplete, Sweep: sweep, Unit: unitKey, Worker: worker, Rows: rows})
	return nil
}

// reapLocked reclaims expired leases: the stealing half of the fabric.
func (c *Coordinator) reapLocked(now time.Time) {
	for _, u := range c.units {
		if u.state != unitLeased || now.Before(u.expires) {
			continue
		}
		c.opt.Logf("dist: lease on unit %.12s expired (worker %s): re-queueing", u.key, u.worker)
		u.state = unitPending
		u.worker = ""
		mPending.Add(1)
		c.stolen++
		mStolen.Inc()
		for _, ref := range u.refs {
			ref.sweep.stolen++
		}
	}
}

// fillLocked merges one unit result into a sweep's rows at its grid
// offset, patching labels for dedup followers (the only field that can
// differ between units with equal keys).
func (c *Coordinator) fillLocked(ref unitRef, rows []Row) {
	ss := ref.sweep
	for i, row := range rows {
		if i >= len(ref.cands) {
			break
		}
		row.Label = ref.cands[i].Label
		idx := ref.start + i
		if !ss.filled[idx] {
			ss.filled[idx] = true
			ss.remaining--
		}
		ss.rows[idx] = row
	}
	ss.unitsDone++
	c.checkDoneLocked(ss)
}

// failLocked fails every sweep referencing a permanently failed unit.
func (c *Coordinator) failLocked(u *unit, msg string) {
	for _, ref := range u.refs {
		ss := ref.sweep
		if ss.closed {
			continue
		}
		ss.failed = fmt.Sprintf("unit %.12s failed after %d attempts: %s", u.key, u.fails, msg)
		ss.closed = true
		close(ss.done)
		c.opt.Logf("dist: sweep %.12s failed: %s", ss.id, ss.failed)
	}
}

func (c *Coordinator) checkDoneLocked(ss *sweepState) {
	if ss.closed || ss.remaining > 0 {
		return
	}
	ss.closed = true
	close(ss.done)
	c.opt.Logf("dist: sweep %.12s complete (%d candidates)", ss.id, len(ss.wcs))
}

func (c *Coordinator) allDoneLocked() bool {
	for _, ss := range c.sweeps {
		if !ss.closed {
			return false
		}
	}
	return true
}

func (c *Coordinator) touchWorkerLocked(worker string, now time.Time) {
	if worker == "" {
		return
	}
	ws := c.workers[worker]
	if ws == nil {
		ws = &workerStat{firstSeen: now}
		c.workers[worker] = ws
	}
	ws.lastSeen = now
	ws.shutdown = false // a returning worker is active again
	active := int64(0)
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= 30*time.Second {
			active++
		}
	}
	mWorkers.Set(active)
}

func (c *Coordinator) journalLocked(rec journalRec) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(rec); err != nil {
		c.opt.Logf("dist: journal append: %v", err)
	}
}

// Wait blocks until the sweep finishes (nil), fails (its error), or ctx
// is cancelled.
func (c *Coordinator) Wait(ctx context.Context, id string) error {
	c.mu.Lock()
	ss, ok := c.sweeps[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("no such sweep %.12s", id)
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-ss.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ss.failed != "" {
		return fmt.Errorf("sweep %.12s: %s", id, ss.failed)
	}
	return nil
}

// Report returns the deterministic merge of a finished sweep.
func (c *Coordinator) Report(id string) (*MergedReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ss, ok := c.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("no such sweep %.12s", id)
	}
	if !ss.closed {
		return nil, fmt.Errorf("sweep %.12s is still running", id)
	}
	if ss.failed != "" {
		return nil, fmt.Errorf("sweep %.12s: %s", id, ss.failed)
	}
	rows := make([]Row, len(ss.rows))
	copy(rows, ss.rows)
	return &MergedReport{
		Schema:     ReportSchemaV1,
		Sweep:      ss.id,
		Program:    ss.program,
		Candidates: len(ss.wcs),
		Rows:       rows,
		Stats:      c.sweepStatsLocked(ss),
	}, nil
}

// SweepStats is one sweep's scheduling ledger.
type SweepStats struct {
	Candidates int   `json:"candidates"`
	Units      int   `json:"units"`
	UnitsDone  int   `json:"units_done"`
	Deduped    int   `json:"units_deduped"`
	Pruned     int   `json:"candidates_pruned,omitempty"`
	Stolen     int64 `json:"units_stolen"`
	Retried    int64 `json:"units_retried"`
}

// SweepStatus is the wire status of one sweep.
type SweepStatus struct {
	Sweep   string     `json:"sweep"`
	Program string     `json:"program"`
	Done    bool       `json:"done"`
	Failed  string     `json:"failed,omitempty"`
	Stats   SweepStats `json:"stats"`
}

func (c *Coordinator) sweepStatsLocked(ss *sweepState) SweepStats {
	return SweepStats{
		Candidates: len(ss.wcs),
		Units:      ss.unitsTotal,
		UnitsDone:  ss.unitsDone,
		Deduped:    ss.deduped,
		Pruned:     ss.pruned,
		Stolen:     ss.stolen,
		Retried:    ss.retried,
	}
}

func (c *Coordinator) sweepStatusLocked(ss *sweepState) *SweepStatus {
	return &SweepStatus{
		Sweep:   ss.id,
		Program: ss.program,
		Done:    ss.closed && ss.failed == "",
		Failed:  ss.failed,
		Stats:   c.sweepStatsLocked(ss),
	}
}

// SweepStatus returns one sweep's status.
func (c *Coordinator) SweepStatus(id string) (*SweepStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ss, ok := c.sweeps[id]
	if !ok {
		return nil, false
	}
	return c.sweepStatusLocked(ss), true
}

// WorkerStatus is one worker's throughput snapshot.
type WorkerStatus struct {
	UnitsCompleted int64   `json:"units_completed"`
	UnitsPerSec    float64 `json:"units_per_sec"`
	LastSeenMs     int64   `json:"last_seen_ms"`
	// Shutdown means the worker has been told to exit (ShutdownWhenDone
	// after the last sweep finished) and is no longer scheduled.
	Shutdown bool `json:"shutdown,omitempty"`
}

// Status is the coordinator-wide snapshot (GET /v1/dist/status).
type Status struct {
	Sweeps       []*SweepStatus          `json:"sweeps"`
	Units        int                     `json:"units"`
	UnitsDone    int64                   `json:"units_completed"`
	UnitsLeased  int64                   `json:"units_leased"`
	UnitsStolen  int64                   `json:"units_stolen"`
	UnitsDeduped int64                   `json:"units_deduped"`
	UnitsRetried int64                   `json:"units_retried"`
	Workers      map[string]WorkerStatus `json:"workers,omitempty"`
}

// Status snapshots the whole coordinator, reaping expired leases first so
// a poller sees steals without needing a concurrent lease request.
func (c *Coordinator) Status() *Status {
	now := c.opt.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	st := &Status{
		Units:        len(c.units),
		UnitsDone:    c.completed,
		UnitsLeased:  c.leased,
		UnitsStolen:  c.stolen,
		UnitsDeduped: c.deduped,
		UnitsRetried: c.retried,
	}
	for _, id := range c.order {
		st.Sweeps = append(st.Sweeps, c.sweepStatusLocked(c.sweeps[id]))
	}
	if len(c.workers) > 0 {
		st.Workers = map[string]WorkerStatus{}
		for name, ws := range c.workers {
			w := WorkerStatus{UnitsCompleted: ws.completed, LastSeenMs: now.Sub(ws.lastSeen).Milliseconds(), Shutdown: ws.shutdown}
			if up := now.Sub(ws.firstSeen).Seconds(); up > 0 {
				w.UnitsPerSec = float64(ws.completed) / up
			}
			st.Workers[name] = w
		}
	}
	return st
}

// Outcomes renders the coordinator's ledger for the obs run report.
func (c *Coordinator) Outcomes() *obs.DistOutcomes {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := &obs.DistOutcomes{
		Sweeps:    int64(len(c.sweeps)),
		Units:     int64(len(c.units)),
		Completed: c.completed,
		Leased:    c.leased,
		Stolen:    c.stolen,
		Deduped:   c.deduped,
		Retried:   c.retried,
	}
	for _, ss := range c.sweeps {
		d.Pruned += int64(ss.pruned)
	}
	for name, ws := range c.workers {
		if ws.completed > 0 {
			if d.Workers == nil {
				d.Workers = map[string]int64{}
			}
			d.Workers[name] = ws.completed
		}
	}
	return d
}
