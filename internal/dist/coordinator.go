package dist

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"cachemodel/internal/cme"
	"cachemodel/internal/obs"
)

// Options configures a Coordinator. The zero value is usable.
type Options struct {
	// LeaseTTL is how long a worker may hold a unit without heartbeating
	// before the lease expires and the unit is stolen (default 10s).
	LeaseTTL time.Duration
	// UnitRetries is how many worker-reported failures a unit absorbs
	// before the sweeps referencing it fail (default 3). Lease expiries do
	// not count — a dead worker is the steal path, not the failure path.
	UnitRetries int
	// MaxProblemSize rejects absurd problem sizes at submission
	// (default 4096).
	MaxProblemSize int64
	// MaxCandidates bounds a sweep's candidate grid (default 4096).
	MaxCandidates int
	// PruneConcurrency bounds how many advisor prune passes may solve at
	// once (default 1). The prune pass is CPU-heavy and runs in the
	// submitting caller — on a serve mount that is the HTTP handler
	// goroutine, outside the job API's admission control — so it must not
	// be able to pin every core under concurrent submissions.
	PruneConcurrency int
	// MaxRetainedSweeps bounds how many sweeps the coordinator keeps in
	// memory (default 256; negative retains everything). When the bound is
	// exceeded the oldest *finished* sweeps are evicted — their reports
	// become unavailable and their units leave the dedup store, so a
	// long-lived coordinator's ledger stays bounded. Running sweeps are
	// never evicted.
	MaxRetainedSweeps int
	// JournalPath, when set, appends every sweep submission, lease and
	// unit completion to this file and replays it on startup, so a killed
	// coordinator restarts mid-sweep without losing completed units.
	JournalPath string
	// ShutdownWhenDone makes Lease answer "shutdown" once every submitted
	// sweep has finished — the one-shot CLI mode, where workers should
	// exit instead of polling forever.
	ShutdownWhenDone bool
	// Trace forces a trace id onto every sweep that arrives without one,
	// so lease responses carry trace context and workers record span
	// shards (the -trace-out CLI mode). Off by default: an untraced
	// submission keeps workers on the nil-sink zero-cost path.
	Trace bool
	// Logf receives coordinator lifecycle lines (nil = silent).
	Logf func(format string, args ...any)

	// now is the test clock seam.
	now func() time.Time
}

func (o Options) withDefaults() Options {
	if o.LeaseTTL <= 0 {
		o.LeaseTTL = 10 * time.Second
	}
	if o.UnitRetries <= 0 {
		o.UnitRetries = 3
	}
	if o.MaxProblemSize <= 0 {
		o.MaxProblemSize = 4096
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 4096
	}
	if o.PruneConcurrency <= 0 {
		o.PruneConcurrency = 1
	}
	if o.MaxRetainedSweeps == 0 {
		o.MaxRetainedSweeps = 256
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	if o.now == nil {
		o.now = time.Now
	}
	return o
}

// unitState is one work unit's scheduling lifecycle.
type unitState int

const (
	unitPending unitState = iota
	unitLeased
	unitDone
	unitFailed
)

// unitRef ties a unit to one run of one sweep's candidate grid. The first
// ref is the canonical owner; later refs are dedup followers — identical
// (program, geometry, mode, budget) runs whose rows are copied from the
// canonical result with only the labels patched (the key construction
// guarantees everything else is identical).
type unitRef struct {
	sweep *sweepState
	start int // index of the first candidate in the sweep grid
	cands []WireCandidate
	// idxs, when non-nil, maps each unit candidate to its sweep grid
	// index — geometry-column units carry strided candidates (the grid
	// iterates cache sizes outermost, so a fixed-(line, assoc, pad)
	// column is not consecutive). nil means the consecutive run
	// start..start+len(cands).
	idxs []int
}

// gridIndex is the sweep grid index of the unit's i-th candidate.
func (r unitRef) gridIndex(i int) int {
	if r.idxs != nil {
		return r.idxs[i]
	}
	return r.start + i
}

// unit is one content-addressed work unit: a consecutive run of
// candidates keyed by Prepared.SolveKey over exactly those candidates
// (salted with the per-unit budget when one is set — see unitKey).
type unit struct {
	key     string
	refs    []unitRef
	state   unitState
	worker  string
	expires time.Time
	// leasedAt is when the current (or last) lease was granted — the
	// straggler signal, distinct from expires which heartbeats push out.
	leasedAt time.Time
	fails    int
	rows     []Row // canonical rows once done

	// spanID names the unit in the distributed trace; worker solve spans
	// link to it as their parent.
	spanID string
	// timeline is the unit's lifecycle ledger (see timeline.go).
	timeline []TimelineEvent
	// shards are worker-posted span snapshots for traced completions.
	shards []obs.SpanSnapshot
}

// live reports whether any referencing sweep still wants this unit.
func (u *unit) live() bool {
	for _, ref := range u.refs {
		if !ref.sweep.closed {
			return true
		}
	}
	return false
}

// sweepID is the sweep's identity: the batch SolveKey extended with every
// row-affecting spec field the key scheme does not cover — the advisor
// prune knobs (which replace dominated rows with cheap-tier estimates)
// and the per-unit budget (which may degrade rows). Without the salt, a
// sweep submitted with prune or a budget would alias an identical-grid
// sweep without them, and the idempotent-resubmit path would hand the
// caller rows its spec never asked for.
func sweepID(solveKey string, spec *SweepSpec) string {
	h := sha256.New()
	h.Write([]byte(solveKey))
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	if spec.Prune {
		wi(1)
		wi(int64(spec.pruneKeep()))
		wi(int64(math.Float64bits(spec.pruneMargin())))
	} else {
		wi(0)
	}
	wi(spec.MaxPoints)
	wi(spec.TimeoutMs)
	return hex.EncodeToString(h.Sum(nil))
}

// unitKey is a unit's dedup identity. Unbudgeted units keep the raw
// SolveKey — the pure content address, shared with the result cache
// family. A budget can degrade rows, so budgeted units are salted with
// their budget and may only dedup against units with the identical one:
// a tight-budget sweep must never donate degraded canonical rows to an
// unbudgeted sweep (or vice versa).
func unitKey(solveKey string, s SolveSpec) string {
	if s.MaxPoints == 0 && s.TimeoutMs == 0 {
		return solveKey
	}
	h := sha256.New()
	h.Write([]byte(solveKey))
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	wi(s.MaxPoints)
	wi(s.TimeoutMs)
	return hex.EncodeToString(h.Sum(nil))
}

// sweepState is one submitted sweep's merge ledger.
type sweepState struct {
	id      string
	spec    *SweepSpec
	program string
	wcs     []WireCandidate

	// traceID ("" = untraced) correlates the sweep across submitter,
	// coordinator and workers; spanID is the sweep's own span, the
	// parent of every unit span; parentSpan is the submitter's span.
	traceID    string
	spanID     string
	parentSpan string

	rows      []Row
	filled    []bool
	remaining int // unfilled rows

	units []*unit // every unit this sweep references (for eviction GC)

	unitsTotal int // unit refs (canonical + follower)
	unitsDone  int
	deduped    int
	pruned     int
	stolen     int64
	retried    int64

	failed  string
	closed  bool
	done    chan struct{}
	created time.Time
}

// workerStat is the per-worker throughput ledger.
type workerStat struct {
	completed int64
	firstSeen time.Time
	lastSeen  time.Time
	// unit/leasedAt track the worker's current lease for the fleet view
	// ("" when idle).
	unit     string
	leasedAt time.Time
	// shutdown marks that this worker has been answered LeaseShutdown: it
	// is gone for scheduling purposes, and a lingering coordinator can
	// exit once every known worker is shut down.
	shutdown bool
}

// Coordinator owns sweep decomposition, unit leasing, stealing, dedup,
// journalling and the deterministic merge. All methods are safe for
// concurrent use; the coordinator is passive (no background goroutines) —
// expiry reaping happens on every request, which keeps it trivially
// testable under a fake clock.
type Coordinator struct {
	opt      Options
	pruneSem chan struct{} // bounds concurrent prune passes

	mu      sync.Mutex
	sweeps  map[string]*sweepState
	order   []string
	pending []*unit          // FIFO of schedulable units (entries may be stale; checked on pop)
	leased  map[string]*unit // in-flight leases, the reaper's working set
	byKey   map[string]*unit
	workers map[string]*workerStat
	journal *journal

	sweepsTotal, unitsTotal, prunedTotal         int64
	leasedT, stolen, deduped, retried, completed int64
	timelineEvents                               int64
	traces                                       []string // trace ids of traced sweeps, submission order
}

// New builds a coordinator, replaying the journal at Options.JournalPath
// when one exists: sweeps are re-decomposed from their journalled specs
// (deterministic, so unit keys match) and completed units are re-applied
// by key, so only work that never completed is re-issued. Records that no
// longer match (a spec the current build rejects, a key no code path
// produces) are skipped with a log line rather than trusted.
func New(opt Options) (*Coordinator, error) {
	opt = opt.withDefaults()
	c := &Coordinator{
		opt:      opt,
		pruneSem: make(chan struct{}, opt.PruneConcurrency),
		sweeps:   map[string]*sweepState{},
		leased:   map[string]*unit{},
		byKey:    map[string]*unit{},
		workers:  map[string]*workerStat{},
	}
	if opt.JournalPath == "" {
		return c, nil
	}
	recs, j, err := openJournal(opt.JournalPath)
	if err != nil {
		return nil, err
	}
	// Replay with journalling suppressed (c.journal still nil): the
	// records being replayed are already on disk.
	for _, r := range recs {
		switch r.T {
		case recSweep:
			if r.Spec == nil {
				continue
			}
			// Re-attach the journalled trace id so post-crash log lines
			// and trace exports stay greppable by the original trace.
			ctx := context.Background()
			if r.Trace != "" {
				ctx = WithTraceparent(ctx, obs.FormatTraceparent(r.Trace, obs.NewSpanID()))
			}
			if _, err := c.addSweep(ctx, r.Spec, r.Pruned, true); err != nil {
				opt.Logf("dist: journal replay: sweep %.12s: %v", r.Sweep, err)
			}
		case recComplete:
			if err := c.Complete(r.Worker, r.Sweep, r.Unit, r.Rows, "", nil); err != nil {
				opt.Logf("dist: journal replay: unit %.12s: %v", r.Unit, err)
			}
		case recFail:
			_ = c.Complete(r.Worker, r.Sweep, r.Unit, nil, r.Err, nil)
		}
	}
	c.journal = j
	return c, nil
}

// Close releases the journal file handle (the coordinator itself has no
// other resources).
func (c *Coordinator) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.journal != nil {
		return c.journal.close()
	}
	return nil
}

// AddSweep validates and decomposes a sweep, returning its status. The
// sweep id covers the full candidate grid plus every row-affecting spec
// field (solve mode, prune knobs, budget), so resubmitting an identical
// sweep is idempotent — the existing sweep's status comes back and no new
// units are created — while a same-grid sweep with a different prune or
// budget spec is a distinct sweep.
func (c *Coordinator) AddSweep(ctx context.Context, spec *SweepSpec) (*SweepStatus, error) {
	return c.addSweep(ctx, spec, nil, false)
}

// addSweep registers a sweep. journalledPrune, non-nil only during journal
// replay of a prune sweep, is the prune pass's journalled outcome: replay
// re-applies it instead of re-running the solve pass (which would make
// startup arbitrarily slow for a journal full of prune sweeps).
func (c *Coordinator) addSweep(ctx context.Context, spec *SweepSpec, journalledPrune *map[int]Row, replay bool) (*SweepStatus, error) {
	wcs, err := spec.grid()
	if err != nil {
		return nil, err
	}
	if len(wcs) > c.opt.MaxCandidates {
		return nil, fmt.Errorf("candidate grid of %d exceeds the coordinator limit %d", len(wcs), c.opt.MaxCandidates)
	}
	np, err := spec.ProgramSpec.build(c.opt.MaxProblemSize)
	if err != nil {
		return nil, err
	}
	prep, err := cme.Prepare(np, spec.options())
	if err != nil {
		return nil, err
	}
	plan, err := spec.plan()
	if err != nil {
		return nil, err
	}
	cands := candidates(wcs)
	id := sweepID(prep.SolveKey(cands, plan), spec)

	// Trace context: an obs collector in ctx wins (in-process submitter),
	// then a remote traceparent (HTTP header / journal replay), then a
	// coordinator-minted id when Options.Trace forces tracing. Untraced
	// sweeps keep traceID == "" and workers stay on the nil-sink path.
	// The trace is pure observability: it never feeds sweepID, unitKey or
	// Row, so traced and untraced merges are byte-identical.
	tp := obs.Traceparent(ctx)
	if tp == "" {
		tp = traceparentFrom(ctx)
	}
	traceID, parentSpan, _ := obs.ParseTraceparent(tp)
	if traceID == "" && c.opt.Trace {
		traceID = obs.NewTraceID()
	}

	c.mu.Lock()
	if ss, ok := c.sweeps[id]; ok {
		st := c.sweepStatusLocked(ss)
		c.mu.Unlock()
		return st, nil
	}
	c.mu.Unlock()

	// The prune pass solves (cheap tier), so it runs outside the lock,
	// bounded by the prune semaphore.
	prunedRows := map[int]Row{}
	if spec.Prune {
		if spec.PadArray != "" {
			return nil, fmt.Errorf("prune is not supported with a pad axis (the advisor ranks geometries, not layouts)")
		}
		if journalledPrune != nil {
			prunedRows = *journalledPrune
			if prunedRows == nil {
				prunedRows = map[int]Row{}
			}
		} else if prunedRows, err = c.runPrune(ctx, spec, wcs); err != nil {
			return nil, err
		}
	}

	ss := &sweepState{
		id:         id,
		spec:       spec,
		program:    np.Name,
		wcs:        wcs,
		traceID:    traceID,
		parentSpan: parentSpan,
		rows:       make([]Row, len(wcs)),
		filled:     make([]bool, len(wcs)),
		done:       make(chan struct{}),
		created:    c.opt.now(),
	}
	if traceID != "" {
		ss.spanID = obs.NewSpanID()
	}
	for i, row := range prunedRows {
		ss.rows[i] = row
		ss.filled[i] = true
	}
	ss.pruned = len(prunedRows)
	ss.remaining = len(wcs) - len(prunedRows)
	mPruned.Add(int64(ss.pruned))

	unitSize := spec.UnitSize
	if unitSize < 1 {
		unitSize = 1
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if existing, ok := c.sweeps[id]; ok { // raced with an identical submit
		return c.sweepStatusLocked(existing), nil
	}
	c.sweeps[id] = ss
	c.order = append(c.order, id)
	c.sweepsTotal++
	c.prunedTotal += int64(ss.pruned)
	mSweeps.Inc()
	if ss.traceID != "" {
		c.traces = append(c.traces, ss.traceID)
	}
	now := c.opt.now()

	addUnit := func(key string, ref unitRef) {
		ss.unitsTotal++
		if u, ok := c.byKey[key]; ok {
			// Content-addressed dedup: an identical unit (same program
			// digest, geometry run, solve mode and budget) already exists,
			// within this sweep or from an earlier one.
			ss.deduped++
			c.deduped++
			mDeduped.Inc()
			ss.units = append(ss.units, u)
			c.eventLocked(u, now, TimelineDeduped, "", fmt.Sprintf("sweep %.12s", id))
			switch u.state {
			case unitDone:
				c.fillLocked(u, ref, u.rows)
			case unitFailed:
				// A fresh sweep earns the unit fresh attempts.
				u.state = unitPending
				u.fails = 0
				mPending.Add(1)
				u.refs = append(u.refs, ref)
				c.pending = append(c.pending, u)
				c.eventLocked(u, now, TimelineQueued, "", "")
			default:
				u.refs = append(u.refs, ref)
			}
		} else {
			u := &unit{key: key, refs: []unitRef{ref}}
			if ss.traceID != "" {
				u.spanID = obs.NewSpanID()
			}
			c.byKey[key] = u
			c.unitsTotal++
			ss.units = append(ss.units, u)
			c.pending = append(c.pending, u)
			mUnits.Inc()
			mPending.Add(1)
			c.eventLocked(u, now, TimelineSubmitted, "", fmt.Sprintf("sweep %.12s", id))
			c.eventLocked(u, now, TimelineQueued, "", "")
		}
	}

	// Geometry-column units: an exact, unbudgeted sweep at the default
	// unit size shards by geometry column — all cache sizes sharing
	// (line size, associativity, pad) ride one unit, in grid order — so
	// the solving worker's SolveBatch sees the whole size ladder and the
	// geometry-parametric tier (cme geom.go) answers most of it from a
	// few anchor solves instead of enumerating every member. Rows are
	// bit-identical either way, so the merged report does not change;
	// only the work partition does. Budgeted sweeps keep per-candidate
	// units (the budget is per unit — regrouping would change how far it
	// stretches), and columns below the tier's minimum gain nothing and
	// stay on the consecutive-run path.
	var columned []bool
	if spec.Exact && unitSize <= 1 && !spec.NoColumnUnits &&
		spec.MaxPoints == 0 && spec.TimeoutMs == 0 {
		type colKey struct {
			lineBytes int64
			assoc     int
			padArray  string
			pad       int64
		}
		groups := map[colKey][]int{}
		var order []colKey
		for i, wc := range wcs {
			if ss.filled[i] {
				continue
			}
			k := colKey{wc.LineBytes, wc.Assoc, wc.PadArray, wc.Pad}
			if _, ok := groups[k]; !ok {
				order = append(order, k)
			}
			groups[k] = append(groups[k], i)
		}
		columned = make([]bool, len(wcs))
		for _, k := range order {
			idxs := groups[k]
			if len(idxs) < cme.DefaultGeomMinColumn {
				continue
			}
			colCands := make([]cme.Candidate, len(idxs))
			colWcs := make([]WireCandidate, len(idxs))
			for j, gi := range idxs {
				colCands[j] = cands[gi]
				colWcs[j] = wcs[gi]
				columned[gi] = true
			}
			key := unitKey(prep.SolveKey(colCands, plan), spec.SolveSpec)
			addUnit(key, unitRef{sweep: ss, start: idxs[0], cands: colWcs, idxs: idxs})
		}
	}

	for i := 0; i < len(wcs); {
		if ss.filled[i] || (columned != nil && columned[i]) {
			i++
			continue
		}
		j := i
		for j < len(wcs) && j-i < unitSize && !ss.filled[j] && (columned == nil || !columned[j]) {
			j++
		}
		key := unitKey(prep.SolveKey(cands[i:j], plan), spec.SolveSpec)
		addUnit(key, unitRef{sweep: ss, start: i, cands: wcs[i:j]})
		i = j
	}
	if !replay {
		rec := journalRec{T: recSweep, Sweep: id, Spec: spec, Trace: ss.traceID}
		if spec.Prune {
			// Journal the prune outcome with the submission so replay
			// re-applies it instead of re-solving the cheap pass.
			rec.Pruned = &prunedRows
		}
		c.journalLocked(rec, true)
	}
	if ss.traceID != "" {
		c.opt.Logf("dist: sweep %.12s: %d candidates, %d units (%d deduped, %d pruned) trace %s",
			id, len(wcs), ss.unitsTotal, ss.deduped, ss.pruned, ss.traceID)
	} else {
		c.opt.Logf("dist: sweep %.12s: %d candidates, %d units (%d deduped, %d pruned)",
			id, len(wcs), ss.unitsTotal, ss.deduped, ss.pruned)
	}
	c.checkDoneLocked(ss)
	c.evictLocked()
	return c.sweepStatusLocked(ss), nil
}

// runPrune runs the advisor prune pass under the concurrency bound: at
// most Options.PruneConcurrency grids solve at once, the rest queue here
// (or give up with the caller's context).
func (c *Coordinator) runPrune(ctx context.Context, spec *SweepSpec, wcs []WireCandidate) (map[int]Row, error) {
	select {
	case c.pruneSem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-c.pruneSem }()
	return pruneGrid(ctx, spec, wcs)
}

// evictLocked drops the oldest finished sweeps beyond the retention
// bound, so a long-lived coordinator accepting many sweeps does not grow
// without bound. An evicted sweep's report becomes unavailable and its
// resolved units leave the dedup store (a later identical sweep re-solves
// them — cheap, since workers keep their own result caches). Running
// sweeps are never evicted.
func (c *Coordinator) evictLocked() {
	if c.opt.MaxRetainedSweeps < 0 {
		return
	}
	for len(c.sweeps) > c.opt.MaxRetainedSweeps {
		evicted := false
		for i, id := range c.order {
			ss := c.sweeps[id]
			if !ss.closed {
				continue
			}
			c.order = append(c.order[:i], c.order[i+1:]...)
			delete(c.sweeps, id)
			for _, u := range ss.units {
				if (u.state == unitDone || u.state == unitFailed) && !u.live() && c.byKey[u.key] == u {
					delete(c.byKey, u.key)
				}
			}
			c.opt.Logf("dist: evicted finished sweep %.12s (retention %d)", id, c.opt.MaxRetainedSweeps)
			evicted = true
			break
		}
		if !evicted {
			return // everything retained is still running
		}
	}
}

// Lease hands the next pending unit to worker, first reclaiming any
// expired leases (work stealing). When nothing is pending it answers
// "wait" (units are still in flight, or no sweep has been submitted yet)
// or — with ShutdownWhenDone, once every sweep is finished — "shutdown".
// The pending queue makes this O(1) amortised in the coordinator's
// lifetime unit count: neither leasing nor reaping ever scans units that
// are already resolved.
func (c *Coordinator) Lease(worker string) *LeaseResponse {
	now := c.opt.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	c.reapLocked(now)
	for len(c.pending) > 0 {
		u := c.pending[0]
		c.pending[0] = nil
		c.pending = c.pending[1:]
		if u.state != unitPending || c.byKey[u.key] != u {
			continue // stale entry: resolved or collected since it was queued
		}
		if !u.live() {
			// Every referencing sweep already closed (failed): drop the
			// unit instead of spending a worker on it.
			u.state = unitFailed
			delete(c.byKey, u.key)
			mPending.Add(-1)
			continue
		}
		u.state = unitLeased
		u.worker = worker
		u.expires = now.Add(c.opt.LeaseTTL)
		u.leasedAt = now
		c.leased[u.key] = u
		c.leasedT++
		mLeased.Inc()
		mPending.Add(-1)
		// Lease wait: time since the unit last entered the pending queue.
		for i := len(u.timeline) - 1; i >= 0; i-- {
			if u.timeline[i].State == TimelineQueued {
				mLeaseWaitMs.Observe(now.UnixMilli() - u.timeline[i].AtMs)
				break
			}
		}
		c.eventLocked(u, now, TimelineLeased, worker, "")
		if ws := c.workers[worker]; ws != nil {
			ws.unit = u.key
			ws.leasedAt = now
		}
		ref := u.refs[0]
		// Lease records are audit-only (never replayed), so they ride
		// without an fsync — scheduling must not serialize behind disk.
		c.journalLocked(journalRec{T: recLease, Sweep: ref.sweep.id, Unit: u.key, Worker: worker, Trace: ref.sweep.traceID}, false)
		return &LeaseResponse{
			Status: LeaseUnit,
			Sweep:  ref.sweep.id,
			TTLMs:  c.opt.LeaseTTL.Milliseconds(),
			// Trace context rides the lease: the unit span becomes the
			// parent of the worker's solve span shard. Empty when the
			// sweep is untraced, which keeps the worker uninstrumented.
			Traceparent: obs.FormatTraceparent(ref.sweep.traceID, u.spanID),
			Unit: &UnitSpec{
				Key:        u.key,
				Seq:        ref.start,
				Program:    ref.sweep.spec.ProgramSpec,
				Solve:      ref.sweep.spec.SolveSpec,
				Candidates: ref.cands,
			},
		}
	}
	if c.opt.ShutdownWhenDone && len(c.sweeps) > 0 && c.allDoneLocked() {
		if ws := c.workers[worker]; ws != nil {
			ws.shutdown = true
		}
		return &LeaseResponse{Status: LeaseShutdown}
	}
	wait := c.opt.LeaseTTL / 4
	if wait > 500*time.Millisecond {
		wait = 500 * time.Millisecond
	}
	return &LeaseResponse{Status: LeaseWait, RetryAfterMs: wait.Milliseconds()}
}

// Heartbeat extends worker's lease on a unit. false means the lease is
// gone — expired and stolen, completed elsewhere, or never granted — and
// the worker should abandon the unit (its late result would be identical
// anyway, but the compute is better spent on a fresh lease).
func (c *Coordinator) Heartbeat(worker, sweep, unitKey string) bool {
	now := c.opt.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	c.reapLocked(now)
	u := c.byKey[unitKey]
	if u == nil || u.state != unitLeased || u.worker != worker {
		return false
	}
	u.expires = now.Add(c.opt.LeaseTTL)
	c.eventLocked(u, now, TimelineHeartbeat, worker, "")
	return true
}

// Complete records a unit result (or a worker-reported failure). Late
// completions from stale leases are accepted when the unit is still
// unresolved — the result is bit-identical to what the stealing worker
// would produce, so first write wins and the duplicate is dropped.
// shard, optional, is the worker's span snapshot for a traced solve; it
// feeds the merged trace export and never touches the rows.
func (c *Coordinator) Complete(worker, sweep, unitKey string, rows []Row, errMsg string, shard *obs.SpanSnapshot) error {
	now := c.opt.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(worker, now)
	u := c.byKey[unitKey]
	if u == nil {
		return fmt.Errorf("unknown unit %.12s", unitKey)
	}
	if ws := c.workers[worker]; ws != nil && ws.unit == unitKey {
		ws.unit = ""
	}
	if u.state == unitDone || u.state == unitFailed {
		return nil // duplicate or late after resolution: drop
	}
	want := len(u.refs[0].cands)
	if errMsg == "" && len(rows) != want {
		return fmt.Errorf("unit %.12s: got %d rows, want %d", unitKey, len(rows), want)
	}
	if shard != nil && len(u.shards) < maxUnitShards {
		u.shards = append(u.shards, *shard)
	}
	wasPending := u.state == unitPending
	u.worker = ""
	delete(c.leased, u.key)
	if errMsg != "" {
		u.fails++
		c.journalLocked(journalRec{T: recFail, Sweep: sweep, Unit: unitKey, Worker: worker, Err: errMsg}, true)
		if u.fails >= c.opt.UnitRetries {
			u.state = unitFailed
			if wasPending {
				mPending.Add(-1)
			}
			c.eventLocked(u, now, TimelineFailed, worker, errMsg)
			c.failLocked(u, errMsg)
			return nil
		}
		u.state = unitPending
		if !wasPending {
			mPending.Add(1)
			c.pending = append(c.pending, u)
		}
		c.retried++
		mRetried.Inc()
		for _, ref := range u.refs {
			ref.sweep.retried++
		}
		c.eventLocked(u, now, TimelineRetried, worker, errMsg)
		c.eventLocked(u, now, TimelineQueued, "", "")
		c.opt.Logf("dist: unit %.12s failed on %s (attempt %d/%d): %s",
			unitKey, worker, u.fails, c.opt.UnitRetries, errMsg)
		return nil
	}
	u.state = unitDone
	u.rows = rows
	if wasPending {
		mPending.Add(-1)
	}
	c.completed++
	mCompleted.Inc()
	if ws := c.workers[worker]; ws != nil {
		ws.completed++
	}
	c.eventLocked(u, now, TimelineReported, worker, tierSummary(rows))
	for _, ref := range u.refs {
		c.fillLocked(u, ref, rows)
	}
	c.journalLocked(journalRec{T: recComplete, Sweep: sweep, Unit: unitKey, Worker: worker, Rows: rows}, true)
	return nil
}

// reapLocked reclaims expired leases: the stealing half of the fabric.
// It walks only the in-flight lease set (bounded by the worker count),
// never the full unit ledger.
func (c *Coordinator) reapLocked(now time.Time) {
	for key, u := range c.leased {
		if u.state != unitLeased {
			delete(c.leased, key) // resolved since; defensive
			continue
		}
		if now.Before(u.expires) {
			continue
		}
		c.opt.Logf("dist: lease on unit %.12s expired (worker %s): re-queueing", u.key, u.worker)
		delete(c.leased, key)
		if ws := c.workers[u.worker]; ws != nil && ws.unit == u.key {
			ws.unit = ""
		}
		robbed := u.worker
		u.worker = ""
		if !u.live() {
			// No sweep wants it anymore: drop instead of re-queueing.
			u.state = unitFailed
			delete(c.byKey, u.key)
			continue
		}
		u.state = unitPending
		c.pending = append(c.pending, u)
		mPending.Add(1)
		c.stolen++
		mStolen.Inc()
		for _, ref := range u.refs {
			ref.sweep.stolen++
		}
		c.eventLocked(u, now, TimelineStolen, robbed, "lease expired")
		c.eventLocked(u, now, TimelineQueued, "", "")
	}
}

// fillLocked merges one unit result into a sweep's rows at its grid
// offset, patching labels for dedup followers (the only field that can
// differ between units with equal keys).
func (c *Coordinator) fillLocked(u *unit, ref unitRef, rows []Row) {
	ss := ref.sweep
	c.eventLocked(u, c.opt.now(), TimelineMerged, "", fmt.Sprintf("sweep %.12s", ss.id))
	for i, row := range rows {
		if i >= len(ref.cands) {
			break
		}
		row.Label = ref.cands[i].Label
		idx := ref.gridIndex(i)
		if !ss.filled[idx] {
			ss.filled[idx] = true
			ss.remaining--
		}
		ss.rows[idx] = row
	}
	ss.unitsDone++
	c.checkDoneLocked(ss)
}

// failLocked fails every sweep referencing a permanently failed unit.
func (c *Coordinator) failLocked(u *unit, msg string) {
	for _, ref := range u.refs {
		ss := ref.sweep
		if ss.closed {
			continue
		}
		ss.failed = fmt.Sprintf("unit %.12s failed after %d attempts: %s", u.key, u.fails, msg)
		ss.closed = true
		close(ss.done)
		c.opt.Logf("dist: sweep %.12s failed: %s", ss.id, ss.failed)
	}
}

func (c *Coordinator) checkDoneLocked(ss *sweepState) {
	if ss.closed || ss.remaining > 0 {
		return
	}
	ss.closed = true
	close(ss.done)
	c.opt.Logf("dist: sweep %.12s complete (%d candidates)", ss.id, len(ss.wcs))
}

func (c *Coordinator) allDoneLocked() bool {
	for _, ss := range c.sweeps {
		if !ss.closed {
			return false
		}
	}
	return true
}

func (c *Coordinator) touchWorkerLocked(worker string, now time.Time) {
	if worker == "" {
		return
	}
	ws := c.workers[worker]
	if ws == nil {
		ws = &workerStat{firstSeen: now}
		c.workers[worker] = ws
	}
	ws.lastSeen = now
	ws.shutdown = false // a returning worker is active again
	active := int64(0)
	for _, w := range c.workers {
		if now.Sub(w.lastSeen) <= 30*time.Second {
			active++
		}
	}
	mWorkers.Set(active)
}

func (c *Coordinator) journalLocked(rec journalRec, sync bool) {
	if c.journal == nil {
		return
	}
	if err := c.journal.append(rec, sync); err != nil {
		c.opt.Logf("dist: journal append: %v", err)
	}
}

// Wait blocks until the sweep finishes (nil), fails (its error), or ctx
// is cancelled.
func (c *Coordinator) Wait(ctx context.Context, id string) error {
	c.mu.Lock()
	ss, ok := c.sweeps[id]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("no such sweep %.12s", id)
	}
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-ss.done:
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if ss.failed != "" {
		return fmt.Errorf("sweep %.12s: %s", id, ss.failed)
	}
	return nil
}

// Report returns the deterministic merge of a finished sweep.
func (c *Coordinator) Report(id string) (*MergedReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ss, ok := c.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("no such sweep %.12s", id)
	}
	if !ss.closed {
		return nil, fmt.Errorf("sweep %.12s is still running", id)
	}
	if ss.failed != "" {
		return nil, fmt.Errorf("sweep %.12s: %s", id, ss.failed)
	}
	rows := make([]Row, len(ss.rows))
	copy(rows, ss.rows)
	return &MergedReport{
		Schema:     ReportSchemaV1,
		Sweep:      ss.id,
		Program:    ss.program,
		Candidates: len(ss.wcs),
		Rows:       rows,
		Stats:      c.sweepStatsLocked(ss),
	}, nil
}

// SweepStats is one sweep's scheduling ledger.
type SweepStats struct {
	Candidates int   `json:"candidates"`
	Units      int   `json:"units"`
	UnitsDone  int   `json:"units_done"`
	Deduped    int   `json:"units_deduped"`
	Pruned     int   `json:"candidates_pruned,omitempty"`
	Stolen     int64 `json:"units_stolen"`
	Retried    int64 `json:"units_retried"`
}

// SweepStatus is the wire status of one sweep.
type SweepStatus struct {
	Sweep   string     `json:"sweep"`
	Program string     `json:"program"`
	TraceID string     `json:"trace_id,omitempty"`
	Done    bool       `json:"done"`
	Failed  string     `json:"failed,omitempty"`
	Stats   SweepStats `json:"stats"`
}

func (c *Coordinator) sweepStatsLocked(ss *sweepState) SweepStats {
	return SweepStats{
		Candidates: len(ss.wcs),
		Units:      ss.unitsTotal,
		UnitsDone:  ss.unitsDone,
		Deduped:    ss.deduped,
		Pruned:     ss.pruned,
		Stolen:     ss.stolen,
		Retried:    ss.retried,
	}
}

func (c *Coordinator) sweepStatusLocked(ss *sweepState) *SweepStatus {
	return &SweepStatus{
		Sweep:   ss.id,
		Program: ss.program,
		TraceID: ss.traceID,
		Done:    ss.closed && ss.failed == "",
		Failed:  ss.failed,
		Stats:   c.sweepStatsLocked(ss),
	}
}

// SweepStatus returns one sweep's status.
func (c *Coordinator) SweepStatus(id string) (*SweepStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ss, ok := c.sweeps[id]
	if !ok {
		return nil, false
	}
	return c.sweepStatusLocked(ss), true
}

// WorkerStatus is one worker's throughput snapshot.
type WorkerStatus struct {
	UnitsCompleted int64   `json:"units_completed"`
	UnitsPerSec    float64 `json:"units_per_sec"`
	LastSeenMs     int64   `json:"last_seen_ms"`
	// CurrentUnit is the unit the worker holds a lease on ("" when
	// idle); LeaseAgeMs is how long it has held it.
	CurrentUnit string `json:"current_unit,omitempty"`
	LeaseAgeMs  int64  `json:"lease_age_ms,omitempty"`
	// Shutdown means the worker has been told to exit (ShutdownWhenDone
	// after the last sweep finished) and is no longer scheduled.
	Shutdown bool `json:"shutdown,omitempty"`
}

// Straggler is one leased unit that has outlived a full lease TTL (it
// survives only through heartbeats) — the fleet view's "where is the
// wall-clock going right now" list.
type Straggler struct {
	Unit   string `json:"unit"`
	Sweep  string `json:"sweep"`
	Worker string `json:"worker"`
	Seq    int    `json:"seq"`
	AgeMs  int64  `json:"age_ms"`
}

// Status is the coordinator-wide snapshot (GET /v1/dist/status). Units
// counts every unit ever created, including those evicted from memory.
type Status struct {
	Sweeps       []*SweepStatus `json:"sweeps"`
	Units        int            `json:"units"`
	UnitsDone    int64          `json:"units_completed"`
	UnitsLeased  int64          `json:"units_leased"`
	UnitsStolen  int64          `json:"units_stolen"`
	UnitsDeduped int64          `json:"units_deduped"`
	UnitsRetried int64          `json:"units_retried"`
	// QueueDepth is how many units are pending a lease right now.
	QueueDepth int `json:"queue_depth"`
	// InFlight is how many leases are currently held.
	InFlight int `json:"in_flight"`
	// Stragglers lists in-flight units older than one lease TTL, oldest
	// first (capped at 16).
	Stragglers []Straggler             `json:"stragglers,omitempty"`
	Workers    map[string]WorkerStatus `json:"workers,omitempty"`
}

// Status snapshots the whole coordinator, reaping expired leases first so
// a poller sees steals without needing a concurrent lease request.
func (c *Coordinator) Status() *Status {
	now := c.opt.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(now)
	st := &Status{
		Units:        int(c.unitsTotal),
		UnitsDone:    c.completed,
		UnitsLeased:  c.leasedT,
		UnitsStolen:  c.stolen,
		UnitsDeduped: c.deduped,
		UnitsRetried: c.retried,
		InFlight:     len(c.leased),
	}
	for _, u := range c.pending {
		if u.state == unitPending && c.byKey[u.key] == u {
			st.QueueDepth++
		}
	}
	for _, u := range c.leased {
		if u.state != unitLeased {
			continue
		}
		age := now.Sub(u.leasedAt)
		if age <= c.opt.LeaseTTL {
			continue
		}
		st.Stragglers = append(st.Stragglers, Straggler{
			Unit:   u.key,
			Sweep:  u.refs[0].sweep.id,
			Worker: u.worker,
			Seq:    u.refs[0].start,
			AgeMs:  age.Milliseconds(),
		})
	}
	sort.Slice(st.Stragglers, func(i, j int) bool { return st.Stragglers[i].AgeMs > st.Stragglers[j].AgeMs })
	if len(st.Stragglers) > 16 {
		st.Stragglers = st.Stragglers[:16]
	}
	for _, id := range c.order {
		st.Sweeps = append(st.Sweeps, c.sweepStatusLocked(c.sweeps[id]))
	}
	if len(c.workers) > 0 {
		st.Workers = map[string]WorkerStatus{}
		for name, ws := range c.workers {
			w := WorkerStatus{UnitsCompleted: ws.completed, LastSeenMs: now.Sub(ws.lastSeen).Milliseconds(), Shutdown: ws.shutdown}
			if ws.unit != "" {
				w.CurrentUnit = ws.unit
				w.LeaseAgeMs = now.Sub(ws.leasedAt).Milliseconds()
			}
			if up := now.Sub(ws.firstSeen).Seconds(); up > 0 {
				w.UnitsPerSec = float64(ws.completed) / up
			}
			st.Workers[name] = w
		}
	}
	return st
}

// Outcomes renders the coordinator's ledger for the obs run report.
func (c *Coordinator) Outcomes() *obs.DistOutcomes {
	c.mu.Lock()
	defer c.mu.Unlock()
	d := &obs.DistOutcomes{
		Sweeps:         c.sweepsTotal,
		Units:          c.unitsTotal,
		Completed:      c.completed,
		Leased:         c.leasedT,
		Stolen:         c.stolen,
		Deduped:        c.deduped,
		Retried:        c.retried,
		Pruned:         c.prunedTotal,
		TimelineEvents: c.timelineEvents,
		Traces:         append([]string(nil), c.traces...),
	}
	for name, ws := range c.workers {
		if ws.completed > 0 {
			if d.Workers == nil {
				d.Workers = map[string]int64{}
			}
			d.Workers[name] = ws.completed
		}
	}
	return d
}
