package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"cachemodel/internal/obs"
)

// Lease response statuses.
const (
	LeaseUnit     = "unit"     // a unit is attached: solve it
	LeaseWait     = "wait"     // nothing pending: poll again after RetryAfterMs
	LeaseShutdown = "shutdown" // every sweep is done: exit
)

// LeaseResponse is the coordinator's answer to a lease request.
type LeaseResponse struct {
	Status       string `json:"status"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
	Sweep        string `json:"sweep,omitempty"`
	TTLMs        int64  `json:"ttl_ms,omitempty"`
	// Traceparent carries the unit's trace context (trace id + unit span
	// id) for traced sweeps; empty otherwise, in which case the worker
	// solves uninstrumented (nil sink).
	Traceparent string    `json:"traceparent,omitempty"`
	Unit        *UnitSpec `json:"unit,omitempty"`
}

// UnitSpec is one leased work unit: everything a worker needs to
// reproduce the exact solve the unit key was derived from.
type UnitSpec struct {
	Key        string          `json:"key"`
	Seq        int             `json:"seq"`
	Program    ProgramSpec     `json:"program"`
	Solve      SolveSpec       `json:"solve"`
	Candidates []WireCandidate `json:"candidates"`
}

// leaseRequest / heartbeatRequest / completeRequest are the worker→
// coordinator wire forms.
type leaseRequest struct {
	Worker string `json:"worker"`
}

type heartbeatRequest struct {
	Worker string `json:"worker"`
	Sweep  string `json:"sweep"`
	Unit   string `json:"unit"`
}

type completeRequest struct {
	Worker string `json:"worker"`
	Sweep  string `json:"sweep"`
	Unit   string `json:"unit"`
	Rows   []Row  `json:"rows,omitempty"`
	Error  string `json:"error,omitempty"`
	// Spans is the worker's span shard for a traced unit (the solve span
	// tree whose root links to the unit span via its parent id).
	Spans *obs.SpanSnapshot `json:"spans,omitempty"`
}

// Handler exposes the coordinator over HTTP/JSON. Routes are registered
// under their full /v1/dist/... paths so the handler mounts identically
// standalone (`cachette dist coordinate`) and inside the analysis server
// (serve.Options.Dist), without serve importing this package.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/dist/sweep", c.handleSweep)
	mux.HandleFunc("POST /v1/dist/lease", c.handleLease)
	mux.HandleFunc("POST /v1/dist/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /v1/dist/complete", c.handleComplete)
	mux.HandleFunc("GET /v1/dist/status", c.handleStatus)
	mux.HandleFunc("GET /v1/dist/sweeps/{id}", c.handleSweepStatus)
	mux.HandleFunc("GET /v1/dist/sweeps/{id}/report", c.handleReport)
	mux.HandleFunc("GET /v1/dist/sweeps/{id}/trace", c.handleTrace)
	return mux
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	var spec SweepSpec
	if err := decodeBody(w, r, &spec, 1<<20); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	// An HTTP submitter's trace context arrives as a traceparent header
	// (the serve mount forwards the request context unchanged).
	ctx := WithTraceparent(r.Context(), r.Header.Get(obs.TraceparentHeader))
	st, err := c.AddSweep(ctx, &spec)
	if err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusAccepted, st)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req leaseRequest
	if err := decodeBody(w, r, &req, 1<<16); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if req.Worker == "" {
		httpError(w, http.StatusBadRequest, errors.New("missing worker id"))
		return
	}
	writeJSON(w, http.StatusOK, c.Lease(req.Worker))
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req heartbeatRequest
	if err := decodeBody(w, r, &req, 1<<16); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if !c.Heartbeat(req.Worker, req.Sweep, req.Unit) {
		// 410: the lease is gone (stolen or resolved); abandon the unit.
		httpError(w, http.StatusGone, fmt.Errorf("lease on unit %.12s is gone", req.Unit))
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req completeRequest
	// Unit results carry full per-reference rows: the body cap is the
	// result-sized one, not the request-sized one.
	if err := decodeBody(w, r, &req, 64<<20); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	if err := c.Complete(req.Worker, req.Sweep, req.Unit, req.Rows, req.Error, req.Spans); err != nil {
		httpError(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

func (c *Coordinator) handleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.Status())
}

func (c *Coordinator) handleSweepStatus(w http.ResponseWriter, r *http.Request) {
	st, ok := c.SweepStatus(r.PathValue("id"))
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such sweep"))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (c *Coordinator) handleTrace(w http.ResponseWriter, r *http.Request) {
	tf, err := c.Trace(r.PathValue("id"))
	if err != nil {
		httpError(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, tf)
}

func (c *Coordinator) handleReport(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, ok := c.SweepStatus(id)
	if !ok {
		httpError(w, http.StatusNotFound, errors.New("no such sweep"))
		return
	}
	rep, err := c.Report(id)
	if err != nil {
		code := http.StatusConflict // still running
		if st.Failed != "" {
			code = http.StatusInternalServerError
		}
		httpError(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

func decodeBody(w http.ResponseWriter, r *http.Request, dst any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

// Client is the typed HTTP client workers and the CLI use against a
// coordinator (standalone or mounted in the analysis server).
type Client struct {
	Base string // e.g. "http://127.0.0.1:8355"
	HTTP *http.Client
	// Worker, when set, stamps every request with an X-Cachette-Worker
	// header so coordinator-side access logs correlate to worker ids.
	Worker string
}

func (cl *Client) client() *http.Client {
	if cl.HTTP != nil {
		return cl.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// do round-trips one JSON request. A non-2xx status decodes the error
// envelope into *HTTPError so callers can branch on the code.
func (cl *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		blob, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(blob)
	}
	req, err := http.NewRequestWithContext(ctx, method, cl.Base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	// Correlation headers: the caller's trace position (when ctx carries
	// an obs collector) and the worker identity ride every request.
	if tp := obs.Traceparent(ctx); tp != "" {
		req.Header.Set(obs.TraceparentHeader, tp)
	}
	if cl.Worker != "" {
		req.Header.Set("X-Cachette-Worker", cl.Worker)
	}
	resp, err := cl.client().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(io.LimitReader(resp.Body, 256<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var env struct {
			Error string `json:"error"`
		}
		msg := fmt.Sprintf("status %d", resp.StatusCode)
		if json.Unmarshal(blob, &env) == nil && env.Error != "" {
			msg = env.Error
		}
		return &HTTPError{Code: resp.StatusCode, Msg: msg}
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(blob, out)
}

// HTTPError is a non-2xx coordinator answer.
type HTTPError struct {
	Code int
	Msg  string
}

func (e *HTTPError) Error() string { return fmt.Sprintf("coordinator: %s (HTTP %d)", e.Msg, e.Code) }

// Submit posts a sweep and returns its status (idempotent on identical
// specs).
func (cl *Client) Submit(ctx context.Context, spec *SweepSpec) (*SweepStatus, error) {
	var st SweepStatus
	if err := cl.do(ctx, http.MethodPost, "/v1/dist/sweep", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Lease asks for the next work unit.
func (cl *Client) Lease(ctx context.Context, worker string) (*LeaseResponse, error) {
	var lr LeaseResponse
	if err := cl.do(ctx, http.MethodPost, "/v1/dist/lease", leaseRequest{Worker: worker}, &lr); err != nil {
		return nil, err
	}
	return &lr, nil
}

// Heartbeat extends a lease. ok=false (no error) means the lease is gone
// and the unit should be abandoned.
func (cl *Client) Heartbeat(ctx context.Context, worker, sweep, unit string) (bool, error) {
	err := cl.do(ctx, http.MethodPost, "/v1/dist/heartbeat",
		heartbeatRequest{Worker: worker, Sweep: sweep, Unit: unit}, nil)
	var he *HTTPError
	if errors.As(err, &he) && he.Code == http.StatusGone {
		return false, nil
	}
	return err == nil, err
}

// Complete posts a unit result (or a unit failure when errMsg != "").
// spans, optional, is the worker's span shard for a traced unit.
func (cl *Client) Complete(ctx context.Context, worker, sweep, unit string, rows []Row, errMsg string, spans *obs.SpanSnapshot) error {
	return cl.do(ctx, http.MethodPost, "/v1/dist/complete",
		completeRequest{Worker: worker, Sweep: sweep, Unit: unit, Rows: rows, Error: errMsg, Spans: spans}, nil)
}

// Status fetches the coordinator-wide snapshot.
func (cl *Client) Status(ctx context.Context) (*Status, error) {
	var st Status
	if err := cl.do(ctx, http.MethodGet, "/v1/dist/status", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// SweepStatus fetches one sweep's status.
func (cl *Client) SweepStatus(ctx context.Context, id string) (*SweepStatus, error) {
	var st SweepStatus
	if err := cl.do(ctx, http.MethodGet, "/v1/dist/sweeps/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Trace fetches a sweep's assembled Chrome trace-event file.
func (cl *Client) Trace(ctx context.Context, id string) (*obs.TraceFile, error) {
	var tf obs.TraceFile
	if err := cl.do(ctx, http.MethodGet, "/v1/dist/sweeps/"+id+"/trace", nil, &tf); err != nil {
		return nil, err
	}
	return &tf, nil
}

// Report fetches a finished sweep's merged report.
func (cl *Client) Report(ctx context.Context, id string) (*MergedReport, error) {
	var rep MergedReport
	if err := cl.do(ctx, http.MethodGet, "/v1/dist/sweeps/"+id+"/report", nil, &rep); err != nil {
		return nil, err
	}
	return &rep, nil
}

// WaitDone polls until the sweep finishes (nil), fails (error), or ctx
// ends.
func (cl *Client) WaitDone(ctx context.Context, id string, poll time.Duration) error {
	if poll <= 0 {
		poll = 250 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := cl.SweepStatus(ctx, id)
		if err == nil {
			if st.Failed != "" {
				return fmt.Errorf("sweep %.12s: %s", id, st.Failed)
			}
			if st.Done {
				return nil
			}
		} else if ctx.Err() != nil {
			return ctx.Err()
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
		}
	}
}
