package dist

import (
	"context"
	"fmt"

	"cachemodel/internal/advisor"
	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/sampling"
)

// prunePlan is the cheap sampled tier the advisor pass ranks geometries
// under: loose width, modest confidence — enough to order candidates,
// orders of magnitude cheaper than the exact solves it prunes.
var prunePlan = sampling.Plan{C: 0.9, W: 0.1}

// pruneGrid runs the advisor-driven search mode: one cheap SolveBatch
// over the whole geometry grid, advisor.Frontier keeps the non-dominated
// prefix, and every dominated candidate comes back as a pre-filled row
// (cheap-tier ratio, Pruned provenance) so it never becomes a work unit.
// Candidates the cheap pass could not rank (per-candidate errors,
// incomplete coverage) are kept for the real solve rather than guessed
// at.
func pruneGrid(ctx context.Context, spec *SweepSpec, wcs []WireCandidate) (map[int]Row, error) {
	p, err := spec.ProgramSpec.program(0)
	if err != nil {
		return nil, err
	}
	cfgs := make([]cache.Config, len(wcs))
	for i, wc := range wcs {
		cfgs[i] = wc.candidate().Config
	}
	choices, err := advisor.SearchConfigs(ctx, func() *ir.Program { return p }, cfgs, spec.options(), &prunePlan)
	if err != nil && len(choices) == 0 {
		return nil, fmt.Errorf("prune pass: %w", err)
	}
	surviving := map[string]bool{}
	for _, ch := range advisor.Frontier(choices, spec.pruneKeep(), spec.pruneMargin()) {
		surviving[ch.Label] = true
	}
	ranked := map[string]float64{}
	for _, ch := range choices {
		ranked[ch.Label] = ch.MissRatio
	}
	pruned := map[int]Row{}
	for i, wc := range wcs {
		ratio, ok := ranked[wc.Label]
		if !ok || surviving[wc.Label] {
			continue
		}
		pruned[i] = Row{
			Label:        wc.Label,
			CacheBytes:   wc.CacheBytes,
			LineBytes:    wc.LineBytes,
			Assoc:        wc.Assoc,
			MissRatioPct: ratio,
			Tier:         "sampled",
			Pruned:       true,
		}
	}
	return pruned, nil
}
