package dist

import (
	"context"
	"fmt"
	"sort"
	"time"

	"cachemodel/internal/obs"
)

// Unit lifecycle timeline.  The coordinator records every scheduling
// transition a unit goes through — cheap structured appends under the
// lock it already holds — so a sweep's wall-clock is explainable
// end-to-end: where units waited, which worker held them, when a lease
// was stolen, when the merge happened.  Timelines power the straggler
// list in /v1/dist/status and the per-sweep Chrome trace export; they
// are kept regardless of tracing (they cost a few appends per unit,
// nothing on the solve path), while span ids and worker-side span
// shards only exist for traced sweeps.

// Timeline states, in nominal order.  Steal/retry edges loop a unit
// back to TimelineQueued; TimelineDeduped and TimelineMerged are
// per-sweep edges on the canonical unit.
const (
	TimelineSubmitted = "submitted" // unit created by a sweep submission
	TimelineQueued    = "queued"    // entered (or re-entered) the pending FIFO
	TimelineLeased    = "leased"    // granted to a worker
	TimelineHeartbeat = "heartbeat" // lease extended (coalesced per worker)
	TimelineStolen    = "stolen"    // lease expired; unit re-queued
	TimelineRetried   = "retried"   // worker-reported failure; unit re-queued
	TimelineFailed    = "failed"    // retries exhausted
	TimelineReported  = "reported"  // worker posted rows
	TimelineMerged    = "merged"    // rows merged into a sweep's ledger
	TimelineDeduped   = "deduped"   // another sweep attached to this unit
)

// TimelineEvent is one recorded transition.
type TimelineEvent struct {
	State string `json:"state"`
	// AtMs is the coordinator-clock wall time in unix milliseconds.
	AtMs   int64  `json:"at_ms"`
	Worker string `json:"worker,omitempty"`
	Detail string `json:"detail,omitempty"`
	// Count compresses runs of identical events (heartbeats) into one
	// entry.
	Count int `json:"count,omitempty"`
}

// UnitTimeline is one unit's exported lifecycle.
type UnitTimeline struct {
	Unit   string          `json:"unit"`
	Seq    int             `json:"seq"`
	SpanID string          `json:"span_id,omitempty"`
	Events []TimelineEvent `json:"events"`
}

// maxTimelineEvents bounds one unit's timeline; a unit stuck in a
// steal/retry storm coalesces into its final entry past the cap rather
// than growing without bound.
const maxTimelineEvents = 1024

// eventLocked appends a transition to a unit's timeline (callers hold
// c.mu).  Consecutive heartbeats from the same worker coalesce into one
// counted entry so a long-held lease stays O(1), not O(duration/TTL).
func (c *Coordinator) eventLocked(u *unit, now time.Time, state, worker, detail string) {
	at := now.UnixMilli()
	if n := len(u.timeline); n > 0 {
		last := &u.timeline[n-1]
		if state == TimelineHeartbeat && last.State == TimelineHeartbeat && last.Worker == worker {
			if last.Count == 0 {
				last.Count = 1
			}
			last.Count++
			last.AtMs = at
			return
		}
		if n >= maxTimelineEvents {
			*last = TimelineEvent{State: state, AtMs: at, Worker: worker, Detail: detail}
			return
		}
	}
	u.timeline = append(u.timeline, TimelineEvent{State: state, AtMs: at, Worker: worker, Detail: detail})
	c.timelineEvents++
}

// tierSummary compresses a unit result's solve tiers ("exact x6",
// "exact x2, sampled x4") for the reported timeline entry — the
// per-tier half of "where did the wall-clock go".
func tierSummary(rows []Row) string {
	counts := map[string]int{}
	var order []string
	for _, r := range rows {
		t := r.Tier
		if t == "" {
			if r.Error != "" {
				t = "error"
			} else {
				t = "unknown"
			}
		}
		if counts[t] == 0 {
			order = append(order, t)
		}
		counts[t]++
	}
	s := ""
	for i, t := range order {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s x%d", t, counts[t])
	}
	return s
}

// maxUnitShards bounds the worker span shards retained per unit.  Only
// the first completion's shard matters for the merged trace (later
// completions are duplicates of stolen leases), but keeping a few shows
// duplicated work in Perfetto when it happens.
const maxUnitShards = 4

type tpKey struct{}

// WithTraceparent attaches a remote traceparent header value to ctx for
// AddSweep: an HTTP submission carries its caller's trace this way when
// no local obs collector exists (the serve mount passes the request
// context straight through).
func WithTraceparent(ctx context.Context, tp string) context.Context {
	if tp == "" {
		return ctx
	}
	return context.WithValue(ctx, tpKey{}, tp)
}

func traceparentFrom(ctx context.Context) string {
	tp, _ := ctx.Value(tpKey{}).(string)
	return tp
}

// Trace assembles the sweep's Chrome trace-event file from the
// coordinator's unit timelines plus the span shards workers posted with
// their completions: one pid per process (pid 0 is the coordinator,
// workers follow sorted by id), one tid per unit.  Load the result at
// ui.perfetto.dev.  Works on running sweeps too (a flight recorder is
// most useful mid-incident); unfinished intervals extend to now.
func (c *Coordinator) Trace(id string) (*obs.TraceFile, error) {
	now := c.opt.now()
	c.mu.Lock()
	defer c.mu.Unlock()
	ss, ok := c.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("no such sweep %.12s", id)
	}
	f := &obs.TraceFile{
		DisplayTimeUnit: "ms",
		Metadata: map[string]any{
			"sweep":   ss.id,
			"program": ss.program,
		},
	}
	if ss.traceID != "" {
		f.Metadata["trace_id"] = ss.traceID
	}
	f.NameProcess(0, "coordinator")
	f.NameThread(0, 0, "sweep")
	endUs := now.UnixMicro()
	f.Add(obs.TraceEvent{
		Name: fmt.Sprintf("sweep %.12s", ss.id),
		Cat:  "sweep", Ph: "X",
		Ts: ss.created.UnixMicro(), Dur: endUs - ss.created.UnixMicro(),
		Pid: 0, Tid: 0,
		Args: map[string]any{"trace_id": ss.traceID, "candidates": len(ss.wcs)},
	})

	// Stable worker -> pid mapping, sorted by id.
	workerPid := map[string]int{}
	var workerNames []string
	for _, u := range ss.units {
		for _, sh := range u.shards {
			if w, _ := sh.Attrs["worker"].(string); w != "" && workerPid[w] == 0 {
				workerPid[w] = -1 // mark
				workerNames = append(workerNames, w)
			}
		}
	}
	sort.Strings(workerNames)
	for i, w := range workerNames {
		workerPid[w] = i + 1
		f.NameProcess(i+1, "worker "+w)
	}

	seen := map[*unit]bool{}
	tid := 0
	for _, u := range ss.units {
		if seen[u] {
			continue // a sweep can reference one unit at several seqs
		}
		seen[u] = true
		tid++
		f.NameThread(0, tid, fmt.Sprintf("unit %.12s", u.key))
		args := map[string]any{"unit": u.key}
		if u.spanID != "" {
			args["span_id"] = u.spanID
		}
		// Intervals: queued -> leased, leased -> next transition.  Any
		// state change closes the open interval; instants mark the edges.
		openState, openStart, openWorker := "", int64(0), ""
		closeOpen := func(endMs int64) {
			if openState == "" {
				return
			}
			name := openState
			if openState == TimelineLeased {
				name = "lease " + openWorker
			}
			f.Add(obs.TraceEvent{
				Name: name, Cat: "unit", Ph: "X",
				Ts: openStart * 1000, Dur: (endMs - openStart) * 1000,
				Pid: 0, Tid: tid, Args: args,
			})
			openState = ""
		}
		for _, ev := range u.timeline {
			switch ev.State {
			case TimelineQueued:
				closeOpen(ev.AtMs)
				openState, openStart = TimelineQueued, ev.AtMs
			case TimelineLeased:
				closeOpen(ev.AtMs)
				openState, openStart, openWorker = TimelineLeased, ev.AtMs, ev.Worker
			case TimelineHeartbeat:
				// keeps the lease interval open; instant below
			case TimelineReported, TimelineStolen, TimelineRetried, TimelineFailed:
				closeOpen(ev.AtMs)
			}
			if ev.State == TimelineQueued || ev.State == TimelineLeased {
				continue // rendered as intervals
			}
			ia := map[string]any{"unit": u.key}
			if ev.Worker != "" {
				ia["worker"] = ev.Worker
			}
			if ev.Detail != "" {
				ia["detail"] = ev.Detail
			}
			if ev.Count > 1 {
				ia["count"] = ev.Count
			}
			f.Add(obs.TraceEvent{
				Name: ev.State, Cat: "unit", Ph: "i", S: "t",
				Ts: ev.AtMs * 1000, Pid: 0, Tid: tid, Args: ia,
			})
		}
		closeOpen(now.UnixMilli())

		for _, sh := range u.shards {
			w, _ := sh.Attrs["worker"].(string)
			pid := workerPid[w]
			f.NameThread(pid, tid, fmt.Sprintf("unit %.12s", u.key))
			f.AppendSpan(sh, pid, tid)
		}
	}
	return f, nil
}

// Timelines exports the sweep's raw unit timelines (the trace file's
// source of truth), for tests and programmatic consumers.
func (c *Coordinator) Timelines(id string) ([]UnitTimeline, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ss, ok := c.sweeps[id]
	if !ok {
		return nil, fmt.Errorf("no such sweep %.12s", id)
	}
	out := make([]UnitTimeline, 0, len(ss.units))
	seen := map[*unit]bool{}
	for _, u := range ss.units {
		if seen[u] {
			continue
		}
		seen[u] = true
		seq := -1
		for _, ref := range u.refs {
			if ref.sweep == ss {
				seq = ref.start
				break
			}
		}
		out = append(out, UnitTimeline{
			Unit:   u.key,
			Seq:    seq,
			SpanID: u.spanID,
			Events: append([]TimelineEvent(nil), u.timeline...),
		})
	}
	return out, nil
}
