package dist_test

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"cachemodel/internal/dist"
	"cachemodel/internal/serve"
)

// TestCoordinatorMountedInServe drives a full sweep through a
// coordinator mounted into the analysis server under /v1/dist/ — the
// deployment shape where one process fronts both the job API and the
// distributed sweep coordinator.
func TestCoordinatorMountedInServe(t *testing.T) {
	c, err := dist.New(dist.Options{ShutdownWhenDone: true, Logf: t.Logf})
	if err != nil {
		t.Fatalf("dist.New: %v", err)
	}
	defer c.Close()
	s, err := serve.New(serve.Options{Dist: c.Handler()})
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	cl := &dist.Client{Base: ts.URL}
	spec := &dist.SweepSpec{
		ProgramSpec: dist.ProgramSpec{Program: "hydro", Size: 12},
		SolveSpec:   dist.SolveSpec{Exact: true},
		CacheSizes:  []int64{2048, 4096},
		LineSizes:   []int64{32},
		Assocs:      []int{1},
	}
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("submit through serve mount: %v", err)
	}
	w, err := dist.NewWorker(dist.WorkerOptions{Coordinator: ts.URL, ID: "w0", Poll: 20 * time.Millisecond})
	if err != nil {
		t.Fatalf("NewWorker: %v", err)
	}
	if err := w.Run(ctx); err != nil {
		t.Fatalf("worker through serve mount: %v", err)
	}
	rep, err := cl.Report(ctx, st.Sweep)
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rep.Rows))
	}
	for _, r := range rep.Rows {
		if r.Error != "" || r.MissRatioPct <= 0 {
			t.Errorf("row %s: err=%q ratio=%g", r.Label, r.Error, r.MissRatioPct)
		}
	}
}
