package dist

import "cachemodel/internal/obs"

// Distributed-sweep metrics, in the Default registry so a coordinator's
// /metrics (or the mounting server's) exposes them next to the cme_* and
// serve_* series. Counters ledger every scheduling decision — leases,
// steals, dedups, retries — so a run report or a scrape can audit exactly
// how the sweep was sharded; the gauges track the live backlog the
// stealing loop acts on.
var (
	mSweeps    = obs.Default.Counter("dist_sweeps_total")
	mUnits     = obs.Default.Counter("dist_units_total")
	mLeased    = obs.Default.Counter("dist_units_leased_total")
	mCompleted = obs.Default.Counter("dist_units_completed_total")
	mStolen    = obs.Default.Counter("dist_units_stolen_total")
	mDeduped   = obs.Default.Counter("dist_units_deduped_total")
	mRetried   = obs.Default.Counter("dist_units_retried_total")
	mPruned    = obs.Default.Counter("dist_candidates_pruned_total")

	mPending = obs.Default.Gauge("dist_units_pending")
	mWorkers = obs.Default.Gauge("dist_workers_active")
)
