package dist

import "cachemodel/internal/obs"

// Distributed-sweep metrics, in the Default registry so a coordinator's
// /metrics (or the mounting server's) exposes them next to the cme_* and
// serve_* series. Counters ledger every scheduling decision — leases,
// steals, dedups, retries — so a run report or a scrape can audit exactly
// how the sweep was sharded; the gauges track the live backlog the
// stealing loop acts on.
var (
	mSweeps    = obs.Default.Counter("dist_sweeps_total")
	mUnits     = obs.Default.Counter("dist_units_total")
	mLeased    = obs.Default.Counter("dist_units_leased_total")
	mCompleted = obs.Default.Counter("dist_units_completed_total")
	mStolen    = obs.Default.Counter("dist_units_stolen_total")
	mDeduped   = obs.Default.Counter("dist_units_deduped_total")
	mRetried   = obs.Default.Counter("dist_units_retried_total")
	mPruned    = obs.Default.Counter("dist_candidates_pruned_total")

	mPending = obs.Default.Gauge("dist_units_pending")
	mWorkers = obs.Default.Gauge("dist_workers_active")

	// Latency histograms (milliseconds; Prometheus renders them as
	// cumulative _bucket/_sum/_count series). Lease wait is recorded by
	// the coordinator (queued -> leased per unit); solve duration by the
	// worker around SolveBatch, so a worker's /metrics shows its own
	// solve-time distribution.
	mLeaseWaitMs = obs.Default.Histogram("dist_lease_wait_ms", latencyBoundsMs...)
	mSolveMs     = obs.Default.Histogram("dist_unit_solve_ms", latencyBoundsMs...)
)

// latencyBoundsMs is the shared bucket ladder for the dist/serve latency
// histograms: 1ms to ~2min, roughly 3x steps.
var latencyBoundsMs = []int64{1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 120000}
