package dist

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync/atomic"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cerr"
	"cachemodel/internal/cme"
	"cachemodel/internal/obs"
	"cachemodel/internal/retry"
)

// ErrKilled is the chaos-test sentinel: a budget hook returning it makes
// the worker die mid-unit exactly as a SIGKILL would — no completion, no
// failure report, just silence until the lease expires and the unit is
// stolen. It wraps cerr.ErrTransient so the solver aborts typed instead
// of walking the degradation ladder.
var ErrKilled = fmt.Errorf("dist: worker killed mid-unit: %w", cerr.ErrTransient)

// WorkerOptions configures one worker process (or goroutine).
type WorkerOptions struct {
	// Coordinator is the base URL (http://host:port).
	Coordinator string
	// ID names this worker in leases and throughput stats. Empty derives
	// a stable name from the coordinator URL — fine for one worker per
	// box, set explicitly when running several.
	ID string
	// SolveWorkers is the per-unit solver parallelism (default 1: the
	// distributed layer owns the fan-out, the solver stays sequential).
	SolveWorkers int
	// CachePath, when set, persists the worker's content-addressed result
	// cache after every unit (the per-unit checkpoint) and warms it on
	// startup, so a restarted worker replays finished solves from disk.
	CachePath string
	// WarmPaths are additional stores to merge in on startup (for
	// instance the coordinator's shared store on a common filesystem).
	WarmPaths []string
	// CacheCap bounds the in-memory result cache (default 1<<16 entries).
	CacheCap int
	// Poll is the idle re-lease interval when the coordinator says wait
	// and gives no hint (default 500ms).
	Poll time.Duration
	// MaxLeaseFailures bounds consecutive failed lease rounds (each round
	// is already a full HTTPPolicy retry schedule) before the worker gives
	// up and exits with the error — a coordinator that exited after its
	// sweeps finished must not leave workers spinning forever (default 10;
	// < 0 means retry forever).
	MaxLeaseFailures int
	// HTTPPolicy retries worker→coordinator calls (lease, heartbeat,
	// complete). The default is 4 attempts of full-jitter backoff from
	// 50ms, seeded from the worker id so tests stay deterministic.
	HTTPPolicy retry.Policy
	// Hook, when set, installs a budget hook for the unit about to be
	// solved — the chaos-test seam (return ErrKilled to die mid-unit).
	Hook func(unitKey string) budget.Hook
	// Logf receives worker lifecycle lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o WorkerOptions) withDefaults() WorkerOptions {
	if o.ID == "" {
		h := fnv.New32a()
		h.Write([]byte(o.Coordinator))
		o.ID = fmt.Sprintf("worker-%08x", h.Sum32())
	}
	if o.SolveWorkers < 1 {
		o.SolveWorkers = 1
	}
	if o.CacheCap <= 0 {
		o.CacheCap = 1 << 16
	}
	if o.Poll <= 0 {
		o.Poll = 500 * time.Millisecond
	}
	if o.MaxLeaseFailures == 0 {
		o.MaxLeaseFailures = 10
	}
	if o.HTTPPolicy.Attempts == 0 {
		h := fnv.New64a()
		h.Write([]byte(o.ID))
		o.HTTPPolicy = retry.Policy{
			Attempts:   4,
			Base:       50 * time.Millisecond,
			Max:        time.Second,
			FullJitter: true,
			Seed:       int64(h.Sum64()),
		}
	}
	if o.HTTPPolicy.RetryIf == nil {
		// Transport errors and 5xx are retryable; a 4xx answer is a
		// protocol outcome the loop must see, not retry into.
		o.HTTPPolicy.RetryIf = func(err error) bool {
			var he *HTTPError
			if errors.As(err, &he) {
				return he.Code >= 500
			}
			return true
		}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Worker leases units from a coordinator, solves them through the result
// cache, and posts rendered rows back.
type Worker struct {
	opt   WorkerOptions
	cl    *Client
	rc    *cme.ResultCache
	preps map[string]*prepared // program spec JSON → prepared program
}

// prepared caches the per-sweep prepare work across this worker's units.
type prepared struct {
	prep *cme.Prepared
	err  error
}

// NewWorker builds a worker and warms its result cache from CachePath
// and WarmPaths (missing stores are fine; corrupt stores quarantine
// themselves without losing the rest).
func NewWorker(opt WorkerOptions) (*Worker, error) {
	opt = opt.withDefaults()
	if opt.Coordinator == "" {
		return nil, errors.New("dist worker: missing coordinator URL")
	}
	w := &Worker{
		opt:   opt,
		cl:    &Client{Base: opt.Coordinator, Worker: opt.ID},
		rc:    cme.NewResultCache(opt.CacheCap),
		preps: map[string]*prepared{},
	}
	warm := opt.WarmPaths
	if opt.CachePath != "" {
		warm = append([]string{opt.CachePath}, warm...)
	}
	for _, path := range warm {
		if err := w.rc.Load(path); err != nil {
			opt.Logf("dist worker %s: warm %s: %v", opt.ID, path, err)
		}
	}
	return w, nil
}

// ID returns the worker's lease identity.
func (w *Worker) ID() string { return w.opt.ID }

// Run leases and solves units until the coordinator says shutdown (nil),
// ctx ends (ctx.Err()), or a chaos hook kills the worker (ErrKilled).
func (w *Worker) Run(ctx context.Context) error {
	leaseFails := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		var lr *LeaseResponse
		err := retry.Do(ctx, w.opt.HTTPPolicy, func() error {
			var err error
			lr, err = w.cl.Lease(ctx, w.opt.ID)
			return err
		})
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			leaseFails++
			if w.opt.MaxLeaseFailures >= 0 && leaseFails >= w.opt.MaxLeaseFailures {
				return fmt.Errorf("dist worker %s: coordinator unreachable after %d lease rounds: %w", w.opt.ID, leaseFails, err)
			}
			w.opt.Logf("dist worker %s: lease: %v", w.opt.ID, err)
			if !sleep(ctx, w.opt.Poll) {
				return ctx.Err()
			}
			continue
		}
		leaseFails = 0
		switch lr.Status {
		case LeaseShutdown:
			w.opt.Logf("dist worker %s: coordinator done, exiting", w.opt.ID)
			return nil
		case LeaseUnit:
			if err := w.process(ctx, lr); err != nil {
				return err
			}
		default: // wait
			d := w.opt.Poll
			if lr.RetryAfterMs > 0 {
				d = time.Duration(lr.RetryAfterMs) * time.Millisecond
			}
			if !sleep(ctx, d) {
				return ctx.Err()
			}
		}
	}
}

// process solves one leased unit under a heartbeat.
func (w *Worker) process(ctx context.Context, lr *LeaseResponse) error {
	u := lr.Unit
	if lr.Traceparent != "" {
		w.opt.Logf("dist worker %s: unit %.12s (%d candidates, seq %d) trace %s",
			w.opt.ID, u.Key, len(u.Candidates), u.Seq, lr.Traceparent)
	} else {
		w.opt.Logf("dist worker %s: unit %.12s (%d candidates, seq %d)", w.opt.ID, u.Key, len(u.Candidates), u.Seq)
	}

	prep, err := w.prepare(u)
	if err != nil {
		// The coordinator admitted this spec, so a build failure here is a
		// unit failure worth reporting, not a reason to die.
		return w.complete(ctx, lr, nil, err.Error(), nil)
	}

	// Heartbeat at a third of the TTL until the solve finishes. A gone
	// lease (stolen, or resolved by someone else) cancels the solve: the
	// late result would be bit-identical anyway, so the compute is better
	// spent on a fresh lease.
	ttl := time.Duration(lr.TTLMs) * time.Millisecond
	if ttl <= 0 {
		ttl = 10 * time.Second
	}
	solveCtx, cancel := context.WithCancel(ctx)
	// For a traced sweep the lease carries a traceparent naming the unit
	// span: build a collector joining that trace so the solver's spans
	// (prepare, per-tier solves) become this worker's span shard, posted
	// back with the completion. Untraced leases leave the context bare —
	// the solver's obs entry points see no collector and the run stays on
	// the nil-sink zero-cost path.
	var col *obs.Collector
	if lr.Traceparent != "" {
		col = obs.NewTraced("unit:"+w.opt.ID, lr.Traceparent)
		col.Root().SetAttr("worker", w.opt.ID)
		col.Root().SetAttr("unit", u.Key)
		col.Root().SetAttr("seq", u.Seq)
		solveCtx = obs.NewContext(solveCtx, col)
	}
	var abandoned atomic.Bool
	hbDone := make(chan struct{})
	go func() {
		defer close(hbDone)
		t := time.NewTicker(ttl / 3)
		defer t.Stop()
		for {
			select {
			case <-solveCtx.Done():
				return
			case <-t.C:
			}
			var ok bool
			err := retry.Do(solveCtx, w.opt.HTTPPolicy, func() error {
				var err error
				ok, err = w.cl.Heartbeat(solveCtx, w.opt.ID, lr.Sweep, u.Key)
				return err
			})
			if err == nil && !ok {
				w.opt.Logf("dist worker %s: lease on unit %.12s gone, abandoning", w.opt.ID, u.Key)
				abandoned.Store(true)
				cancel()
				return
			}
		}
	}()

	b := u.Solve.budget()
	if w.opt.Hook != nil {
		b.Hook = w.opt.Hook(u.Key)
	}
	plan, err := u.Solve.plan()
	var reps []*cme.Report
	var solveErr error
	solveStart := time.Now()
	if err != nil {
		solveErr = err
	} else {
		reps, solveErr = prep.SolveBatch(solveCtx, candidates(u.Candidates), cme.BatchOptions{
			Plan:    plan,
			Cache:   w.rc,
			Workers: w.opt.SolveWorkers,
			Budget:  b,
		})
	}
	mSolveMs.Observe(time.Since(solveStart).Milliseconds())
	cancel()
	<-hbDone

	var shard *obs.SpanSnapshot
	if col != nil {
		col.Finish()
		s := col.Root().Snapshot()
		shard = &s
	}

	if killed(solveErr) {
		// Chaos hook fired: die exactly like a SIGKILL — no completion, no
		// checkpoint, leaving the lease to expire and the unit to be stolen.
		return ErrKilled
	}
	if abandoned.Load() && ctx.Err() == nil {
		return nil // abandoned (lease gone): back to leasing
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// Per-unit checkpoint: every solved (program, geometry) result is on
	// disk before the unit completes, so a restarted worker replays it
	// from the cache instead of re-solving.
	if w.opt.CachePath != "" {
		if err := w.rc.Save(w.opt.CachePath); err != nil {
			w.opt.Logf("dist worker %s: checkpoint %s: %v", w.opt.ID, w.opt.CachePath, err)
		}
	}

	var batch *cme.BatchError
	if solveErr != nil && !errors.As(solveErr, &batch) {
		// A batch-level failure (not per-candidate): report it so the
		// coordinator can retry or fail the unit.
		return w.complete(ctx, lr, nil, solveErr.Error(), shard)
	}
	return w.complete(ctx, lr, RenderRows(u.Candidates, reps, solveErr), "", shard)
}

// complete posts a unit outcome through the retry policy.
func (w *Worker) complete(ctx context.Context, lr *LeaseResponse, rows []Row, errMsg string, shard *obs.SpanSnapshot) error {
	err := retry.Do(ctx, w.opt.HTTPPolicy, func() error {
		return w.cl.Complete(ctx, w.opt.ID, lr.Sweep, lr.Unit.Key, rows, errMsg, shard)
	})
	if err != nil && ctx.Err() == nil {
		// The lease will expire and the unit will be stolen: correctness is
		// preserved, only this worker's effort is lost.
		w.opt.Logf("dist worker %s: complete unit %.12s: %v", w.opt.ID, lr.Unit.Key, err)
	}
	return ctx.Err()
}

// prepare memoises the program build per (program, solve) spec.
func (w *Worker) prepare(u *UnitSpec) (*cme.Prepared, error) {
	key := fmt.Sprintf("%+v|%+v", u.Program, u.Solve)
	if p, ok := w.preps[key]; ok {
		return p.prep, p.err
	}
	p := &prepared{}
	np, err := u.Program.build(0)
	if err == nil {
		p.prep, p.err = cme.Prepare(np, u.Solve.options())
	} else {
		p.err = err
	}
	w.preps[key] = p
	return p.prep, p.err
}

// killed reports whether the chaos sentinel fired, including when it is
// wrapped per candidate inside a BatchError.
func killed(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrKilled) {
		return true
	}
	var be *cme.BatchError
	if errors.As(err, &be) {
		for _, e := range be.Errs {
			if errors.Is(e, ErrKilled) {
				return true
			}
		}
	}
	return false
}

// sleep waits d or until ctx ends; false means ctx ended.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
