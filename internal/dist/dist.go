// Package dist is the horizontal execution fabric for design-space
// sweeps: a coordinator/worker layer that shards `cme.SolveBatch` work
// across processes and machines while preserving the repository's
// bit-identity guarantee.
//
// The coordinator decomposes a sweep into content-addressed work units —
// consecutive runs of the candidate grid, keyed by the same SHA-256
// `Prepared.SolveKey` scheme the result cache uses — and hands them to
// workers over HTTP/JSON leases with heartbeats. Expired leases are
// re-issued (work stealing from dead or slow shards), identical units
// within or across sweeps collapse onto one solve (content-addressed
// dedup), worker-reported failures are re-enqueued a bounded number of
// times, and lease/completion state is journalled to disk so the
// coordinator itself can be killed and restarted mid-sweep. Workers run
// `cme.Prepared`-based solves under the budget machinery, checkpoint
// per-unit results through `ResultCache.Save`, and post rendered rows
// back; the coordinator merges them in candidate order.
//
// Determinism argument (DESIGN.md §Distributed sweeps has the long form):
// SolveBatch is bit-identical per candidate at any worker count, a unit's
// batch over a candidate subset produces the same per-candidate reports
// as the full batch, the wire rows exclude every nondeterministic field
// (elapsed time, budget spend), and the merge writes rows by candidate
// index — so the merged report is byte-identical to a single-process
// SolveBatch run at any worker count or failure schedule.
package dist

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/fparse"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/sampling"
)

// ProgramSpec names the program a sweep analyses: a built-in workload
// (Program) or inline FORTRAN source (Source, with compile-time Consts).
// It mirrors the serve layer's wire form so clients can reuse payloads.
type ProgramSpec struct {
	Program string           `json:"program,omitempty"`
	Source  string           `json:"source,omitempty"`
	Consts  map[string]int64 `json:"consts,omitempty"`
	Size    int64            `json:"size,omitempty"`  // default 32
	Iters   int64            `json:"iters,omitempty"` // default 2
}

// build instantiates and prepares the program (inline, normalise, assign
// the baseline layout). maxSize <= 0 means no size bound (workers trust
// the coordinator's admission).
func (s *ProgramSpec) build(maxSize int64) (*ir.NProgram, error) {
	p, err := s.program(maxSize)
	if err != nil {
		return nil, err
	}
	flat, _, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		return nil, err
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		return nil, err
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		return nil, err
	}
	np.Name = p.Name
	return np, nil
}

// program instantiates the raw IR program from the spec.
func (s *ProgramSpec) program(maxSize int64) (*ir.Program, error) {
	size, iters := s.Size, s.Iters
	if size == 0 {
		size = 32
	}
	if iters == 0 {
		iters = 2
	}
	if size < 1 || iters < 1 {
		return nil, fmt.Errorf("size and iters must be positive (got %d, %d)", size, iters)
	}
	if maxSize > 0 && size > maxSize {
		return nil, fmt.Errorf("size %d exceeds the coordinator limit %d", size, maxSize)
	}
	if s.Source != "" {
		if s.Program != "" {
			return nil, fmt.Errorf("set program or source, not both")
		}
		cm := map[string]int64{}
		for k, v := range s.Consts {
			cm[strings.ToUpper(k)] = v
		}
		return fparse.Parse(s.Source, cm)
	}
	switch strings.ToLower(s.Program) {
	case "":
		return nil, fmt.Errorf("missing program (or inline source)")
	case "tomcatv":
		return kernels.Tomcatv(size, iters), nil
	case "swim":
		return kernels.Swim(size, iters), nil
	case "applu":
		return kernels.Applu(size, iters), nil
	case "vcycle":
		return kernels.VCycle(size, iters), nil
	}
	for _, ks := range kernels.Suite() {
		if strings.EqualFold(ks.Name, s.Program) {
			return ks.Build(size), nil
		}
	}
	return nil, fmt.Errorf("unknown program %q", s.Program)
}

// SolveSpec is the result-affecting solve mode shared by a sweep and its
// units: it must travel with every unit so a worker reproduces exactly
// the solve the sweep key was derived from.
type SolveSpec struct {
	Exact      bool    `json:"exact,omitempty"`
	Confidence float64 `json:"confidence,omitempty"` // default 0.95 (sampled)
	Width      float64 `json:"width,omitempty"`      // default 0.05 (sampled)
	Adaptive   bool    `json:"adaptive,omitempty"`
	// Per-unit budget. A budgeted unit may degrade (recorded in row
	// provenance); bit-identity to a single-process run is only guaranteed
	// for unbudgeted sweeps, exactly as for SolveBatch itself.
	MaxPoints int64 `json:"max_points,omitempty"`
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
}

// plan validates the sampled-tier parameters (nil when exact).
func (s SolveSpec) plan() (*sampling.Plan, error) {
	if s.Exact {
		return nil, nil
	}
	conf, width := s.Confidence, s.Width
	if conf == 0 {
		conf = 0.95
	}
	if width == 0 {
		width = 0.05
	}
	plan := &sampling.Plan{C: conf, W: width}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// options maps the spec to solver options.
func (s SolveSpec) options() cme.Options {
	return cme.Options{Adaptive: s.Adaptive}
}

// budget maps the spec's per-unit limits to a budget.
func (s SolveSpec) budget() budget.Budget {
	return budget.Budget{
		Deadline:  time.Duration(s.TimeoutMs) * time.Millisecond,
		MaxPoints: s.MaxPoints,
	}
}

// SweepSpec is one distributed sweep: a program against a cache
// design-space grid, mirroring `cachette sweep` / POST /v1/sweep.
type SweepSpec struct {
	ProgramSpec
	SolveSpec

	CacheSizes []int64 `json:"cache_sizes,omitempty"` // default {4096..65536}
	LineSizes  []int64 `json:"line_sizes,omitempty"`  // default {32}
	Assocs     []int   `json:"assocs,omitempty"`      // default {1,2,4}
	PadArray   string  `json:"pad_array,omitempty"`
	Pads       []int64 `json:"pads,omitempty"`

	// UnitSize is how many consecutive candidates one work unit carries
	// (default 1: maximal stealing granularity).
	UnitSize int `json:"unit_size,omitempty"`

	// NoColumnUnits opts out of geometry-column units. By default an
	// exact, unbudgeted sweep at the default unit size shards by geometry
	// column — every cache size sharing (line size, associativity, pad)
	// rides one unit — so the solving worker sees the whole size ladder
	// and the geometry-parametric closed-form tier answers most of it
	// from a few anchor solves. Counts are bit-identical either way (the
	// merged report never changes); this knob only restores the finer
	// per-candidate stealing granularity.
	NoColumnUnits bool `json:"no_column_units,omitempty"`

	// Prune turns on the advisor-driven search mode: a cheap sampled pass
	// over the geometry grid ranks candidates, advisor.Frontier keeps the
	// non-dominated prefix, and only survivors are sharded for the real
	// solve. Dominated candidates appear in the merged report with their
	// cheap-tier ratio and Pruned provenance. Rejected for pad grids (a
	// pad changes the layout, not the geometry the advisor ranks) and
	// incompatible with bit-identity checks by construction.
	Prune       bool    `json:"prune,omitempty"`
	PruneKeep   int     `json:"prune_keep,omitempty"`   // frontier floor (default 4)
	PruneMargin float64 `json:"prune_margin,omitempty"` // percent over best (default 10)
}

// pruneKeep and pruneMargin are the effective frontier knobs with
// defaults applied. The prune pass and the sweep id share them, so a spec
// spelling the default explicitly aliases one that leaves it zero.
func (s *SweepSpec) pruneKeep() int {
	if s.PruneKeep < 1 {
		return 4
	}
	return s.PruneKeep
}

func (s *SweepSpec) pruneMargin() float64 {
	if s.PruneMargin <= 0 {
		return 10
	}
	return s.PruneMargin
}

// grid materialises the candidate grid in deterministic order — the order
// is part of the sweep's content address and of the merged report.
// Invalid geometries stay in the grid and fail per candidate, exactly as
// in `cachette sweep`.
func (s *SweepSpec) grid() ([]WireCandidate, error) {
	css := s.CacheSizes
	if len(css) == 0 {
		css = []int64{4096, 8192, 16384, 32768, 65536}
	}
	lss := s.LineSizes
	if len(lss) == 0 {
		lss = []int64{32}
	}
	kss := s.Assocs
	if len(kss) == 0 {
		kss = []int{1, 2, 4}
	}
	padList := s.Pads
	if s.PadArray == "" && len(padList) > 0 {
		return nil, fmt.Errorf("pads given without pad_array")
	}
	if len(padList) == 0 {
		padList = []int64{0}
	}
	var wcs []WireCandidate
	for _, cs := range css {
		for _, ls := range lss {
			for _, k := range kss {
				cfg := cache.Config{SizeBytes: cs, LineBytes: ls, Assoc: k}
				for _, pad := range padList {
					wc := WireCandidate{Label: cfg.String(),
						CacheBytes: cs, LineBytes: ls, Assoc: k}
					if pad > 0 {
						wc.Label = fmt.Sprintf("%s+pad%d", cfg.String(), pad)
						wc.PadArray, wc.Pad = s.PadArray, pad
					}
					wcs = append(wcs, wc)
				}
			}
		}
	}
	return wcs, nil
}

// WireCandidate is the explicit wire form of one cme.Candidate: geometry
// plus optional padding layout, self-contained so a worker reconstructs
// the exact candidate without sharing memory with the coordinator.
type WireCandidate struct {
	Label      string `json:"label"`
	CacheBytes int64  `json:"cache_bytes"`
	LineBytes  int64  `json:"line_bytes"`
	Assoc      int    `json:"assoc"`
	PadArray   string `json:"pad_array,omitempty"`
	Pad        int64  `json:"pad,omitempty"`
}

// candidate reconstructs the solver candidate.
func (wc WireCandidate) candidate() cme.Candidate {
	c := cme.Candidate{Label: wc.Label,
		Config: cache.Config{SizeBytes: wc.CacheBytes, LineBytes: wc.LineBytes, Assoc: wc.Assoc}}
	if wc.Pad > 0 && wc.PadArray != "" {
		c.Layout = &layout.Options{PadOf: map[string]int64{wc.PadArray: wc.Pad}}
	}
	return c
}

// candidates converts a wire slice for the solver.
func candidates(wcs []WireCandidate) []cme.Candidate {
	out := make([]cme.Candidate, len(wcs))
	for i, wc := range wcs {
		out[i] = wc.candidate()
	}
	return out
}

// RefRow is the per-reference row of a candidate result: the raw counts,
// so bit-identity between a distributed and a single-process run is
// checkable from the merged report alone.
type RefRow struct {
	ID       string  `json:"id"`
	Volume   int64   `json:"volume"`
	Analyzed int64   `json:"analyzed"`
	Hits     int64   `json:"hits"`
	Cold     int64   `json:"cold"`
	Repl     int64   `json:"repl"`
	Tier     string  `json:"tier"`
	Ratio    float64 `json:"ratio,omitempty"`
}

// Row is one candidate's merged result. It deliberately carries no
// timing or budget-spend fields: everything in a Row is deterministic for
// an unbudgeted sweep, which is what makes the merged report
// byte-comparable across worker counts and failure schedules.
type Row struct {
	Label           string   `json:"label"`
	CacheBytes      int64    `json:"cache_bytes"`
	LineBytes       int64    `json:"line_bytes"`
	Assoc           int      `json:"assoc"`
	MissRatioPct    float64  `json:"miss_ratio_pct"`
	EstimatedMisses float64  `json:"estimated_misses"`
	Accesses        int64    `json:"accesses"`
	Tier            string   `json:"tier,omitempty"`
	Degraded        bool     `json:"degraded,omitempty"`
	Coverage        float64  `json:"coverage,omitempty"`
	Refs            []RefRow `json:"refs,omitempty"`
	Error           string   `json:"error,omitempty"`
	// Pruned marks a candidate the advisor frontier pass eliminated: the
	// ratio is the cheap-tier estimate, and no exact solve was spent.
	Pruned bool `json:"pruned,omitempty"`
}

// SolveLocal runs the sweep in this process — one Prepare, one
// SolveBatch over the whole grid — and renders the same wire rows a
// coordinator merges. It is the ground truth for `dist coordinate
// -check` and the 1-worker baseline for `bench -dist`: a distributed run
// is correct iff its merged rows match these bytes. Prune is rejected
// (pruned rows carry advisor estimates, which a plain batch never
// produces, so the comparison is meaningless by construction).
func (s *SweepSpec) SolveLocal(ctx context.Context, workers int) ([]Row, error) {
	if s.Prune {
		return nil, errors.New("dist: SolveLocal is incompatible with prune")
	}
	wcs, err := s.grid()
	if err != nil {
		return nil, err
	}
	np, err := s.ProgramSpec.build(0)
	if err != nil {
		return nil, err
	}
	prep, err := cme.Prepare(np, s.options())
	if err != nil {
		return nil, err
	}
	plan, err := s.plan()
	if err != nil {
		return nil, err
	}
	reps, err := prep.SolveBatch(ctx, candidates(wcs), cme.BatchOptions{
		Plan: plan, Workers: workers, Budget: s.SolveSpec.budget(),
	})
	var be *cme.BatchError
	if err != nil && !errors.As(err, &be) {
		return nil, err
	}
	return RenderRows(wcs, reps, err), nil
}

// RenderRows renders a solve outcome into wire rows, index-aligned with
// cands. It is the single rendering path shared by workers and by
// single-process baselines, so "bit-identical" is a byte comparison of
// the rendered rows, not a field-by-field argument.
func RenderRows(cands []WireCandidate, reps []*cme.Report, err error) []Row {
	var batch *cme.BatchError
	errors.As(err, &batch)
	rows := make([]Row, len(cands))
	for i, wc := range cands {
		row := Row{Label: wc.Label, CacheBytes: wc.CacheBytes, LineBytes: wc.LineBytes, Assoc: wc.Assoc}
		var rep *cme.Report
		if i < len(reps) {
			rep = reps[i]
		}
		if rep == nil {
			switch {
			case batch != nil && batch.Errs[i] != nil:
				// Strip the solver's "candidate %d (label): " wrapper: the
				// index is batch-local, so it would differ between a unit's
				// sub-batch and the single-process full batch and break the
				// byte comparison. One unwrap removes exactly that layer.
				e := batch.Errs[i]
				if u := errors.Unwrap(e); u != nil {
					e = u
				}
				row.Error = e.Error()
			case err != nil:
				row.Error = err.Error()
			default:
				row.Error = "no report"
			}
			rows[i] = row
			continue
		}
		row.MissRatioPct = rep.MissRatio()
		row.EstimatedMisses = rep.EstimatedMisses()
		row.Accesses = rep.TotalAccesses()
		row.Tier = rep.Tier.String()
		row.Degraded = rep.Degraded
		row.Coverage = rep.Coverage()
		for _, rr := range rep.Refs {
			row.Refs = append(row.Refs, RefRow{ID: rr.Ref.ID, Volume: rr.Volume,
				Analyzed: rr.Analyzed, Hits: rr.Hits, Cold: rr.Cold, Repl: rr.Repl,
				Tier: rr.Tier.String(), Ratio: rr.Ratio})
		}
		rows[i] = row
	}
	return rows
}

// ReportSchemaV1 identifies the merged-report JSON document.
const ReportSchemaV1 = "cachette/dist-report/v1"

// MergedReport is the deterministic merge of a sweep's unit results: one
// row per candidate, in grid order.
type MergedReport struct {
	Schema     string     `json:"schema"`
	Sweep      string     `json:"sweep"`
	Program    string     `json:"program"`
	Candidates int        `json:"candidates"`
	Rows       []Row      `json:"rows"`
	Stats      SweepStats `json:"stats"`
}
