package dist

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"cachemodel/internal/obs"
)

// TestTracedSweepWithSteal is the tracing end-to-end: a traced sweep
// solved by two workers across a stolen lease must come back as ONE
// trace — every unit timeline complete and gap-free (submitted through
// merged, the zombie's unit showing the steal), every worker span shard
// carrying the sweep's trace id and linking to the unit span the
// coordinator minted, and the exported trace-event file validating with
// the steal visible.
func TestTracedSweepWithSteal(t *testing.T) {
	spec := testSpec()
	want := mustJSON(t, baselineRows(t, spec))
	c, srv := newTestCoordinator(t, Options{LeaseTTL: 100 * time.Millisecond})

	col := obs.New("submit")
	ctx := obs.NewContext(context.Background(), col)
	st, err := c.AddSweep(ctx, spec)
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	if st.TraceID != col.TraceID() {
		t.Fatalf("sweep trace %q, want submitter's %q", st.TraceID, col.TraceID())
	}

	// A zombie worker takes a lease and dies without reporting: its unit
	// must be stolen and the trace must still close over the gap.
	lr := c.Lease("zombie")
	if lr.Status != LeaseUnit {
		t.Fatalf("zombie lease status %q, want unit", lr.Status)
	}
	if tid, _, ok := obs.ParseTraceparent(lr.Traceparent); !ok || tid != st.TraceID {
		t.Fatalf("lease traceparent %q does not carry sweep trace %q", lr.Traceparent, st.TraceID)
	}
	stolenUnit := lr.Unit.Key

	runWorkers(t, srv.URL, 2, nil)

	rep, err := c.Report(st.Sweep)
	if err != nil {
		t.Fatalf("Report: %v", err)
	}
	if got := mustJSON(t, rep.Rows); got != want {
		t.Errorf("traced rows differ from untraced baseline (tracing broke bit-identity)")
	}

	tls, err := c.Timelines(st.Sweep)
	if err != nil {
		t.Fatalf("Timelines: %v", err)
	}
	sawStolen := false
	for _, tl := range tls {
		if tl.SpanID == "" {
			t.Errorf("unit %.12s: no span id on a traced sweep", tl.Unit)
		}
		if len(tl.Events) < 4 { // submitted, queued, leased, ... merged
			t.Fatalf("unit %.12s: only %d events", tl.Unit, len(tl.Events))
		}
		if tl.Events[0].State != TimelineSubmitted {
			t.Errorf("unit %.12s starts with %q, want submitted", tl.Unit, tl.Events[0].State)
		}
		if last := tl.Events[len(tl.Events)-1]; last.State != TimelineMerged {
			t.Errorf("unit %.12s ends with %q, want merged", tl.Unit, last.State)
		}
		for i := 1; i < len(tl.Events); i++ {
			if tl.Events[i].AtMs < tl.Events[i-1].AtMs {
				t.Errorf("unit %.12s: timeline goes backwards at %d", tl.Unit, i)
			}
			// Slow runs steal from live workers too; the zombie's unit
			// must show its steal regardless.
			if tl.Events[i].State == TimelineStolen && tl.Unit == stolenUnit {
				sawStolen = true
			}
		}
	}
	if !sawStolen {
		t.Errorf("zombie's unit %.12s has no stolen event", stolenUnit)
	}

	// Worker span shards: posted with completions, stitched to the
	// coordinator's unit spans by parent id, on the sweep's trace.
	spanIDs := map[string]bool{}
	for _, tl := range tls {
		spanIDs[tl.SpanID] = true
	}
	c.mu.Lock()
	ss := c.sweeps[st.Sweep]
	shards := 0
	for _, u := range ss.units {
		for _, sh := range u.shards {
			shards++
			if sh.TraceID != ss.traceID {
				t.Errorf("shard %q trace %q, want sweep trace %q", sh.Name, sh.TraceID, ss.traceID)
			}
			if !spanIDs[sh.Parent] {
				t.Errorf("shard %q parent %q is not a unit span", sh.Name, sh.Parent)
			}
			if len(sh.Children) == 0 {
				t.Errorf("shard %q has no solve child span", sh.Name)
			}
		}
	}
	c.mu.Unlock()
	if shards == 0 {
		t.Fatalf("no worker span shards recorded")
	}

	// The exported trace-event file is well-formed and shows the steal.
	tf, err := c.Trace(st.Sweep)
	if err != nil {
		t.Fatalf("Trace: %v", err)
	}
	blob, err := json.Marshal(tf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := obs.ValidateTraceFile(blob)
	if err != nil {
		t.Fatalf("ValidateTraceFile: %v", err)
	}
	if !got.HasEvent(TimelineStolen) {
		t.Errorf("trace file has no stolen event")
	}
	if got.Metadata["trace_id"] != st.TraceID {
		t.Errorf("trace file trace_id %v, want %q", got.Metadata["trace_id"], st.TraceID)
	}

	// And the run-report surface counts what happened.
	oc := c.Outcomes()
	if oc.TimelineEvents == 0 {
		t.Errorf("outcomes report zero timeline events")
	}
	if len(oc.Traces) != 1 || oc.Traces[0] != st.TraceID {
		t.Errorf("outcomes traces %v, want [%s]", oc.Traces, st.TraceID)
	}
}

// TestUntracedSweepStaysDark: without a submitter collector, a
// traceparent header, or Options.Trace, no span ids are minted and
// leases carry no traceparent — workers solve uninstrumented.
func TestUntracedSweepStaysDark(t *testing.T) {
	c, err := New(Options{})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.AddSweep(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	if st.TraceID != "" {
		t.Errorf("untraced sweep has trace id %q", st.TraceID)
	}
	lr := c.Lease("w0")
	if lr.Status != LeaseUnit {
		t.Fatalf("lease status %q", lr.Status)
	}
	if lr.Traceparent != "" {
		t.Errorf("untraced lease carries traceparent %q", lr.Traceparent)
	}
	tls, err := c.Timelines(st.Sweep)
	if err != nil {
		t.Fatal(err)
	}
	for _, tl := range tls {
		if tl.SpanID != "" {
			t.Errorf("untraced unit %.12s has span id %q", tl.Unit, tl.SpanID)
		}
		if len(tl.Events) == 0 {
			t.Errorf("unit %.12s: timelines should record even untraced", tl.Unit)
		}
	}
}

// TestOptionsTraceMintsTrace: Options.Trace turns tracing on for
// submissions that arrive with no trace context of their own.
func TestOptionsTraceMintsTrace(t *testing.T) {
	c, err := New(Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.AddSweep(context.Background(), testSpec())
	if err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	if st.TraceID == "" {
		t.Fatalf("Options.Trace did not mint a trace id")
	}
	if lr := c.Lease("w0"); lr.Traceparent == "" {
		t.Errorf("traced lease missing traceparent")
	}
}

// TestTraceparentHeaderPropagation: an HTTP sweep submission carrying a
// traceparent header joins the submitter's trace, and the trace travels
// to workers through their leases.
func TestTraceparentHeaderPropagation(t *testing.T) {
	_, srv := newTestCoordinator(t, Options{})
	tid, sid := obs.NewTraceID(), obs.NewSpanID()
	cl := &Client{Base: srv.URL}
	ctx := obs.NewContext(context.Background(), obs.NewWithTrace("remote", tid, sid))
	st, err := cl.Submit(ctx, testSpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.TraceID != tid {
		t.Fatalf("sweep trace %q, want header's %q", st.TraceID, tid)
	}
	lr, err := cl.Lease(ctx, "w0")
	if err != nil {
		t.Fatalf("Lease: %v", err)
	}
	if gt, _, ok := obs.ParseTraceparent(lr.Traceparent); !ok || gt != tid {
		t.Fatalf("lease traceparent %q, want trace %q", lr.Traceparent, tid)
	}
	// Unblock shutdown for the cleanup path.
	if err := cl.Complete(ctx, "w0", lr.Sweep, lr.Unit.Key, nil, "zombie test exit", nil); err != nil {
		t.Logf("complete: %v", err)
	}
}

// TestStatusFleetView: queue depth, in-flight leases, per-worker lease
// age and the straggler list under a fake clock.
func TestStatusFleetView(t *testing.T) {
	now := time.Unix(2000, 0)
	clock := func() time.Time { return now }
	c, err := New(Options{LeaseTTL: 10 * time.Second, now: clock})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddSweep(context.Background(), testSpec()); err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	total := c.Status().Units
	lr := c.Lease("w0")
	if lr.Status != LeaseUnit {
		t.Fatalf("lease status %q", lr.Status)
	}

	st := c.Status()
	if st.InFlight != 1 || st.QueueDepth != total-1 {
		t.Errorf("in-flight %d queue %d, want 1 and %d", st.InFlight, st.QueueDepth, total-1)
	}
	if ws := st.Workers["w0"]; ws.CurrentUnit != lr.Unit.Key {
		t.Errorf("worker current unit %q, want %q", ws.CurrentUnit, lr.Unit.Key)
	}
	if len(st.Stragglers) != 0 {
		t.Errorf("fresh lease already a straggler")
	}

	// Heartbeat keeps the lease alive past a full TTL: now a straggler.
	now = now.Add(8 * time.Second)
	if !c.Heartbeat("w0", lr.Sweep, lr.Unit.Key) {
		t.Fatalf("heartbeat rejected")
	}
	now = now.Add(4 * time.Second) // age 12s > TTL, extended lease still live
	st = c.Status()
	if len(st.Stragglers) != 1 {
		t.Fatalf("stragglers %d, want 1", len(st.Stragglers))
	}
	sg := st.Stragglers[0]
	if sg.Unit != lr.Unit.Key || sg.Worker != "w0" || sg.AgeMs != 12000 {
		t.Errorf("straggler %+v, want unit %.12s worker w0 age 12000", sg, lr.Unit.Key)
	}
	if ws := st.Workers["w0"]; ws.LeaseAgeMs != 12000 {
		t.Errorf("worker lease age %d, want 12000", ws.LeaseAgeMs)
	}
}

// TestTopStatusEndpoint: the fleet view is served over HTTP for
// `cachette top`.
func TestTopStatusEndpoint(t *testing.T) {
	c, srv := newTestCoordinator(t, Options{})
	if _, err := c.AddSweep(context.Background(), testSpec()); err != nil {
		t.Fatalf("AddSweep: %v", err)
	}
	c.Lease("w0")
	st, err := (&Client{Base: srv.URL}).Status(context.Background())
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if st.InFlight != 1 || st.QueueDepth == 0 {
		t.Errorf("status over HTTP: in-flight %d queue %d", st.InFlight, st.QueueDepth)
	}
}
