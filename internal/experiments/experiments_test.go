package experiments

import (
	"strings"
	"testing"
)

// tiny is a very small scale for tests.
var tiny = Scale{
	Name:    "tiny",
	HydroJN: 10, HydroKN: 10,
	MGRIDM: 6,
	MMTN:   12, MMTBJ: 6, MMTBK: 6,
	TomcatvN: 10, TomcatvIters: 1,
	SwimN: 10, SwimCycles: 1,
	AppluN: 6, AppluIt: 1,
	Cache: Quick.Cache,
	Plan:  Quick.Plan,
}

// TestTable2RecoversCorpus: the classifier must recover the paper's
// per-program actual counts from the synthetic corpus; A-able matches
// except for the three internally inconsistent rows (hydro2d, CSS, MTSI),
// where the strict rule loses exactly one call each.
func TestTable2RecoversCorpus(t *testing.T) {
	rows := RunTable2()
	if len(rows) != 20 {
		t.Fatalf("rows = %d", len(rows))
	}
	infeasible := map[string]bool{"hydro2d": true, "CSS": true, "MTSI": true}
	for i, r := range rows {
		want := Table2Targets[i]
		if r.PAble != want.PAble || r.RAble != want.RAble || r.NAble != want.NAble {
			t.Errorf("%s: P/R/N = %d/%d/%d, want %d/%d/%d",
				r.Program, r.PAble, r.RAble, r.NAble, want.PAble, want.RAble, want.NAble)
		}
		if r.Calls != want.Calls {
			t.Errorf("%s: calls = %d, want %d", r.Program, r.Calls, want.Calls)
		}
		wantA := want.AAble
		if infeasible[r.Program] {
			wantA--
		}
		if r.AAble != wantA {
			t.Errorf("%s: A-able = %d, want %d", r.Program, r.AAble, wantA)
		}
	}
}

// TestTable3Shape: at any scale, Hydro and MGRID must be analysed exactly
// and MMT conservatively (the paper's Table 3 shape).
func TestTable3Shape(t *testing.T) {
	rows, err := RunTable3(tiny)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d, want 9", len(rows))
	}
	for _, r := range rows {
		switch r.Program {
		case "Hydro", "MGRID":
			if r.FindMisses != r.SimMisses {
				t.Errorf("%s %d-way: Find %d != Sim %d", r.Program, r.Assoc, r.FindMisses, r.SimMisses)
			}
		case "MMT":
			if r.FindMisses < r.SimMisses {
				t.Errorf("MMT %d-way: Find %d < Sim %d (must overestimate)", r.Assoc, r.FindMisses, r.SimMisses)
			}
		}
	}
}

// TestTable4Errors: estimates must stay within a few percentage points of
// the simulator at the tiny scale (w = 0.05 per reference).
func TestTable4Errors(t *testing.T) {
	rows, err := RunTable4(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AbsErr > 6 {
			t.Errorf("%s %d-way: AbsErr %.2f too large", r.Program, r.Assoc, r.AbsErr)
		}
	}
}

// TestTable5Inventory: Table 5's structural facts hold at any size.
func TestTable5Inventory(t *testing.T) {
	rows, err := RunTable5(tiny)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int{"Tomcatv": 1, "Swim": 4, "Applu": 16}
	for _, r := range rows {
		if r.Subroutines != want[r.Program] {
			t.Errorf("%s: subroutines = %d, want %d", r.Program, r.Subroutines, want[r.Program])
		}
	}
}

// TestTable6Errors: whole-program estimates within a few percentage points.
func TestTable6Errors(t *testing.T) {
	rows, err := RunTable6(tiny)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.AbsErr > 6 {
			t.Errorf("%s %d-way: AbsErr %.2f too large", r.Program, r.Assoc, r.AbsErr)
		}
	}
}

// TestTable7Shape: over the first four configurations at shrink 16, the
// estimate must be closer to the simulator than the probabilistic
// baseline on average.
func TestTable7Shape(t *testing.T) {
	rows, err := RunTable7(16, Table7Configs[:4])
	if err != nil {
		t.Fatal(err)
	}
	var sumP, sumE float64
	for _, r := range rows {
		sumP += r.DeltaP
		sumE += r.DeltaE
	}
	if sumE > sumP {
		t.Errorf("EstimateMisses total error %.2f exceeds probabilistic %.2f", sumE, sumP)
	}
}

// TestFormatters: smoke the renderers.
func TestFormatters(t *testing.T) {
	var sb strings.Builder
	FormatTable2(&sb, RunTable2())
	r3, _ := RunTable3(tiny)
	FormatTable3(&sb, r3)
	r5, _ := RunTable5(tiny)
	FormatTable5(&sb, r5)
	out := sb.String()
	for _, want := range []string{"Table 2", "Table 3", "Table 5", "Hydro", "Applu", "TOTAL"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted output missing %q", want)
		}
	}
}
