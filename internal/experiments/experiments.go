// Package experiments regenerates every table of the paper's evaluation
// (§6 and §7): Table 2 (call classification), Table 3 (FindMisses vs
// simulator on the kernels), Table 4 (EstimateMisses on the kernels),
// Table 5 (whole-program statistics), Table 6 (EstimateMisses vs simulator
// on the whole programs) and Table 7 (probabilistic baseline vs
// EstimateMisses on MMT). The same entry points back the cachette CLI and
// the root benchmark suite.
package experiments

import (
	"fmt"
	"io"
	"strings"
	"time"

	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/prob"
	"cachemodel/internal/reuse"
	"cachemodel/internal/sampling"
	"cachemodel/internal/trace"
)

// Scale sets the problem sizes. The paper's sizes take minutes (its own
// FindMisses runs took up to 100 s and its simulations hours); Quick keeps
// every experiment under a few seconds for CI.
type Scale struct {
	Name                   string
	HydroJN, HydroKN       int64
	MGRIDM                 int64
	MMTN, MMTBJ, MMTBK     int64
	TomcatvN, TomcatvIters int64
	SwimN, SwimCycles      int64
	AppluN, AppluIt        int64
	// Cache for Tables 3, 4 and 6 (the paper: 32 KB, 32 B lines).
	Cache func(assoc int) cache.Config
	// Plan for EstimateMisses (the paper: c = 95%, w = 0.05).
	Plan sampling.Plan
}

// Quick is a seconds-scale configuration for tests and default CLI runs.
// The cache is scaled down with the problem so that the miss behaviour
// stays interesting.
var Quick = Scale{
	Name:    "quick",
	HydroJN: 24, HydroKN: 24,
	MGRIDM: 12,
	MMTN:   24, MMTBJ: 12, MMTBK: 12,
	TomcatvN: 24, TomcatvIters: 2,
	SwimN: 24, SwimCycles: 2,
	AppluN: 8, AppluIt: 1,
	Cache: func(assoc int) cache.Config {
		return cache.Config{SizeBytes: 4 * 1024, LineBytes: 32, Assoc: assoc}
	},
	Plan: sampling.Plan{C: 0.95, W: 0.05},
}

// Medium sits between CI and the paper: tens of seconds.
var Medium = Scale{
	Name:    "medium",
	HydroJN: 60, HydroKN: 60,
	MGRIDM: 32,
	MMTN:   60, MMTBJ: 30, MMTBK: 30,
	TomcatvN: 64, TomcatvIters: 4,
	SwimN: 64, SwimCycles: 3,
	AppluN: 10, AppluIt: 2,
	Cache: cache.Default32K,
	Plan:  sampling.Plan{C: 0.95, W: 0.05},
}

// Paper uses the paper's kernel sizes (Hydro/MMT at 100, MGRID at 100) and
// whole-program sizes reduced to what finishes in minutes rather than the
// paper's five-hour simulations.
var Paper = Scale{
	Name:    "paper",
	HydroJN: 100, HydroKN: 100,
	MGRIDM: 100,
	MMTN:   100, MMTBJ: 100, MMTBK: 50,
	TomcatvN: 128, TomcatvIters: 10,
	SwimN: 128, SwimCycles: 5,
	AppluN: 12, AppluIt: 2,
	Cache: cache.Default32K,
	Plan:  sampling.Plan{C: 0.95, W: 0.05},
}

// Scales maps names to the predefined scales.
var Scales = map[string]Scale{"quick": Quick, "medium": Medium, "paper": Paper}

// prepare inlines, normalises and lays out a program.
func prepare(p *ir.Program) (*ir.NProgram, error) {
	flat, _, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		return nil, fmt.Errorf("%s: inline: %w", p.Name, err)
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		return nil, fmt.Errorf("%s: normalize: %w", p.Name, err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		return nil, fmt.Errorf("%s: layout: %w", p.Name, err)
	}
	np.Name = p.Name
	return np, nil
}

func assocName(k int) string {
	if k == 1 {
		return "direct"
	}
	return fmt.Sprintf("%d-way", k)
}

// ---------------------------------------------------------------------
// Table 3: FindMisses vs simulator on Hydro, MGRID and MMT.

// Table3Row is one line of Table 3.
type Table3Row struct {
	Program    string
	Assoc      int
	SimMisses  int64
	FindMisses int64
	SimRatio   float64 // percent
	FindRatio  float64 // percent
	AbsErr     float64 // percentage points
	Secs       float64 // FindMisses execution time
	SimSecs    float64
}

func kernelPrograms(sc Scale) []*ir.Program {
	return []*ir.Program{
		kernels.Hydro(sc.HydroJN, sc.HydroKN),
		kernels.MGRID(sc.MGRIDM),
		kernels.MMT(sc.MMTN, sc.MMTBJ, sc.MMTBK),
	}
}

// RunTable3 reproduces Table 3 at the given scale.
func RunTable3(sc Scale) ([]Table3Row, error) {
	var rows []Table3Row
	for _, p := range kernelPrograms(sc) {
		np, err := prepare(p)
		if err != nil {
			return nil, err
		}
		vecs := reuse.Generate(np, sc.Cache(1), reuse.Options{})
		for _, assoc := range []int{1, 2, 4} {
			cfg := sc.Cache(assoc)
			t0 := time.Now()
			sim := trace.Simulate(np, cfg)
			simSecs := time.Since(t0).Seconds()
			a, err := cme.New(np, cfg, cme.Options{Vectors: vecs})
			if err != nil {
				return nil, err
			}
			rep := a.FindMisses()
			row := Table3Row{
				Program:    p.Name,
				Assoc:      assoc,
				SimMisses:  sim.Misses,
				FindMisses: rep.ExactMisses(),
				SimRatio:   sim.MissRatio(),
				FindRatio:  rep.MissRatio(),
				Secs:       rep.Elapsed.Seconds(),
				SimSecs:    simSecs,
			}
			row.AbsErr = abs(row.FindRatio - row.SimRatio)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatTable3 renders Table 3 in the paper's layout.
func FormatTable3(w io.Writer, rows []Table3Row) {
	fmt.Fprintf(w, "Table 3: cache misses from FindMisses and the simulator\n")
	fmt.Fprintf(w, "%-10s %-7s %12s %12s %10s %10s %7s %9s %9s\n",
		"Program", "Cache", "Sim#Miss", "Find#Miss", "Sim%MR", "Find%MR", "AbsErr", "Find(s)", "Sim(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-7s %12d %12d %10.2f %10.2f %7.2f %9.2f %9.2f\n",
			r.Program, assocName(r.Assoc), r.SimMisses, r.FindMisses,
			r.SimRatio, r.FindRatio, r.AbsErr, r.Secs, r.SimSecs)
	}
}

// ---------------------------------------------------------------------
// Table 4: EstimateMisses on the kernels.

// Table4Row is one line of Table 4.
type Table4Row struct {
	Program  string
	Assoc    int
	SimRatio float64
	EstRatio float64
	AbsErr   float64
	Secs     float64
}

// RunTable4 reproduces Table 4 (c and w from the scale's plan).
func RunTable4(sc Scale) ([]Table4Row, error) {
	var rows []Table4Row
	for _, p := range kernelPrograms(sc) {
		np, err := prepare(p)
		if err != nil {
			return nil, err
		}
		vecs := reuse.Generate(np, sc.Cache(1), reuse.Options{})
		for _, assoc := range []int{1, 2, 4} {
			cfg := sc.Cache(assoc)
			sim := trace.Simulate(np, cfg)
			a, err := cme.New(np, cfg, cme.Options{Vectors: vecs})
			if err != nil {
				return nil, err
			}
			rep, err := a.EstimateMisses(sc.Plan)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table4Row{
				Program:  p.Name,
				Assoc:    assoc,
				SimRatio: sim.MissRatio(),
				EstRatio: rep.MissRatio(),
				AbsErr:   abs(rep.MissRatio() - sim.MissRatio()),
				Secs:     rep.Elapsed.Seconds(),
			})
		}
	}
	return rows, nil
}

// FormatTable4 renders Table 4.
func FormatTable4(w io.Writer, rows []Table4Row) {
	fmt.Fprintf(w, "Table 4: cache misses from EstimateMisses (c=95%%, w=0.05)\n")
	fmt.Fprintf(w, "%-10s %-7s %10s %10s %7s %9s\n",
		"Program", "Cache", "Sim%MR", "Est%MR", "AbsErr", "Exe(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-7s %10.2f %10.2f %7.2f %9.2f\n",
			r.Program, assocName(r.Assoc), r.SimRatio, r.EstRatio, r.AbsErr, r.Secs)
	}
}

// ---------------------------------------------------------------------
// Table 5: whole-program statistics.

// Table5Row is one line of Table 5.
type Table5Row struct {
	Program     string
	Subroutines int
	Calls       int
	References  int
	NRefs       int // references after inlining + normalisation
}

// RunTable5 reports the statistics of the three whole-program models.
func RunTable5(sc Scale) ([]Table5Row, error) {
	progs := []*ir.Program{
		kernels.Tomcatv(sc.TomcatvN, sc.TomcatvIters),
		kernels.Swim(sc.SwimN, sc.SwimCycles),
		kernels.Applu(sc.AppluN, sc.AppluIt),
	}
	var rows []Table5Row
	for _, p := range progs {
		st := p.CollectStats()
		np, err := prepare(p)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table5Row{
			Program:     p.Name,
			Subroutines: st.Subroutines,
			Calls:       st.Calls,
			References:  st.References,
			NRefs:       len(np.Refs),
		})
	}
	return rows, nil
}

// FormatTable5 renders Table 5.
func FormatTable5(w io.Writer, rows []Table5Row) {
	fmt.Fprintf(w, "Table 5: three whole programs (model statistics)\n")
	fmt.Fprintf(w, "%-10s %12s %8s %12s %12s\n", "Program", "#subroutines", "#calls", "#references", "#refs-inlined")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %12d %8d %12d %12d\n", r.Program, r.Subroutines, r.Calls, r.References, r.NRefs)
	}
}

// ---------------------------------------------------------------------
// Table 6: EstimateMisses vs simulator on the whole programs.

// Table6Row is one line of Table 6.
type Table6Row struct {
	Program  string
	Assoc    int
	SimRatio float64
	EstRatio float64
	AbsErr   float64
	ExeSecs  float64
	SimSecs  float64
}

// RunTable6 reproduces Table 6 at the given scale.
func RunTable6(sc Scale) ([]Table6Row, error) {
	progs := []*ir.Program{
		kernels.Tomcatv(sc.TomcatvN, sc.TomcatvIters),
		kernels.Swim(sc.SwimN, sc.SwimCycles),
		kernels.Applu(sc.AppluN, sc.AppluIt),
	}
	var rows []Table6Row
	for _, p := range progs {
		np, err := prepare(p)
		if err != nil {
			return nil, err
		}
		vecs := reuse.Generate(np, sc.Cache(1), reuse.Options{})
		for _, assoc := range []int{1, 2, 4} {
			cfg := sc.Cache(assoc)
			t0 := time.Now()
			sim := trace.Simulate(np, cfg)
			simSecs := time.Since(t0).Seconds()
			a, err := cme.New(np, cfg, cme.Options{Vectors: vecs})
			if err != nil {
				return nil, err
			}
			rep, err := a.EstimateMisses(sc.Plan)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table6Row{
				Program:  p.Name,
				Assoc:    assoc,
				SimRatio: sim.MissRatio(),
				EstRatio: rep.MissRatio(),
				AbsErr:   abs(rep.MissRatio() - sim.MissRatio()),
				ExeSecs:  rep.Elapsed.Seconds(),
				SimSecs:  simSecs,
			})
		}
	}
	return rows, nil
}

// FormatTable6 renders Table 6.
func FormatTable6(w io.Writer, rows []Table6Row) {
	fmt.Fprintf(w, "Table 6: whole programs, EstimateMisses vs simulator (c=95%%, w=0.05)\n")
	fmt.Fprintf(w, "%-10s %-7s %9s %9s %7s %9s %9s\n",
		"Program", "Cache", "Sim%MR", "E.M%MR", "AbsErr", "Exe(s)", "Sim(s)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %-7s %9.2f %9.2f %7.2f %9.2f %9.2f\n",
			r.Program, assocName(r.Assoc), r.SimRatio, r.EstRatio, r.AbsErr, r.ExeSecs, r.SimSecs)
	}
}

// ---------------------------------------------------------------------
// Table 7: probabilistic baseline vs EstimateMisses on MMT.

// Table7Config is one cache/blocking configuration of Table 7. Cs is in
// kilobytes and Ls in array elements (the paper's §2 units; REAL*8 gives
// LineBytes = 8·Ls).
type Table7Config struct {
	N, BJ, BK int64
	CsKB      int64
	LsElems   int64
	Assoc     int
}

// Table7Configs are the paper's sixteen rows.
var Table7Configs = []Table7Config{
	{200, 100, 100, 16, 8, 2},
	{200, 100, 100, 256, 16, 2},
	{200, 200, 100, 32, 8, 1},
	{200, 200, 100, 128, 8, 2},
	{200, 200, 100, 128, 32, 2},
	{200, 50, 200, 16, 4, 1},
	{200, 100, 200, 32, 8, 2},
	{200, 100, 200, 64, 16, 1},
	{400, 100, 100, 16, 8, 2},
	{400, 100, 100, 256, 16, 2},
	{400, 200, 100, 32, 8, 1},
	{400, 200, 100, 128, 8, 2},
	{400, 200, 100, 128, 32, 2},
	{400, 50, 200, 16, 4, 1},
	{400, 100, 200, 32, 8, 2},
	{400, 100, 200, 64, 16, 1},
}

// Table7Row is one line of Table 7.
type Table7Row struct {
	Cfg Table7Config
	// Ran records the effective (shrunk) parameters the row actually ran
	// with.
	Ran      Table7Config
	RealMR   float64 // simulator, percent
	ProbMR   float64
	EstMR    float64
	DeltaP   float64 // absolute error of the probabilistic method, percentage points
	DeltaE   float64 // absolute error of EstimateMisses, percentage points
	ProbSecs float64
	EstSecs  float64
}

// RunTable7 reproduces Table 7. shrink divides the problem sizes (1 =
// paper sizes; 4 gives N∈{50,100} for quick runs, preserving the
// block-to-cache ratios by scaling the cache too).
func RunTable7(shrink int64, configs []Table7Config) ([]Table7Row, error) {
	if shrink < 1 {
		shrink = 1
	}
	var rows []Table7Row
	for _, tc := range configs {
		n, bj, bk := tc.N/shrink, tc.BJ/shrink, tc.BK/shrink
		cfg := cache.Config{
			SizeBytes: tc.CsKB * 1024 / shrink,
			LineBytes: 8 * tc.LsElems,
			Assoc:     tc.Assoc,
		}
		if cfg.SizeBytes%(cfg.LineBytes*int64(cfg.Assoc)) != 0 {
			cfg.SizeBytes += cfg.LineBytes*int64(cfg.Assoc) - cfg.SizeBytes%(cfg.LineBytes*int64(cfg.Assoc))
		}
		ran := Table7Config{N: n, BJ: bj, BK: bk, CsKB: cfg.SizeBytes / 1024, LsElems: tc.LsElems, Assoc: tc.Assoc}
		np, err := prepare(kernels.MMT(n, bj, bk))
		if err != nil {
			return nil, err
		}
		sim := trace.Simulate(np, cfg)
		pr, err := prob.Estimate(np, cfg, prob.Options{})
		if err != nil {
			return nil, err
		}
		a, err := cme.New(np, cfg, cme.Options{})
		if err != nil {
			return nil, err
		}
		est, err := a.EstimateMisses(sampling.Plan{C: 0.95, W: 0.05})
		if err != nil {
			return nil, err
		}
		row := Table7Row{
			Cfg:      tc,
			Ran:      ran,
			RealMR:   sim.MissRatio(),
			ProbMR:   pr.MissRatio(),
			EstMR:    est.MissRatio(),
			ProbSecs: pr.Elapsed.Seconds(),
			EstSecs:  est.Elapsed.Seconds(),
		}
		row.DeltaP = abs(pr.MissRatio() - sim.MissRatio())
		row.DeltaE = abs(est.MissRatio() - sim.MissRatio())
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatTable7 renders Table 7.
func FormatTable7(w io.Writer, rows []Table7Row) {
	fmt.Fprintf(w, "Table 7: probabilistic baseline vs EstimateMisses on MMT (effective sizes)\n")
	fmt.Fprintf(w, "%5s %4s %4s %5s %4s %2s %8s %8s %8s %8s %8s\n",
		"N", "BJ", "BK", "CsKB", "Ls", "k", "Real%MR", "Prob%MR", "Est%MR", "ΔP", "ΔE")
	for _, r := range rows {
		fmt.Fprintf(w, "%5d %4d %4d %5d %4d %2d %8.2f %8.2f %8.2f %8.2f %8.2f\n",
			r.Ran.N, r.Ran.BJ, r.Ran.BK, r.Ran.CsKB, r.Ran.LsElems, r.Ran.Assoc,
			r.RealMR, r.ProbMR, r.EstMR, r.DeltaP, r.DeltaE)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// relErr returns |est − real| / real in percent (capped when real ~ 0).
func relErr(est, real float64) float64 {
	d := abs(est - real)
	if real < 1e-9 {
		if d < 1e-9 {
			return 0
		}
		return 100
	}
	return 100 * d / real
}

// Summary renders every table at the given scale to w.
func Summary(w io.Writer, sc Scale, shrink int64) error {
	steps := []struct {
		name string
		run  func() error
	}{
		{"Table 2", func() error {
			rows := RunTable2()
			FormatTable2(w, rows)
			return nil
		}},
		{"Table 3", func() error {
			rows, err := RunTable3(sc)
			if err != nil {
				return err
			}
			FormatTable3(w, rows)
			return nil
		}},
		{"Table 4", func() error {
			rows, err := RunTable4(sc)
			if err != nil {
				return err
			}
			FormatTable4(w, rows)
			return nil
		}},
		{"Table 5", func() error {
			rows, err := RunTable5(sc)
			if err != nil {
				return err
			}
			FormatTable5(w, rows)
			return nil
		}},
		{"Table 6", func() error {
			rows, err := RunTable6(sc)
			if err != nil {
				return err
			}
			FormatTable6(w, rows)
			return nil
		}},
		{"Table 7", func() error {
			rows, err := RunTable7(shrink, Table7Configs)
			if err != nil {
				return err
			}
			FormatTable7(w, rows)
			return nil
		}},
	}
	for i, s := range steps {
		if i > 0 {
			fmt.Fprintln(w, strings.Repeat("-", 72))
		}
		if err := s.run(); err != nil {
			return fmt.Errorf("%s: %w", s.name, err)
		}
	}
	return nil
}
