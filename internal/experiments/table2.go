package experiments

import (
	"fmt"
	"io"

	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
)

// Table 2 measures the static actual-parameter classifier over the
// SPECfp95 and Perfect Club suites. Those sources are not available here,
// so we reproduce the measurement in two parts:
//
//  1. a deterministic synthetic corpus generator that builds, for each of
//     the paper's twenty programs, a program whose call sites carry the
//     published numbers of propagateable / renameable / non-analysable
//     actuals — the classifier (internal/inline) is then run over the
//     corpus and must recover those numbers, and
//  2. the classifier applied to our own program models (reported in the
//     "model" rows).
//
// Note: the paper's rows for hydro2d and CSS report every call analysable
// while also reporting non-analysable actuals; under the strict rule that
// a call with an N-able actual cannot be inlined, those rows are
// infeasible, and our generator concentrates the N-able actuals in the
// fewest possible calls (see EXPERIMENTS.md).

// Table2Target is one published row of Table 2.
type Table2Target struct {
	Program             string
	PAble, RAble, NAble int
	Calls, AAble        int
}

// Table2Targets are the paper's twenty rows.
var Table2Targets = []Table2Target{
	{"Tomcatv", 0, 0, 0, 0, 0},
	{"swim", 0, 0, 0, 5, 5},
	{"su2cor", 503, 87, 0, 150, 150},
	{"hydro2d", 122, 0, 19, 82, 82},
	{"mgrid", 68, 0, 35, 23, 2},
	{"applu", 79, 0, 0, 23, 23},
	{"apsi", 1601, 0, 210, 186, 118},
	{"fppp", 83, 0, 3, 17, 16},
	{"turb3D", 759, 0, 75, 111, 86},
	{"wave5", 591, 2, 110, 171, 127},
	{"CSS", 2489, 0, 8, 965, 965},
	{"LWSI", 140, 0, 19, 28, 18},
	{"MTSI", 186, 0, 2, 63, 63},
	{"NASI", 236, 0, 237, 75, 41},
	{"OCSI", 620, 0, 48, 244, 209},
	{"SDSI", 189, 18, 49, 129, 103},
	{"SMSI", 321, 0, 41, 53, 38},
	{"SRSI", 242, 0, 176, 50, 13},
	{"TFSI", 137, 0, 91, 44, 13},
	{"WSSI", 836, 127, 7, 185, 179},
}

// Table2Row is one measured row.
type Table2Row struct {
	Program             string
	PAble, RAble, NAble int
	Calls, AAble        int
	TargetAAble         int // the paper's published A-able count
}

// synthesizeCorpusProgram builds a program whose calls carry exactly the
// target classification counts. Three callee shapes cover the classes:
// a matching-dims formal (P-able), a mismatched-leading-dim formal
// (R-able) and an unknown-leading-dim formal (N-able).
func synthesizeCorpusProgram(t Table2Target) *ir.Program {
	p := ir.NewProgram(t.Program)
	main := ir.NewSub("MAIN")
	ap := main.Real8("AP", 10, 10)                    // matches PFORM → P-able
	ar := main.Real8("AR", 20, 20)                    // mismatches RFORM's leading dim → R-able
	an := main.AddLocal(ir.NewArray("AN", 8, -1, 10)) // unknown leading dim → N-able

	// One callee subroutine per (p, r, n) shape, built on demand.
	// Distribute actuals over calls: the N-able actuals go into the
	// non-analysable calls (packed as tightly as feasible), the P/R-able
	// ones are spread over all calls round-robin.
	badCalls := t.Calls - t.AAble
	if t.NAble > 0 && badCalls == 0 {
		badCalls = 1 // infeasible row (hydro2d, CSS): concentrate damage
	}
	type callSpec struct{ p, r, n int }
	specs := make([]callSpec, t.Calls)
	for i := 0; i < t.NAble; i++ {
		specs[i%maxInt(badCalls, 1)].n++
	}
	for i := 0; i < t.PAble; i++ {
		specs[i%maxInt(t.Calls, 1)].p++
	}
	for i := 0; i < t.RAble; i++ {
		specs[i%maxInt(t.Calls, 1)].r++
	}

	calleeCache := map[string]*ir.Subroutine{}
	for _, sp := range specs {
		name := fmt.Sprintf("C_%d_%d_%d", sp.p, sp.r, sp.n)
		sub, ok := calleeCache[name]
		if !ok {
			b := ir.NewSub(name)
			for j := 0; j < sp.p; j++ {
				f := b.Formal(fmt.Sprintf("PF%d", j), 8, 10, 10)
				b.Do("I", ir.Con(1), ir.Con(2)).
					Assign("S", ir.R(f, ir.Var("I"), ir.Con(1))).End()
			}
			for j := 0; j < sp.r; j++ {
				f := b.Formal(fmt.Sprintf("RF%d", j), 8, 10, 10)
				_ = f
			}
			for j := 0; j < sp.n; j++ {
				b.Formal(fmt.Sprintf("NF%d", j), 8, -1, 10)
			}
			sub = b.Build()
			calleeCache[name] = sub
			p.Add(sub)
		}
		args := make([]ir.Arg, 0, sp.p+sp.r+sp.n)
		for j := 0; j < sp.p; j++ {
			args = append(args, ir.ArgVar(ap))
		}
		for j := 0; j < sp.r; j++ {
			args = append(args, ir.ArgVar(ar))
		}
		for j := 0; j < sp.n; j++ {
			args = append(args, ir.ArgVar(an))
		}
		main.Call(sub.Name, args...)
	}
	p.Add(main.Build())
	p.SetMain("MAIN")
	return p
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// RunTable2 builds the synthetic corpus and classifies it.
func RunTable2() []Table2Row {
	var rows []Table2Row
	for _, t := range Table2Targets {
		st := inline.ClassifyProgram(synthesizeCorpusProgram(t))
		rows = append(rows, Table2Row{
			Program: t.Program,
			PAble:   st.PAble, RAble: st.RAble, NAble: st.NAble,
			Calls: st.Calls, AAble: st.Analysable(),
			TargetAAble: t.AAble,
		})
	}
	return rows
}

// FormatTable2 renders the measured Table 2 plus totals.
func FormatTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintf(w, "Table 2: actual parameters and calls (classifier over the synthetic corpus)\n")
	fmt.Fprintf(w, "%-10s %8s %8s %8s %8s %8s %10s\n",
		"Program", "P-able", "R-able", "N-able", "Calls", "A-able", "paperA")
	var tp, tr, tn, tc, ta, tpa int
	for _, r := range rows {
		fmt.Fprintf(w, "%-10s %8d %8d %8d %8d %8d %10d\n",
			r.Program, r.PAble, r.RAble, r.NAble, r.Calls, r.AAble, r.TargetAAble)
		tp += r.PAble
		tr += r.RAble
		tn += r.NAble
		tc += r.Calls
		ta += r.AAble
		tpa += r.TargetAAble
	}
	fmt.Fprintf(w, "%-10s %8d %8d %8d %8d %8d %10d\n", "TOTAL", tp, tr, tn, tc, ta, tpa)
	tot := tp + tr + tn
	if tot > 0 && tc > 0 {
		fmt.Fprintf(w, "%-10s %7.2f%% %7.2f%% %7.2f%% %8s %7.2f%% %9.2f%%\n", "%",
			100*float64(tp)/float64(tot), 100*float64(tr)/float64(tot), 100*float64(tn)/float64(tot),
			"", 100*float64(ta)/float64(tc), 100*float64(tpa)/float64(tc))
	}
}
