package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"cachemodel/internal/cerr"
	"cachemodel/internal/faultinject"
)

// TestDelaySchedule pins the un-jittered schedule: Base*2^k capped at Max.
func TestDelaySchedule(t *testing.T) {
	p := Policy{Attempts: 8, Base: 10 * time.Millisecond, Max: 80 * time.Millisecond}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
		80 * time.Millisecond, // capped from here on
		80 * time.Millisecond,
	}
	for k, w := range want {
		if got := p.Delay(k); got != w {
			t.Errorf("Delay(%d) = %v, want %v", k, got, w)
		}
	}
}

// TestDelayDefaults checks the documented defaults kick in.
func TestDelayDefaults(t *testing.T) {
	p := Policy{Attempts: 3}
	if got := p.Delay(0); got != 10*time.Millisecond {
		t.Errorf("default Base: Delay(0) = %v, want 10ms", got)
	}
	if got := p.Delay(20); got != 100*time.Millisecond {
		t.Errorf("default Max: Delay(20) = %v, want 10*Base = 100ms", got)
	}
}

// TestJitterBounds draws the whole schedule many times under different
// seeds and asserts every jittered delay stays within [delay/2, delay],
// and that jitter actually varies (not a constant).
func TestJitterBounds(t *testing.T) {
	p := Policy{Attempts: 6, Base: 8 * time.Millisecond, Max: 64 * time.Millisecond, Jitter: true}
	seen := map[time.Duration]bool{}
	for seed := int64(1); seed <= 200; seed++ {
		q := p
		q.Seed = seed
		b := NewBackoff(q)
		for k := 0; ; k++ {
			d, ok := b.Next()
			if !ok {
				break
			}
			full := p.Delay(k)
			if d < full/2 || d > full {
				t.Fatalf("seed %d retry %d: jittered delay %v outside [%v, %v]", seed, k, d, full/2, full)
			}
			seen[d] = true
		}
	}
	if len(seen) < 20 {
		t.Errorf("jitter produced only %d distinct delays over 200 seeds; want spread", len(seen))
	}
}

// TestJitterDeterministicUnderSeed pins that equal seeds give equal
// schedules (the serve tests rely on reproducible chaos runs).
func TestJitterDeterministicUnderSeed(t *testing.T) {
	p := Policy{Attempts: 5, Base: 4 * time.Millisecond, Jitter: true, Seed: 42}
	a, b := NewBackoff(p), NewBackoff(p)
	for {
		da, oka := a.Next()
		db, okb := b.Next()
		if oka != okb || da != db {
			t.Fatalf("same seed diverged: (%v,%v) vs (%v,%v)", da, oka, db, okb)
		}
		if !oka {
			break
		}
	}
}

// TestFullJitterBounds draws the whole schedule many times under
// different seeds and asserts full jitter spans [0, delay] — including
// the lower half that upper-half jitter never reaches. That below-d/2
// mass is the point of the mode: lease-renewal loops decorrelate
// completely instead of keeping a floor.
func TestFullJitterBounds(t *testing.T) {
	p := Policy{Attempts: 6, Base: 8 * time.Millisecond, Max: 64 * time.Millisecond, FullJitter: true}
	belowHalf := 0
	for seed := int64(1); seed <= 200; seed++ {
		q := p
		q.Seed = seed
		b := NewBackoff(q)
		for k := 0; ; k++ {
			d, ok := b.Next()
			if !ok {
				break
			}
			full := p.Delay(k)
			if d < 0 || d > full {
				t.Fatalf("seed %d retry %d: full-jittered delay %v outside [0, %v]", seed, k, d, full)
			}
			if d < full/2 {
				belowHalf++
			}
		}
	}
	// 200 seeds x 5 retries, each uniform on [0, d]: about half the draws
	// land below d/2. Even 10% proves we are not upper-half jitter.
	if belowHalf < 100 {
		t.Errorf("only %d/1000 draws below delay/2; full jitter should reach the lower half", belowHalf)
	}
}

// TestFullJitterDeterministicUnderSeed pins that equal seeds give equal
// full-jitter schedules (dist workers seed from their ID so chaos tests
// replay exactly).
func TestFullJitterDeterministicUnderSeed(t *testing.T) {
	p := Policy{Attempts: 5, Base: 4 * time.Millisecond, FullJitter: true, Seed: 42}
	a, b := NewBackoff(p), NewBackoff(p)
	for {
		da, oka := a.Next()
		db, okb := b.Next()
		if oka != okb || da != db {
			t.Fatalf("same seed diverged: (%v,%v) vs (%v,%v)", da, oka, db, okb)
		}
		if !oka {
			break
		}
	}
}

// TestFullJitterPrecedence: with both modes set, FullJitter wins — the
// schedule must be able to dip below the upper-half floor.
func TestFullJitterPrecedence(t *testing.T) {
	p := Policy{Attempts: 40, Base: 8 * time.Millisecond, Max: 8 * time.Millisecond, Jitter: true, FullJitter: true, Seed: 7}
	b := NewBackoff(p)
	sawBelowFloor := false
	for {
		d, ok := b.Next()
		if !ok {
			break
		}
		if d < p.Delay(0)/2 {
			sawBelowFloor = true
		}
	}
	if !sawBelowFloor {
		t.Error("FullJitter+Jitter never drew below delay/2; upper-half jitter took precedence")
	}
}

// TestDoRetriesTransient runs Do against faultinject's transient-error
// mode: an op failing its first 3 calls must succeed on the 4th attempt
// and consume exactly 4 calls.
func TestDoRetriesTransient(t *testing.T) {
	tr := faultinject.TransientN(3)
	slept := 0
	p := Policy{Attempts: 5, Base: time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { slept++; return nil }}
	if err := Do(context.Background(), p, tr.Op()); err != nil {
		t.Fatalf("Do: %v", err)
	}
	if got := tr.Calls(); got != 4 {
		t.Errorf("op called %d times, want 4", got)
	}
	if slept != 3 {
		t.Errorf("slept %d times, want 3", slept)
	}
}

// TestDoExhaustsAttempts returns the last transient error when the fault
// outlives the policy.
func TestDoExhaustsAttempts(t *testing.T) {
	tr := faultinject.TransientN(100)
	p := Policy{Attempts: 3, Base: time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	err := Do(context.Background(), p, tr.Op())
	if !cerr.IsTransient(err) {
		t.Fatalf("want transient error after exhaustion, got %v", err)
	}
	if got := tr.Calls(); got != 3 {
		t.Errorf("op called %d times, want 3", got)
	}
}

// TestDoPermanentErrorShortCircuits stops immediately on a non-transient
// error.
func TestDoPermanentErrorShortCircuits(t *testing.T) {
	perm := errors.New("permanent")
	calls := 0
	p := Policy{Attempts: 5, Base: time.Millisecond,
		Sleep: func(context.Context, time.Duration) error { return nil }}
	err := Do(context.Background(), p, func() error { calls++; return perm })
	if !errors.Is(err, perm) {
		t.Fatalf("want permanent error, got %v", err)
	}
	if calls != 1 {
		t.Errorf("op called %d times, want 1", calls)
	}
}

// TestDoContextCancelShortCircuits: cancellation during backoff stops the
// loop and surfaces the op's last error.
func TestDoContextCancelShortCircuits(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	p := Policy{Attempts: 10, Base: time.Hour} // would sleep forever without cancel
	start := time.Now()
	errc := make(chan error, 1)
	go func() {
		errc <- Do(ctx, p, func() error {
			calls++
			return fmt.Errorf("%w: flaky", cerr.ErrTransient)
		})
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !cerr.IsTransient(err) {
			t.Fatalf("want the op's transient error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	if calls != 1 {
		t.Errorf("op called %d times, want 1 (cancel hit during first backoff)", calls)
	}
	if time.Since(start) > time.Second {
		t.Errorf("cancellation took %v; the 1h backoff leaked", time.Since(start))
	}
}

// TestDoPreCancelled: an already-cancelled context runs nothing.
func TestDoPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	err := Do(ctx, Policy{Attempts: 3}, func() error { calls++; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls != 0 {
		t.Errorf("op called %d times, want 0", calls)
	}
}

// TestBackoffExhaustion: Attempts-1 retries then ok=false forever.
func TestBackoffExhaustion(t *testing.T) {
	b := NewBackoff(Policy{Attempts: 3, Base: time.Millisecond})
	for i := 0; i < 2; i++ {
		if _, ok := b.Next(); !ok {
			t.Fatalf("retry %d refused; want 2 retries", i)
		}
	}
	if _, ok := b.Next(); ok {
		t.Fatal("third retry allowed; want exhaustion after Attempts-1")
	}
	if b.Tries() != 2 {
		t.Errorf("Tries = %d, want 2", b.Tries())
	}
}

// TestZeroPolicySingleAttempt: the zero policy tries once, no retries.
func TestZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	err := Do(context.Background(), Policy{}, func() error {
		calls++
		return fmt.Errorf("%w: once", cerr.ErrTransient)
	})
	if err == nil || calls != 1 {
		t.Fatalf("zero policy: calls=%d err=%v; want 1 call and the error back", calls, err)
	}
}
