// Package retry is a small, deterministic-by-seed retry helper for the
// serving layer: capped exponential backoff with full jitter, a
// context-cancellation short-circuit, and transient-error classification
// via cerr.ErrTransient.
//
// It exists for the two places the server must absorb flaky failures
// instead of surfacing them: transient result-cache I/O (a Load/Save that
// hits a momentarily unavailable file) and re-enqueueing preempted or
// transiently failed jobs. Hot analysis paths never retry — budgets and
// the degradation ladder own that territory — so this package optimises
// for auditability (an exported, testable schedule) over throughput.
package retry

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"cachemodel/internal/cerr"
)

// Policy describes one retry schedule. The zero value is usable and means
// "no retries": a single attempt whose failure is returned as-is.
type Policy struct {
	// Attempts is the total number of tries, including the first
	// (<= 1 means no retries).
	Attempts int
	// Base is the backoff before the first retry (default 10ms when
	// Attempts > 1 and Base is zero).
	Base time.Duration
	// Max caps every backoff delay (default 10*Base). The un-jittered
	// schedule is min(Base*2^k, Max) before the k-th retry (0-based).
	Max time.Duration
	// Jitter selects upper-half jitter: each delay is drawn uniformly from
	// [delay/2, delay], so synchronized clients (many jobs re-enqueued by
	// one drain) spread out instead of thundering back together while
	// keeping a floor under the delay (never hammer immediately).
	// Disabled when false: the schedule is exactly min(Base*2^k, Max).
	Jitter bool
	// FullJitter selects AWS-style full jitter instead: each delay is drawn
	// uniformly from [0, delay]. With no floor, peers decorrelate harder —
	// the right trade for polling loops against a single endpoint (the
	// dist worker's lease renewal), where a coordinator restart would
	// otherwise see every worker retry on the same beat. Takes precedence
	// over Jitter when both are set.
	FullJitter bool
	// Seed seeds the jitter RNG so tests can pin the schedule
	// (0 uses a fixed default seed; runs are deterministic either way).
	Seed int64
	// RetryIf decides whether an error is worth another attempt; nil
	// defaults to cerr.IsTransient.
	RetryIf func(error) bool
	// Sleep replaces the delay function (tests); nil uses a context-aware
	// timer sleep.
	Sleep func(ctx context.Context, d time.Duration) error
}

// withDefaults resolves the documented defaults.
func (p Policy) withDefaults() Policy {
	if p.Attempts > 1 && p.Base <= 0 {
		p.Base = 10 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 10 * p.Base
	}
	if p.RetryIf == nil {
		p.RetryIf = cerr.IsTransient
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	if p.Seed == 0 {
		p.Seed = 0x5DEECE66D
	}
	return p
}

// Delay returns the un-jittered backoff before retry k (0-based):
// min(Base*2^k, Max). Exported so tests and docs can audit the schedule.
func (p Policy) Delay(k int) time.Duration {
	q := p.withDefaults()
	d := q.Base
	for i := 0; i < k; i++ {
		d *= 2
		if d >= q.Max {
			return q.Max
		}
	}
	if d > q.Max {
		d = q.Max
	}
	return d
}

// jittered applies the policy's jitter mode to the un-jittered delay d.
// rng is nil when no jitter is selected.
func (p Policy) jittered(d time.Duration, rng *rand.Rand) time.Duration {
	if rng == nil || d <= 0 {
		return d
	}
	if p.FullJitter {
		return time.Duration(rng.Int63n(int64(d) + 1))
	}
	// Upper-half jitter keeps a floor under the delay while still
	// decorrelating peers.
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// sleepCtx sleeps for d or until ctx is cancelled, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// Do runs fn until it succeeds, the policy's attempts are exhausted, the
// error is not retryable, or ctx is cancelled. It returns nil on success,
// the last fn error when attempts run out or the error is permanent, and
// the last fn error (not ctx.Err) when cancellation interrupts the backoff
// sleep — the operation's own failure is the more useful diagnostic, and
// callers that care can still errors.Is against context.Canceled through
// the transient wrapper they supplied.
func Do(ctx context.Context, p Policy, fn func() error) error {
	q := p.withDefaults()
	var rng *rand.Rand
	if q.Jitter || q.FullJitter {
		rng = rand.New(rand.NewSource(q.Seed))
	}
	attempts := q.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for k := 0; k < attempts; k++ {
		if cerr := ctx.Err(); cerr != nil {
			if err != nil {
				return err
			}
			return cerr
		}
		if err = fn(); err == nil {
			return nil
		}
		if k == attempts-1 || !q.RetryIf(err) {
			return err
		}
		d := q.jittered(q.Delay(k), rng)
		if q.Sleep(ctx, d) != nil {
			return err
		}
	}
	return err
}

// Backoff is a reusable schedule iterator for callers that manage their
// own loop (the server's job re-enqueue path): each Next call returns the
// jittered delay before the next retry and whether one is allowed.
// Safe for concurrent use.
type Backoff struct {
	p  Policy
	mu sync.Mutex
	k  int
	rn *rand.Rand
}

// NewBackoff returns a fresh iterator over p's schedule.
func NewBackoff(p Policy) *Backoff {
	q := p.withDefaults()
	b := &Backoff{p: q}
	if q.Jitter || q.FullJitter {
		b.rn = rand.New(rand.NewSource(q.Seed))
	}
	return b
}

// Next returns the delay before retry k and advances; ok is false once the
// policy's attempts are exhausted.
func (b *Backoff) Next() (d time.Duration, ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.k >= b.p.Attempts-1 {
		return 0, false
	}
	d = b.p.jittered(b.p.Delay(b.k), b.rn)
	b.k++
	return d, true
}

// Tries reports how many retries have been handed out.
func (b *Backoff) Tries() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.k
}
