package budget

import (
	"sync"
	"testing"
)

func TestPoolAdmissionAndRelease(t *testing.T) {
	p := NewPool(100)
	if !p.TryAcquire(60) {
		t.Fatal("60/100 refused")
	}
	if !p.TryAcquire(40) {
		t.Fatal("100/100 refused")
	}
	if p.TryAcquire(1) {
		t.Fatal("overcommit allowed")
	}
	if got := p.InUse(); got != 100 {
		t.Fatalf("InUse = %d, want 100", got)
	}
	p.Release(40)
	if !p.TryAcquire(30) {
		t.Fatal("30 refused after release of 40")
	}
}

func TestPoolUnlimitedAndNil(t *testing.T) {
	if !NewPool(0).TryAcquire(1 << 60) {
		t.Fatal("unlimited pool refused")
	}
	var p *Pool
	if !p.TryAcquire(5) {
		t.Fatal("nil pool refused")
	}
	p.Release(5) // must not panic
	if p.InUse() != 0 || p.Cap() != 0 {
		t.Fatal("nil pool reports non-zero state")
	}
}

func TestPoolZeroAcquire(t *testing.T) {
	p := NewPool(1)
	if !p.TryAcquire(0) || !p.TryAcquire(-3) {
		t.Fatal("non-positive reservation refused")
	}
	if p.InUse() != 0 {
		t.Fatalf("InUse = %d after no-op acquires, want 0", p.InUse())
	}
}

// TestPoolConcurrent hammers the pool from many goroutines and checks the
// invariant used never exceeds cap and drains back to zero.
func TestPoolConcurrent(t *testing.T) {
	p := NewPool(64)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if p.TryAcquire(8) {
					if got := p.InUse(); got > 64 {
						t.Errorf("InUse = %d exceeds cap 64", got)
					}
					p.Release(8)
				}
			}
		}()
	}
	wg.Wait()
	if got := p.InUse(); got != 0 {
		t.Fatalf("InUse = %d after drain, want 0", got)
	}
}

func TestPoolOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	NewPool(10).Release(1)
}
