package budget

import (
	"context"
	"errors"
	"testing"
	"time"

	"cachemodel/internal/cerr"
)

func TestZeroBudgetIsUnlimited(t *testing.T) {
	if !(Budget{}).IsZero() {
		t.Fatal("zero Budget should report IsZero")
	}
	m := NewMeter(nil, Budget{})
	if !m.Unlimited() {
		t.Fatal("meter over a zero budget and Background context should be Unlimited")
	}
	limited := []Budget{
		{Deadline: time.Second},
		{MaxPoints: 10},
		{MaxScan: 10},
		{Hook: func(int64) error { return nil }},
	}
	for i, b := range limited {
		if b.IsZero() {
			t.Fatalf("budget %d should not be IsZero", i)
		}
		if NewMeter(nil, b).Unlimited() {
			t.Fatalf("meter over budget %d should not be Unlimited", i)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if NewMeter(ctx, Budget{}).Unlimited() {
		t.Fatal("meter over a cancellable context should not be Unlimited")
	}
}

func TestMaxPointsTrips(t *testing.T) {
	m := NewMeter(nil, Budget{MaxPoints: 100})
	p := m.Probe()
	var err error
	var i int
	for i = 0; i < 10_000; i++ {
		if err = p.Check(1, 0); err != nil {
			break
		}
	}
	if err == nil {
		t.Fatal("meter never tripped under a 100-point cap")
	}
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("trip error = %v, want ErrBudgetExceeded", err)
	}
	// Probes batch: the trip is detected at the first flush past the cap,
	// so overshoot is bounded by the flush cadence.
	if i < 99 || i > 100+flushPoints {
		t.Fatalf("tripped after %d points, want within a flush of the cap", i+1)
	}
	if got := m.Err(); !errors.Is(got, cerr.ErrBudgetExceeded) {
		t.Fatalf("Meter.Err() = %v, want ErrBudgetExceeded", got)
	}
	if s := m.Spent(); s.Points <= 100 || s.Checkpoints == 0 {
		t.Fatalf("Spent() = %+v, want points past cap and checkpoints > 0", s)
	}
	// Once tripped, later checks keep failing (within one flush batch).
	var post error
	for i := 0; i <= flushPoints && post == nil; i++ {
		post = p.Check(1, 0)
	}
	if !errors.Is(post, cerr.ErrBudgetExceeded) {
		t.Fatalf("post-trip Check = %v, want ErrBudgetExceeded", post)
	}
}

func TestMaxScanTrips(t *testing.T) {
	m := NewMeter(nil, Budget{MaxScan: 8192})
	p := m.Probe()
	var err error
	for i := 0; i < 1000 && err == nil; i++ {
		err = p.Check(1, 4096)
	}
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("scan trip error = %v, want ErrBudgetExceeded", err)
	}
	if s := m.Spent(); s.Scan <= 8192 {
		t.Fatalf("Spent().Scan = %d, want past the 8192 cap", s.Scan)
	}
}

func TestDeadlineTrips(t *testing.T) {
	m := NewMeter(nil, Budget{Deadline: time.Millisecond})
	p := m.Probe()
	time.Sleep(5 * time.Millisecond)
	var err error
	for i := 0; i <= flushPoints && err == nil; i++ {
		err = p.Check(1, 0)
	}
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("deadline trip error = %v, want ErrBudgetExceeded", err)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	m := NewMeter(ctx, Budget{})
	p := m.Probe()
	if err := p.Flush(); err != nil {
		t.Fatalf("pre-cancel Flush = %v, want nil", err)
	}
	cancel()
	var err error
	for i := 0; i <= flushPoints && err == nil; i++ {
		err = p.Check(1, 0)
	}
	if !errors.Is(err, cerr.ErrCanceled) {
		t.Fatalf("post-cancel error = %v, want ErrCanceled", err)
	}
	if errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatal("cancellation must not read as budget exhaustion")
	}
}

func TestContextDeadlineMerged(t *testing.T) {
	// The context carries the earlier deadline; the budget's is later.
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	m := NewMeter(ctx, Budget{Deadline: time.Hour})
	p := m.Probe()
	time.Sleep(5 * time.Millisecond)
	var err error
	for i := 0; i <= flushPoints && err == nil; i++ {
		err = p.Check(1, 0)
	}
	// Either the merged deadline fires (ErrBudgetExceeded) or the context
	// itself expires first (ErrCanceled); both must land promptly.
	if !errors.Is(err, cerr.ErrBudgetExceeded) && !errors.Is(err, cerr.ErrCanceled) {
		t.Fatalf("merged-deadline error = %v", err)
	}
}

func TestHookForcesPerCheckpointFlush(t *testing.T) {
	var n int64
	m := NewMeter(nil, Budget{Hook: func(k int64) error { n = k; return nil }})
	p := m.Probe()
	for i := 0; i < 5; i++ {
		if err := p.Check(1, 0); err != nil {
			t.Fatalf("Check %d = %v", i, err)
		}
	}
	if n != 5 {
		t.Fatalf("hook saw checkpoint %d after 5 checks, want 5 (per-checkpoint flush)", n)
	}
	if s := m.Spent(); s.Points != 5 || s.Checkpoints != 5 {
		t.Fatalf("Spent() = %+v, want 5 points / 5 checkpoints", s)
	}
}

func TestHookErrorTrips(t *testing.T) {
	boom := errors.New("boom")
	m := NewMeter(nil, Budget{Hook: func(k int64) error {
		if k == 3 {
			return boom
		}
		return nil
	}})
	p := m.Probe()
	var err error
	var i int
	for i = 1; i <= 10 && err == nil; i++ {
		err = p.Check(1, 0)
	}
	if !errors.Is(err, boom) || i-1 != 3 {
		t.Fatalf("hook trip: err=%v at check %d, want boom at 3", err, i-1)
	}
}

func TestGraceReArmsAfterBudgetTrip(t *testing.T) {
	m := NewMeter(nil, Budget{MaxPoints: 64})
	p := m.Probe()
	var err error
	for i := 0; i < 10_000 && err == nil; i++ {
		err = p.Check(1, 0)
	}
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("setup trip = %v", err)
	}
	m.Grace()
	if m.Err() != nil {
		t.Fatalf("Err() after Grace = %v, want nil", m.Err())
	}
	if m.Spent().Graces != 1 {
		t.Fatalf("Graces = %d, want 1", m.Spent().Graces)
	}
	// The re-armed allowance (floor: 256 points) lets a cheaper tier run…
	var extra int
	for extra = 0; extra < 10_000; extra++ {
		if err = p.Check(1, 0); err != nil {
			break
		}
	}
	if extra < 128 {
		t.Fatalf("only %d points granted after Grace, want at least the floor region", extra)
	}
	// …but the meter still trips again rather than running forever.
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("re-armed meter never re-tripped: %v", err)
	}
}

func TestDrainPublishesWithoutEvaluating(t *testing.T) {
	m := NewMeter(nil, Budget{MaxPoints: 1})
	p := m.Probe()
	for i := 0; i < 3; i++ {
		p.points++ // accumulate below the flush cadence
	}
	p.Drain()
	if s := m.Spent(); s.Points != 3 {
		t.Fatalf("Spent().Points = %d after Drain, want 3", s.Points)
	}
	if m.Err() != nil {
		t.Fatalf("Drain must not evaluate limits, got %v", m.Err())
	}
}

func TestConcurrentProbes(t *testing.T) {
	m := NewMeter(nil, Budget{MaxPoints: 50_000})
	const workers = 8
	done := make(chan int64, workers)
	for w := 0; w < workers; w++ {
		go func() {
			p := m.Probe()
			var n int64
			for {
				if err := p.Check(1, 1); err != nil {
					done <- n
					return
				}
				n++
			}
		}()
	}
	var total int64
	for w := 0; w < workers; w++ {
		total += <-done
	}
	if !errors.Is(m.Err(), cerr.ErrBudgetExceeded) {
		t.Fatalf("Meter.Err() = %v", m.Err())
	}
	// All workers observed the trip; overshoot is bounded by one flush batch
	// per worker.
	if total > 50_000+workers*flushPoints {
		t.Fatalf("workers classified %d points, cap 50000 (+%d slack)", total, workers*flushPoints)
	}
}
