// Package budget makes every solver of the analysis stack interruptible
// and budget-aware. A Budget caps the resources one analysis may consume —
// wall-clock time, classified iteration points and interference-scan work —
// and a Meter enforces it through cooperative checkpoints placed at
// iteration-point granularity inside the solvers, so both context
// cancellation and budget exhaustion land within milliseconds.
//
// The checkpoints are engineered to stay off the hot path: each worker
// goroutine owns a Probe that accumulates counts locally and consults the
// shared Meter only every few dozen points (or a few thousand scan steps),
// so the per-point cost is an increment and a branch.
//
// On exhaustion the solvers degrade instead of dying: FindMisses falls back
// to EstimateMisses with the paper's widened fallback interval, and
// EstimateMisses falls back to the Fraguela-style probabilistic baseline.
// Grace re-arms a tripped Meter with a small fresh allowance so the cheaper
// tier can actually finish.
package budget

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cachemodel/internal/cerr"
	"cachemodel/internal/obs"
)

// Budget metrics: Flush already runs at the probe's coarse cadence (every
// flushPoints points / flushScan scan steps), so one extra atomic there
// stays off the per-point path.
var (
	mFlushes = obs.Default.Counter("budget_flushes_total")
	mTrips   = obs.Default.Counter("budget_trips_total")
	mGraces  = obs.Default.Counter("budget_graces_total")
)

// Hook is a fault-injection callback consulted at every checkpoint; n is
// the 1-based global checkpoint index. A non-nil return trips the meter
// with that error. When a Hook is installed, probes flush on every
// checkpoint so firing "at the Nth checkpoint" is deterministic (use
// single-worker solver options for full determinism).
type Hook func(n int64) error

// Budget caps one analysis. The zero value means "unlimited": no deadline,
// no point cap, no scan cap, degradation permitted (and never needed).
type Budget struct {
	// Deadline is the wall-clock allowance (0 = none). A deadline already
	// carried by the context is honoured as well; the earlier one wins.
	Deadline time.Duration
	// MaxPoints caps the number of iteration points classified (0 = none).
	MaxPoints int64
	// MaxScan caps interference-scan work: the total number of accesses
	// visited while solving replacement equations (0 = none).
	MaxScan int64
	// NoFallback, when true, makes exhaustion fail with ErrBudgetExceeded
	// (carrying a partial result) instead of degrading to a cheaper tier.
	NoFallback bool
	// Hook injects faults at checkpoints (testing).
	Hook Hook
}

// IsZero reports whether b imposes no limits and carries no hook.
func (b Budget) IsZero() bool {
	return b.Deadline == 0 && b.MaxPoints == 0 && b.MaxScan == 0 && b.Hook == nil
}

// Spent reports the resources a Meter has accounted so far.
type Spent struct {
	Points      int64         // iteration points classified
	Scan        int64         // interference-scan accesses visited
	Wall        time.Duration // elapsed wall clock
	Checkpoints int64         // checkpoints taken
	Graces      int           // fallback-tier re-arms granted
}

func (s Spent) String() string {
	return fmt.Sprintf("points=%d scan=%d wall=%s checkpoints=%d", s.Points, s.Scan, s.Wall.Round(time.Microsecond), s.Checkpoints)
}

// Meter enforces one Budget across the (possibly parallel) workers of one
// analysis. All methods are safe for concurrent use; workers interact with
// it through per-goroutine Probes.
type Meter struct {
	ctx    context.Context
	budget Budget
	start  time.Time

	deadline    time.Time // current allowance (may be extended by Grace)
	hasDeadline bool
	maxPoints   int64 // current caps; 0 = unlimited
	maxScan     int64

	points atomic.Int64
	scan   atomic.Int64
	checks atomic.Int64

	tripped atomic.Bool
	mu      sync.Mutex
	err     error
	graces  int
}

// NewMeter arms a meter for one analysis run. A nil ctx means Background.
func NewMeter(ctx context.Context, b Budget) *Meter {
	if ctx == nil {
		ctx = context.Background()
	}
	m := &Meter{ctx: ctx, budget: b, start: time.Now(),
		maxPoints: b.MaxPoints, maxScan: b.MaxScan}
	if b.Deadline > 0 {
		m.deadline = m.start.Add(b.Deadline)
		m.hasDeadline = true
	}
	if d, ok := ctx.Deadline(); ok && (!m.hasDeadline || d.Before(m.deadline)) {
		m.deadline = d
		m.hasDeadline = true
	}
	return m
}

// Unlimited reports whether no limit, context or hook can ever trip the
// meter, letting solvers skip checkpoint bookkeeping entirely.
func (m *Meter) Unlimited() bool {
	return !m.hasDeadline && m.maxPoints == 0 && m.maxScan == 0 &&
		m.budget.Hook == nil && m.ctx.Done() == nil
}

// NoFallback reports whether degradation is disabled for this run.
func (m *Meter) NoFallback() bool { return m.budget.NoFallback }

// Spent returns the resources accounted so far (flushed probes only).
func (m *Meter) Spent() Spent {
	return Spent{
		Points:      m.points.Load(),
		Scan:        m.scan.Load(),
		Wall:        time.Since(m.start),
		Checkpoints: m.checks.Load(),
		Graces:      m.graces,
	}
}

// Err returns the error the meter tripped with, or nil.
func (m *Meter) Err() error {
	if !m.tripped.Load() {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Trip trips the meter with an external failure, as if a checkpoint had
// observed it: the first error wins and every subsequent probe flush
// returns it, so all workers of the analysis stand down. The solver uses
// it to convert a panic in a pool goroutine into an ordinary tripped-meter
// failure (per-job panic isolation in the serving layer).
func (m *Meter) Trip(err error) error { return m.trip(err) }

// trip records the first tripping error and returns the winning one.
func (m *Meter) trip(err error) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.err == nil {
		m.err = err
		m.tripped.Store(true)
		mTrips.Inc()
	}
	return m.err
}

// Grace re-arms a budget-tripped meter with a fresh allowance for the next
// (cheaper) degradation tier: a quarter of the original budget, with floors
// so a fast fallback can always finish. It must not be used after context
// cancellation — cancellation means stop, not degrade.
func (m *Meter) Grace() {
	m.mu.Lock()
	m.err = nil
	m.graces++
	m.mu.Unlock()
	mGraces.Inc()
	if m.hasDeadline {
		g := m.budget.Deadline / 4
		if g < 5*time.Millisecond {
			g = 5 * time.Millisecond
		}
		m.deadline = time.Now().Add(g)
	}
	if m.maxPoints > 0 {
		g := m.budget.MaxPoints / 4
		if g < 256 {
			g = 256
		}
		m.maxPoints = m.points.Load() + g
	}
	if m.maxScan > 0 {
		g := m.budget.MaxScan / 4
		if g < 4096 {
			g = 4096
		}
		m.maxScan = m.scan.Load() + g
	}
	m.tripped.Store(false)
}

// Probe returns a fresh per-goroutine probe.
func (m *Meter) Probe() *Probe { return &Probe{m: m} }

// Flush cadence: a probe consults the shared meter after this many points
// or this much scan work, whichever comes first. Cancellation latency is
// therefore bounded by ~flushPoints cheap classifications or one expensive
// one.
const (
	flushPoints = 64
	flushScan   = 1 << 14
)

// Probe is the per-goroutine checkpoint counter. It batches updates so the
// per-point cost is two additions and a compare.
type Probe struct {
	m       *Meter
	points  int64
	scan    int64
	pending int
}

// Check records one classified iteration point and its interference-scan
// work, and consults the meter at the flush cadence. It returns nil while
// the analysis may continue, ErrCanceled after context cancellation, and
// ErrBudgetExceeded (wrapped with the exhausted dimension) on exhaustion.
func (p *Probe) Check(points, scan int64) error {
	p.points += points
	p.scan += scan
	p.pending++
	if p.pending >= flushPoints || p.scan >= flushScan || p.m.budget.Hook != nil {
		return p.Flush()
	}
	return nil
}

// Flush publishes the probe's local counts and evaluates every limit.
func (p *Probe) Flush() error {
	m := p.m
	pts := m.points.Add(p.points)
	sc := m.scan.Add(p.scan)
	p.points, p.scan, p.pending = 0, 0, 0
	n := m.checks.Add(1)
	mFlushes.Inc()
	if m.budget.Hook != nil {
		if err := m.budget.Hook(n); err != nil {
			return m.trip(err)
		}
	}
	if m.tripped.Load() {
		return m.Err()
	}
	if err := m.ctx.Err(); err != nil {
		return m.trip(fmt.Errorf("%w: %v", cerr.ErrCanceled, err))
	}
	if m.maxPoints > 0 && pts > m.maxPoints {
		return m.trip(fmt.Errorf("%w: %d iteration points (cap %d)", cerr.ErrBudgetExceeded, pts, m.maxPoints))
	}
	if m.maxScan > 0 && sc > m.maxScan {
		return m.trip(fmt.Errorf("%w: %d interference-scan steps (cap %d)", cerr.ErrBudgetExceeded, sc, m.maxScan))
	}
	if m.hasDeadline && time.Now().After(m.deadline) {
		return m.trip(fmt.Errorf("%w: deadline (%s elapsed)", cerr.ErrBudgetExceeded, time.Since(m.start).Round(time.Microsecond)))
	}
	return nil
}

// Drain publishes any buffered counts without evaluating limits; call it
// when a worker finishes so Spent() is complete.
func (p *Probe) Drain() {
	if p.points != 0 || p.scan != 0 {
		p.m.points.Add(p.points)
		p.m.scan.Add(p.scan)
		p.points, p.scan, p.pending = 0, 0, 0
	}
}
