package budget

import (
	"fmt"
	"sync"
)

// Pool is a global admission budget shared by every concurrent analysis of
// one process: a fixed allowance of iteration points that in-flight jobs
// reserve on admission and return on completion. It is the load-shedding
// complement of the per-request Budget — a request whose reservation does
// not fit is rejected up front (the server's typed 503) instead of being
// admitted and starved.
//
// The pool deliberately reserves *declared* budgets, not measured spend:
// admission control has to answer before the work runs, so it prices a job
// at its cap (MaxPoints, or a configured default weight when the request
// is unlimited) and trusts the Meter to enforce the cap during the run.
type Pool struct {
	mu   sync.Mutex
	cap  int64
	used int64
}

// NewPool returns an admission pool of the given point capacity
// (capacity <= 0 means unlimited: TryAcquire always succeeds).
func NewPool(capacity int64) *Pool {
	if capacity < 0 {
		capacity = 0
	}
	return &Pool{cap: capacity}
}

// TryAcquire reserves n points; it reports false (reserving nothing) when
// the reservation does not fit. n <= 0 reserves nothing and succeeds.
func (p *Pool) TryAcquire(n int64) bool {
	if p == nil || n <= 0 {
		return true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cap > 0 && p.used+n > p.cap {
		return false
	}
	p.used += n
	return true
}

// Release returns a reservation to the pool.
func (p *Pool) Release(n int64) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.used -= n
	if p.used < 0 {
		panic(fmt.Sprintf("budget: pool released more than acquired (used %d)", p.used))
	}
}

// InUse reports the currently reserved points.
func (p *Pool) InUse() int64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.used
}

// Cap reports the pool capacity (0 = unlimited).
func (p *Pool) Cap() int64 {
	if p == nil {
		return 0
	}
	return p.cap
}
