package serve

import (
	"context"
	"errors"
	"sync"
	"time"

	"cachemodel/internal/cerr"
	"cachemodel/internal/cme"
	"cachemodel/internal/obs"
	"cachemodel/internal/retry"
)

// JobStatus is the lifecycle of one admitted job. Shed requests never
// become jobs — they are rejected at admission with a typed HTTP error.
type JobStatus string

// Job lifecycle states.
const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// Event is one server-sent progress or terminal event of a job stream.
type Event struct {
	Stage     string    `json:"stage,omitempty"`
	Done      int64     `json:"done,omitempty"`
	Total     int64     `json:"total,omitempty"`
	Current   string    `json:"current,omitempty"`
	ElapsedMs int64     `json:"elapsed_ms"`
	Status    JobStatus `json:"status,omitempty"` // terminal events only
	// TraceID correlates the stream with the job's distributed trace
	// (terminal events only).
	TraceID string `json:"trace_id,omitempty"`
}

// ErrorBody is the typed JSON error of both shed requests and failed
// jobs: a stable machine-readable kind plus the human message.
type ErrorBody struct {
	Kind         string `json:"kind"`
	Message      string `json:"message"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// Error kinds. Admission kinds ride on 429/503 responses; job kinds land
// in the failed job's result.
const (
	kindQueueFull  = "queue_full"
	kindOverloaded = "overloaded"
	kindDraining   = "draining"
	kindInvalid    = "invalid_request"

	kindCanceled   = "canceled"
	kindBudget     = "budget_exceeded"
	kindTransient  = "transient"
	kindPanic      = "internal_panic"
	kindNonAffine  = "non_affine"
	kindDegenerate = "degenerate_system"
	kindError      = "error"
)

// errKind classifies an error into its wire kind via the cerr sentinels.
func errKind(err error) string {
	switch {
	case errors.Is(err, cerr.ErrCanceled):
		return kindCanceled
	case errors.Is(err, cerr.ErrBudgetExceeded):
		return kindBudget
	case errors.Is(err, cerr.ErrTransient):
		return kindTransient
	case errors.Is(err, cerr.ErrPanic):
		return kindPanic
	case errors.Is(err, cerr.ErrNonAffine):
		return kindNonAffine
	case errors.Is(err, cerr.ErrDegenerateSystem):
		return kindDegenerate
	default:
		return kindError
	}
}

// RefResult is the per-reference row of a candidate result: the raw
// counts, so bit-identity between two jobs is checkable from the API
// alone.
type RefResult struct {
	ID       string  `json:"id"`
	Volume   int64   `json:"volume"`
	Analyzed int64   `json:"analyzed"`
	Hits     int64   `json:"hits"`
	Cold     int64   `json:"cold"`
	Repl     int64   `json:"repl"`
	Tier     string  `json:"tier"`
	Ratio    float64 `json:"ratio,omitempty"`
	// ClosedForm marks counts evaluated from the lifted quasi-polynomial
	// rather than an enumerating solve at this size.
	ClosedForm bool `json:"closed_form,omitempty"`
}

// CandidateResult is one candidate's answer with full provenance.
type CandidateResult struct {
	Label           string      `json:"label"`
	CacheBytes      int64       `json:"cache_bytes"`
	LineBytes       int64       `json:"line_bytes"`
	Assoc           int         `json:"assoc"`
	MissRatioPct    float64     `json:"miss_ratio_pct"`
	EstimatedMisses float64     `json:"estimated_misses"`
	Accesses        int64       `json:"accesses"`
	Tier            string      `json:"tier"`
	Degraded        bool        `json:"degraded,omitempty"`
	Coverage        float64     `json:"coverage"`
	Refs            []RefResult `json:"refs,omitempty"`
	Error           string      `json:"error,omitempty"`
	// Closed-form provenance: whether this candidate was answered in
	// closed form, and how many of the references were covered. Set by
	// the scaling tier (parameter-axis jobs) or the geometry-parametric
	// tier (exact sweep columns over NumSets); ScalingWhy / GeomWhy say
	// which, and why a candidate fell back when it did.
	ClosedForm     bool   `json:"closed_form,omitempty"`
	ClosedFormRefs int    `json:"closed_form_refs,omitempty"`
	ScalingWhy     string `json:"scaling_why,omitempty"`
	// GeomAnchor marks a candidate the geometry tier solved exactly to
	// anchor a column fit; GeomWhy carries the refusal reason when the
	// tier fell through to the enumerating solver.
	GeomAnchor bool   `json:"geom_anchor,omitempty"`
	GeomWhy    string `json:"geom_why,omitempty"`
}

// Result is a terminal job's outcome: candidate rows with provenance for
// done jobs, a typed error for failed ones, and the solve fingerprint
// either way.
type Result struct {
	Key        string            `json:"key,omitempty"`
	Shared     bool              `json:"shared,omitempty"`
	Degraded   bool              `json:"degraded,omitempty"`
	Retries    int               `json:"retries,omitempty"`
	Candidates []CandidateResult `json:"candidates,omitempty"`
	Error      *ErrorBody        `json:"error,omitempty"`
}

// Job is one admitted analysis or sweep.
type Job struct {
	ID       string
	Priority int
	Created  time.Time
	// TraceID is the job's distributed-trace id: joined from the
	// submitter's traceparent header when one arrived, minted fresh
	// otherwise. parentSpan is the submitter's span id ("" when local).
	TraceID    string
	parentSpan string

	spec     *jobSpec
	backoff  *retry.Backoff
	attempts int // mutated by the single worker running the job

	ctlMu    sync.Mutex
	cancel   context.CancelFunc
	canceled bool

	mu     sync.Mutex
	status JobStatus
	result *Result

	events *hub
	done   chan struct{}
}

func newJob(id string, prio int, spec *jobSpec, pol retry.Policy, traceparent string) *Job {
	tid, psid, _ := obs.ParseTraceparent(traceparent)
	if tid == "" {
		tid = obs.NewTraceID()
	}
	return &Job{
		ID: id, Priority: prio, Created: time.Now(),
		TraceID: tid, parentSpan: psid,
		spec:    spec,
		backoff: retry.NewBackoff(pol),
		status:  StatusQueued,
		events:  newHub(),
		done:    make(chan struct{}),
	}
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Result returns the terminal result, or nil before the job finished.
func (j *Job) Result() *Result {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

func (j *Job) setStatus(s JobStatus) {
	j.mu.Lock()
	j.status = s
	j.mu.Unlock()
}

// finish records the terminal state exactly once: result, status, event
// stream closure, done signal.
func (j *Job) finish(status JobStatus, res *Result) {
	j.mu.Lock()
	j.status = status
	j.result = res
	j.mu.Unlock()
	j.events.close()
	close(j.done)
}

// Cancel requests cancellation: a queued job fails before solving, a
// running one trips its meter at the next checkpoint.
func (j *Job) Cancel() {
	j.ctlMu.Lock()
	j.canceled = true
	cancel := j.cancel
	j.ctlMu.Unlock()
	if cancel != nil {
		cancel()
	}
}

func (j *Job) isCanceled() bool {
	j.ctlMu.Lock()
	defer j.ctlMu.Unlock()
	return j.canceled
}

func (j *Job) setCancel(fn context.CancelFunc) {
	j.ctlMu.Lock()
	j.cancel = fn
	j.ctlMu.Unlock()
}

// terminal reports whether the job has finished.
func (j *Job) terminal() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// hub fans a job's progress events out to its SSE subscribers. Publishing
// never blocks: a subscriber that cannot keep up loses progress events
// (they are lossy by design — the throttled stream is a UI, not a ledger);
// the terminal state is delivered out of band via Job.done, so it cannot
// be lost. subscribe after close returns a closed channel, which tells the
// handler to emit the terminal event immediately.
type hub struct {
	mu     sync.Mutex
	subs   map[chan Event]bool
	closed bool
}

func newHub() *hub { return &hub{subs: map[chan Event]bool{}} }

func (h *hub) subscribe() chan Event {
	ch := make(chan Event, 64)
	h.mu.Lock()
	if h.closed {
		close(ch)
	} else {
		h.subs[ch] = true
	}
	h.mu.Unlock()
	return ch
}

func (h *hub) unsubscribe(ch chan Event) {
	h.mu.Lock()
	if _, ok := h.subs[ch]; ok {
		delete(h.subs, ch)
		close(ch)
	}
	h.mu.Unlock()
}

func (h *hub) publish(e Event) {
	h.mu.Lock()
	for ch := range h.subs {
		select {
		case ch <- e:
		default: // slow subscriber: drop the progress event
		}
	}
	h.mu.Unlock()
}

func (h *hub) close() {
	h.mu.Lock()
	for ch := range h.subs {
		delete(h.subs, ch)
		close(ch)
	}
	h.closed = true
	h.mu.Unlock()
}

// resultFrom renders a solve outcome into the job's wire result.
func resultFrom(key string, shared bool, spec *jobSpec, out *solveOutcome) *Result {
	res := &Result{Key: key, Shared: shared}
	if out.err != nil {
		res.Error = &ErrorBody{Kind: errKind(out.err), Message: out.err.Error()}
	}
	for i, c := range spec.cands {
		row := CandidateResult{Label: c.Label,
			CacheBytes: c.Config.SizeBytes, LineBytes: c.Config.LineBytes, Assoc: c.Config.Assoc}
		var rep *cme.Report
		if i < len(out.reports) {
			rep = out.reports[i]
		}
		if rep == nil {
			if out.batch != nil && out.batch.Errs[i] != nil {
				row.Error = out.batch.Errs[i].Error()
			} else if out.err != nil {
				row.Error = out.err.Error()
			}
			res.Candidates = append(res.Candidates, row)
			continue
		}
		row.MissRatioPct = rep.MissRatio()
		row.EstimatedMisses = rep.EstimatedMisses()
		row.Accesses = rep.TotalAccesses()
		row.Tier = rep.Tier.String()
		row.Degraded = rep.Degraded
		row.Coverage = rep.Coverage()
		if rep.Degraded {
			res.Degraded = true
		}
		if sc := rep.Scaling; sc != nil {
			row.ClosedForm = sc.ClosedForm
			row.ClosedFormRefs = sc.ClosedFormRefs
			row.ScalingWhy = sc.Why
		}
		if g := rep.Geom; g != nil {
			row.ClosedForm = g.Closed()
			row.ClosedFormRefs = g.ClosedRefs
			row.GeomAnchor = g.Anchor
			row.GeomWhy = g.Why
		}
		for _, rr := range rep.Refs {
			row.Refs = append(row.Refs, RefResult{ID: rr.Ref.ID, Volume: rr.Volume,
				Analyzed: rr.Analyzed, Hits: rr.Hits, Cold: rr.Cold, Repl: rr.Repl,
				Tier: rr.Tier.String(), Ratio: rr.Ratio, ClosedForm: rr.ClosedForm})
		}
		res.Candidates = append(res.Candidates, row)
	}
	return res
}

// failResult renders a job failure that never reached (or never finished)
// the solver.
func failResult(key string, err error) *Result {
	return &Result{Key: key, Error: &ErrorBody{Kind: errKind(err), Message: err.Error()}}
}
