package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/faultinject"
	"cachemodel/internal/retry"
)

// jobNum extracts the numeric part of a job ID ("j000042" → 42).
func jobNum(id string) int {
	n, _ := strconv.Atoi(strings.TrimLeft(id, "j0"))
	return n
}

// chaosHook deals a deterministic fault per job based on its ID: every
// 5th job gets nothing, a transient first attempt, injected exhaustion,
// injected cancellation, or a raw panic. Transient state is shared across
// a job's attempts so the retry actually recovers.
func chaosHook() func(string) budget.Hook {
	var mu sync.Mutex
	transients := map[string]*faultinject.Transient{}
	return func(id string) budget.Hook {
		switch jobNum(id) % 5 {
		case 1:
			mu.Lock()
			tr := transients[id]
			if tr == nil {
				tr = faultinject.TransientN(1)
				transients[id] = tr
			}
			mu.Unlock()
			return func(int64) error { return tr.Call() }
		case 2:
			return faultinject.ExhaustAt(3).Hook()
		case 3:
			return faultinject.CancelAt(2).Hook()
		case 4:
			var once atomic.Bool
			return func(n int64) error {
				if n >= 2 && once.CompareAndSwap(false, true) {
					panic(fmt.Sprintf("chaos: injected panic in %s", id))
				}
				return nil
			}
		}
		return nil
	}
}

// TestServeChaos is the acceptance scenario: a corrupted on-disk cache at
// startup, then 60 concurrent clients — duplicates, cancellations, sweeps,
// injected transients, exhaustions and panics — against a small worker
// pool with a bounded queue and point pool. The server must never panic,
// never emit an untyped failure, shed rather than stall, keep duplicate
// answers bit-identical, and drain to a clean flushed cache.
func TestServeChaos(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rc.json")
	if err := os.WriteFile(path, []byte(`{"schema":"garbage`), 0o644); err != nil {
		t.Fatal(err)
	}

	s, err := New(Options{
		Workers:           4,
		QueueCap:          24,
		MaxPointsInFlight: 64 << 20,
		CachePath:         path,
		RetryPolicy:       retry.Policy{Attempts: 3, Base: time.Millisecond, Jitter: true},
		JobHook:           chaosHook(),
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// The corrupt store was quarantined at startup, not trusted and not
	// fatal: the server came up cold with the evidence set aside.
	if _, err := os.Stat(path + ".corrupt"); err != nil {
		t.Fatalf("corrupt store not quarantined: %v", err)
	}

	const clients = 60
	const dupBody = `{"program":"jacobi2d","size":24}`
	bodies := []string{
		`{"program":"hydro","size":24}`,
		`{"program":"daxpy","size":256}`,
		`{"program":"hydro","size":32,"budget":{"max_points":100000}}`,
		`{"program":"sor2d","size":24,"priority":"batch"}`,
	}

	type submission struct {
		id        string
		dup       bool
		cancelled bool
	}
	var (
		mu       sync.Mutex
		subs     []submission
		shedSeen int64
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var urlPath, body string
			isDup := i%6 == 0
			switch {
			case isDup:
				urlPath, body = "/v1/analyze", dupBody
			case i%13 == 0:
				urlPath = "/v1/sweep"
				body = `{"program":"jacobi2d","size":24,"cache_sizes":[4096,16384],"line_sizes":[32],"assocs":[1]}`
			default:
				urlPath, body = "/v1/analyze", bodies[i%len(bodies)]
			}
			resp, err := http.Post(ts.URL+urlPath, "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			var m map[string]any
			json.NewDecoder(resp.Body).Decode(&m)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				id, _ := m["job"].(string)
				cancelled := i%17 == 0
				if cancelled {
					req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
					if dresp, err := http.DefaultClient.Do(req); err == nil {
						dresp.Body.Close()
					}
				}
				mu.Lock()
				subs = append(subs, submission{id: id, dup: isDup && !cancelled, cancelled: cancelled})
				mu.Unlock()
			case http.StatusTooManyRequests, http.StatusServiceUnavailable:
				// Load shed: typed, with Retry-After — the allowed refusal.
				if resp.Header.Get("Retry-After") == "" {
					t.Errorf("client %d: shed %d without Retry-After: %v", i, resp.StatusCode, m)
				}
				atomic.AddInt64(&shedSeen, 1)
			default:
				t.Errorf("client %d: unexpected status %d: %v", i, resp.StatusCode, m)
			}
		}(i)
	}
	wg.Wait()

	// Every admitted job reaches a terminal state — the server may refuse
	// work but may never sit on it.
	okKinds := map[string]bool{
		kindCanceled: true, kindBudget: true, kindTransient: true,
		kindPanic: true, kindNonAffine: true, kindDegenerate: true,
	}
	var dupResults [][]CandidateResult
	for _, sub := range subs {
		jb := waitTerminal(t, ts, sub.id)
		switch jb.Status {
		case StatusDone:
			if jb.Result == nil || len(jb.Result.Candidates) == 0 {
				t.Errorf("job %s done without candidates", sub.id)
				continue
			}
			for _, c := range jb.Result.Candidates {
				if c.Error == "" && c.Accesses <= 0 {
					t.Errorf("job %s: candidate %s has no accesses", sub.id, c.Label)
				}
			}
			// Only un-degraded duplicate runs are comparable to the bit: a
			// duplicate whose own attempt drew an injected exhaustion
			// legitimately carries degraded (but still honest) counts.
			// (Injected exhaustion does not always degrade: a solve served
			// from the result cache or a shared flight can finish before
			// checkpoint 3 ever fires — which is itself the system behaving.)
			if sub.dup && !jb.Result.Degraded {
				dupResults = append(dupResults, jb.Result.Candidates)
			}
		case StatusFailed:
			if jb.Result == nil || jb.Result.Error == nil {
				t.Errorf("job %s failed without a typed error", sub.id)
				continue
			}
			if !okKinds[jb.Result.Error.Kind] {
				t.Errorf("job %s failed with unexpected kind %q: %s",
					sub.id, jb.Result.Error.Kind, jb.Result.Error.Message)
			}
		default:
			t.Errorf("job %s not terminal: %s", sub.id, jb.Status)
		}
	}

	// Duplicate requests that completed must agree to the bit — shared
	// in-flight, served from the result cache, or recomputed.
	for i := 1; i < len(dupResults); i++ {
		if !reflect.DeepEqual(dupResults[0], dupResults[i]) {
			t.Fatalf("duplicate results diverge:\n%+v\n%+v", dupResults[0], dupResults[i])
		}
	}

	// The books balance: every admitted job is completed or failed, every
	// refusal was counted.
	out := s.Outcomes()
	if got := out.Completed + out.Failed; got != int64(len(subs)) {
		t.Errorf("outcomes %d completed + %d failed != %d admitted", out.Completed, out.Failed, len(subs))
	}
	if out.Shed != atomic.LoadInt64(&shedSeen) {
		t.Errorf("server counted %d sheds, clients saw %d", out.Shed, shedSeen)
	}

	// Graceful drain under the aftermath: flush must produce a valid store.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no flushed store: %v", err)
	}
	var store struct {
		Schema string `json:"schema"`
		Sum    string `json:"sum"`
	}
	if err := json.Unmarshal(blob, &store); err != nil || store.Schema == "" || store.Sum == "" {
		t.Fatalf("flushed store malformed: %v (schema %q)", err, store.Schema)
	}

	rep := s.RunReport()
	if rep.Jobs == nil {
		t.Fatalf("run report missing job outcomes")
	}
	if err := rep.WriteFile(filepath.Join(dir, "report.json")); err != nil {
		t.Fatalf("run report after chaos: %v", err)
	}
}
