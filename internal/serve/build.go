package serve

import (
	"fmt"
	"strings"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cme"
	"cachemodel/internal/fparse"
	"cachemodel/internal/inline"
	"cachemodel/internal/ir"
	"cachemodel/internal/kernels"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
	"cachemodel/internal/sampling"
)

// ProgramSpec names the program a request wants analysed: a built-in
// workload (Program) or inline FORTRAN source (Source, with compile-time
// Consts). Exactly one of the two must be set.
type ProgramSpec struct {
	Program string           `json:"program,omitempty"`
	Source  string           `json:"source,omitempty"`
	Consts  map[string]int64 `json:"consts,omitempty"`
	Size    int64            `json:"size,omitempty"`  // default 32
	Iters   int64            `json:"iters,omitempty"` // default 2
}

// BudgetSpec is the per-request analysis budget. Zero fields inherit the
// server defaults; TimeoutMs is clamped to the server's MaxDeadline either
// way, so one tenant cannot monopolise a worker.
type BudgetSpec struct {
	TimeoutMs  int64 `json:"timeout_ms,omitempty"`
	MaxPoints  int64 `json:"max_points,omitempty"`
	MaxScan    int64 `json:"max_scan,omitempty"`
	NoFallback bool  `json:"no_fallback,omitempty"`
}

// AnalyzeRequest is the POST /v1/analyze body: one program, one cache
// geometry, one budget.
type AnalyzeRequest struct {
	ProgramSpec
	Budget BudgetSpec `json:"budget"`

	CacheBytes int64 `json:"cache_bytes,omitempty"` // default 32768
	LineBytes  int64 `json:"line_bytes,omitempty"`  // default 32
	Assoc      int   `json:"assoc,omitempty"`       // default 1

	Exact      bool    `json:"exact,omitempty"`
	Confidence float64 `json:"confidence,omitempty"` // default 0.95
	Width      float64 `json:"width,omitempty"`      // default 0.05
	Adaptive   bool    `json:"adaptive,omitempty"`

	Priority string `json:"priority,omitempty"` // "interactive" (default) | "batch"
}

// SweepRequest is the POST /v1/sweep body: one program against a cache
// design-space grid, mirroring `cachette sweep`.
type SweepRequest struct {
	ProgramSpec
	Budget BudgetSpec `json:"budget"`

	CacheSizes []int64 `json:"cache_sizes,omitempty"` // default {4096..65536}
	LineSizes  []int64 `json:"line_sizes,omitempty"`  // default {32}
	Assocs     []int   `json:"assocs,omitempty"`      // default {1,2,4}
	PadArray   string  `json:"pad_array,omitempty"`
	Pads       []int64 `json:"pads,omitempty"`

	Exact      bool    `json:"exact,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
	Width      float64 `json:"width,omitempty"`
	Adaptive   bool    `json:"adaptive,omitempty"`

	Priority string `json:"priority,omitempty"`
}

// jobSpec is a fully validated, ready-to-solve job: the normalised
// program, the candidate grid, the sampling plan and the armed budget.
// Everything admission needs (cost) is computed here, before the job
// touches the queue.
type jobSpec struct {
	program string
	np      *ir.NProgram
	opt     cme.Options
	cands   []cme.Candidate
	plan    *sampling.Plan
	bud     budget.Budget
	cost    int64 // reserved against the server's point pool
	// scaling marks a size-ladder job: np is nil, cands carries one entry
	// per ladder size, and the solve goes through solveScaling instead of
	// Prepare + SolveBatch.
	scaling *scalingSpec
}

func parsePriority(s string) (int, error) {
	switch strings.ToLower(s) {
	case "", "interactive":
		return prioInteractive, nil
	case "batch":
		return prioBatch, nil
	}
	return 0, fmt.Errorf("unknown priority %q (want interactive or batch)", s)
}

// buildProgram instantiates the requested program: inline source through
// the FORTRAN front end, otherwise a built-in workload by name.
func buildProgram(spec *ProgramSpec, maxSize int64) (*ir.Program, error) {
	size, iters := spec.Size, spec.Iters
	if size == 0 {
		size = 32
	}
	if iters == 0 {
		iters = 2
	}
	if size < 1 || iters < 1 {
		return nil, fmt.Errorf("size and iters must be positive (got %d, %d)", size, iters)
	}
	if size > maxSize {
		return nil, fmt.Errorf("size %d exceeds the server limit %d", size, maxSize)
	}
	if spec.Source != "" {
		if spec.Program != "" {
			return nil, fmt.Errorf("set program or source, not both")
		}
		cm := map[string]int64{}
		for k, v := range spec.Consts {
			cm[strings.ToUpper(k)] = v
		}
		return fparse.Parse(spec.Source, cm)
	}
	switch strings.ToLower(spec.Program) {
	case "":
		return nil, fmt.Errorf("missing program (or inline source)")
	case "tomcatv":
		return kernels.Tomcatv(size, iters), nil
	case "swim":
		return kernels.Swim(size, iters), nil
	case "applu":
		return kernels.Applu(size, iters), nil
	case "vcycle":
		return kernels.VCycle(size, iters), nil
	}
	for _, ks := range kernels.Suite() {
		if strings.EqualFold(ks.Name, spec.Program) {
			return ks.Build(size), nil
		}
	}
	return nil, fmt.Errorf("unknown program %q", spec.Program)
}

// prepareProgram runs the front half of the pipeline: inline, normalise,
// assign the baseline layout.
func prepareProgram(p *ir.Program) (*ir.NProgram, error) {
	flat, _, err := inline.Flatten(p, inline.Options{})
	if err != nil {
		return nil, err
	}
	np, err := normalize.Normalize(flat)
	if err != nil {
		return nil, err
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		return nil, err
	}
	np.Name = p.Name
	return np, nil
}

// buildPlan validates the sampled-tier parameters (nil when exact).
func buildPlan(exact bool, conf, width float64) (*sampling.Plan, error) {
	if exact {
		return nil, nil
	}
	if conf == 0 {
		conf = 0.95
	}
	if width == 0 {
		width = 0.05
	}
	plan := &sampling.Plan{C: conf, W: width}
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return plan, nil
}

// buildBudget maps a request budget onto budget.Budget under the server
// limits. Every job gets a deadline (MaxDeadline when unspecified) and a
// point cap (DefaultMaxPoints when unspecified): an unmetered job could
// neither be cancelled at a checkpoint nor admission-controlled, so
// "unlimited" is not a thing the server hands out.
func (o *Options) buildBudget(bs BudgetSpec) (budget.Budget, error) {
	if bs.TimeoutMs < 0 || bs.MaxPoints < 0 || bs.MaxScan < 0 {
		return budget.Budget{}, fmt.Errorf("budget fields must be non-negative")
	}
	b := budget.Budget{
		Deadline:   o.MaxDeadline,
		MaxPoints:  bs.MaxPoints,
		MaxScan:    bs.MaxScan,
		NoFallback: bs.NoFallback,
	}
	if d := time.Duration(bs.TimeoutMs) * time.Millisecond; d > 0 && d < o.MaxDeadline {
		b.Deadline = d
	}
	if b.MaxPoints == 0 || b.MaxPoints > o.DefaultMaxPoints {
		b.MaxPoints = o.DefaultMaxPoints
	}
	return b, nil
}

// specFromAnalyze validates an analyze request into a jobSpec.
func (o *Options) specFromAnalyze(req *AnalyzeRequest) (*jobSpec, error) {
	p, err := buildProgram(&req.ProgramSpec, o.MaxProblemSize)
	if err != nil {
		return nil, err
	}
	np, err := prepareProgram(p)
	if err != nil {
		return nil, err
	}
	cfg := cache.Config{SizeBytes: req.CacheBytes, LineBytes: req.LineBytes, Assoc: req.Assoc}
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 32 * 1024
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 32
	}
	if cfg.Assoc == 0 {
		cfg.Assoc = 1
	}
	plan, err := buildPlan(req.Exact, req.Confidence, req.Width)
	if err != nil {
		return nil, err
	}
	bud, err := o.buildBudget(req.Budget)
	if err != nil {
		return nil, err
	}
	return &jobSpec{
		program: p.Name,
		np:      np,
		opt:     cme.Options{Adaptive: req.Adaptive},
		cands:   []cme.Candidate{{Label: cfg.String(), Config: cfg}},
		plan:    plan,
		bud:     bud,
		cost:    bud.MaxPoints,
	}, nil
}

// specFromSweep validates a sweep request into a jobSpec with the full
// candidate grid, mirroring `cachette sweep`: invalid geometries stay in
// the grid and fail per candidate, and pad 0 means the baseline layout.
func (o *Options) specFromSweep(req *SweepRequest) (*jobSpec, error) {
	p, err := buildProgram(&req.ProgramSpec, o.MaxProblemSize)
	if err != nil {
		return nil, err
	}
	np, err := prepareProgram(p)
	if err != nil {
		return nil, err
	}
	css := req.CacheSizes
	if len(css) == 0 {
		css = []int64{4096, 8192, 16384, 32768, 65536}
	}
	lss := req.LineSizes
	if len(lss) == 0 {
		lss = []int64{32}
	}
	kss := req.Assocs
	if len(kss) == 0 {
		kss = []int{1, 2, 4}
	}
	padList := req.Pads
	if req.PadArray == "" && len(padList) > 0 {
		return nil, fmt.Errorf("pads given without pad_array")
	}
	if len(padList) == 0 {
		padList = []int64{0}
	}
	if n := len(css) * len(lss) * len(kss) * len(padList); n > o.MaxCandidates {
		return nil, fmt.Errorf("candidate grid of %d exceeds the server limit %d", n, o.MaxCandidates)
	}
	var cands []cme.Candidate
	for _, cs := range css {
		for _, ls := range lss {
			for _, k := range kss {
				cfg := cache.Config{SizeBytes: cs, LineBytes: ls, Assoc: k}
				for _, pad := range padList {
					c := cme.Candidate{Label: cfg.String(), Config: cfg}
					if pad > 0 {
						c.Label = fmt.Sprintf("%s+pad%d", cfg.String(), pad)
						c.Layout = &layout.Options{PadOf: map[string]int64{req.PadArray: pad}}
					}
					cands = append(cands, c)
				}
			}
		}
	}
	plan, err := buildPlan(req.Exact, req.Confidence, req.Width)
	if err != nil {
		return nil, err
	}
	bud, err := o.buildBudget(req.Budget)
	if err != nil {
		return nil, err
	}
	return &jobSpec{
		program: p.Name,
		np:      np,
		opt:     cme.Options{Adaptive: req.Adaptive},
		cands:   cands,
		plan:    plan,
		bud:     bud,
		cost:    bud.MaxPoints,
	}, nil
}
