// Package serve is the fault-tolerant multi-tenant analysis server: a
// bounded priority-aware job queue in front of the CME solvers, with
// admission control (declared point budgets reserved against a global
// pool), load shedding (typed 429/503 instead of stalls), singleflight
// dedup by solve content address, per-job panic isolation, transient-error
// re-enqueue with jittered backoff, and graceful drain.
//
// The design inverts the usual server failure posture to match the
// repository's analytical one: an analysis may be degraded (the budget
// ladder) but never wrong, and a server under pressure may refuse work but
// never stall or corrupt it. Every refusal and every failure is typed and
// auditable — through the HTTP error kinds, the serve_* metrics, and the
// run report's job outcomes.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cerr"
	"cachemodel/internal/cme"
	"cachemodel/internal/obs"
	"cachemodel/internal/retry"
)

// Options configures a Server. The zero value is usable: defaults suit an
// interactive single-host deployment.
type Options struct {
	// QueueCap bounds the admission queue (default 64). A full queue sheds
	// with 429, it never blocks the accept loop.
	QueueCap int
	// Workers is the number of concurrent jobs (default 2). Each job's
	// solve may itself use SolveWorkers solver goroutines.
	Workers int
	// SolveWorkers is the per-job solver pool size (default 0 =
	// GOMAXPROCS; results are bit-identical at any worker count).
	SolveWorkers int
	// MaxPointsInFlight caps the summed declared point budgets of admitted
	// jobs (0 = unlimited). When a new job's budget does not fit, the
	// request is shed with 503 rather than queued behind work that cannot
	// start.
	MaxPointsInFlight int64
	// DefaultMaxPoints is the point budget imposed on requests that do not
	// declare one (default 1<<22). The server never runs an unmetered job:
	// a meter is also what makes cancellation and drain responsive.
	DefaultMaxPoints int64
	// MaxDeadline clamps every job's wall-clock budget (default 60s).
	MaxDeadline time.Duration
	// MaxProblemSize rejects absurd problem sizes at validation (default 1024).
	MaxProblemSize int64
	// MaxCandidates bounds a sweep's candidate grid (default 256).
	MaxCandidates int
	// CachePath, when set, loads the content-addressed result cache from
	// this file at startup (corrupt stores are quarantined, never trusted)
	// and flushes it back atomically on drain.
	CachePath string
	// CacheCap bounds the in-memory result cache (0 = unbounded).
	CacheCap int
	// RetainJobs is how many terminal jobs stay queryable (default 1024).
	RetainJobs int
	// ProgressInterval throttles per-job SSE progress events (default 250ms).
	ProgressInterval time.Duration
	// RetryPolicy schedules transient-failure re-enqueues of whole jobs
	// (default 3 attempts, 10ms base, jittered).
	RetryPolicy retry.Policy
	// IOPolicy retries transient result-cache load/flush I/O (default 3
	// attempts retrying any error — disk blips are not typed transient).
	IOPolicy retry.Policy
	// JobHook, when set, installs a budget hook per job (fault injection
	// in tests; the hook sees every solver checkpoint).
	JobHook func(jobID string) budget.Hook
	// Dist, when set, is mounted under /v1/dist/ — the distributed-sweep
	// coordinator's handler (an http.Handler so serve does not depend on
	// the dist package; the coordinator owns its own routes under that
	// prefix).
	Dist http.Handler
	// Logf receives server lifecycle lines (nil = silent).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.QueueCap <= 0 {
		o.QueueCap = 64
	}
	if o.Workers <= 0 {
		o.Workers = 2
	}
	if o.DefaultMaxPoints <= 0 {
		o.DefaultMaxPoints = 1 << 22
	}
	if o.MaxDeadline <= 0 {
		o.MaxDeadline = 60 * time.Second
	}
	if o.MaxProblemSize <= 0 {
		o.MaxProblemSize = 1024
	}
	if o.MaxCandidates <= 0 {
		o.MaxCandidates = 256
	}
	if o.RetainJobs <= 0 {
		o.RetainJobs = 1024
	}
	if o.ProgressInterval <= 0 {
		o.ProgressInterval = 250 * time.Millisecond
	}
	if o.RetryPolicy.Attempts == 0 {
		o.RetryPolicy = retry.Policy{Attempts: 3, Base: 10 * time.Millisecond, Jitter: true}
	}
	if o.IOPolicy.Attempts == 0 {
		o.IOPolicy = retry.Policy{Attempts: 3, Base: 10 * time.Millisecond,
			RetryIf: func(error) bool { return true }}
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// Server owns the queue, the workers, the singleflight table and the
// shared result cache.
type Server struct {
	opt    Options
	cache  *cme.ResultCache
	pool   *budget.Pool // nil = unlimited admission
	queue  *jobQueue
	flight flightGroup
	col    *obs.Collector

	baseCtx    context.Context // cancelled only by forced drain
	cancelJobs context.CancelFunc

	mu      sync.Mutex
	jobs    map[string]*Job
	doneIDs []string // terminal jobs, oldest first, for retention trimming
	nextID  int64

	draining atomic.Bool
	jobsWG   sync.WaitGroup // admitted but not yet finalized jobs
	workerWG sync.WaitGroup

	nCompleted, nShed, nDegraded, nFailed atomic.Int64
	nRetried, nFlightHits                 atomic.Int64
}

// New builds a server, loads the on-disk result cache (with retries for
// transient I/O; corruption quarantines and starts cold) and starts the
// worker pool.
func New(opt Options) (*Server, error) {
	opt = opt.withDefaults()
	cache := cme.NewResultCache(opt.CacheCap)
	if opt.CachePath != "" {
		err := retry.Do(context.Background(), opt.IOPolicy, func() error {
			return cache.Load(opt.CachePath)
		})
		if err != nil {
			return nil, fmt.Errorf("serve: load result cache: %w", err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		opt:        opt,
		cache:      cache,
		queue:      newJobQueue(opt.QueueCap),
		col:        obs.New("serve"),
		baseCtx:    ctx,
		cancelJobs: cancel,
		jobs:       map[string]*Job{},
	}
	if opt.MaxPointsInFlight > 0 {
		s.pool = budget.NewPool(opt.MaxPointsInFlight)
	}
	s.workerWG.Add(opt.Workers)
	for i := 0; i < opt.Workers; i++ {
		go s.worker()
	}
	s.opt.Logf("serve: %d workers, queue cap %d, %s", opt.Workers, opt.QueueCap, cacheDesc(opt))
	return s, nil
}

func cacheDesc(o Options) string {
	if o.CachePath == "" {
		return "in-memory result cache"
	}
	return "result cache at " + o.CachePath
}

// httpError is a typed admission or lookup failure, rendered by the HTTP
// layer with its status and Retry-After.
type httpError struct {
	status     int
	kind       string
	msg        string
	retryAfter time.Duration
}

func (e *httpError) Error() string { return e.msg }

// shed records one refused request.
func (s *Server) shed(status int, kind, msg string, after time.Duration) *httpError {
	s.nShed.Add(1)
	mShed.Inc()
	return &httpError{status: status, kind: kind, msg: msg, retryAfter: after}
}

// submit admits a validated spec: reserve its declared budget, register
// the job, enqueue it. Every failure path is a typed shed, and the
// reservation is released on any of them. traceparent, optional, joins
// the job to the submitter's distributed trace.
func (s *Server) submit(spec *jobSpec, prio int, traceparent string) (*Job, *httpError) {
	if s.draining.Load() {
		return nil, s.shed(503, kindDraining, "server is draining", 5*time.Second)
	}
	if s.pool != nil {
		if !s.pool.TryAcquire(spec.cost) {
			return nil, s.shed(503, kindOverloaded,
				fmt.Sprintf("point budget pool saturated (%d/%d in use)", s.pool.InUse(), s.pool.Cap()),
				time.Second)
		}
		mReserved.Set(s.pool.InUse())
	}
	s.mu.Lock()
	s.nextID++
	id := fmt.Sprintf("j%06d", s.nextID)
	j := newJob(id, prio, spec, s.opt.RetryPolicy, traceparent)
	s.jobs[id] = j
	s.mu.Unlock()
	s.jobsWG.Add(1)

	if err := s.queue.push(j); err != nil {
		s.release(spec.cost)
		s.mu.Lock()
		delete(s.jobs, id)
		s.mu.Unlock()
		s.jobsWG.Done()
		if errors.Is(err, errDraining) {
			return nil, s.shed(503, kindDraining, "server is draining", 5*time.Second)
		}
		return nil, s.shed(429, kindQueueFull,
			fmt.Sprintf("job queue full (%d queued)", s.queue.depth()), time.Second)
	}
	mAdmitted.Inc()
	return j, nil
}

func (s *Server) release(cost int64) {
	if s.pool != nil {
		s.pool.Release(cost)
		mReserved.Set(s.pool.InUse())
	}
}

// Job returns a live or retained job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

func (s *Server) worker() {
	defer s.workerWG.Done()
	for {
		j := s.queue.pop()
		if j == nil {
			return
		}
		s.runJob(j)
	}
}

// runJob executes one attempt of a job. Terminal outcomes finalize the
// job; a transient outcome re-enqueues it after backoff instead.
func (s *Server) runJob(j *Job) {
	if j.isCanceled() {
		s.finalize(j, StatusFailed, failResult("", cerr.ErrCanceled))
		return
	}
	mRunning.Add(1)
	defer mRunning.Add(-1)
	if j.attempts == 0 {
		// Queue wait: admission to first execution (retries are backoff
		// policy, not queue pressure, so they don't re-observe).
		mQueueWaitMs.Observe(time.Since(j.Created).Milliseconds())
	}
	j.setStatus(StatusRunning)

	jctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.setCancel(cancel)

	out, key, shared := s.attempt(jctx, j)
	if shared {
		s.nFlightHits.Add(1)
		mFlightHits.Inc()
	}

	// A transient failure re-enqueues the whole job (fresh Prepare, fresh
	// meter) after a jittered backoff, unless the job was cancelled, the
	// server is draining, or the schedule is exhausted — then it fails
	// typed like anything else.
	if out.err != nil && errors.Is(out.err, cerr.ErrTransient) &&
		!j.isCanceled() && !s.draining.Load() {
		if d, ok := j.backoff.Next(); ok {
			j.attempts++
			s.nRetried.Add(1)
			mRetries.Inc()
			j.setCancel(nil)
			j.setStatus(StatusQueued)
			res := resultFrom(key, shared, j.spec, out)
			time.AfterFunc(d, func() {
				if err := s.queue.push(j); err != nil {
					// Drain closed the queue while we backed off: surface
					// the transient failure as the terminal result.
					s.finalize(j, StatusFailed, res)
				}
			})
			return
		}
	}

	res := resultFrom(key, shared, j.spec, out)
	status := StatusDone
	if out.err != nil {
		status = StatusFailed
	}
	s.finalize(j, status, res)
}

// attempt runs one solve attempt under the job's budget, deduplicating
// concurrent identical solves through the flight group.
func (s *Server) attempt(ctx context.Context, j *Job) (out *solveOutcome, key string, shared bool) {
	spec := j.spec
	// The collector joins the job's trace (fixed at admission), so every
	// attempt's spans — and anything downstream, like a mounted dist
	// coordinator receiving this context's traceparent — link back to
	// the submitter.
	col := obs.NewWithTrace("job:"+j.ID, j.TraceID, j.parentSpan)
	col.OnProgress(func(e obs.Event) {
		j.events.publish(Event{Stage: e.Stage, Done: e.Done, Total: e.Total,
			Current: e.Current, ElapsedMs: e.Elapsed.Milliseconds()})
	}, s.opt.ProgressInterval)
	defer col.Finish()

	bud := spec.bud
	if s.opt.JobHook != nil {
		bud.Hook = s.opt.JobHook(j.ID)
	}

	// Scaling jobs have no single program to Prepare: the family is lifted
	// once inside solveScaling. They share the flight group under a
	// content-addressed key, with the same follower-retry loop below.
	if spec.scaling != nil {
		key = spec.scaling.key
		for {
			out, shared = s.flight.do(ctx, key, func() *solveOutcome {
				return s.solveScaling(ctx, col, spec, bud)
			})
			if out == nil {
				return &solveOutcome{err: fmt.Errorf("%w: while awaiting shared solve", cerr.ErrCanceled)}, key, shared
			}
			if shared && out.err != nil && errors.Is(out.err, cerr.ErrCanceled) && ctx.Err() == nil {
				continue
			}
			return out, key, shared
		}
	}

	prep, err := s.prepareGuarded(spec)
	if err != nil {
		return &solveOutcome{err: err}, "", false
	}
	key = prep.SolveKey(spec.cands, spec.plan)

	// Followers whose leader was cancelled re-issue the flight while their
	// own context is still live: the key is free again, so one of them
	// becomes the new leader. Bounded by the context either way.
	for {
		out, shared = s.flight.do(ctx, key, func() *solveOutcome {
			return s.solve(ctx, col, prep, spec, bud)
		})
		if out == nil { // our own ctx ended while following
			return &solveOutcome{err: fmt.Errorf("%w: while awaiting shared solve", cerr.ErrCanceled)}, key, shared
		}
		if shared && out.err != nil && errors.Is(out.err, cerr.ErrCanceled) && ctx.Err() == nil {
			continue
		}
		return out, key, shared
	}
}

// prepareGuarded builds the geometry-invariant solver state, converting a
// front-half panic into a typed error instead of killing the worker.
func (s *Server) prepareGuarded(spec *jobSpec) (prep *cme.Prepared, err error) {
	defer func() {
		if r := recover(); r != nil {
			mPanics.Inc()
			err = cerr.FromPanic(r)
		}
	}()
	return cme.Prepare(spec.np, spec.opt)
}

// solve is the flight leader's body: one SolveBatch under the job's
// budget, with panic isolation — a panic that escapes the solver's own
// guards becomes a typed outcome, never a dead server.
func (s *Server) solve(ctx context.Context, col *obs.Collector, prep *cme.Prepared, spec *jobSpec, bud budget.Budget) (out *solveOutcome) {
	defer func() {
		if r := recover(); r != nil {
			mPanics.Inc()
			out = &solveOutcome{err: cerr.FromPanic(r)}
		}
	}()
	ctx = obs.NewContext(ctx, col)
	reps, err := prep.SolveBatch(ctx, spec.cands, cme.BatchOptions{
		Plan: spec.plan, Cache: s.cache, Workers: s.opt.SolveWorkers, Budget: bud,
	})
	var berr *cme.BatchError
	if errors.As(err, &berr) {
		return &solveOutcome{reports: reps, batch: berr}
	}
	return &solveOutcome{reports: reps, err: err}
}

// finalize releases the job's admission reservation, records its outcome
// and publishes the terminal state.
func (s *Server) finalize(j *Job, status JobStatus, res *Result) {
	s.release(j.spec.cost)
	res.Retries = j.attempts
	if status == StatusDone {
		s.nCompleted.Add(1)
		mCompleted.Inc()
		if res.Degraded {
			s.nDegraded.Add(1)
			mDegraded.Inc()
		}
	} else {
		s.nFailed.Add(1)
		mFailed.Inc()
	}
	j.finish(status, res)
	s.retire(j)
	s.jobsWG.Done()
}

// retire trims terminal-job retention to RetainJobs.
func (s *Server) retire(j *Job) {
	s.mu.Lock()
	s.doneIDs = append(s.doneIDs, j.ID)
	for len(s.doneIDs) > s.opt.RetainJobs {
		delete(s.jobs, s.doneIDs[0])
		s.doneIDs = s.doneIDs[1:]
	}
	s.mu.Unlock()
}

// Outcomes snapshots the job-level counts for the run report.
func (s *Server) Outcomes() *obs.JobOutcomes {
	return &obs.JobOutcomes{
		Completed:        s.nCompleted.Load(),
		Shed:             s.nShed.Load(),
		Degraded:         s.nDegraded.Load(),
		Failed:           s.nFailed.Load(),
		Retried:          s.nRetried.Load(),
		SingleflightHits: s.nFlightHits.Load(),
	}
}

// RunReport assembles the server's run report: spans, metrics and the
// job outcomes.
func (s *Server) RunReport() *obs.RunReport {
	rep := s.col.Report()
	rep.Program = "server"
	rep.Command = "serve"
	rep.Jobs = s.Outcomes()
	return rep
}

// Drain shuts the server down gracefully: stop admitting (new requests
// shed with 503 draining), let queued and running jobs finish, then flush
// the result cache atomically. If ctx expires first the remaining jobs
// are cancelled — they finalize typed with ErrCanceled at their next
// checkpoint, never half-written — the flush still runs, and Drain
// reports the forced stop.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	s.queue.close()
	s.opt.Logf("serve: draining (%d queued)", s.queue.depth())

	done := make(chan struct{})
	go func() {
		s.jobsWG.Wait()
		close(done)
	}()
	var derr error
	select {
	case <-done:
	case <-ctx.Done():
		s.opt.Logf("serve: drain deadline hit, cancelling in-flight jobs")
		s.cancelJobs()
		<-done
		derr = fmt.Errorf("serve: drain forced: %w", ctx.Err())
	}
	s.workerWG.Wait()
	if err := s.flushCache(); err != nil {
		return err
	}
	s.opt.Logf("serve: drained")
	return derr
}

// flushCache persists the result cache (atomic rename), retrying
// transient I/O failures.
func (s *Server) flushCache() error {
	if s.opt.CachePath == "" {
		return nil
	}
	err := retry.Do(context.Background(), s.opt.IOPolicy, func() error {
		return s.cache.Save(s.opt.CachePath)
	})
	if err != nil {
		return fmt.Errorf("serve: flush result cache: %w", err)
	}
	return nil
}

// CacheStats exposes the shared result cache's counters.
func (s *Server) CacheStats() cme.CacheStats { return s.cache.Stats() }
