package serve

import (
	"errors"
	"sync"
)

// Job priorities. Interactive jobs always pop before batch jobs; within a
// priority the queue is FIFO, so admission order is completion order under
// uniform load.
const (
	prioInteractive = iota
	prioBatch
	numPriorities
)

// Typed admission failures: the HTTP layer maps errQueueFull to 429 and
// errDraining to 503, both with Retry-After, so a shed request is always
// distinguishable from a failed one.
var (
	errQueueFull = errors.New("job queue full")
	errDraining  = errors.New("server draining")
)

// jobQueue is the bounded, priority-aware admission queue. push never
// blocks — a full queue is an admission failure (load shedding), not a
// stall — while pop blocks until work arrives or the queue is closed and
// empty. close stops intake immediately but lets pop drain the backlog,
// which is exactly the graceful-drain contract.
type jobQueue struct {
	mu       sync.Mutex
	nonEmpty *sync.Cond
	capacity int
	levels   [numPriorities][]*Job
	n        int
	closed   bool
}

func newJobQueue(capacity int) *jobQueue {
	q := &jobQueue{capacity: capacity}
	q.nonEmpty = sync.NewCond(&q.mu)
	return q
}

// push enqueues j or fails typed: errDraining once closed, errQueueFull at
// capacity.
func (q *jobQueue) push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return errDraining
	}
	if q.n >= q.capacity {
		return errQueueFull
	}
	q.levels[j.Priority] = append(q.levels[j.Priority], j)
	q.n++
	mQueueDepth.Set(int64(q.n))
	q.nonEmpty.Signal()
	return nil
}

// pop blocks for the next job, highest priority first, and returns nil
// once the queue is closed and fully drained (the worker-exit signal).
func (q *jobQueue) pop() *Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for p := 0; p < numPriorities; p++ {
			if len(q.levels[p]) > 0 {
				j := q.levels[p][0]
				q.levels[p] = q.levels[p][1:]
				q.n--
				mQueueDepth.Set(int64(q.n))
				return j
			}
		}
		if q.closed {
			return nil
		}
		q.nonEmpty.Wait()
	}
}

// close stops intake; queued jobs remain poppable.
func (q *jobQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	q.nonEmpty.Broadcast()
}

func (q *jobQueue) depth() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.n
}
