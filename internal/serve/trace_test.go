package serve

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"cachemodel/internal/obs"
)

// TestServeTraceparentPropagation: a submission carrying a W3C
// traceparent header joins the caller's trace — the job body, the
// status document and the terminal SSE event all answer with that
// trace id, and the solve's collector runs under it.
func TestServeTraceparentPropagation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	tid, sid := obs.NewTraceID(), obs.NewSpanID()

	req, err := http.NewRequest("POST", ts.URL+"/v1/analyze",
		strings.NewReader(`{"program":"hydro","size":24}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceparentHeader, obs.FormatTraceparent(tid, sid))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST analyze: %v", err)
	}
	var jb jobBody
	if err := decodeInto(resp, &jb); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if jb.TraceID != tid {
		t.Fatalf("submission trace id %q, want caller's %q", jb.TraceID, tid)
	}

	done := waitTerminal(t, ts, jb.Job)
	if done.Status != StatusDone {
		t.Fatalf("job status %s: %+v", done.Status, done.Result)
	}
	if done.TraceID != tid {
		t.Errorf("terminal status trace id %q, want %q", done.TraceID, tid)
	}

	sse, err := http.Get(ts.URL + "/v1/jobs/" + jb.Job + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	stream, _ := io.ReadAll(sse.Body)
	sse.Body.Close()
	if !strings.Contains(string(stream), `"trace_id":"`+tid+`"`) {
		t.Errorf("terminal SSE event missing trace id:\n%s", stream)
	}

	// The queue-wait histogram observed the admission->run latency.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	metrics, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(metrics), "serve_queue_wait_ms_bucket{le=") {
		t.Errorf("/metrics missing serve_queue_wait_ms buckets")
	}
}

// TestServeMintsTraceWithoutHeader: a bare submission still gets a
// valid fresh trace id, so every job is traceable after the fact.
func TestServeMintsTraceWithoutHeader(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	id := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":16}`)
	jb := getJob(t, ts, id)
	if len(jb.TraceID) != 32 {
		t.Fatalf("minted trace id %q, want 32 hex digits", jb.TraceID)
	}
	if _, _, ok := obs.ParseTraceparent(obs.FormatTraceparent(jb.TraceID, obs.NewSpanID())); !ok {
		t.Fatalf("minted trace id %q does not format into a valid traceparent", jb.TraceID)
	}
	waitTerminal(t, ts, id)
}

// decodeInto decodes a JSON response body into v and closes it.
func decodeInto(resp *http.Response, v any) error {
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}
