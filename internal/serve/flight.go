package serve

import (
	"context"
	"sync"
	"sync/atomic"

	"cachemodel/internal/cme"
)

// solveOutcome is what one solve produced, shared verbatim between the
// flight leader and every follower. Reports are read-only after the solve,
// so sharing the slice is safe; per-candidate construction failures are
// split out of err so a partially solved sweep still counts as a result.
type solveOutcome struct {
	reports []*cme.Report
	batch   *cme.BatchError
	err     error
}

// flightGroup is a minimal singleflight keyed by the content address of a
// solve (Prepared.SolveKey): concurrent jobs with equal keys collapse onto
// one SolveBatch call, and bit-identical results come for free because the
// key covers everything that affects them. Hand-rolled — the module is
// dependency-free by design, so x/sync/singleflight is not available.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	done    chan struct{}
	out     *solveOutcome
	waiters atomic.Int32
}

// waiting reports how many followers are blocked on key's in-flight call
// (0 when no call is in flight). Tests use it to sequence dedup scenarios
// deterministically.
func (g *flightGroup) waiting(key string) int {
	g.mu.Lock()
	c := g.m[key]
	g.mu.Unlock()
	if c == nil {
		return 0
	}
	return int(c.waiters.Load())
}

// do runs fn once per in-flight key. The caller whose invocation ran fn
// gets shared=false; concurrent callers block until the leader finishes
// and share its outcome with shared=true. A follower whose own ctx ends
// while waiting gets (nil, true) — the leader keeps running for everyone
// else. The leader runs fn on its own goroutine under its own context and
// budget; a follower observing a leader-cancelled outcome should re-issue
// do (the key is free by then, so it becomes the new leader).
func (g *flightGroup) do(ctx context.Context, key string, fn func() *solveOutcome) (out *solveOutcome, shared bool) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flightCall{}
	}
	if c, ok := g.m[key]; ok {
		g.mu.Unlock()
		c.waiters.Add(1)
		defer c.waiters.Add(-1)
		select {
		case <-c.done:
			return c.out, true
		case <-ctx.Done():
			return nil, true
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.m[key] = c
	g.mu.Unlock()

	c.out = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(c.done)
	return c.out, false
}
