package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"cachemodel/internal/obs"
)

// maxBodyBytes bounds request bodies; inline FORTRAN sources are small.
const maxBodyBytes = 1 << 20

// Handler returns the server's HTTP API:
//
//	POST   /v1/analyze        submit one analysis        → 202 {job,status,links}
//	POST   /v1/sweep          submit a design-space sweep → 202
//	GET    /v1/jobs/{id}      job status + terminal result
//	DELETE /v1/jobs/{id}      cancel a queued or running job
//	GET    /v1/jobs/{id}/events  SSE progress + terminal event
//	GET    /metrics           Prometheus text exposition
//	GET    /healthz           liveness (503 while draining)
//
// Shed requests answer 429 (queue full) or 503 (overloaded / draining)
// with Retry-After and a typed JSON body — a client can always tell "try
// later" from "your request is wrong" (400) and "the analysis failed"
// (terminal job result).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("POST /v1/sweep", s.handleSweep)
	mux.HandleFunc("POST /v1/scaling", s.handleScaling)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleJobEvents)
	mux.Handle("GET /metrics", obs.Handler(obs.Default))
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	if s.opt.Dist != nil {
		// The coordinator registers full /v1/dist/... routes itself; mount
		// it for both methods so its own mux does the dispatch.
		mux.Handle("/v1/dist/", s.opt.Dist)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, kind, msg string, retryAfter time.Duration) {
	body := ErrorBody{Kind: kind, Message: msg}
	if retryAfter > 0 {
		body.RetryAfterMs = retryAfter.Milliseconds()
		w.Header().Set("Retry-After", strconv.FormatInt(int64(retryAfter.Seconds()+0.5), 10))
	}
	writeJSON(w, status, map[string]ErrorBody{"error": body})
}

func (s *Server) writeHTTPError(w http.ResponseWriter, e *httpError) {
	writeError(w, e.status, e.kind, e.msg, e.retryAfter)
}

// decodeBody strictly decodes a bounded JSON body.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, kindInvalid, "bad request body: "+err.Error(), 0)
		return false
	}
	return true
}

// jobBody is the submission/status wire form of a job.
type jobBody struct {
	Job      string            `json:"job"`
	Status   JobStatus         `json:"status"`
	Priority string            `json:"priority"`
	TraceID  string            `json:"trace_id,omitempty"`
	Created  time.Time         `json:"created"`
	Links    map[string]string `json:"links,omitempty"`
	Result   *Result           `json:"result,omitempty"`
}

func jobToBody(j *Job, withLinks bool) jobBody {
	prio := "interactive"
	if j.Priority == prioBatch {
		prio = "batch"
	}
	b := jobBody{Job: j.ID, Status: j.Status(), Priority: prio, TraceID: j.TraceID, Created: j.Created, Result: j.Result()}
	if withLinks {
		b.Links = map[string]string{
			"self":   "/v1/jobs/" + j.ID,
			"events": "/v1/jobs/" + j.ID + "/events",
		}
	}
	return b
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	var req AnalyzeRequest
	if !decodeBody(w, r, &req) {
		return
	}
	prio, err := parsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, kindInvalid, err.Error(), 0)
		return
	}
	spec, err := s.opt.specFromAnalyze(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, kindInvalid, err.Error(), 0)
		return
	}
	s.enqueue(w, r, spec, prio)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req SweepRequest
	if !decodeBody(w, r, &req) {
		return
	}
	prio, err := parsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, kindInvalid, err.Error(), 0)
		return
	}
	spec, err := s.opt.specFromSweep(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, kindInvalid, err.Error(), 0)
		return
	}
	s.enqueue(w, r, spec, prio)
}

func (s *Server) enqueue(w http.ResponseWriter, r *http.Request, spec *jobSpec, prio int) {
	j, herr := s.submit(spec, prio, r.Header.Get(obs.TraceparentHeader))
	if herr != nil {
		s.writeHTTPError(w, herr)
		return
	}
	writeJSON(w, http.StatusAccepted, jobToBody(j, true))
}

func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, kindInvalid, "no such job", 0)
		return
	}
	writeJSON(w, http.StatusOK, jobToBody(j, true))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, kindInvalid, "no such job", 0)
		return
	}
	j.Cancel()
	writeJSON(w, http.StatusOK, map[string]string{"job": j.ID, "cancel": "requested"})
}

// handleJobEvents streams a job's progress as server-sent events and
// always ends with one terminal event carrying the final status. Progress
// is lossy by design (throttled UI telemetry); the terminal event is not —
// it is synthesised from the job snapshot once the stream closes, so a
// subscriber can never miss the ending.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, kindInvalid, "no such job", 0)
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, kindError, "streaming unsupported", 0)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	ch := j.events.subscribe()
	defer j.events.unsubscribe(ch)
	for {
		select {
		case e, open := <-ch:
			if !open {
				// Stream closed: the job is finishing. finish() closes the
				// hub before signalling done, so wait for done to snapshot a
				// settled status.
				<-j.done
				writeEvent(w, fl, "done", Event{Status: j.Status(), TraceID: j.TraceID,
					ElapsedMs: time.Since(j.Created).Milliseconds()})
				return
			}
			writeEvent(w, fl, "progress", e)
		case <-j.done:
			// Drain any buffered progress, then emit the terminal event.
			for {
				select {
				case e, open := <-ch:
					if !open {
						writeEvent(w, fl, "done", Event{Status: j.Status(), TraceID: j.TraceID,
							ElapsedMs: time.Since(j.Created).Milliseconds()})
						return
					}
					writeEvent(w, fl, "progress", e)
				case <-r.Context().Done():
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func writeEvent(w http.ResponseWriter, fl http.Flusher, name string, e Event) {
	blob, err := json.Marshal(e)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, blob)
	fl.Flush()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, kindDraining, "draining", 5*time.Second)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"queue":  s.queue.depth(),
		"jobs":   s.Outcomes(),
	})
}
