package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"cachemodel/internal/budget"
	"cachemodel/internal/cme"
	"cachemodel/internal/faultinject"
	"cachemodel/internal/retry"
)

// newTestServer starts a server plus an httptest front end, draining both
// at cleanup.
func newTestServer(t *testing.T, opt Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opt)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		if err := s.Drain(ctx); err != nil {
			t.Errorf("cleanup drain: %v", err)
		}
		ts.Close()
	})
	return s, ts
}

// postJSON posts body and returns the status code and decoded response.
func postJSON(t *testing.T, ts *httptest.Server, path, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("POST %s: decode: %v", path, err)
	}
	return resp.StatusCode, m
}

// submitJob posts an analyze/sweep body and fails the test unless it is
// admitted; returns the job ID.
func submitJob(t *testing.T, ts *httptest.Server, path, body string) string {
	t.Helper()
	code, m := postJSON(t, ts, path, body)
	if code != http.StatusAccepted {
		t.Fatalf("POST %s: status %d, body %v", path, code, m)
	}
	id, _ := m["job"].(string)
	if id == "" {
		t.Fatalf("POST %s: no job id in %v", path, m)
	}
	return id
}

// getJob fetches a job's status document.
func getJob(t *testing.T, ts *httptest.Server, id string) jobBody {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET job %s: %v", id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET job %s: status %d", id, resp.StatusCode)
	}
	var jb jobBody
	if err := json.NewDecoder(resp.Body).Decode(&jb); err != nil {
		t.Fatalf("GET job %s: decode: %v", id, err)
	}
	return jb
}

// waitTerminal polls a job until done/failed.
func waitTerminal(t *testing.T, ts *httptest.Server, id string) jobBody {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		jb := getJob(t, ts, id)
		if jb.Status == StatusDone || jb.Status == StatusFailed {
			return jb
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal status", id)
	return jobBody{}
}

// waitStatus polls until the job reports the wanted status.
func waitStatus(t *testing.T, s *Server, id string, want JobStatus) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		j, ok := s.Job(id)
		if ok && j.Status() == want {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %s never reached status %s", id, want)
}

// stallHook returns a JobHook that blocks every checkpoint until release
// is closed (after which checkpoints pass instantly).
func stallHook(release chan struct{}) func(string) budget.Hook {
	return func(string) budget.Hook {
		return func(int64) error { <-release; return nil }
	}
}

func TestServeAnalyzeEndToEnd(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2})

	id := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":32}`)
	jb := waitTerminal(t, ts, id)
	if jb.Status != StatusDone {
		t.Fatalf("job status %s, result %+v", jb.Status, jb.Result)
	}
	res := jb.Result
	if res == nil || len(res.Candidates) != 1 {
		t.Fatalf("want 1 candidate, got %+v", res)
	}
	c := res.Candidates[0]
	if c.Accesses <= 0 || len(c.Refs) == 0 {
		t.Fatalf("empty candidate result: %+v", c)
	}
	if res.Key == "" {
		t.Fatalf("missing solve key")
	}
	if res.Error != nil || c.Error != "" {
		t.Fatalf("unexpected error: %+v / %q", res.Error, c.Error)
	}

	// The SSE stream of a finished job delivers exactly the terminal event.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	stream, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}
	if !strings.Contains(string(stream), "event: done") ||
		!strings.Contains(string(stream), `"status":"done"`) {
		t.Fatalf("terminal SSE event missing from stream:\n%s", stream)
	}

	// /metrics exposes the serving counters next to the solver's.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET metrics: %v", err)
	}
	metrics, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{"serve_jobs_completed_total", "serve_queue_depth", "serve_shed_total"} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if got := s.Outcomes().Completed; got < 1 {
		t.Fatalf("outcomes completed = %d", got)
	}
}

func TestServeSweepEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	id := submitJob(t, ts, "/v1/sweep",
		`{"program":"jacobi2d","size":24,"cache_sizes":[4096,16384],"line_sizes":[32],"assocs":[1,2]}`)
	jb := waitTerminal(t, ts, id)
	if jb.Status != StatusDone {
		t.Fatalf("sweep status %s, result %+v", jb.Status, jb.Result)
	}
	if len(jb.Result.Candidates) != 4 {
		t.Fatalf("want 4 candidates, got %d", len(jb.Result.Candidates))
	}
	for _, c := range jb.Result.Candidates {
		if c.Error != "" || c.Accesses <= 0 {
			t.Fatalf("bad sweep row: %+v", c)
		}
	}
}

// TestServeScalingEndToEnd posts a size ladder to /v1/scaling and checks
// the closed-form contract on the wire: every ladder size answered as one
// candidate row with closed-form provenance, and the counts bit-identical
// to an exact /v1/analyze of the same size and geometry.
func TestServeScalingEndToEnd(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	id := submitJob(t, ts, "/v1/scaling",
		`{"program":"hydro","iters":2,"cache_bytes":256,"line_bytes":32,"assoc":1,"from":128,"to":224,"step":32}`)
	jb := waitTerminal(t, ts, id)
	if jb.Status != StatusDone {
		t.Fatalf("scaling status %s, result %+v", jb.Status, jb.Result)
	}
	res := jb.Result
	if len(res.Candidates) != 4 {
		t.Fatalf("want 4 ladder rows, got %d", len(res.Candidates))
	}
	if !strings.HasPrefix(res.Key, "sc:") {
		t.Fatalf("scaling solve key %q", res.Key)
	}
	for i, c := range res.Candidates {
		wantLabel := fmt.Sprintf("N=%d", 128+32*i)
		if c.Label != wantLabel {
			t.Fatalf("row %d label %q, want %q", i, c.Label, wantLabel)
		}
		if c.Error != "" || c.Accesses <= 0 {
			t.Fatalf("bad ladder row: %+v", c)
		}
		if !c.ClosedForm || c.ScalingWhy != "" {
			t.Fatalf("row %s not closed form (%q)", c.Label, c.ScalingWhy)
		}
		if c.ClosedFormRefs != len(c.Refs) {
			t.Fatalf("row %s covers %d/%d refs", c.Label, c.ClosedFormRefs, len(c.Refs))
		}
		for _, r := range c.Refs {
			if !r.ClosedForm {
				t.Fatalf("row %s ref %s not closed form", c.Label, r.ID)
			}
		}
	}

	// Bit-identity against the enumerating path, through the public API.
	aid := submitJob(t, ts, "/v1/analyze",
		`{"program":"hydro","size":160,"iters":2,"cache_bytes":256,"line_bytes":32,"assoc":1,"exact":true}`)
	ab := waitTerminal(t, ts, aid)
	if ab.Status != StatusDone {
		t.Fatalf("analyze status %s, result %+v", ab.Status, ab.Result)
	}
	exact := map[string]RefResult{}
	for _, r := range ab.Result.Candidates[0].Refs {
		exact[r.ID] = r
	}
	row := res.Candidates[1] // N=160
	for _, r := range row.Refs {
		w, ok := exact[r.ID]
		if !ok {
			t.Fatalf("ref %s missing from exact analyze", r.ID)
		}
		if r.Volume != w.Volume || r.Analyzed != w.Analyzed ||
			r.Hits != w.Hits || r.Cold != w.Cold || r.Repl != w.Repl {
			t.Fatalf("ref %s: closed form %+v != exact %+v", r.ID, r, w)
		}
	}
}

// TestServeSweepGeomClosedForm posts an exact cache-size column to
// /v1/sweep and checks the geometry-parametric tier on the wire: the
// column splits into anchor rows (GeomAnchor) and closed-form rows
// (ClosedForm with full ref coverage), and a closed-form row's counts
// are bit-identical to an exact /v1/analyze of the same geometry.
func TestServeSweepGeomClosedForm(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, MaxCandidates: 16})
	id := submitJob(t, ts, "/v1/sweep",
		`{"program":"tomcatv","size":24,"exact":true,"line_sizes":[32],"assocs":[1],
		  "cache_sizes":[40960,43008,45056,47104,49152,51200,53248,55296]}`)
	jb := waitTerminal(t, ts, id)
	if jb.Status != StatusDone {
		t.Fatalf("sweep status %s, result %+v", jb.Status, jb.Result)
	}
	res := jb.Result
	if len(res.Candidates) != 8 {
		t.Fatalf("want 8 column rows, got %d", len(res.Candidates))
	}
	anchors, closed := 0, 0
	for _, c := range res.Candidates {
		if c.Error != "" || c.Accesses <= 0 {
			t.Fatalf("bad column row: %+v", c)
		}
		switch {
		case c.GeomAnchor:
			anchors++
		case c.ClosedForm:
			closed++
			if c.ClosedFormRefs != len(c.Refs) {
				t.Fatalf("row %s covers %d/%d refs", c.Label, c.ClosedFormRefs, len(c.Refs))
			}
			for _, r := range c.Refs {
				if !r.ClosedForm {
					t.Fatalf("row %s ref %s not closed form", c.Label, r.ID)
				}
			}
		default:
			t.Fatalf("row %s neither anchor nor closed form (why %q)", c.Label, c.GeomWhy)
		}
	}
	if anchors != 3 || closed != 5 {
		t.Fatalf("column split %d anchors / %d closed, want 3/5", anchors, closed)
	}

	// Bit-identity against the enumerating path, through the public API.
	aid := submitJob(t, ts, "/v1/analyze",
		`{"program":"tomcatv","size":24,"exact":true,"cache_bytes":49152,"line_bytes":32,"assoc":1}`)
	ab := waitTerminal(t, ts, aid)
	if ab.Status != StatusDone {
		t.Fatalf("analyze status %s, result %+v", ab.Status, ab.Result)
	}
	exact := map[string]RefResult{}
	for _, r := range ab.Result.Candidates[0].Refs {
		exact[r.ID] = r
	}
	for _, c := range res.Candidates {
		if c.CacheBytes != 49152 {
			continue
		}
		for _, r := range c.Refs {
			w, ok := exact[r.ID]
			if !ok {
				t.Fatalf("ref %s missing from exact analyze", r.ID)
			}
			if r.Volume != w.Volume || r.Analyzed != w.Analyzed ||
				r.Hits != w.Hits || r.Cold != w.Cold || r.Repl != w.Repl {
				t.Fatalf("ref %s: geom %+v != exact %+v", r.ID, r, w)
			}
		}
	}
}

// TestServeScalingRejectsBadRequests covers scaling-specific admission.
func TestServeScalingRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{MaxCandidates: 8})
	for name, body := range map[string]string{
		"unknown program": `{"program":"nope"}`,
		"both sources":    `{"program":"hydro","source":"X"}`,
		"bad ladder":      `{"program":"hydro","from":512,"to":128,"step":64}`,
		"oversized size":  `{"program":"hydro","ns":[99999]}`,
		"too many sizes":  `{"program":"hydro","from":32,"to":4096,"step":32}`,
		"huge range":      `{"program":"hydro","from":1,"to":9223372036854775807,"step":1}`,
		"negative from":   `{"program":"hydro","from":-64,"to":512,"step":64}`,
		"bad priority":    `{"program":"hydro","priority":"urgent"}`,
	} {
		code, m := postJSON(t, ts, "/v1/scaling", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d body %v", name, code, m)
		}
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Options{})
	for name, body := range map[string]string{
		"unknown program": `{"program":"nope"}`,
		"both sources":    `{"program":"hydro","source":"X"}`,
		"unknown field":   `{"program":"hydro","bogus":1}`,
		"oversized":       `{"program":"hydro","size":99999}`,
		"bad priority":    `{"program":"hydro","priority":"urgent"}`,
		"negative budget": `{"program":"hydro","budget":{"timeout_ms":-5}}`,
	} {
		code, m := postJSON(t, ts, "/v1/analyze", body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d body %v", name, code, m)
		}
	}
}

func TestServeShedsOnQueueFull(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{Workers: 1, QueueCap: 1, JobHook: stallHook(release)})
	defer func() {
		select {
		case <-release:
		default:
			close(release)
		}
	}()

	a := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24}`)
	waitStatus(t, s, a, StatusRunning) // worker stalled in the hook
	b := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24}`)

	// Queue of one is full: the third request is shed, typed, with
	// Retry-After — never queued behind work that cannot start.
	resp, err := http.Post(ts.URL+"/v1/analyze", "application/json",
		strings.NewReader(`{"program":"hydro","size":24}`))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("want 429, got %d: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("429 without Retry-After")
	}
	if !strings.Contains(string(body), kindQueueFull) {
		t.Fatalf("429 body not typed queue_full: %s", body)
	}
	if got := s.Outcomes().Shed; got != 1 {
		t.Fatalf("shed count = %d, want 1", got)
	}

	close(release)
	for _, id := range []string{a, b} {
		if jb := waitTerminal(t, ts, id); jb.Status != StatusDone {
			t.Fatalf("job %s finished %s", id, jb.Status)
		}
	}
}

func TestServeShedsOnPointPoolSaturation(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{Workers: 1, MaxPointsInFlight: 100, JobHook: stallHook(release)})
	defer close(release)

	a := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24,"budget":{"max_points":80}}`)

	// The second declared budget does not fit the global pool: 503, typed
	// overloaded, before it can queue behind capacity that is not there.
	code, m := postJSON(t, ts, "/v1/analyze", `{"program":"hydro","size":24,"budget":{"max_points":80}}`)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("want 503, got %d: %v", code, m)
	}
	if fmt.Sprint(m["error"]) == "" || !strings.Contains(fmt.Sprint(m), kindOverloaded) {
		t.Fatalf("503 body not typed overloaded: %v", m)
	}

	waitStatus(t, s, a, StatusRunning)
	_ = a
}

// solveKeyFor computes the content address the server will use for a
// request, via an independent build of the same spec.
func solveKeyFor(t *testing.T, s *Server, req *AnalyzeRequest) string {
	t.Helper()
	spec, err := s.opt.specFromAnalyze(req)
	if err != nil {
		t.Fatalf("specFromAnalyze: %v", err)
	}
	prep, err := cme.Prepare(spec.np, spec.opt)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	return prep.SolveKey(spec.cands, spec.plan)
}

func TestServeSingleflightDedup(t *testing.T) {
	release := make(chan struct{})
	s, ts := newTestServer(t, Options{Workers: 2, JobHook: stallHook(release)})

	const body = `{"program":"jacobi2d","size":24}`
	a := submitJob(t, ts, "/v1/analyze", body)
	waitStatus(t, s, a, StatusRunning) // leader stalled mid-solve

	b := submitJob(t, ts, "/v1/analyze", body)
	waitStatus(t, s, b, StatusRunning)

	// Wait until the second job is provably blocked on the first job's
	// in-flight solve, then let the leader finish: one solve, two results.
	key := solveKeyFor(t, s, &AnalyzeRequest{ProgramSpec: ProgramSpec{Program: "jacobi2d", Size: 24}})
	deadline := time.Now().Add(30 * time.Second)
	for s.flight.waiting(key) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("follower never joined the in-flight solve for %s", key)
		}
		time.Sleep(2 * time.Millisecond)
	}
	close(release)

	ra, rb := waitTerminal(t, ts, a), waitTerminal(t, ts, b)
	if ra.Status != StatusDone || rb.Status != StatusDone {
		t.Fatalf("status %s / %s", ra.Status, rb.Status)
	}
	if ra.Result.Key != key || rb.Result.Key != key {
		t.Fatalf("keys diverge: %s / %s want %s", ra.Result.Key, rb.Result.Key, key)
	}
	if got := s.Outcomes().SingleflightHits; got != 1 {
		t.Fatalf("singleflight hits = %d, want 1", got)
	}
	if ra.Result.Shared == rb.Result.Shared {
		t.Fatalf("want exactly one shared result, got %v / %v", ra.Result.Shared, rb.Result.Shared)
	}
	// Bit-identical answers, shared or solved.
	if !reflect.DeepEqual(ra.Result.Candidates, rb.Result.Candidates) {
		t.Fatalf("deduplicated results diverge:\n%+v\n%+v", ra.Result.Candidates, rb.Result.Candidates)
	}
}

func TestServePanicIsolation(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, JobHook: func(id string) budget.Hook {
		if id != "j000001" {
			return nil
		}
		return func(n int64) error {
			if n >= 2 {
				panic("chaos: injected solver panic")
			}
			return nil
		}
	}})

	// The first job's solver panics mid-tile; the panic is isolated into a
	// typed failure with the panic text, and the server keeps serving.
	a := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24}`)
	ja := waitTerminal(t, ts, a)
	if ja.Status != StatusFailed || ja.Result.Error == nil {
		t.Fatalf("panicking job: status %s result %+v", ja.Status, ja.Result)
	}
	if ja.Result.Error.Kind != kindPanic {
		t.Fatalf("error kind %q, want %q (%s)", ja.Result.Error.Kind, kindPanic, ja.Result.Error.Message)
	}
	if !strings.Contains(ja.Result.Error.Message, "injected solver panic") {
		t.Fatalf("panic provenance lost: %q", ja.Result.Error.Message)
	}

	b := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24}`)
	if jb := waitTerminal(t, ts, b); jb.Status != StatusDone {
		t.Fatalf("server did not survive the panic: job 2 %s %+v", jb.Status, jb.Result)
	}
	out := s.Outcomes()
	if out.Failed != 1 || out.Completed != 1 {
		t.Fatalf("outcomes after panic: %+v", out)
	}
}

func TestServeTransientRetry(t *testing.T) {
	var mu sync.Mutex
	faults := map[string]*faultinject.Transient{}
	s, ts := newTestServer(t, Options{Workers: 1,
		RetryPolicy: retry.Policy{Attempts: 3, Base: time.Millisecond, Jitter: true},
		JobHook: func(id string) budget.Hook {
			mu.Lock()
			tr := faults[id]
			if tr == nil {
				tr = faultinject.TransientN(1)
				faults[id] = tr
			}
			mu.Unlock()
			return func(int64) error { return tr.Call() }
		}})

	// First attempt dies transiently at its first checkpoint; the server
	// re-enqueues the whole job with backoff and the second attempt runs
	// clean — the client sees one job that simply succeeded, with the
	// retry recorded in its provenance.
	id := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24}`)
	jb := waitTerminal(t, ts, id)
	if jb.Status != StatusDone {
		t.Fatalf("status %s result %+v", jb.Status, jb.Result)
	}
	if jb.Result.Retries != 1 {
		t.Fatalf("retries = %d, want 1", jb.Result.Retries)
	}
	if got := s.Outcomes().Retried; got != 1 {
		t.Fatalf("outcomes retried = %d, want 1", got)
	}
}

func TestServeCancel(t *testing.T) {
	gate := make(chan struct{})
	s, ts := newTestServer(t, Options{Workers: 1, QueueCap: 8, JobHook: stallHook(gate)})

	running := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24}`)
	waitStatus(t, s, running, StatusRunning)
	queued := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24}`)

	// Cancel both: the queued one dies before solving, the running one at
	// its next checkpoint once the gate opens.
	for _, id := range []string{queued, running} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("DELETE %s: %v", id, err)
		}
		resp.Body.Close()
	}
	close(gate)

	for _, id := range []string{running, queued} {
		jb := waitTerminal(t, ts, id)
		if jb.Status != StatusFailed || jb.Result.Error == nil || jb.Result.Error.Kind != kindCanceled {
			t.Fatalf("cancelled job %s: status %s result %+v", id, jb.Status, jb.Result)
		}
	}
}

func TestServeGracefulDrain(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "rc.json")
	s, err := New(Options{Workers: 2, CachePath: path})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	id := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24}`)
	if jb := waitTerminal(t, ts, id); jb.Status != StatusDone {
		t.Fatalf("job %s", jb.Status)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	// The result cache was flushed atomically and decodes cleanly.
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("result cache not flushed: %v", err)
	}
	var store struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(blob, &store); err != nil || store.Schema == "" {
		t.Fatalf("flushed store malformed (schema %q, err %v)", store.Schema, err)
	}

	// Post-drain: admission sheds typed, health answers draining.
	code, m := postJSON(t, ts, "/v1/analyze", `{"program":"hydro"}`)
	if code != http.StatusServiceUnavailable || !strings.Contains(fmt.Sprint(m), kindDraining) {
		t.Fatalf("post-drain POST: %d %v", code, m)
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: %d", resp.StatusCode)
	}
}

// TestServeRunReport checks the server's run report carries job outcomes
// that validate against the obs schema.
func TestServeRunReport(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	id := submitJob(t, ts, "/v1/analyze", `{"program":"hydro","size":24}`)
	waitTerminal(t, ts, id)

	rep := s.RunReport()
	if rep.Jobs == nil || rep.Jobs.Completed != 1 {
		t.Fatalf("run report jobs: %+v", rep.Jobs)
	}
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatalf("write run report: %v", err)
	}
}

// TestDistHandlerMount: an Options.Dist handler owns the /v1/dist/
// prefix; without one the prefix 404s like any unknown route.
func TestDistHandlerMount(t *testing.T) {
	dist := http.NewServeMux()
	dist.HandleFunc("GET /v1/dist/status", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprint(w, `{"units":0}`)
	})
	_, ts := newTestServer(t, Options{Dist: dist})
	resp, err := http.Get(ts.URL + "/v1/dist/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("mounted dist route answered %d, want 200", resp.StatusCode)
	}
	// The server's own routes still win outside the prefix.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz answered %d with dist mounted, want 200", resp.StatusCode)
	}

	_, bare := newTestServer(t, Options{})
	resp, err = http.Get(bare.URL + "/v1/dist/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unmounted dist route answered %d, want 404", resp.StatusCode)
	}
}
