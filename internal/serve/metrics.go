package serve

import "cachemodel/internal/obs"

// Serving metrics, in the Default registry so /metrics exposes them next
// to the solver's cme_* series. Gauges track the live state the load
// shedder acts on; counters record every admission decision and job
// outcome so a run report (or a scrape) can audit exactly what the server
// did under pressure.
var (
	mQueueDepth = obs.Default.Gauge("serve_queue_depth")
	mRunning    = obs.Default.Gauge("serve_jobs_running")
	mReserved   = obs.Default.Gauge("serve_points_reserved")

	mAdmitted   = obs.Default.Counter("serve_admitted_total")
	mShed       = obs.Default.Counter("serve_shed_total")
	mCompleted  = obs.Default.Counter("serve_jobs_completed_total")
	mDegraded   = obs.Default.Counter("serve_jobs_degraded_total")
	mFailed     = obs.Default.Counter("serve_jobs_failed_total")
	mPanics     = obs.Default.Counter("serve_job_panics_total")
	mFlightHits = obs.Default.Counter("serve_singleflight_hits_total")
	mRetries    = obs.Default.Counter("serve_job_retries_total")

	// Queue-wait latency (admission -> first execution), rendered by the
	// Prometheus exporter as cumulative _bucket/_sum/_count series.
	mQueueWaitMs = obs.Default.Histogram("serve_queue_wait_ms",
		1, 3, 10, 30, 100, 300, 1000, 3000, 10000, 30000, 120000)
)
