package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"sort"
	"strings"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cerr"
	"cachemodel/internal/cme"
	"cachemodel/internal/fparse"
	"cachemodel/internal/ir"
	"cachemodel/internal/obs"
)

// ScalingRequest is the POST /v1/scaling body: one program family, one
// cache geometry, one size ladder. The server lifts the family to
// piecewise quasi-polynomials once and answers every ladder size by O(1)
// evaluation — sizes the closed form cannot cover fall through to
// per-size solves under the job's budget.
type ScalingRequest struct {
	ProgramSpec            // Size is ignored: the ladder carries the sizes
	Budget      BudgetSpec `json:"budget"`

	CacheBytes int64 `json:"cache_bytes,omitempty"` // default 32768
	LineBytes  int64 `json:"line_bytes,omitempty"`  // default 32
	Assoc      int   `json:"assoc,omitempty"`       // default 1

	// The ladder: explicit Ns, or From/To/Step (defaults 64/512/64).
	Ns   []int64 `json:"ns,omitempty"`
	From int64   `json:"from,omitempty"`
	To   int64   `json:"to,omitempty"`
	Step int64   `json:"step,omitempty"`

	// SizeConst names the inline-source constant carrying the problem
	// size (default "N"); ignored for built-in programs.
	SizeConst string `json:"size_const,omitempty"`

	Priority string `json:"priority,omitempty"`
}

// scalingSpec is the scaling-specific half of a jobSpec: the program
// family and the ladder, plus the solve's content key.
type scalingSpec struct {
	build cme.BuildFunc
	ns    []int64
	key   string
}

// specFromScaling validates a scaling request into a jobSpec. The jobSpec
// carries one candidate per ladder size (all the same geometry), so the
// generic result rendering and admission paths apply unchanged; np stays
// nil and attempt() branches on spec.scaling instead.
func (o *Options) specFromScaling(req *ScalingRequest) (*jobSpec, error) {
	iters := req.Iters
	if iters == 0 {
		iters = 2
	}
	if iters < 1 {
		return nil, fmt.Errorf("iters must be positive (got %d)", iters)
	}
	ns := req.Ns
	if len(ns) == 0 {
		from, to, step := req.From, req.To, req.Step
		if from == 0 {
			from = 64
		}
		if to == 0 {
			to = 512
		}
		if step == 0 {
			step = 64
		}
		if step < 0 || to < from {
			return nil, fmt.Errorf("bad ladder: from %d to %d step %d", from, to, step)
		}
		if from < 1 {
			return nil, fmt.Errorf("ladder size %d must be positive", from)
		}
		if to > o.MaxProblemSize {
			return nil, fmt.Errorf("ladder size %d exceeds the server limit %d", to, o.MaxProblemSize)
		}
		// from/to/step are request-controlled: size the ladder arithmetically
		// before materializing it, so an absurd range is a 400 and not an
		// admission-time OOM. Indexing by count (rather than n += step) also
		// keeps a huge step from wrapping n past to.
		count := (to-from)/step + 1
		if count > int64(o.MaxCandidates) {
			return nil, fmt.Errorf("ladder of %d sizes exceeds the server limit %d", count, o.MaxCandidates)
		}
		for i := int64(0); i < count; i++ {
			ns = append(ns, from+i*step)
		}
	}
	if len(ns) == 0 {
		return nil, fmt.Errorf("empty size ladder")
	}
	if len(ns) > o.MaxCandidates {
		return nil, fmt.Errorf("ladder of %d sizes exceeds the server limit %d", len(ns), o.MaxCandidates)
	}
	for _, n := range ns {
		if n < 1 {
			return nil, fmt.Errorf("ladder size %d must be positive", n)
		}
		if n > o.MaxProblemSize {
			return nil, fmt.Errorf("ladder size %d exceeds the server limit %d", n, o.MaxProblemSize)
		}
	}
	sizeConst := strings.ToUpper(req.SizeConst)
	if sizeConst == "" {
		sizeConst = "N"
	}
	var label string
	var build cme.BuildFunc
	switch {
	case req.Source != "" && req.Program != "":
		return nil, fmt.Errorf("set program or source, not both")
	case req.Source != "":
		label = "source"
		src := req.Source
		fixed := map[string]int64{}
		for k, v := range req.Consts {
			fixed[strings.ToUpper(k)] = v
		}
		build = func(n int64) (*ir.NProgram, error) {
			cm := map[string]int64{sizeConst: n}
			for k, v := range fixed {
				cm[k] = v
			}
			p, err := fparse.Parse(src, cm)
			if err != nil {
				return nil, err
			}
			return prepareProgram(p)
		}
	default:
		label = req.Program
		// Validate the name once at admission (with any ladder size) so a
		// bad program is a 400, not a failed job.
		if _, err := buildProgram(&ProgramSpec{Program: req.Program, Size: ns[0], Iters: iters}, o.MaxProblemSize); err != nil {
			return nil, err
		}
		spec := ProgramSpec{Program: req.Program, Iters: iters}
		build = func(n int64) (*ir.NProgram, error) {
			s := spec
			s.Size = n
			p, err := buildProgram(&s, o.MaxProblemSize)
			if err != nil {
				return nil, err
			}
			return prepareProgram(p)
		}
	}
	cfg := cache.Config{SizeBytes: req.CacheBytes, LineBytes: req.LineBytes, Assoc: req.Assoc}
	if cfg.SizeBytes == 0 {
		cfg.SizeBytes = 32 * 1024
	}
	if cfg.LineBytes == 0 {
		cfg.LineBytes = 32
	}
	if cfg.Assoc == 0 {
		cfg.Assoc = 1
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	bud, err := o.buildBudget(req.Budget)
	if err != nil {
		return nil, err
	}
	cands := make([]cme.Candidate, len(ns))
	for i, n := range ns {
		cands[i] = cme.Candidate{Label: fmt.Sprintf("N=%d", n), Config: cfg}
	}
	return &jobSpec{
		program: label,
		opt:     cme.Options{},
		cands:   cands,
		bud:     bud,
		cost:    bud.MaxPoints,
		scaling: &scalingSpec{build: build, ns: ns,
			key: scalingKey(label, req.Source, req.Consts, sizeConst, iters, cfg, ns)},
	}, nil
}

// scalingKey content-addresses a scaling solve for singleflight dedup:
// family identity, geometry and ladder.
func scalingKey(label, source string, consts map[string]int64, sizeConst string,
	iters int64, cfg cache.Config, ns []int64) string {

	h := sha256.New()
	fmt.Fprintf(h, "scaling|%s|%s|%s|%d|%s|", label, source, sizeConst, iters, cfg)
	keys := make([]string, 0, len(consts))
	for k := range consts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(h, "%s=%d,", k, consts[k])
	}
	// The ladder is part of the key in order: results are index-aligned.
	for _, n := range ns {
		fmt.Fprintf(h, "%d;", n)
	}
	return "sc:" + hex.EncodeToString(h.Sum(nil))[:32]
}

// solveScaling is the flight leader's body for a scaling job: one
// symbolic lift, then the ladder. Budget semantics: the job budget meters
// every internal exact solve (fit samples and fall-through sizes), so a
// tight budget degrades per size instead of stalling the worker.
func (s *Server) solveScaling(ctx context.Context, col *obs.Collector, spec *jobSpec, bud budget.Budget) (out *solveOutcome) {
	defer func() {
		if r := recover(); r != nil {
			mPanics.Inc()
			out = &solveOutcome{err: cerr.FromPanic(r)}
		}
	}()
	ctx = obs.NewContext(ctx, col)
	opt := spec.opt
	opt.Workers = s.opt.SolveWorkers
	sc := spec.scaling
	solver, err := cme.PrepareScaling(sc.build, spec.cands[0].Config, opt, cme.ScalingOptions{Budget: bud})
	if err != nil {
		return &solveOutcome{err: err}
	}
	reps, err := solver.SolveLadder(ctx, sc.ns)
	return &solveOutcome{reports: reps, err: err}
}

func (s *Server) handleScaling(w http.ResponseWriter, r *http.Request) {
	var req ScalingRequest
	if !decodeBody(w, r, &req) {
		return
	}
	prio, err := parsePriority(req.Priority)
	if err != nil {
		writeError(w, http.StatusBadRequest, kindInvalid, err.Error(), 0)
		return
	}
	spec, err := s.opt.specFromScaling(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, kindInvalid, err.Error(), 0)
		return
	}
	s.enqueue(w, r, spec, prio)
}
