// Strength-reduced execution and interval walkers. The generic walkers in
// trace.go call NRef.AddressAt per access, which re-evaluates the full
// affine address expression (n multiply-adds plus bounds checks) at every
// visit; the prepared walkers here flatten each reference's address affine
// once, hoist the depth-prefix of the address and of every guard out of
// the innermost loop, and reuse one scratch index vector across walks, so
// the per-access cost of the inner loop is a single multiply-add.
package trace

import (
	"cachemodel/internal/ir"
)

// refPlan is the flattened per-reference address affine: addr(idx) =
// Const + Σ Coeff[k]·idx[k]. Inner is the innermost coefficient, split out
// so leaf rows evaluate addr = rowBase + Inner·v.
type refPlan struct {
	ref   *ir.NRef
	konst int64
	coeff []int64 // full-length (np.Depth) coefficient vector
	inner int64   // coeff[np.Depth-1]
}

// guardPlan mirrors one guard constraint with its innermost coefficient
// split out: the guard holds at the leaf iff rowBase + Inner·v ⋈ 0.
type guardPlan struct {
	konst int64
	coeff []int64
	inner int64
	isEq  bool
}

// stmtPlan is the per-statement leaf plan.
type stmtPlan struct {
	stmt   *ir.NStmt
	guards []guardPlan
	refs   []refPlan
	// scratch row bases, rewritten on every leaf-row entry.
	guardBase []int64
	refBase   []int64
}

// rowEnter hoists the depth-prefix of every guard and address affine for
// the current idx prefix (idx[n-1] is about to sweep).
func (sp *stmtPlan) rowEnter(idx []int64, n int) {
	for i := range sp.guards {
		g := &sp.guards[i]
		v := g.konst
		for k := 0; k < n-1; k++ {
			if c := g.coeff[k]; c != 0 {
				v += c * idx[k]
			}
		}
		sp.guardBase[i] = v
	}
	for i := range sp.refs {
		r := &sp.refs[i]
		v := r.konst
		for k := 0; k < n-1; k++ {
			if c := r.coeff[k]; c != 0 {
				v += c * idx[k]
			}
		}
		sp.refBase[i] = v
	}
}

// guardsHold evaluates all guards at innermost value v from the hoisted
// prefixes.
func (sp *stmtPlan) guardsHold(v int64) bool {
	for i := range sp.guards {
		g := &sp.guards[i]
		val := sp.guardBase[i] + g.inner*v
		if g.isEq {
			if val != 0 {
				return false
			}
		} else if val < 0 {
			return false
		}
	}
	return true
}

func newStmtPlan(st *ir.NStmt, n int) *stmtPlan {
	sp := &stmtPlan{stmt: st}
	for _, g := range st.Guards {
		gp := guardPlan{konst: g.Expr.Const, coeff: make([]int64, n), isEq: g.IsEq}
		for k := 1; k <= n; k++ {
			gp.coeff[k-1] = g.Expr.At(k)
		}
		gp.inner = gp.coeff[n-1]
		sp.guards = append(sp.guards, gp)
	}
	for _, r := range st.Refs {
		aff := r.AddressAffine()
		rp := refPlan{ref: r, konst: aff.Const, coeff: make([]int64, n)}
		for k := 1; k <= n; k++ {
			rp.coeff[k-1] = aff.At(k)
		}
		rp.inner = rp.coeff[n-1]
		sp.refs = append(sp.refs, rp)
	}
	sp.guardBase = make([]int64, len(sp.guards))
	sp.refBase = make([]int64, len(sp.refs))
	return sp
}

// execPlan is the prepared form of a normalised program for address-
// carrying execution: the loop tree annotated with per-statement leaf
// plans. Building it is cheap (linear in program text) relative to any
// walk, and one plan is reusable across runs by a single goroutine.
type execPlan struct {
	np    *ir.NProgram
	leafs map[*ir.NLoop][]*stmtPlan
	idx   []int64
}

// leafPlans builds per-leaf-loop plan slices for the whole tree, so walks
// never allocate.
func leafPlans(np *ir.NProgram) map[*ir.NLoop][]*stmtPlan {
	leafs := map[*ir.NLoop][]*stmtPlan{}
	var rec func(nl *ir.NLoop)
	rec = func(nl *ir.NLoop) {
		if len(nl.Stmts) > 0 {
			plans := make([]*stmtPlan, len(nl.Stmts))
			for i, st := range nl.Stmts {
				plans[i] = newStmtPlan(st, np.Depth)
			}
			leafs[nl] = plans
		}
		for _, c := range nl.Loops {
			rec(c)
		}
	}
	for _, nl := range np.Top {
		rec(nl)
	}
	return leafs
}

func newExecPlan(np *ir.NProgram) *execPlan {
	return &execPlan{np: np, leafs: leafPlans(np), idx: make([]int64, np.Depth)}
}

// ExecuteAddr visits every reference access in execution order like
// Execute, additionally passing the precomputed byte address. Arrays must
// be laid out. The idx slice is reused; copy it if retained.
func ExecuteAddr(np *ir.NProgram, visit func(r *ir.NRef, idx []int64, addr int64) bool) {
	p := newExecPlan(np)
	for _, nl := range np.Top {
		if !p.exec(nl, 1, visit) {
			return
		}
	}
}

func (p *execPlan) exec(nl *ir.NLoop, depth int, visit func(*ir.NRef, []int64, int64) bool) bool {
	n := p.np.Depth
	idx := p.idx
	lo := nl.Bound.Lo.Eval(idx)
	hi := nl.Bound.Hi.Eval(idx)
	if depth == n {
		// Leaf row: hoist guard and address prefixes, then sweep the
		// innermost index with one multiply-add per access.
		if lo > hi {
			return true
		}
		plans := p.leafs[nl]
		for _, sp := range plans {
			sp.rowEnter(idx, n)
		}
		for v := lo; v <= hi; v++ {
			idx[n-1] = v
			for _, sp := range plans {
				if !sp.guardsHold(v) {
					continue
				}
				for i := range sp.refs {
					r := &sp.refs[i]
					if !visit(r.ref, idx, sp.refBase[i]+r.inner*v) {
						return false
					}
				}
			}
		}
		return true
	}
	for v := lo; v <= hi; v++ {
		idx[depth-1] = v
		for _, c := range nl.Loops {
			if !p.exec(c, depth+1, visit) {
				return false
			}
		}
	}
	return true
}

// Walker is a prepared, allocation-free interval walker for one program:
// the replacement equations call Between/BetweenReverse millions of times,
// so the walker owns its scratch index vector and per-statement plans
// instead of rebuilding them per walk. A Walker is not safe for concurrent
// use; give each worker goroutine its own (NewWalker is cheap).
type Walker struct {
	np    *ir.NProgram
	leafs map[*ir.NLoop][]*stmtPlan
	idx   []int64
	a, b  Time
	visit func(*ir.NRef, int64) bool
}

// NewWalker prepares a walker for the program. Arrays must be laid out.
func NewWalker(np *ir.NProgram) *Walker {
	return &Walker{np: np, leafs: leafPlans(np), idx: make([]int64, np.Depth)}
}

// Between visits every access with time strictly between a and b in
// execution order, passing the precomputed byte address. Return false from
// visit to stop early. Equivalent to VisitBetween + AddressAt.
func (w *Walker) Between(a, b Time, visit func(r *ir.NRef, addr int64) bool) {
	if Compare(a, b) >= 0 {
		return
	}
	w.a, w.b, w.visit = a, b, visit
	for p, nl := range w.np.Top {
		pos := p + 1
		if pos < a.Label[0] {
			continue
		}
		if pos > b.Label[0] {
			break
		}
		if !w.walk(nl, 1, pos == a.Label[0], pos == b.Label[0]) {
			break
		}
	}
	w.visit = nil
}

// BetweenReverse is Between in reverse execution order (most recent
// first). Equivalent to VisitBetweenReverse + AddressAt.
func (w *Walker) BetweenReverse(a, b Time, visit func(r *ir.NRef, addr int64) bool) {
	if Compare(a, b) >= 0 {
		return
	}
	w.a, w.b, w.visit = a, b, visit
	for p := len(w.np.Top) - 1; p >= 0; p-- {
		pos := p + 1
		if pos < w.a.Label[0] {
			break
		}
		if pos > w.b.Label[0] {
			continue
		}
		if !w.walkRev(w.np.Top[p], 1, pos == w.a.Label[0], pos == w.b.Label[0]) {
			break
		}
	}
	w.visit = nil
}

func (w *Walker) walk(nl *ir.NLoop, depth int, lt, ht bool) bool {
	n := w.np.Depth
	idx := w.idx
	from := nl.Bound.Lo.Eval(idx)
	to := nl.Bound.Hi.Eval(idx)
	if lt && w.a.Idx[depth-1] > from {
		from = w.a.Idx[depth-1]
	}
	if ht && w.b.Idx[depth-1] < to {
		to = w.b.Idx[depth-1]
	}
	if depth == n {
		if from > to {
			return true
		}
		plans := w.leafs[nl]
		for _, sp := range plans {
			sp.rowEnter(idx, n)
		}
		for v := from; v <= to; v++ {
			idx[n-1] = v
			vlt := lt && v == w.a.Idx[n-1]
			vht := ht && v == w.b.Idx[n-1]
			for _, sp := range plans {
				if !sp.guardsHold(v) {
					continue
				}
				for i := range sp.refs {
					r := &sp.refs[i]
					if vlt && r.ref.Seq <= w.a.Seq {
						continue
					}
					if vht && r.ref.Seq >= w.b.Seq {
						continue
					}
					if !w.visit(r.ref, sp.refBase[i]+r.inner*v) {
						return false
					}
				}
			}
		}
		return true
	}
	for v := from; v <= to; v++ {
		idx[depth-1] = v
		vlt := lt && v == w.a.Idx[depth-1]
		vht := ht && v == w.b.Idx[depth-1]
		for p, c := range nl.Loops {
			pos := p + 1
			if vlt && pos < w.a.Label[depth] {
				continue
			}
			if vht && pos > w.b.Label[depth] {
				break
			}
			if !w.walk(c, depth+1, vlt && pos == w.a.Label[depth], vht && pos == w.b.Label[depth]) {
				return false
			}
		}
	}
	return true
}

func (w *Walker) walkRev(nl *ir.NLoop, depth int, lt, ht bool) bool {
	n := w.np.Depth
	idx := w.idx
	from := nl.Bound.Lo.Eval(idx)
	to := nl.Bound.Hi.Eval(idx)
	if lt && w.a.Idx[depth-1] > from {
		from = w.a.Idx[depth-1]
	}
	if ht && w.b.Idx[depth-1] < to {
		to = w.b.Idx[depth-1]
	}
	if depth == n {
		if from > to {
			return true
		}
		plans := w.leafs[nl]
		for _, sp := range plans {
			sp.rowEnter(idx, n)
		}
		for v := to; v >= from; v-- {
			idx[n-1] = v
			vlt := lt && v == w.a.Idx[n-1]
			vht := ht && v == w.b.Idx[n-1]
			for si := len(plans) - 1; si >= 0; si-- {
				sp := plans[si]
				if !sp.guardsHold(v) {
					continue
				}
				for i := len(sp.refs) - 1; i >= 0; i-- {
					r := &sp.refs[i]
					if vlt && r.ref.Seq <= w.a.Seq {
						continue
					}
					if vht && r.ref.Seq >= w.b.Seq {
						continue
					}
					if !w.visit(r.ref, sp.refBase[i]+r.inner*v) {
						return false
					}
				}
			}
		}
		return true
	}
	for v := to; v >= from; v-- {
		idx[depth-1] = v
		vlt := lt && v == w.a.Idx[depth-1]
		vht := ht && v == w.b.Idx[depth-1]
		for p := len(nl.Loops) - 1; p >= 0; p-- {
			pos := p + 1
			if vlt && pos < w.a.Label[depth] {
				break
			}
			if vht && pos > w.b.Label[depth] {
				continue
			}
			if !w.walkRev(nl.Loops[p], depth+1, vlt && pos == w.a.Label[depth], vht && pos == w.b.Label[depth]) {
				return false
			}
		}
	}
	return true
}
