package trace

import (
	"math/rand"
	"testing"

	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
)

// guardedNest builds a 3-deep nest with a guard and a triangular bound, so
// the strength-reduced walkers face non-rectangular row shapes.
func guardedNest(n int64) *ir.NProgram {
	b := ir.NewSub("g")
	A := b.Real8("A", n, n)
	B := b.Real8("B", n*n)
	i, j, k := ir.Var("I"), ir.Var("J"), ir.Var("K")
	b.Do("I", ir.Con(1), ir.Con(n)).
		Do("J", ir.Con(1), i). // J <= I
		Do("K", ir.Con(1), ir.Con(n)).
		IfCond(ir.Cond{LHS: k, Op: ir.GE, RHS: j}).
		Assign("S1", ir.R(A, k, i), ir.R(B, j.Scale(2).Plus(k))).
		End().
		Assign("S2", ir.R(B, i.Plus(k)), ir.R(A, k, j)).
		End().End().End()
	np, err := normalize.Normalize(b.Build())
	if err != nil {
		panic(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		panic(err)
	}
	return np
}

// TestExecuteAddrMatchesExecute: the prepared executor must visit the same
// accesses in the same order as the generic one, with matching addresses.
func TestExecuteAddrMatchesExecute(t *testing.T) {
	for name, np := range map[string]*ir.NProgram{"twoNests": twoNests(6), "guarded": guardedNest(5)} {
		type rec struct {
			ref  *ir.NRef
			addr int64
		}
		var want []rec
		Execute(np, func(r *ir.NRef, idx []int64) bool {
			want = append(want, rec{r, r.AddressAt(idx)})
			return true
		})
		var got []rec
		ExecuteAddr(np, func(r *ir.NRef, _ []int64, addr int64) bool {
			got = append(got, rec{r, addr})
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("%s: ExecuteAddr visited %d accesses, Execute %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: access %d: got %v want %v", name, i, got[i], want[i])
			}
		}
	}
}

// TestWalkerMatchesVisitBetween: for random access-time pairs, the
// prepared Walker must visit exactly the accesses (and addresses) the
// generic interval walkers visit, in both directions.
func TestWalkerMatchesVisitBetween(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, np := range map[string]*ir.NProgram{"twoNests": twoNests(5), "guarded": guardedNest(4)} {
		acc := collect(np)
		times := make([]Time, len(acc))
		for i, a := range acc {
			times[i] = Time{Label: a.ref.Stmt.Label, Idx: a.idx, Seq: a.ref.Seq}
		}
		w := NewWalker(np)
		type rec struct {
			ref  *ir.NRef
			addr int64
		}
		for trial := 0; trial < 60; trial++ {
			x, y := rng.Intn(len(times)), rng.Intn(len(times))
			if x > y {
				x, y = y, x
			}
			a, b := times[x], times[y]
			var wantF, gotF, wantR, gotR []rec
			VisitBetween(np, a, b, func(r *ir.NRef, idx []int64) bool {
				wantF = append(wantF, rec{r, r.AddressAt(idx)})
				return true
			})
			w.Between(a, b, func(r *ir.NRef, addr int64) bool {
				gotF = append(gotF, rec{r, addr})
				return true
			})
			VisitBetweenReverse(np, a, b, func(r *ir.NRef, idx []int64) bool {
				wantR = append(wantR, rec{r, r.AddressAt(idx)})
				return true
			})
			w.BetweenReverse(a, b, func(r *ir.NRef, addr int64) bool {
				gotR = append(gotR, rec{r, addr})
				return true
			})
			for _, c := range []struct {
				dir       string
				got, want []rec
			}{{"forward", gotF, wantF}, {"reverse", gotR, wantR}} {
				if len(c.got) != len(c.want) {
					t.Fatalf("%s %s (%v..%v): walker visited %d, generic %d", name, c.dir, a, b, len(c.got), len(c.want))
				}
				for i := range c.want {
					if c.got[i] != c.want[i] {
						t.Fatalf("%s %s: access %d: got %v want %v", name, c.dir, i, c.got[i], c.want[i])
					}
				}
			}
		}
	}
}

// TestWalkerEarlyStop: returning false stops the walk exactly there.
func TestWalkerEarlyStop(t *testing.T) {
	np := twoNests(5)
	acc := collect(np)
	a := Time{Label: acc[0].ref.Stmt.Label, Idx: acc[0].idx, Seq: acc[0].ref.Seq}
	b := Time{Label: acc[len(acc)-1].ref.Stmt.Label, Idx: acc[len(acc)-1].idx, Seq: acc[len(acc)-1].ref.Seq}
	w := NewWalker(np)
	for _, dir := range []string{"forward", "reverse"} {
		n := 0
		visit := func(*ir.NRef, int64) bool { n++; return n < 4 }
		if dir == "forward" {
			w.Between(a, b, visit)
		} else {
			w.BetweenReverse(a, b, visit)
		}
		if n != 4 {
			t.Fatalf("%s: early stop visited %d accesses, want 4", dir, n)
		}
	}
}
