// Set-sharded parallel simulation. Under LRU (any per-set replacement
// policy, in fact) cache sets are independent: the outcome of an access
// depends only on the earlier accesses that map to the same set. The
// sharded simulator exploits this by partitioning the reference stream by
// cache set across per-shard LRU workers fed through bounded queues, so
// the ground-truth baseline scales with cores while producing counts
// bit-identical to the sequential simulator.
package trace

import (
	"context"
	"runtime"
	"sync"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/obs"
)

// shardItem is one access routed to a shard: the global reference index
// (carrying the write flag via np.Refs) and the byte address.
type shardItem struct {
	ref  int32
	addr int64
}

// shardBatch is the unit sent over a shard queue; batching amortises the
// channel synchronisation over many accesses.
const shardBatch = 4096

// queueDepth bounds each shard queue (in batches), so a slow shard
// backpressures the producer instead of ballooning memory.
const queueDepth = 8

// SimulateShardedCtx is SimulatePolicyCtx with set-sharded parallel
// replay: the reference stream is partitioned by cache set across at most
// `workers` shard workers, each running an exact LRU simulator over its
// sets, and the per-shard counts are merged at the end. Counts are
// bit-identical to the sequential simulator at any worker count, because
// every set still observes its accesses in program order. workers <= 1
// falls back to the sequential path. On cancellation or budget exhaustion
// the produced prefix is fully drained before returning, so the truncated
// counts are coherent (they cover exactly the first N accesses of the
// stream for some N).
func SimulateShardedCtx(ctx context.Context, np *ir.NProgram, cfg cache.Config, policy cache.WritePolicy, b budget.Budget, workers int) (*SimResult, error) {
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	nsets := cfg.NumSets()
	if int64(workers) > nsets {
		workers = int(nsets)
	}
	if workers <= 1 {
		return SimulatePolicyCtx(ctx, np, cfg, policy, b)
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	_, span := obs.StartSpan(ctx, "simulate.sharded")
	defer span.End()
	span.SetAttr("workers", workers)

	nsh := workers
	queues := make([]chan []shardItem, nsh)
	for i := range queues {
		queues[i] = make(chan []shardItem, queueDepth)
	}
	// Recycle batch buffers between producer and consumers.
	pool := sync.Pool{New: func() any { return make([]shardItem, 0, shardBatch) }}

	type shardState struct {
		sim   *cache.Simulator
		stats []RefStats
	}
	shards := make([]shardState, nsh)
	var wg sync.WaitGroup
	for s := 0; s < nsh; s++ {
		shards[s] = shardState{sim: cache.NewSimulator(cfg), stats: make([]RefStats, len(np.Refs))}
		shards[s].sim.SetWritePolicy(policy)
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sh := &shards[s]
			for batch := range queues[s] {
				for _, it := range batch {
					st := &sh.stats[it.ref]
					st.Accesses++
					var miss bool
					if np.Refs[it.ref].Write {
						miss = sh.sim.AccessWrite(it.addr)
					} else {
						miss = sh.sim.Access(it.addr)
					}
					if miss {
						st.Misses++
					}
				}
				pool.Put(batch[:0])
			}
		}(s)
	}

	// Producer: replay the iteration space, route each access to the
	// shard owning its cache set. Budget checkpoints run here, at the same
	// per-access granularity as the sequential path.
	m := budget.NewMeter(ctx, b)
	var p *budget.Probe
	if !m.Unlimited() {
		p = m.Probe()
	}
	pending := make([][]shardItem, nsh)
	for i := range pending {
		pending[i] = pool.Get().([]shardItem)
	}
	var ierr error
	ExecuteAddr(np, func(r *ir.NRef, _ []int64, addr int64) bool {
		s := int(cfg.SetOf(addr) % int64(nsh))
		pending[s] = append(pending[s], shardItem{ref: int32(r.Seq), addr: addr})
		if len(pending[s]) == shardBatch {
			queues[s] <- pending[s]
			pending[s] = pool.Get().([]shardItem)
		}
		if p != nil {
			if ierr = p.Check(1, 0); ierr != nil {
				return false
			}
		}
		return true
	})
	for s := range queues {
		if len(pending[s]) > 0 {
			queues[s] <- pending[s]
		}
		close(queues[s])
	}
	if p != nil {
		p.Drain()
	}
	wg.Wait()

	stats := make([]RefStats, len(np.Refs))
	var accesses, misses int64
	for s := range shards {
		accesses += shards[s].sim.Accesses
		misses += shards[s].sim.Misses
		for i := range shards[s].stats {
			stats[i].Accesses += shards[s].stats[i].Accesses
			stats[i].Misses += shards[s].stats[i].Misses
		}
	}
	res := collectSimResult(np, cfg, stats, accesses, misses)
	if ierr != nil {
		res.Truncated = true
	}
	return res, ierr
}

// SimulateSharded replays the program through the set-sharded parallel
// simulator with an unlimited budget.
func SimulateSharded(np *ir.NProgram, cfg cache.Config, workers int) *SimResult {
	res, _ := SimulateShardedCtx(context.Background(), np, cfg, cache.FetchOnWrite, budget.Budget{}, workers)
	return res
}
