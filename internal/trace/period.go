package trace

// Address-plan periodicity helpers. A reference whose linearised address
// advances by a fixed stride c along one loop dimension revisits the same
// line offset every LineWrapPeriod iterations and the same cache set every
// SetWrapPeriod iterations: translating the iteration by a multiple of the
// period shifts every address by a multiple of the line (resp. way) size,
// which moves whole memory lines without changing any line-relative or
// set-relative relation. The symbolic solver uses these periods to
// classify one period of a dimension and replicate the verdicts across
// the rest.

// Gcd returns the greatest common divisor of two non-negative int64s
// (gcd(0, b) = b).
func Gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LineWrapPeriod returns the smallest t > 0 such that stride·t is a
// multiple of lineBytes: translating an access by t iterations along the
// strided dimension shifts its address by whole memory lines. A zero
// stride yields period 1 (the address does not move at all).
func LineWrapPeriod(stride, lineBytes int64) int64 {
	if stride < 0 {
		stride = -stride
	}
	if stride == 0 {
		return 1
	}
	return lineBytes / Gcd(stride, lineBytes)
}

// SetWrapPeriod returns the smallest t > 0 such that stride·t is a
// multiple of numSets·lineBytes (the way size): translating by t
// iterations maps every memory line to another line in the same cache
// set. It is always a multiple of LineWrapPeriod.
func SetWrapPeriod(stride, lineBytes, numSets int64) int64 {
	if stride < 0 {
		stride = -stride
	}
	if stride == 0 {
		return 1
	}
	way := lineBytes * numSets
	return way / Gcd(stride, way)
}
