package trace

import (
	"context"
	"errors"
	"testing"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/cerr"
	"cachemodel/internal/ir"
	"cachemodel/internal/obs"
)

// TestShardedMatchesSequential: the set-sharded simulator must be
// bit-identical to the sequential simulator — globally and per reference —
// at every worker count and write policy.
func TestShardedMatchesSequential(t *testing.T) {
	progs := map[string]*ir.NProgram{"twoNests": twoNests(12), "guarded": guardedNest(8)}
	cfgs := []cache.Config{
		{SizeBytes: 1024, LineBytes: 32, Assoc: 1},
		{SizeBytes: 2048, LineBytes: 32, Assoc: 2},
		{SizeBytes: 4096, LineBytes: 64, Assoc: 4},
	}
	for name, np := range progs {
		for _, cfg := range cfgs {
			for _, policy := range []cache.WritePolicy{cache.FetchOnWrite, cache.WriteNoAllocate} {
				want := SimulatePolicy(np, cfg, policy)
				for _, workers := range []int{2, 3, 8, 64} {
					got, err := SimulateShardedCtx(context.Background(), np, cfg, policy, budget.Budget{}, workers)
					if err != nil {
						t.Fatalf("%s [%s] w=%d: %v", name, cfg, workers, err)
					}
					if got.Accesses != want.Accesses || got.Misses != want.Misses {
						t.Fatalf("%s [%s] w=%d policy=%d: got %d/%d accesses/misses, want %d/%d",
							name, cfg, workers, policy, got.Accesses, got.Misses, want.Accesses, want.Misses)
					}
					for r, ws := range want.PerRef {
						gs := got.PerRef[r]
						if gs == nil || *gs != *ws {
							t.Fatalf("%s [%s] w=%d: ref %s diverged: got %+v want %+v", name, cfg, workers, r.ID, gs, ws)
						}
					}
					if len(got.PerRef) != len(want.PerRef) {
						t.Fatalf("%s [%s] w=%d: %d refs vs %d", name, cfg, workers, len(got.PerRef), len(want.PerRef))
					}
				}
			}
		}
	}
}

// TestShardedWorkerClamp: more workers than sets must not break anything
// (workers are clamped to the set count), and one worker falls back to the
// sequential path.
func TestShardedWorkerClamp(t *testing.T) {
	np := twoNests(8)
	cfg := cache.Config{SizeBytes: 256, LineBytes: 64, Assoc: 2} // 2 sets
	want := Simulate(np, cfg)
	for _, workers := range []int{1, 2, 99} {
		got := SimulateSharded(np, cfg, workers)
		if got.Accesses != want.Accesses || got.Misses != want.Misses {
			t.Fatalf("w=%d: got %d/%d, want %d/%d", workers, got.Accesses, got.Misses, want.Accesses, want.Misses)
		}
	}
}

// TestShardedW1Bypass: one effective shard means sharding can only add
// queue and merge overhead, so the sharded entry point must dispatch
// straight to the sequential simulator — observable as a "simulate" span
// with no "simulate.sharded" span, whether the single shard comes from an
// explicit workers=1 or from the set-count clamp.
func TestShardedW1Bypass(t *testing.T) {
	np := twoNests(12)
	cases := []struct {
		name    string
		cfg     cache.Config
		workers int
	}{
		{"workers=1", cache.Config{SizeBytes: 2048, LineBytes: 32, Assoc: 2}, 1},
		{"one set, workers=8", cache.Config{SizeBytes: 256, LineBytes: 64, Assoc: 4}, 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			want := Simulate(np, tc.cfg)
			col := obs.New("test")
			ctx := obs.NewContext(context.Background(), col)
			got, err := SimulateShardedCtx(ctx, np, tc.cfg, cache.FetchOnWrite, budget.Budget{}, tc.workers)
			if err != nil {
				t.Fatal(err)
			}
			if got.Accesses != want.Accesses || got.Misses != want.Misses {
				t.Fatalf("got %d/%d accesses/misses, want %d/%d",
					got.Accesses, got.Misses, want.Accesses, want.Misses)
			}
			var names []string
			for _, sp := range col.Report().Spans.Children {
				names = append(names, sp.Name)
			}
			if len(names) != 1 || names[0] != "simulate" {
				t.Fatalf("spans = %v, want exactly [simulate]: the single-shard case must bypass the sharded machinery", names)
			}
		})
	}
}

// TestShardedBudgetTruncation: budget exhaustion mid-replay must yield a
// coherent truncated prefix — the flag set, the error typed, per-ref
// counts summing to the global counts, and strictly fewer accesses than
// the full run.
func TestShardedBudgetTruncation(t *testing.T) {
	np := twoNests(16)
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 1}
	full := Simulate(np, cfg)
	res, err := SimulateShardedCtx(context.Background(), np, cfg, cache.FetchOnWrite,
		budget.Budget{MaxPoints: full.Accesses / 3}, 4)
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("err = %v, want ErrBudgetExceeded", err)
	}
	if !res.Truncated {
		t.Fatal("Truncated not set on an exhausted run")
	}
	if res.Accesses <= 0 || res.Accesses >= full.Accesses {
		t.Fatalf("truncated run replayed %d of %d accesses", res.Accesses, full.Accesses)
	}
	var sum int64
	for _, st := range res.PerRef {
		sum += st.Accesses
	}
	if sum != res.Accesses {
		t.Fatalf("per-ref accesses sum %d != global %d", sum, res.Accesses)
	}
}

// TestShardedCancellation: a cancelled context stops the replay with
// ErrCanceled and a coherent prefix.
func TestShardedCancellation(t *testing.T) {
	np := twoNests(16)
	cfg := cache.Config{SizeBytes: 1024, LineBytes: 32, Assoc: 1}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SimulateShardedCtx(ctx, np, cfg, cache.FetchOnWrite, budget.Budget{MaxPoints: 1 << 40}, 4)
	if !errors.Is(err, cerr.ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !res.Truncated {
		t.Fatal("Truncated not set on a cancelled run")
	}
}
