// Package trace executes a normalised program's iteration space in the
// lexicographic order of §3.2, producing the memory reference stream. It
// drives the exact cache simulator (the paper's validation baseline) and
// provides the ranged execution walk used by the replacement equations to
// enumerate interference sets.
package trace

import (
	"context"

	"cachemodel/internal/budget"
	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/obs"
)

// Simulator metrics, flushed once per simulation run (the per-access path
// stays atomic-free).
var (
	mSimRuns     = obs.Default.Counter("trace_sim_runs_total")
	mSimAccesses = obs.Default.Counter("trace_sim_accesses_total")
	mSimMisses   = obs.Default.Counter("trace_sim_misses_total")
)

// Time identifies one access instant: the interleaved iteration vector
// (Label, Idx) of §3.2 plus the global intra-point access position Seq.
type Time struct {
	Label []int
	Idx   []int64
	Seq   int
}

// Compare orders two access times (negative, zero, positive).
func Compare(a, b Time) int {
	if c := ir.CompareIterations(a.Label, a.Idx, b.Label, b.Idx); c != 0 {
		return c
	}
	switch {
	case a.Seq < b.Seq:
		return -1
	case a.Seq > b.Seq:
		return 1
	default:
		return 0
	}
}

// Execute visits every reference access of the program in execution order.
// The idx slice passed to visit is reused; copy it if retained. Return
// false from visit to stop early.
func Execute(np *ir.NProgram, visit func(r *ir.NRef, idx []int64) bool) {
	idx := make([]int64, np.Depth)
	for _, nl := range np.Top {
		if !exec(nl, 1, np.Depth, idx, visit) {
			return
		}
	}
}

func exec(nl *ir.NLoop, depth, n int, idx []int64, visit func(*ir.NRef, []int64) bool) bool {
	lo := nl.Bound.Lo.Eval(idx)
	hi := nl.Bound.Hi.Eval(idx)
	for v := lo; v <= hi; v++ {
		idx[depth-1] = v
		if depth == n {
			for _, st := range nl.Stmts {
				if !st.GuardHolds(idx) {
					continue
				}
				for _, r := range st.Refs {
					if !visit(r, idx) {
						return false
					}
				}
			}
			continue
		}
		for _, c := range nl.Loops {
			if !exec(c, depth+1, n, idx, visit) {
				return false
			}
		}
	}
	return true
}

// VisitBetween visits every access with time strictly between a and b, in
// execution order. Return false from visit to stop early.
func VisitBetween(np *ir.NProgram, a, b Time, visit func(r *ir.NRef, idx []int64) bool) {
	if Compare(a, b) >= 0 {
		return
	}
	idx := make([]int64, np.Depth)
	w := &rangeWalker{np: np, a: a, b: b, visit: visit}
	for p, nl := range np.Top {
		lt, ht := true, true
		pos := p + 1
		if lt && pos < a.Label[0] {
			continue
		}
		if ht && pos > b.Label[0] {
			break
		}
		lt = lt && pos == a.Label[0]
		ht = ht && pos == b.Label[0]
		if !w.walk(nl, 1, idx, lt, ht) {
			return
		}
	}
}

type rangeWalker struct {
	np    *ir.NProgram
	a, b  Time
	visit func(*ir.NRef, []int64) bool
}

// walk enumerates the subtree at the given depth. lt (ht) indicates that
// the label/index prefix chosen so far equals a's (b's) prefix exactly, so
// the corresponding boundary still constrains deeper choices.
func (w *rangeWalker) walk(nl *ir.NLoop, depth int, idx []int64, lt, ht bool) bool {
	n := w.np.Depth
	lo := nl.Bound.Lo.Eval(idx)
	hi := nl.Bound.Hi.Eval(idx)
	from, to := lo, hi
	if lt && w.a.Idx[depth-1] > from {
		from = w.a.Idx[depth-1]
	}
	if ht && w.b.Idx[depth-1] < to {
		to = w.b.Idx[depth-1]
	}
	for v := from; v <= to; v++ {
		idx[depth-1] = v
		vlt := lt && v == w.a.Idx[depth-1]
		vht := ht && v == w.b.Idx[depth-1]
		if depth == n {
			for _, st := range nl.Stmts {
				if !st.GuardHolds(idx) {
					continue
				}
				for _, r := range st.Refs {
					if vlt && r.Seq <= w.a.Seq {
						continue
					}
					if vht && r.Seq >= w.b.Seq {
						continue
					}
					if !w.visit(r, idx) {
						return false
					}
				}
			}
			continue
		}
		for p, c := range nl.Loops {
			pos := p + 1
			if vlt && pos < w.a.Label[depth] {
				continue
			}
			if vht && pos > w.b.Label[depth] {
				break
			}
			clt := vlt && pos == w.a.Label[depth]
			cht := vht && pos == w.b.Label[depth]
			if !w.walk(c, depth+1, idx, clt, cht) {
				return false
			}
		}
	}
	return true
}

// VisitBetweenReverse visits every access with time strictly between a
// and b in REVERSE execution order (most recent first). The replacement
// equations scan backwards from the consumer so that the first touch of
// the reused line encountered is the line's most recent fetch, after
// which no older contention matters — giving exact LRU with early exit.
func VisitBetweenReverse(np *ir.NProgram, a, b Time, visit func(r *ir.NRef, idx []int64) bool) {
	if Compare(a, b) >= 0 {
		return
	}
	idx := make([]int64, np.Depth)
	w := &rangeWalker{np: np, a: a, b: b, visit: visit}
	for p := len(np.Top) - 1; p >= 0; p-- {
		lt, ht := true, true
		pos := p + 1
		if lt && pos < a.Label[0] {
			break
		}
		if ht && pos > b.Label[0] {
			continue
		}
		lt = lt && pos == a.Label[0]
		ht = ht && pos == b.Label[0]
		if !w.walkRev(np.Top[p], 1, idx, lt, ht) {
			return
		}
	}
}

// walkRev is the descending mirror of walk.
func (w *rangeWalker) walkRev(nl *ir.NLoop, depth int, idx []int64, lt, ht bool) bool {
	n := w.np.Depth
	lo := nl.Bound.Lo.Eval(idx)
	hi := nl.Bound.Hi.Eval(idx)
	from, to := lo, hi
	if lt && w.a.Idx[depth-1] > from {
		from = w.a.Idx[depth-1]
	}
	if ht && w.b.Idx[depth-1] < to {
		to = w.b.Idx[depth-1]
	}
	for v := to; v >= from; v-- {
		idx[depth-1] = v
		vlt := lt && v == w.a.Idx[depth-1]
		vht := ht && v == w.b.Idx[depth-1]
		if depth == n {
			for si := len(nl.Stmts) - 1; si >= 0; si-- {
				st := nl.Stmts[si]
				if !st.GuardHolds(idx) {
					continue
				}
				for ri := len(st.Refs) - 1; ri >= 0; ri-- {
					r := st.Refs[ri]
					if vlt && r.Seq <= w.a.Seq {
						continue
					}
					if vht && r.Seq >= w.b.Seq {
						continue
					}
					if !w.visit(r, idx) {
						return false
					}
				}
			}
			continue
		}
		for p := len(nl.Loops) - 1; p >= 0; p-- {
			pos := p + 1
			if vlt && pos < w.a.Label[depth] {
				break
			}
			if vht && pos > w.b.Label[depth] {
				continue
			}
			clt := vlt && pos == w.a.Label[depth]
			cht := vht && pos == w.b.Label[depth]
			if !w.walkRev(nl.Loops[p], depth+1, idx, clt, cht) {
				return false
			}
		}
	}
	return true
}

// RefStats accumulates per-reference simulation counters.
type RefStats struct {
	Accesses int64
	Misses   int64
}

// SimResult is the outcome of a full cache simulation of a program.
type SimResult struct {
	Config   cache.Config
	PerRef   map[*ir.NRef]*RefStats
	Accesses int64
	Misses   int64
	// Truncated reports that the simulation was interrupted by
	// cancellation or budget exhaustion; the counts cover only the prefix
	// of the reference stream replayed before the interruption.
	Truncated bool
}

// MissRatio returns the global miss ratio in percent.
func (r *SimResult) MissRatio() float64 {
	if r.Accesses == 0 {
		return 0
	}
	return 100 * float64(r.Misses) / float64(r.Accesses)
}

// Simulate replays the whole program through an exact LRU simulator and
// returns global and per-reference counts. Arrays must be laid out first.
// Writes fetch on miss, per the paper's §2 model.
func Simulate(np *ir.NProgram, cfg cache.Config) *SimResult {
	return SimulatePolicy(np, cfg, cache.FetchOnWrite)
}

// SimulatePolicy is Simulate with an explicit write policy, for
// quantifying the fetch-on-write assumption of the analytical model.
func SimulatePolicy(np *ir.NProgram, cfg cache.Config, policy cache.WritePolicy) *SimResult {
	res, _ := SimulatePolicyCtx(context.Background(), np, cfg, policy, budget.Budget{})
	return res
}

// SimulateCtx is Simulate under a context and a budget: the replay
// checkpoints every simulated access (batched, so the per-access cost is
// an increment), and an interrupted run returns the truncated prefix
// counts together with ErrCanceled or ErrBudgetExceeded. The simulator is
// the validation baseline — there is nothing cheaper to degrade to, so
// exhaustion is an error rather than a fallback.
func SimulateCtx(ctx context.Context, np *ir.NProgram, cfg cache.Config, b budget.Budget) (*SimResult, error) {
	return SimulatePolicyCtx(ctx, np, cfg, cache.FetchOnWrite, b)
}

// SimulatePolicyCtx is SimulateCtx with an explicit write policy.
func SimulatePolicyCtx(ctx context.Context, np *ir.NProgram, cfg cache.Config, policy cache.WritePolicy, b budget.Budget) (*SimResult, error) {
	_, span := obs.StartSpan(ctx, "simulate")
	defer span.End()
	sim := cache.NewSimulator(cfg)
	sim.SetWritePolicy(policy)
	m := budget.NewMeter(ctx, b)
	var p *budget.Probe
	if !m.Unlimited() {
		p = m.Probe()
		defer p.Drain()
	}
	// Per-reference counters live in a slice indexed by the reference's
	// global Seq (its position in np.Refs); the map the API exposes is
	// built once at the end, keeping a map lookup off the per-access path.
	stats := make([]RefStats, len(np.Refs))
	var ierr error
	ExecuteAddr(np, func(r *ir.NRef, _ []int64, addr int64) bool {
		st := &stats[r.Seq]
		st.Accesses++
		var miss bool
		if r.Write {
			miss = sim.AccessWrite(addr)
		} else {
			miss = sim.Access(addr)
		}
		if miss {
			st.Misses++
		}
		if p != nil {
			if ierr = p.Check(1, 0); ierr != nil {
				return false
			}
		}
		return true
	})
	res := collectSimResult(np, cfg, stats, sim.Accesses, sim.Misses)
	if ierr != nil {
		res.Truncated = true
	}
	return res, ierr
}

// flushSimMetrics publishes one simulation run's totals.
func flushSimMetrics(res *SimResult) {
	mSimRuns.Inc()
	mSimAccesses.Add(res.Accesses)
	mSimMisses.Add(res.Misses)
}

// collectSimResult assembles the public SimResult from Seq-indexed
// counters.
func collectSimResult(np *ir.NProgram, cfg cache.Config, stats []RefStats, accesses, misses int64) *SimResult {
	res := &SimResult{Config: cfg, PerRef: map[*ir.NRef]*RefStats{}, Accesses: accesses, Misses: misses}
	for i := range stats {
		if stats[i].Accesses > 0 {
			s := stats[i]
			res.PerRef[np.Refs[i]] = &s
		}
	}
	flushSimMetrics(res)
	return res
}
