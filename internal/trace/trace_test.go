package trace

import (
	"math/rand"
	"testing"

	"cachemodel/internal/cache"
	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/normalize"
)

// twoNests builds: two sequential 2-deep nests over A and B.
func twoNests(n int64) *ir.NProgram {
	b := ir.NewSub("p")
	A := b.Real8("A", n, n)
	B := b.Real8("B", n, n)
	b.Do("I", ir.Con(1), ir.Con(n)).
		Do("J", ir.Con(1), ir.Con(n)).
		Assign("S1", ir.R(A, ir.Var("J"), ir.Var("I")), ir.R(B, ir.Var("J"), ir.Var("I"))).
		End().End().
		Do("I", ir.Con(1), ir.Con(n)).
		Do("J", ir.Con(1), ir.Con(n)).
		Assign("S2", ir.R(B, ir.Var("J"), ir.Var("I")), ir.R(A, ir.Var("J"), ir.Var("I"))).
		End().End()
	np, err := normalize.Normalize(b.Build())
	if err != nil {
		panic(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		panic(err)
	}
	return np
}

type access struct {
	ref *ir.NRef
	idx []int64
}

func collect(np *ir.NProgram) []access {
	var out []access
	Execute(np, func(r *ir.NRef, idx []int64) bool {
		out = append(out, access{r, append([]int64(nil), idx...)})
		return true
	})
	return out
}

func TestExecuteOrder(t *testing.T) {
	np := twoNests(3)
	accs := collect(np)
	if len(accs) != 2*3*3*2 {
		t.Fatalf("accesses = %d, want 36", len(accs))
	}
	// Times must be strictly increasing.
	for i := 1; i < len(accs); i++ {
		a := Time{Label: accs[i-1].ref.Stmt.Label, Idx: accs[i-1].idx, Seq: accs[i-1].ref.Seq}
		b := Time{Label: accs[i].ref.Stmt.Label, Idx: accs[i].idx, Seq: accs[i].ref.Seq}
		if Compare(a, b) >= 0 {
			t.Fatalf("access %d not after %d: %v vs %v", i, i-1, b, a)
		}
	}
	// The first nest must fully precede the second.
	half := len(accs) / 2
	for i, a := range accs {
		wantStmt := "S1"
		if i >= half {
			wantStmt = "S2"
		}
		if a.ref.Stmt.Name != wantStmt {
			t.Fatalf("access %d in %s, want %s", i, a.ref.Stmt.Name, wantStmt)
		}
	}
}

func TestExecuteEarlyStop(t *testing.T) {
	np := twoNests(4)
	n := 0
	Execute(np, func(r *ir.NRef, idx []int64) bool {
		n++
		return n < 7
	})
	if n != 7 {
		t.Errorf("visited %d, want 7", n)
	}
}

// TestVisitBetweenMatchesFilter: the ranged walk must produce exactly the
// accesses strictly between two times, in order — validated against
// filtering the full trace, over random time pairs.
func TestVisitBetweenMatchesFilter(t *testing.T) {
	np := twoNests(4)
	accs := collect(np)
	times := make([]Time, len(accs))
	for i, a := range accs {
		times[i] = Time{Label: a.ref.Stmt.Label, Idx: a.idx, Seq: a.ref.Seq}
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(accs))
		j := rng.Intn(len(accs))
		if i > j {
			i, j = j, i
		}
		var got []access
		VisitBetween(np, times[i], times[j], func(r *ir.NRef, idx []int64) bool {
			got = append(got, access{r, append([]int64(nil), idx...)})
			return true
		})
		var want []access // strictly between
		if i+1 <= j {
			want = accs[i+1 : j]
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (%d..%d): got %d accesses, want %d", trial, i, j, len(got), len(want))
		}
		for k := range want {
			if got[k].ref != want[k].ref {
				t.Fatalf("trial %d: access %d is %s, want %s", trial, k, got[k].ref.ID, want[k].ref.ID)
			}
			for d := range want[k].idx {
				if got[k].idx[d] != want[k].idx[d] {
					t.Fatalf("trial %d: access %d idx %v, want %v", trial, k, got[k].idx, want[k].idx)
				}
			}
		}
	}
}

func TestVisitBetweenEmptyAndReversed(t *testing.T) {
	np := twoNests(3)
	accs := collect(np)
	t0 := Time{Label: accs[5].ref.Stmt.Label, Idx: accs[5].idx, Seq: accs[5].ref.Seq}
	n := 0
	VisitBetween(np, t0, t0, func(*ir.NRef, []int64) bool { n++; return true })
	if n != 0 {
		t.Errorf("self-interval visited %d", n)
	}
	t1 := Time{Label: accs[2].ref.Stmt.Label, Idx: accs[2].idx, Seq: accs[2].ref.Seq}
	VisitBetween(np, t0, t1, func(*ir.NRef, []int64) bool { n++; return true })
	if n != 0 {
		t.Errorf("reversed interval visited %d", n)
	}
}

func TestVisitBetweenEarlyStop(t *testing.T) {
	np := twoNests(4)
	accs := collect(np)
	first := Time{Label: accs[0].ref.Stmt.Label, Idx: accs[0].idx, Seq: accs[0].ref.Seq}
	last := Time{Label: accs[len(accs)-1].ref.Stmt.Label, Idx: accs[len(accs)-1].idx, Seq: accs[len(accs)-1].ref.Seq}
	n := 0
	VisitBetween(np, first, last, func(*ir.NRef, []int64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d, want 3", n)
	}
}

func TestSimulatePerRefTotals(t *testing.T) {
	np := twoNests(5)
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 1}
	res := Simulate(np, cfg)
	var refAcc, refMiss int64
	for _, st := range res.PerRef {
		refAcc += st.Accesses
		refMiss += st.Misses
	}
	if refAcc != res.Accesses || refMiss != res.Misses {
		t.Errorf("per-ref totals %d/%d, global %d/%d", refAcc, refMiss, res.Accesses, res.Misses)
	}
	if res.Accesses != 2*5*5*2 {
		t.Errorf("accesses = %d, want 100", res.Accesses)
	}
	if res.MissRatio() <= 0 || res.MissRatio() > 100 {
		t.Errorf("ratio = %v", res.MissRatio())
	}
}

// TestGuardedExecution: guards must suppress accesses in Execute and
// VisitBetween alike.
func TestGuardedExecution(t *testing.T) {
	b := ir.NewSub("g")
	A := b.Real8("A", 10)
	b.Do("I", ir.Con(1), ir.Con(10)).
		IfCond(ir.Cond{LHS: ir.Var("I"), Op: ir.GE, RHS: ir.Con(6)}).
		Assign("S1", ir.R(A, ir.Var("I"))).
		End().End()
	np, err := normalize.Normalize(b.Build())
	if err != nil {
		t.Fatal(err)
	}
	if err := layout.AssignProgram(np, layout.Options{}); err != nil {
		t.Fatal(err)
	}
	n := 0
	Execute(np, func(*ir.NRef, []int64) bool { n++; return true })
	if n != 5 {
		t.Errorf("guarded accesses = %d, want 5", n)
	}
}

// TestVisitBetweenReverseMatchesFilter: the reverse ranged walk must
// produce exactly the reversed strict-interval filter of the full trace.
func TestVisitBetweenReverseMatchesFilter(t *testing.T) {
	np := twoNests(4)
	accs := collect(np)
	times := make([]Time, len(accs))
	for i, a := range accs {
		times[i] = Time{Label: a.ref.Stmt.Label, Idx: a.idx, Seq: a.ref.Seq}
	}
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 200; trial++ {
		i := rng.Intn(len(accs))
		j := rng.Intn(len(accs))
		if i > j {
			i, j = j, i
		}
		var got []access
		VisitBetweenReverse(np, times[i], times[j], func(r *ir.NRef, idx []int64) bool {
			got = append(got, access{r, append([]int64(nil), idx...)})
			return true
		})
		var want []access
		for k := j - 1; k > i; k-- {
			want = append(want, accs[k])
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d (%d..%d): got %d accesses, want %d", trial, i, j, len(got), len(want))
		}
		for k := range want {
			if got[k].ref != want[k].ref {
				t.Fatalf("trial %d: access %d is %s, want %s", trial, k, got[k].ref.ID, want[k].ref.ID)
			}
			for d := range want[k].idx {
				if got[k].idx[d] != want[k].idx[d] {
					t.Fatalf("trial %d: access %d idx %v, want %v", trial, k, got[k].idx, want[k].idx)
				}
			}
		}
	}
}

// TestVisitBetweenReverseEarlyStop: early exit from the reverse walk.
func TestVisitBetweenReverseEarlyStop(t *testing.T) {
	np := twoNests(4)
	accs := collect(np)
	first := Time{Label: accs[0].ref.Stmt.Label, Idx: accs[0].idx, Seq: accs[0].ref.Seq}
	last := Time{Label: accs[len(accs)-1].ref.Stmt.Label, Idx: accs[len(accs)-1].idx, Seq: accs[len(accs)-1].ref.Seq}
	n := 0
	VisitBetweenReverse(np, first, last, func(*ir.NRef, []int64) bool {
		n++
		return n < 3
	})
	if n != 3 {
		t.Errorf("visited %d, want 3", n)
	}
}

// TestSimulatePolicy: fetch-on-write equals the default; no-allocate can
// only increase misses on a write-then-read pattern.
func TestSimulatePolicy(t *testing.T) {
	np := twoNests(6)
	cfg := cache.Config{SizeBytes: 256, LineBytes: 32, Assoc: 2}
	def := Simulate(np, cfg)
	fow := SimulatePolicy(np, cfg, cache.FetchOnWrite)
	if def.Misses != fow.Misses {
		t.Errorf("default %d != fetch-on-write %d", def.Misses, fow.Misses)
	}
	wna := SimulatePolicy(np, cfg, cache.WriteNoAllocate)
	if wna.Misses < def.Misses {
		t.Errorf("no-allocate %d < fetch-on-write %d on write-then-read", wna.Misses, def.Misses)
	}
}
