package ir

import (
	"fmt"
	"strings"
)

// Affine is a positional linear expression c0 + Σ Coeff[k]·I_{k+1} over the
// normalised loop indices I_1..I_n. Coeff may be shorter than n (missing
// coefficients are zero).
type Affine struct {
	Const int64
	Coeff []int64
}

// AffineConst returns the constant affine expression c.
func AffineConst(c int64) Affine { return Affine{Const: c} }

// AffineIndex returns the affine expression I_depth (depth is 1-based).
func AffineIndex(depth int) Affine {
	c := make([]int64, depth)
	c[depth-1] = 1
	return Affine{Coeff: c}
}

// Eval evaluates the expression at the index vector idx (idx[k] = I_{k+1}).
func (a Affine) Eval(idx []int64) int64 {
	v := a.Const
	for k, c := range a.Coeff {
		if c != 0 {
			v += c * idx[k]
		}
	}
	return v
}

// At returns the coefficient of I_depth (1-based).
func (a Affine) At(depth int) int64 {
	if depth-1 < len(a.Coeff) {
		return a.Coeff[depth-1]
	}
	return 0
}

// IsConst reports whether a has no index terms.
func (a Affine) IsConst() bool {
	for _, c := range a.Coeff {
		if c != 0 {
			return false
		}
	}
	return true
}

// MaxDepthUsed returns the largest depth with a nonzero coefficient (0 if
// constant).
func (a Affine) MaxDepthUsed() int {
	for k := len(a.Coeff) - 1; k >= 0; k-- {
		if a.Coeff[k] != 0 {
			return k + 1
		}
	}
	return 0
}

// Plus returns a + b.
func (a Affine) Plus(b Affine) Affine {
	n := max(len(a.Coeff), len(b.Coeff))
	out := Affine{Const: a.Const + b.Const, Coeff: make([]int64, n)}
	for k := 0; k < n; k++ {
		out.Coeff[k] = a.At(k+1) + b.At(k+1)
	}
	return out
}

// Sub returns a − b.
func (a Affine) Sub(b Affine) Affine {
	n := max(len(a.Coeff), len(b.Coeff))
	out := Affine{Const: a.Const - b.Const, Coeff: make([]int64, n)}
	for k := 0; k < n; k++ {
		out.Coeff[k] = a.At(k+1) - b.At(k+1)
	}
	return out
}

// AddConst returns a + c.
func (a Affine) AddConst(c int64) Affine {
	out := a
	out.Const += c
	out.Coeff = append([]int64(nil), a.Coeff...)
	return out
}

// Equal reports componentwise equality.
func (a Affine) Equal(b Affine) bool {
	if a.Const != b.Const {
		return false
	}
	n := max(len(a.Coeff), len(b.Coeff))
	for k := 1; k <= n; k++ {
		if a.At(k) != b.At(k) {
			return false
		}
	}
	return true
}

// String renders a as e.g. "2*I1 - I3 + 4".
func (a Affine) String() string {
	e := Expr{Const: a.Const}
	for k, c := range a.Coeff {
		if c != 0 {
			if e.Terms == nil {
				e.Terms = map[string]int64{}
			}
			e.Terms[fmt.Sprintf("I%d", k+1)] = c
		}
	}
	return e.String()
}

// NConstraint is a normalised guard constraint: Expr ⋈ 0 with ⋈ ∈ {=, ≥}.
type NConstraint struct {
	Expr Affine
	IsEq bool // true: Expr == 0, false: Expr >= 0
}

// Holds evaluates the constraint at idx.
func (c NConstraint) Holds(idx []int64) bool {
	v := c.Expr.Eval(idx)
	if c.IsEq {
		return v == 0
	}
	return v >= 0
}

func (c NConstraint) String() string {
	if c.IsEq {
		return c.Expr.String() + " == 0"
	}
	return c.Expr.String() + " >= 0"
}

// NormalizeCond lowers a named-variable condition into ≥0 / =0 constraints,
// given the mapping from variable name to normalised depth.
func NormalizeCond(c Cond, depthOf map[string]int) []NConstraint {
	l := toAffine(c.LHS, depthOf)
	r := toAffine(c.RHS, depthOf)
	d := l.Sub(r) // LHS - RHS
	switch c.Op {
	case EQ:
		return []NConstraint{{Expr: d, IsEq: true}}
	case LE: // d <= 0  =>  -d >= 0
		return []NConstraint{{Expr: negAffine(d)}}
	case LT: // d < 0  =>  -d - 1 >= 0
		return []NConstraint{{Expr: negAffine(d).AddConst(-1)}}
	case GE:
		return []NConstraint{{Expr: d}}
	case GT:
		return []NConstraint{{Expr: d.AddConst(-1)}}
	}
	panic("ir: unknown comparison operator")
}

func negAffine(a Affine) Affine {
	out := Affine{Const: -a.Const, Coeff: make([]int64, len(a.Coeff))}
	for k, c := range a.Coeff {
		out.Coeff[k] = -c
	}
	return out
}

func toAffine(e Expr, depthOf map[string]int) Affine {
	a := Affine{Const: e.Const}
	for v, c := range e.Terms {
		d, ok := depthOf[v]
		if !ok {
			panic(fmt.Sprintf("ir: non-loop variable %q in affine expression", v))
		}
		for len(a.Coeff) < d {
			a.Coeff = append(a.Coeff, 0)
		}
		a.Coeff[d-1] += c
	}
	return a
}

// ToAffine lowers a named expression to positional form using depthOf.
// It panics if the expression mentions a variable not in the map.
func ToAffine(e Expr, depthOf map[string]int) Affine { return toAffine(e, depthOf) }

// NBound is the pair of inclusive affine loop bounds at one depth.
// Lo and Hi may reference indices of strictly shallower depths only.
type NBound struct {
	Lo, Hi Affine
}

// NRef is a reference in the normalised program. Its subscripts are stored
// both per-dimension and as the access-matrix form A(M·I + m) used by the
// reuse analysis.
type NRef struct {
	Array *Array
	Subs  []Affine
	Write bool
	// Stmt is the enclosing normalised statement.
	Stmt *NStmt
	// Seq is the global textual access position of this reference: all
	// references of a normalised program are numbered in program order
	// (leaf nest order, then statement order, then intra-statement access
	// order). At a fixed iteration point of a shared label prefix, a
	// smaller Seq executes first.
	Seq int
	// ID is a stable identifier for reporting.
	ID string

	// Cached linearised address form: address(idx) = addrAff.Eval(idx).
	// Because subscripts are affine and strides are compile-time
	// constants, the byte address is itself affine in the index vector;
	// caching it makes simulation and interference walks allocation-free.
	// The cache is keyed on the array base so a re-layout invalidates it.
	addrAff   Affine
	addrBase  int64
	addrReady bool
}

// AccessMatrix returns the matrix M (rank × n) and offset vector m such
// that the subscripts equal M·I + m.
func (r *NRef) AccessMatrix(n int) (m [][]int64, off []int64) {
	m = make([][]int64, len(r.Subs))
	off = make([]int64, len(r.Subs))
	for d, s := range r.Subs {
		row := make([]int64, n)
		for k := 1; k <= n; k++ {
			row[k-1] = s.At(k)
		}
		m[d] = row
		off[d] = s.Const
	}
	return m, off
}

// SubsAt evaluates all subscripts at the index vector idx.
func (r *NRef) SubsAt(idx []int64) []int64 {
	out := make([]int64, len(r.Subs))
	for d, s := range r.Subs {
		out[d] = s.Eval(idx)
	}
	return out
}

// AddressAt returns the byte address accessed at idx.
func (r *NRef) AddressAt(idx []int64) int64 {
	if !r.addrReady || r.addrBase != r.Array.Base {
		r.buildAddr()
	}
	return r.addrAff.Eval(idx)
}

// AddressAffine returns the cached linearised address expression, so
// address(idx) = AddressAffine().Eval(idx). Walkers that visit millions of
// accesses strength-reduce this affine into incremental adds instead of
// calling AddressAt per access.
func (r *NRef) AddressAffine() Affine {
	if !r.addrReady || r.addrBase != r.Array.Base {
		r.buildAddr()
	}
	return r.addrAff
}

// buildAddr folds base address, element size, strides and subscripts into
// one affine expression over the index vector.
func (r *NRef) buildAddr() {
	a := r.Array
	if a.Base < 0 {
		panic(fmt.Sprintf("ir: array %s not laid out", a.Name))
	}
	aff := Affine{Const: a.Base}
	stride := a.ElemSize
	for d, s := range r.Subs {
		scaled := Affine{Const: (s.Const - 1) * stride, Coeff: make([]int64, len(s.Coeff))}
		for k, c := range s.Coeff {
			scaled.Coeff[k] = c * stride
		}
		aff = aff.Plus(scaled)
		if d < len(a.Dims)-1 {
			if a.Dims[d] <= 0 {
				panic(fmt.Sprintf("ir: array %s: cannot address through unknown dimension %d", a.Name, d+1))
			}
			stride *= a.Dims[d]
		}
	}
	r.addrAff = aff
	r.addrBase = a.Base
	r.addrReady = true
}

func (r *NRef) String() string {
	parts := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		parts[i] = s.String()
	}
	rw := "R"
	if r.Write {
		rw = "W"
	}
	return fmt.Sprintf("%s(%s)[%s]", r.Array.Name, strings.Join(parts, ","), rw)
}

// NStmt is a statement of the normalised program: it lives at depth n in
// the loop nest identified by Label, under the given per-depth bounds, and
// is guarded by the conjunction of Guards.
type NStmt struct {
	Label  []int    // loop label vector (ℓ1..ℓn)
	Bounds []NBound // bounds of the n enclosing loops
	Guards []NConstraint
	Refs   []*NRef
	Name   string // source label, e.g. "S1"
}

// Depth returns n, the normalised nesting depth.
func (s *NStmt) Depth() int { return len(s.Label) }

// GuardHolds reports whether all guards hold at idx.
func (s *NStmt) GuardHolds(idx []int64) bool {
	for _, g := range s.Guards {
		if !g.Holds(idx) {
			return false
		}
	}
	return true
}

// NLoop is a node of the normalised loop tree. Children at depth k+1 are
// numbered 1.. in textual order; the path of child numbers from the root
// is the loop label vector.
type NLoop struct {
	Bound NBound
	Loops []*NLoop // child loops (present when depth < n)
	Stmts []*NStmt // statements (present only at depth n)
}

// NProgram is a fully normalised program: every statement is nested in an
// n-dimensional loop nest; loops at depth k all use index I_k with unit
// step; statements carry their guards.
type NProgram struct {
	Name   string
	Depth  int
	Top    []*NLoop
	Stmts  []*NStmt // all statements in program (textual) order
	Arrays []*Array // all arrays referenced, in first-use order
	// Refs is every reference in global Seq order.
	Refs []*NRef
}

// LabelLess compares two loop label vectors with their index vectors in
// the interleaved (ℓ1, I1, ℓ2, I2, ..., ℓn, In) lexicographic order of §3.2.
// It returns a negative, zero or positive value like bytes.Compare.
func CompareIterations(la []int, ia []int64, lb []int, ib []int64) int {
	n := len(la)
	for k := 0; k < n; k++ {
		if la[k] != lb[k] {
			if la[k] < lb[k] {
				return -1
			}
			return 1
		}
		if ia[k] != ib[k] {
			if ia[k] < ib[k] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// IterationVector renders the interleaved iteration vector of a statement,
// e.g. "(1, I1, 2, I2)" — the Table 1 presentation.
func (s *NStmt) IterationVector() string {
	parts := make([]string, 0, 2*len(s.Label))
	for k, l := range s.Label {
		parts = append(parts, fmt.Sprintf("%d", l), fmt.Sprintf("I%d", k+1))
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
