package ir

import (
	"fmt"
	"strings"
)

// Array describes a FORTRAN array (or scalar, as a 1-element array).
// Arrays are column-major: element (s1, s2, ..., sm) with 1-based
// subscripts lives at linear offset (s1−1) + Dims[0]·((s2−1) + Dims[1]·(...)).
type Array struct {
	Name     string
	ElemSize int64   // element size in bytes (8 for REAL*8)
	Dims     []int64 // dimension sizes; the last may be 0 (assumed-size "*")
	// Base is the byte address of element (1,1,...,1), assigned by
	// internal/layout. A negative value means "not yet laid out".
	Base int64
	// Alias, when non-nil, makes this array share storage with another:
	// layout assigns Base = Alias.Base + AliasOffset instead of fresh
	// storage. Abstract inlining (§3.6) uses aliases for renamed and
	// flattened actual parameters, so @AP' == @AP as the paper requires.
	Alias       *Array
	AliasOffset int64 // byte offset added to the alias target's base
}

// NewArray returns an array with the given name, element size and dims,
// not yet laid out in memory. A dimension of 0 in the last position means
// assumed-size ("*"); a dimension of −1 anywhere means unknown at compile
// time (a variable dimension), which makes the array non-analysable when
// passed across calls.
func NewArray(name string, elemSize int64, dims ...int64) *Array {
	for i, d := range dims {
		if d > 0 || d == -1 {
			continue
		}
		if d == 0 && i == len(dims)-1 {
			continue
		}
		panic(fmt.Sprintf("ir: array %s: dimension %d must be positive, -1 (unknown) or 0 as assumed-size last", name, i+1))
	}
	return &Array{Name: name, ElemSize: elemSize, Dims: append([]int64(nil), dims...), Base: -1}
}

// Rank returns the number of dimensions.
func (a *Array) Rank() int { return len(a.Dims) }

// Elems returns the total number of elements, or 0 if the last dimension is
// assumed-size.
func (a *Array) Elems() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		if d <= 0 {
			return 0
		}
		n *= d
	}
	return n
}

// SizeBytes returns the total byte size, or 0 if assumed-size.
func (a *Array) SizeBytes() int64 { return a.Elems() * a.ElemSize }

// LinearOffset returns the 0-based element offset of the given 1-based
// subscripts within the array (column-major). Subscript count must equal
// the rank. Assumed-size last dimensions are fine: the last dimension's
// size is never needed for addressing.
func (a *Array) LinearOffset(subs []int64) int64 {
	if len(subs) != len(a.Dims) {
		panic(fmt.Sprintf("ir: array %s: %d subscripts for rank %d", a.Name, len(subs), len(a.Dims)))
	}
	off := int64(0)
	stride := int64(1)
	for i, s := range subs {
		off += (s - 1) * stride
		if i < len(a.Dims)-1 {
			if a.Dims[i] <= 0 {
				panic(fmt.Sprintf("ir: array %s: cannot address through unknown dimension %d", a.Name, i+1))
			}
			stride *= a.Dims[i]
		}
	}
	return off
}

// Address returns the byte address of the element with the given 1-based
// subscripts. The array must have been laid out.
func (a *Array) Address(subs []int64) int64 {
	if a.Base < 0 {
		panic(fmt.Sprintf("ir: array %s not laid out", a.Name))
	}
	return a.Base + a.ElemSize*a.LinearOffset(subs)
}

func (a *Array) String() string {
	dims := make([]string, len(a.Dims))
	for i, d := range a.Dims {
		if d == 0 {
			dims[i] = "*"
		} else {
			dims[i] = fmt.Sprintf("%d", d)
		}
	}
	return fmt.Sprintf("%s(%s)", a.Name, strings.Join(dims, ","))
}

// CmpOp is a comparison operator in an IF guard.
type CmpOp int

// Comparison operators supported in guards.
const (
	EQ CmpOp = iota // ==
	LE              // <=
	LT              // <
	GE              // >=
	GT              // >
)

func (op CmpOp) String() string {
	switch op {
	case EQ:
		return ".EQ."
	case LE:
		return ".LE."
	case LT:
		return ".LT."
	case GE:
		return ".GE."
	case GT:
		return ".GT."
	}
	return "?"
}

// Cond is an affine comparison LHS op RHS over loop variables.
type Cond struct {
	LHS Expr
	Op  CmpOp
	RHS Expr
}

func (c Cond) String() string {
	return fmt.Sprintf("%s %s %s", c.LHS, c.Op, c.RHS)
}

// Rename returns the condition with loop variable old renamed to new.
func (c Cond) Rename(old, new string) Cond {
	return Cond{LHS: c.LHS.Rename(old, new), Op: c.Op, RHS: c.RHS.Rename(old, new)}
}

// Holds evaluates the condition under env.
func (c Cond) Holds(env map[string]int64) bool {
	l, r := c.LHS.Eval(env), c.RHS.Eval(env)
	switch c.Op {
	case EQ:
		return l == r
	case LE:
		return l <= r
	case LT:
		return l < r
	case GE:
		return l >= r
	case GT:
		return l > r
	}
	return false
}

// Node is a syntactic element of a subroutine body: *Loop, *If, *Assign
// or *Call.
type Node interface{ node() }

// Loop is a DO loop: DO Var = Lo, Hi, Step over Body.
type Loop struct {
	Var   string
	Lo    Expr
	Hi    Expr
	Step  int64 // 0 means 1
	Label string
	Body  []Node
}

// If guards Body by the conjunction of Conds.
type If struct {
	Conds []Cond
	Body  []Node
}

// Ref is a single array reference with affine subscripts.
type Ref struct {
	Array *Array
	Subs  []Expr // one per dimension, 1-based subscript expressions
	Write bool
}

// NewRef builds a reference to array with the given subscript expressions.
func NewRef(array *Array, subs ...Expr) *Ref {
	if len(subs) != array.Rank() {
		panic(fmt.Sprintf("ir: ref %s: %d subscripts for rank %d", array.Name, len(subs), array.Rank()))
	}
	return &Ref{Array: array, Subs: append([]Expr(nil), subs...)}
}

func (r *Ref) String() string {
	parts := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		parts[i] = s.String()
	}
	return fmt.Sprintf("%s(%s)", r.Array.Name, strings.Join(parts, ","))
}

// Clone returns a deep copy of the reference (sharing the Array).
func (r *Ref) Clone() *Ref {
	return &Ref{Array: r.Array, Subs: append([]Expr(nil), r.Subs...), Write: r.Write}
}

// Assign is an assignment statement. References are recorded in access
// order: Reads (left-to-right source order of the RHS, plus any reads on
// the LHS subscript computation), then the written reference.
type Assign struct {
	Label string
	LHS   *Ref   // may be nil for read-only statements (e.g. "... = A(I)")
	Reads []*Ref // RHS references in source order
}

// NewAssign builds an assignment with the given label, written reference
// (may be nil) and read references.
func NewAssign(label string, lhs *Ref, reads ...*Ref) *Assign {
	if lhs != nil {
		lhs.Write = true
	}
	return &Assign{Label: label, LHS: lhs, Reads: reads}
}

// Refs returns the statement's references in access order.
func (s *Assign) Refs() []*Ref {
	out := append([]*Ref(nil), s.Reads...)
	if s.LHS != nil {
		out = append(out, s.LHS)
	}
	return out
}

func (s *Assign) String() string {
	parts := make([]string, len(s.Reads))
	for i, r := range s.Reads {
		parts[i] = r.String()
	}
	rhs := strings.Join(parts, " + ")
	if rhs == "" {
		rhs = "..."
	}
	if s.LHS == nil {
		return fmt.Sprintf("... = %s", rhs)
	}
	return fmt.Sprintf("%s = %s", s.LHS, rhs)
}

// Arg is an actual parameter at a call site: a scalar/array variable or a
// subscripted array element with affine subscripts.
type Arg struct {
	Array *Array
	Subs  []Expr // nil for whole-variable arguments
}

// Call is a call statement with actual parameters.
type Call struct {
	Callee string
	Args   []Arg
}

func (*Loop) node()   {}
func (*If) node()     {}
func (*Assign) node() {}
func (*Call) node()   {}

// Param is a formal parameter declaration of a subroutine.
type Param struct {
	Array *Array // the formal viewed as an array (scalars have rank 0 handled as 1-elem)
}

// Subroutine is a FORTRAN subroutine: formal parameters, local arrays and a
// body of nodes.
type Subroutine struct {
	Name    string
	Formals []*Array // formal parameters in declaration order
	Locals  []*Array // local arrays/scalars
	Body    []Node
}

// Arrays returns all arrays visible in the subroutine (formals then locals).
func (s *Subroutine) Arrays() []*Array {
	out := append([]*Array(nil), s.Formals...)
	return append(out, s.Locals...)
}

// Program is a whole program: a set of subroutines and a designated entry.
type Program struct {
	Name  string
	Main  *Subroutine
	Subs  map[string]*Subroutine // by name, including Main
	Order []string               // subroutine names in declaration order
}

// NewProgram returns an empty program with the given name.
func NewProgram(name string) *Program {
	return &Program{Name: name, Subs: map[string]*Subroutine{}}
}

// Add registers a subroutine; the first added becomes Main unless SetMain
// is called.
func (p *Program) Add(s *Subroutine) *Subroutine {
	if _, dup := p.Subs[s.Name]; dup {
		panic(fmt.Sprintf("ir: duplicate subroutine %s", s.Name))
	}
	p.Subs[s.Name] = s
	p.Order = append(p.Order, s.Name)
	if p.Main == nil {
		p.Main = s
	}
	return s
}

// SetMain designates the entry subroutine.
func (p *Program) SetMain(name string) {
	s, ok := p.Subs[name]
	if !ok {
		panic(fmt.Sprintf("ir: no subroutine %s", name))
	}
	p.Main = s
}

// Stats summarises a program (Table 5 columns).
type Stats struct {
	Subroutines int
	Calls       int
	References  int
	Statements  int
	MaxDepth    int
}

// CollectStats walks the program and reports Table 5-style statistics.
func (p *Program) CollectStats() Stats {
	st := Stats{Subroutines: len(p.Subs)}
	for _, name := range p.Order {
		sub := p.Subs[name]
		walkStats(sub.Body, 0, &st)
	}
	return st
}

func walkStats(nodes []Node, depth int, st *Stats) {
	if depth > st.MaxDepth {
		st.MaxDepth = depth
	}
	for _, n := range nodes {
		switch n := n.(type) {
		case *Loop:
			walkStats(n.Body, depth+1, st)
		case *If:
			walkStats(n.Body, depth, st)
		case *Assign:
			st.Statements++
			st.References += len(n.Refs())
		case *Call:
			st.Calls++
		}
	}
}
