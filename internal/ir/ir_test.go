package ir

import (
	"testing"
	"testing/quick"
)

func TestExprAlgebra(t *testing.T) {
	e := Var("I").Scale(2).Plus(Con(3)).Minus(Var("J"))
	if got := e.String(); got != "2*I - J + 3" {
		t.Errorf("String = %q", got)
	}
	env := map[string]int64{"I": 5, "J": 4}
	if got := e.Eval(env); got != 9 {
		t.Errorf("Eval = %d, want 9", got)
	}
	if !e.Rename("I", "K").Equal(Var("K").Scale(2).Plus(Con(3)).Minus(Var("J"))) {
		t.Error("Rename broken")
	}
	// Substitution: I := 2·K + 1 in 2I − J + 3 = 4K − J + 5.
	s := e.Subst("I", Var("K").Scale(2).PlusConst(1))
	want := Term(4, "K").Minus(Var("J")).PlusConst(5)
	if !s.Equal(want) {
		t.Errorf("Subst = %v, want %v", s, want)
	}
}

func TestExprCancellation(t *testing.T) {
	e := Var("I").Minus(Var("I"))
	if !e.IsConst() || e.Const != 0 {
		t.Errorf("I - I = %v, want 0", e)
	}
	if len(e.Vars()) != 0 {
		t.Errorf("zero terms retained: %v", e.Vars())
	}
}

// TestExprEvalHomomorphism: Eval distributes over Plus/Scale (testing/quick).
func TestExprEvalHomomorphism(t *testing.T) {
	f := func(a, b int8, i, j int8, k int8) bool {
		e1 := Term(int64(a), "I").PlusConst(int64(k))
		e2 := Term(int64(b), "J")
		env := map[string]int64{"I": int64(i), "J": int64(j)}
		sum := e1.Plus(e2)
		if sum.Eval(env) != e1.Eval(env)+e2.Eval(env) {
			return false
		}
		return e1.Scale(3).Eval(env) == 3*e1.Eval(env)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestArrayAddressing(t *testing.T) {
	a := NewArray("B", 8, 10, 20)
	a.Base = 1000
	// Column-major: B(3, 2) = base + 8·((3−1) + 10·(2−1)) = 1000 + 96.
	if got := a.Address([]int64{3, 2}); got != 1096 {
		t.Errorf("Address = %d, want 1096", got)
	}
	if a.Elems() != 200 || a.SizeBytes() != 1600 {
		t.Error("size accounting broken")
	}
	if a.String() != "B(10,20)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestAssumedSizeArray(t *testing.T) {
	a := NewArray("S", 8, 10, 0)
	a.Base = 0
	if a.Elems() != 0 {
		t.Error("assumed-size Elems must be 0")
	}
	// Addressing never needs the last dimension.
	if got := a.Address([]int64{1, 5}); got != 8*40 {
		t.Errorf("Address = %d, want 320", got)
	}
	if a.String() != "S(10,*)" {
		t.Errorf("String = %q", a.String())
	}
}

func TestCondHolds(t *testing.T) {
	env := map[string]int64{"I": 5}
	cases := []struct {
		op   CmpOp
		rhs  int64
		want bool
	}{
		{EQ, 5, true}, {EQ, 4, false},
		{LE, 5, true}, {LT, 5, false},
		{GE, 5, true}, {GT, 5, false}, {GT, 4, true},
	}
	for _, c := range cases {
		cond := Cond{LHS: Var("I"), Op: c.op, RHS: Con(c.rhs)}
		if cond.Holds(env) != c.want {
			t.Errorf("%v with I=5: got %v", cond, !c.want)
		}
	}
}

func TestNormalizeCond(t *testing.T) {
	depth := map[string]int{"I": 1, "J": 2}
	// I < J  →  J − I − 1 >= 0.
	cs := NormalizeCond(Cond{LHS: Var("I"), Op: LT, RHS: Var("J")}, depth)
	if len(cs) != 1 || cs[0].IsEq {
		t.Fatalf("constraints = %v", cs)
	}
	if !cs[0].Holds([]int64{3, 5}) || cs[0].Holds([]int64{5, 5}) {
		t.Errorf("I<J lowering wrong: %v", cs[0])
	}
}

func TestAffineOps(t *testing.T) {
	a := Affine{Const: 2, Coeff: []int64{1, 0, -3}}
	if a.Eval([]int64{10, 99, 2}) != 6 {
		t.Error("Eval broken")
	}
	if a.At(1) != 1 || a.At(3) != -3 || a.At(9) != 0 {
		t.Error("At broken")
	}
	if a.MaxDepthUsed() != 3 {
		t.Error("MaxDepthUsed broken")
	}
	b := AffineIndex(2)
	if got := a.Plus(b); got.At(2) != 1 || got.Const != 2 {
		t.Error("Plus broken")
	}
	if got := a.Sub(b); got.At(2) != -1 {
		t.Error("Sub broken")
	}
	if a.String() != "I1 - 3*I3 + 2" {
		t.Errorf("String = %q", a.String())
	}
}

func TestCompareIterations(t *testing.T) {
	// (1, 2) vs (1, 3) at same label: earlier index wins.
	if CompareIterations([]int{1, 1}, []int64{1, 2}, []int{1, 1}, []int64{1, 3}) >= 0 {
		t.Error("index order broken")
	}
	// Label at depth 2 beats deeper index.
	if CompareIterations([]int{1, 1}, []int64{5, 9}, []int{1, 2}, []int64{5, 1}) >= 0 {
		t.Error("label order broken")
	}
	// Outer index beats inner label.
	if CompareIterations([]int{1, 2}, []int64{4, 9}, []int{1, 1}, []int64{5, 1}) >= 0 {
		t.Error("outer index must dominate inner label")
	}
	if CompareIterations([]int{2, 1}, []int64{1, 1}, []int{1, 9}, []int64{9, 9}) <= 0 {
		t.Error("top-level label order broken")
	}
}

func TestBuilderPanicsOnUnclosed(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unclosed Do")
		}
	}()
	b := NewSub("x")
	b.Do("I", Con(1), Con(2))
	b.Build()
}

func TestProgramStats(t *testing.T) {
	p := NewProgram("t")
	b := NewSub("MAIN")
	A := b.Real8("A", 4)
	b.Do("I", Con(1), Con(4)).
		Assign("S1", R(A, Var("I")), R(A, Var("I"))).
		Call("f").
		End()
	p.Add(b.Build())
	st := p.CollectStats()
	if st.Subroutines != 1 || st.Calls != 1 || st.References != 2 || st.Statements != 1 || st.MaxDepth != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestRefValidation(t *testing.T) {
	a := NewArray("A", 8, 4, 4)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for wrong subscript count")
		}
	}()
	NewRef(a, Con(1))
}

// TestAddressCacheInvalidation: the linearised-address cache must follow
// the array base when layout changes.
func TestAddressCacheInvalidation(t *testing.T) {
	a := NewArray("A", 8, 10, 10)
	a.Base = 0
	r := &NRef{Array: a, Subs: []Affine{AffineIndex(1), AffineConst(2)}}
	if got := r.AddressAt([]int64{3}); got != 8*((3-1)+10*(2-1)) {
		t.Fatalf("address = %d", got)
	}
	a.Base = 1000 // re-layout
	if got := r.AddressAt([]int64{3}); got != 1000+8*((3-1)+10*(2-1)) {
		t.Errorf("stale address cache: %d", got)
	}
}

// TestAddressMatchesSubscriptPath: the affine fast path must agree with
// the subscript-by-subscript computation on random refs.
func TestAddressMatchesSubscriptPath(t *testing.T) {
	a := NewArray("B", 8, 7, 9, 5)
	a.Base = 64
	r := &NRef{Array: a, Subs: []Affine{
		{Const: 1, Coeff: []int64{1, 0}},
		{Const: 2, Coeff: []int64{0, 1}},
		{Const: 1, Coeff: []int64{1, 1}},
	}}
	for i1 := int64(1); i1 <= 3; i1++ {
		for i2 := int64(1); i2 <= 3; i2++ {
			idx := []int64{i1, i2}
			want := a.Address(r.SubsAt(idx))
			if got := r.AddressAt(idx); got != want {
				t.Fatalf("idx %v: fast %d, slow %d", idx, got, want)
			}
		}
	}
}
