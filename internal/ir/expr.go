// Package ir defines the program model of the paper (§3): FORTRAN-like
// regular programs made of subroutines, arbitrarily nested DO loops, IF
// statements with affine guards, affine array references and call
// statements. It also defines the normalised form produced by
// internal/normalize, on which all analyses run.
//
// Two expression representations are used:
//
//   - Expr: a linear expression over *named* loop variables plus a constant,
//     used while building / parsing programs.
//   - Affine: a positional linear expression over the normalised loop
//     indices I_1..I_n, used by all analyses (fast to evaluate).
package ir

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a linear expression c0 + Σ c_v·v over named loop variables.
// The zero value is the constant 0.
type Expr struct {
	Const int64
	Terms map[string]int64 // variable name -> coefficient; no zero entries
}

// Con returns the constant expression c.
func Con(c int64) Expr { return Expr{Const: c} }

// Var returns the expression consisting of the single variable name.
func Var(name string) Expr { return Expr{Terms: map[string]int64{name: 1}} }

// Term returns the expression coeff·name.
func Term(coeff int64, name string) Expr {
	if coeff == 0 {
		return Expr{}
	}
	return Expr{Terms: map[string]int64{name: coeff}}
}

// Plus returns e + f.
func (e Expr) Plus(f Expr) Expr {
	out := Expr{Const: e.Const + f.Const, Terms: map[string]int64{}}
	for v, c := range e.Terms {
		out.Terms[v] += c
	}
	for v, c := range f.Terms {
		out.Terms[v] += c
	}
	out.trim()
	return out
}

// Minus returns e − f.
func (e Expr) Minus(f Expr) Expr { return e.Plus(f.Scale(-1)) }

// PlusConst returns e + c.
func (e Expr) PlusConst(c int64) Expr { return e.Plus(Con(c)) }

// Scale returns k·e.
func (e Expr) Scale(k int64) Expr {
	out := Expr{Const: e.Const * k, Terms: map[string]int64{}}
	for v, c := range e.Terms {
		out.Terms[v] = c * k
	}
	out.trim()
	return out
}

func (e *Expr) trim() {
	for v, c := range e.Terms {
		if c == 0 {
			delete(e.Terms, v)
		}
	}
	if len(e.Terms) == 0 {
		e.Terms = nil
	}
}

// IsConst reports whether e has no variable terms.
func (e Expr) IsConst() bool { return len(e.Terms) == 0 }

// Coeff returns the coefficient of the named variable (0 if absent).
func (e Expr) Coeff(name string) int64 { return e.Terms[name] }

// Vars returns the variable names appearing in e, sorted.
func (e Expr) Vars() []string {
	out := make([]string, 0, len(e.Terms))
	for v := range e.Terms {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Rename returns e with every occurrence of variable old replaced by new.
func (e Expr) Rename(old, new string) Expr {
	if c, ok := e.Terms[old]; ok {
		out := e.clone()
		delete(out.Terms, old)
		out.Terms[new] += c
		out.trim()
		return out
	}
	return e
}

// Subst returns e with the variable name replaced by the expression r
// (used by abstract inlining to substitute actuals for formals).
func (e Expr) Subst(name string, r Expr) Expr {
	c, ok := e.Terms[name]
	if !ok {
		return e
	}
	out := e.clone()
	delete(out.Terms, name)
	out.trim()
	return out.Plus(r.Scale(c))
}

func (e Expr) clone() Expr {
	out := Expr{Const: e.Const, Terms: map[string]int64{}}
	for v, c := range e.Terms {
		out.Terms[v] = c
	}
	return out
}

// Eval evaluates e under the environment env (missing variables are an error
// in analyses; here they evaluate to 0 which callers must avoid).
func (e Expr) Eval(env map[string]int64) int64 {
	v := e.Const
	for name, c := range e.Terms {
		v += c * env[name]
	}
	return v
}

// Equal reports structural equality of e and f.
func (e Expr) Equal(f Expr) bool {
	if e.Const != f.Const || len(e.Terms) != len(f.Terms) {
		return false
	}
	for v, c := range e.Terms {
		if f.Terms[v] != c {
			return false
		}
	}
	return true
}

// String renders e in source-like syntax, e.g. "2*I1 - I2 + 3".
func (e Expr) String() string {
	var b strings.Builder
	first := true
	for _, v := range e.Vars() {
		c := e.Terms[v]
		writeTerm(&b, c, v, &first)
	}
	if e.Const != 0 || first {
		writeTerm(&b, e.Const, "", &first)
	}
	return b.String()
}

func writeTerm(b *strings.Builder, c int64, v string, first *bool) {
	if c == 0 && v != "" {
		return
	}
	switch {
	case *first && c < 0:
		b.WriteByte('-')
		c = -c
	case !*first && c < 0:
		b.WriteString(" - ")
		c = -c
	case !*first:
		b.WriteString(" + ")
	}
	*first = false
	if v == "" {
		fmt.Fprintf(b, "%d", c)
		return
	}
	if c != 1 {
		fmt.Fprintf(b, "%d*", c)
	}
	b.WriteString(v)
}
