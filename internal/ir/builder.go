package ir

// Builder helpers: a thin fluent layer for constructing programs in Go
// code (used by internal/kernels and tests). The FORTRAN-subset front end
// in internal/fparse produces the same structures from text.

// SubBuilder accumulates a subroutine under construction.
type SubBuilder struct {
	sub   *Subroutine
	stack []*[]Node // innermost-first insertion points
}

// NewSub starts building a subroutine.
func NewSub(name string) *SubBuilder {
	b := &SubBuilder{sub: &Subroutine{Name: name}}
	b.stack = []*[]Node{&b.sub.Body}
	return b
}

// Formal declares a formal-parameter array and returns it.
func (b *SubBuilder) Formal(name string, elemSize int64, dims ...int64) *Array {
	a := NewArray(name, elemSize, dims...)
	b.sub.Formals = append(b.sub.Formals, a)
	return a
}

// Local declares a local array and returns it.
func (b *SubBuilder) Local(name string, elemSize int64, dims ...int64) *Array {
	a := NewArray(name, elemSize, dims...)
	b.sub.Locals = append(b.sub.Locals, a)
	return a
}

// Real8 declares a local REAL*8 array.
func (b *SubBuilder) Real8(name string, dims ...int64) *Array {
	return b.Local(name, 8, dims...)
}

// AddLocal registers an externally constructed array as a local.
func (b *SubBuilder) AddLocal(a *Array) *Array {
	b.sub.Locals = append(b.sub.Locals, a)
	return a
}

func (b *SubBuilder) insert(n Node) {
	top := b.stack[len(b.stack)-1]
	*top = append(*top, n)
}

// Do opens a DO loop "DO v = lo, hi" with unit step. Close with End.
func (b *SubBuilder) Do(v string, lo, hi Expr) *SubBuilder {
	return b.DoStep(v, lo, hi, 1)
}

// DoStep opens a DO loop with an explicit step. Close with End.
func (b *SubBuilder) DoStep(v string, lo, hi Expr, step int64) *SubBuilder {
	l := &Loop{Var: v, Lo: lo, Hi: hi, Step: step}
	b.insert(l)
	b.stack = append(b.stack, &l.Body)
	return b
}

// IfCond opens an IF block guarded by the conjunction of conds. Close with End.
func (b *SubBuilder) IfCond(conds ...Cond) *SubBuilder {
	f := &If{Conds: conds}
	b.insert(f)
	b.stack = append(b.stack, &f.Body)
	return b
}

// End closes the innermost open DO or IF.
func (b *SubBuilder) End() *SubBuilder {
	if len(b.stack) == 1 {
		panic("ir: End without open Do/If")
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// Assign appends "lhs = reads..." to the current block. lhs may be nil.
func (b *SubBuilder) Assign(label string, lhs *Ref, reads ...*Ref) *SubBuilder {
	b.insert(NewAssign(label, lhs, reads...))
	return b
}

// Call appends a call statement.
func (b *SubBuilder) Call(callee string, args ...Arg) *SubBuilder {
	b.insert(&Call{Callee: callee, Args: args})
	return b
}

// Build finalises and returns the subroutine. It panics if any Do/If is
// still open.
func (b *SubBuilder) Build() *Subroutine {
	if len(b.stack) != 1 {
		panic("ir: unclosed Do/If in builder")
	}
	return b.sub
}

// R is shorthand for NewRef.
func R(a *Array, subs ...Expr) *Ref { return NewRef(a, subs...) }

// ArgVar passes a whole variable as an actual parameter.
func ArgVar(a *Array) Arg { return Arg{Array: a} }

// ArgElem passes a subscripted array element as an actual parameter.
func ArgElem(a *Array, subs ...Expr) Arg {
	return Arg{Array: a, Subs: append([]Expr(nil), subs...)}
}
