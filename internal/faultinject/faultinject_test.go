package faultinject

import (
	"errors"
	"testing"

	"cachemodel/internal/budget"
	"cachemodel/internal/cerr"
)

func TestFiresExactlyOnceAtN(t *testing.T) {
	inj := CancelAt(3)
	hook := inj.Hook()
	for n := int64(1); n <= 2; n++ {
		if err := hook(n); err != nil {
			t.Fatalf("checkpoint %d fired early: %v", n, err)
		}
	}
	if err := hook(3); !errors.Is(err, cerr.ErrCanceled) {
		t.Fatalf("checkpoint 3 = %v, want ErrCanceled", err)
	}
	for n := int64(4); n <= 6; n++ {
		if err := hook(n); err != nil {
			t.Fatalf("checkpoint %d re-fired: %v", n, err)
		}
	}
	if !inj.Fired() {
		t.Fatal("Fired() = false after injection")
	}
	if inj.Checkpoints() != 6 {
		t.Fatalf("Checkpoints() = %d, want 6", inj.Checkpoints())
	}
}

func TestErrorClassification(t *testing.T) {
	if err := ExhaustAt(1).Hook()(1); !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("ExhaustAt = %v, want ErrBudgetExceeded", err)
	}
	if err := CancelAt(1).Hook()(1); !errors.Is(err, cerr.ErrCanceled) {
		t.Fatalf("CancelAt = %v, want ErrCanceled", err)
	}
	custom := errors.New("custom fault")
	if err := At(1, custom).Hook()(1); !errors.Is(err, custom) {
		t.Fatalf("At = %v, want custom fault", err)
	}
}

func TestThroughMeter(t *testing.T) {
	inj := ExhaustAt(4)
	m := budget.NewMeter(nil, budget.Budget{Hook: inj.Hook()})
	if m.Unlimited() {
		t.Fatal("a hooked meter must not be Unlimited")
	}
	p := m.Probe()
	var err error
	var i int
	for i = 1; i <= 10 && err == nil; i++ {
		err = p.Check(1, 0)
	}
	if !errors.Is(err, cerr.ErrBudgetExceeded) {
		t.Fatalf("meter trip = %v, want ErrBudgetExceeded", err)
	}
	if i-1 != 4 {
		t.Fatalf("tripped at check %d, want 4 (hook forces per-checkpoint flush)", i-1)
	}
	if !inj.Fired() {
		t.Fatal("injector did not record firing")
	}
}
