// Package faultinject is a deterministic fault-injection harness for the
// budgeted solvers: it fires a chosen error (cancellation, budget
// exhaustion, or any other) at exactly the Nth cooperative checkpoint of an
// analysis, which lets tests prove that partial results are coherent, that
// degradation engages at any interruption point, and that analyzers remain
// reusable after an injected fault.
//
// Usage:
//
//	inj := faultinject.CancelAt(37)
//	b := budget.Budget{Hook: inj.Hook()}
//	rep, err := analyzer.FindMissesCtx(ctx, b) // trips at checkpoint 37
//	if !errors.Is(err, cerr.ErrCanceled) { ... }
//
// Run the solver with Workers: 1 for a fully deterministic checkpoint
// order; with parallel workers the Nth checkpoint is still hit exactly
// once, but which iteration point it lands on varies.
package faultinject

import (
	"fmt"
	"sync/atomic"

	"cachemodel/internal/budget"
	"cachemodel/internal/cerr"
)

// Injector fires Err at the Nth checkpoint (1-based), exactly once.
type Injector struct {
	N     int64
	Err   error
	fired atomic.Bool
	seen  atomic.Int64
}

// CancelAt returns an injector that simulates context cancellation at the
// nth checkpoint.
func CancelAt(n int64) *Injector {
	return &Injector{N: n, Err: fmt.Errorf("%w: injected at checkpoint %d", cerr.ErrCanceled, n)}
}

// ExhaustAt returns an injector that simulates budget exhaustion at the
// nth checkpoint.
func ExhaustAt(n int64) *Injector {
	return &Injector{N: n, Err: fmt.Errorf("%w: injected at checkpoint %d", cerr.ErrBudgetExceeded, n)}
}

// At returns an injector firing an arbitrary error at the nth checkpoint.
func At(n int64, err error) *Injector { return &Injector{N: n, Err: err} }

// Hook adapts the injector to a budget.Hook.
func (i *Injector) Hook() budget.Hook {
	return func(n int64) error {
		i.seen.Store(n)
		if n >= i.N && i.fired.CompareAndSwap(false, true) {
			return i.Err
		}
		return nil
	}
}

// Fired reports whether the fault has been injected.
func (i *Injector) Fired() bool { return i.fired.Load() }

// Transient is the harness's transient-error mode: an operation that fails
// its first N invocations with an error wrapping cerr.ErrTransient and
// succeeds from invocation N+1 on. It exercises retry loops (internal/retry
// classifies retryability via cerr.IsTransient) and the server's
// re-enqueue path deterministically.
type Transient struct {
	// N is how many leading calls fail.
	N int64
	// Err is the failure returned while failing; when nil a default
	// transient error is used. A non-nil Err is wrapped so it still
	// satisfies cerr.IsTransient.
	Err   error
	calls atomic.Int64
}

// TransientN returns a transient fault failing the first n calls.
func TransientN(n int64) *Transient { return &Transient{N: n} }

// Op adapts the fault to a plain operation for retry.Do.
func (t *Transient) Op() func() error {
	return func() error { return t.Call() }
}

// Call performs one invocation: an error for the first N calls, nil after.
func (t *Transient) Call() error {
	n := t.calls.Add(1)
	if n > t.N {
		return nil
	}
	if t.Err != nil {
		return fmt.Errorf("%w: injected call %d of %d: %v", cerr.ErrTransient, n, t.N, t.Err)
	}
	return fmt.Errorf("%w: injected call %d of %d", cerr.ErrTransient, n, t.N)
}

// Calls reports how many invocations the fault has seen.
func (t *Transient) Calls() int64 { return t.calls.Load() }

// Checkpoints returns the highest checkpoint index observed.
func (i *Injector) Checkpoints() int64 { return i.seen.Load() }
