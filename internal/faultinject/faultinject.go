// Package faultinject is a deterministic fault-injection harness for the
// budgeted solvers: it fires a chosen error (cancellation, budget
// exhaustion, or any other) at exactly the Nth cooperative checkpoint of an
// analysis, which lets tests prove that partial results are coherent, that
// degradation engages at any interruption point, and that analyzers remain
// reusable after an injected fault.
//
// Usage:
//
//	inj := faultinject.CancelAt(37)
//	b := budget.Budget{Hook: inj.Hook()}
//	rep, err := analyzer.FindMissesCtx(ctx, b) // trips at checkpoint 37
//	if !errors.Is(err, cerr.ErrCanceled) { ... }
//
// Run the solver with Workers: 1 for a fully deterministic checkpoint
// order; with parallel workers the Nth checkpoint is still hit exactly
// once, but which iteration point it lands on varies.
package faultinject

import (
	"fmt"
	"sync/atomic"

	"cachemodel/internal/budget"
	"cachemodel/internal/cerr"
)

// Injector fires Err at the Nth checkpoint (1-based), exactly once.
type Injector struct {
	N     int64
	Err   error
	fired atomic.Bool
	seen  atomic.Int64
}

// CancelAt returns an injector that simulates context cancellation at the
// nth checkpoint.
func CancelAt(n int64) *Injector {
	return &Injector{N: n, Err: fmt.Errorf("%w: injected at checkpoint %d", cerr.ErrCanceled, n)}
}

// ExhaustAt returns an injector that simulates budget exhaustion at the
// nth checkpoint.
func ExhaustAt(n int64) *Injector {
	return &Injector{N: n, Err: fmt.Errorf("%w: injected at checkpoint %d", cerr.ErrBudgetExceeded, n)}
}

// At returns an injector firing an arbitrary error at the nth checkpoint.
func At(n int64, err error) *Injector { return &Injector{N: n, Err: err} }

// Hook adapts the injector to a budget.Hook.
func (i *Injector) Hook() budget.Hook {
	return func(n int64) error {
		i.seen.Store(n)
		if n >= i.N && i.fired.CompareAndSwap(false, true) {
			return i.Err
		}
		return nil
	}
}

// Fired reports whether the fault has been injected.
func (i *Injector) Fired() bool { return i.fired.Load() }

// Checkpoints returns the highest checkpoint index observed.
func (i *Injector) Checkpoints() int64 { return i.seen.Load() }
