// Package cache defines the cache model of §2 — a k-way set-associative
// data cache with LRU replacement and fetch-on-write (so reads and writes
// are modelled identically) — and provides an exact software simulator used
// as the ground truth for validating the analytical method.
package cache

import "fmt"

// Config describes a cache: total size, line size and associativity.
// The paper's default is 32 KB with 32-byte lines at k ∈ {1, 2, 4}.
type Config struct {
	SizeBytes int64 // total capacity C_s in bytes
	LineBytes int64 // line size L_s in bytes
	Assoc     int   // k; 1 = direct mapped
}

// Default32K is the paper's default configuration (direct mapped).
func Default32K(assoc int) Config {
	return Config{SizeBytes: 32 * 1024, LineBytes: 32, Assoc: assoc}
}

// Validate checks structural sanity (power-of-two sizes are not required,
// but line size must divide capacity across the sets).
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache: non-positive parameter in %+v", c)
	}
	if c.SizeBytes%(c.LineBytes*int64(c.Assoc)) != 0 {
		return fmt.Errorf("cache: size %d not divisible by line %d × assoc %d", c.SizeBytes, c.LineBytes, c.Assoc)
	}
	return nil
}

// NumSets returns the number of cache sets.
func (c Config) NumSets() int64 { return c.SizeBytes / (c.LineBytes * int64(c.Assoc)) }

// MemLine returns the memory line index of a byte address.
func (c Config) MemLine(addr int64) int64 { return addr / c.LineBytes }

// SetOfLine returns the cache set a memory line maps to.
func (c Config) SetOfLine(line int64) int64 { return line % c.NumSets() }

// SetOf returns the cache set of a byte address.
func (c Config) SetOf(addr int64) int64 { return c.SetOfLine(c.MemLine(addr)) }

// LineElems returns the line size in elements of the given byte width.
func (c Config) LineElems(elemSize int64) int64 {
	n := c.LineBytes / elemSize
	if n < 1 {
		n = 1
	}
	return n
}

func (c Config) String() string {
	way := "direct"
	if c.Assoc > 1 {
		way = fmt.Sprintf("%d-way", c.Assoc)
	}
	return fmt.Sprintf("%dKB/%dB/%s", c.SizeBytes/1024, c.LineBytes, way)
}

// WritePolicy selects how the simulator treats writes. The paper (and the
// analytical model) assume FetchOnWrite, so reads and writes behave
// identically; WriteNoAllocate is provided to quantify how much that
// assumption matters on a given program.
type WritePolicy int

// Write policies.
const (
	// FetchOnWrite allocates on write misses (write-back, write-allocate):
	// the paper's §2 model.
	FetchOnWrite WritePolicy = iota
	// WriteNoAllocate sends write misses straight to memory without
	// allocating a line (write-through, no-allocate).
	WriteNoAllocate
)

// Simulator is an exact k-way set-associative LRU cache simulator.
// Each set holds up to k memory-line tags in most-recently-used-first
// order.
type Simulator struct {
	cfg    Config
	policy WritePolicy
	sets   [][]int64 // sets[s] = line tags, MRU first
	// Accesses and Misses count all traffic fed to Access.
	Accesses int64
	Misses   int64
}

// NewSimulator returns an empty simulator for the configuration.
func NewSimulator(cfg Config) *Simulator {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	return &Simulator{cfg: cfg, sets: make([][]int64, cfg.NumSets())}
}

// Config returns the simulated configuration.
func (s *Simulator) Config() Config { return s.cfg }

// SetWritePolicy selects the write policy (default FetchOnWrite).
func (s *Simulator) SetWritePolicy(p WritePolicy) { s.policy = p }

// Access simulates one byte-address read access (identical to a write
// under FetchOnWrite) and reports whether it missed.
func (s *Simulator) Access(addr int64) bool { return s.access(addr, false) }

// AccessWrite simulates one write access, honouring the write policy.
func (s *Simulator) AccessWrite(addr int64) bool { return s.access(addr, true) }

func (s *Simulator) access(addr int64, write bool) bool {
	line := s.cfg.MemLine(addr)
	set := s.cfg.SetOfLine(line)
	ways := s.sets[set]
	s.Accesses++
	for i, tag := range ways {
		if tag == line {
			// Hit: move to MRU position.
			copy(ways[1:i+1], ways[:i])
			ways[0] = line
			return false
		}
	}
	s.Misses++
	if write && s.policy == WriteNoAllocate {
		return true // write-through: no line allocated
	}
	if len(ways) < s.cfg.Assoc {
		ways = append(ways, 0)
	}
	copy(ways[1:], ways)
	ways[0] = line
	s.sets[set] = ways
	return true
}

// Reset empties the cache and zeroes the counters.
func (s *Simulator) Reset() {
	s.sets = make([][]int64, s.cfg.NumSets())
	s.Accesses, s.Misses = 0, 0
}

// MissRatio returns misses/accesses (0 when idle).
func (s *Simulator) MissRatio() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}
