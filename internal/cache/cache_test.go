package cache

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConfigDerived(t *testing.T) {
	cfg := Default32K(2)
	if cfg.NumSets() != 512 {
		t.Errorf("sets = %d, want 512", cfg.NumSets())
	}
	if cfg.MemLine(63) != 1 || cfg.MemLine(64) != 2 {
		t.Error("MemLine broken")
	}
	if cfg.SetOf(0) != 0 || cfg.SetOf(512*32) != 0 || cfg.SetOf(513*32) != 1 {
		t.Error("SetOf broken")
	}
	if cfg.LineElems(8) != 4 {
		t.Errorf("LineElems(8) = %d, want 4", cfg.LineElems(8))
	}
	if cfg.String() != "32KB/32B/2-way" {
		t.Errorf("String = %q", cfg.String())
	}
	if Default32K(1).String() != "32KB/32B/direct" {
		t.Errorf("direct String = %q", Default32K(1).String())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 0, LineBytes: 32, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 0, Assoc: 1},
		{SizeBytes: 1024, LineBytes: 32, Assoc: 0},
		{SizeBytes: 1000, LineBytes: 32, Assoc: 1}, // not divisible
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", c)
		}
	}
	if err := Default32K(4).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestDirectMappedConflict(t *testing.T) {
	// 128 B direct-mapped cache with 32 B lines: 4 sets. Two addresses
	// 128 bytes apart conflict.
	cfg := Config{SizeBytes: 128, LineBytes: 32, Assoc: 1}
	s := NewSimulator(cfg)
	if !s.Access(0) {
		t.Error("first access must miss")
	}
	if s.Access(8) {
		t.Error("same line must hit")
	}
	if !s.Access(128) {
		t.Error("conflicting line must miss")
	}
	if !s.Access(0) {
		t.Error("evicted line must miss again")
	}
}

func TestLRUOrder(t *testing.T) {
	// 2-way, 2 sets: lines 0, 2, 4 map to set 0. Touch 0, 2, then 0 again,
	// then 4: the LRU victim is 2.
	cfg := Config{SizeBytes: 128, LineBytes: 32, Assoc: 2}
	s := NewSimulator(cfg)
	s.Access(0 * 32)
	s.Access(2 * 32)
	if s.Access(0 * 32) {
		t.Fatal("line 0 must hit")
	}
	s.Access(4 * 32) // evicts line 2
	if s.Access(0 * 32) {
		t.Error("line 0 must survive (was MRU)")
	}
	if !s.Access(2 * 32) {
		t.Error("line 2 must have been evicted")
	}
}

func TestFullyAssociative(t *testing.T) {
	// Fully associative 4-line cache: a cyclic walk over 5 lines misses
	// every time under LRU.
	cfg := Config{SizeBytes: 128, LineBytes: 32, Assoc: 4}
	s := NewSimulator(cfg)
	for round := 0; round < 3; round++ {
		for l := int64(0); l < 5; l++ {
			if !s.Access(l * 32) {
				t.Fatalf("round %d line %d: LRU cyclic walk must always miss", round, l)
			}
		}
	}
}

func TestWorkingSetFits(t *testing.T) {
	cfg := Default32K(4)
	s := NewSimulator(cfg)
	// 16 KB working set: second pass must be all hits.
	for a := int64(0); a < 16*1024; a += 8 {
		s.Access(a)
	}
	missesAfterWarm := s.Misses
	for a := int64(0); a < 16*1024; a += 8 {
		s.Access(a)
	}
	if s.Misses != missesAfterWarm {
		t.Errorf("second pass missed %d times", s.Misses-missesAfterWarm)
	}
	if got, want := missesAfterWarm, int64(16*1024/32); got != want {
		t.Errorf("cold misses = %d, want %d", got, want)
	}
}

func TestReset(t *testing.T) {
	s := NewSimulator(Default32K(1))
	s.Access(0)
	s.Reset()
	if s.Accesses != 0 || s.Misses != 0 {
		t.Error("counters not reset")
	}
	if !s.Access(0) {
		t.Error("cache not emptied by Reset")
	}
}

// referenceLRU is an obviously correct (slow, map-based) LRU model used as
// the oracle for the property test.
type referenceLRU struct {
	cfg  Config
	sets map[int64][]int64
	time map[int64]int64
	now  int64
}

func (r *referenceLRU) access(addr int64) bool {
	line := addr / r.cfg.LineBytes
	set := line % r.cfg.NumSets()
	r.now++
	for _, l := range r.sets[set] {
		if l == line {
			r.time[l] = r.now
			return false
		}
	}
	ws := r.sets[set]
	if len(ws) >= r.cfg.Assoc {
		// Evict the least recently used.
		victim := 0
		for i := 1; i < len(ws); i++ {
			if r.time[ws[i]] < r.time[ws[victim]] {
				victim = i
			}
		}
		delete(r.time, ws[victim])
		ws = append(ws[:victim], ws[victim+1:]...)
	}
	r.sets[set] = append(ws, line)
	r.time[line] = r.now
	return true
}

// TestSimulatorMatchesReference: random address streams against the
// map-based oracle across several geometries (testing/quick drives the
// stream).
func TestSimulatorMatchesReference(t *testing.T) {
	cfgs := []Config{
		{SizeBytes: 128, LineBytes: 32, Assoc: 1},
		{SizeBytes: 256, LineBytes: 32, Assoc: 2},
		{SizeBytes: 512, LineBytes: 64, Assoc: 4},
	}
	for _, cfg := range cfgs {
		cfg := cfg
		f := func(seed int64) bool {
			rng := rand.New(rand.NewSource(seed))
			sim := NewSimulator(cfg)
			ref := &referenceLRU{cfg: cfg, sets: map[int64][]int64{}, time: map[int64]int64{}}
			for i := 0; i < 500; i++ {
				addr := int64(rng.Intn(4096))
				if sim.Access(addr) != ref.access(addr) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
			t.Errorf("config %s: %v", cfg, err)
		}
	}
}

func TestWriteNoAllocate(t *testing.T) {
	cfg := Config{SizeBytes: 128, LineBytes: 32, Assoc: 1}
	s := NewSimulator(cfg)
	s.SetWritePolicy(WriteNoAllocate)
	if !s.AccessWrite(0) {
		t.Error("first write must miss")
	}
	// No allocation happened: a read of the same line still misses.
	if !s.Access(0) {
		t.Error("read after no-allocate write must miss")
	}
	// Under the default policy the same sequence hits.
	d := NewSimulator(cfg)
	d.AccessWrite(0)
	if d.Access(0) {
		t.Error("fetch-on-write must allocate")
	}
}
