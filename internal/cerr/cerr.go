// Package cerr defines the typed sentinel errors of the analysis stack and
// the panic-to-error recovery used at the public API boundary. Every solver
// entry point wraps one of these sentinels so callers can dispatch with
// errors.Is instead of string matching:
//
//	rep, err := cachemodel.FindMissesCtx(ctx, np, cfg, opt, budget)
//	switch {
//	case errors.Is(err, cachemodel.ErrBudgetExceeded): // partial/degraded result
//	case errors.Is(err, cachemodel.ErrCanceled):       // caller cancelled
//	}
package cerr

import (
	"errors"
	"fmt"
	"strings"
)

// Sentinel errors of the analysis stack.
var (
	// ErrBudgetExceeded reports that an analysis ran out of its Budget
	// (wall-clock deadline, iteration points or interference-scan work)
	// and could not, or was not allowed to, degrade further.
	ErrBudgetExceeded = errors.New("analysis budget exceeded")

	// ErrCanceled reports that the caller's context was cancelled. Unlike
	// budget exhaustion, cancellation never degrades: the partial result is
	// returned as-is together with this error.
	ErrCanceled = errors.New("analysis canceled")

	// ErrNonAffine reports input outside the affine program model (§2): a
	// product of loop variables in a subscript, a data-dependent loop, ...
	ErrNonAffine = errors.New("non-affine construct")

	// ErrDegenerateSystem reports a degenerate linear system in the reuse
	// analysis (zero denominator, dimension mismatch), typically caused by
	// pathological subscripts.
	ErrDegenerateSystem = errors.New("degenerate linear system")

	// ErrTransient marks a failure worth retrying: a flaky I/O operation
	// on the on-disk result cache, an injected transient fault, a job
	// preempted mid-queue. Wrap concrete errors with it
	// (fmt.Errorf("%w: ...", cerr.ErrTransient, ...)) so retry loops can
	// dispatch with IsTransient instead of string matching.
	ErrTransient = errors.New("transient failure")

	// ErrPanic marks an error converted from a recovered panic that did
	// not classify as a model violation or a degenerate system — a crash
	// isolated into a typed failure. Long-running callers (the serving
	// layer) dispatch on it to fail one job while the process lives on;
	// it must never be degraded around, because the partial counts of a
	// crashed solve carry no guarantee.
	ErrPanic = errors.New("internal panic")
)

// IsTransient reports whether err is marked retryable (wraps ErrTransient).
func IsTransient(err error) bool { return errors.Is(err, ErrTransient) }

// RecoverTo converts a panic in the deferring function into an error wrapping
// the matching sentinel, for use at public API boundaries:
//
//	func FindMisses(...) (rep *Report, err error) {
//	    defer cerr.RecoverTo(&err)
//	    ...
//	}
//
// It classifies linalg panics as ErrDegenerateSystem and model-violation
// panics as ErrNonAffine; everything else becomes a plain error carrying the
// panic message. Runtime panics that indicate programmer error (nil deref,
// index out of range) are also converted, so callers never crash on
// degenerate inputs.
func RecoverTo(err *error) {
	r := recover()
	if r == nil {
		return
	}
	*err = FromPanic(r)
}

// FromPanic classifies a recovered panic value into the matching typed
// error without re-panicking, for recovery sites that are not deferred at
// an API boundary (solver pool goroutines, job runners).
func FromPanic(r any) error {
	msg := fmt.Sprint(r)
	switch {
	case strings.HasPrefix(msg, "linalg:"):
		return fmt.Errorf("%w: %s", ErrDegenerateSystem, msg)
	case strings.Contains(msg, "non-affine") || strings.Contains(msg, "non-loop variable"):
		return fmt.Errorf("%w: %s", ErrNonAffine, msg)
	default:
		return fmt.Errorf("%w: %s", ErrPanic, msg)
	}
}
