package layout

import (
	"testing"

	"cachemodel/internal/ir"
)

func TestSequentialAssign(t *testing.T) {
	a := ir.NewArray("A", 8, 10)     // 80 bytes
	b := ir.NewArray("B", 8, 10, 10) // 800 bytes
	end, err := Assign([]*ir.Array{a, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Base != 0 || b.Base != 80 || end != 880 {
		t.Errorf("bases = %d, %d, end %d", a.Base, b.Base, end)
	}
}

func TestAlignmentAndPadding(t *testing.T) {
	a := ir.NewArray("A", 8, 3) // 24 bytes
	b := ir.NewArray("B", 8, 4)
	_, err := Assign([]*ir.Array{a, b}, Options{Start: 100, Align: 64, InterPad: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Base != 128 {
		t.Errorf("A base = %d, want 128 (aligned from 100)", a.Base)
	}
	// A ends at 152, +8 pad = 160, aligned to 64 → 192.
	if b.Base != 192 {
		t.Errorf("B base = %d, want 192", b.Base)
	}
}

func TestPerArrayPad(t *testing.T) {
	a := ir.NewArray("A", 8, 4) // 32 bytes
	b := ir.NewArray("B", 8, 4)
	_, err := Assign([]*ir.Array{a, b}, Options{PadOf: map[string]int64{"A": 16}})
	if err != nil {
		t.Fatal(err)
	}
	if b.Base != 48 {
		t.Errorf("B base = %d, want 48 (32 + 16 pad)", b.Base)
	}
}

func TestAssumedSizePlacement(t *testing.T) {
	a := ir.NewArray("A", 8, 10, 0) // assumed-size
	b := ir.NewArray("B", 8, 4)
	_, err := Assign([]*ir.Array{a, b}, Options{AssumedSizeElems: 3})
	if err != nil {
		t.Fatal(err)
	}
	if b.Base != 10*3*8 {
		t.Errorf("B base = %d, want 240", b.Base)
	}
}

func TestAliasResolution(t *testing.T) {
	a := ir.NewArray("A", 8, 10)
	v := ir.NewArray("V", 8, 5)
	v.Alias = a
	v.AliasOffset = 16
	w := ir.NewArray("W", 8, 5)
	w.Alias = v
	w.AliasOffset = 8
	_, err := Assign([]*ir.Array{a, v, w}, Options{Start: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if v.Base != 1016 {
		t.Errorf("V base = %d, want 1016", v.Base)
	}
	if w.Base != 1024 {
		t.Errorf("chained alias W base = %d, want 1024", w.Base)
	}
}

func TestAliasesConsumeNoSpace(t *testing.T) {
	a := ir.NewArray("A", 8, 10)
	v := ir.NewArray("V", 8, 100)
	v.Alias = a
	b := ir.NewArray("B", 8, 1)
	end, err := Assign([]*ir.Array{a, v, b}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if b.Base != 80 || end != 88 {
		t.Errorf("alias consumed space: B at %d, end %d", b.Base, end)
	}
}

func TestAssignProgramPlacesAliasTargets(t *testing.T) {
	// A program whose only references go through an alias view must still
	// place the concrete target.
	concrete := ir.NewArray("C", 8, 8, 8)
	view := ir.NewArray("C$flat", 8, 0)
	view.Alias = concrete

	b := ir.NewSub("m")
	b.AddLocal(view)
	b.Do("I", ir.Con(1), ir.Con(4)).
		Assign("S1", ir.NewRef(view, ir.Var("I"))).
		End()
	_ = b
	np := &ir.NProgram{Arrays: []*ir.Array{view}}
	if err := AssignProgram(np, Options{}); err != nil {
		t.Fatal(err)
	}
	if concrete.Base < 0 {
		t.Error("alias target not placed")
	}
	if view.Base != concrete.Base {
		t.Errorf("view base %d != target base %d", view.Base, concrete.Base)
	}
}
