// Package layout assigns compile-time base addresses to arrays (§3: "the
// base addresses of all non-register variables ... must be known at compile
// time") using a FORTRAN-style sequential data layout, with optional
// inter-array padding — the knob the paper's method is meant to help tune.
package layout

import (
	"fmt"

	"cachemodel/internal/ir"
)

// Options controls the layout.
type Options struct {
	// Start is the byte address of the first array (default 0).
	Start int64
	// Align rounds each base address up to this boundary (default: the
	// element size of the array).
	Align int64
	// InterPad inserts this many bytes between consecutive arrays.
	InterPad int64
	// PadOf overrides InterPad per array name (applied after the array).
	PadOf map[string]int64
	// AssumedSizeElems is the element count assumed for the last dimension
	// of assumed-size arrays so that following arrays can be placed
	// (default 1).
	AssumedSizeElems int64
}

// Assign lays out the arrays sequentially in declaration order, mutating
// each Array's Base, and returns the first free address after the last
// array.
func Assign(arrays []*ir.Array, opt Options) (end int64, err error) {
	addr := opt.Start
	for _, a := range arrays {
		if a.Alias != nil {
			continue // resolved after concrete arrays are placed
		}
		align := opt.Align
		if align <= 0 {
			align = a.ElemSize
		}
		if align > 0 && addr%align != 0 {
			addr += align - addr%align
		}
		a.Base = addr
		size := a.SizeBytes()
		if size == 0 { // assumed-size last dimension
			n := opt.AssumedSizeElems
			if n <= 0 {
				n = 1
			}
			elems := int64(1)
			for _, d := range a.Dims[:len(a.Dims)-1] {
				elems *= d
			}
			size = elems * n * a.ElemSize
		}
		if size < 0 {
			return 0, fmt.Errorf("layout: array %s has negative size", a.Name)
		}
		addr += size + opt.InterPad
		if p, ok := opt.PadOf[a.Name]; ok {
			addr += p
		}
	}
	for _, a := range arrays {
		if a.Alias == nil {
			continue
		}
		// Follow alias chains to a concrete array.
		target, off := a.Alias, a.AliasOffset
		for target.Alias != nil {
			off += target.AliasOffset
			target = target.Alias
		}
		if target.Base < 0 {
			return 0, fmt.Errorf("layout: alias %s targets unplaced array %s", a.Name, target.Name)
		}
		a.Base = target.Base + off
	}
	return addr, nil
}

// AssignProgram lays out every array of a normalised program in first-use
// order, including the concrete targets of alias arrays even when the
// targets themselves are never referenced directly.
func AssignProgram(np *ir.NProgram, opt Options) error {
	arrays := append([]*ir.Array(nil), np.Arrays...)
	seen := map[*ir.Array]bool{}
	for _, a := range arrays {
		seen[a] = true
	}
	for _, a := range np.Arrays {
		for t := a.Alias; t != nil; t = t.Alias {
			if !seen[t] {
				seen[t] = true
				arrays = append(arrays, t)
			}
		}
	}
	_, err := Assign(arrays, opt)
	return err
}
