package normalize

import (
	"math/rand"
	"testing"

	"cachemodel/internal/ir"
	"cachemodel/internal/layout"
	"cachemodel/internal/trace"
)

// interpret executes the ORIGINAL (un-normalised) program directly and
// returns its byte-address stream — the semantic oracle for the
// normalisation property. Loops are assumed non-empty on the paths taken
// (the paper's regular programs; loop sinking hoists statements into
// neighbouring loops, which is only semantics-preserving when those loops
// execute).
func interpret(nodes []ir.Node, env map[string]int64, out *[]int64) {
	for _, n := range nodes {
		switch n := n.(type) {
		case *ir.Loop:
			step := n.Step
			if step == 0 {
				step = 1
			}
			lo, hi := n.Lo.Eval(env), n.Hi.Eval(env)
			for v := lo; (step > 0 && v <= hi) || (step < 0 && v >= hi); v += step {
				env[n.Var] = v
				interpret(n.Body, env, out)
			}
			delete(env, n.Var)
		case *ir.If:
			ok := true
			for _, c := range n.Conds {
				if !c.Holds(env) {
					ok = false
					break
				}
			}
			if ok {
				interpret(n.Body, env, out)
			}
		case *ir.Assign:
			for _, r := range n.Refs() {
				subs := make([]int64, len(r.Subs))
				for d, e := range r.Subs {
					subs[d] = e.Eval(env)
				}
				*out = append(*out, r.Array.Address(subs))
			}
		}
	}
}

// randomNest builds a random program with nested loops, interleaved
// statements (forcing loop sinking), IF guards and non-unit steps. All
// loops are guaranteed non-empty.
func randomNest(rng *rand.Rand) *ir.Subroutine {
	b := ir.NewSub("rand")
	arr := b.Real8("A", 64, 64, 64)
	vars := []string{"P", "Q", "R"}
	var gen func(depth int, outers []string)
	stmt := 0
	expr := func(outers []string) ir.Expr {
		e := ir.Con(int64(1 + rng.Intn(8)))
		if len(outers) > 0 && rng.Intn(2) == 0 {
			e = e.Plus(ir.Var(outers[rng.Intn(len(outers))]))
		}
		return e
	}
	emit := func(outers []string) {
		stmt++
		subs := make([]ir.Expr, 3)
		for d := range subs {
			subs[d] = expr(outers)
		}
		b.Assign("S", ir.R(arr, subs...))
	}
	gen = func(depth int, outers []string) {
		nitems := 1 + rng.Intn(3)
		for i := 0; i < nitems; i++ {
			switch {
			case depth < 2 && rng.Intn(2) == 0:
				v := vars[depth]
				lo := int64(1 + rng.Intn(3))
				hi := lo + int64(1+rng.Intn(4)) // non-empty
				step := int64(1)
				if rng.Intn(3) == 0 {
					step = 2
				}
				b.DoStep(v, ir.Con(lo), ir.Con(hi), step)
				gen(depth+1, append(outers, v))
				b.End()
			case len(outers) > 0 && rng.Intn(3) == 0:
				v := outers[rng.Intn(len(outers))]
				b.IfCond(ir.Cond{LHS: ir.Var(v), Op: ir.GE, RHS: ir.Con(int64(1 + rng.Intn(4)))})
				emit(outers)
				b.End()
			default:
				emit(outers)
			}
		}
	}
	gen(0, nil)
	if stmt == 0 {
		emit(nil)
	}
	return b.Build()
}

// TestNormalizePreservesStream: over many random programs, the normalised
// program must produce exactly the address stream of direct
// interpretation — same addresses, same order. This covers step
// normalisation, loop sinking (statements between/before/after sibling
// loops), depth padding and guard propagation in one property.
func TestNormalizePreservesStream(t *testing.T) {
	rng := rand.New(rand.NewSource(2002))
	for trial := 0; trial < 300; trial++ {
		sub := randomNest(rng)
		// Oracle first (normalisation mutates expressions during step
		// rewriting, so interpret the original before normalising).
		for _, a := range sub.Arrays() {
			a.Base = 0
		}
		var want []int64
		interpret(sub.Body, map[string]int64{}, &want)

		np, err := Normalize(sub)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := layout.AssignProgram(np, layout.Options{}); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		var got []int64
		trace.Execute(np, func(r *ir.NRef, idx []int64) bool {
			got = append(got, r.AddressAt(idx))
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("trial %d: stream length %d, oracle %d", trial, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: address %d: normalised %d, oracle %d", trial, i, got[i], want[i])
			}
		}
	}
}
