// Package normalize implements the five loop-nest pre-processing steps of
// §3.1 of the paper:
//
//  1. all loop step sizes are made 1,
//  2. statements outside any loop get an enclosing 1..1 loop,
//  3. statements at depth k < n get n−k innermost 1..1 loops,
//  4. loop sinking moves statements into the innermost depth by adding IF
//     guards (a statement before a loop sinks guarded by I == lo; a
//     statement after the last loop sinks guarded by I == hi),
//  5. loop variables are renamed positionally so that depth k uses I_k.
//
// The input is a call-free ir.Subroutine (run internal/inline first); the
// output is an ir.NProgram in which every statement is nested inside an
// n-dimensional nest, with its loop label vector, per-depth affine bounds
// and affine guard constraints attached.
package normalize

import (
	"fmt"

	"cachemodel/internal/ir"
)

// Normalize applies the five steps to sub and returns the normalised
// program. It returns an error if the subroutine violates the program
// model (calls present, non-affine expressions, unknown variables).
func Normalize(sub *ir.Subroutine) (*ir.NProgram, error) {
	n := &normalizer{known: map[string]*ir.Array{}}
	for _, a := range sub.Arrays() {
		n.known[a.Name] = a
	}
	tree, err := n.flatten(sub.Body, nil)
	if err != nil {
		return nil, err
	}
	if err := n.normalizeSteps(tree, nil); err != nil {
		return nil, err
	}
	depth := maxDepth(tree)
	if depth == 0 {
		depth = 1 // a program of straight-line statements still gets one loop
	}
	tree = n.sink(tree, 0, depth)
	np := &ir.NProgram{Name: sub.Name, Depth: depth}
	seen := map[*ir.Array]bool{}
	seq := 0
	for i, w := range tree {
		nl, err := n.emit(w, []int{i + 1}, nil, nil, nil, depth, np, seen, &seq)
		if err != nil {
			return nil, err
		}
		np.Top = append(np.Top, nl)
	}
	return np, nil
}

// wnode is a working tree node: either a loop (with children) or a
// statement, each carrying accumulated IF guards.
type wnode struct {
	loop     *ir.Loop // non-nil for loops
	stmt     *ir.Assign
	guards   []ir.Cond
	children []*wnode
}

type normalizer struct {
	known map[string]*ir.Array
	fresh int
}

// flatten turns a body into wnodes, distributing IF guards onto the
// contained loops and statements and rejecting call statements.
func (n *normalizer) flatten(nodes []ir.Node, guards []ir.Cond) ([]*wnode, error) {
	var out []*wnode
	for _, node := range nodes {
		switch node := node.(type) {
		case *ir.Loop:
			kids, err := n.flatten(node.Body, nil)
			if err != nil {
				return nil, err
			}
			out = append(out, &wnode{loop: node, guards: append([]ir.Cond(nil), guards...), children: kids})
		case *ir.If:
			g := append(append([]ir.Cond(nil), guards...), node.Conds...)
			kids, err := n.flatten(node.Body, g)
			if err != nil {
				return nil, err
			}
			out = append(out, kids...)
		case *ir.Assign:
			out = append(out, &wnode{stmt: node, guards: append([]ir.Cond(nil), guards...)})
		case *ir.Call:
			return nil, fmt.Errorf("normalize: call to %s not inlined (run internal/inline first)", node.Callee)
		default:
			return nil, fmt.Errorf("normalize: unknown node %T", node)
		}
	}
	return out, nil
}

// normalizeSteps rewrites every loop with step ≠ 1 into a unit-step loop,
// substituting var := lo + (var−1)·step throughout its subtree. Non-unit
// steps require constant bounds (the paper's regular programs satisfy
// this; variable-bound strided loops are data-dependent for trip count).
func (n *normalizer) normalizeSteps(tree []*wnode, outer []string) error {
	for _, w := range tree {
		if w.loop == nil {
			continue
		}
		l := w.loop
		step := l.Step
		if step == 0 {
			step = 1
		}
		if step != 1 {
			if !l.Lo.IsConst() || !l.Hi.IsConst() {
				return fmt.Errorf("normalize: loop %s has step %d with non-constant bounds", l.Var, step)
			}
			lo, hi := l.Lo.Const, l.Hi.Const
			trip := (hi - lo) / step
			if (step > 0 && hi < lo) || (step < 0 && hi > lo) {
				trip = -1 // empty loop
			}
			// var := lo + (var' − 1)·step, var' in 1..trip+1
			repl := ir.Con(lo - step).Plus(ir.Term(step, l.Var))
			substSubtree(w, l.Var, repl)
			l.Lo = ir.Con(1)
			l.Hi = ir.Con(trip + 1)
			l.Step = 1
		}
		if err := n.normalizeSteps(w.children, append(outer, l.Var)); err != nil {
			return err
		}
	}
	return nil
}

func substSubtree(w *wnode, name string, repl ir.Expr) {
	for i := range w.guards {
		w.guards[i] = ir.Cond{LHS: w.guards[i].LHS.Subst(name, repl), Op: w.guards[i].Op, RHS: w.guards[i].RHS.Subst(name, repl)}
	}
	if w.stmt != nil {
		for _, r := range w.stmt.Refs() {
			for j := range r.Subs {
				r.Subs[j] = r.Subs[j].Subst(name, repl)
			}
		}
	}
	if w.loop != nil {
		// Do not substitute into this loop's own Var; bounds may use it? No:
		// bounds reference outer loops only.
		w.loop.Lo = w.loop.Lo.Subst(name, repl)
		w.loop.Hi = w.loop.Hi.Subst(name, repl)
	}
	for _, c := range w.children {
		substSubtree(c, name, repl)
	}
}

func maxDepth(tree []*wnode) int {
	d := 0
	for _, w := range tree {
		if w.loop != nil {
			if k := 1 + maxDepth(w.children); k > d {
				d = k
			}
		}
	}
	return d
}

// sink rewrites a sibling list at the given depth so that it contains only
// loops (when depth < n). Statements sink into an adjacent loop with an
// equality guard, or get a fresh 1..1 loop when no sibling loop exists.
func (n *normalizer) sink(tree []*wnode, depth, nTotal int) []*wnode {
	if depth == nTotal {
		return tree // statement level: nothing to do
	}
	hasLoop := false
	for _, w := range tree {
		if w.loop != nil {
			hasLoop = true
			break
		}
	}
	if !hasLoop {
		if len(tree) == 0 {
			return nil
		}
		// Wrap the whole run of statements in one fresh 1..1 loop.
		n.fresh++
		l := &ir.Loop{Var: fmt.Sprintf("__pad%d", n.fresh), Lo: ir.Con(1), Hi: ir.Con(1), Step: 1}
		wrapped := &wnode{loop: l, children: tree}
		wrapped.children = n.sink(wrapped.children, depth+1, nTotal)
		return []*wnode{wrapped}
	}
	// Sink statements into adjacent loops.
	var loops []*wnode
	var pending []*wnode // statements awaiting the next loop
	for _, w := range tree {
		if w.loop == nil {
			pending = append(pending, w)
			continue
		}
		if len(pending) > 0 {
			// Statements before this loop: guard I == lo, prepend.
			for i := range pending {
				pending[i].guards = append(pending[i].guards,
					ir.Cond{LHS: ir.Var(w.loop.Var), Op: ir.EQ, RHS: w.loop.Lo})
			}
			w.children = append(append([]*wnode(nil), pending...), w.children...)
			pending = nil
		}
		loops = append(loops, w)
	}
	if len(pending) > 0 {
		// Trailing statements: guard I == hi, append to the last loop.
		last := loops[len(loops)-1]
		for i := range pending {
			pending[i].guards = append(pending[i].guards,
				ir.Cond{LHS: ir.Var(last.loop.Var), Op: ir.EQ, RHS: last.loop.Hi})
		}
		last.children = append(last.children, pending...)
	}
	for _, l := range loops {
		l.children = n.sink(l.children, depth+1, nTotal)
	}
	return loops
}

// emit converts the sunk working tree into the normalised representation,
// assigning labels, converting expressions to positional affine form and
// numbering references.
func (n *normalizer) emit(w *wnode, label []int, vars []string, bounds []ir.NBound,
	inherited []ir.Cond, nTotal int, np *ir.NProgram, seen map[*ir.Array]bool, seq *int) (*ir.NLoop, error) {

	if w.loop == nil {
		return nil, fmt.Errorf("normalize: internal error: statement at loop position")
	}
	depthOf := map[string]int{}
	for i, v := range vars {
		depthOf[v] = i + 1
	}
	lo, err := affine(w.loop.Lo, depthOf, len(vars))
	if err != nil {
		return nil, fmt.Errorf("loop %s lower bound: %w", w.loop.Var, err)
	}
	hi, err := affine(w.loop.Hi, depthOf, len(vars))
	if err != nil {
		return nil, fmt.Errorf("loop %s upper bound: %w", w.loop.Var, err)
	}
	nl := &ir.NLoop{Bound: ir.NBound{Lo: lo, Hi: hi}}
	inherited = append(append([]ir.Cond(nil), inherited...), w.guards...)
	vars = append(vars, w.loop.Var)
	bounds = append(bounds, nl.Bound)
	depthOf[w.loop.Var] = len(vars)

	depth := len(label)
	if depth < nTotal {
		childIdx := 0
		for _, c := range w.children {
			childIdx++
			cl, err := n.emit(c, append(append([]int(nil), label...), childIdx), vars, bounds, inherited, nTotal, np, seen, seq)
			if err != nil {
				return nil, err
			}
			nl.Loops = append(nl.Loops, cl)
		}
		return nl, nil
	}

	// depth == nTotal: children are statements.
	for _, c := range w.children {
		if c.stmt == nil {
			return nil, fmt.Errorf("normalize: internal error: loop below depth n")
		}
		ns := &ir.NStmt{
			Label:  append([]int(nil), label...),
			Bounds: append([]ir.NBound(nil), bounds...),
			Name:   c.stmt.Label,
		}
		allGuards := append(append([]ir.Cond(nil), inherited...), c.guards...)
		for _, g := range allGuards {
			lhs, err := affine(g.LHS, depthOf, nTotal)
			if err != nil {
				return nil, fmt.Errorf("guard of %s: %w", c.stmt.Label, err)
			}
			rhs, err := affine(g.RHS, depthOf, nTotal)
			if err != nil {
				return nil, fmt.Errorf("guard of %s: %w", c.stmt.Label, err)
			}
			ns.Guards = append(ns.Guards, lowerCond(lhs, g.Op, rhs)...)
		}
		for ri, r := range c.stmt.Refs() {
			nr := &ir.NRef{Array: r.Array, Write: r.Write, Stmt: ns, Seq: *seq,
				ID: fmt.Sprintf("%s/%s#%d", c.stmt.Label, r.Array.Name, ri)}
			*seq++
			for _, s := range r.Subs {
				a, err := affine(s, depthOf, nTotal)
				if err != nil {
					return nil, fmt.Errorf("subscript of %s in %s: %w", r.Array.Name, c.stmt.Label, err)
				}
				nr.Subs = append(nr.Subs, a)
			}
			ns.Refs = append(ns.Refs, nr)
			np.Refs = append(np.Refs, nr)
			if !seen[r.Array] {
				seen[r.Array] = true
				np.Arrays = append(np.Arrays, r.Array)
			}
		}
		nl.Stmts = append(nl.Stmts, ns)
		np.Stmts = append(np.Stmts, ns)
	}
	return nl, nil
}

// affine converts a named expression to positional form, checking that all
// variables are enclosing loop indices.
func affine(e ir.Expr, depthOf map[string]int, n int) (ir.Affine, error) {
	a := ir.Affine{Const: e.Const, Coeff: make([]int64, n)}
	for v, c := range e.Terms {
		d, ok := depthOf[v]
		if !ok {
			return ir.Affine{}, fmt.Errorf("variable %q is not an enclosing loop index (data-dependent construct?)", v)
		}
		a.Coeff[d-1] += c
	}
	return a, nil
}

// lowerCond converts lhs op rhs into ≥0 / =0 normal-form constraints.
func lowerCond(lhs ir.Affine, op ir.CmpOp, rhs ir.Affine) []ir.NConstraint {
	d := lhs.Sub(rhs)
	neg := func(a ir.Affine) ir.Affine {
		out := ir.Affine{Const: -a.Const, Coeff: make([]int64, len(a.Coeff))}
		for i, c := range a.Coeff {
			out.Coeff[i] = -c
		}
		return out
	}
	switch op {
	case ir.EQ:
		return []ir.NConstraint{{Expr: d, IsEq: true}}
	case ir.LE:
		return []ir.NConstraint{{Expr: neg(d)}}
	case ir.LT:
		return []ir.NConstraint{{Expr: neg(d).AddConst(-1)}}
	case ir.GE:
		return []ir.NConstraint{{Expr: d}}
	case ir.GT:
		return []ir.NConstraint{{Expr: d.AddConst(-1)}}
	}
	panic("normalize: unknown comparison")
}
