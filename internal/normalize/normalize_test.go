package normalize

import (
	"testing"

	"cachemodel/internal/ir"
	"cachemodel/internal/poly"
)

// figure1 builds the subroutine of Figure 1 of the paper with N = n.
//
//	DO I1 = 2, N
//	  S1: A(I1-1) = ...
//	  DO I2 = I1, N
//	    S2: B(I2-1, I1) = A(I2-1)
//	  DO I2 = 1, N
//	    S3: ... = B(I2, I1)
//	  S4: ... = A(I1)
//	DO I1 = 1, N-1
//	  S5: A(I1+1) = ...
func figure1(n int64) *ir.Subroutine {
	b := ir.NewSub("foo")
	A := b.Real8("A", n)
	B := b.Real8("B", n, n)
	b.Do("I1", ir.Con(2), ir.Con(n)).
		Assign("S1", ir.R(A, ir.Var("I1").PlusConst(-1))).
		Do("I2", ir.Var("I1"), ir.Con(n)).
		Assign("S2", ir.R(B, ir.Var("I2").PlusConst(-1), ir.Var("I1")), ir.R(A, ir.Var("I2").PlusConst(-1))).
		End().
		Do("I2", ir.Con(1), ir.Con(n)).
		Assign("S3", nil, ir.R(B, ir.Var("I2"), ir.Var("I1"))).
		End().
		Assign("S4", nil, ir.R(A, ir.Var("I1"))).
		End().
		Do("I1", ir.Con(1), ir.Con(n-1)).
		Assign("S5", ir.R(A, ir.Var("I1").PlusConst(1))).
		End()
	return b.Build()
}

func mustNormalize(t *testing.T, sub *ir.Subroutine) *ir.NProgram {
	t.Helper()
	np, err := Normalize(sub)
	if err != nil {
		t.Fatalf("Normalize: %v", err)
	}
	return np
}

// TestFigure2Normalisation checks the normalised shape of Figure 2: depth
// 2, five statements, with S1 sunk into L(1,1) guarded by I2 == I1, S4
// sunk into L(1,2) guarded by I2 == N, and S5 wrapped in a 1..1 loop.
func TestFigure2Normalisation(t *testing.T) {
	const n = 10
	np := mustNormalize(t, figure1(n))
	if np.Depth != 2 {
		t.Fatalf("depth = %d, want 2", np.Depth)
	}
	if len(np.Stmts) != 5 {
		t.Fatalf("statements = %d, want 5", len(np.Stmts))
	}
	byName := map[string]*ir.NStmt{}
	for _, s := range np.Stmts {
		byName[s.Name] = s
	}
	// Program order: S1, S2 in L(1,1); S3, S4 in L(1,2); S5 in L(2,1).
	order := []string{"S1", "S2", "S3", "S4", "S5"}
	for i, name := range order {
		if np.Stmts[i].Name != name {
			t.Errorf("stmt %d = %s, want %s", i, np.Stmts[i].Name, name)
		}
	}
	if g := byName["S1"].Guards; len(g) != 1 || !g[0].IsEq {
		t.Errorf("S1 guards = %v, want single equality (I2 == I1)", g)
	}
	if g := byName["S4"].Guards; len(g) != 1 || !g[0].IsEq {
		t.Errorf("S4 guards = %v, want single equality (I2 == N)", g)
	}
	if g := byName["S2"].Guards; len(g) != 0 {
		t.Errorf("S2 guards = %v, want none", g)
	}
	if g := byName["S5"].Guards; len(g) != 0 {
		t.Errorf("S5 guards = %v, want none (wrapped in 1..1 loop)", g)
	}
}

// TestTable1IterationVectors reproduces Table 1: the iteration vectors of
// the five statements.
func TestTable1IterationVectors(t *testing.T) {
	np := mustNormalize(t, figure1(10))
	want := map[string]string{
		"S1": "(1, I1, 1, I2)",
		"S2": "(1, I1, 1, I2)",
		"S3": "(1, I1, 2, I2)",
		"S4": "(1, I1, 2, I2)",
		"S5": "(2, I1, 1, I2)",
	}
	for _, s := range np.Stmts {
		if got := s.IterationVector(); got != want[s.Name] {
			t.Errorf("%s iteration vector = %s, want %s", s.Name, got, want[s.Name])
		}
	}
}

// TestFigure2RIS checks the RIS volumes of §3.3 for N = 10:
// |RIS_S1| = N−1, |RIS_S2| = (N−1)N/2 ... computed on the triangular space.
func TestFigure2RIS(t *testing.T) {
	const n = int64(10)
	np := mustNormalize(t, figure1(n))
	byName := map[string]*ir.NStmt{}
	for _, s := range np.Stmts {
		byName[s.Name] = s
	}
	vol := func(name string) int64 {
		return poly.FromStmt(byName[name]).Volume()
	}
	if got, want := vol("S1"), n-1; got != want {
		t.Errorf("|RIS_S1| = %d, want %d", got, want)
	}
	if got, want := vol("S2"), (n-1)*n/2; got != want {
		t.Errorf("|RIS_S2| = %d, want %d", got, want)
	}
	if got, want := vol("S3"), (n-1)*n; got != want {
		t.Errorf("|RIS_S3| = %d, want %d", got, want)
	}
	if got, want := vol("S4"), n-1; got != want {
		t.Errorf("|RIS_S4| = %d, want %d", got, want)
	}
	if got, want := vol("S5"), n-1; got != want {
		t.Errorf("|RIS_S5| = %d, want %d", got, want)
	}
}

// TestStepNormalisation checks that non-unit steps are rewritten to unit
// steps with substituted subscripts.
func TestStepNormalisation(t *testing.T) {
	b := ir.NewSub("s")
	A := b.Real8("A", 100)
	b.DoStep("I", ir.Con(1), ir.Con(99), 2).
		Assign("S1", ir.R(A, ir.Var("I"))).
		End()
	np := mustNormalize(t, b.Build())
	s := np.Stmts[0]
	sp := poly.FromStmt(s)
	if got, want := sp.Volume(), int64(50); got != want {
		t.Fatalf("trip count = %d, want %d", got, want)
	}
	// Subscript must now be 2·I − 1: at I = 1 → element 1, at I = 50 → 99.
	r := s.Refs[0]
	if got := r.Subs[0].Eval([]int64{1}); got != 1 {
		t.Errorf("subscript at I=1 is %d, want 1", got)
	}
	if got := r.Subs[0].Eval([]int64{50}); got != 99 {
		t.Errorf("subscript at I=50 is %d, want 99", got)
	}
}

// TestGuardOnLoopPropagates checks that an IF wrapped around a whole loop
// reaches the statements inside it.
func TestGuardOnLoopPropagates(t *testing.T) {
	b := ir.NewSub("s")
	A := b.Real8("A", 100, 100)
	b.Do("I", ir.Con(1), ir.Con(10)).
		IfCond(ir.Cond{LHS: ir.Var("I"), Op: ir.GE, RHS: ir.Con(5)}).
		Do("J", ir.Con(1), ir.Con(10)).
		Assign("S1", ir.R(A, ir.Var("J"), ir.Var("I"))).
		End().
		End().
		End()
	np := mustNormalize(t, b.Build())
	s := np.Stmts[0]
	if len(s.Guards) != 1 {
		t.Fatalf("guards = %v, want 1", s.Guards)
	}
	sp := poly.FromStmt(s)
	if got, want := sp.Volume(), int64(6*10); got != want {
		t.Errorf("volume = %d, want %d", got, want)
	}
}

// TestDepthPadding: a 1-D statement next to a 3-D nest must be padded to
// depth 3 with 1..1 loops.
func TestDepthPadding(t *testing.T) {
	b := ir.NewSub("s")
	A := b.Real8("A", 50)
	U := b.Real8("U", 50, 50, 50)
	b.Do("I", ir.Con(1), ir.Con(5)).
		Assign("S1", ir.R(A, ir.Var("I"))).
		End().
		Do("I", ir.Con(1), ir.Con(4)).
		Do("J", ir.Con(1), ir.Con(3)).
		Do("K", ir.Con(1), ir.Con(2)).
		Assign("S2", ir.R(U, ir.Var("K"), ir.Var("J"), ir.Var("I"))).
		End().End().End()
	np := mustNormalize(t, b.Build())
	if np.Depth != 3 {
		t.Fatalf("depth = %d, want 3", np.Depth)
	}
	s1 := np.Stmts[0]
	if got, want := poly.FromStmt(s1).Volume(), int64(5); got != want {
		t.Errorf("|RIS_S1| = %d, want %d (1..1 padding loops)", got, want)
	}
	if got, want := poly.FromStmt(np.Stmts[1]).Volume(), int64(4*3*2); got != want {
		t.Errorf("|RIS_S2| = %d, want %d", got, want)
	}
}

// TestCallRejected: normalisation must refuse un-inlined calls.
func TestCallRejected(t *testing.T) {
	b := ir.NewSub("s")
	b.Call("f")
	if _, err := Normalize(b.Build()); err == nil {
		t.Fatal("expected error for un-inlined call")
	}
}

// TestDataDependentRejected: subscripts using a non-loop variable violate
// the program model.
func TestDataDependentRejected(t *testing.T) {
	b := ir.NewSub("s")
	A := b.Real8("A", 100)
	b.Do("I", ir.Con(1), ir.Con(10)).
		Assign("S1", ir.R(A, ir.Var("IDX"))).
		End()
	if _, err := Normalize(b.Build()); err == nil {
		t.Fatal("expected error for data-dependent subscript")
	}
}
