package linalg

import (
	"errors"
	"math"
	"testing"
)

// mustPanicOverflow runs f and requires it to panic with *OverflowError.
func mustPanicOverflow(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("%s: expected *OverflowError panic, got none", name)
		}
		var oe *OverflowError
		err, ok := r.(error)
		if !ok || !errors.As(err, &oe) {
			t.Fatalf("%s: panic payload %v (%T), want *OverflowError", name, r, r)
		}
	}()
	f()
}

// TestRatBigFallback exercises operations whose intermediate cross
// products overflow int64 but whose reduced results fit: the big-int
// fallback must recover the exact answer instead of silently wrapping.
func TestRatBigFallback(t *testing.T) {
	big1 := int64(3) << 40 // 3·2^40; products of two such exceed 2^63

	// (1/a)·(a/1) = 1 even though a·a overflows.
	a := NewRat(1, big1)
	b := NewRat(big1, 1)
	if got := a.Mul(b); got.Cmp(RatInt(1)) != 0 {
		t.Fatalf("Mul reduced: got %s, want 1", got)
	}
	// (1/a) + (1/a) = 2/a: the naive num·den cross products overflow.
	twoOverA := NewRat(2, big1)
	if got := a.Add(a); got.Cmp(twoOverA) != 0 {
		t.Fatalf("Add reduced: got %s, want %s", got, twoOverA)
	}
	// (1/c) − (1/d) = (d−c)/(c·d) with coprime odd c, d near 2^40: the
	// difference 2/(c·d) cannot reduce, c·d ≈ 2^80 does NOT fit: typed panic.
	c, d := int64(1)<<40+1, int64(1)<<40+3
	mustPanicOverflow(t, "Sub", func() { _ = NewRat(1, c).Sub(NewRat(1, d)) })

	// (x/a)·(a/x) with huge co-prime-free parts still reduces to 1.
	x := NewRat(math.MaxInt64, big1)
	y := NewRat(big1, math.MaxInt64)
	if got := x.Mul(y); got.Cmp(RatInt(1)) != 0 {
		t.Fatalf("Mul maxint reduced: got %s, want 1", got)
	}
	// Div through the big path: (p/q) ÷ (p/q) = 1 with p, q near 2^62.
	p := NewRat(math.MaxInt64-1, (1<<62)-57)
	if got := p.Div(p); got.Cmp(RatInt(1)) != 0 {
		t.Fatalf("Div self: got %s, want 1", got)
	}
}

// TestRatAddOverflowBoundary pins the exact boundary: MaxInt64 + 1 as a
// rational no longer fits, MaxInt64 itself does.
func TestRatAddOverflowBoundary(t *testing.T) {
	max := RatInt(math.MaxInt64)
	if got := max.Add(RatInt(0)); got.Cmp(max) != 0 {
		t.Fatalf("MaxInt64 + 0: got %s", got)
	}
	// (MaxInt64 − 1) + 1 fits exactly.
	if got := RatInt(math.MaxInt64 - 1).Add(RatInt(1)); got.Cmp(max) != 0 {
		t.Fatalf("MaxInt64-1 + 1: got %s, want MaxInt64", got)
	}
	mustPanicOverflow(t, "Add", func() { _ = max.Add(RatInt(1)) })
	mustPanicOverflow(t, "Mul", func() { _ = max.Mul(RatInt(2)) })
	mustPanicOverflow(t, "Sub", func() { _ = RatInt(math.MinInt64 + 1).Sub(RatInt(2)) })
}

// TestRatSubMinInt64 pins the representable difference that used to
// panic through the Neg-based fallback: (−1) − MinInt64 == MaxInt64.
func TestRatSubMinInt64(t *testing.T) {
	min := RatInt(math.MinInt64)
	if got := RatInt(-1).Sub(min); got.Cmp(RatInt(math.MaxInt64)) != 0 {
		t.Fatalf("(-1) - MinInt64: got %s, want MaxInt64", got)
	}
	// MinInt64 − MinInt64 == 0 is likewise representable.
	if got := min.Sub(min); !got.IsZero() {
		t.Fatalf("MinInt64 - MinInt64: got %s, want 0", got)
	}
	// 0 − MinInt64 == 2^63 genuinely does not fit: typed panic.
	mustPanicOverflow(t, "Sub", func() { _ = RatInt(0).Sub(min) })
}

// TestRatCmpExact verifies Cmp decides via big arithmetic when the cross
// products overflow: these two rationals differ by ~2^-124 and naive
// wrapping arithmetic misorders them.
func TestRatCmpExact(t *testing.T) {
	d1 := int64(1)<<62 - 1 // 2^62−1
	d2 := int64(1)<<62 - 3
	a := NewRat(d1-1, d1) // slightly smaller than 1
	b := NewRat(d2-1, d2) // smaller still: 1 − 1/d is increasing in d
	if got := b.Cmp(a); got != -1 {
		t.Fatalf("Cmp: got %d, want -1", got)
	}
	if got := a.Cmp(b); got != 1 {
		t.Fatalf("Cmp: got %d, want 1", got)
	}
	if got := a.Cmp(a); got != 0 {
		t.Fatalf("Cmp self: got %d, want 0", got)
	}
}

// TestRatNegAbsBoundary covers the single non-negatable numerator.
func TestRatNegAbsBoundary(t *testing.T) {
	if got := RatInt(-5).Neg(); got.Cmp(RatInt(5)) != 0 {
		t.Fatalf("Neg: got %s", got)
	}
	mustPanicOverflow(t, "Neg", func() { _ = RatInt(math.MinInt64).Neg() })
	mustPanicOverflow(t, "Abs", func() { _ = RatInt(math.MinInt64).Abs() })
}
