package linalg

// Solution describes the full solution set of a linear system A·x = b over
// the rationals: x = Particular + span(Nullspace). For the reuse analysis
// we care about integral points of this affine subspace.
type Solution struct {
	// Particular is one solution of A·x = b (free variables set to zero).
	Particular Vec
	// Nullspace is a basis of solutions of A·x = 0. Each basis vector is
	// scaled to be integral and primitive (gcd of components = 1).
	Nullspace []Vec
}

// rref reduces a to reduced row echelon form in place and returns the pivot
// column of each pivot row.
func rref(a *Mat) (pivots []int) {
	row := 0
	for col := 0; col < a.Cols && row < a.Rows; col++ {
		// Find a pivot in this column.
		pr := -1
		for i := row; i < a.Rows; i++ {
			if !a.At(i, col).IsZero() {
				pr = i
				break
			}
		}
		if pr == -1 {
			continue
		}
		// Swap into position.
		if pr != row {
			for j := 0; j < a.Cols; j++ {
				tmp := a.At(row, j)
				a.Set(row, j, a.At(pr, j))
				a.Set(pr, j, tmp)
			}
		}
		// Normalise the pivot row.
		p := a.At(row, col)
		for j := col; j < a.Cols; j++ {
			a.Set(row, j, a.At(row, j).Div(p))
		}
		// Eliminate the column everywhere else.
		for i := 0; i < a.Rows; i++ {
			if i == row {
				continue
			}
			f := a.At(i, col)
			if f.IsZero() {
				continue
			}
			for j := col; j < a.Cols; j++ {
				a.Set(i, j, a.At(i, j).Sub(f.Mul(a.At(row, j))))
			}
		}
		pivots = append(pivots, col)
		row++
	}
	return pivots
}

// Solve computes the full rational solution set of A·x = b. It returns
// ok=false if the system is inconsistent. A zero-row matrix (no equations)
// yields the all-free solution: particular 0, nullspace = identity basis.
func Solve(a *Mat, b Vec) (Solution, bool) {
	mustSameLen(a.Rows, len(b))
	n := a.Cols
	// Build the augmented matrix [A | b].
	aug := NewMat(a.Rows, n+1)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < n; j++ {
			aug.Set(i, j, a.At(i, j))
		}
		aug.Set(i, n, b[i])
	}
	pivots := rref(aug)
	// Inconsistency: pivot in the augmented column.
	for _, p := range pivots {
		if p == n {
			return Solution{}, false
		}
	}
	isPivot := make([]bool, n)
	pivotRow := make([]int, n) // column -> row holding its pivot
	for r, p := range pivots {
		isPivot[p] = true
		pivotRow[p] = r
	}
	// Particular solution: free variables zero.
	part := ZeroVec(n)
	for j := 0; j < n; j++ {
		if isPivot[j] {
			part[j] = aug.At(pivotRow[j], n)
		}
	}
	// Nullspace basis: one vector per free variable.
	var null []Vec
	for j := 0; j < n; j++ {
		if isPivot[j] {
			continue
		}
		v := ZeroVec(n)
		v[j] = RatInt(1)
		for k := 0; k < n; k++ {
			if isPivot[k] {
				v[k] = aug.At(pivotRow[k], j).Neg()
			}
		}
		null = append(null, primitive(v))
	}
	return Solution{Particular: part, Nullspace: null}, true
}

// primitive scales v to the smallest integral vector with the same
// direction (gcd of components 1, first nonzero component positive).
func primitive(v Vec) Vec {
	// Clear denominators.
	l := int64(1)
	for _, x := range v {
		l = LCM(l, x.Den())
	}
	w := v.Scale(RatInt(l))
	// Divide by the gcd of numerators.
	var g int64
	for _, x := range w {
		g = GCD(g, x.Num())
	}
	if g > 1 {
		w = w.Scale(NewRat(1, g))
	}
	// Canonical sign.
	for _, x := range w {
		if x.Sign() != 0 {
			if x.Sign() < 0 {
				w = w.Neg()
			}
			break
		}
	}
	return w
}

// IntegralParticular searches the affine solution set for an integral point
// by adjusting the particular solution with small rational multiples of the
// nullspace basis. It returns ok=false if no integral point is found within
// the search bound. For the unimodular-ish access matrices of regular loop
// programs the particular solution is almost always already integral.
func IntegralParticular(s Solution) (Vec, bool) {
	if s.Particular.IsIntegral() {
		return s.Particular, true
	}
	// Small bounded search over combinations of nullspace scalings with
	// denominators matching the particular solution's components.
	const bound = 8
	cur := s.Particular
	for _, nv := range s.Nullspace {
		if cur.IsIntegral() {
			break
		}
		improved := false
		for t := int64(-bound); t <= bound && !improved; t++ {
			if t == 0 {
				continue
			}
			// Allow fractional steps t/den for denominators up to 4.
			for den := int64(1); den <= 4; den++ {
				cand := cur.Add(nv.Scale(NewRat(t, den)))
				if fracCount(cand) < fracCount(cur) {
					cur = cand
					improved = true
					break
				}
			}
		}
	}
	if cur.IsIntegral() {
		return cur, true
	}
	return nil, false
}

func fracCount(v Vec) int {
	n := 0
	for _, x := range v {
		if !x.IsInt() {
			n++
		}
	}
	return n
}

// Nullspace returns an integral primitive basis of {x : A·x = 0}.
func Nullspace(a *Mat) []Vec {
	sol, ok := Solve(a, ZeroVec(a.Rows))
	if !ok {
		return nil // homogeneous systems are always consistent
	}
	return sol.Nullspace
}

// Rank returns the rank of a.
func Rank(a *Mat) int {
	c := a.Clone()
	return len(rref(c))
}

// InKernel reports whether A·v = 0.
func InKernel(a *Mat, v Vec) bool {
	return a.MulVec(v).IsZero()
}
