package linalg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRatBasics(t *testing.T) {
	cases := []struct {
		a, b Rat
		op   string
		want Rat
	}{
		{NewRat(1, 2), NewRat(1, 3), "+", NewRat(5, 6)},
		{NewRat(1, 2), NewRat(1, 3), "-", NewRat(1, 6)},
		{NewRat(2, 3), NewRat(3, 4), "*", NewRat(1, 2)},
		{NewRat(2, 3), NewRat(4, 3), "/", NewRat(1, 2)},
		{NewRat(-4, -6), NewRat(0, 5), "+", NewRat(2, 3)},
	}
	for _, c := range cases {
		var got Rat
		switch c.op {
		case "+":
			got = c.a.Add(c.b)
		case "-":
			got = c.a.Sub(c.b)
		case "*":
			got = c.a.Mul(c.b)
		case "/":
			got = c.a.Div(c.b)
		}
		if got.Cmp(c.want) != 0 {
			t.Errorf("%v %s %v = %v, want %v", c.a, c.op, c.b, got, c.want)
		}
	}
}

func TestRatCanonical(t *testing.T) {
	r := NewRat(6, -4)
	if r.Num() != -3 || r.Den() != 2 {
		t.Errorf("NewRat(6,-4) = %d/%d, want -3/2", r.Num(), r.Den())
	}
	if r.String() != "-3/2" {
		t.Errorf("String = %q", r.String())
	}
	if NewRat(4, 2).String() != "2" {
		t.Errorf("integer rendering broken")
	}
}

func TestFloorCeil(t *testing.T) {
	cases := []struct {
		r           Rat
		floor, ceil int64
	}{
		{NewRat(7, 2), 3, 4},
		{NewRat(-7, 2), -4, -3},
		{NewRat(6, 2), 3, 3},
		{NewRat(-6, 2), -3, -3},
		{NewRat(0, 5), 0, 0},
		{NewRat(1, 3), 0, 1},
		{NewRat(-1, 3), -1, 0},
	}
	for _, c := range cases {
		if got := c.r.Floor(); got != c.floor {
			t.Errorf("Floor(%v) = %d, want %d", c.r, got, c.floor)
		}
		if got := c.r.Ceil(); got != c.ceil {
			t.Errorf("Ceil(%v) = %d, want %d", c.r, got, c.ceil)
		}
	}
}

// TestRatFieldProperties uses testing/quick: field axioms on small
// rationals.
func TestRatFieldProperties(t *testing.T) {
	mk := func(n int8, d int8) Rat {
		dd := int64(d)
		if dd == 0 {
			dd = 1
		}
		return NewRat(int64(n), dd)
	}
	commutative := func(a, b int8, c, d int8) bool {
		x, y := mk(a, c), mk(b, d)
		return x.Add(y).Cmp(y.Add(x)) == 0 && x.Mul(y).Cmp(y.Mul(x)) == 0
	}
	if err := quick.Check(commutative, nil); err != nil {
		t.Error(err)
	}
	distributive := func(a, b, c int8) bool {
		x, y, z := RatInt(int64(a)), mk(b, 3), mk(c, 7)
		l := x.Mul(y.Add(z))
		r := x.Mul(y).Add(x.Mul(z))
		return l.Cmp(r) == 0
	}
	if err := quick.Check(distributive, nil); err != nil {
		t.Error(err)
	}
	inverse := func(a int8, b int8) bool {
		x := mk(a, b)
		if x.IsZero() {
			return true
		}
		return x.Div(x).Cmp(RatInt(1)) == 0 && x.Sub(x).IsZero()
	}
	if err := quick.Check(inverse, nil); err != nil {
		t.Error(err)
	}
}

func TestGCDLCM(t *testing.T) {
	if GCD(12, 18) != 6 || GCD(-12, 18) != 6 || GCD(0, 7) != 7 || GCD(0, 0) != 0 {
		t.Error("GCD broken")
	}
	if LCM(4, 6) != 12 || LCM(0, 5) != 0 {
		t.Error("LCM broken")
	}
}

func TestSolveUnique(t *testing.T) {
	// The §3.5 system: [[0,1],[1,0]]·x = (−1, 0) has unique solution (0,−1).
	m := IntMat([]int64{0, 1}, []int64{1, 0})
	sol, ok := Solve(m, IntVec(-1, 0))
	if !ok {
		t.Fatal("inconsistent?")
	}
	if !sol.Particular.Equal(IntVec(0, -1)) {
		t.Errorf("particular = %v, want (0, -1)", sol.Particular)
	}
	if len(sol.Nullspace) != 0 {
		t.Errorf("nullspace = %v, want empty", sol.Nullspace)
	}
}

func TestSolveUnderdetermined(t *testing.T) {
	// x1 + x2 = 2 over 3 unknowns: nullspace rank 2.
	m := IntMat([]int64{1, 1, 0})
	sol, ok := Solve(m, IntVec(2))
	if !ok {
		t.Fatal("inconsistent?")
	}
	if got := m.MulVec(sol.Particular); !got.Equal(IntVec(2)) {
		t.Errorf("A·particular = %v", got)
	}
	if len(sol.Nullspace) != 2 {
		t.Fatalf("nullspace rank = %d, want 2", len(sol.Nullspace))
	}
	for _, v := range sol.Nullspace {
		if !m.MulVec(v).IsZero() {
			t.Errorf("nullspace vector %v not in kernel", v)
		}
	}
}

func TestSolveInconsistent(t *testing.T) {
	m := IntMat([]int64{1, 1}, []int64{2, 2})
	if _, ok := Solve(m, IntVec(1, 3)); ok {
		t.Error("expected inconsistency")
	}
}

func TestSolveEmptyMatrix(t *testing.T) {
	m := NewMat(0, 3)
	sol, ok := Solve(m, nil)
	if !ok || len(sol.Nullspace) != 3 {
		t.Fatalf("0-row system: ok=%v nullspace=%d, want identity basis of 3", ok, len(sol.Nullspace))
	}
}

func TestNullspacePrimitive(t *testing.T) {
	// Kernel of [2, 4] is spanned by (2, -1) after scaling... primitive
	// integral: (-2, 1) canonicalised to (2, -1)? First nonzero positive.
	m := IntMat([]int64{2, 4})
	ns := Nullspace(m)
	if len(ns) != 1 {
		t.Fatalf("nullspace size = %d", len(ns))
	}
	v := ns[0]
	if !m.MulVec(v).IsZero() {
		t.Fatalf("not in kernel: %v", v)
	}
	if !v.IsIntegral() {
		t.Fatalf("not integral: %v", v)
	}
	ints, _ := v.Ints()
	g := GCD(ints[0], ints[1])
	if g != 1 {
		t.Errorf("not primitive: %v (gcd %d)", v, g)
	}
	if ints[0] < 0 {
		t.Errorf("not sign-canonical: %v", v)
	}
}

// TestSolveProperty: random small systems — when Solve reports a solution,
// A·x = b must hold for the particular solution and every nullspace shift.
func TestSolveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		rows := 1 + rng.Intn(3)
		cols := 1 + rng.Intn(4)
		m := NewMat(rows, cols)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				m.Set(i, j, RatInt(int64(rng.Intn(7)-3)))
			}
		}
		b := make(Vec, rows)
		for i := range b {
			b[i] = RatInt(int64(rng.Intn(9) - 4))
		}
		sol, ok := Solve(m, b)
		if !ok {
			continue
		}
		if got := m.MulVec(sol.Particular); !got.Equal(b) {
			t.Fatalf("trial %d: A·x = %v, want %v (A=%v)", trial, got, b, m)
		}
		for _, nv := range sol.Nullspace {
			shifted := sol.Particular.Add(nv.Scale(RatInt(3)))
			if got := m.MulVec(shifted); !got.Equal(b) {
				t.Fatalf("trial %d: nullspace shift breaks solution", trial)
			}
		}
		if Rank(m)+len(sol.Nullspace) != cols {
			t.Fatalf("trial %d: rank-nullity violated: rank %d + nullity %d != %d",
				trial, Rank(m), len(sol.Nullspace), cols)
		}
	}
}

func TestIntegralParticular(t *testing.T) {
	// x1/2 free system where the rational particular needs a kernel shift:
	// 2·x1 + x2 = 1 → particular (1/2, 0), shiftable to (0, 1).
	m := IntMat([]int64{2, 1})
	sol, ok := Solve(m, IntVec(1))
	if !ok {
		t.Fatal("inconsistent")
	}
	p, ok := IntegralParticular(sol)
	if !ok {
		t.Fatal("no integral particular found")
	}
	if !p.IsIntegral() {
		t.Fatalf("non-integral result %v", p)
	}
	if got := m.MulVec(p); !got.Equal(IntVec(1)) {
		t.Fatalf("A·p = %v", got)
	}
}

func TestMatDropRow(t *testing.T) {
	m := IntMat([]int64{1, 2}, []int64{3, 4}, []int64{5, 6})
	d := m.DropRow(1)
	if d.Rows != 2 || d.At(1, 0).Cmp(RatInt(5)) != 0 {
		t.Errorf("DropRow wrong: %v", d)
	}
}

func TestVecOps(t *testing.T) {
	v := IntVec(1, 2, 3)
	w := IntVec(4, 5, 6)
	if v.Dot(w).Cmp(RatInt(32)) != 0 {
		t.Error("dot product broken")
	}
	if !v.Add(w).Equal(IntVec(5, 7, 9)) || !w.Sub(v).Equal(IntVec(3, 3, 3)) {
		t.Error("add/sub broken")
	}
	if !v.Neg().Equal(IntVec(-1, -2, -3)) {
		t.Error("neg broken")
	}
	if v.IsZero() || !ZeroVec(3).IsZero() {
		t.Error("IsZero broken")
	}
}
