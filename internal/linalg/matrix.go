package linalg

import (
	"fmt"
	"strings"
)

// Vec is a vector of exact rationals.
type Vec []Rat

// IntVec builds a rational vector from integers.
func IntVec(xs ...int64) Vec {
	v := make(Vec, len(xs))
	for i, x := range xs {
		v[i] = RatInt(x)
	}
	return v
}

// ZeroVec returns the zero vector of length n.
func ZeroVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	w := make(Vec, len(v))
	copy(w, v)
	return w
}

// Add returns v + w. The vectors must have equal length.
func (v Vec) Add(w Vec) Vec {
	mustSameLen(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i].Add(w[i])
	}
	return out
}

// Sub returns v − w. The vectors must have equal length.
func (v Vec) Sub(w Vec) Vec {
	mustSameLen(len(v), len(w))
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i].Sub(w[i])
	}
	return out
}

// Scale returns c·v.
func (v Vec) Scale(c Rat) Vec {
	out := make(Vec, len(v))
	for i := range v {
		out[i] = v[i].Mul(c)
	}
	return out
}

// Neg returns −v.
func (v Vec) Neg() Vec { return v.Scale(RatInt(-1)) }

// Dot returns the inner product v·w.
func (v Vec) Dot(w Vec) Rat {
	mustSameLen(len(v), len(w))
	sum := Rat{}
	for i := range v {
		sum = sum.Add(v[i].Mul(w[i]))
	}
	return sum
}

// IsZero reports whether every component of v is zero.
func (v Vec) IsZero() bool {
	for _, x := range v {
		if !x.IsZero() {
			return false
		}
	}
	return true
}

// IsIntegral reports whether every component of v is an integer.
func (v Vec) IsIntegral() bool {
	for _, x := range v {
		if !x.IsInt() {
			return false
		}
	}
	return true
}

// Ints returns v as int64 components; ok is false if any component is
// not an integer.
func (v Vec) Ints() (out []int64, ok bool) {
	out = make([]int64, len(v))
	for i, x := range v {
		n, isInt := x.Int()
		if !isInt {
			return nil, false
		}
		out[i] = n
	}
	return out, true
}

// Equal reports componentwise equality.
func (v Vec) Equal(w Vec) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if v[i].Cmp(w[i]) != 0 {
			return false
		}
	}
	return true
}

// String renders v as "(a, b, c)".
func (v Vec) String() string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = x.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

func mustSameLen(a, b int) {
	if a != b {
		panic(fmt.Sprintf("linalg: dimension mismatch %d vs %d", a, b))
	}
}

// Mat is a dense rational matrix stored row-major.
type Mat struct {
	Rows, Cols int
	data       []Rat
}

// NewMat returns a zero Rows×Cols matrix.
func NewMat(rows, cols int) *Mat {
	if rows < 0 || cols < 0 {
		panic("linalg: negative dimension")
	}
	return &Mat{Rows: rows, Cols: cols, data: make([]Rat, rows*cols)}
}

// IntMat builds a matrix from integer rows. All rows must have equal length.
func IntMat(rows ...[]int64) *Mat {
	if len(rows) == 0 {
		return NewMat(0, 0)
	}
	m := NewMat(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		for j, x := range r {
			m.Set(i, j, RatInt(x))
		}
	}
	return m
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Mat {
	m := NewMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, RatInt(1))
	}
	return m
}

// At returns the element at row i, column j.
func (m *Mat) At(i, j int) Rat { return m.data[i*m.Cols+j] }

// Set assigns the element at row i, column j.
func (m *Mat) Set(i, j int, v Rat) { m.data[i*m.Cols+j] = v }

// Clone returns a deep copy of m.
func (m *Mat) Clone() *Mat {
	c := NewMat(m.Rows, m.Cols)
	copy(c.data, m.data)
	return c
}

// Row returns a copy of row i.
func (m *Mat) Row(i int) Vec {
	out := make(Vec, m.Cols)
	copy(out, m.data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Col returns a copy of column j.
func (m *Mat) Col(j int) Vec {
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// MulVec returns m·v.
func (m *Mat) MulVec(v Vec) Vec {
	mustSameLen(m.Cols, len(v))
	out := make(Vec, m.Rows)
	for i := 0; i < m.Rows; i++ {
		sum := Rat{}
		for j := 0; j < m.Cols; j++ {
			sum = sum.Add(m.At(i, j).Mul(v[j]))
		}
		out[i] = sum
	}
	return out
}

// DropRow returns a copy of m with row i removed.
func (m *Mat) DropRow(i int) *Mat {
	out := NewMat(m.Rows-1, m.Cols)
	r := 0
	for k := 0; k < m.Rows; k++ {
		if k == i {
			continue
		}
		for j := 0; j < m.Cols; j++ {
			out.Set(r, j, m.At(k, j))
		}
		r++
	}
	return out
}

// Equal reports elementwise equality of m and o.
func (m *Mat) Equal(o *Mat) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := range m.data {
		if m.data[i].Cmp(o.data[i]) != 0 {
			return false
		}
	}
	return true
}

// String renders the matrix row by row.
func (m *Mat) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		b.WriteString(m.Row(i).String())
		if i < m.Rows-1 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
