// Package linalg provides exact rational arithmetic and the small-scale
// integer linear algebra needed by the reuse analysis: solving affine
// systems M·x = b over the integers, computing particular solutions and
// integer nullspace bases via fraction-free Gaussian elimination.
//
// All matrices involved are tiny (array dimensionality × loop depth, both
// typically ≤ 6), so clarity and exactness are preferred over asymptotic
// performance.
package linalg

import "fmt"

// Rat is an exact rational number with int64 numerator and denominator.
// The zero value is 0/1. Rats are always kept in canonical form: the
// denominator is positive and gcd(num, den) == 1.
type Rat struct {
	num int64
	den int64
}

// NewRat returns the canonical rational num/den. It panics if den == 0.
func NewRat(num, den int64) Rat {
	if den == 0 {
		panic("linalg: zero denominator")
	}
	r := Rat{num, den}
	r.normalize()
	return r
}

// RatInt returns the rational representation of the integer n.
func RatInt(n int64) Rat { return Rat{n, 1} }

func (r *Rat) normalize() {
	if r.den == 0 {
		panic("linalg: zero denominator")
	}
	if r.den < 0 {
		r.num, r.den = -r.num, -r.den
	}
	if r.num == 0 {
		r.den = 1
		return
	}
	g := GCD(abs64(r.num), r.den)
	r.num /= g
	r.den /= g
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// GCD returns the greatest common divisor of a and b (non-negative result).
// GCD(0, 0) == 0 by convention.
func GCD(a, b int64) int64 {
	a, b = abs64(a), abs64(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b. LCM(0, x) == 0.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return abs64(a/GCD(a, b)) * abs64(b)
}

// Num returns the numerator of r in canonical form.
func (r Rat) Num() int64 { return r.num }

// Den returns the (positive) denominator of r in canonical form.
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1 // zero value
	}
	return r.den
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.num == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den() == 1 }

// Int returns r as an int64 and reports whether the conversion is exact.
func (r Rat) Int() (int64, bool) {
	if !r.IsInt() {
		return 0, false
	}
	return r.num, true
}

// Float returns the closest float64 to r.
func (r Rat) Float() float64 { return float64(r.num) / float64(r.Den()) }

// Add returns r + s.
func (r Rat) Add(s Rat) Rat { return NewRat(r.num*s.Den()+s.num*r.Den(), r.Den()*s.Den()) }

// Sub returns r − s.
func (r Rat) Sub(s Rat) Rat { return NewRat(r.num*s.Den()-s.num*r.Den(), r.Den()*s.Den()) }

// Mul returns r × s.
func (r Rat) Mul(s Rat) Rat { return NewRat(r.num*s.num, r.Den()*s.Den()) }

// Div returns r ÷ s. It panics if s == 0.
func (r Rat) Div(s Rat) Rat {
	if s.IsZero() {
		panic("linalg: division by zero")
	}
	return NewRat(r.num*s.Den(), r.Den()*s.num)
}

// Neg returns −r.
func (r Rat) Neg() Rat { return Rat{-r.num, r.Den()} }

// Cmp compares r and s, returning −1, 0 or +1.
func (r Rat) Cmp(s Rat) int {
	d := r.num*s.Den() - s.num*r.Den()
	switch {
	case d < 0:
		return -1
	case d > 0:
		return 1
	default:
		return 0
	}
}

// Sign returns the sign of r as −1, 0 or +1.
func (r Rat) Sign() int {
	switch {
	case r.num < 0:
		return -1
	case r.num > 0:
		return 1
	default:
		return 0
	}
}

// Abs returns |r|.
func (r Rat) Abs() Rat {
	if r.num < 0 {
		return Rat{-r.num, r.Den()}
	}
	return Rat{r.num, r.Den()}
}

// Floor returns the largest integer ≤ r.
func (r Rat) Floor() int64 {
	d := r.Den()
	if r.num >= 0 {
		return r.num / d
	}
	return -((-r.num + d - 1) / d)
}

// Ceil returns the smallest integer ≥ r.
func (r Rat) Ceil() int64 {
	d := r.Den()
	if r.num >= 0 {
		return (r.num + d - 1) / d
	}
	return -(-r.num / d)
}

// String renders r as "n" or "n/d".
func (r Rat) String() string {
	if r.IsInt() {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}
