// Package linalg provides exact rational arithmetic and the small-scale
// integer linear algebra needed by the reuse analysis: solving affine
// systems M·x = b over the integers, computing particular solutions and
// integer nullspace bases via fraction-free Gaussian elimination.
//
// All matrices involved are tiny (array dimensionality × loop depth, both
// typically ≤ 6), so clarity and exactness are preferred over asymptotic
// performance.
package linalg

import (
	"fmt"
	"math/big"
)

// Rat is an exact rational number with int64 numerator and denominator.
// The zero value is 0/1. Rats are always kept in canonical form: the
// denominator is positive and gcd(num, den) == 1.
type Rat struct {
	num int64
	den int64
}

// NewRat returns the canonical rational num/den. It panics if den == 0.
func NewRat(num, den int64) Rat {
	if den == 0 {
		panic("linalg: zero denominator")
	}
	r := Rat{num, den}
	r.normalize()
	return r
}

// RatInt returns the rational representation of the integer n.
func RatInt(n int64) Rat { return Rat{n, 1} }

func (r *Rat) normalize() {
	if r.den == 0 {
		panic("linalg: zero denominator")
	}
	if r.den < 0 {
		r.num, r.den = -r.num, -r.den
	}
	if r.num == 0 {
		r.den = 1
		return
	}
	g := GCD(abs64(r.num), r.den)
	r.num /= g
	r.den /= g
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}

// GCD returns the greatest common divisor of a and b (non-negative result).
// GCD(0, 0) == 0 by convention.
func GCD(a, b int64) int64 {
	a, b = abs64(a), abs64(b)
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// LCM returns the least common multiple of a and b. LCM(0, x) == 0.
func LCM(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return abs64(a/GCD(a, b)) * abs64(b)
}

// Num returns the numerator of r in canonical form.
func (r Rat) Num() int64 { return r.num }

// Den returns the (positive) denominator of r in canonical form.
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1 // zero value
	}
	return r.den
}

// IsZero reports whether r == 0.
func (r Rat) IsZero() bool { return r.num == 0 }

// IsInt reports whether r is an integer.
func (r Rat) IsInt() bool { return r.Den() == 1 }

// Int returns r as an int64 and reports whether the conversion is exact.
func (r Rat) Int() (int64, bool) {
	if !r.IsInt() {
		return 0, false
	}
	return r.num, true
}

// Float returns the closest float64 to r.
func (r Rat) Float() float64 { return float64(r.num) / float64(r.Den()) }

// OverflowError is the payload of the panic raised when an exact rational
// result does not fit int64 even after reduction to canonical form. It is
// a typed value (not a bare string) so solvers that guard worker panics
// can classify it.
type OverflowError struct {
	Op string // the operation that overflowed, e.g. "add"
}

func (e *OverflowError) Error() string {
	return fmt.Sprintf("linalg: rational overflow in %s: result does not fit int64", e.Op)
}

// addChecked returns a+b, reporting whether it fit int64.
func addChecked(a, b int64) (int64, bool) {
	s := a + b
	if (a > 0 && b > 0 && s <= 0) || (a < 0 && b < 0 && s >= 0) {
		return 0, false
	}
	return s, true
}

// mulChecked returns a·b, reporting whether it fit int64.
func mulChecked(a, b int64) (int64, bool) {
	if a == 0 || b == 0 {
		return 0, true
	}
	p := a * b
	// MinInt64 has no int64 negation; p/b below would also trap on
	// MinInt64 / -1, so reject the pathological operands up front.
	if a == minI64 || b == minI64 {
		if a == 1 || b == 1 {
			return p, true
		}
		return 0, false
	}
	if p/b != a {
		return 0, false
	}
	return p, true
}

const minI64 = -1 << 63

// ratBig reduces num/den computed in big arithmetic back to a canonical
// Rat, panicking with *OverflowError when the reduced result does not fit.
func ratBig(op string, num, den *big.Int) Rat {
	q := new(big.Rat).SetFrac(num, den) // reduces and fixes the sign
	if !q.Num().IsInt64() || !q.Denom().IsInt64() {
		panic(&OverflowError{Op: op})
	}
	return Rat{q.Num().Int64(), q.Denom().Int64()}
}

// addBig is the slow path of Add: r + s exactly in big arithmetic.
func addBig(op string, r, s Rat) Rat {
	rn, rd := big.NewInt(r.num), big.NewInt(r.Den())
	sn, sd := big.NewInt(s.num), big.NewInt(s.Den())
	num := new(big.Int).Add(new(big.Int).Mul(rn, sd), new(big.Int).Mul(sn, rd))
	return ratBig(op, num, new(big.Int).Mul(rd, sd))
}

// subBig is the slow path of Sub: r − s exactly in big arithmetic. It
// subtracts directly rather than negating s, so s.num == MinInt64 does
// not panic when the difference itself is representable.
func subBig(op string, r, s Rat) Rat {
	rn, rd := big.NewInt(r.num), big.NewInt(r.Den())
	sn, sd := big.NewInt(s.num), big.NewInt(s.Den())
	num := new(big.Int).Sub(new(big.Int).Mul(rn, sd), new(big.Int).Mul(sn, rd))
	return ratBig(op, num, new(big.Int).Mul(rd, sd))
}

// Add returns r + s. The cross products are overflow-checked; when any of
// them exceeds int64 the sum is computed exactly in big arithmetic and
// reduced, and Add panics with *OverflowError only if even the reduced
// result does not fit int64.
func (r Rat) Add(s Rat) Rat {
	a, ok1 := mulChecked(r.num, s.Den())
	b, ok2 := mulChecked(s.num, r.Den())
	num, ok3 := addChecked(a, b)
	den, ok4 := mulChecked(r.Den(), s.Den())
	if ok1 && ok2 && ok3 && ok4 {
		return NewRat(num, den)
	}
	return addBig("add", r, s)
}

// Sub returns r − s, with the same overflow discipline as Add.
func (r Rat) Sub(s Rat) Rat {
	a, ok1 := mulChecked(r.num, s.Den())
	b, ok2 := mulChecked(s.num, r.Den())
	num, ok3 := addChecked(a, -b)
	den, ok4 := mulChecked(r.Den(), s.Den())
	if ok1 && ok2 && ok3 && ok4 && b != minI64 {
		return NewRat(num, den)
	}
	return subBig("sub", r, s)
}

// Mul returns r × s, with the same overflow discipline as Add.
func (r Rat) Mul(s Rat) Rat {
	num, ok1 := mulChecked(r.num, s.num)
	den, ok2 := mulChecked(r.Den(), s.Den())
	if ok1 && ok2 {
		return NewRat(num, den)
	}
	return ratBig("mul",
		new(big.Int).Mul(big.NewInt(r.num), big.NewInt(s.num)),
		new(big.Int).Mul(big.NewInt(r.Den()), big.NewInt(s.Den())))
}

// Div returns r ÷ s, with the same overflow discipline as Add. It panics
// if s == 0.
func (r Rat) Div(s Rat) Rat {
	if s.IsZero() {
		panic("linalg: division by zero")
	}
	num, ok1 := mulChecked(r.num, s.Den())
	den, ok2 := mulChecked(r.Den(), s.num)
	if ok1 && ok2 {
		return NewRat(num, den)
	}
	return ratBig("div",
		new(big.Int).Mul(big.NewInt(r.num), big.NewInt(s.Den())),
		new(big.Int).Mul(big.NewInt(r.Den()), big.NewInt(s.num)))
}

// Neg returns −r. It panics with *OverflowError for the one numerator
// whose negation does not exist in int64.
func (r Rat) Neg() Rat {
	if r.num == minI64 {
		panic(&OverflowError{Op: "neg"})
	}
	return Rat{-r.num, r.Den()}
}

// Cmp compares r and s, returning −1, 0 or +1. The comparison is exact
// for every representable pair: when the cross products overflow int64 it
// falls back to big arithmetic (a comparison always has an answer, so Cmp
// never panics with *OverflowError).
func (r Rat) Cmp(s Rat) int {
	a, ok1 := mulChecked(r.num, s.Den())
	b, ok2 := mulChecked(s.num, r.Den())
	if ok1 && ok2 {
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		default:
			return 0
		}
	}
	x := new(big.Int).Mul(big.NewInt(r.num), big.NewInt(s.Den()))
	y := new(big.Int).Mul(big.NewInt(s.num), big.NewInt(r.Den()))
	return x.Cmp(y)
}

// Sign returns the sign of r as −1, 0 or +1.
func (r Rat) Sign() int {
	switch {
	case r.num < 0:
		return -1
	case r.num > 0:
		return 1
	default:
		return 0
	}
}

// Abs returns |r|. It panics with *OverflowError for the one numerator
// whose absolute value does not exist in int64.
func (r Rat) Abs() Rat {
	if r.num < 0 {
		if r.num == minI64 {
			panic(&OverflowError{Op: "abs"})
		}
		return Rat{-r.num, r.Den()}
	}
	return Rat{r.num, r.Den()}
}

// Floor returns the largest integer ≤ r.
func (r Rat) Floor() int64 {
	d := r.Den()
	if r.num >= 0 {
		return r.num / d
	}
	return -((-r.num + d - 1) / d)
}

// Ceil returns the smallest integer ≥ r.
func (r Rat) Ceil() int64 {
	d := r.Den()
	if r.num >= 0 {
		return (r.num + d - 1) / d
	}
	return -(-r.num / d)
}

// String renders r as "n" or "n/d".
func (r Rat) String() string {
	if r.IsInt() {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.den)
}
